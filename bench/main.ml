(* Benchmark harness: regenerates every figure and headline number of
   the paper's evaluation (§6), runs the ablation studies called out in
   DESIGN.md, and measures the kernel's primitive costs with Bechamel.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig5    # one section
     sections: fig5 fig6 headline compare throughput shard ablation micro *)

module W = Dpu_workload
module E = W.Experiment
module F = W.Figures
module Stats = Dpu_engine.Stats
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Json = Dpu_obs.Json

let section name = Printf.printf "\n============ %s ============\n%!" name

(* Machine-readable results: every section deposits its numbers here
   and the driver writes BENCH_results.json at the end. Accumulated in
   reverse (prepend is O(1), appending was quadratic) and reversed at
   write-out. *)
let results : (string * Json.t) list ref = ref []

let record key v = results := (key, v) :: !results

(* Worker count for the sweep-backed sections (fig6, headline, compare,
   ablations); set by -j/--jobs, default DPU_JOBS or 1. *)
let jobs = ref (W.Sweep.default_jobs ())

(* Per-sweep wall-clock and realised speedup, keyed by section. These
   live under a separate top-level "sweeps" key — never inside
   "results" — so the results sections stay bit-identical across -j. *)
let sweeps : (string * Json.t) list ref = ref []

let record_sweep key (st : W.Sweep.stats) =
  sweeps :=
    ( key,
      Json.Obj
        [
          ("jobs", Json.Int st.W.Sweep.jobs);
          ("cells", Json.Int st.W.Sweep.cells);
          ("wall_s", Json.Float st.W.Sweep.wall_s);
          ("cells_wall_s", Json.Float st.W.Sweep.cells_wall_s);
          ("speedup", Json.Float st.W.Sweep.speedup);
        ] )
    :: !sweeps

(* ------------------------------------------------------------------ *)
(* Figure 5                                                           *)
(* ------------------------------------------------------------------ *)

let run_fig5 () =
  section "Figure 5: latency around a replacement (n=7, 40 msg/s, CT->CT)";
  let r = F.figure5 () in
  print_string (F.render_figure5 r);
  let reports = E.check r in
  record "fig5"
    (Json.Obj
       [
         ("n", Json.Int r.E.params.E.n);
         ("seed", Json.Int r.E.params.E.seed);
         ("load_msg_per_s", Json.Float r.E.params.E.load);
         ("sent", Json.Int r.E.sent);
         ("delivered_everywhere", Json.Int r.E.delivered_everywhere);
         ("normal_mean_ms", Json.Float (Stats.mean r.E.normal));
         ("normal_p95_ms", Json.Float (Stats.percentile r.E.normal 95.0));
         ("during_mean_ms", Json.Float (Stats.mean r.E.during));
         ("switch_duration_ms", Json.Float r.E.switch_duration_ms);
         ("blocked_ms", Json.Float r.E.blocked_ms);
         ("properties_ok", Json.Bool (Dpu_props.Report.all_ok reports));
       ]);
  Format.printf "properties: %s@."
    (if Dpu_props.Report.all_ok reports then "all ok" else "VIOLATED");
  if not (Dpu_props.Report.all_ok reports) then
    Format.printf "%a" Dpu_props.Report.pp_all reports

(* ------------------------------------------------------------------ *)
(* Figure 6                                                           *)
(* ------------------------------------------------------------------ *)

let run_fig6 () =
  section "Figure 6: latency vs load (n=3 and n=7; layer overhead; during switch)";
  let outcome = F.figure6_sweep ~jobs:!jobs () in
  record_sweep "fig6" outcome.W.Sweep.stats;
  let points = Array.to_list outcome.W.Sweep.results in
  record "fig6"
    (Json.Obj
       [
         ("seed", Json.Int 1);
         ( "points",
           Json.List
             (List.map
                (fun (p : F.fig6_point) ->
                  Json.Obj
                    [
                      ("n", Json.Int p.F.n);
                      ("load_msg_per_s", Json.Float p.F.load);
                      ("no_layer_ms", Json.Float p.F.no_layer_ms);
                      ("with_layer_ms", Json.Float p.F.with_layer_ms);
                      ("during_ms", Json.Float p.F.during_ms);
                    ])
                points) );
       ]);
  print_string (F.render_figure6 points)

(* ------------------------------------------------------------------ *)
(* Throughput / saturation                                            *)
(* ------------------------------------------------------------------ *)

let run_throughput () =
  section "Throughput: saturation knee with and without ordering-path batching";
  let module T = W.Throughput in
  let batched =
    Some { Dpu_protocols.Batcher.max_batch = 16; max_delay_ms = 5.0 }
  in
  (* One sweep cell per (batching, offered) step. The unbatched curve
     stops at 800 msg/s — it saturates near 580, and overload points
     only get more expensive to drain — while the batched one runs to
     3200 to find its own knee. *)
  let grid =
    Array.of_list
      (List.map (fun l -> (None, l)) [ 100.0; 200.0; 400.0; 800.0 ]
      @ List.map (fun l -> (batched, l)) [ 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 ])
  in
  let outcome =
    W.Sweep.run ~jobs:!jobs ~cells:(Array.length grid) (fun _ i ->
        let batching, offered = grid.(i) in
        T.measure { T.default with T.batching } ~offered)
  in
  record_sweep "throughput" outcome.W.Sweep.stats;
  let curve batching =
    let pts = ref [] in
    Array.iteri
      (fun i pt -> if fst grid.(i) == batching then pts := pt :: !pts)
      outcome.W.Sweep.results;
    T.curve_of ~batching (List.rev !pts)
  in
  let off = curve None and on = curve batched in
  (* Closed loop: enough outstanding messages per node to keep batches
     full; settles at the sustainable rate with no offered-load guess. *)
  let closed batching =
    T.saturate ~params:{ T.default with T.batching } ~clients_per_node:16 ()
  in
  let closed_off = closed None and closed_on = closed batched in
  let pt_rows (c : T.curve) =
    List.map
      (fun (p : T.point) ->
        [
          T.batching_label c.T.batching;
          Printf.sprintf "%.0f" p.T.offered;
          Printf.sprintf "%.1f" p.T.delivered_per_s;
          Printf.sprintf "%.2f" p.T.p50_ms;
          Printf.sprintf "%.2f" p.T.p99_ms;
        ])
      c.T.points
  in
  print_string
    (W.Ascii.table
       ~header:[ "batching"; "offered [msg/s]"; "delivered [msg/s]"; "p50 [ms]"; "p99 [ms]" ]
       (pt_rows off @ pt_rows on));
  print_string
    (W.Ascii.chart ~title:"saturation: delivered vs offered"
       ~x_unit:"offered msg/s" ~y_unit:"delivered msg/s"
       [
         ("batching off", List.map (fun (p : T.point) -> (p.T.offered, p.T.delivered_per_s)) off.T.points);
         ("batching on", List.map (fun (p : T.point) -> (p.T.offered, p.T.delivered_per_s)) on.T.points);
       ]);
  Printf.printf
    "knee: %.0f -> %.0f msg/s; saturated: %.1f -> %.1f msg/s (%.1fx)\n\
     closed loop (16 clients/node): %.1f -> %.1f msg/s (%.1fx)\n"
    off.T.knee on.T.knee off.T.saturated_per_s on.T.saturated_per_s
    (on.T.saturated_per_s /. off.T.saturated_per_s)
    closed_off.T.delivered_per_s closed_on.T.delivered_per_s
    (closed_on.T.delivered_per_s /. closed_off.T.delivered_per_s);
  T.write_csv "BENCH_throughput.csv" [ off; on ];
  Printf.printf "saturation curves written to BENCH_throughput.csv\n";
  let curve_json (c : T.curve) =
    Json.Obj
      [
        ("batching", Json.Str (T.batching_label c.T.batching));
        ("knee_msg_s", Json.Float c.T.knee);
        ("saturated_msg_s", Json.Float c.T.saturated_per_s);
        ( "points",
          Json.List
            (List.map
               (fun (p : T.point) ->
                 Json.Obj
                   [
                     ("offered_msg_s", Json.Float p.T.offered);
                     ("delivered_msg_s", Json.Float p.T.delivered_per_s);
                     ("p50_ms", Json.Float p.T.p50_ms);
                     ("p99_ms", Json.Float p.T.p99_ms);
                     ("measured", Json.Int p.T.measured);
                   ])
               c.T.points) );
      ]
  in
  record "throughput"
    (Json.Obj
       [
         ("seed", Json.Int T.default.T.seed);
         ("n", Json.Int T.default.T.n);
         ("max_batch", Json.Int 16);
         ("max_delay_ms", Json.Float 5.0);
         ("curves", Json.List [ curve_json off; curve_json on ]);
         ( "closed_loop",
           Json.Obj
             [
               ("off_msg_s", Json.Float closed_off.T.delivered_per_s);
               ("on_msg_s", Json.Float closed_on.T.delivered_per_s);
             ] );
         ( "saturation_speedup",
           Json.Float (on.T.saturated_per_s /. off.T.saturated_per_s) );
       ])

(* ------------------------------------------------------------------ *)
(* Sharded fabric scaling                                             *)
(* ------------------------------------------------------------------ *)

let run_shard () =
  section "Sharded fabric: rolling replacement under load, n x shards grid";
  let module Sh = W.Shard in
  (* The full {7,31,63,127} x {1,4,16} grid minus infeasible cells:
     shards <= n, and per-group size capped at 63 — a single 127-node
     consensus group needs minutes of wall clock per virtual second,
     which is precisely the problem the sharded fabric removes. *)
  let grid =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun shards ->
            if shards <= n && n / shards <= 63 then Some (n, shards) else None)
          [ 1; 4; 16 ])
      [ 7; 31; 63; 127 ]
  in
  let grid = Array.of_list grid in
  let outcome =
    W.Sweep.run ~jobs:!jobs ~cells:(Array.length grid) (fun _ i ->
        let n, shards = grid.(i) in
        let params =
          {
            Sh.default with
            n;
            shards;
            load_per_s = 1.5 *. float_of_int n;
            warmup_ms = 100.0;
            duration_ms = 600.0;
            drain_ms = 1_200.0;
            rolling = Some { Sh.default_rolling with start_ms = 250.0 };
          }
        in
        let r = Sh.run ~params () in
        let sum f = List.fold_left (fun a s -> a + f s) 0 r.Sh.per_shard in
        let worst f =
          List.fold_left (fun a s -> Float.max a (f s)) 0.0 r.Sh.per_shard
        in
        ( sum (fun s -> s.Sh.sent),
          sum (fun s -> s.Sh.delivered),
          worst (fun s -> s.Sh.p50_ms),
          worst (fun s -> s.Sh.p99_ms),
          r.Sh.max_concurrent_switches,
          r.Sh.all_ok ))
  in
  record_sweep "shard" outcome.W.Sweep.stats;
  let cells = Array.to_list (Array.mapi (fun i r -> (grid.(i), r)) outcome.W.Sweep.results) in
  print_string
    (W.Ascii.table
       ~header:
         [ "n"; "shards"; "sent"; "delivered"; "worst p50 [ms]"; "worst p99 [ms]";
           "max swaps in flight"; "all ok" ]
       (List.map
          (fun ((n, shards), (sent, delivered, p50, p99, maxcc, ok)) ->
            [
              string_of_int n;
              string_of_int shards;
              string_of_int sent;
              string_of_int delivered;
              Printf.sprintf "%.2f" p50;
              Printf.sprintf "%.2f" p99;
              string_of_int maxcc;
              string_of_bool ok;
            ])
          cells));
  print_endline
    "  (every cell performs a rolling replacement across all its shards while\n\
    \   the load runs; \"max swaps in flight\" > 1 means shard replacements\n\
    \   genuinely overlapped rather than serialising)";
  record "shard"
    (Json.Obj
       [
         ("seed", Json.Int Sh.default.Sh.seed);
         ( "cells",
           Json.List
             (List.map
                (fun ((n, shards), (sent, delivered, p50, p99, maxcc, ok)) ->
                  Json.Obj
                    [
                      ("n", Json.Int n);
                      ("shards", Json.Int shards);
                      ("sent", Json.Int sent);
                      ("delivered", Json.Int delivered);
                      ("worst_p50_ms", Json.Float p50);
                      ("worst_p99_ms", Json.Float p99);
                      ("max_concurrent_switches", Json.Int maxcc);
                      ("all_ok", Json.Bool ok);
                    ])
                cells) );
       ])

(* ------------------------------------------------------------------ *)
(* Headline numbers of §6                                             *)
(* ------------------------------------------------------------------ *)

let run_headline () =
  section "Headline numbers (paper §6 vs this reproduction)";
  let h, sweep_stats = F.headline_sweep ~jobs:!jobs () in
  record_sweep "headline" sweep_stats;
  record "headline"
    (Json.Obj
       [
         ("seeds", Json.List (List.map (fun s -> Json.Int s) [ 1; 2; 3; 4; 5 ]));
         ("layer_overhead_pct", Json.Float h.F.layer_overhead_pct);
         ("spike_pct", Json.Float h.F.spike_pct);
         ("spike_duration_ms", Json.Float h.F.spike_duration_ms);
         ("app_blocked_ms", Json.Float h.F.app_blocked_ms);
       ]);
  print_string (F.render_headline h)

(* ------------------------------------------------------------------ *)
(* Approach comparison (§4.2 / §5.3 quantified)                       *)
(* ------------------------------------------------------------------ *)

let run_compare () =
  section "DPU approach comparison: Repl vs Graceful Adaptation vs Maestro";
  let rows, sweep_stats = F.compare_approaches_sweep ~jobs:!jobs () in
  record_sweep "compare" sweep_stats;
  record "compare"
    (Json.Obj
       [
         ("seed", Json.Int 1);
         ( "approaches",
           Json.List
             (List.map
                (fun (row : F.comparison_row) ->
                  Json.Obj
                    [
                      ("approach", Json.Str (E.approach_name row.F.approach));
                      ("normal_ms", Json.Float row.F.normal_ms);
                      ("during_switch_ms", Json.Float row.F.during_switch_ms);
                      ("switch_duration_ms", Json.Float row.F.switch_duration);
                      ("blocked_ms", Json.Float row.F.blocked);
                      ("all_delivered", Json.Bool row.F.all_delivered);
                    ])
                rows) );
       ]);
  print_string (F.render_comparison rows);
  print_string
    (W.Ascii.vbars
       (List.map
          (fun r -> (E.approach_name r.F.approach ^ " blocked [ms]", r.F.blocked))
          rows));
  (* The flexibility difference (§4.2): switching to a protocol that
     needs services absent from the stack. *)
  Printf.printf
    "\nflexibility: switch seq->ct (new protocol requires consensus+rbcast)\n";
  let try_switch approach =
    let r =
      E.run
        {
          E.default with
          n = 4;
          load = 20.0;
          duration_ms = 4_000.0;
          switch_at_ms = 2_000.0;
          initial = Dpu_core.Variants.sequencer;
          switch_to = Some Dpu_core.Variants.ct;
          approach;
        }
    in
    Printf.printf "  %-10s -> %s\n" (E.approach_name approach)
      (match r.E.switch_window with
      | Some _ -> "switched (substrate built on the fly)"
      | None -> "REFUSED (cannot create providers for new services)")
  in
  try_switch E.Repl;
  try_switch E.Graceful

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

(* Fan an (independent-cell) grid out to the worker pool; each cell
   returns one pre-rendered table row, so rows stay in grid order. *)
let sweep_rows name grid cell =
  let grid = Array.of_list grid in
  let outcome =
    W.Sweep.run ~jobs:!jobs ~cells:(Array.length grid) (fun _ idx -> cell grid.(idx))
  in
  record_sweep name outcome.W.Sweep.stats;
  Array.to_list outcome.W.Sweep.results

let run_ablation () =
  section "Ablation: consensus batching (paper ran consensus per message)";
  let rows =
    sweep_rows "ablation_batching"
      (List.concat_map
         (fun batch_size -> List.map (fun load -> (batch_size, load)) [ 40.0; 80.0 ])
         [ 1; 4; 16 ])
      (fun (batch_size, load) ->
        let r =
          E.run
            { E.default with batch_size; load; switch_to = None; duration_ms = 6_000.0 }
        in
        [
          string_of_int batch_size;
          Printf.sprintf "%.0f" load;
          Printf.sprintf "%.2f" (Stats.mean r.E.normal);
          Printf.sprintf "%.2f" (Stats.percentile r.E.normal 95.0);
        ])
  in
  print_string
    (W.Ascii.table ~header:[ "batch"; "load"; "mean [ms]"; "p95 [ms]" ] rows);

  section "Ablation: per-hop dispatch cost (stack depth sensitivity)";
  let hops_per_message r =
    (* Total executed dispatches across all stacks, per sent message. *)
    let collector_sent = r.E.sent in
    ignore collector_sent;
    0.0
  in
  ignore hops_per_message;
  let dispatches_per_msg approach hop_cost =
    let profile =
      {
        Dpu_core.Stack_builder.default_profile with
        layer =
          (match approach with
          | E.No_layer -> None
          | _ -> Some Dpu_core.Repl.protocol_name);
      }
    in
    let config =
      { Dpu_core.Middleware.default_config with profile; seed = 1; hop_cost }
    in
    let mw = Dpu_core.Middleware.create ~config ~n:7 () in
    W.Load_gen.start mw ~rate_per_s:40.0 ~until:2_000.0 ();
    Dpu_core.Middleware.run_until_quiescent ~limit:30_000.0 mw;
    let total =
      Array.fold_left
        (fun acc stack ->
          let c, i = Dpu_kernel.Stack.dispatch_counts stack in
          acc + c + i)
        0
        (Dpu_kernel.System.stacks (Dpu_core.Middleware.system mw))
    in
    let sent = Dpu_core.Collector.send_count (Dpu_core.Middleware.collector mw) in
    float_of_int total /. float_of_int (max sent 1)
  in
  let rows =
    List.map
      (fun hop_cost ->
        let with_layer =
          E.run { E.default with hop_cost; switch_to = None; duration_ms = 4_000.0 }
        in
        let without =
          E.run
            {
              E.default with
              hop_cost;
              approach = E.No_layer;
              switch_to = None;
              duration_ms = 4_000.0;
            }
        in
        let overhead =
          (Stats.mean with_layer.E.normal -. Stats.mean without.E.normal)
          /. Stats.mean without.E.normal *. 100.0
        in
        [
          Printf.sprintf "%.2f" hop_cost;
          Printf.sprintf "%.2f" (Stats.mean without.E.normal);
          Printf.sprintf "%.2f" (Stats.mean with_layer.E.normal);
          Printf.sprintf "%+.1f%%" overhead;
        ])
      [ 0.1; 0.25; 0.5; 1.0 ]
  in
  print_string
    (W.Ascii.table
       ~header:[ "hop [ms]"; "no layer [ms]"; "with layer [ms]"; "layer overhead" ]
       rows);
  Printf.printf
    "dispatch hops per message (all stacks): no layer %.1f, with layer %.1f\n"
    (dispatches_per_msg E.No_layer 0.5)
    (dispatches_per_msg E.Repl 0.5);

  section "Ablation: ABcast variant latency profiles (same service, n=3/7)";
  let rows =
    sweep_rows "ablation_variants"
      (List.concat_map
         (fun n -> List.map (fun variant -> (n, variant)) Dpu_core.Variants.all)
         [ 3; 7 ])
      (fun (n, variant) ->
        let r =
          E.run
            {
              E.default with
              n;
              load = 30.0;
              initial = variant;
              switch_to = None;
              duration_ms = 5_000.0;
            }
        in
        [
          variant;
          string_of_int n;
          Printf.sprintf "%.2f" (Stats.mean r.E.normal);
          Printf.sprintf "%.2f" (Stats.percentile r.E.normal 95.0);
        ])
  in
  print_string (W.Ascii.table ~header:[ "variant"; "n"; "mean [ms]"; "p95 [ms]" ] rows);

  section "Ablation: the price of ordering (reliable < FIFO < causal < total)";
  let ordering_row name register_svc svc wrap_bcast unwrap =
    let system = Dpu_kernel.System.create ~seed:1 ~n:5 () in
    Dpu_protocols.Udp.register system;
    Dpu_protocols.Rp2p.register system;
    Dpu_protocols.Fd.register system;
    Dpu_protocols.Rbcast.register system;
    Dpu_protocols.Consensus_ct.register system;
    Dpu_protocols.Abcast_ct.register system;
    register_svc system;
    Dpu_kernel.System.iter_stacks system (fun stack ->
        Dpu_kernel.Registry.ensure_bound (Dpu_kernel.System.registry system) stack svc);
    let clock = Dpu_kernel.System.clock system in
    let stats = Dpu_engine.Stats.create () in
    let sent : (int, float) Hashtbl.t = Hashtbl.create 256 in
    (* Latency to the farthest receiver. *)
    let worst : (int, float) Hashtbl.t = Hashtbl.create 256 in
    for node = 0 to 4 do
      ignore
        (Dpu_kernel.Stack.add_module
           (Dpu_kernel.System.stack system node)
           ~name:"meter" ~provides:[] ~requires:[ svc ]
           (fun _ _ ->
             {
               Dpu_kernel.Stack.default_handlers with
               handle_indication =
                 (fun s p ->
                   if Dpu_kernel.Service.equal s svc then
                     match unwrap p with
                     | Some i ->
                       let t = Clock.now clock in
                       Hashtbl.replace worst i
                         (Float.max t
                            (Option.value ~default:0.0 (Hashtbl.find_opt worst i)))
                     | None -> ());
             })
          : Dpu_kernel.Stack.module_)
    done;
    for i = 0 to 99 do
      let node = i mod 5 in
      ignore
        (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
             Hashtbl.replace sent i (Clock.now clock);
             Dpu_kernel.Stack.call
               (Dpu_kernel.System.stack system node)
               svc (wrap_bcast i)))
    done;
    Dpu_kernel.System.run_until_quiescent ~limit:30_000.0 system;
    Hashtbl.iter
      (fun i t1 ->
        match Hashtbl.find_opt sent i with
        | Some t0 -> Dpu_engine.Stats.add stats (t1 -. t0)
        | None -> ())
      worst;
    [
      name;
      Printf.sprintf "%.2f" (Dpu_engine.Stats.mean stats);
      Printf.sprintf "%.2f" (Dpu_engine.Stats.percentile stats 95.0);
    ]
  in
  let module K = Dpu_kernel in
  print_string
    (W.Ascii.table
       ~header:[ "guarantee"; "mean worst-receiver latency [ms]"; "p95 [ms]" ]
       [
         ordering_row "reliable (rbcast)"
           (fun _ -> ())
           Dpu_protocols.Rbcast.service
           (fun i ->
             Dpu_protocols.Rbcast.Bcast { size = 512; payload = Dpu_core.App_msg.App (K.Msg.make ~origin:0 ~seq:i ~size:512 "x") })
           (function
             | Dpu_protocols.Rbcast.Deliver { payload = Dpu_core.App_msg.App m; _ } ->
               Some m.K.Msg.id.K.Msg.seq
             | _ -> None);
         ordering_row "FIFO"
           (fun system -> Dpu_protocols.Fifo_bcast.register system)
           Dpu_protocols.Fifo_bcast.service
           (fun i ->
             Dpu_protocols.Fifo_bcast.Bcast { size = 512; payload = Dpu_core.App_msg.App (K.Msg.make ~origin:0 ~seq:i ~size:512 "x") })
           (function
             | Dpu_protocols.Fifo_bcast.Deliver { payload = Dpu_core.App_msg.App m; _ } ->
               Some m.K.Msg.id.K.Msg.seq
             | _ -> None);
         ordering_row "causal"
           (fun system -> Dpu_protocols.Causal_bcast.register system)
           Dpu_protocols.Causal_bcast.service
           (fun i ->
             Dpu_protocols.Causal_bcast.Bcast { size = 512; payload = Dpu_core.App_msg.App (K.Msg.make ~origin:0 ~seq:i ~size:512 "x") })
           (function
             | Dpu_protocols.Causal_bcast.Deliver { payload = Dpu_core.App_msg.App m; _ } ->
               Some m.K.Msg.id.K.Msg.seq
             | _ -> None);
         ordering_row "total (abcast over consensus)"
           (fun _ -> ())
           K.Service.abcast
           (fun i ->
             Dpu_protocols.Abcast_iface.Broadcast { size = 512; payload = Dpu_core.App_msg.App (K.Msg.make ~origin:0 ~seq:i ~size:512 "x") })
           (function
             | Dpu_protocols.Abcast_iface.Deliver { payload = Dpu_core.App_msg.App m; _ } ->
               Some m.K.Msg.id.K.Msg.seq
             | _ -> None);
       ]);

  section "Ablation: heterogeneous switch matrix (during-switch latency)";
  let rows =
    sweep_rows "ablation_switch_matrix"
      (List.concat_map
         (fun from_p ->
           List.filter_map
             (fun to_p -> if from_p = to_p then None else Some (from_p, to_p))
             Dpu_core.Variants.all)
         Dpu_core.Variants.all)
      (fun (from_p, to_p) ->
        let r =
          E.run
            {
              E.default with
              n = 5;
              load = 30.0;
              initial = from_p;
              switch_to = Some to_p;
              duration_ms = 6_000.0;
              switch_at_ms = 3_000.0;
            }
        in
        [
          Printf.sprintf "%s -> %s" from_p to_p;
          Printf.sprintf "%.2f" (Stats.mean r.E.normal);
          Printf.sprintf "%.2f" (Stats.mean r.E.during);
          Printf.sprintf "%.1f" r.E.switch_duration_ms;
          string_of_bool (r.E.delivered_everywhere = r.E.sent);
        ])
  in
  print_string
    (W.Ascii.table
       ~header:[ "switch"; "normal [ms]"; "during [ms]"; "window [ms]"; "all delivered" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Consensus replacement (paper §7 / TR [16])                         *)
(* ------------------------------------------------------------------ *)

let run_consensus () =
  section "Extension: CT vs Paxos consensus (same service, same stack)";
  let impl_row initial =
    let profile =
      { Dpu_core.Stack_builder.default_profile with consensus_layer = Some initial }
    in
    let config = { Dpu_core.Middleware.default_config with profile; seed = 1 } in
    let mw = Dpu_core.Middleware.create ~config ~n:5 () in
    W.Load_gen.start mw ~rate_per_s:30.0 ~until:5_000.0 ();
    Dpu_core.Middleware.run_until_quiescent ~limit:60_000.0 mw;
    let stats = Dpu_engine.Series.stats (Dpu_core.Middleware.latency_series mw) in
    [
      initial;
      Printf.sprintf "%.2f" (Stats.mean stats);
      Printf.sprintf "%.2f" (Stats.percentile stats 95.0);
    ]
  in
  print_string
    (W.Ascii.table
       ~header:[ "consensus impl"; "mean [ms]"; "p95 [ms]" ]
       [
         impl_row Dpu_protocols.Consensus_ct.protocol_name;
         impl_row Dpu_protocols.Consensus_paxos.protocol_name;
       ]);

  section "Extension: hot-swapping consensus (CT -> Paxos) under ABcast load";
  let profile =
    {
      Dpu_core.Stack_builder.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  let config = { Dpu_core.Middleware.default_config with profile; seed = 1 } in
  let mw = Dpu_core.Middleware.create ~config ~n:5 () in
  W.Load_gen.start mw ~rate_per_s:40.0 ~until:8_000.0 ();
  let clock = Dpu_kernel.System.clock (Dpu_core.Middleware.system mw) in
  ignore
    (Clock.defer clock ~delay:4_000.0 (fun () ->
         Dpu_core.Middleware.change_consensus mw ~node:2
           Dpu_protocols.Consensus_paxos.protocol_name));
  Dpu_core.Middleware.run_until_quiescent ~limit:60_000.0 mw;
  let series = Dpu_core.Middleware.latency_series mw in
  let before = Dpu_engine.Series.stats_between series ~lo:500.0 ~hi:4_000.0 in
  let around = Dpu_engine.Series.stats_between series ~lo:4_000.0 ~hi:4_500.0 in
  let after = Dpu_engine.Series.stats_between series ~lo:4_500.0 ~hi:8_000.0 in
  print_string
    (W.Ascii.table
       ~header:[ "phase"; "mean [ms]"; "p95 [ms]"; "msgs" ]
       [
         [ "CT (before switch)"; Printf.sprintf "%.2f" (Stats.mean before);
           Printf.sprintf "%.2f" (Stats.percentile before 95.0);
           string_of_int (Stats.count before) ];
         [ "around the switch"; Printf.sprintf "%.2f" (Stats.mean around);
           Printf.sprintf "%.2f" (Stats.percentile around 95.0);
           string_of_int (Stats.count around) ];
         [ "Paxos (after switch)"; Printf.sprintf "%.2f" (Stats.mean after);
           Printf.sprintf "%.2f" (Stats.percentile after 95.0);
           string_of_int (Stats.count after) ];
       ]);
  let reports =
    Dpu_props.Abcast_props.check_all (Dpu_core.Middleware.collector mw)
      ~correct:[ 0; 1; 2; 3; 4 ]
  in
  Format.printf "properties across the consensus switch: %s@."
    (if Dpu_props.Report.all_ok reports then "all ok" else "VIOLATED");

  section "Ablation: adaptive vs fixed retransmission timeout (batch=16, load=80)";
  let run_with_rp2p label rp2p_config =
    let profile = { Dpu_core.Stack_builder.default_profile with batch_size = 16 } in
    let config =
      { Dpu_core.Middleware.default_config with profile; seed = 1; hop_cost = 0.5 }
    in
    let mw =
      Dpu_core.Middleware.create ~config
        ~register_extra:(fun system ->
          (* Most recent registration wins: override rp2p. *)
          Dpu_protocols.Rp2p.register ~config:rp2p_config system)
        ~n:7 ()
    in
    W.Load_gen.start mw ~rate_per_s:80.0 ~size:4096 ~until:5_000.0 ();
    Dpu_core.Middleware.run_until_quiescent ~limit:120_000.0 mw;
    let stats = Dpu_engine.Series.stats (Dpu_core.Middleware.latency_series mw) in
    let retrans =
      Array.fold_left
        (fun acc stack -> acc + (Dpu_protocols.Rp2p.stats stack).Dpu_protocols.Rp2p.retransmissions)
        0
        (Dpu_kernel.System.stacks (Dpu_core.Middleware.system mw))
    in
    [
      label;
      Printf.sprintf "%.1f" (Stats.mean stats);
      Printf.sprintf "%.1f" (Stats.percentile stats 95.0);
      string_of_int retrans;
    ]
  in
  print_string
    (W.Ascii.table
       ~header:[ "rp2p timeout"; "mean [ms]"; "p95 [ms]"; "retransmissions" ]
       [
         run_with_rp2p "adaptive (Jacobson+storm backoff)"
           Dpu_protocols.Rp2p.default_config;
         run_with_rp2p "fixed 10 ms (lucky guess)"
           { Dpu_protocols.Rp2p.default_config with adaptive = false; max_rto_ms = 200.0 };
         run_with_rp2p "fixed 3 ms (below loaded RTT)"
           {
             Dpu_protocols.Rp2p.default_config with
             rto_ms = 3.0;
             adaptive = false;
             max_rto_ms = 200.0;
           };
       ]);
  print_endline
    "  (a fixed timeout below the loaded round-trip self-amplifies: every\n\
    \   retransmission feeds the queue that delayed the ack; the adaptive\n\
    \   estimator with a persistent storm backoff breaks that loop)" 

(* ------------------------------------------------------------------ *)
(* Bounded model checking of Algorithm 1                              *)
(* ------------------------------------------------------------------ *)

let run_model () =
  section "Model checking Algorithm 1 (exhaustive within bounds)";
  let module M = Dpu_model.Algo1 in
  let row label mutation bounds =
    let t0 = Unix.gettimeofday () in
    let r = M.check ~mutation ~bounds () in
    let outcome, states =
      match r with
      | M.Verified { states; _ } -> ("verified", states)
      | M.Violation { property; states; _ } -> ("VIOLATION: " ^ property, states)
      | M.Bound_exceeded { states } -> ("bound exceeded", states)
    in
    [ label; M.mutation_name mutation; outcome; string_of_int states;
      Printf.sprintf "%.1f" (Unix.gettimeofday () -. t0) ]
  in
  let b = M.default_bounds in
  print_string
    (W.Ascii.table
       ~header:[ "bounds"; "variant"; "result"; "states"; "wall [s]" ]
       [
         row "n=2 s=2 c=1" M.Faithful b;
         row "n=3 s=1 c=1" M.Faithful { b with nodes = 3; sends = 1 };
         row "n=2 s=2 c=1 +crash" M.Faithful { b with crashes = 1 };
         row "n=2 s=2 c=1" M.No_sn_check b;
         row "n=2 s=2 c=1" M.No_reissue b;
         row "n=2 s=2 c=1" M.No_undelivered_removal b;
         row "n=2 s=1 c=2" M.Faithful { b with sends = 1; changes = 2 };
         row "n=2 s=1 c=2" M.Fixed_line10 { b with sends = 1; changes = 2 };
       ]);
  print_endline
    "  (the n=2 s=1 c=2 rows are the finding: Algorithm 1 as printed breaks\n\
    \   uniform agreement under overlapping changeABcast requests; the\n\
    \   symmetric line-10 generation check, which this repo implements,\n\
    \   restores every property)";
  print_endline "\nthe as-printed counterexample, in full:";
  (match M.check ~mutation:M.Faithful ~bounds:{ b with sends = 1; changes = 2 } () with
  | M.Violation _ as r -> Format.printf "%a@." M.pp_result r
  | M.Verified _ | M.Bound_exceeded _ -> ());

  section "Model checking the consensus replacement layer (extension)";
  let module C = Dpu_model.Consswap in
  let crow label variant bounds =
    let t0 = Unix.gettimeofday () in
    let r = C.check ~variant ~bounds () in
    let outcome, states =
      match r with
      | C.Verified { states; _ } -> ("verified", states)
      | C.Violation { property; states; _ } -> ("VIOLATION: " ^ property, states)
      | C.Bound_exceeded { states } -> ("bound exceeded", states)
    in
    [ label; C.variant_name variant; outcome; string_of_int states;
      Printf.sprintf "%.1f" (Unix.gettimeofday () -. t0) ]
  in
  let cb = C.default_bounds in
  print_string
    (W.Ascii.table
       ~header:[ "bounds"; "variant"; "result"; "states"; "wall [s]" ]
       [
         crow "n=2 i=2 c=1" C.Sound cb;
         crow "n=2 i=4 c=1" C.Sound { cb with instances = 4 };
         crow "n=3 i=2 c=1" C.Sound { cb with nodes = 3 };
         crow "n=2 i=2 c=1" C.No_prefix_defer cb;
         crow "n=2 i=2 c=1" C.No_stale_discard cb;
         crow "n=2 i=2 c=1" C.No_reissue cb;
       ]);
  print_endline
    "  (the prefix-defer rule is essential: without it, a stack that switches\n\
    \   early re-decides an instance a slower stack already accepted under the\n\
    \   old implementation. The stale-discard and re-issue guards verify as\n\
    \   redundant under the sequential-client contract: defense-in-depth.)";
  (match C.check ~variant:C.No_prefix_defer () with
  | C.Violation _ as r ->
    print_endline "\nthe no-defer counterexample, in full:";
    Format.printf "%a@." C.pp_result r
  | C.Verified _ | C.Bound_exceeded _ -> ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let heap_churn =
    Test.make ~name:"heap: 64x add+pop"
      (Staged.stage (fun () ->
           let h = Dpu_engine.Heap.create () in
           for i = 0 to 63 do
             Dpu_engine.Heap.add h ~priority:(float_of_int (i * 7 mod 64)) i
           done;
           let rec drain () =
             match Dpu_engine.Heap.pop h with Some _ -> drain () | None -> ()
           in
           drain ()))
  in
  let rng_floats =
    let rng = Dpu_engine.Rng.create ~seed:1 in
    Test.make ~name:"rng: 64x float"
      (Staged.stage (fun () ->
           for _ = 1 to 64 do
             ignore (Dpu_engine.Rng.float rng : float)
           done))
  in
  let sim_cycle =
    Test.make ~name:"sim: schedule+run 64 events"
      (Staged.stage (fun () ->
           let sim = Sim.create () in
           for i = 1 to 64 do
             ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> ()))
           done;
           Sim.run sim))
  in
  let stack_dispatch =
    Test.make ~name:"kernel: 64 call dispatches"
      (Staged.stage (fun () ->
           let sim = Sim.create () in
           let trace = Dpu_kernel.Trace.create ~enabled:false () in
           let stack = Dpu_kernel.Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace () in
           let svc = Dpu_kernel.Service.make "s" in
           let m =
             Dpu_kernel.Stack.add_module stack ~name:"sink" ~provides:[ svc ] ~requires:[]
               (fun _ _ -> Dpu_kernel.Stack.default_handlers)
           in
           Dpu_kernel.Stack.bind stack svc m;
           for _ = 1 to 64 do
             Dpu_kernel.Stack.call stack svc Dpu_kernel.Payload.Unit
           done;
           Sim.run sim))
  in
  let abcast_message =
    Test.make ~name:"system: one CT-ABcast message (n=3)"
      (Staged.stage (fun () ->
           let mw = Dpu_core.Middleware.create ~n:3 () in
           ignore (Dpu_core.Middleware.broadcast mw ~node:0 "x" : Dpu_kernel.Msg.t);
           Dpu_core.Middleware.run_until_quiescent ~limit:5_000.0 mw))
  in
  [ heap_churn; rng_floats; sim_cycle; stack_dispatch; abcast_message ]

let run_micro () =
  section "Bechamel micro-benchmarks (wall-clock cost of the primitives)";
  let open Bechamel in
  let open Bechamel.Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"dpu" [] ~fmt:"%s %s" in
  ignore grouped;
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns_per_run ] ->
            Printf.printf "  %-40s %12.1f ns/run\n%!" name ns_per_run
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        analyzed)
    (micro_tests ())

(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("headline", run_headline);
    ("compare", run_compare);
    ("throughput", run_throughput);
    ("shard", run_shard);
    ("ablation", run_ablation);
    ("consensus", run_consensus);
    ("model", run_model);
    ("micro", run_micro);
  ]

let usage () =
  Printf.eprintf
    "usage: bench/main.exe [-j N | --jobs N] [SECTION...]\nsections: %s\n"
    (String.concat " " (List.map fst all_sections));
  exit 2

let () =
  (* Minimal hand parsing: [-j N] / [--jobs N] / [--jobs=N] anywhere,
     remaining arguments name sections (default: all). *)
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: v :: rest -> (
      match int_of_string_opt v with
      | Some j when j >= 1 ->
        jobs := j;
        parse acc rest
      | Some _ | None -> usage ())
    | [ "-j" ] | [ "--jobs" ] -> usage ()
    | arg :: rest
      when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
      | Some j when j >= 1 ->
        jobs := j;
        parse acc rest
      | Some _ | None -> usage ())
    | name :: rest -> parse (name :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst all_sections
    | names -> names
  in
  List.iter
    (fun name ->
      if not (List.mem_assoc name all_sections) then begin
        Printf.eprintf "unknown section %s\n" name;
        usage ()
      end)
    requested;
  let t0 = Unix.gettimeofday () in
  (* Per-section wall-clock, in run order; machine-readable alongside
     the sweep speedups so the perf trajectory is diffable PR over PR. *)
  let timings =
    List.map
      (fun name ->
        let f = List.assoc name all_sections in
        let s0 = Unix.gettimeofday () in
        f ();
        (name, Json.Float (Unix.gettimeofday () -. s0)))
      requested
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let out =
    Json.Obj
      [
        ("schema", Json.Str "dpu.bench/1");
        ("sections", Json.List (List.map (fun s -> Json.Str s) requested));
        ("jobs", Json.Int !jobs);
        ("wall_clock_s", Json.Float wall_s);
        ("section_wall_s", Json.Obj timings);
        ("sweeps", Json.Obj (List.rev !sweeps));
        ("results", Json.Obj (List.rev !results));
      ]
  in
  Json.to_file "BENCH_results.json" out;
  Printf.printf "\nmachine-readable results written to BENCH_results.json\n";
  Printf.printf "(total bench wall time: %.1f s, jobs: %d)\n" wall_s !jobs
