(* Tests for the executable baselines: Maestro-style whole-stack switch
   and Graceful-Adaptation-style AAC/CA barrier adaptation. *)

open Dpu_kernel
module Core = Dpu_core
module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module B = Dpu_baselines
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check
let fail = Alcotest.fail

let mw_with ?(n = 4) ?(seed = 1) ?(initial = Core.Variants.ct) ~layer () =
  let profile = { SB.default_profile with initial_abcast = initial; layer = Some layer } in
  let config = { MW.default_config with seed; profile } in
  MW.create ~config
    ~register_extra:(fun system ->
      B.Maestro.register system;
      B.Graceful.register system)
    ~n ()

let delivery_logs mw =
  let n = MW.n mw in
  let logs = Array.make n [] in
  for node = 0 to n - 1 do
    MW.subscribe mw ~node (fun m -> logs.(node) <- Msg.id_to_string m.Msg.id :: logs.(node))
  done;
  logs

let assert_consistent ~expect_count logs =
  match Array.to_list (Array.map List.rev logs) with
  | [] -> fail "no logs"
  | first :: rest ->
    check Alcotest.int "count" expect_count (List.length first);
    check Alcotest.int "unique" expect_count (List.length (List.sort_uniq compare first));
    List.iter (fun s -> check (Alcotest.list Alcotest.string) "order" first s) rest

let drive_switch ?(msgs = 24) ?(switch_at = 80.0) ~to_p mw =
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  let n = MW.n mw in
  for i = 0 to msgs - 1 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 12.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod n) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:switch_at (fun () -> MW.change_protocol mw ~node:0 to_p));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  logs

(* ------------------------------------------------------------------ *)
(* Maestro                                                            *)
(* ------------------------------------------------------------------ *)

let test_maestro_normal_traffic () =
  let mw = mw_with ~layer:B.Maestro.protocol_name () in
  let logs = delivery_logs mw in
  for i = 0 to 9 do
    ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))
  done;
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:10 logs

let test_maestro_switch_correct () =
  let mw = mw_with ~layer:B.Maestro.protocol_name () in
  let logs = drive_switch ~to_p:Core.Variants.sequencer mw in
  assert_consistent ~expect_count:24 logs

let test_maestro_blocks_application () =
  let mw = mw_with ~layer:B.Maestro.protocol_name () in
  ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
  let blocked = B.Maestro.blocked_ms (System.stack (MW.system mw) 0) in
  (* drain (150 ms) + startup (20 ms) at least *)
  check Alcotest.bool
    (Printf.sprintf "blocked %.1f ms >= 150" blocked)
    true (blocked >= 150.0)

let test_maestro_tears_down_whole_stack () =
  let mw = mw_with ~layer:B.Maestro.protocol_name () in
  ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
  let names =
    List.map Stack.module_name (Stack.modules (System.stack (MW.system mw) 1))
  in
  (* The old consensus and old ct-abcast are gone (whole-stack rebuild);
     the sequencer needs neither, so none were recreated. *)
  check Alcotest.bool "consensus gone" false (List.mem "consensus.ct" names);
  check Alcotest.bool "old abcast gone" false (List.mem "abcast.ct" names);
  check Alcotest.bool "new abcast present" true (List.mem "abcast.seq" names);
  check Alcotest.bool "fresh rp2p present" true (List.mem "rp2p" names)

let test_maestro_reissues_inflight () =
  let mw = mw_with ~seed:5 ~layer:B.Maestro.protocol_name () in
  (* Broadcast right at the switch trigger: these are in flight when the
     switch message is ordered, get discarded by the cut, and must be
     re-broadcast through the new stack. *)
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  ignore (Clock.defer clock ~delay:10.0 (fun () ->
      MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  for i = 0 to 7 do
    ignore
      (Clock.defer clock ~delay:(12.0 +. float_of_int i) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))))
  done;
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_consistent ~expect_count:8 logs;
  let total_reissued =
    Array.fold_left
      (fun acc stack -> acc + B.Maestro.reissued stack)
      0
      (System.stacks (MW.system mw))
  in
  check Alcotest.bool "some messages were reissued" true (total_reissued > 0)

let test_maestro_generation_tagging () =
  (* Two successive switches: both must apply, in order. *)
  let mw = mw_with ~layer:B.Maestro.protocol_name () in
  ignore (delivery_logs mw);
  let clock = System.clock (MW.system mw) in
  ignore (Clock.defer clock ~delay:10.0 (fun () ->
      MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  ignore (Clock.defer clock ~delay:800.0 (fun () ->
      MW.change_protocol mw ~node:1 Core.Variants.ct));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  match Stack.bound (System.stack (MW.system mw) 2) Service.abcast with
  | Some m -> check Alcotest.string "final protocol" "abcast.ct" (Stack.module_name m)
  | None -> fail "abcast unbound"

(* ------------------------------------------------------------------ *)
(* Graceful Adaptation                                                *)
(* ------------------------------------------------------------------ *)

let test_graceful_normal_traffic () =
  let mw = mw_with ~layer:B.Graceful.protocol_name () in
  let logs = delivery_logs mw in
  for i = 0 to 9 do
    ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))
  done;
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:10 logs

let test_graceful_switch_correct () =
  let mw = mw_with ~layer:B.Graceful.protocol_name () in
  let logs = drive_switch ~to_p:Core.Variants.sequencer mw in
  assert_consistent ~expect_count:24 logs;
  match Stack.bound (System.stack (MW.system mw) 3) Service.abcast with
  | Some m -> check Alcotest.string "activated" "abcast.seq" (Stack.module_name m)
  | None -> fail "abcast unbound"

let test_graceful_never_blocks () =
  let mw = mw_with ~layer:B.Graceful.protocol_name () in
  ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
  Array.iter
    (fun stack ->
      check (Alcotest.float 0.0) "no app blocking" 0.0 (B.Maestro.blocked_ms stack))
    (System.stacks (MW.system mw))

let test_graceful_switch_duration_recorded () =
  let mw = mw_with ~layer:B.Graceful.protocol_name () in
  ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
  let d = B.Graceful.switch_duration_ms (System.stack (MW.system mw) 0) in
  check Alcotest.bool (Printf.sprintf "initiator duration %.2f > 0" d) true (d > 0.0)

let test_graceful_refuses_new_dependencies () =
  (* Sequencer stack has no consensus; adapting to the CT variant would
     need new providers, which Graceful AACs may not create (§4.2). *)
  let mw = mw_with ~initial:Core.Variants.sequencer ~layer:B.Graceful.protocol_name () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 9 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))))
  done;
  ignore (Clock.defer clock ~delay:35.0 (fun () ->
      MW.change_protocol mw ~node:0 Core.Variants.ct));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  (* Adaptation refused; traffic unharmed on the old protocol. *)
  assert_consistent ~expect_count:10 logs;
  let refusals =
    Array.fold_left
      (fun acc stack -> acc + B.Graceful.refused stack)
      0
      (System.stacks (MW.system mw))
  in
  check Alcotest.bool "someone refused" true (refusals > 0);
  match Stack.bound (System.stack (MW.system mw) 0) Service.abcast with
  | Some m -> check Alcotest.string "still sequencer" "abcast.seq" (Stack.module_name m)
  | None -> fail "abcast unbound"

let test_graceful_same_deps_accepted () =
  (* ct -> token adds fd+rp2p requirements, both already present in a ct
     stack, so the adaptation must be accepted. *)
  let mw = mw_with ~layer:B.Graceful.protocol_name () in
  let logs = drive_switch ~to_p:Core.Variants.token mw in
  assert_consistent ~expect_count:24 logs;
  match Stack.bound (System.stack (MW.system mw) 2) Service.abcast with
  | Some m -> check Alcotest.string "token active" "abcast.token" (Stack.module_name m)
  | None -> fail "abcast unbound"

(* ------------------------------------------------------------------ *)
(* Cross-approach comparison                                          *)
(* ------------------------------------------------------------------ *)

let test_comparison_blocking () =
  (* The paper's qualitative §5.3 claim, executed: only Maestro blocks
     the application. *)
  let blocked_of layer =
    let mw = mw_with ~layer () in
    ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
    Array.fold_left
      (fun acc stack -> Float.max acc (B.Maestro.blocked_ms stack))
      0.0
      (System.stacks (MW.system mw))
  in
  let repl = blocked_of Core.Repl.protocol_name in
  let graceful = blocked_of B.Graceful.protocol_name in
  let maestro = blocked_of B.Maestro.protocol_name in
  check (Alcotest.float 0.0) "repl never blocks" 0.0 repl;
  check (Alcotest.float 0.0) "graceful never blocks" 0.0 graceful;
  check Alcotest.bool "maestro blocks" true (maestro > 100.0)

let test_comparison_switch_footprint () =
  (* Repl replaces one module; Maestro rebuilds the whole stack. Count
     module churn via the kernel trace. *)
  let removals_of layer =
    let mw = mw_with ~layer () in
    ignore (drive_switch ~to_p:Core.Variants.sequencer mw);
    let trace = System.trace (MW.system mw) in
    List.length
      (Trace.filter trace (fun e ->
           match e.Trace.kind with Trace.Remove_module _ -> true | _ -> false))
  in
  let repl = removals_of Core.Repl.protocol_name in
  let maestro = removals_of B.Maestro.protocol_name in
  check Alcotest.int "repl removes nothing" 0 repl;
  check Alcotest.bool
    (Printf.sprintf "maestro removes many modules (%d)" maestro)
    true
    (maestro >= 4 * 5)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "baselines"
    [
      ( "maestro",
        [
          tc "normal traffic" test_maestro_normal_traffic;
          tc "switch correct" test_maestro_switch_correct;
          tc "blocks application" test_maestro_blocks_application;
          tc "whole-stack teardown" test_maestro_tears_down_whole_stack;
          tc "reissues in-flight" test_maestro_reissues_inflight;
          tc "generation tagging" test_maestro_generation_tagging;
        ] );
      ( "graceful",
        [
          tc "normal traffic" test_graceful_normal_traffic;
          tc "switch correct" test_graceful_switch_correct;
          tc "never blocks" test_graceful_never_blocks;
          tc "switch duration" test_graceful_switch_duration_recorded;
          tc "refuses new dependencies" test_graceful_refuses_new_dependencies;
          tc "same deps accepted" test_graceful_same_deps_accepted;
        ] );
      ( "comparison",
        [
          tc "blocking" test_comparison_blocking;
          tc "switch footprint" test_comparison_switch_footprint;
        ] );
    ]
