(* Tests for the multi-process sweep runner: canonical-order merging,
   bit-identical results regardless of worker count, worker-crash
   surfacing, and parent/worker metrics accounting. *)

module W = Dpu_workload
module Sweep = W.Sweep
module F = W.Figures
module Metrics = Dpu_obs.Metrics
module Json = Dpu_obs.Json

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Core runner                                                        *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  let expected = Array.init 17 (fun i -> i * i) in
  check (Alcotest.array Alcotest.int) "sequential" expected
    (Sweep.map ~jobs:1 ~cells:17 (fun i -> i * i));
  check (Alcotest.array Alcotest.int) "forked" expected
    (Sweep.map ~jobs:4 ~cells:17 (fun i -> i * i))

let test_jobs_clamped () =
  (* More workers than cells must not fork idle workers or lose cells. *)
  let o = Sweep.run ~jobs:16 ~cells:3 (fun _ i -> i) in
  check (Alcotest.array Alcotest.int) "results" [| 0; 1; 2 |] o.Sweep.results;
  check Alcotest.bool "jobs clamped" true (o.Sweep.stats.Sweep.jobs <= 3)

let test_default_jobs_env () =
  (* The DPU_JOBS env default feeds the same clamp as an explicit -j:
     asking for 32 workers over 2 cells must still fork at most 2. *)
  let restore = Sys.getenv_opt "DPU_JOBS" in
  Unix.putenv "DPU_JOBS" "32";
  let parsed = Sweep.default_jobs () in
  let o = Sweep.run ~jobs:parsed ~cells:2 (fun _ i -> i * 10) in
  Unix.putenv "DPU_JOBS" (Option.value restore ~default:"");
  check Alcotest.int "env parsed" 32 parsed;
  check (Alcotest.array Alcotest.int) "results" [| 0; 10 |] o.Sweep.results;
  check Alcotest.bool "env-sized pool clamped to cells" true
    (o.Sweep.stats.Sweep.jobs <= 2);
  Unix.putenv "DPU_JOBS" "not-a-number";
  check Alcotest.int "garbage falls back to 1" 1 (Sweep.default_jobs ());
  Unix.putenv "DPU_JOBS" (Option.value restore ~default:"")

let test_empty_and_single () =
  check Alcotest.int "zero cells" 0 (Array.length (Sweep.map ~jobs:4 ~cells:0 (fun i -> i)));
  check (Alcotest.array Alcotest.int) "one cell" [| 42 |]
    (Sweep.map ~jobs:4 ~cells:1 (fun _ -> 42))

let test_large_results_cross_pipe () =
  (* Each cell returns ~80 KB — more than a pipe buffer — so workers
     must block mid-stream and resume as the parent drains. *)
  let results =
    Sweep.map ~jobs:3 ~cells:6 (fun i -> Array.make 10_000 (float_of_int i))
  in
  check Alcotest.int "all cells" 6 (Array.length results);
  Array.iteri
    (fun i arr ->
      check Alcotest.int "payload size" 10_000 (Array.length arr);
      check (Alcotest.float 0.0) "payload content" (float_of_int i) arr.(0))
    results

let test_worker_killed_surfaces_error () =
  match
    Sweep.map ~jobs:2 ~cells:4 (fun i ->
        if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        i)
  with
  | _ -> fail "expected Worker_failed"
  | exception Sweep.Worker_failed { worker; reason } ->
    check Alcotest.int "worker index" 1 worker;
    check Alcotest.bool (Printf.sprintf "reason mentions the signal: %s" reason) true
      (String.length reason > 0)

let test_worker_exception_surfaces_error () =
  match Sweep.map ~jobs:2 ~cells:4 (fun i -> if i = 2 then failwith "boom"; i) with
  | _ -> fail "expected Worker_failed"
  | exception Sweep.Worker_failed { worker = _; reason } ->
    let contains_boom =
      let n = String.length reason in
      let rec go i = i + 4 <= n && (String.sub reason i 4 = "boom" || go (i + 1)) in
      go 0
    in
    check Alcotest.bool (Printf.sprintf "reason carries the exception: %s" reason)
      true contains_boom

let test_stats_accounting () =
  let o = Sweep.run ~jobs:2 ~cells:4 (fun _ i -> i) in
  let st = o.Sweep.stats in
  check Alcotest.int "cells" 4 st.Sweep.cells;
  check Alcotest.int "jobs" 2 st.Sweep.jobs;
  check Alcotest.bool "wall measured" true (st.Sweep.wall_s >= 0.0);
  check Alcotest.bool "cell wall measured" true (st.Sweep.cells_wall_s >= 0.0);
  check Alcotest.int "one snapshot per worker" 2 (List.length o.Sweep.snapshots)

(* ------------------------------------------------------------------ *)
(* Determinism: -j1 vs -j4 figures                                    *)
(* ------------------------------------------------------------------ *)

(* The bench's fig6 JSON section, reproduced here so the test pins the
   actual artifact bytes, not just the floats. *)
let fig6_section_json points =
  Json.Obj
    [
      ("seed", Json.Int 1);
      ( "points",
        Json.List
          (List.map
             (fun (p : F.fig6_point) ->
               Json.Obj
                 [
                   ("n", Json.Int p.F.n);
                   ("load_msg_per_s", Json.Float p.F.load);
                   ("no_layer_ms", Json.Float p.F.no_layer_ms);
                   ("with_layer_ms", Json.Float p.F.with_layer_ms);
                   ("during_ms", Json.Float p.F.during_ms);
                 ])
             points) );
    ]

let test_fig6_bit_identical_across_jobs () =
  let ns = [ 3 ] and loads = [ 10.0; 20.0 ] in
  let p1 = F.figure6 ~ns ~loads ~seed:1 ~jobs:1 () in
  let p4 = F.figure6 ~ns ~loads ~seed:1 ~jobs:4 () in
  check Alcotest.int "same cell count" (List.length p1) (List.length p4);
  List.iter2
    (fun (a : F.fig6_point) (b : F.fig6_point) ->
      check Alcotest.int "n" a.F.n b.F.n;
      check (Alcotest.float 0.0) "load" a.F.load b.F.load;
      (* Exact float equality: the per-cell latency stats must be the
         same bits, not merely close. *)
      check (Alcotest.float 0.0) "no_layer_ms" a.F.no_layer_ms b.F.no_layer_ms;
      check (Alcotest.float 0.0) "with_layer_ms" a.F.with_layer_ms b.F.with_layer_ms;
      check (Alcotest.float 0.0) "during_ms" a.F.during_ms b.F.during_ms)
    p1 p4;
  check Alcotest.string "bench JSON section byte-identical"
    (Json.to_string (fig6_section_json p1))
    (Json.to_string (fig6_section_json p4));
  check Alcotest.string "rendered figure byte-identical" (F.render_figure6 p1)
    (F.render_figure6 p4)

let test_headline_bit_identical_across_jobs () =
  let seeds = [ 1; 2; 3 ] in
  let h1 = F.headline ~n:3 ~load:20.0 ~seeds ~jobs:1 () in
  let h3 = F.headline ~n:3 ~load:20.0 ~seeds ~jobs:3 () in
  check (Alcotest.float 0.0) "overhead" h1.F.layer_overhead_pct h3.F.layer_overhead_pct;
  check (Alcotest.float 0.0) "spike" h1.F.spike_pct h3.F.spike_pct;
  check (Alcotest.float 0.0) "duration" h1.F.spike_duration_ms h3.F.spike_duration_ms;
  check (Alcotest.float 0.0) "blocked" h1.F.app_blocked_ms h3.F.app_blocked_ms;
  check Alcotest.string "rendered headline byte-identical" (F.render_headline h1)
    (F.render_headline h3)

(* ------------------------------------------------------------------ *)
(* Metrics accounting                                                 *)
(* ------------------------------------------------------------------ *)

let counters_to_crosscheck =
  [ "sim_events_executed_total"; "net_sent_total"; "net_delivered_total" ]

let test_merged_metrics_equal_worker_sums () =
  let parent = Metrics.create () in
  let outcome =
    F.figure6_sweep ~ns:[ 3 ] ~loads:[ 10.0; 20.0 ] ~seed:1 ~jobs:2 ~metrics:parent ()
  in
  check Alcotest.int "two worker snapshots" 2 (List.length outcome.W.Sweep.snapshots);
  List.iter
    (fun name ->
      let from_workers =
        List.fold_left
          (fun acc snap -> acc +. Metrics.snapshot_sum snap name)
          0.0 outcome.W.Sweep.snapshots
      in
      check Alcotest.bool (name ^ " counted something") true (from_workers > 0.0);
      check (Alcotest.float 0.0)
        (name ^ ": parent equals sum of worker snapshots")
        from_workers (Metrics.sum parent name))
    counters_to_crosscheck

let test_sequential_and_parallel_metrics_agree () =
  let m1 = Metrics.create () in
  let m2 = Metrics.create () in
  ignore (F.figure6 ~ns:[ 3 ] ~loads:[ 10.0 ] ~seed:1 ~jobs:1 ~metrics:m1 ());
  ignore (F.figure6 ~ns:[ 3 ] ~loads:[ 10.0 ] ~seed:1 ~jobs:2 ~metrics:m2 ());
  List.iter
    (fun name ->
      check (Alcotest.float 0.0) (name ^ " agrees across -j") (Metrics.sum m1 name)
        (Metrics.sum m2 name))
    counters_to_crosscheck

(* ------------------------------------------------------------------ *)
(* Metrics snapshot/merge primitives                                  *)
(* ------------------------------------------------------------------ *)

let test_snapshot_merge_semantics () =
  let a = Metrics.create () in
  let b = Metrics.create () in
  let ca = Metrics.counter a "requests_total" in
  let cb = Metrics.counter b "requests_total" in
  Metrics.add ca 3;
  Metrics.add cb 4;
  let ga = Metrics.gauge a "clock_ms" in
  let gb = Metrics.gauge b "clock_ms" in
  Metrics.set ga 10.0;
  Metrics.set gb 7.0;
  let ha = Metrics.histogram a "latency_ms" in
  let hb = Metrics.histogram b "latency_ms" in
  Metrics.observe ha 1.0;
  Metrics.observe hb 2.0;
  Metrics.observe hb 3.0;
  Metrics.merge a (Metrics.snapshot b);
  check (Alcotest.option (Alcotest.float 0.0)) "counters add" (Some 7.0)
    (Metrics.value a "requests_total");
  check (Alcotest.option (Alcotest.float 0.0)) "gauges keep max" (Some 10.0)
    (Metrics.value a "clock_ms");
  check Alcotest.int "histogram counts add" 3 (Metrics.histogram_count ha);
  (* Merging into a registry that lacks the series creates it. *)
  let fresh = Metrics.create () in
  Metrics.merge fresh (Metrics.snapshot b);
  check (Alcotest.option (Alcotest.float 0.0)) "created counter" (Some 4.0)
    (Metrics.value fresh "requests_total");
  (* A snapshot survives Marshal (the pipe boundary). *)
  let round_tripped : Metrics.snapshot =
    Marshal.from_string (Marshal.to_string (Metrics.snapshot b) []) 0
  in
  check (Alcotest.float 0.0) "marshalled snapshot intact" 4.0
    (Metrics.snapshot_sum round_tripped "requests_total")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sweep"
    [
      ( "runner",
        [
          tc "map order" test_map_order;
          tc "jobs clamped" test_jobs_clamped;
          tc "DPU_JOBS env clamped" test_default_jobs_env;
          tc "empty and single" test_empty_and_single;
          tc "large results cross pipe" test_large_results_cross_pipe;
          tc "worker killed" test_worker_killed_surfaces_error;
          tc "worker exception" test_worker_exception_surfaces_error;
          tc "stats accounting" test_stats_accounting;
        ] );
      ( "determinism",
        [
          tc "fig6 bit-identical across jobs" test_fig6_bit_identical_across_jobs;
          tc "headline bit-identical across jobs" test_headline_bit_identical_across_jobs;
        ] );
      ( "metrics",
        [
          tc "merged parent equals worker sums" test_merged_metrics_equal_worker_sums;
          tc "sequential and parallel agree" test_sequential_and_parallel_metrics_agree;
          tc "snapshot merge semantics" test_snapshot_merge_semantics;
        ] );
    ]
