(* Tests for the property checkers themselves: each checker must accept
   clean runs and reject crafted violations. *)

open Dpu_kernel
module Props = Dpu_props
module Collector = Dpu_core.Collector

let check = Alcotest.check

let id o s = { Msg.origin = o; seq = s }

(* A clean 2-node run: both messages delivered everywhere in the same
   order. *)
let clean_collector () =
  let c = Collector.create () in
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_send c ~node:1 ~id:(id 1 0) ~time:1.0;
  List.iter
    (fun node ->
      Collector.record_deliver c ~node ~id:(id 0 0) ~time:5.0;
      Collector.record_deliver c ~node ~id:(id 1 0) ~time:6.0)
    [ 0; 1 ];
  c

let assert_ok r = check Alcotest.bool r.Props.Report.property true r.Props.Report.ok

let assert_fail r =
  check Alcotest.bool (r.Props.Report.property ^ " must fail") false r.Props.Report.ok

(* ------------------------------------------------------------------ *)
(* ABcast property checkers                                           *)
(* ------------------------------------------------------------------ *)

let test_clean_run_passes () =
  let c = clean_collector () in
  List.iter assert_ok (Props.Abcast_props.check_all c ~correct:[ 0; 1 ])

let test_validity_violation () =
  let c = Collector.create () in
  (* Node 0 is correct, sends, but never delivers its own message. *)
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_deliver c ~node:1 ~id:(id 0 0) ~time:1.0;
  assert_fail (Props.Abcast_props.validity c ~correct:[ 0; 1 ]);
  (* If node 0 crashed (not in correct), no obligation. *)
  assert_ok (Props.Abcast_props.validity c ~correct:[ 1 ])

let test_agreement_violation () =
  let c = Collector.create () in
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 0) ~time:1.0;
  (* Node 1 (correct) never delivers. *)
  assert_fail (Props.Abcast_props.uniform_agreement c ~correct:[ 0; 1 ]);
  assert_ok (Props.Abcast_props.uniform_agreement c ~correct:[ 0 ])

let test_agreement_uniformity_includes_crashed_deliveries () =
  (* Uniform agreement: even if the only deliverer crashed afterwards,
     correct nodes must deliver too. *)
  let c = Collector.create () in
  Collector.record_send c ~node:2 ~id:(id 2 0) ~time:0.0;
  Collector.record_deliver c ~node:2 ~id:(id 2 0) ~time:1.0;
  (* node 2 crashed later; 0 and 1 are correct but did not deliver *)
  assert_fail (Props.Abcast_props.uniform_agreement c ~correct:[ 0; 1 ])

let test_integrity_duplicate () =
  let c = clean_collector () in
  Collector.record_deliver c ~node:1 ~id:(id 0 0) ~time:9.0;
  assert_fail (Props.Abcast_props.uniform_integrity c)

let test_integrity_never_sent () =
  let c = clean_collector () in
  Collector.record_deliver c ~node:0 ~id:(id 9 9) ~time:9.0;
  assert_fail (Props.Abcast_props.uniform_integrity c)

let test_total_order_swap () =
  let c = Collector.create () in
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_send c ~node:1 ~id:(id 1 0) ~time:0.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 0) ~time:1.0;
  Collector.record_deliver c ~node:0 ~id:(id 1 0) ~time:2.0;
  Collector.record_deliver c ~node:1 ~id:(id 1 0) ~time:1.0;
  Collector.record_deliver c ~node:1 ~id:(id 0 0) ~time:2.0;
  assert_fail (Props.Abcast_props.uniform_total_order c)

let test_total_order_gap () =
  (* Node 1 skips a message node 0 ordered earlier, then continues:
     uniform total order forbids delivering something ordered later
     while missing an earlier one. *)
  let c = Collector.create () in
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_send c ~node:0 ~id:(id 0 1) ~time:0.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 0) ~time:1.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 1) ~time:2.0;
  Collector.record_deliver c ~node:1 ~id:(id 0 1) ~time:2.0;
  assert_fail (Props.Abcast_props.uniform_total_order c)

let test_total_order_prefix_ok () =
  (* A crashed node delivering a strict prefix is fine. *)
  let c = Collector.create () in
  Collector.record_send c ~node:0 ~id:(id 0 0) ~time:0.0;
  Collector.record_send c ~node:0 ~id:(id 0 1) ~time:0.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 0) ~time:1.0;
  Collector.record_deliver c ~node:0 ~id:(id 0 1) ~time:2.0;
  Collector.record_deliver c ~node:1 ~id:(id 0 0) ~time:1.0;
  assert_ok (Props.Abcast_props.uniform_total_order c)

let test_id_of_string () =
  let i = Props.Abcast_props.id_of_string_exn "3.14" in
  check Alcotest.int "origin" 3 i.Msg.origin;
  check Alcotest.int "seq" 14 i.Msg.seq

(* ------------------------------------------------------------------ *)
(* Generic (§3) property checkers                                     *)
(* ------------------------------------------------------------------ *)

let trace_of entries =
  let t = Trace.create () in
  List.iter (fun (time, node, kind) -> Trace.record t ~time ~node kind) entries;
  t

let test_weak_wf_pass () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Call_blocked ("abcast", "m"));
        (1.0, 0, Trace.Bind ("abcast", "impl"));
        (1.0, 0, Trace.Call_unblocked "abcast");
        (1.1, 0, Trace.Call ("abcast", "m"));
      ]
  in
  assert_ok (Props.Stack_props.weak_stack_well_formedness t)

let test_weak_wf_violation () =
  let t = trace_of [ (0.0, 0, Trace.Call_blocked ("abcast", "m")) ] in
  assert_fail (Props.Stack_props.weak_stack_well_formedness t)

let test_weak_wf_crashed_node_exempt () =
  let t =
    trace_of [ (0.0, 0, Trace.Call_blocked ("abcast", "m")); (1.0, 0, Trace.Crash) ]
  in
  assert_ok (Props.Stack_props.weak_stack_well_formedness t)

let test_strong_wf () =
  let clean = trace_of [ (0.0, 0, Trace.Call ("abcast", "m")) ] in
  assert_ok (Props.Stack_props.strong_stack_well_formedness clean);
  let blocked =
    trace_of
      [
        (0.0, 0, Trace.Call_blocked ("abcast", "m"));
        (1.0, 0, Trace.Bind ("abcast", "impl"));
        (1.0, 0, Trace.Call_unblocked "abcast");
      ]
  in
  (* Weak holds but strong does not: the call did block. *)
  assert_ok (Props.Stack_props.weak_stack_well_formedness blocked);
  assert_fail (Props.Stack_props.strong_stack_well_formedness blocked)

let test_weak_operationability_pass () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Add_module "abcast.seq");
        (0.0, 1, Trace.Add_module "abcast.seq");
        (1.0, 0, Trace.Bind ("abcast", "abcast.seq"));
      ]
  in
  assert_ok
    (Props.Stack_props.weak_protocol_operationability t ~protocol:"abcast.seq"
       ~nodes:[ 0; 1 ])

let test_weak_operationability_violation () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Add_module "abcast.seq");
        (1.0, 0, Trace.Bind ("abcast", "abcast.seq"));
      ]
  in
  assert_fail
    (Props.Stack_props.weak_protocol_operationability t ~protocol:"abcast.seq"
       ~nodes:[ 0; 1 ])

let test_weak_operationability_crashed_exempt () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Add_module "abcast.seq");
        (0.5, 1, Trace.Crash);
        (1.0, 0, Trace.Bind ("abcast", "abcast.seq"));
      ]
  in
  assert_ok
    (Props.Stack_props.weak_protocol_operationability t ~protocol:"abcast.seq"
       ~nodes:[ 0; 1 ])

let test_weak_operationability_vacuous () =
  (* Never bound anywhere: no obligation. *)
  let t = trace_of [ (0.0, 0, Trace.Add_module "abcast.seq") ] in
  assert_ok
    (Props.Stack_props.weak_protocol_operationability t ~protocol:"abcast.seq"
       ~nodes:[ 0; 1 ])

let test_strong_operationability () =
  let late =
    trace_of
      [
        (0.0, 0, Trace.Add_module "p");
        (1.0, 0, Trace.Bind ("s", "p"));
        (2.0, 1, Trace.Add_module "p");  (* present only after the bind *)
      ]
  in
  assert_fail
    (Props.Stack_props.strong_protocol_operationability late ~protocol:"p"
       ~nodes:[ 0; 1 ]);
  let timely =
    trace_of
      [
        (0.0, 0, Trace.Add_module "p");
        (0.0, 1, Trace.Add_module "p");
        (1.0, 0, Trace.Bind ("s", "p"));
      ]
  in
  assert_ok
    (Props.Stack_props.strong_protocol_operationability timely ~protocol:"p"
       ~nodes:[ 0; 1 ])

let test_check_generic_bundle () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Add_module "p");
        (0.0, 1, Trace.Add_module "p");
        (1.0, 0, Trace.Bind ("s", "p"));
      ]
  in
  let reports = Props.Stack_props.check_generic t ~protocols:[ "p" ] ~nodes:[ 0; 1 ] in
  check Alcotest.int "wf + one per protocol" 2 (List.length reports);
  check Alcotest.bool "all ok" true (Props.Report.all_ok reports)

(* ------------------------------------------------------------------ *)
(* Adversarial traces: weak vs strong on the same history             *)
(* ------------------------------------------------------------------ *)

(* Two calls block; only one is ever released. Weak must fail naming
   the node still blocked, strong must fail regardless. *)
let test_wf_one_blocked_forever () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Call_blocked ("abcast", "m0"));
        (0.0, 1, Trace.Call_blocked ("abcast", "m1"));
        (1.0, 0, Trace.Bind ("abcast", "impl"));
        (1.0, 0, Trace.Call_unblocked "abcast");
      ]
  in
  let weak = Props.Stack_props.weak_stack_well_formedness t in
  assert_fail weak;
  check Alcotest.bool "violation names node 1" true
    (List.exists
       (fun v ->
         let has sub =
           let ls = String.length sub and lv = String.length v in
           let rec go i = i + ls <= lv && (String.sub v i ls = sub || go (i + 1)) in
           go 0
         in
         has "node 1" && not (has "node 0"))
       weak.Props.Report.violations);
  assert_fail (Props.Stack_props.strong_stack_well_formedness t)

(* Every blocked call is eventually released: weak holds on a history
   strong rejects — the §3 weak/strong gap on one trace. *)
let test_wf_weak_strong_gap () =
  let t =
    trace_of
      [
        (0.0, 0, Trace.Call_blocked ("abcast", "m0"));
        (0.5, 1, Trace.Call_blocked ("abcast", "m1"));
        (1.0, 0, Trace.Bind ("abcast", "impl"));
        (1.0, 0, Trace.Call_unblocked "abcast");
        (1.5, 1, Trace.Bind ("abcast", "impl"));
        (1.5, 1, Trace.Call_unblocked "abcast");
      ]
  in
  assert_ok (Props.Stack_props.weak_stack_well_formedness t);
  assert_fail (Props.Stack_props.strong_stack_well_formedness t)

(* A bind that arrives only after the caller crashed: the crashed
   node's blocked call is exempt, a live node's is not. *)
let test_wf_bind_after_crash () =
  let exempt =
    trace_of
      [
        (0.0, 1, Trace.Call_blocked ("abcast", "m"));
        (0.5, 1, Trace.Crash);
        (1.0, 0, Trace.Bind ("abcast", "impl"));
      ]
  in
  assert_ok (Props.Stack_props.weak_stack_well_formedness exempt);
  let live =
    trace_of
      [
        (0.0, 1, Trace.Call_blocked ("abcast", "m"));
        (0.5, 0, Trace.Crash);
        (1.0, 0, Trace.Bind ("abcast", "impl"));
      ]
  in
  (* Same shape, but the crash hits the other node: node 1 still owes. *)
  assert_fail (Props.Stack_props.weak_stack_well_formedness live)

(* Operationability violated on exactly one non-crashed node: 0 and 2
   run the protocol, 1 never does. Crashing 1 discharges it. *)
let test_op_single_node_gap () =
  let entries crash1 =
    [
      (0.0, 0, Trace.Add_module "p");
      (0.0, 2, Trace.Add_module "p");
      (1.0, 0, Trace.Bind ("s", "p"));
    ]
    @ if crash1 then [ (0.5, 1, Trace.Crash) ] else []
  in
  let gap = trace_of (entries false) in
  let weak =
    Props.Stack_props.weak_protocol_operationability gap ~protocol:"p"
      ~nodes:[ 0; 1; 2 ]
  in
  assert_fail weak;
  check Alcotest.int "exactly one violation" 1
    (List.length weak.Props.Report.violations);
  assert_ok
    (Props.Stack_props.weak_protocol_operationability
       (trace_of (entries true))
       ~protocol:"p" ~nodes:[ 0; 1; 2 ])

(* Strong operationability: a module added exactly at bind time (same
   timestamp) satisfies the property; added any later it does not. *)
let test_strong_op_bind_time_boundary () =
  let at_bind =
    trace_of
      [
        (0.0, 0, Trace.Add_module "p");
        (1.0, 1, Trace.Add_module "p");
        (1.0, 0, Trace.Bind ("s", "p"));
      ]
  in
  assert_ok
    (Props.Stack_props.strong_protocol_operationability at_bind ~protocol:"p"
       ~nodes:[ 0; 1 ]);
  let after_bind =
    trace_of
      [
        (0.0, 0, Trace.Add_module "p");
        (1.0, 0, Trace.Bind ("s", "p"));
        (1.1, 1, Trace.Add_module "p");
      ]
  in
  assert_fail
    (Props.Stack_props.strong_protocol_operationability after_bind ~protocol:"p"
       ~nodes:[ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let test_report_caps_violations () =
  let r =
    Props.Report.make ~property:"x" ~max_violations:3 ~checked:100
      (List.init 10 string_of_int)
  in
  check Alcotest.bool "not ok" false r.Props.Report.ok;
  check Alcotest.int "3 + summary line" 4 (List.length r.Props.Report.violations);
  check Alcotest.bool "summary mentions remainder" true
    (List.exists
       (fun s -> s = "... and 7 more")
       r.Props.Report.violations)

let test_report_pp () =
  let ok = Props.Report.make ~property:"clean" ~checked:5 [] in
  let s = Format.asprintf "%a" Props.Report.pp ok in
  check Alcotest.bool "ok rendering" true (String.length s > 0 && String.sub s 0 4 = "[ok]");
  let bad = Props.Report.make ~property:"dirty" ~checked:5 [ "v" ] in
  let s' = Format.asprintf "%a" Props.Report.pp bad in
  check Alcotest.bool "fail rendering" true (String.sub s' 0 6 = "[FAIL]")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "props"
    [
      ( "abcast",
        [
          tc "clean passes" test_clean_run_passes;
          tc "validity violation" test_validity_violation;
          tc "agreement violation" test_agreement_violation;
          tc "agreement uniformity" test_agreement_uniformity_includes_crashed_deliveries;
          tc "integrity duplicate" test_integrity_duplicate;
          tc "integrity unsent" test_integrity_never_sent;
          tc "total order swap" test_total_order_swap;
          tc "total order gap" test_total_order_gap;
          tc "total order prefix ok" test_total_order_prefix_ok;
          tc "id parsing" test_id_of_string;
        ] );
      ( "generic",
        [
          tc "weak wf pass" test_weak_wf_pass;
          tc "weak wf violation" test_weak_wf_violation;
          tc "weak wf crash exempt" test_weak_wf_crashed_node_exempt;
          tc "strong wf" test_strong_wf;
          tc "weak op pass" test_weak_operationability_pass;
          tc "weak op violation" test_weak_operationability_violation;
          tc "weak op crash exempt" test_weak_operationability_crashed_exempt;
          tc "weak op vacuous" test_weak_operationability_vacuous;
          tc "strong op" test_strong_operationability;
          tc "bundle" test_check_generic_bundle;
        ] );
      ( "adversarial",
        [
          tc "one blocked forever" test_wf_one_blocked_forever;
          tc "weak/strong gap" test_wf_weak_strong_gap;
          tc "bind after crash" test_wf_bind_after_crash;
          tc "single-node op gap" test_op_single_node_gap;
          tc "strong op bind-time boundary" test_strong_op_bind_time_boundary;
        ] );
      ( "report",
        [ tc "caps violations" test_report_caps_violations; tc "pp" test_report_pp ] );
    ]
