(* Tests for the protocol kernel: services, payloads, messages, traces,
   stacks, the registry and the system container. *)

open Dpu_kernel
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check
let fail = Alcotest.fail

(* Test payloads. *)
type Payload.t += Ping of int | Pong of int

let svc_a = Service.make "svc.a"
let svc_b = Service.make "svc.b"

let make_stack ?(hop_cost = 0.1) () =
  let sim = Sim.create ~seed:1 () in
  let trace = Trace.create () in
  let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~hop_cost ~trace () in
  (sim, trace, stack)

(* A module that logs the calls and indications it receives. *)
let probe stack ~name ~provides ~requires =
  let calls = ref [] in
  let indications = ref [] in
  let started = ref 0 in
  let stopped = ref 0 in
  let m =
    Stack.add_module stack ~name ~provides ~requires (fun _stack _self ->
        {
          Stack.handle_call = (fun svc p -> calls := (svc, p) :: !calls);
          handle_indication = (fun svc p -> indications := (svc, p) :: !indications);
          on_start = (fun () -> incr started);
          on_stop = (fun () -> incr stopped);
        })
  in
  (m, calls, indications, started, stopped)

(* ------------------------------------------------------------------ *)
(* Service                                                            *)
(* ------------------------------------------------------------------ *)

let test_service_identity () =
  check Alcotest.bool "equal by name" true (Service.equal (Service.make "x") (Service.make "x"));
  check Alcotest.bool "distinct" false (Service.equal svc_a svc_b);
  check Alcotest.string "name" "svc.a" (Service.name svc_a);
  check Alcotest.int "compare reflexive" 0 (Service.compare svc_a svc_a)

let test_service_wellknown () =
  let names =
    List.map Service.name
      [ Service.net; Service.rp2p; Service.fd; Service.consensus; Service.abcast;
        Service.r_abcast; Service.gm ]
  in
  check
    (Alcotest.list Alcotest.string)
    "names" [ "net"; "rp2p"; "fd"; "consensus"; "abcast"; "r-abcast"; "gm" ] names

let test_service_map () =
  let m = Service.Map.(empty |> add svc_a 1 |> add svc_b 2) in
  check (Alcotest.option Alcotest.int) "lookup" (Some 2) (Service.Map.find_opt svc_b m)

(* ------------------------------------------------------------------ *)
(* Payload                                                            *)
(* ------------------------------------------------------------------ *)

let test_payload_unit_printer () =
  check Alcotest.string "unit" "unit" (Payload.to_string Payload.Unit)

let test_payload_printer_registration () =
  check Alcotest.string "unknown" "<payload>" (Payload.to_string (Ping 1));
  Payload.register_printer (function
    | Ping n -> Some (Printf.sprintf "ping %d" n)
    | _ -> None);
  check Alcotest.string "registered" "ping 7" (Payload.to_string (Ping 7));
  check Alcotest.string "still unknown" "<payload>" (Payload.to_string (Pong 1))

(* ------------------------------------------------------------------ *)
(* Msg                                                                *)
(* ------------------------------------------------------------------ *)

let test_msg_ids () =
  let a = Msg.make ~origin:1 ~seq:2 "x" in
  let b = Msg.make ~origin:1 ~seq:3 "y" in
  let c = Msg.make ~origin:2 ~seq:0 "z" in
  check Alcotest.bool "lt same origin" true (Msg.compare a b < 0);
  check Alcotest.bool "origin dominates" true (Msg.compare b c < 0);
  check Alcotest.bool "id equal" true (Msg.id_equal a.id { Msg.origin = 1; seq = 2 });
  check Alcotest.string "to_string" "1.2" (Msg.id_to_string a.id);
  check Alcotest.int "default size" 4096 a.size

let test_msg_sets () =
  let a = Msg.make ~origin:0 ~seq:0 "a" in
  let a' = Msg.make ~origin:0 ~seq:0 "different body, same id" in
  let s = Msg.Set.(empty |> add a |> add a') in
  check Alcotest.int "identity by id" 1 (Msg.Set.cardinal s);
  let ids = Msg.Id_set.(empty |> add a.id |> add a'.id) in
  check Alcotest.int "id set" 1 (Msg.Id_set.cardinal ids)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_basic () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 (Trace.Bind ("s", "m"));
  Trace.record t ~time:2.0 ~node:1 Trace.Crash;
  check Alcotest.int "length" 2 (Trace.length t);
  match Trace.entries t with
  | [ e1; e2 ] ->
    check (Alcotest.float 0.0) "order" 1.0 e1.Trace.time;
    check Alcotest.int "node" 1 e2.Trace.node
  | _ -> fail "expected two entries"

let test_trace_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1.0 ~node:0 Trace.Crash;
  check Alcotest.int "nothing recorded" 0 (Trace.length t);
  Trace.set_enabled t true;
  Trace.record t ~time:2.0 ~node:0 Trace.Crash;
  check Alcotest.int "recording after enable" 1 (Trace.length t)

let test_trace_capacity () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~node:0 Trace.Crash
  done;
  check Alcotest.int "capped" 3 (Trace.length t);
  check Alcotest.bool "truncated" true (Trace.truncated t)

let test_trace_ring_keeps_tail () =
  (* At capacity the trace is a ring: the *oldest* entries are evicted,
     so a long soak keeps the interesting tail. *)
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~node:i Trace.Crash
  done;
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  check (Alcotest.list (Alcotest.float 0.0)) "most recent retained" [ 3.0; 4.0; 5.0 ]
    times;
  check Alcotest.int "dropped" 2 (Trace.dropped t);
  Trace.record t ~time:6.0 ~node:0 Trace.Crash;
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  check (Alcotest.list (Alcotest.float 0.0)) "keeps sliding" [ 4.0; 5.0; 6.0 ] times

let test_trace_below_capacity_not_truncated () =
  let t = Trace.create ~capacity:100 () in
  for i = 1 to 80 do
    Trace.record t ~time:(float_of_int i) ~node:0 Trace.Crash
  done;
  check Alcotest.bool "not truncated" false (Trace.truncated t);
  check Alcotest.int "no drops" 0 (Trace.dropped t);
  check Alcotest.int "all retained" 80 (Trace.length t)

let test_trace_dropped_exact_across_wraps () =
  (* The dropped counter must stay exact however many times the ring
     wraps, and the retained window must stay contiguous, oldest
     retained first. *)
  let cap = 4 in
  let t = Trace.create ~capacity:cap () in
  let total = 3 + (5 * cap) in
  for i = 1 to total do
    Trace.record t ~time:(float_of_int i) ~node:0 Trace.Crash
  done;
  check Alcotest.int "length capped" cap (Trace.length t);
  check Alcotest.int "dropped = recorded - retained" (total - cap) (Trace.dropped t);
  check Alcotest.bool "truncated" true (Trace.truncated t);
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  let expected =
    List.init cap (fun i -> float_of_int (total - cap + 1 + i))
  in
  check (Alcotest.list (Alcotest.float 0.0)) "contiguous most-recent window" expected times

let test_trace_disabled_records_drop_nothing () =
  (* Records refused while disabled are not evictions: they must not
     count as dropped. *)
  let t = Trace.create ~capacity:2 ~enabled:false () in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i) ~node:0 Trace.Crash
  done;
  check Alcotest.int "nothing dropped" 0 (Trace.dropped t);
  check Alcotest.bool "not truncated" false (Trace.truncated t)

let test_trace_filter () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 (Trace.Bind ("s", "m"));
  Trace.record t ~time:2.0 ~node:0 (Trace.Unbind ("s", "m"));
  let binds =
    Trace.filter t (fun e -> match e.Trace.kind with Trace.Bind _ -> true | _ -> false)
  in
  check Alcotest.int "one bind" 1 (List.length binds)

(* ------------------------------------------------------------------ *)
(* Stack                                                              *)
(* ------------------------------------------------------------------ *)

let test_stack_add_module_starts () =
  let _sim, _trace, stack = make_stack () in
  let _m, _calls, _ind, started, stopped = probe stack ~name:"p" ~provides:[] ~requires:[] in
  check Alcotest.int "started" 1 !started;
  check Alcotest.int "not stopped" 0 !stopped;
  check Alcotest.bool "listed" true (Stack.has_module stack ~name:"p")

let test_stack_call_dispatch () =
  let sim, _trace, stack = make_stack () in
  let m, calls, _ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m;
  Stack.call stack svc_a (Ping 1);
  check Alcotest.int "async: not yet" 0 (List.length !calls);
  Sim.run sim;
  check Alcotest.int "dispatched" 1 (List.length !calls)

let test_stack_call_hop_cost () =
  let sim, _trace, stack = make_stack ~hop_cost:0.5 () in
  let m, calls, _ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m;
  let arrived_at = ref nan in
  ignore calls;
  (* Wrap: record time at dispatch via another probe module. *)
  Stack.call stack svc_a (Ping 1);
  ignore (Sim.schedule sim ~delay:0.49 (fun () -> ()) : Sim.handle);
  Sim.run sim;
  ignore !arrived_at;
  check (Alcotest.float 1e-9) "clock advanced by hop" 0.5 (Sim.now sim)

let test_stack_blocked_call_released_by_bind () =
  let sim, _trace, stack = make_stack () in
  let m, calls, _ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.call stack svc_a (Ping 9);
  Sim.run sim;
  check Alcotest.int "queued" 1 (Stack.blocked_calls stack svc_a);
  check Alcotest.int "no dispatch yet" 0 (List.length !calls);
  Stack.bind stack svc_a m;
  Sim.run sim;
  check Alcotest.int "released" 1 (List.length !calls);
  check Alcotest.int "queue drained" 0 (Stack.blocked_calls stack svc_a)

let test_stack_blocked_preserves_order () =
  let sim, _trace, stack = make_stack () in
  let m, calls, _ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.call stack svc_a (Ping 1);
  Stack.call stack svc_a (Ping 2);
  Stack.call stack svc_a (Ping 3);
  Sim.run sim;
  Stack.bind stack svc_a m;
  Sim.run sim;
  let order =
    List.rev_map (fun (_, p) -> match p with Ping n -> n | _ -> -1) !calls
  in
  check (Alcotest.list Alcotest.int) "fifo release" [ 1; 2; 3 ] order

let test_stack_already_bound () =
  let _sim, _trace, stack = make_stack () in
  let m1, _, _, _, _ = probe stack ~name:"p1" ~provides:[ svc_a ] ~requires:[] in
  let m2, _, _, _, _ = probe stack ~name:"p2" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m1;
  (try
     Stack.bind stack svc_a m2;
     fail "expected Already_bound"
   with Stack.Already_bound _ -> ());
  (* Rebinding the same module is a no-op, not an error. *)
  Stack.bind stack svc_a m1;
  Stack.unbind stack svc_a;
  Stack.bind stack svc_a m2;
  check Alcotest.string "rebound" "p2"
    (match Stack.bound stack svc_a with Some m -> Stack.module_name m | None -> "?")

let test_stack_unbind_keeps_module () =
  let sim, _trace, stack = make_stack () in
  let m, calls, _ind, _s, stopped = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m;
  Stack.unbind stack svc_a;
  check Alcotest.bool "still in stack" true (Stack.has_module stack ~name:"p");
  check Alcotest.int "not stopped" 0 !stopped;
  Stack.call stack svc_a (Ping 1);
  Sim.run sim;
  check Alcotest.int "call blocks after unbind" 0 (List.length !calls);
  check Alcotest.int "queued" 1 (Stack.blocked_calls stack svc_a)

let test_stack_indication_routing () =
  let sim, _trace, stack = make_stack () in
  let _p, _calls, ind_req, _s, _st = probe stack ~name:"requirer" ~provides:[] ~requires:[ svc_a ] in
  let _q, _calls2, ind_other, _s2, _st2 =
    probe stack ~name:"other" ~provides:[] ~requires:[ svc_b ]
  in
  Stack.indicate stack svc_a (Pong 5);
  Sim.run sim;
  check Alcotest.int "requirer got it" 1 (List.length !ind_req);
  check Alcotest.int "other did not" 0 (List.length !ind_other)

let test_stack_indication_multiple_requirers () =
  let sim, _trace, stack = make_stack () in
  let _p1, _, i1, _, _ = probe stack ~name:"r1" ~provides:[] ~requires:[ svc_a ] in
  let _p2, _, i2, _, _ = probe stack ~name:"r2" ~provides:[] ~requires:[ svc_a ] in
  Stack.indicate stack svc_a (Pong 1);
  Sim.run sim;
  check Alcotest.int "both" 2 (List.length !i1 + List.length !i2)

let test_stack_unbound_module_can_indicate_and_receive () =
  (* Paper §2: a module can respond to a call even after being unbound;
     and requirers receive indications regardless of binding. *)
  let sim, _trace, stack = make_stack () in
  let p, _, ind, _, _ = probe stack ~name:"listener" ~provides:[ svc_b ] ~requires:[ svc_a ] in
  Stack.bind stack svc_b p;
  Stack.unbind stack svc_b;
  Stack.indicate stack svc_a (Pong 3);
  Sim.run sim;
  check Alcotest.int "unbound still receives required indications" 1 (List.length !ind)

let test_stack_remove_module () =
  let sim, _trace, stack = make_stack () in
  let m, _calls, ind, _s, stopped = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[ svc_b ] in
  Stack.bind stack svc_a m;
  Stack.remove_module stack m;
  check Alcotest.int "on_stop" 1 !stopped;
  check Alcotest.bool "gone" false (Stack.has_module stack ~name:"p");
  check Alcotest.bool "unbound" true (Stack.bound stack svc_a = None);
  Stack.indicate stack svc_b (Pong 1);
  Sim.run sim;
  check Alcotest.int "no longer receives" 0 (List.length !ind);
  (* Removing twice is harmless. *)
  Stack.remove_module stack m;
  check Alcotest.int "idempotent" 1 !stopped

let test_stack_crash_stops_dispatch () =
  let sim, _trace, stack = make_stack () in
  let m, calls, ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[ svc_a ] in
  Stack.bind stack svc_a m;
  Stack.crash stack;
  check Alcotest.bool "crashed" true (Stack.is_crashed stack);
  Stack.call stack svc_a (Ping 1);
  Stack.indicate stack svc_a (Pong 1);
  Sim.run sim;
  check Alcotest.int "no calls" 0 (List.length !calls);
  check Alcotest.int "no indications" 0 (List.length !ind)

let test_stack_crash_in_flight_dispatch () =
  let sim, _trace, stack = make_stack () in
  let m, calls, _ind, _s, _st = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m;
  Stack.call stack svc_a (Ping 1);
  Stack.crash stack;
  Sim.run sim;
  check Alcotest.int "scheduled dispatch suppressed" 0 (List.length !calls)

let test_stack_timers () =
  let sim, _trace, stack = make_stack () in
  let fired = ref 0 in
  ignore (Stack.after stack ~delay:1.0 (fun () -> incr fired));
  let p = Stack.periodic stack ~period:1.0 (fun () -> incr fired) in
  Sim.run ~until:3.5 sim;
  check Alcotest.int "one-shot + 3 ticks" 4 !fired;
  Clock.cancel p;
  Sim.run ~until:10.0 sim;
  check Alcotest.int "cancelled" 4 !fired

let test_stack_timers_crash () =
  let sim, _trace, stack = make_stack () in
  let fired = ref 0 in
  ignore (Stack.after stack ~delay:1.0 (fun () -> incr fired));
  ignore (Stack.periodic stack ~period:1.0 (fun () -> incr fired));
  Stack.crash stack;
  Sim.run ~until:5.0 sim;
  check Alcotest.int "suppressed by crash" 0 !fired

let test_stack_env () =
  let _sim, _trace, stack = make_stack () in
  check Alcotest.int "default" 42 (Stack.get_env stack "k" ~default:42);
  Stack.set_env stack "k" 7;
  check Alcotest.int "set" 7 (Stack.get_env stack "k" ~default:0);
  Stack.set_env stack "k" 8;
  check Alcotest.int "overwrite" 8 (Stack.get_env stack "k" ~default:0)

let test_stack_trace_records () =
  let sim, trace, stack = make_stack () in
  let m, _, _, _, _ = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a m;
  Stack.call stack svc_a (Ping 1);
  Stack.app_event stack ~tag:"hello" ~data:"world";
  Sim.run sim;
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.entries trace) in
  let has p = List.exists p kinds in
  check Alcotest.bool "add-module" true
    (has (function Trace.Add_module "p" -> true | _ -> false));
  check Alcotest.bool "bind" true (has (function Trace.Bind ("svc.a", "p") -> true | _ -> false));
  check Alcotest.bool "call" true (has (function Trace.Call ("svc.a", _) -> true | _ -> false));
  check Alcotest.bool "app" true
    (has (function Trace.App ("hello", "world") -> true | _ -> false))

let test_stack_dispatch_counts () =
  let sim, _trace, stack = make_stack () in
  let m, _, _, _, _ = probe stack ~name:"p" ~provides:[ svc_a ] ~requires:[ svc_b ] in
  Stack.bind stack svc_a m;
  check (Alcotest.pair Alcotest.int Alcotest.int) "zero" (0, 0)
    (Stack.dispatch_counts stack);
  Stack.call stack svc_a (Ping 1);
  Stack.call stack svc_a (Ping 2);
  Stack.indicate stack svc_b (Pong 1);
  Sim.run sim;
  check (Alcotest.pair Alcotest.int Alcotest.int) "counted" (2, 1)
    (Stack.dispatch_counts stack);
  (* Blocked calls do not count until executed. *)
  Stack.call stack svc_b (Ping 3);
  Sim.run sim;
  check (Alcotest.pair Alcotest.int Alcotest.int) "blocked not counted" (2, 1)
    (Stack.dispatch_counts stack)

let test_stack_modules_order () =
  let _sim, _trace, stack = make_stack () in
  let _a, _, _, _, _ = probe stack ~name:"a" ~provides:[] ~requires:[] in
  let _b, _, _, _, _ = probe stack ~name:"b" ~provides:[] ~requires:[] in
  let names = List.map Stack.module_name (Stack.modules stack) in
  check (Alcotest.list Alcotest.string) "addition order" [ "a"; "b" ] names

(* Model-based property: for any interleaving of bind/unbind/call
   issued at time zero and then drained, dispatch conserves calls —
   executed + still-blocked = issued — and whether the tail blocks is
   decided by the binding in force at drain time (calls resolve their
   binding at execution, all binds/unbinds here are synchronous). *)
let prop_dispatch_conservation =
  QCheck.Test.make ~name:"call dispatch conserves messages" ~count:200
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let sim = Sim.create ~seed:1 () in
      let trace = Trace.create ~enabled:false () in
      let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace () in
      let executed = ref 0 in
      let m =
        Stack.add_module stack ~name:"sink" ~provides:[ svc_a ] ~requires:[]
          (fun _ _ ->
            { Stack.default_handlers with handle_call = (fun _ _ -> incr executed) })
      in
      let issued = ref 0 in
      let bound = ref false in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            if not !bound then Stack.bind stack svc_a m;
            bound := true
          | 1 ->
            Stack.unbind stack svc_a;
            bound := false
          | _ ->
            incr issued;
            Stack.call stack svc_a Payload.Unit)
        ops;
      Sim.run sim;
      let blocked = Stack.blocked_calls stack svc_a in
      !executed + blocked = !issued
      && (if !bound then blocked = 0 else !executed = 0 || blocked >= 0))

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let dummy_factory ~name ~provides ~requires stack =
  Stack.add_module stack ~name ~provides ~requires (fun _ _ -> Stack.default_handlers)

let test_registry_basic () =
  let r = Registry.create () in
  Registry.register r ~name:"x" ~provides:[ svc_a ] (dummy_factory ~name:"x" ~provides:[ svc_a ] ~requires:[]);
  check Alcotest.bool "mem" true (Registry.mem r ~name:"x");
  check Alcotest.bool "not mem" false (Registry.mem r ~name:"y");
  check (Alcotest.option Alcotest.string) "provider" (Some "x") (Registry.provider_of r svc_a);
  check (Alcotest.option Alcotest.string) "no provider" None (Registry.provider_of r svc_b)

let test_registry_replacement_and_recency () =
  let r = Registry.create () in
  Registry.register r ~name:"old" ~provides:[ svc_a ] (dummy_factory ~name:"old" ~provides:[ svc_a ] ~requires:[]);
  Registry.register r ~name:"new" ~provides:[ svc_a ] (dummy_factory ~name:"new" ~provides:[ svc_a ] ~requires:[]);
  check (Alcotest.option Alcotest.string) "most recent wins" (Some "new")
    (Registry.provider_of r svc_a);
  (* Re-registering a name replaces it without duplication. *)
  Registry.register r ~name:"old" ~provides:[ svc_a ] (dummy_factory ~name:"old" ~provides:[ svc_a ] ~requires:[]);
  check Alcotest.int "no duplicates" 2 (List.length (Registry.names r))

let test_registry_instantiate_unknown () =
  let r = Registry.create () in
  let _sim, _trace, stack = make_stack () in
  try
    ignore (Registry.instantiate r stack ~name:"ghost");
    fail "expected Unknown_protocol"
  with Registry.Unknown_protocol "ghost" -> ()

let test_registry_instantiate_chain () =
  (* top requires svc_a; mid provides svc_a and requires svc_b; leaf
     provides svc_b. Instantiating top must build all three. *)
  let r = Registry.create () in
  Registry.register r ~name:"leaf" ~provides:[ svc_b ]
    (dummy_factory ~name:"leaf" ~provides:[ svc_b ] ~requires:[]);
  Registry.register r ~name:"mid" ~provides:[ svc_a ]
    (dummy_factory ~name:"mid" ~provides:[ svc_a ] ~requires:[ svc_b ]);
  let top = Service.make "svc.top" in
  Registry.register r ~name:"top" ~provides:[ top ]
    (dummy_factory ~name:"top" ~provides:[ top ] ~requires:[ svc_a ]);
  let _sim, _trace, stack = make_stack () in
  ignore (Registry.instantiate r stack ~name:"top");
  check Alcotest.bool "top present" true (Stack.has_module stack ~name:"top");
  check Alcotest.bool "mid present" true (Stack.has_module stack ~name:"mid");
  check Alcotest.bool "leaf present" true (Stack.has_module stack ~name:"leaf");
  check Alcotest.bool "top bound" true (Stack.bound stack top <> None);
  check Alcotest.bool "mid bound" true (Stack.bound stack svc_a <> None);
  check Alcotest.bool "leaf bound" true (Stack.bound stack svc_b <> None)

let test_registry_instantiate_respects_existing_binding () =
  let r = Registry.create () in
  Registry.register r ~name:"impl" ~provides:[ svc_a ]
    (dummy_factory ~name:"impl" ~provides:[ svc_a ] ~requires:[]);
  let _sim, _trace, stack = make_stack () in
  let existing, _, _, _, _ = probe stack ~name:"existing" ~provides:[ svc_a ] ~requires:[] in
  Stack.bind stack svc_a existing;
  ignore (Registry.instantiate r stack ~name:"impl");
  check Alcotest.string "binding untouched" "existing"
    (match Stack.bound stack svc_a with Some m -> Stack.module_name m | None -> "?")

let test_registry_cycle_terminates () =
  (* a requires svc_b (provided by b); b requires svc_a (provided by a). *)
  let r = Registry.create () in
  Registry.register r ~name:"a" ~provides:[ svc_a ]
    (dummy_factory ~name:"a" ~provides:[ svc_a ] ~requires:[ svc_b ]);
  Registry.register r ~name:"b" ~provides:[ svc_b ]
    (dummy_factory ~name:"b" ~provides:[ svc_b ] ~requires:[ svc_a ]);
  let _sim, _trace, stack = make_stack () in
  ignore (Registry.instantiate r stack ~name:"a");
  check Alcotest.bool "both built" true
    (Stack.has_module stack ~name:"a" && Stack.has_module stack ~name:"b")

let test_registry_no_provider () =
  let r = Registry.create () in
  Registry.register r ~name:"needy" ~provides:[ svc_a ]
    (dummy_factory ~name:"needy" ~provides:[ svc_a ] ~requires:[ svc_b ]);
  let _sim, _trace, stack = make_stack () in
  try
    ignore (Registry.instantiate r stack ~name:"needy");
    fail "expected No_provider"
  with Registry.No_provider s -> check Alcotest.string "service" "svc.b" (Service.name s)

let test_registry_ensure_bound_noop () =
  let r = Registry.create () in
  Registry.register r ~name:"impl" ~provides:[ svc_a ]
    (dummy_factory ~name:"impl" ~provides:[ svc_a ] ~requires:[]);
  let _sim, _trace, stack = make_stack () in
  Registry.ensure_bound r stack svc_a;
  Registry.ensure_bound r stack svc_a;
  let impls =
    List.filter (fun m -> Stack.module_name m = "impl") (Stack.modules stack)
  in
  check Alcotest.int "single instance" 1 (List.length impls)

let test_registry_create_only () =
  let r = Registry.create () in
  Registry.register r ~name:"impl" ~provides:[ svc_a ]
    (dummy_factory ~name:"impl" ~provides:[ svc_a ] ~requires:[ svc_b ]);
  let _sim, _trace, stack = make_stack () in
  let m = Registry.create_only r stack ~name:"impl" in
  check Alcotest.bool "present" true (Stack.has_module stack ~name:"impl");
  check Alcotest.bool "not bound" true (Stack.bound stack svc_a = None);
  check Alcotest.bool "deps not built" true (Stack.bound stack svc_b = None);
  check Alcotest.string "returns module" "impl" (Stack.module_name m)

(* ------------------------------------------------------------------ *)
(* System                                                             *)
(* ------------------------------------------------------------------ *)

let test_system_shape () =
  let system = System.create ~n:4 () in
  check Alcotest.int "n" 4 (System.n system);
  check Alcotest.int "stacks" 4 (Array.length (System.stacks system));
  check Alcotest.int "node ids" 3 (Stack.node (System.stack system 3));
  check (Alcotest.list Alcotest.int) "correct" [ 0; 1; 2; 3 ] (System.correct_nodes system)

let test_system_crash_node () =
  let system = System.create ~n:3 () in
  System.crash_node system 1;
  check Alcotest.bool "stack crashed" true (Stack.is_crashed (System.stack system 1));
  check (Alcotest.list Alcotest.int) "correct" [ 0; 2 ] (System.correct_nodes system)

let test_system_run () =
  let system = System.create ~n:2 () in
  System.run_for system 10.0;
  check (Alcotest.float 1e-9) "clock" 10.0 (System.now system);
  System.run_until system 25.0;
  check (Alcotest.float 1e-9) "until" 25.0 (System.now system);
  System.run_until_quiescent ~limit:30.0 system;
  check (Alcotest.float 1e-9) "limit honoured" 30.0 (System.now system)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "kernel"
    [
      ( "service",
        [
          tc "identity" test_service_identity;
          tc "well-known" test_service_wellknown;
          tc "map" test_service_map;
        ] );
      ( "payload",
        [
          tc "unit printer" test_payload_unit_printer;
          tc "printer registration" test_payload_printer_registration;
        ] );
      ("msg", [ tc "ids" test_msg_ids; tc "sets" test_msg_sets ]);
      ( "trace",
        [
          tc "basic" test_trace_basic;
          tc "disabled" test_trace_disabled;
          tc "capacity" test_trace_capacity;
          tc "ring keeps tail" test_trace_ring_keeps_tail;
          tc "below capacity" test_trace_below_capacity_not_truncated;
          tc "dropped exact across wraps" test_trace_dropped_exact_across_wraps;
          tc "disabled drops nothing" test_trace_disabled_records_drop_nothing;
          tc "filter" test_trace_filter;
        ] );
      ( "stack",
        [
          tc "add module starts" test_stack_add_module_starts;
          tc "call dispatch" test_stack_call_dispatch;
          tc "hop cost" test_stack_call_hop_cost;
          tc "blocked call released" test_stack_blocked_call_released_by_bind;
          tc "blocked order" test_stack_blocked_preserves_order;
          tc "already bound" test_stack_already_bound;
          tc "unbind keeps module" test_stack_unbind_keeps_module;
          tc "indication routing" test_stack_indication_routing;
          tc "indication fan-out" test_stack_indication_multiple_requirers;
          tc "unbound module interaction" test_stack_unbound_module_can_indicate_and_receive;
          tc "remove module" test_stack_remove_module;
          tc "crash stops dispatch" test_stack_crash_stops_dispatch;
          tc "crash in flight" test_stack_crash_in_flight_dispatch;
          tc "timers" test_stack_timers;
          tc "timers vs crash" test_stack_timers_crash;
          tc "env" test_stack_env;
          tc "trace records" test_stack_trace_records;
          tc "modules order" test_stack_modules_order;
          tc "dispatch counts" test_stack_dispatch_counts;
        ] );
      ( "registry",
        [
          tc "basic" test_registry_basic;
          tc "recency" test_registry_replacement_and_recency;
          tc "unknown" test_registry_instantiate_unknown;
          tc "dependency chain" test_registry_instantiate_chain;
          tc "existing binding" test_registry_instantiate_respects_existing_binding;
          tc "cycle terminates" test_registry_cycle_terminates;
          tc "no provider" test_registry_no_provider;
          tc "ensure_bound idempotent" test_registry_ensure_bound_noop;
          tc "create_only" test_registry_create_only;
        ] );
      ( "system",
        [
          tc "shape" test_system_shape;
          tc "crash node" test_system_crash_node;
          tc "run" test_system_run;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_dispatch_conservation ] );
    ]
