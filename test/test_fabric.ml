(* The multi-group fabric: N independent ABcast groups over ONE
   simulator — per-group registries, per-group generations, concurrent
   non-serialising replacements, and the sharded app tier on top. *)

module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng
module Fabric = Dpu_core.Fabric
module MW = Dpu_core.Middleware
module Variants = Dpu_core.Variants
module Collector = Dpu_core.Collector
module Kv = Dpu_apps.Replicated_kv
module Sharded_kv = Dpu_apps.Sharded_kv
module Sharded_locks = Dpu_apps.Sharded_locks
module Hash_ring = Dpu_apps.Hash_ring

let check = Alcotest.check

let test_create_sizes () =
  let fabric = Fabric.create ~shards:4 ~n:7 () in
  check Alcotest.int "shards" 4 (Fabric.shards fabric);
  check Alcotest.int "total nodes" 7 (Fabric.total_nodes fabric);
  let sizes = List.init 4 (fun g -> Fabric.group_size fabric g) in
  check (Alcotest.list Alcotest.int) "round-robin sizes" [ 2; 2; 2; 1 ] sizes;
  let firsts = List.init 4 (fun g -> Fabric.first_node fabric g) in
  check (Alcotest.list Alcotest.int) "global first nodes" [ 0; 2; 4; 6 ] firsts

let test_groups_deliver_independently () =
  let fabric = Fabric.create ~shards:3 ~n:6 () in
  let got = Array.make 3 [] in
  Fabric.iter_groups fabric (fun g mw ->
      MW.subscribe mw ~node:0 (fun m -> got.(g) <- m.Dpu_kernel.Msg.body :: got.(g)));
  Fabric.iter_groups fabric (fun g mw ->
      ignore (MW.broadcast mw ~node:1 (Printf.sprintf "from-shard-%d" g) : Dpu_kernel.Msg.t));
  Fabric.run_until_quiescent ~limit:10_000.0 fabric;
  for g = 0 to 2 do
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "shard %d sees only its own message" g)
      [ Printf.sprintf "from-shard-%d" g ]
      got.(g)
  done

let test_per_group_generations () =
  (* A switch on shard 1 bumps shard 1's generation only. *)
  let fabric = Fabric.create ~shards:3 ~n:9 () in
  Fabric.iter_groups fabric (fun _ mw ->
      for node = 0 to MW.n mw - 1 do
        ignore (MW.broadcast mw ~node "warm" : Dpu_kernel.Msg.t)
      done);
  Fabric.run_for fabric 50.0;
  Fabric.change_protocol fabric ~shard:1 Variants.sequencer;
  Fabric.run_until_quiescent ~limit:30_000.0 fabric;
  check Alcotest.int "shard 0 stays at gen 0" 0 (Fabric.generation fabric ~shard:0);
  check Alcotest.int "shard 1 completed gen 1" 1 (Fabric.generation fabric ~shard:1);
  check Alcotest.int "shard 2 stays at gen 0" 0 (Fabric.generation fabric ~shard:2);
  check Alcotest.bool "shard 1 window recorded" true
    (Option.is_some (Fabric.switch_window fabric ~shard:1 ~generation:1));
  check Alcotest.bool "shard 0 has no window" true
    (Option.is_none (Fabric.switch_window fabric ~shard:0 ~generation:1))

let test_concurrent_switches_overlap () =
  (* Trigger the replacement on every shard at the same instant under
     load: Algorithm 1 must run concurrently — the windows overlap —
     and every shard's property battery must hold. *)
  let shards = 4 in
  let fabric = Fabric.create ~shards ~n:12 () in
  Fabric.iter_groups fabric (fun _ mw ->
      for node = 0 to MW.n mw - 1 do
        for _ = 1 to 3 do
          ignore (MW.broadcast mw ~node "load" : Dpu_kernel.Msg.t)
        done
      done);
  Fabric.run_for fabric 5.0;
  Fabric.iter_groups fabric (fun g _ ->
      Fabric.change_protocol fabric ~shard:g Variants.sequencer);
  Fabric.iter_groups fabric (fun _ mw ->
      for node = 0 to MW.n mw - 1 do
        ignore (MW.broadcast mw ~node "during" : Dpu_kernel.Msg.t)
      done);
  Fabric.run_until_quiescent ~limit:60_000.0 fabric;
  Fabric.iter_groups fabric (fun g _ ->
      check Alcotest.int
        (Printf.sprintf "shard %d switched" g)
        1
        (Fabric.generation fabric ~shard:g));
  let overlap = Fabric.max_concurrent_switches fabric ~generation:1 in
  check Alcotest.bool
    (Printf.sprintf "switch windows overlap (max in flight = %d)" overlap)
    true (overlap > 1);
  Fabric.iter_groups fabric (fun g mw ->
      let correct = List.init (MW.n mw) Fun.id in
      let reports = Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct in
      check Alcotest.bool
        (Printf.sprintf "shard %d properties" g)
        true
        (Dpu_props.Report.all_ok reports))

let test_shard_stream_independent_of_shard_count () =
  (* Shard 1's whole virtual-time behaviour (delivery latencies) is the
     same whether the fabric has 2 or 4 shards: keyed randomness plus
     per-group ready queues isolate it from fabric size. *)
  let run ~shards =
    let fabric = Fabric.create ~shards ~n:(3 * shards) () in
    let mw = Fabric.group fabric 1 in
    let deliveries = ref [] in
    MW.subscribe mw ~node:0 (fun m ->
        deliveries := (m.Dpu_kernel.Msg.body, Fabric.now fabric) :: !deliveries);
    for node = 0 to MW.n mw - 1 do
      for i = 1 to 5 do
        ignore (MW.broadcast mw ~node (Printf.sprintf "m-%d-%d" node i) : Dpu_kernel.Msg.t)
      done
    done;
    Fabric.run_until_quiescent ~limit:10_000.0 fabric;
    List.rev !deliveries
  in
  let two = run ~shards:2 and four = run ~shards:4 in
  check Alcotest.int "same delivery count" (List.length two) (List.length four);
  List.iter2
    (fun (b2, t2) (b4, t4) ->
      check Alcotest.string "same order" b2 b4;
      check (Alcotest.float 1e-9) "same virtual times" t2 t4)
    two four

let test_single_shard_fabric_behaves () =
  (* One shard is today's system: same stack, same properties, all
     messages delivered everywhere. *)
  let fabric = Fabric.create ~shards:1 ~n:5 () in
  let mw = Fabric.group fabric 0 in
  let seen = ref 0 in
  MW.subscribe mw ~node:4 (fun _ -> incr seen);
  for node = 0 to 4 do
    ignore (MW.broadcast mw ~node "x" : Dpu_kernel.Msg.t)
  done;
  Fabric.change_protocol fabric ~shard:0 Variants.sequencer;
  for node = 0 to 4 do
    ignore (MW.broadcast mw ~node "y" : Dpu_kernel.Msg.t)
  done;
  Fabric.run_until_quiescent ~limit:30_000.0 fabric;
  check Alcotest.int "all delivered at node 4" 10 !seen;
  check Alcotest.int "gen" 1 (Fabric.generation fabric ~shard:0);
  let reports =
    Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct:[ 0; 1; 2; 3; 4 ]
  in
  check Alcotest.bool "properties" true (Dpu_props.Report.all_ok reports)

(* ------------------------------------------------------------------ *)
(* Sharded app tier                                                   *)
(* ------------------------------------------------------------------ *)

let test_sharded_kv_routing_and_convergence () =
  let fabric = Fabric.create ~shards:4 ~n:8 () in
  let kv = Sharded_kv.create fabric in
  let keys = List.init 40 (Printf.sprintf "key-%d") in
  List.iteri (fun i k -> Sharded_kv.put kv k (string_of_int i)) keys;
  List.iter (fun k -> Sharded_kv.incr kv (k ^ ":hits")) keys;
  Fabric.run_until_quiescent ~limit:30_000.0 fabric;
  check Alcotest.bool "every shard converged" true (Sharded_kv.converged kv);
  List.iteri
    (fun i k ->
      check (Alcotest.option Alcotest.string) k (Some (string_of_int i))
        (Sharded_kv.get kv k);
      check Alcotest.int (k ^ ":hits") 1 (Sharded_kv.get_int kv (k ^ ":hits")))
    keys;
  (* Routing is the ring's: reads and writes agreed on the shard. *)
  List.iter
    (fun k ->
      let g = Sharded_kv.shard_of kv k in
      check Alcotest.bool (k ^ " lives on its shard") true
        (Option.is_some (Kv.get (Sharded_kv.replica kv ~shard:g ~node:0) k)))
    keys

let test_sharded_kv_survives_rolling_replacement () =
  let fabric = Fabric.create ~shards:3 ~n:9 () in
  let kv = Sharded_kv.create fabric in
  let keys = List.init 30 (Printf.sprintf "k%d") in
  List.iter (fun k -> Sharded_kv.put kv k "before") keys;
  (* Drain: total order does not promise real-time order across
     senders, so an "after" put racing a still-unordered "before" put
     could legitimately be ordered first. *)
  Fabric.run_until_quiescent ~limit:30_000.0 fabric;
  Fabric.iter_groups fabric (fun g _ ->
      Fabric.change_protocol fabric ~shard:g Variants.sequencer);
  List.iter (fun k -> Sharded_kv.put kv k "after") keys;
  Fabric.run_until_quiescent ~limit:60_000.0 fabric;
  check Alcotest.bool "converged across the swap" true (Sharded_kv.converged kv);
  List.iter
    (fun k ->
      check (Alcotest.option Alcotest.string) k (Some "after") (Sharded_kv.get kv k))
    keys

let test_sharded_locks () =
  let fabric = Fabric.create ~shards:3 ~n:6 () in
  let locks = Sharded_locks.create fabric in
  let names = List.init 12 (Printf.sprintf "lock-%d") in
  List.iter (fun l -> Sharded_locks.acquire locks ~node:0 l) names;
  (* Sequence the rounds (the [limit]s are absolute virtual times):
     concurrent acquires from different nodes are ordered by the
     shard's total order, not by issue time. *)
  Fabric.run_until_quiescent ~limit:20_000.0 fabric;
  List.iter (fun l -> Sharded_locks.acquire locks ~node:1 l) names;
  Fabric.run_until_quiescent ~limit:40_000.0 fabric;
  List.iter
    (fun l ->
      check (Alcotest.option Alcotest.int) (l ^ " held by first requester")
        (Some 0) (Sharded_locks.holder locks l))
    names;
  List.iter (fun l -> Sharded_locks.release locks ~node:0 l) names;
  Fabric.run_until_quiescent ~limit:60_000.0 fabric;
  List.iter
    (fun l ->
      check (Alcotest.option Alcotest.int) (l ^ " passed to waiter") (Some 1)
        (Sharded_locks.holder locks l))
    names;
  check Alcotest.bool "lock state converged" true (Sharded_locks.converged locks)

let test_attach_late_races_change_protocol () =
  (* The PR-10 satellite: a state transfer pinned across a concurrent
     switch window on the same group. Node 2 of shard 1 attaches late
     while shard 1 is mid-replacement; the sync request and snapshot
     ride the ordered channel across the generation boundary, so the
     joiner converges on the same digest — and the other shards never
     notice. *)
  let fabric = Fabric.create ~shards:2 ~n:6 () in
  let mw = Fabric.group fabric 1 in
  let kv01 = [| Kv.attach mw ~node:0; Kv.attach mw ~node:1 |] in
  let other = Kv.attach (Fabric.group fabric 0) ~node:0 in
  for i = 1 to 10 do
    Kv.put kv01.(i mod 2) (Printf.sprintf "pre-%d" i) "v"
  done;
  Kv.put other "other-shard" "steady";
  Fabric.run_for fabric 30.0;
  (* Trigger the switch, then attach the latecomer inside the window. *)
  Fabric.change_protocol fabric ~shard:1 Variants.sequencer;
  let late = Kv.attach_late mw ~node:2 ~from:0 in
  for i = 1 to 10 do
    Kv.put kv01.(i mod 2) (Printf.sprintf "mid-%d" i) "v"
  done;
  Fabric.run_until_quiescent ~limit:60_000.0 fabric;
  check Alcotest.bool "late replica synced" true (Kv.synced late);
  check Alcotest.int "switch completed" 1 (Fabric.generation fabric ~shard:1);
  check Alcotest.string "digest matches node 0" (Kv.digest kv01.(0)) (Kv.digest late);
  check Alcotest.string "digest matches node 1" (Kv.digest kv01.(1)) (Kv.digest late);
  check Alcotest.int "caught the whole history" 20 (Kv.applied late);
  check (Alcotest.option Alcotest.string) "other shard untouched" (Some "steady")
    (Kv.get other "other-shard");
  check Alcotest.int "other shard gen 0" 0 (Fabric.generation fabric ~shard:0)

(* ------------------------------------------------------------------ *)
(* Hash ring                                                          *)
(* ------------------------------------------------------------------ *)

let test_ring_deterministic_and_total () =
  let ring = Hash_ring.create ~shards:8 () in
  let again = Hash_ring.create ~shards:8 () in
  for i = 0 to 199 do
    let k = Printf.sprintf "key-%d" i in
    let s = Hash_ring.shard_of ring k in
    check Alcotest.bool "in range" true (s >= 0 && s < 8);
    check Alcotest.int "deterministic" s (Hash_ring.shard_of again k)
  done

let test_ring_spread () =
  let ring = Hash_ring.create ~shards:4 ~vnodes:128 () in
  let keys = List.init 4000 (Printf.sprintf "user:%d") in
  let counts = Hash_ring.spread ring ~keys in
  Array.iteri
    (fun s c ->
      check Alcotest.bool
        (Printf.sprintf "shard %d holds a sane share (%d)" s c)
        true
        (c > 400 && c < 2200))
    counts

let test_ring_stability_under_growth () =
  (* Growing 4 -> 5 shards must move roughly 1/5 of the keys and leave
     the rest exactly where they were. *)
  let before = Hash_ring.create ~shards:4 () in
  let after = Hash_ring.create ~shards:5 () in
  let keys = List.init 2000 (Printf.sprintf "item-%d") in
  let moved =
    List.fold_left
      (fun acc k ->
        let b = Hash_ring.shard_of before k and a = Hash_ring.shard_of after k in
        if a = b then acc
        else begin
          check Alcotest.int (k ^ " only moves to the new shard") 4 a;
          acc + 1
        end)
      0 keys
  in
  check Alcotest.bool
    (Printf.sprintf "moved fraction sane (%d/2000)" moved)
    true
    (moved > 200 && moved < 700)

let () =
  Alcotest.run "fabric"
    [
      ( "fabric",
        [
          Alcotest.test_case "sizes and node mapping" `Quick test_create_sizes;
          Alcotest.test_case "groups deliver independently" `Quick
            test_groups_deliver_independently;
          Alcotest.test_case "per-group generations" `Quick test_per_group_generations;
          Alcotest.test_case "concurrent switches overlap" `Quick
            test_concurrent_switches_overlap;
          Alcotest.test_case "shard stream independent of shard count" `Quick
            test_shard_stream_independent_of_shard_count;
          Alcotest.test_case "single-shard fabric behaves" `Quick
            test_single_shard_fabric_behaves;
        ] );
      ( "sharded-apps",
        [
          Alcotest.test_case "kv routing and convergence" `Quick
            test_sharded_kv_routing_and_convergence;
          Alcotest.test_case "kv survives rolling replacement" `Quick
            test_sharded_kv_survives_rolling_replacement;
          Alcotest.test_case "sharded locks" `Quick test_sharded_locks;
          Alcotest.test_case "attach_late races change_protocol" `Quick
            test_attach_late_races_change_protocol;
        ] );
      ( "hash-ring",
        [
          Alcotest.test_case "deterministic and total" `Quick
            test_ring_deterministic_and_total;
          Alcotest.test_case "spread" `Quick test_ring_spread;
          Alcotest.test_case "stability under growth" `Quick
            test_ring_stability_under_growth;
        ] );
    ]
