(* Tests for the observability stack (Dpu_obs + Spans): the JSON
   emitter/parser, the metrics registry and its no-op path, trace-event
   and CSV export, span reconstruction, and the cross-layer invariants
   tying the metric values to the collector's ground truth. *)

module Json = Dpu_obs.Json
module M = Dpu_obs.Metrics
module TE = Dpu_obs.Trace_event
module Csv = Dpu_obs.Csv
module Log = Dpu_obs.Log
module RH = Dpu_obs.Report_html
module Spans = Dpu_core.Spans
module Collector = Dpu_core.Collector
module E = Dpu_workload.Experiment
module Series = Dpu_engine.Series

let check = Alcotest.check
let fail = Alcotest.fail

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_print () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("c", Json.Str "x");
      ]
  in
  check Alcotest.string "compact form" {|{"a":1,"b":[true,null],"c":"x"}|}
    (Json.to_string v)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
        ("bool", Json.Bool false);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "roundtrip equal" true (v = v')
  | Error e -> fail ("parse failed: " ^ e)

let test_json_unicode_escape () =
  match Json.of_string {|"AAé"|} with
  | Ok (Json.Str s) -> check Alcotest.string "decoded" "AA\xc3\xa9" s
  | Ok _ -> fail "expected a string"
  | Error e -> fail e

let test_json_nonfinite () =
  check Alcotest.string "nan is null" "null" (Json.to_string (Json.Float nan));
  check Alcotest.string "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    [ "{"; "[1,"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2" ]

let test_json_accessors () =
  let v = Json.Obj [ ("x", Json.Int 3); ("s", Json.Str "hi"); ("f", Json.Float 2.5) ] in
  check (Alcotest.option Alcotest.int) "member int" (Some 3)
    (Option.bind (Json.member v "x") Json.to_int_opt);
  check (Alcotest.option Alcotest.string) "member str" (Some "hi")
    (Option.bind (Json.member v "s") Json.to_string_opt);
  check (Alcotest.option (Alcotest.float 0.0)) "member float" (Some 2.5)
    (Option.bind (Json.member v "f") Json.to_float_opt);
  check Alcotest.bool "missing member" true (Json.member v "nope" = None)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter () =
  let m = M.create () in
  let c = M.counter m "reqs_total" in
  M.incr c;
  M.add c 4;
  check Alcotest.int "value" 5 (M.counter_value c);
  (* Re-creating the same name+labels returns the same cell. *)
  let c' = M.counter m "reqs_total" in
  M.incr c';
  check Alcotest.int "shared cell" 6 (M.counter_value c);
  check (Alcotest.option (Alcotest.float 0.0)) "query" (Some 6.0)
    (M.value m "reqs_total")

let test_metrics_labels () =
  let m = M.create () in
  let a = M.counter m ~labels:[ ("node", "0"); ("proto", "ct") ] "x_total" in
  (* Label order must not matter for identity. *)
  let a' = M.counter m ~labels:[ ("proto", "ct"); ("node", "0") ] "x_total" in
  let b = M.counter m ~labels:[ ("node", "1"); ("proto", "ct") ] "x_total" in
  M.incr a;
  M.incr a';
  M.add b 10;
  check Alcotest.int "label order insensitive" 2 (M.counter_value a);
  check (Alcotest.float 0.0) "sum across label sets" 12.0 (M.sum m "x_total");
  check (Alcotest.option (Alcotest.float 0.0)) "exact label query" (Some 10.0)
    (M.value m ~labels:[ ("proto", "ct"); ("node", "1") ] "x_total")

let test_metrics_gauge_and_callbacks () =
  let m = M.create () in
  let g = M.gauge m "depth" in
  M.set g 7.5;
  check (Alcotest.float 0.0) "gauge" 7.5 (M.gauge_value g);
  let backing = ref 3 in
  M.register_int m "backing_total" (fun () -> !backing);
  backing := 9;
  check (Alcotest.option (Alcotest.float 0.0)) "callback sampled at query" (Some 9.0)
    (M.value m "backing_total")

let test_metrics_histogram () =
  let m = M.create () in
  let h = M.histogram m ~bounds:[| 1.0; 10.0 |] "lat_ms" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0 ];
  check Alcotest.int "count" 3 (M.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 55.5 (M.histogram_sum h);
  (* Snapshot carries the bucket counts, including the +inf bucket. *)
  let j = M.to_json m in
  let metrics = Option.get (Option.bind (Json.member j "metrics") Json.to_list_opt) in
  let hist = List.hd metrics in
  let buckets = Option.get (Option.bind (Json.member hist "buckets") Json.to_list_opt) in
  let counts =
    List.map (fun b -> Option.get (Option.bind (Json.member b "count") Json.to_int_opt)) buckets
  in
  check (Alcotest.list Alcotest.int) "bucket counts" [ 1; 1; 1 ] counts

let test_metrics_noop () =
  let c = M.counter M.noop "x_total" in
  M.incr c;
  M.add c 100;
  check Alcotest.int "noop counter dead" 0 (M.counter_value c);
  let h = M.histogram M.noop "h_ms" in
  M.observe h 1.0;
  check Alcotest.int "noop histogram dead" 0 (M.histogram_count h);
  M.register_int M.noop "cb_total" (fun () ->
      ignore (fail "sampled a noop callback" : unit);
      0);
  check Alcotest.bool "nothing registered" true (M.names M.noop = []);
  check Alcotest.bool "noop disabled" true (not (M.enabled M.noop));
  M.set_enabled M.noop true;
  check Alcotest.bool "noop cannot be enabled" true (not (M.enabled M.noop))

let test_metrics_disable_enable () =
  let m = M.create ~enabled:false () in
  let c = M.counter m "x_total" in
  M.incr c;
  check Alcotest.int "disabled: no count" 0 (M.counter_value c);
  M.set_enabled m true;
  M.incr c;
  check Alcotest.int "enabled: counts" 1 (M.counter_value c)

let test_metrics_snapshot_parses () =
  let m = M.create () in
  M.incr (M.counter m ~labels:[ ("node", "0") ] "a_total");
  M.set (M.gauge m "b") 2.0;
  M.observe (M.histogram m "c_ms") 1.0;
  let s = Json.to_string (M.to_json m) in
  match Json.of_string s with
  | Ok j ->
    check (Alcotest.option Alcotest.string) "schema" (Some "dpu.metrics/1")
      (Option.bind (Json.member j "schema") Json.to_string_opt);
    let metrics = Option.get (Option.bind (Json.member j "metrics") Json.to_list_opt) in
    check Alcotest.int "three series" 3 (List.length metrics)
  | Error e -> fail ("snapshot does not parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Bucket-based quantile estimation                                   *)
(* ------------------------------------------------------------------ *)

let qopt = Alcotest.option (Alcotest.float 1e-9)

let test_quantile_empty () =
  check qopt "all-zero buckets" None
    (M.quantile_of_buckets ~bounds:[| 1.0; 2.0; 4.0 |] ~counts:[| 0; 0; 0; 0 |] 0.5);
  let m = M.create () in
  let h = M.histogram m "lat_ms" in
  check qopt "empty histogram" None (M.histogram_quantile h 0.5)

let test_quantile_interpolation () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* All ten observations in the (1, 2] bucket: the median sits halfway
     up that bucket's linear interpolation. *)
  check qopt "median interpolates" (Some 1.5)
    (M.quantile_of_buckets ~bounds ~counts:[| 0; 10; 0; 0 |] 0.5);
  check qopt "p90 interpolates" (Some 1.9)
    (M.quantile_of_buckets ~bounds ~counts:[| 0; 10; 0; 0 |] 0.9)

let test_quantile_inf_bucket_capped () =
  let bounds = [| 1.0; 2.0; 4.0 |] in
  (* Mass in the open +inf bucket: the observed max caps the estimate;
     without it the last finite bound is the best answer. *)
  check qopt "+inf capped by hi" (Some 7.5)
    (M.quantile_of_buckets ~bounds ~counts:[| 0; 0; 0; 5 |] ~hi:7.5 0.99);
  check qopt "+inf falls back to last bound" (Some 4.0)
    (M.quantile_of_buckets ~bounds ~counts:[| 0; 0; 0; 5 |] 0.99)

let test_quantile_clamped_to_extremes () =
  (* The observed min tightens the first bucket's lower edge. *)
  check qopt "q=0 reports the observed min" (Some 2.0)
    (M.quantile_of_buckets ~bounds:[| 10.0 |] ~counts:[| 4; 0 |] ~lo:2.0 0.0);
  (* And the observed max bounds any interpolated value from above. *)
  check qopt "interpolation never exceeds hi" (Some 6.0)
    (M.quantile_of_buckets ~bounds:[| 10.0 |] ~counts:[| 4; 0 |] ~lo:2.0 ~hi:6.0 1.0)

let test_quantile_invalid_arguments () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> fail "expected Invalid_argument"
  in
  raises (fun () -> M.quantile_of_buckets ~bounds:[| 1.0 |] ~counts:[| 1; 0 |] 1.5);
  raises (fun () -> M.quantile_of_buckets ~bounds:[| 1.0 |] ~counts:[| 1; 0 |] (-0.1));
  (* counts must carry the trailing +inf bucket. *)
  raises (fun () -> M.quantile_of_buckets ~bounds:[| 1.0 |] ~counts:[| 1 |] 0.5)

let test_quantile_of_instrument () =
  let m = M.create () in
  let h = M.histogram m ~bounds:[| 1.0; 10.0 |] "lat_ms" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0 ];
  check qopt "p100 is the observed max" (Some 50.0) (M.histogram_quantile h 1.0);
  check qopt "median interpolated in (1, 10]" (Some 5.5) (M.histogram_quantile h 0.5);
  (* pp_summary surfaces the quantiles for humans. *)
  let s = Format.asprintf "%a" M.pp_summary m in
  check Alcotest.bool "summary lists p50/p99/p999" true
    (contains s "p50=" && contains s "p99=" && contains s "p999=")

(* ------------------------------------------------------------------ *)
(* Structured logging                                                 *)
(* ------------------------------------------------------------------ *)

(* A synthetic deterministic clock: what the simulator clock gives the
   experiment logger. Identical call sequences must produce identical
   bytes — that is the property the sim-determinism gate relies on. *)
let emit_log_bytes () =
  let t = ref 0.0 in
  let clock () =
    t := !t +. 1.25;
    !t
  in
  let buf = Buffer.create 256 in
  let log = Log.to_buffer ~clock buf in
  Log.info log ~fields:[ ("n", Json.Int 3); ("load", Json.Float 40.0) ] "start";
  Log.debug log "below the default threshold";
  Log.warn log ~fields:[ ("node", Json.Int 1) ] "crash";
  Log.error log "boom";
  Buffer.contents buf

let test_log_deterministic_bytes () =
  let a = emit_log_bytes () in
  let b = emit_log_bytes () in
  check Alcotest.string "same clock, same calls, same bytes" a b;
  match Log.entries_of_string a with
  | Error e -> fail ("emitted JSONL does not parse: " ^ e)
  | Ok entries ->
    (* Info default threshold: the debug record was dropped. *)
    check Alcotest.int "three records" 3 (List.length entries);
    let levels = List.map (fun e -> Log.level_name e.Log.e_level) entries in
    check (Alcotest.list Alcotest.string) "levels" [ "info"; "warn"; "error" ] levels;
    let first = List.hd entries in
    check Alcotest.string "msg" "start" first.Log.e_msg;
    check (Alcotest.float 1e-9) "stamped on the synthetic clock" 1.25 first.Log.e_time;
    check (Alcotest.option Alcotest.int) "caller fields preserved" (Some 3)
      (Option.bind (Json.member first.Log.e_fields "n") Json.to_int_opt)

let test_log_noop_and_threshold () =
  (* The noop logger is disabled at every level and never emits. *)
  List.iter
    (fun lvl -> check Alcotest.bool "noop disabled" false (Log.enabled Log.noop lvl))
    [ Log.Debug; Log.Info; Log.Warn; Log.Error ];
  Log.error Log.noop ~fields:[ ("x", Json.Int 1) ] "dropped";
  (* A Warn-threshold logger drops info but passes warn and error. *)
  let hits = ref 0 in
  let log = Log.create ~level:Log.Warn ~clock:(fun () -> 0.0) ~emit:(fun _ -> incr hits) () in
  Log.info log "dropped";
  Log.warn log "kept";
  Log.error log "kept";
  check Alcotest.int "threshold filters" 2 !hits;
  check Alcotest.bool "enabled warn" true (Log.enabled log Log.Warn);
  check Alcotest.bool "disabled info" false (Log.enabled log Log.Info)

let test_log_entry_parsing () =
  (match Log.entry_of_line {|{"t":12.5,"level":"warn","msg":"m","node":2}|} with
  | Error e -> fail e
  | Ok entry ->
    check (Alcotest.float 0.0) "t" 12.5 entry.Log.e_time;
    check Alcotest.string "level" "warn" (Log.level_name entry.Log.e_level);
    check Alcotest.string "msg" "m" entry.Log.e_msg;
    check (Alcotest.option Alcotest.int) "extra field" (Some 2)
      (Option.bind (Json.member entry.Log.e_fields "node") Json.to_int_opt));
  (match Log.entry_of_line "not json" with
  | Ok _ -> fail "accepted a malformed line"
  | Error _ -> ());
  (* Blank lines are skipped by the document parser. *)
  match Log.entries_of_string "\n{\"t\":1,\"level\":\"info\",\"msg\":\"a\"}\n\n" with
  | Ok [ e ] -> check Alcotest.string "single entry" "a" e.Log.e_msg
  | Ok _ -> fail "expected exactly one entry"
  | Error e -> fail e

(* ------------------------------------------------------------------ *)
(* Trace events and CSV                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_event_json () =
  let events =
    [
      TE.process_name ~pid:0 "node 0";
      TE.complete ~name:"m" ~cat:"abcast" ~pid:0 ~tid:0 ~ts_ms:1.5 ~dur_ms:2.0 ();
      TE.instant ~name:"i" ~cat:"dpu" ~pid:0 ~tid:1 ~ts_ms:3.0 ();
    ]
  in
  let j = TE.to_json events in
  let evs = Option.get (Option.bind (Json.member j "traceEvents") Json.to_list_opt) in
  check Alcotest.int "three events" 3 (List.length evs);
  List.iter
    (fun e ->
      check Alcotest.bool "has ph" true (Json.member e "ph" <> None);
      check Alcotest.bool "has pid" true (Json.member e "pid" <> None))
    evs;
  (* Timestamps are microseconds in the trace-event format. *)
  let x = List.nth evs 1 in
  check (Alcotest.option (Alcotest.float 1e-9)) "ts in us" (Some 1500.0)
    (Option.bind (Json.member x "ts") Json.to_float_opt);
  check (Alcotest.option (Alcotest.float 1e-9)) "dur in us" (Some 2000.0)
    (Option.bind (Json.member x "dur") Json.to_float_opt)

let test_trace_event_negative_duration_clamped () =
  let e = TE.complete ~name:"m" ~cat:"c" ~pid:0 ~tid:0 ~ts_ms:1.0 ~dur_ms:(-5.0) () in
  match Json.member (TE.to_json [ e ]) "traceEvents" with
  | Some (Json.List [ ev ]) ->
    check (Alcotest.option (Alcotest.float 0.0)) "clamped" (Some 0.0)
      (Option.bind (Json.member ev "dur") Json.to_float_opt)
  | _ -> fail "expected one event"

(* The live path serialises each node's trace buffer into its report
   and the parent parses it back: of_json must invert event_json for
   every phase this module emits. *)
let test_trace_event_parse_roundtrip () =
  let events =
    [
      TE.process_name ~pid:0 "node 0";
      TE.thread_name ~pid:0 ~tid:1 "kernel / dpu";
      TE.complete ~name:"replacement gen=1" ~cat:"dpu" ~pid:2 ~tid:0 ~ts_ms:30.0
        ~dur_ms:7.0
        ~args:[ ("generation", Json.Int 1) ]
        ();
      TE.instant ~name:"heal partition" ~cat:"nemesis" ~pid:3 ~tid:0 ~ts_ms:12.5 ();
    ]
  in
  (match TE.events_of_json (TE.to_json events) with
  | Ok back -> check Alcotest.bool "envelope roundtrip" true (back = events)
  | Error e -> fail ("envelope did not parse back: " ^ e));
  (* Each event individually, through the single-event parser. *)
  List.iter
    (fun e ->
      match TE.of_json (TE.event_json e) with
      | Ok e' -> check Alcotest.bool "event roundtrip" true (e = e')
      | Error err -> fail ("event did not parse back: " ^ err))
    events;
  (* A bare list (no envelope) is accepted too. *)
  match TE.events_of_json (Json.List (List.map TE.event_json events)) with
  | Ok back -> check Alcotest.int "bare list" (List.length events) (List.length back)
  | Error e -> fail e

let test_trace_event_parse_rejects_garbage () =
  (match TE.of_json (Json.Obj [ ("ph", Json.Str "Z") ]) with
  | Ok _ -> fail "accepted an unknown phase"
  | Error _ -> ());
  match TE.events_of_json (Json.Str "nope") with
  | Ok _ -> fail "accepted a non-list"
  | Error _ -> ()

let test_csv_escaping () =
  check Alcotest.string "plain" "x" (Csv.escape "x");
  check Alcotest.string "comma" "\"a,b\"" (Csv.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csv.escape "a\nb");
  let s = Csv.render ~header:[ "t"; "v" ] [ [ "1"; "a,b" ]; [ "2"; "c" ] ] in
  check Alcotest.string "render" "t,v\n1,\"a,b\"\n2,c\n" s

(* ------------------------------------------------------------------ *)
(* Span reconstruction                                                *)
(* ------------------------------------------------------------------ *)

let test_spans_from_collector () =
  let open Dpu_kernel in
  let c = Collector.create () in
  let id = { Msg.origin = 0; seq = 1 } in
  Collector.record_send c ~node:0 ~id ~time:10.0;
  Collector.record_deliver c ~node:0 ~id ~time:14.0;
  Collector.record_deliver c ~node:1 ~id ~time:16.0;
  let never = { Msg.origin = 1; seq = 5 } in
  Collector.record_send c ~node:1 ~id:never ~time:20.0;
  Collector.record_switch c ~node:0 ~generation:1 ~time:30.0;
  Collector.record_switch c ~node:1 ~generation:1 ~time:37.0;
  let events = Spans.of_run ~n:2 c in
  let j = TE.to_json events in
  let evs = Option.get (Option.bind (Json.member j "traceEvents") Json.to_list_opt) in
  let completes ph = List.filter (fun e -> Json.member e "ph" = Some (Json.Str ph)) evs in
  (* One span per (message, delivering node) plus the gen-1 window. *)
  check Alcotest.int "complete spans" 3 (List.length (completes "X"));
  (* The undelivered message renders as an instant, plus 2 installs. *)
  check Alcotest.int "instants" 3 (List.length (completes "i"));
  let window =
    List.find
      (fun e ->
        match Json.member e "name" with
        | Some (Json.Str s) -> s = "replacement gen=1"
        | _ -> false)
      evs
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "window start" (Some 30_000.0)
    (Option.bind (Json.member window "ts") Json.to_float_opt);
  check (Alcotest.option (Alcotest.float 1e-6)) "window width" (Some 7_000.0)
    (Option.bind (Json.member window "dur") Json.to_float_opt);
  (* The window lives on the synthetic timeline process (pid = n). *)
  check (Alcotest.option Alcotest.int) "timeline pid" (Some 2)
    (Option.bind (Json.member window "pid") Json.to_int_opt)

(* ------------------------------------------------------------------ *)
(* Replacement windows: collector vs trace round-trip                 *)
(* ------------------------------------------------------------------ *)

let windows_testable =
  Alcotest.(list (pair int (pair (float 1e-6) (float 1e-6))))

let test_windows_roundtrip_through_trace () =
  let c = Collector.create () in
  Collector.record_switch c ~node:0 ~generation:1 ~time:30.0;
  Collector.record_switch c ~node:1 ~generation:1 ~time:37.0;
  Collector.record_switch c ~node:1 ~generation:2 ~time:80.0;
  Collector.record_switch c ~node:0 ~generation:2 ~time:95.5;
  let timeline = Spans.replacement_timeline c in
  check windows_testable "timeline from collector"
    [ (1, (30.0, 37.0)); (2, (80.0, 95.5)) ]
    timeline;
  (* The same windows must be recoverable from the exported trace —
     the property the live merge relies on. *)
  let events = Spans.of_run ~n:2 c in
  check windows_testable "windows survive the trace" timeline
    (Spans.windows_of_trace_events events);
  (* And survive a serialisation round-trip through JSON. *)
  match Dpu_obs.Trace_event.events_of_json (Spans.to_json events) with
  | Ok back -> check windows_testable "windows survive JSON" timeline
                 (Spans.windows_of_trace_events back)
  | Error e -> fail e

(* ------------------------------------------------------------------ *)
(* HTML report rendering                                              *)
(* ------------------------------------------------------------------ *)

let bench_entry wall x_ms =
  Json.Obj
    [
      ("schema", Json.Str "dpu.bench/1");
      ("wall_clock_s", Json.Float wall);
      ("results", Json.Obj [ ("sec", Json.Obj [ ("x_ms", Json.Float x_ms) ]) ]);
    ]

let test_report_html_render () =
  let events =
    [
      TE.process_name ~pid:0 "node 0";
      TE.complete ~name:"replacement gen=1" ~cat:"dpu" ~pid:2 ~tid:0 ~ts_ms:30.0
        ~dur_ms:7.0 ();
      TE.complete ~name:"partition [0] | [1 2]" ~cat:"nemesis" ~pid:3 ~tid:0
        ~ts_ms:10.0 ~dur_ms:25.0 ();
      TE.instant ~name:"injected_loss src=0 dst=1" ~cat:"fault" ~pid:0 ~tid:1
        ~ts_ms:15.0 ();
    ]
  in
  check windows_testable "windows parsed" [ (1, (30.0, 37.0)) ]
    (RH.windows_of_events events);
  let m = M.create () in
  let h = M.histogram m ~bounds:[| 1.0; 10.0 |] ~labels:[ ("node", "0") ] "live_select_wait_ms" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0 ];
  M.incr (M.counter m "net_sent_total");
  let history = [ ("0001-aaaa", bench_entry 1.0 12.0); ("0002-bbbb", bench_entry 1.2 11.0) ] in
  let html = RH.render ~metrics:(M.to_json m) ~trace:events ~history ~title:"t" () in
  List.iter
    (fun needle ->
      check Alcotest.bool (Printf.sprintf "html contains %S" needle) true
        (contains html needle))
    [
      "<!doctype html>";
      "</html>";
      "Replacement timeline";
      "Latency quantiles";
      "p999";
      "live_select_wait_ms";
      "Perf trends";
      "sec.x_ms";
      "bench.wall_clock_s";
      "<svg";
      "polyline";
    ];
  (* No scripts, no external fetches: the page must be self-contained. *)
  check Alcotest.bool "no <script>" false (contains html "<script");
  check Alcotest.bool "no http fetches" false (contains html "src=\"http")

let test_report_html_empty_inputs () =
  let html = RH.render ~title:"empty" () in
  check Alcotest.bool "placeholder" true (contains html "nothing to report")

(* ------------------------------------------------------------------ *)
(* End-to-end: metrics-enabled experiment                             *)
(* ------------------------------------------------------------------ *)

let obs_params =
  {
    E.default with
    n = 3;
    load = 30.0;
    duration_ms = 2_000.0;
    warmup_ms = 200.0;
    switch_at_ms = 1_000.0;
    msg_size = 512;
    metrics_enabled = true;
    trace_enabled = true;
  }

let test_cross_layer_invariants () =
  let r = E.run obs_params in
  let m = r.E.metrics in
  check Alcotest.bool "registry live" true (M.enabled m);
  (* The middleware's own send counter must agree with the collector. *)
  check (Alcotest.option (Alcotest.float 0.0)) "sends agree"
    (Some (float_of_int (Collector.send_count r.E.collector)))
    (M.value m "app_sends_total");
  (* The epoch buffer can only replay what it stashed. *)
  check Alcotest.bool "replayed <= stashed" true
    (M.sum m "epoch_buffer_replayed_total" <= M.sum m "epoch_buffer_stashed_total");
  (* The net-layer series must mirror the datagram counters exactly. *)
  let system = Dpu_kernel.System.create ~seed:1 ~n:1 () in
  ignore system;
  (* Every layer contributes series. *)
  let names = M.names m in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " present") true (List.mem n names))
    [
      "sim_events_scheduled_total";
      "sim_events_executed_total";
      "net_sent_total";
      "net_delivered_total";
      "kernel_calls_total";
      "kernel_binds_total";
      "kernel_blocked_call_ms";
      "repl_intercepted_calls_total";
      "repl_switches_total";
      "epoch_buffer_stashed_total";
      "epoch_buffer_replayed_total";
      "app_sends_total";
      "app_delivers_total";
    ];
  (* Every node switched exactly once: the per-node switch counters sum
     to n, and so do the collector's switch records. *)
  check (Alcotest.float 0.0) "repl switches = collector switches"
    (float_of_int (List.length (Collector.switches r.E.collector)))
    (M.sum m "repl_switches_total");
  (* Delivery counters: each node's app monitor counted its own
     deliveries. *)
  let delivered_via_collector =
    List.fold_left
      (fun acc node ->
        acc + List.length (Collector.delivers_of r.E.collector ~node))
      0 r.E.correct
  in
  check (Alcotest.float 0.0) "app delivers = collector delivers"
    (float_of_int delivered_via_collector)
    (M.sum m "app_delivers_total")

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* The experiment logger is stamped on the virtual clock: identical
   params must produce byte-identical JSONL files across runs. *)
let test_experiment_log_deterministic () =
  let emit tag =
    let path = Filename.temp_file ("dpu_obs_" ^ tag) ".jsonl" in
    let r = E.run { obs_params with log_out = Some path } in
    ignore (r : E.result);
    let s = read_file path in
    Sys.remove path;
    s
  in
  let a = emit "a" in
  let b = emit "b" in
  check Alcotest.string "byte-identical across runs" a b;
  match Log.entries_of_string a with
  | Error e -> fail ("experiment log does not parse: " ^ e)
  | Ok entries ->
    let msgs = List.map (fun e -> e.Log.e_msg) entries in
    List.iter
      (fun m -> check Alcotest.bool (m ^ " logged") true (List.mem m msgs))
      [ "experiment start"; "switch trigger"; "experiment done" ];
    (* Milestones carry virtual-clock stamps in run order. *)
    let times = List.map (fun e -> e.Log.e_time) entries in
    check Alcotest.bool "timestamps non-decreasing" true
      (List.sort compare times = times)

let test_metrics_off_is_noop_registry () =
  let r = E.run { obs_params with metrics_enabled = false; trace_enabled = false } in
  check Alcotest.bool "noop registry" true (not (M.enabled r.E.metrics));
  check Alcotest.bool "no series" true (M.names r.E.metrics = [])

(* The acceptance criterion behind the no-op path: enabling metrics
   must not perturb the simulation. Virtual time is deterministic, so
   the latency series must be *identical*, not just statistically
   close. *)
let test_metrics_do_not_perturb_results () =
  let on = E.run obs_params in
  let off = E.run { obs_params with metrics_enabled = false } in
  let pts r = List.map (fun (p : Series.point) -> (p.time, p.value)) (Series.points r.E.latency) in
  check Alcotest.int "same message count" (List.length (pts off)) (List.length (pts on));
  check Alcotest.bool "bit-identical latency series" true (pts on = pts off);
  check Alcotest.int "same sends" off.E.sent on.E.sent

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "json",
        [
          tc "print" test_json_print;
          tc "roundtrip" test_json_roundtrip;
          tc "unicode escape" test_json_unicode_escape;
          tc "nonfinite floats" test_json_nonfinite;
          tc "parse errors" test_json_parse_errors;
          tc "accessors" test_json_accessors;
        ] );
      ( "metrics",
        [
          tc "counter" test_metrics_counter;
          tc "labels" test_metrics_labels;
          tc "gauge and callbacks" test_metrics_gauge_and_callbacks;
          tc "histogram" test_metrics_histogram;
          tc "noop" test_metrics_noop;
          tc "disable/enable" test_metrics_disable_enable;
          tc "snapshot parses" test_metrics_snapshot_parses;
        ] );
      ( "quantiles",
        [
          tc "empty" test_quantile_empty;
          tc "interpolation" test_quantile_interpolation;
          tc "+inf bucket capped" test_quantile_inf_bucket_capped;
          tc "clamped to extremes" test_quantile_clamped_to_extremes;
          tc "invalid arguments" test_quantile_invalid_arguments;
          tc "instrument + pp_summary" test_quantile_of_instrument;
        ] );
      ( "log",
        [
          tc "deterministic bytes" test_log_deterministic_bytes;
          tc "noop and threshold" test_log_noop_and_threshold;
          tc "entry parsing" test_log_entry_parsing;
        ] );
      ( "export",
        [
          tc "trace-event json" test_trace_event_json;
          tc "negative duration clamped" test_trace_event_negative_duration_clamped;
          tc "parse roundtrip" test_trace_event_parse_roundtrip;
          tc "parse rejects garbage" test_trace_event_parse_rejects_garbage;
          tc "csv escaping" test_csv_escaping;
        ] );
      ( "spans",
        [
          tc "from collector" test_spans_from_collector;
          tc "windows roundtrip through trace" test_windows_roundtrip_through_trace;
        ] );
      ( "report",
        [
          tc "render" test_report_html_render;
          tc "empty inputs" test_report_html_empty_inputs;
        ] );
      ( "end_to_end",
        [
          tc "cross-layer invariants" test_cross_layer_invariants;
          tc "metrics off = noop registry" test_metrics_off_is_noop_registry;
          tc "metrics do not perturb results" test_metrics_do_not_perturb_results;
          tc "experiment log deterministic" test_experiment_log_deterministic;
        ] );
    ]
