(* Tests for the observability stack (Dpu_obs + Spans): the JSON
   emitter/parser, the metrics registry and its no-op path, trace-event
   and CSV export, span reconstruction, and the cross-layer invariants
   tying the metric values to the collector's ground truth. *)

module Json = Dpu_obs.Json
module M = Dpu_obs.Metrics
module TE = Dpu_obs.Trace_event
module Csv = Dpu_obs.Csv
module Spans = Dpu_core.Spans
module Collector = Dpu_core.Collector
module E = Dpu_workload.Experiment
module Series = Dpu_engine.Series

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_print () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Bool true; Json.Null ]);
        ("c", Json.Str "x");
      ]
  in
  check Alcotest.string "compact form" {|{"a":1,"b":[true,null],"c":"x"}|}
    (Json.to_string v)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.Str "quote \" backslash \\ newline \n tab \t");
        ("list", Json.List [ Json.Int 1; Json.Str "two"; Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
        ("bool", Json.Bool false);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> check Alcotest.bool "roundtrip equal" true (v = v')
  | Error e -> fail ("parse failed: " ^ e)

let test_json_unicode_escape () =
  match Json.of_string {|"AAé"|} with
  | Ok (Json.Str s) -> check Alcotest.string "decoded" "AA\xc3\xa9" s
  | Ok _ -> fail "expected a string"
  | Error e -> fail e

let test_json_nonfinite () =
  check Alcotest.string "nan is null" "null" (Json.to_string (Json.Float nan));
  check Alcotest.string "inf is null" "null" (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    [ "{"; "[1,"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2" ]

let test_json_accessors () =
  let v = Json.Obj [ ("x", Json.Int 3); ("s", Json.Str "hi"); ("f", Json.Float 2.5) ] in
  check (Alcotest.option Alcotest.int) "member int" (Some 3)
    (Option.bind (Json.member v "x") Json.to_int_opt);
  check (Alcotest.option Alcotest.string) "member str" (Some "hi")
    (Option.bind (Json.member v "s") Json.to_string_opt);
  check (Alcotest.option (Alcotest.float 0.0)) "member float" (Some 2.5)
    (Option.bind (Json.member v "f") Json.to_float_opt);
  check Alcotest.bool "missing member" true (Json.member v "nope" = None)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter () =
  let m = M.create () in
  let c = M.counter m "reqs_total" in
  M.incr c;
  M.add c 4;
  check Alcotest.int "value" 5 (M.counter_value c);
  (* Re-creating the same name+labels returns the same cell. *)
  let c' = M.counter m "reqs_total" in
  M.incr c';
  check Alcotest.int "shared cell" 6 (M.counter_value c);
  check (Alcotest.option (Alcotest.float 0.0)) "query" (Some 6.0)
    (M.value m "reqs_total")

let test_metrics_labels () =
  let m = M.create () in
  let a = M.counter m ~labels:[ ("node", "0"); ("proto", "ct") ] "x_total" in
  (* Label order must not matter for identity. *)
  let a' = M.counter m ~labels:[ ("proto", "ct"); ("node", "0") ] "x_total" in
  let b = M.counter m ~labels:[ ("node", "1"); ("proto", "ct") ] "x_total" in
  M.incr a;
  M.incr a';
  M.add b 10;
  check Alcotest.int "label order insensitive" 2 (M.counter_value a);
  check (Alcotest.float 0.0) "sum across label sets" 12.0 (M.sum m "x_total");
  check (Alcotest.option (Alcotest.float 0.0)) "exact label query" (Some 10.0)
    (M.value m ~labels:[ ("proto", "ct"); ("node", "1") ] "x_total")

let test_metrics_gauge_and_callbacks () =
  let m = M.create () in
  let g = M.gauge m "depth" in
  M.set g 7.5;
  check (Alcotest.float 0.0) "gauge" 7.5 (M.gauge_value g);
  let backing = ref 3 in
  M.register_int m "backing_total" (fun () -> !backing);
  backing := 9;
  check (Alcotest.option (Alcotest.float 0.0)) "callback sampled at query" (Some 9.0)
    (M.value m "backing_total")

let test_metrics_histogram () =
  let m = M.create () in
  let h = M.histogram m ~bounds:[| 1.0; 10.0 |] "lat_ms" in
  List.iter (M.observe h) [ 0.5; 5.0; 50.0 ];
  check Alcotest.int "count" 3 (M.histogram_count h);
  check (Alcotest.float 1e-9) "sum" 55.5 (M.histogram_sum h);
  (* Snapshot carries the bucket counts, including the +inf bucket. *)
  let j = M.to_json m in
  let metrics = Option.get (Option.bind (Json.member j "metrics") Json.to_list_opt) in
  let hist = List.hd metrics in
  let buckets = Option.get (Option.bind (Json.member hist "buckets") Json.to_list_opt) in
  let counts =
    List.map (fun b -> Option.get (Option.bind (Json.member b "count") Json.to_int_opt)) buckets
  in
  check (Alcotest.list Alcotest.int) "bucket counts" [ 1; 1; 1 ] counts

let test_metrics_noop () =
  let c = M.counter M.noop "x_total" in
  M.incr c;
  M.add c 100;
  check Alcotest.int "noop counter dead" 0 (M.counter_value c);
  let h = M.histogram M.noop "h_ms" in
  M.observe h 1.0;
  check Alcotest.int "noop histogram dead" 0 (M.histogram_count h);
  M.register_int M.noop "cb_total" (fun () ->
      ignore (fail "sampled a noop callback" : unit);
      0);
  check Alcotest.bool "nothing registered" true (M.names M.noop = []);
  check Alcotest.bool "noop disabled" true (not (M.enabled M.noop));
  M.set_enabled M.noop true;
  check Alcotest.bool "noop cannot be enabled" true (not (M.enabled M.noop))

let test_metrics_disable_enable () =
  let m = M.create ~enabled:false () in
  let c = M.counter m "x_total" in
  M.incr c;
  check Alcotest.int "disabled: no count" 0 (M.counter_value c);
  M.set_enabled m true;
  M.incr c;
  check Alcotest.int "enabled: counts" 1 (M.counter_value c)

let test_metrics_snapshot_parses () =
  let m = M.create () in
  M.incr (M.counter m ~labels:[ ("node", "0") ] "a_total");
  M.set (M.gauge m "b") 2.0;
  M.observe (M.histogram m "c_ms") 1.0;
  let s = Json.to_string (M.to_json m) in
  match Json.of_string s with
  | Ok j ->
    check (Alcotest.option Alcotest.string) "schema" (Some "dpu.metrics/1")
      (Option.bind (Json.member j "schema") Json.to_string_opt);
    let metrics = Option.get (Option.bind (Json.member j "metrics") Json.to_list_opt) in
    check Alcotest.int "three series" 3 (List.length metrics)
  | Error e -> fail ("snapshot does not parse: " ^ e)

(* ------------------------------------------------------------------ *)
(* Trace events and CSV                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_event_json () =
  let events =
    [
      TE.process_name ~pid:0 "node 0";
      TE.complete ~name:"m" ~cat:"abcast" ~pid:0 ~tid:0 ~ts_ms:1.5 ~dur_ms:2.0 ();
      TE.instant ~name:"i" ~cat:"dpu" ~pid:0 ~tid:1 ~ts_ms:3.0 ();
    ]
  in
  let j = TE.to_json events in
  let evs = Option.get (Option.bind (Json.member j "traceEvents") Json.to_list_opt) in
  check Alcotest.int "three events" 3 (List.length evs);
  List.iter
    (fun e ->
      check Alcotest.bool "has ph" true (Json.member e "ph" <> None);
      check Alcotest.bool "has pid" true (Json.member e "pid" <> None))
    evs;
  (* Timestamps are microseconds in the trace-event format. *)
  let x = List.nth evs 1 in
  check (Alcotest.option (Alcotest.float 1e-9)) "ts in us" (Some 1500.0)
    (Option.bind (Json.member x "ts") Json.to_float_opt);
  check (Alcotest.option (Alcotest.float 1e-9)) "dur in us" (Some 2000.0)
    (Option.bind (Json.member x "dur") Json.to_float_opt)

let test_trace_event_negative_duration_clamped () =
  let e = TE.complete ~name:"m" ~cat:"c" ~pid:0 ~tid:0 ~ts_ms:1.0 ~dur_ms:(-5.0) () in
  match Json.member (TE.to_json [ e ]) "traceEvents" with
  | Some (Json.List [ ev ]) ->
    check (Alcotest.option (Alcotest.float 0.0)) "clamped" (Some 0.0)
      (Option.bind (Json.member ev "dur") Json.to_float_opt)
  | _ -> fail "expected one event"

let test_csv_escaping () =
  check Alcotest.string "plain" "x" (Csv.escape "x");
  check Alcotest.string "comma" "\"a,b\"" (Csv.escape "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  check Alcotest.string "newline" "\"a\nb\"" (Csv.escape "a\nb");
  let s = Csv.render ~header:[ "t"; "v" ] [ [ "1"; "a,b" ]; [ "2"; "c" ] ] in
  check Alcotest.string "render" "t,v\n1,\"a,b\"\n2,c\n" s

(* ------------------------------------------------------------------ *)
(* Span reconstruction                                                *)
(* ------------------------------------------------------------------ *)

let test_spans_from_collector () =
  let open Dpu_kernel in
  let c = Collector.create () in
  let id = { Msg.origin = 0; seq = 1 } in
  Collector.record_send c ~node:0 ~id ~time:10.0;
  Collector.record_deliver c ~node:0 ~id ~time:14.0;
  Collector.record_deliver c ~node:1 ~id ~time:16.0;
  let never = { Msg.origin = 1; seq = 5 } in
  Collector.record_send c ~node:1 ~id:never ~time:20.0;
  Collector.record_switch c ~node:0 ~generation:1 ~time:30.0;
  Collector.record_switch c ~node:1 ~generation:1 ~time:37.0;
  let events = Spans.of_run ~n:2 c in
  let j = TE.to_json events in
  let evs = Option.get (Option.bind (Json.member j "traceEvents") Json.to_list_opt) in
  let completes ph = List.filter (fun e -> Json.member e "ph" = Some (Json.Str ph)) evs in
  (* One span per (message, delivering node) plus the gen-1 window. *)
  check Alcotest.int "complete spans" 3 (List.length (completes "X"));
  (* The undelivered message renders as an instant, plus 2 installs. *)
  check Alcotest.int "instants" 3 (List.length (completes "i"));
  let window =
    List.find
      (fun e ->
        match Json.member e "name" with
        | Some (Json.Str s) -> s = "replacement gen=1"
        | _ -> false)
      evs
  in
  check (Alcotest.option (Alcotest.float 1e-6)) "window start" (Some 30_000.0)
    (Option.bind (Json.member window "ts") Json.to_float_opt);
  check (Alcotest.option (Alcotest.float 1e-6)) "window width" (Some 7_000.0)
    (Option.bind (Json.member window "dur") Json.to_float_opt);
  (* The window lives on the synthetic timeline process (pid = n). *)
  check (Alcotest.option Alcotest.int) "timeline pid" (Some 2)
    (Option.bind (Json.member window "pid") Json.to_int_opt)

(* ------------------------------------------------------------------ *)
(* End-to-end: metrics-enabled experiment                             *)
(* ------------------------------------------------------------------ *)

let obs_params =
  {
    E.default with
    n = 3;
    load = 30.0;
    duration_ms = 2_000.0;
    warmup_ms = 200.0;
    switch_at_ms = 1_000.0;
    msg_size = 512;
    metrics_enabled = true;
    trace_enabled = true;
  }

let test_cross_layer_invariants () =
  let r = E.run obs_params in
  let m = r.E.metrics in
  check Alcotest.bool "registry live" true (M.enabled m);
  (* The middleware's own send counter must agree with the collector. *)
  check (Alcotest.option (Alcotest.float 0.0)) "sends agree"
    (Some (float_of_int (Collector.send_count r.E.collector)))
    (M.value m "app_sends_total");
  (* The epoch buffer can only replay what it stashed. *)
  check Alcotest.bool "replayed <= stashed" true
    (M.sum m "epoch_buffer_replayed_total" <= M.sum m "epoch_buffer_stashed_total");
  (* The net-layer series must mirror the datagram counters exactly. *)
  let system = Dpu_kernel.System.create ~seed:1 ~n:1 () in
  ignore system;
  (* Every layer contributes series. *)
  let names = M.names m in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " present") true (List.mem n names))
    [
      "sim_events_scheduled_total";
      "sim_events_executed_total";
      "net_sent_total";
      "net_delivered_total";
      "kernel_calls_total";
      "kernel_binds_total";
      "kernel_blocked_call_ms";
      "repl_intercepted_calls_total";
      "repl_switches_total";
      "epoch_buffer_stashed_total";
      "epoch_buffer_replayed_total";
      "app_sends_total";
      "app_delivers_total";
    ];
  (* Every node switched exactly once: the per-node switch counters sum
     to n, and so do the collector's switch records. *)
  check (Alcotest.float 0.0) "repl switches = collector switches"
    (float_of_int (List.length (Collector.switches r.E.collector)))
    (M.sum m "repl_switches_total");
  (* Delivery counters: each node's app monitor counted its own
     deliveries. *)
  let delivered_via_collector =
    List.fold_left
      (fun acc node ->
        acc + List.length (Collector.delivers_of r.E.collector ~node))
      0 r.E.correct
  in
  check (Alcotest.float 0.0) "app delivers = collector delivers"
    (float_of_int delivered_via_collector)
    (M.sum m "app_delivers_total")

let test_metrics_off_is_noop_registry () =
  let r = E.run { obs_params with metrics_enabled = false; trace_enabled = false } in
  check Alcotest.bool "noop registry" true (not (M.enabled r.E.metrics));
  check Alcotest.bool "no series" true (M.names r.E.metrics = [])

(* The acceptance criterion behind the no-op path: enabling metrics
   must not perturb the simulation. Virtual time is deterministic, so
   the latency series must be *identical*, not just statistically
   close. *)
let test_metrics_do_not_perturb_results () =
  let on = E.run obs_params in
  let off = E.run { obs_params with metrics_enabled = false } in
  let pts r = List.map (fun (p : Series.point) -> (p.time, p.value)) (Series.points r.E.latency) in
  check Alcotest.int "same message count" (List.length (pts off)) (List.length (pts on));
  check Alcotest.bool "bit-identical latency series" true (pts on = pts off);
  check Alcotest.int "same sends" off.E.sent on.E.sent

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "json",
        [
          tc "print" test_json_print;
          tc "roundtrip" test_json_roundtrip;
          tc "unicode escape" test_json_unicode_escape;
          tc "nonfinite floats" test_json_nonfinite;
          tc "parse errors" test_json_parse_errors;
          tc "accessors" test_json_accessors;
        ] );
      ( "metrics",
        [
          tc "counter" test_metrics_counter;
          tc "labels" test_metrics_labels;
          tc "gauge and callbacks" test_metrics_gauge_and_callbacks;
          tc "histogram" test_metrics_histogram;
          tc "noop" test_metrics_noop;
          tc "disable/enable" test_metrics_disable_enable;
          tc "snapshot parses" test_metrics_snapshot_parses;
        ] );
      ( "export",
        [
          tc "trace-event json" test_trace_event_json;
          tc "negative duration clamped" test_trace_event_negative_duration_clamped;
          tc "csv escaping" test_csv_escaping;
        ] );
      ( "spans", [ tc "from collector" test_spans_from_collector ] );
      ( "end_to_end",
        [
          tc "cross-layer invariants" test_cross_layer_invariants;
          tc "metrics off = noop registry" test_metrics_off_is_noop_registry;
          tc "metrics do not perturb results" test_metrics_do_not_perturb_results;
        ] );
    ]
