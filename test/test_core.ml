(* Tests for the paper's contribution: the replacement module
   (Algorithm 1), the variant catalogue, the collector, the monitor,
   the stack builder and the middleware API. *)

open Dpu_kernel
module Core = Dpu_core
module P = Dpu_protocols
module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check
let fail = Alcotest.fail

let default_mw ?(config = MW.default_config) ?(n = 3) () = MW.create ~config ~n ()

let mw_with ?(n = 3) ?(seed = 1) ?(loss = 0.0) ?(initial = Core.Variants.ct)
    ?(layer = Some Core.Repl.protocol_name) ?(with_gm = false) () =
  let profile = { SB.default_profile with initial_abcast = initial; layer; with_gm } in
  let config = { MW.default_config with seed; loss; profile } in
  MW.create ~config ~n ()

(* Per-node delivery logs of application messages, as id strings. *)
let delivery_logs mw =
  let n = MW.n mw in
  let logs = Array.make n [] in
  for node = 0 to n - 1 do
    MW.subscribe mw ~node (fun m -> logs.(node) <- Msg.id_to_string m.Msg.id :: logs.(node))
  done;
  logs

let sequences logs = Array.to_list (Array.map List.rev logs)

let assert_consistent ?(skip = []) ~expect_count logs =
  let seqs = sequences logs in
  let live = List.filteri (fun i _ -> not (List.mem i skip)) seqs in
  match live with
  | [] -> fail "no live sequences"
  | first :: rest ->
    check Alcotest.int "delivery count" expect_count (List.length first);
    check Alcotest.int "no duplicates" expect_count
      (List.length (List.sort_uniq compare first));
    List.iter
      (fun seq -> check (Alcotest.list Alcotest.string) "total order" first seq)
      rest

(* ------------------------------------------------------------------ *)
(* Variants                                                           *)
(* ------------------------------------------------------------------ *)

let test_variants_catalogue () =
  check (Alcotest.list Alcotest.string) "names"
    [ "abcast.ct"; "abcast.seq"; "abcast.token" ]
    Core.Variants.all

let test_variants_registered () =
  let system = System.create ~n:2 () in
  Core.Variants.register_all system;
  let r = System.registry system in
  List.iter
    (fun name -> check Alcotest.bool name true (Registry.mem r ~name))
    (Core.Variants.all @ [ "udp"; "rp2p"; "fd"; "rbcast"; "consensus.ct" ])

(* ------------------------------------------------------------------ *)
(* Collector                                                          *)
(* ------------------------------------------------------------------ *)

let test_collector_latency_math () =
  let c = Core.Collector.create () in
  let id = { Msg.origin = 0; seq = 0 } in
  Core.Collector.record_send c ~node:0 ~id ~time:10.0;
  Core.Collector.record_deliver c ~node:0 ~id ~time:14.0;
  Core.Collector.record_deliver c ~node:1 ~id ~time:18.0;
  (match Core.Collector.latency_of c id with
  | Some l -> check (Alcotest.float 1e-9) "mean of per-stack latencies" 6.0 l
  | None -> fail "no latency");
  check Alcotest.int "send count" 1 (Core.Collector.send_count c);
  check (Alcotest.option (Alcotest.float 0.0)) "send time" (Some 10.0)
    (Core.Collector.send_time c id)

let test_collector_undelivered () =
  let c = Core.Collector.create () in
  let id0 = { Msg.origin = 0; seq = 0 } in
  let id1 = { Msg.origin = 0; seq = 1 } in
  Core.Collector.record_send c ~node:0 ~id:id0 ~time:0.0;
  Core.Collector.record_send c ~node:0 ~id:id1 ~time:1.0;
  Core.Collector.record_deliver c ~node:0 ~id:id0 ~time:2.0;
  Core.Collector.record_deliver c ~node:1 ~id:id0 ~time:2.0;
  Core.Collector.record_deliver c ~node:0 ~id:id1 ~time:3.0;
  let missing = Core.Collector.undelivered_ids c ~expected_copies:2 in
  check Alcotest.int "one incomplete" 1 (List.length missing);
  check Alcotest.bool "it is id1" true (Msg.id_equal (List.hd missing) id1)

let test_collector_switch_window () =
  let c = Core.Collector.create () in
  Core.Collector.record_switch c ~node:0 ~generation:1 ~time:100.0;
  Core.Collector.record_switch c ~node:1 ~generation:1 ~time:130.0;
  Core.Collector.record_switch c ~node:2 ~generation:1 ~time:110.0;
  (match Core.Collector.switch_window c ~generation:1 with
  | Some (lo, hi) ->
    check (Alcotest.float 0.0) "lo" 100.0 lo;
    check (Alcotest.float 0.0) "hi" 130.0 hi
  | None -> fail "no window");
  check Alcotest.bool "absent generation" true
    (Core.Collector.switch_window c ~generation:2 = None)

let test_collector_deliver_order () =
  let c = Core.Collector.create () in
  let id i = { Msg.origin = 0; seq = i } in
  Core.Collector.record_deliver c ~node:0 ~id:(id 1) ~time:1.0;
  Core.Collector.record_deliver c ~node:0 ~id:(id 2) ~time:2.0;
  let seq = List.map fst (Core.Collector.delivers_of c ~node:0) in
  check Alcotest.bool "in order" true (seq = [ id 1; id 2 ])

(* ------------------------------------------------------------------ *)
(* Middleware basics                                                  *)
(* ------------------------------------------------------------------ *)

let test_middleware_broadcast_deliver () =
  let mw = default_mw () in
  let logs = delivery_logs mw in
  let m = MW.broadcast mw ~node:1 "hello" in
  check Alcotest.int "origin" 1 m.Msg.id.Msg.origin;
  MW.run_for mw 2_000.0;
  assert_consistent ~expect_count:1 logs

let test_middleware_ids_unique () =
  let mw = default_mw () in
  let a = MW.broadcast mw ~node:0 "a" in
  let b = MW.broadcast mw ~node:0 "b" in
  check Alcotest.bool "distinct" false (Msg.id_equal a.Msg.id b.Msg.id)

let test_middleware_msg_size () =
  let mw = default_mw () in
  let m = MW.broadcast mw ~node:0 ~size:128 "small" in
  check Alcotest.int "explicit size" 128 m.Msg.size;
  let m' = MW.broadcast mw ~node:0 "default" in
  check Alcotest.int "default size" 4096 m'.Msg.size

let test_middleware_no_layer_change_raises () =
  let mw = mw_with ~layer:None () in
  try
    MW.change_protocol mw ~node:0 Core.Variants.sequencer;
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_middleware_no_layer_still_broadcasts () =
  let mw = mw_with ~layer:None () in
  let logs = delivery_logs mw in
  for i = 0 to 5 do
    ignore (MW.broadcast mw ~node:(i mod 3) "x")
  done;
  MW.run_for mw 3_000.0;
  assert_consistent ~expect_count:6 logs

let test_middleware_crash () =
  let mw = default_mw () in
  MW.crash mw 2;
  check (Alcotest.list Alcotest.int) "correct nodes" [ 0; 1 ]
    (System.correct_nodes (MW.system mw))

let test_middleware_latency_series () =
  let mw = default_mw () in
  ignore (delivery_logs mw);
  ignore (MW.broadcast mw ~node:0 "x");
  MW.run_for mw 2_000.0;
  check Alcotest.int "one point" 1 (Dpu_engine.Series.length (MW.latency_series mw))

(* ------------------------------------------------------------------ *)
(* Stack builder                                                      *)
(* ------------------------------------------------------------------ *)

let module_names mw node =
  List.map Stack.module_name (Stack.modules (System.stack (MW.system mw) node))

let test_builder_layered_stack_shape () =
  let mw = default_mw () in
  let names = module_names mw 0 in
  List.iter
    (fun expected ->
      check Alcotest.bool (expected ^ " present") true (List.mem expected names))
    [ "udp"; "rp2p"; "fd"; "rbcast"; "consensus.ct"; "abcast.ct"; "repl.abcast"; "monitor" ];
  let stack = System.stack (MW.system mw) 0 in
  check Alcotest.bool "abcast bound" true (Stack.bound stack Service.abcast <> None);
  check Alcotest.bool "r-abcast bound" true (Stack.bound stack Service.r_abcast <> None)

let test_builder_no_layer_stack_shape () =
  let mw = mw_with ~layer:None () in
  let names = module_names mw 0 in
  check Alcotest.bool "no repl module" false (List.mem "repl.abcast" names);
  check Alcotest.bool "abcast present" true (List.mem "abcast.ct" names)

let test_builder_initial_variant_respected () =
  let mw = mw_with ~initial:Core.Variants.sequencer () in
  let stack = System.stack (MW.system mw) 0 in
  (match Stack.bound stack Service.abcast with
  | Some m -> check Alcotest.string "sequencer bound" "abcast.seq" (Stack.module_name m)
  | None -> fail "abcast unbound");
  (* The sequencer variant needs no consensus: the builder must not have
     created one. *)
  check Alcotest.bool "no consensus module" false
    (List.mem "consensus.ct" (module_names mw 0))

let test_builder_gm () =
  let mw = mw_with ~with_gm:true () in
  let stack = System.stack (MW.system mw) 0 in
  check Alcotest.bool "gm bound" true (Stack.bound stack Service.gm <> None)

(* ------------------------------------------------------------------ *)
(* Repl: Algorithm 1                                                  *)
(* ------------------------------------------------------------------ *)

let test_repl_initial_generation () =
  let mw = default_mw () in
  check Alcotest.int "gen 0" 0 (Core.Repl.generation (System.stack (MW.system mw) 0));
  check Alcotest.int "no undelivered" 0
    (Core.Repl.undelivered_count (System.stack (MW.system mw) 0))

let test_repl_switch_updates_generation () =
  let mw = default_mw () in
  ignore (delivery_logs mw);
  let changes = ref [] in
  MW.on_protocol_change mw ~node:0 (fun ~generation ~protocol ->
      changes := (generation, protocol) :: !changes);
  MW.change_protocol mw ~node:1 Core.Variants.sequencer;
  MW.run_for mw 3_000.0;
  check Alcotest.int "generation" 1 (Core.Repl.generation (System.stack (MW.system mw) 0));
  check Alcotest.bool "notified" true (List.mem (1, "abcast.seq") !changes);
  (* Every stack must now have the sequencer bound. *)
  for node = 0 to 2 do
    match Stack.bound (System.stack (MW.system mw) node) Service.abcast with
    | Some m -> check Alcotest.string "new protocol bound" "abcast.seq" (Stack.module_name m)
    | None -> fail "abcast unbound after switch"
  done

let test_repl_old_module_stays_in_stack () =
  (* §2: unbinding does not remove the module. *)
  let mw = default_mw () in
  ignore (delivery_logs mw);
  MW.change_protocol mw ~node:0 Core.Variants.sequencer;
  MW.run_for mw 3_000.0;
  let names = module_names mw 1 in
  check Alcotest.bool "old ct module still present" true (List.mem "abcast.ct" names);
  check Alcotest.bool "new seq module present" true (List.mem "abcast.seq" names)

let test_repl_switch_under_load () =
  let mw = mw_with ~seed:3 () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 29 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 5.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:75.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:30 logs;
  check Alcotest.int "all switched" 1
    (Core.Repl.generation (System.stack (MW.system mw) 2))

let test_repl_switch_matrix () =
  (* Every ordered pair of distinct variants, under load. *)
  List.iter
    (fun from_p ->
      List.iter
        (fun to_p ->
          if from_p <> to_p then begin
            let mw = mw_with ~seed:7 ~initial:from_p () in
            let logs = delivery_logs mw in
            let clock = System.clock (MW.system mw) in
            for i = 0 to 17 do
              ignore
                (Clock.defer clock ~delay:(float_of_int i *. 8.0) (fun () ->
                     ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
            done;
            ignore
              (Clock.defer clock ~delay:70.0 (fun () ->
                   MW.change_protocol mw ~node:1 to_p));
            MW.run_until_quiescent ~limit:30_000.0 mw;
            assert_consistent ~expect_count:18 logs
          end)
        Core.Variants.all)
    Core.Variants.all

let test_repl_double_switch () =
  let mw = default_mw () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 19 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:50.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  ignore
    (Clock.defer clock ~delay:120.0 (fun () ->
         MW.change_protocol mw ~node:2 Core.Variants.token));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:20 logs;
  check Alcotest.int "two generations" 2
    (Core.Repl.generation (System.stack (MW.system mw) 1))

let test_repl_concurrent_switch_requests () =
  (* Two nodes request a change at the same instant. Both change
     messages carry generation 0 and are ordered in the generation-0
     stream; the first to be delivered switches every stack, the second
     is stale and discarded everywhere (the line-10 generation check —
     see Dpu_model.Algo1 for why applying it would break agreement).
     The requester of the dropped change would simply re-issue it. *)
  let mw = default_mw () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 11 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:55.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.sequencer;
         MW.change_protocol mw ~node:1 Core.Variants.token));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:12 logs;
  let gens =
    List.init 3 (fun node -> Core.Repl.generation (System.stack (MW.system mw) node))
  in
  check (Alcotest.list Alcotest.int) "one switch applied, one dropped" [ 1; 1; 1 ] gens;
  (* And the same final protocol everywhere. *)
  let bound =
    List.init 3 (fun node ->
        match Stack.bound (System.stack (MW.system mw) node) Service.abcast with
        | Some m -> Stack.module_name m
        | None -> "?")
  in
  match bound with
  | b0 :: rest -> List.iter (fun b -> check Alcotest.string "same protocol" b0 b) rest
  | [] -> fail "no stacks"

let test_repl_overlapping_change_dropped () =
  (* Regression for the model checker's finding at the simulation
     level: a second change issued while the first is still in flight
     (both tagged generation 0) must be discarded, not applied. *)
  let mw = default_mw () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 11 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 6.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:30.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  (* 2 ms later: nobody has switched yet, so this request is also
     tagged generation 0 and will be ordered behind the first. *)
  ignore
    (Clock.defer clock ~delay:32.0 (fun () ->
         MW.change_protocol mw ~node:1 Core.Variants.token));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:12 logs;
  List.iter
    (fun node ->
      let stack = System.stack (MW.system mw) node in
      check Alcotest.int "exactly one switch" 1 (Core.Repl.generation stack);
      (* The stale change left a trace. *)
      ignore stack)
    [ 0; 1; 2 ];
  let stale =
    Trace.filter (System.trace (MW.system mw)) (fun e ->
        match e.Trace.kind with
        | Trace.App ("repl.stale-change", _) -> true
        | _ -> false)
  in
  check Alcotest.int "stale change discarded at every stack" 3 (List.length stale)

let test_repl_switch_with_loss () =
  let mw = mw_with ~seed:11 ~loss:0.15 () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 19 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:95.0 (fun () ->
         MW.change_protocol mw ~node:2 Core.Variants.ct));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_consistent ~expect_count:20 logs

let test_repl_switch_with_minority_crash () =
  let mw = mw_with ~n:5 ~seed:13 () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  (* Only survivors broadcast, so every message must reach all correct
     stacks. *)
  for i = 0 to 19 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))))
  done;
  ignore (Clock.defer clock ~delay:60.0 (fun () -> MW.crash mw 4));
  ignore
    (Clock.defer clock ~delay:100.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.ct));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_consistent ~skip:[ 4 ] ~expect_count:20 logs;
  List.iter
    (fun node ->
      check Alcotest.int "survivors switched" 1
        (Core.Repl.generation (System.stack (MW.system mw) node)))
    [ 0; 1; 2; 3 ]

let test_repl_seq_to_ct_builds_substrate () =
  (* Algorithm 1 lines 22-28: the new protocol requires services
     (consensus, rbcast) that are not in the stack; create_module must
     build and bind providers recursively. *)
  let mw = mw_with ~initial:Core.Variants.sequencer () in
  ignore (delivery_logs mw);
  check Alcotest.bool "no consensus initially" false
    (List.mem "consensus.ct" (module_names mw 0));
  MW.change_protocol mw ~node:0 Core.Variants.ct;
  MW.run_for mw 3_000.0;
  List.iter
    (fun node ->
      let names = module_names mw node in
      check Alcotest.bool "consensus built" true (List.mem "consensus.ct" names);
      check Alcotest.bool "rbcast built" true (List.mem "rbcast" names);
      let stack = System.stack (MW.system mw) node in
      check Alcotest.bool "consensus bound" true
        (Stack.bound stack Service.consensus <> None))
    [ 0; 1; 2 ]

let test_repl_self_replacement () =
  (* The paper's §6 experiment: replace CT by CT, exercising all steps. *)
  let mw = default_mw () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 9 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:45.0 (fun () -> MW.change_protocol mw ~node:0 Core.Variants.ct));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  assert_consistent ~expect_count:10 logs;
  (* Two distinct ct module instances per stack now. *)
  let ct_instances =
    List.filter (fun name -> name = "abcast.ct") (module_names mw 1)
  in
  check Alcotest.int "old and new instance" 2 (List.length ct_instances)

let test_repl_undelivered_reissued () =
  (* Cut the network right after a broadcast so it is in flight at
     switch time, then heal: the message must still be delivered
     (through the new protocol, by the line 15-16 reissue). *)
  let mw = mw_with ~seed:17 () in
  let logs = delivery_logs mw in
  let net = System.net (MW.system mw) in
  let clock = System.clock (MW.system mw) in
  ignore (MW.broadcast mw ~node:0 "pre");
  MW.run_for mw 1_000.0;
  (* Block node 0's traffic, broadcast from it, and switch from node 1.
     Node 0's message cannot be ordered by the old protocol at the
     switch point; when the partition heals, node 0 reissues it through
     the new one. *)
  Dpu_net.Datagram.partition net [ [ 0 ]; [ 1; 2 ] ];
  ignore (MW.broadcast mw ~node:0 "inflight");
  ignore
    (Clock.defer clock ~delay:200.0 (fun () ->
         MW.change_protocol mw ~node:1 Core.Variants.ct));
  MW.run_for mw 3_000.0;
  Dpu_net.Datagram.heal net;
  MW.run_until_quiescent ~limit:90_000.0 mw;
  assert_consistent ~expect_count:2 logs

let test_repl_weak_wf_and_operationability () =
  let mw = default_mw () in
  ignore (delivery_logs mw);
  let clock = System.clock (MW.system mw) in
  for i = 0 to 9 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:50.0 (fun () ->
         MW.change_protocol mw ~node:0 Core.Variants.sequencer));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  let trace = System.trace (MW.system mw) in
  let reports =
    Dpu_props.Stack_props.check_generic trace
      ~protocols:[ "abcast.ct"; "abcast.seq"; "repl.abcast" ]
      ~nodes:[ 0; 1; 2 ]
  in
  List.iter
    (fun r ->
      check Alcotest.bool
        (Format.asprintf "%a" Dpu_props.Report.pp r)
        true r.Dpu_props.Report.ok)
    reports

let test_repl_abcast_properties_across_switch () =
  (* The mechanised version of §5.2.2: the four ABcast properties hold
     across a replacement, several seeds. *)
  List.iter
    (fun seed ->
      let mw = mw_with ~seed () in
      ignore (delivery_logs mw);
      let clock = System.clock (MW.system mw) in
      for i = 0 to 19 do
        ignore
          (Clock.defer clock ~delay:(float_of_int i *. 7.0) (fun () ->
               ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
      done;
      ignore
        (Clock.defer clock ~delay:66.0 (fun () ->
             MW.change_protocol mw ~node:(seed mod 3) Core.Variants.token));
      MW.run_until_quiescent ~limit:60_000.0 mw;
      let reports =
        Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct:[ 0; 1; 2 ]
      in
      List.iter
        (fun r ->
          check Alcotest.bool
            (Printf.sprintf "seed %d: %s" seed r.Dpu_props.Report.property)
            true r.Dpu_props.Report.ok)
        reports)
    [ 1; 2; 3; 4; 5 ]

let prop_repl_switch_any_time =
  QCheck.Test.make ~name:"switch at a random moment preserves total order" ~count:12
    QCheck.(pair (int_range 0 150) (int_range 1 500))
    (fun (switch_at, seed) ->
      let mw = mw_with ~seed () in
      let logs = delivery_logs mw in
      let clock = System.clock (MW.system mw) in
      for i = 0 to 14 do
        ignore
          (Clock.defer clock ~delay:(float_of_int i *. 9.0) (fun () ->
               ignore (MW.broadcast mw ~node:(i mod 3) (string_of_int i))))
      done;
      ignore
        (Clock.defer clock ~delay:(float_of_int switch_at) (fun () ->
             MW.change_protocol mw ~node:(seed mod 3) Core.Variants.sequencer));
      MW.run_until_quiescent ~limit:60_000.0 mw;
      match sequences logs with
      | first :: rest ->
        List.length first = 15 && List.for_all (fun s -> s = first) rest
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* Monitor + GM through the layer                                     *)
(* ------------------------------------------------------------------ *)

let test_monitor_records_switches () =
  let mw = default_mw () in
  ignore (delivery_logs mw);
  MW.change_protocol mw ~node:0 Core.Variants.sequencer;
  MW.run_for mw 3_000.0;
  match MW.switch_window mw ~generation:1 with
  | Some (lo, hi) -> check Alcotest.bool "ordered window" true (lo <= hi)
  | None -> fail "no switch recorded"

let test_gm_keeps_working_across_switch () =
  (* GM depends on the replaced service; the paper requires it to keep
     providing service, unaware of the replacement. *)
  let mw = mw_with ~with_gm:true () in
  ignore (delivery_logs mw);
  let views = ref [] in
  MW.on_view mw ~node:2 (fun v -> views := v.P.Gm.members :: !views);
  MW.run_for mw 500.0;
  MW.leave mw ~node:0 1;
  MW.run_for mw 2_000.0;
  MW.change_protocol mw ~node:0 Core.Variants.sequencer;
  MW.run_for mw 2_000.0;
  MW.join mw ~node:2 1;
  MW.run_until_quiescent ~limit:30_000.0 mw;
  let seq = List.rev !views in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "views across switch"
    [ [ 0; 1; 2 ]; [ 0; 2 ]; [ 0; 1; 2 ] ]
    seq

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "variants",
        [ tc "catalogue" test_variants_catalogue; tc "registered" test_variants_registered ] );
      ( "collector",
        [
          tc "latency math" test_collector_latency_math;
          tc "undelivered" test_collector_undelivered;
          tc "switch window" test_collector_switch_window;
          tc "deliver order" test_collector_deliver_order;
        ] );
      ( "middleware",
        [
          tc "broadcast/deliver" test_middleware_broadcast_deliver;
          tc "unique ids" test_middleware_ids_unique;
          tc "msg size" test_middleware_msg_size;
          tc "no layer: change raises" test_middleware_no_layer_change_raises;
          tc "no layer: broadcasts" test_middleware_no_layer_still_broadcasts;
          tc "crash" test_middleware_crash;
          tc "latency series" test_middleware_latency_series;
        ] );
      ( "builder",
        [
          tc "layered shape" test_builder_layered_stack_shape;
          tc "no-layer shape" test_builder_no_layer_stack_shape;
          tc "initial variant" test_builder_initial_variant_respected;
          tc "gm" test_builder_gm;
        ] );
      ( "repl",
        [
          tc "initial generation" test_repl_initial_generation;
          tc "switch updates generation" test_repl_switch_updates_generation;
          tc "old module stays" test_repl_old_module_stays_in_stack;
          tc "switch under load" test_repl_switch_under_load;
          tc "switch matrix (all pairs)" test_repl_switch_matrix;
          tc "double switch" test_repl_double_switch;
          tc "concurrent requests" test_repl_concurrent_switch_requests;
          tc "overlapping change dropped" test_repl_overlapping_change_dropped;
          tc "switch with loss" test_repl_switch_with_loss;
          tc "switch with minority crash" test_repl_switch_with_minority_crash;
          tc "seq->ct builds substrate" test_repl_seq_to_ct_builds_substrate;
          tc "self replacement (paper §6)" test_repl_self_replacement;
          tc "undelivered reissued" test_repl_undelivered_reissued;
          tc "weak WF + operationability" test_repl_weak_wf_and_operationability;
          tc "abcast properties across switch" test_repl_abcast_properties_across_switch;
        ] );
      ( "monitor+gm",
        [
          tc "switch window recorded" test_monitor_records_switches;
          tc "gm across switch" test_gm_keeps_working_across_switch;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_repl_switch_any_time ] );
    ]
