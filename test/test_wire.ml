(* Wire-format coverage: every shipped payload has a printer (no
   "<payload>" fallback anywhere) and a codec that round-trips;
   truncated, trailing-garbage and foreign frames are rejected. *)

open Dpu_kernel
module P = Dpu_protocols
module Ci = P.Consensus_iface

let check = Alcotest.check

let has_sub ~sub s =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let iid = { Ci.epoch = 1; k = 4 }

let mid = { Msg.origin = 1; seq = 42 }

let msg = Msg.make ~origin:1 ~seq:42 ~size:64 "hello"

let app = Dpu_core.App_msg.App msg

let item = { P.Abcast_ct.id = mid; size = 64; payload = app }

let order = { P.Abcast_token.gseq = 9; origin = 2; size = 64; payload = app }

(* One sample per constructor of every shipped payload type. *)
let samples : (string * Payload.t) list =
  [
    ("unit", Payload.Unit);
    ("app", app);
    ("udp.send", P.Udp.Send { dst = 2; size = 77; payload = app });
    ("udp.recv", P.Udp.Recv { src = 1; payload = Payload.Unit });
    ("rbcast.bcast", P.Rbcast.Bcast { size = 77; payload = app });
    ("rbcast.deliver", P.Rbcast.Deliver { origin = 3; payload = app });
    ("rbcast.wire", P.Rbcast.Wire { origin = 3; seq = 7; size = 77; payload = app });
    ("rp2p.send", P.Rp2p.Send { dst = 0; size = 12; payload = app });
    ("rp2p.recv", P.Rp2p.Recv { src = 5; payload = app });
    ( "rp2p.data",
      P.Rp2p.Wire_data { src = 5; seq = 8; attempt = 2; size = 12; payload = app } );
    ("rp2p.ack", P.Rp2p.Wire_ack { src = 5; seq = 8; attempt = 2 });
    ("fd.suspect", P.Fd.Suspect 3);
    ("fd.restore", P.Fd.Restore 1);
    ("fd.heartbeat", P.Fd.Wire_heartbeat { src = 2 });
    ("consensus.propose", Ci.Propose { iid; value = app; weight = 2 });
    ("consensus.decide", Ci.Decide { iid; value = app });
    ("consensus.no-value", Ci.No_value);
    ( "ct.estimate",
      P.Consensus_ct.W_estimate
        { iid; round = 3; from = 1; value = app; ts = 2; weight = 1 } );
    ("ct.propose", P.Consensus_ct.W_propose { iid; round = 3; value = app; weight = 1 });
    ("ct.ack", P.Consensus_ct.W_ack { iid; round = 3; from = 1 });
    ("ct.nack", P.Consensus_ct.W_nack { iid; round = 3; from = 1 });
    ("ct.decide", P.Consensus_ct.W_decide { iid; value = app });
    ("ct.wakeup", P.Consensus_ct.W_wakeup { iid });
    ("paxos.wakeup", P.Consensus_paxos.P_wakeup { iid });
    ("paxos.offer", P.Consensus_paxos.P_offer { iid; value = app; weight = 1; from = 0 });
    ("paxos.prepare", P.Consensus_paxos.P_prepare { iid; ballot = 12; from = 0 });
    ( "paxos.promise-none",
      P.Consensus_paxos.P_promise { iid; ballot = 12; accepted = None; from = 0 } );
    ( "paxos.promise-some",
      P.Consensus_paxos.P_promise
        { iid; ballot = 12; accepted = Some (9, app, 2); from = 0 } );
    ( "paxos.accept",
      P.Consensus_paxos.P_accept { iid; ballot = 12; value = app; weight = 2; from = 0 } );
    ("paxos.accepted", P.Consensus_paxos.P_accepted { iid; ballot = 12; from = 3 });
    ("paxos.decide", P.Consensus_paxos.P_decide { iid; value = app; weight = 2 });
    ("abcast.broadcast", P.Abcast_iface.Broadcast { size = 77; payload = app });
    ("abcast.deliver", P.Abcast_iface.Deliver { origin = 3; payload = app });
    ("ct-abcast.batch", P.Abcast_ct.Batch [ item; item ]);
    ("ct-abcast.batch-empty", P.Abcast_ct.Batch []);
    ("ct-abcast.disseminate", P.Abcast_ct.Disseminate { epoch = 2; item });
    ( "seq-abcast.req",
      P.Abcast_seq.Wire_req { epoch = 2; id = mid; size = 77; payload = app } );
    ( "seq-abcast.order",
      P.Abcast_seq.Wire_order
        { epoch = 2; gseq = 4; origin = 1; size = 77; payload = app } );
    ( "seq-abcast.order-batch",
      P.Abcast_seq.Wire_order_batch
        { epoch = 2; first_gseq = 4; orders = [ (1, 77, app); (0, 12, app) ] } );
    ("token.order", P.Abcast_token.Wire_order { epoch = 2; order });
    ("token.token", P.Abcast_token.Wire_token { epoch = 2; era = 1; next_gseq = 10 });
    ("token.repair-req", P.Abcast_token.Wire_repair_req { epoch = 2; gseq = 4; from = 1 });
    ("token.repair", P.Abcast_token.Wire_repair { epoch = 2; order });
    ("token.hello", P.Abcast_token.Wire_hello { epoch = 2; from = 1 });
    ("causal.bcast", P.Causal_bcast.Bcast { size = 77; payload = app });
    ("causal.deliver", P.Causal_bcast.Deliver { origin = 3; payload = app });
    ( "causal.stamped",
      P.Causal_bcast.Stamped { stamp = [ 0; 2; 1 ]; origin = 1; payload = app } );
    ("fifo.bcast", P.Fifo_bcast.Bcast { size = 77; payload = app });
    ("fifo.deliver", P.Fifo_bcast.Deliver { origin = 3; payload = app });
    ("fifo.tagged", P.Fifo_bcast.Tagged { fseq = 6; payload = app });
    ("gm.join", P.Gm.Join 2);
    ("gm.leave", P.Gm.Leave 0);
    ("gm.view", P.Gm.View { P.Gm.id = 3; members = [ 0; 1; 2 ] });
    ("gm.change-join", P.Gm.Gm_change { op = P.Gm.Op_join; target = 2 });
    ("gm.change-leave", P.Gm.Gm_change { op = P.Gm.Op_leave; target = 2 });
    ("gm.change-exclude", P.Gm.Gm_change { op = P.Gm.Op_exclude; target = 2 });
    ("r-abcast.broadcast", P.Repl_iface.R_broadcast { size = 77; payload = app });
    ("r-abcast.deliver", P.Repl_iface.R_deliver { origin = 3; payload = app });
    ("r-abcast.change", P.Repl_iface.Change_abcast "abcast.seq");
    ( "r-abcast.changed",
      P.Repl_iface.Protocol_changed { generation = 1; protocol = "abcast.seq" } );
    ("repl.data", Dpu_core.Repl.A_data { sn = 7; id = mid; size = 77; payload = app });
    ("repl.new", Dpu_core.Repl.A_new { sn = 7; protocol = "abcast.token" });
    ("repl-consensus.change", Dpu_core.Repl_consensus.Change_consensus "consensus.paxos");
    ( "repl-consensus.changed",
      Dpu_core.Repl_consensus.Consensus_changed
        { generation = 1; protocol = "consensus.paxos" } );
    ( "repl-consensus.wrapped-none",
      Dpu_core.Repl_consensus.Wrapped { value = app; switch = None } );
    ( "repl-consensus.wrapped-some",
      Dpu_core.Repl_consensus.Wrapped { value = app; switch = Some "consensus.paxos" } );
    ( "repl-consensus.request",
      Dpu_core.Repl_consensus.Wire_request { protocol = "consensus.paxos" } );
    ( "maestro.data",
      Dpu_baselines.Maestro.M_data { gen = 1; id = mid; size = 77; payload = app } );
    ("maestro.switch", Dpu_baselines.Maestro.M_switch { gen = 1; protocol = "abcast.seq" });
    ( "graceful.data",
      Dpu_baselines.Graceful.G_data { gen = 1; id = mid; size = 77; payload = app } );
    ("graceful.point", Dpu_baselines.Graceful.G_point { gen = 1; protocol = "abcast.seq" });
    ( "graceful.prepare",
      Dpu_baselines.Graceful.C_prepare { gen = 1; protocol = "abcast.seq"; initiator = 0 }
    );
    ("graceful.prepared", Dpu_baselines.Graceful.C_prepared { gen = 1; from = 2; ok = true });
    ("graceful.activated", Dpu_baselines.Graceful.C_activated { gen = 1; from = 2 });
  ]

(* ------------------------------------------------------------------ *)
(* Satellite: printers everywhere, never the "<payload>" fallback     *)
(* ------------------------------------------------------------------ *)

let test_printers_no_fallback () =
  List.iter
    (fun (label, p) ->
      let s = Payload.to_string p in
      check Alcotest.bool (label ^ " prints without fallback") false
        (has_sub ~sub:"<payload>" s);
      check Alcotest.bool (label ^ " prints something") true (String.length s > 0))
    samples

(* ------------------------------------------------------------------ *)
(* Round-trips                                                        *)
(* ------------------------------------------------------------------ *)

let frame_tag frame =
  let taglen = Char.code frame.[0] in
  String.sub frame 1 taglen

let test_roundtrip_every_sample () =
  List.iter
    (fun (label, p) ->
      match Payload.encode p with
      | None -> Alcotest.failf "%s: no codec" label
      | Some frame ->
        let q = Payload.decode frame in
        check Alcotest.string (label ^ " re-encodes identically") frame
          (Payload.encode_exn q);
        check Alcotest.string (label ^ " prints identically") (Payload.to_string p)
          (Payload.to_string q))
    samples

let test_every_registered_codec_exercised () =
  let covered =
    List.sort_uniq String.compare
      (List.map (fun (_, p) -> frame_tag (Payload.encode_exn p)) samples)
  in
  check
    Alcotest.(list string)
    "samples cover every registered tag" (Payload.registered_tags ()) covered

(* ------------------------------------------------------------------ *)
(* Rejection: truncation, trailing garbage, unknown frames            *)
(* ------------------------------------------------------------------ *)

let expect_reject label s =
  match Payload.decode s with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: bogus frame decoded" label

let test_truncated_frames_rejected () =
  List.iter
    (fun (label, p) ->
      let frame = Payload.encode_exn p in
      for cut = 0 to String.length frame - 1 do
        expect_reject
          (Printf.sprintf "%s cut to %d bytes" label cut)
          (String.sub frame 0 cut)
      done)
    samples

let test_garbage_frames_rejected () =
  List.iter
    (fun (label, p) ->
      expect_reject (label ^ " + trailing byte") (Payload.encode_exn p ^ "\x00"))
    samples;
  expect_reject "empty" "";
  expect_reject "unknown tag" "\x03zzz";
  expect_reject "taglen beyond end" "\xff\xff\xff";
  expect_reject "all zeros" (String.make 16 '\x00')

(* ------------------------------------------------------------------ *)
(* Envelope                                                           *)
(* ------------------------------------------------------------------ *)

let test_envelope_roundtrip () =
  List.iter
    (fun (label, p) ->
      let sealed = Payload.Envelope.seal ~src:2 ~service:"dpu" ~generation:7 p in
      let info, q = Payload.Envelope.open_ sealed in
      check Alcotest.int (label ^ " src") 2 info.Payload.Envelope.src;
      check Alcotest.string (label ^ " service") "dpu" info.Payload.Envelope.service;
      check Alcotest.int (label ^ " generation") 7 info.Payload.Envelope.generation;
      check Alcotest.string (label ^ " payload survives")
        (Payload.encode_exn p) (Payload.encode_exn q))
    samples

let expect_reject_envelope label s =
  match Payload.Envelope.open_ s with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: bogus envelope opened" label

let test_envelope_rejection () =
  let sealed = Payload.Envelope.seal ~src:2 ~service:"dpu" ~generation:7 app in
  for cut = 0 to String.length sealed - 1 do
    expect_reject_envelope
      (Printf.sprintf "cut to %d bytes" cut)
      (String.sub sealed 0 cut)
  done;
  expect_reject_envelope "trailing garbage" (sealed ^ "\x00");
  let corrupt i c = String.mapi (fun j x -> if i = j then c else x) sealed in
  expect_reject_envelope "bad magic" (corrupt 0 'X');
  expect_reject_envelope "bad version" (corrupt 4 '\xfe')

(* ------------------------------------------------------------------ *)
(* Batch envelopes (version 2)                                        *)
(* ------------------------------------------------------------------ *)

let open_string s = Payload.Envelope.open_slice (Bytes.of_string s)

let test_batch_roundtrip_every_codec () =
  (* Every registered payload, in ONE batch frame: order and bytes of
     each element must survive untouched. *)
  let payloads = List.map snd samples in
  let sealed = Payload.Envelope.seal_batch ~src:2 ~service:"dpu" ~generation:7 payloads in
  let info, out = open_string sealed in
  check Alcotest.int "src" 2 info.Payload.Envelope.src;
  check Alcotest.string "service" "dpu" info.Payload.Envelope.service;
  check Alcotest.int "generation" 7 info.Payload.Envelope.generation;
  check Alcotest.int "count" (List.length payloads) (List.length out);
  List.iter2
    (fun (label, p) q ->
      check Alcotest.string (label ^ " survives the batch")
        (Payload.encode_exn p) (Payload.encode_exn q))
    samples out

let expect_reject_batch label s =
  match open_string s with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: bogus batch opened" label

let test_batch_truncation_rejected () =
  (* Atomicity: a datagram cut ANYWHERE — even on an element boundary,
     where a prefix of the batch would parse — is rejected whole. *)
  let sealed =
    Payload.Envelope.seal_batch ~src:0 ~service:"dpu" ~generation:1
      [ app; Payload.Unit; app ]
  in
  for cut = 0 to String.length sealed - 1 do
    expect_reject_batch
      (Printf.sprintf "cut to %d bytes" cut)
      (String.sub sealed 0 cut)
  done;
  expect_reject_batch "trailing garbage" (sealed ^ "\x00")

let test_batch_garbage_rejected () =
  let sealed =
    Payload.Envelope.seal_batch ~src:0 ~service:"dpu" ~generation:1 [ app; app ]
  in
  let corrupt i c = String.mapi (fun j x -> if i = j then c else x) sealed in
  expect_reject_batch "bad magic" (corrupt 0 'X');
  expect_reject_batch "bad version" (corrupt 4 '\xfe');
  (* The count is the first field after the header: zero it out. *)
  let hdr = Payload.Envelope.header_overhead ~service:"dpu" in
  let zero_count =
    String.mapi (fun j x -> if j >= hdr && j < hdr + 8 then '\x00' else x) sealed
  in
  expect_reject_batch "zero count" zero_count;
  expect_reject_batch "all zeros" (String.make 32 '\x00');
  (match Payload.Envelope.seal_batch ~src:0 ~service:"dpu" ~generation:1 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty batch sealed")

let test_single_message_batch_vs_legacy () =
  (* A batch of one and a legacy version-1 frame both decode to the
     same payload through [open_slice]; and version-1 frames produced
     by the unbatched path keep working unchanged. *)
  List.iter
    (fun (label, p) ->
      let legacy = Payload.Envelope.seal ~src:1 ~service:"dpu" ~generation:3 p in
      let batch1 = Payload.Envelope.seal_batch ~src:1 ~service:"dpu" ~generation:3 [ p ] in
      let info_l, out_l = open_string legacy in
      let info_b, out_b = open_string batch1 in
      check Alcotest.int (label ^ " same src") info_l.Payload.Envelope.src
        info_b.Payload.Envelope.src;
      check Alcotest.int (label ^ " one payload each") 1 (List.length out_l);
      check Alcotest.int (label ^ " one payload in batch") 1 (List.length out_b);
      check Alcotest.string (label ^ " same payload")
        (Payload.encode_exn (List.hd out_l))
        (Payload.encode_exn (List.hd out_b));
      (* The single-payload opener accepts a batch of one... *)
      let _, q = Payload.Envelope.open_ batch1 in
      check Alcotest.string (label ^ " open_ accepts singleton batch")
        (Payload.encode_exn p) (Payload.encode_exn q))
    samples;
  (* ...but never a real batch: flattening would silently drop messages. *)
  let multi = Payload.Envelope.seal_batch ~src:1 ~service:"dpu" ~generation:3 [ app; app ] in
  match Payload.Envelope.open_ multi with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.fail "open_ flattened a multi-payload batch"

let test_decode_slice_offsets () =
  (* The zero-copy reader honours [off]/[len] and rejects frames that
     spill past the slice. *)
  let frame = Payload.encode_exn app in
  let buf = Bytes.of_string ("garbage" ^ frame ^ "garbage") in
  let q = Payload.decode_slice buf ~off:7 ~len:(String.length frame) in
  check Alcotest.string "decodes at offset" (Payload.encode_exn app)
    (Payload.encode_exn q);
  (match Payload.decode_slice buf ~off:7 ~len:(String.length frame - 1) with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.fail "short slice decoded");
  match Payload.decode_slice buf ~off:7 ~len:(String.length frame + 1) with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.fail "slice with trailing garbage decoded"

(* ------------------------------------------------------------------ *)
(* Codec registry hygiene                                             *)
(* ------------------------------------------------------------------ *)

let test_registry_hygiene () =
  (match
     Payload.register_codec ~tag:"unit"
       ~encode:(fun _ -> None)
       ~decode:(fun _ -> Payload.Unit)
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate tag accepted");
  (match
     Payload.register_codec ~tag:""
       ~encode:(fun _ -> None)
       ~decode:(fun _ -> Payload.Unit)
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty tag accepted");
  check Alcotest.bool "has_codec Unit" true (Payload.has_codec Payload.Unit)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wire"
    [
      ("printers", [ tc "no payload falls back to <payload>" test_printers_no_fallback ]);
      ( "codecs",
        [
          tc "every sample round-trips" test_roundtrip_every_sample;
          tc "every registered codec exercised" test_every_registered_codec_exercised;
          tc "registry hygiene" test_registry_hygiene;
        ] );
      ( "rejection",
        [
          tc "truncated frames" test_truncated_frames_rejected;
          tc "garbage frames" test_garbage_frames_rejected;
        ] );
      ( "envelope",
        [
          tc "round-trip" test_envelope_roundtrip;
          tc "rejection" test_envelope_rejection;
        ] );
      ( "batch",
        [
          tc "every codec round-trips inside one batch" test_batch_roundtrip_every_codec;
          tc "truncation rejected at every cut" test_batch_truncation_rejected;
          tc "garbage rejected" test_batch_garbage_rejected;
          tc "batch of one == legacy frame" test_single_message_batch_vs_legacy;
          tc "decode_slice honours offsets" test_decode_slice_offsets;
        ] );
    ]
