(* Wire-format coverage: every shipped payload has a printer (no
   "<payload>" fallback anywhere) and a codec that round-trips;
   truncated, trailing-garbage and foreign frames are rejected. *)

open Dpu_kernel
module P = Dpu_protocols
module Ci = P.Consensus_iface

let check = Alcotest.check

let has_sub ~sub s =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let iid = { Ci.epoch = 1; k = 4 }

let mid = { Msg.origin = 1; seq = 42 }

let msg = Msg.make ~origin:1 ~seq:42 ~size:64 "hello"

let app = Dpu_core.App_msg.App msg

let item = { P.Abcast_ct.id = mid; size = 64; payload = app }

let order = { P.Abcast_token.gseq = 9; origin = 2; size = 64; payload = app }

(* One sample per constructor of every shipped payload type. *)
let samples : (string * Payload.t) list =
  [
    ("unit", Payload.Unit);
    ("app", app);
    ("udp.send", P.Udp.Send { dst = 2; size = 77; payload = app });
    ("udp.recv", P.Udp.Recv { src = 1; payload = Payload.Unit });
    ("rbcast.bcast", P.Rbcast.Bcast { size = 77; payload = app });
    ("rbcast.deliver", P.Rbcast.Deliver { origin = 3; payload = app });
    ("rbcast.wire", P.Rbcast.Wire { origin = 3; seq = 7; size = 77; payload = app });
    ("rp2p.send", P.Rp2p.Send { dst = 0; size = 12; payload = app });
    ("rp2p.recv", P.Rp2p.Recv { src = 5; payload = app });
    ( "rp2p.data",
      P.Rp2p.Wire_data { src = 5; seq = 8; attempt = 2; size = 12; payload = app } );
    ("rp2p.ack", P.Rp2p.Wire_ack { src = 5; seq = 8; attempt = 2 });
    ("fd.suspect", P.Fd.Suspect 3);
    ("fd.restore", P.Fd.Restore 1);
    ("fd.heartbeat", P.Fd.Wire_heartbeat { src = 2 });
    ("consensus.propose", Ci.Propose { iid; value = app; weight = 2 });
    ("consensus.decide", Ci.Decide { iid; value = app });
    ("consensus.no-value", Ci.No_value);
    ( "ct.estimate",
      P.Consensus_ct.W_estimate
        { iid; round = 3; from = 1; value = app; ts = 2; weight = 1 } );
    ("ct.propose", P.Consensus_ct.W_propose { iid; round = 3; value = app; weight = 1 });
    ("ct.ack", P.Consensus_ct.W_ack { iid; round = 3; from = 1 });
    ("ct.nack", P.Consensus_ct.W_nack { iid; round = 3; from = 1 });
    ("ct.decide", P.Consensus_ct.W_decide { iid; value = app });
    ("ct.wakeup", P.Consensus_ct.W_wakeup { iid });
    ("paxos.wakeup", P.Consensus_paxos.P_wakeup { iid });
    ("paxos.offer", P.Consensus_paxos.P_offer { iid; value = app; weight = 1; from = 0 });
    ("paxos.prepare", P.Consensus_paxos.P_prepare { iid; ballot = 12; from = 0 });
    ( "paxos.promise-none",
      P.Consensus_paxos.P_promise { iid; ballot = 12; accepted = None; from = 0 } );
    ( "paxos.promise-some",
      P.Consensus_paxos.P_promise
        { iid; ballot = 12; accepted = Some (9, app, 2); from = 0 } );
    ( "paxos.accept",
      P.Consensus_paxos.P_accept { iid; ballot = 12; value = app; weight = 2; from = 0 } );
    ("paxos.accepted", P.Consensus_paxos.P_accepted { iid; ballot = 12; from = 3 });
    ("paxos.decide", P.Consensus_paxos.P_decide { iid; value = app; weight = 2 });
    ("abcast.broadcast", P.Abcast_iface.Broadcast { size = 77; payload = app });
    ("abcast.deliver", P.Abcast_iface.Deliver { origin = 3; payload = app });
    ("ct-abcast.batch", P.Abcast_ct.Batch [ item; item ]);
    ("ct-abcast.batch-empty", P.Abcast_ct.Batch []);
    ("ct-abcast.disseminate", P.Abcast_ct.Disseminate { epoch = 2; item });
    ( "seq-abcast.req",
      P.Abcast_seq.Wire_req { epoch = 2; id = mid; size = 77; payload = app } );
    ( "seq-abcast.order",
      P.Abcast_seq.Wire_order
        { epoch = 2; gseq = 4; origin = 1; size = 77; payload = app } );
    ("token.order", P.Abcast_token.Wire_order { epoch = 2; order });
    ("token.token", P.Abcast_token.Wire_token { epoch = 2; era = 1; next_gseq = 10 });
    ("token.repair-req", P.Abcast_token.Wire_repair_req { epoch = 2; gseq = 4; from = 1 });
    ("token.repair", P.Abcast_token.Wire_repair { epoch = 2; order });
    ("token.hello", P.Abcast_token.Wire_hello { epoch = 2; from = 1 });
    ("causal.bcast", P.Causal_bcast.Bcast { size = 77; payload = app });
    ("causal.deliver", P.Causal_bcast.Deliver { origin = 3; payload = app });
    ( "causal.stamped",
      P.Causal_bcast.Stamped { stamp = [ 0; 2; 1 ]; origin = 1; payload = app } );
    ("fifo.bcast", P.Fifo_bcast.Bcast { size = 77; payload = app });
    ("fifo.deliver", P.Fifo_bcast.Deliver { origin = 3; payload = app });
    ("fifo.tagged", P.Fifo_bcast.Tagged { fseq = 6; payload = app });
    ("gm.join", P.Gm.Join 2);
    ("gm.leave", P.Gm.Leave 0);
    ("gm.view", P.Gm.View { P.Gm.id = 3; members = [ 0; 1; 2 ] });
    ("gm.change-join", P.Gm.Gm_change { op = P.Gm.Op_join; target = 2 });
    ("gm.change-leave", P.Gm.Gm_change { op = P.Gm.Op_leave; target = 2 });
    ("gm.change-exclude", P.Gm.Gm_change { op = P.Gm.Op_exclude; target = 2 });
    ("r-abcast.broadcast", P.Repl_iface.R_broadcast { size = 77; payload = app });
    ("r-abcast.deliver", P.Repl_iface.R_deliver { origin = 3; payload = app });
    ("r-abcast.change", P.Repl_iface.Change_abcast "abcast.seq");
    ( "r-abcast.changed",
      P.Repl_iface.Protocol_changed { generation = 1; protocol = "abcast.seq" } );
    ("repl.data", Dpu_core.Repl.A_data { sn = 7; id = mid; size = 77; payload = app });
    ("repl.new", Dpu_core.Repl.A_new { sn = 7; protocol = "abcast.token" });
    ("repl-consensus.change", Dpu_core.Repl_consensus.Change_consensus "consensus.paxos");
    ( "repl-consensus.changed",
      Dpu_core.Repl_consensus.Consensus_changed
        { generation = 1; protocol = "consensus.paxos" } );
    ( "repl-consensus.wrapped-none",
      Dpu_core.Repl_consensus.Wrapped { value = app; switch = None } );
    ( "repl-consensus.wrapped-some",
      Dpu_core.Repl_consensus.Wrapped { value = app; switch = Some "consensus.paxos" } );
    ( "repl-consensus.request",
      Dpu_core.Repl_consensus.Wire_request { protocol = "consensus.paxos" } );
    ( "maestro.data",
      Dpu_baselines.Maestro.M_data { gen = 1; id = mid; size = 77; payload = app } );
    ("maestro.switch", Dpu_baselines.Maestro.M_switch { gen = 1; protocol = "abcast.seq" });
    ( "graceful.data",
      Dpu_baselines.Graceful.G_data { gen = 1; id = mid; size = 77; payload = app } );
    ("graceful.point", Dpu_baselines.Graceful.G_point { gen = 1; protocol = "abcast.seq" });
    ( "graceful.prepare",
      Dpu_baselines.Graceful.C_prepare { gen = 1; protocol = "abcast.seq"; initiator = 0 }
    );
    ("graceful.prepared", Dpu_baselines.Graceful.C_prepared { gen = 1; from = 2; ok = true });
    ("graceful.activated", Dpu_baselines.Graceful.C_activated { gen = 1; from = 2 });
  ]

(* ------------------------------------------------------------------ *)
(* Satellite: printers everywhere, never the "<payload>" fallback     *)
(* ------------------------------------------------------------------ *)

let test_printers_no_fallback () =
  List.iter
    (fun (label, p) ->
      let s = Payload.to_string p in
      check Alcotest.bool (label ^ " prints without fallback") false
        (has_sub ~sub:"<payload>" s);
      check Alcotest.bool (label ^ " prints something") true (String.length s > 0))
    samples

(* ------------------------------------------------------------------ *)
(* Round-trips                                                        *)
(* ------------------------------------------------------------------ *)

let frame_tag frame =
  let taglen = Char.code frame.[0] in
  String.sub frame 1 taglen

let test_roundtrip_every_sample () =
  List.iter
    (fun (label, p) ->
      match Payload.encode p with
      | None -> Alcotest.failf "%s: no codec" label
      | Some frame ->
        let q = Payload.decode frame in
        check Alcotest.string (label ^ " re-encodes identically") frame
          (Payload.encode_exn q);
        check Alcotest.string (label ^ " prints identically") (Payload.to_string p)
          (Payload.to_string q))
    samples

let test_every_registered_codec_exercised () =
  let covered =
    List.sort_uniq String.compare
      (List.map (fun (_, p) -> frame_tag (Payload.encode_exn p)) samples)
  in
  check
    Alcotest.(list string)
    "samples cover every registered tag" (Payload.registered_tags ()) covered

(* ------------------------------------------------------------------ *)
(* Rejection: truncation, trailing garbage, unknown frames            *)
(* ------------------------------------------------------------------ *)

let expect_reject label s =
  match Payload.decode s with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: bogus frame decoded" label

let test_truncated_frames_rejected () =
  List.iter
    (fun (label, p) ->
      let frame = Payload.encode_exn p in
      for cut = 0 to String.length frame - 1 do
        expect_reject
          (Printf.sprintf "%s cut to %d bytes" label cut)
          (String.sub frame 0 cut)
      done)
    samples

let test_garbage_frames_rejected () =
  List.iter
    (fun (label, p) ->
      expect_reject (label ^ " + trailing byte") (Payload.encode_exn p ^ "\x00"))
    samples;
  expect_reject "empty" "";
  expect_reject "unknown tag" "\x03zzz";
  expect_reject "taglen beyond end" "\xff\xff\xff";
  expect_reject "all zeros" (String.make 16 '\x00')

(* ------------------------------------------------------------------ *)
(* Envelope                                                           *)
(* ------------------------------------------------------------------ *)

let test_envelope_roundtrip () =
  List.iter
    (fun (label, p) ->
      let sealed = Payload.Envelope.seal ~src:2 ~service:"dpu" ~generation:7 p in
      let info, q = Payload.Envelope.open_ sealed in
      check Alcotest.int (label ^ " src") 2 info.Payload.Envelope.src;
      check Alcotest.string (label ^ " service") "dpu" info.Payload.Envelope.service;
      check Alcotest.int (label ^ " generation") 7 info.Payload.Envelope.generation;
      check Alcotest.string (label ^ " payload survives")
        (Payload.encode_exn p) (Payload.encode_exn q))
    samples

let expect_reject_envelope label s =
  match Payload.Envelope.open_ s with
  | exception Payload.Decode_error _ -> ()
  | _ -> Alcotest.failf "%s: bogus envelope opened" label

let test_envelope_rejection () =
  let sealed = Payload.Envelope.seal ~src:2 ~service:"dpu" ~generation:7 app in
  for cut = 0 to String.length sealed - 1 do
    expect_reject_envelope
      (Printf.sprintf "cut to %d bytes" cut)
      (String.sub sealed 0 cut)
  done;
  expect_reject_envelope "trailing garbage" (sealed ^ "\x00");
  let corrupt i c = String.mapi (fun j x -> if i = j then c else x) sealed in
  expect_reject_envelope "bad magic" (corrupt 0 'X');
  expect_reject_envelope "bad version" (corrupt 4 '\xfe')

(* ------------------------------------------------------------------ *)
(* Codec registry hygiene                                             *)
(* ------------------------------------------------------------------ *)

let test_registry_hygiene () =
  (match
     Payload.register_codec ~tag:"unit"
       ~encode:(fun _ -> None)
       ~decode:(fun _ -> Payload.Unit)
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate tag accepted");
  (match
     Payload.register_codec ~tag:""
       ~encode:(fun _ -> None)
       ~decode:(fun _ -> Payload.Unit)
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty tag accepted");
  check Alcotest.bool "has_codec Unit" true (Payload.has_codec Payload.Unit)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "wire"
    [
      ("printers", [ tc "no payload falls back to <payload>" test_printers_no_fallback ]);
      ( "codecs",
        [
          tc "every sample round-trips" test_roundtrip_every_sample;
          tc "every registered codec exercised" test_every_registered_codec_exercised;
          tc "registry hygiene" test_registry_hygiene;
        ] );
      ( "rejection",
        [
          tc "truncated frames" test_truncated_frames_rejected;
          tc "garbage frames" test_garbage_frames_rejected;
        ] );
      ( "envelope",
        [
          tc "round-trip" test_envelope_roundtrip;
          tc "rejection" test_envelope_rejection;
        ] );
    ]
