(* Chaos soak tests: long randomised runs combining load, message loss,
   duplication, a partition window, a minority crash and one or two
   dynamic protocol updates — with every correctness checker applied at
   the end. Each scenario is deterministic in its seed; a failure
   reproduces exactly. *)

open Dpu_kernel
module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module Rng = Dpu_engine.Rng
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check

type plan = {
  seed : int;
  n : int;
  loss : float;
  dup : float;
  duration_ms : float;
  rate : float;
  switches : (float * string) list;  (* abcast switches *)
  consensus_swap : float option;
  partition : (float * float) option;  (* [start, heal) isolating node n-1 *)
  crash : (float * int) option;
}

let random_plan seed =
  let rng = Rng.create ~seed:(seed * 7919) in
  let n = 4 + Rng.int rng 3 in
  let duration_ms = 4_000.0 in
  let variants = Dpu_core.Variants.all in
  let pick_variant () = List.nth variants (Rng.int rng 3) in
  let switches =
    let first = (800.0 +. Rng.float rng *. 1_500.0, pick_variant ()) in
    if Rng.bool rng ~p:0.5 then
      [ first; (2_600.0 +. Rng.float rng *. 800.0, pick_variant ()) ]
    else [ first ]
  in
  let partition =
    if Rng.bool rng ~p:0.5 then begin
      let start = 500.0 +. Rng.float rng *. 1_000.0 in
      Some (start, start +. 400.0 +. Rng.float rng *. 400.0)
    end
    else None
  in
  let crash =
    if Rng.bool rng ~p:0.6 then
      (* Crash a node that is not node 0 (keeps the token/sequencer
         bootstrap simple) and not the partitioned node. *)
      Some (1_500.0 +. Rng.float rng *. 1_500.0, 1 + Rng.int rng (n - 2))
    else None
  in
  {
    seed;
    n;
    loss = Rng.float rng *. 0.08;
    dup = Rng.float rng *. 0.04;
    duration_ms;
    rate = 15.0 +. Rng.float rng *. 25.0;
    switches;
    consensus_swap = (if Rng.bool rng ~p:0.4 then Some (1_200.0 +. Rng.float rng *. 800.0) else None);
    partition;
    crash;
  }

let run_plan plan =
  let profile =
    {
      SB.default_profile with
      consensus_layer =
        (if plan.consensus_swap <> None then Some Dpu_protocols.Consensus_ct.protocol_name
         else None);
    }
  in
  let config =
    {
      MW.default_config with
      seed = plan.seed;
      loss = plan.loss;
      dup = plan.dup;
      profile;
      msg_size = 1024;
    }
  in
  let mw = MW.create ~config ~n:plan.n () in
  let clock = System.clock (MW.system mw) in
  let net = System.net (MW.system mw) in
  Dpu_workload.Load_gen.start mw ~rate_per_s:plan.rate ~until:plan.duration_ms ();
  List.iter
    (fun (t, variant) ->
      ignore
        (Clock.defer clock ~delay:t (fun () -> MW.change_protocol mw ~node:0 variant)))
    plan.switches;
  (match plan.consensus_swap with
  | Some t ->
    ignore
      (Clock.defer clock ~delay:t (fun () ->
           MW.change_consensus mw ~node:1 Dpu_protocols.Consensus_paxos.protocol_name))
  | None -> ());
  (match plan.partition with
  | Some (start, heal) ->
    let isolated = plan.n - 1 in
    ignore
      (Clock.defer clock ~delay:start (fun () ->
           Dpu_net.Datagram.partition net
             [ List.init (plan.n - 1) (fun i -> i); [ isolated ] ]));
    ignore (Clock.defer clock ~delay:heal (fun () -> Dpu_net.Datagram.heal net))
  | None -> ());
  (match plan.crash with
  | Some (t, node) ->
    ignore (Clock.defer clock ~delay:t (fun () -> MW.crash mw node))
  | None -> ());
  MW.run_until_quiescent ~limit:(plan.duration_ms +. 120_000.0) mw;
  mw

let describe plan =
  Printf.sprintf
    "seed=%d n=%d loss=%.2f dup=%.2f rate=%.0f switches=[%s] consensus=%s partition=%s crash=%s"
    plan.seed plan.n plan.loss plan.dup plan.rate
    (String.concat ";"
       (List.map (fun (t, v) -> Printf.sprintf "%.0f->%s" t v) plan.switches))
    (match plan.consensus_swap with Some t -> Printf.sprintf "%.0f" t | None -> "no")
    (match plan.partition with
    | Some (a, b) -> Printf.sprintf "%.0f-%.0f" a b
    | None -> "no")
    (match plan.crash with Some (t, node) -> Printf.sprintf "%.0f:%d" t node | None -> "no")

let soak seed () =
  let plan = random_plan seed in
  let mw = run_plan plan in
  let correct = System.correct_nodes (MW.system mw) in
  let reports =
    Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct
    @ Dpu_props.Stack_props.check_generic
        (System.trace (MW.system mw))
        ~protocols:("repl.abcast" :: Dpu_core.Variants.all)
        ~nodes:(List.init (MW.n mw) (fun i -> i))
  in
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s | %s" (describe plan) r.Dpu_props.Report.property)
        true r.Dpu_props.Report.ok)
    reports;
  (* Sanity: traffic actually flowed. *)
  check Alcotest.bool "messages were sent" true
    (Dpu_core.Collector.send_count (MW.collector mw) > 20)

let () =
  let tc seed = Alcotest.test_case (Printf.sprintf "chaos seed %d" seed) `Slow (soak seed) in
  Alcotest.run "soak" [ ("chaos", List.map tc [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]) ]
