(* Tests for the group-communication protocols: UDP interface, reliable
   point-to-point, failure detector, reliable broadcast, Chandra-Toueg
   consensus, the three ABcast variants and group membership. *)

open Dpu_kernel
module P = Dpu_protocols
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Latency = Dpu_net.Latency

let check = Alcotest.check
let fail = Alcotest.fail

type Payload.t += Blob of string

(* A system with the basic substrate registered; nothing instantiated. *)
let make_system ?(n = 3) ?(seed = 1) ?(loss = 0.0) ?(dup = 0.0) ?link () =
  let link = match link with Some l -> l | None -> Latency.lan in
  let system = System.create ~seed ~loss ~dup ~link ~n () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Fd.register system;
  P.Rbcast.register system;
  P.Consensus_ct.register system;
  system

let ensure_all system svc =
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack svc)

(* Listen for indications of [svc] at [node]; returns the log. *)
let listen system ~node ~svc f =
  let stack = System.stack system node in
  ignore
    (Stack.add_module stack ~name:"listener" ~provides:[] ~requires:[ svc ]
       (fun _ _ ->
         { Stack.default_handlers with
           handle_indication = (fun s p -> if Service.equal s svc then f p) }))

(* ------------------------------------------------------------------ *)
(* UDP module                                                         *)
(* ------------------------------------------------------------------ *)

let test_udp_roundtrip () =
  let system = make_system () in
  ensure_all system Service.net;
  let got = ref [] in
  listen system ~node:1 ~svc:Service.net (fun p ->
      match p with
      | P.Udp.Recv { src; payload = Blob s } -> got := (src, s) :: !got
      | _ -> ());
  Stack.call (System.stack system 0) Service.net
    (P.Udp.Send { dst = 1; size = 64; payload = Blob "hi" });
  System.run_for system 50.0;
  check Alcotest.bool "received" true (!got = [ (0, "hi") ])

let test_udp_crashed_stack_silent () =
  let system = make_system () in
  ensure_all system Service.net;
  let got = ref 0 in
  listen system ~node:1 ~svc:Service.net (fun _ -> incr got);
  Stack.crash (System.stack system 1);
  Stack.call (System.stack system 0) Service.net
    (P.Udp.Send { dst = 1; size = 64; payload = Blob "hi" });
  System.run_for system 50.0;
  check Alcotest.int "nothing" 0 !got

(* ------------------------------------------------------------------ *)
(* RP2P                                                               *)
(* ------------------------------------------------------------------ *)

let rp2p_recv_log system node =
  let got = ref [] in
  listen system ~node ~svc:Service.rp2p (fun p ->
      match p with
      | P.Rp2p.Recv { src; payload = Blob s } -> got := (src, s) :: !got
      | _ -> ());
  got

let test_rp2p_reliable_under_loss () =
  let system = make_system ~loss:0.3 ~seed:5 () in
  ensure_all system Service.rp2p;
  let got = rp2p_recv_log system 1 in
  for i = 1 to 50 do
    Stack.call (System.stack system 0) Service.rp2p
      (P.Rp2p.Send { dst = 1; size = 64; payload = Blob (string_of_int i) })
  done;
  System.run_until_quiescent ~limit:20_000.0 system;
  check Alcotest.int "all delivered" 50 (List.length !got);
  let uniq = List.sort_uniq compare !got in
  check Alcotest.int "exactly once" 50 (List.length uniq);
  let stats = P.Rp2p.stats (System.stack system 0) in
  check Alcotest.bool "retransmissions happened" true (stats.P.Rp2p.retransmissions > 0)

let test_rp2p_dedup_under_duplication () =
  let system = make_system ~dup:0.5 ~seed:6 () in
  ensure_all system Service.rp2p;
  let got = rp2p_recv_log system 1 in
  for i = 1 to 30 do
    Stack.call (System.stack system 0) Service.rp2p
      (P.Rp2p.Send { dst = 1; size = 64; payload = Blob (string_of_int i) })
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  check Alcotest.int "exactly once despite dups" 30 (List.length !got)

let test_rp2p_gives_up_on_crashed_dst () =
  let system = make_system () in
  ensure_all system Service.rp2p;
  System.crash_node system 1;
  Stack.call (System.stack system 0) Service.rp2p
    (P.Rp2p.Send { dst = 1; size = 64; payload = Blob "x" });
  System.run_until_quiescent ~limit:3_000_000.0 system;
  let stats = P.Rp2p.stats (System.stack system 0) in
  check Alcotest.int "gave up" 1 stats.P.Rp2p.gave_up

let test_rp2p_self_send () =
  let system = make_system () in
  ensure_all system Service.rp2p;
  let got = rp2p_recv_log system 0 in
  Stack.call (System.stack system 0) Service.rp2p
    (P.Rp2p.Send { dst = 0; size = 64; payload = Blob "self" });
  System.run_for system 100.0;
  check Alcotest.bool "self delivery" true (!got = [ (0, "self") ])

let test_rp2p_stats_accepted () =
  let system = make_system () in
  ensure_all system Service.rp2p;
  ignore (rp2p_recv_log system 1);
  for _ = 1 to 5 do
    Stack.call (System.stack system 0) Service.rp2p
      (P.Rp2p.Send { dst = 1; size = 64; payload = Blob "x" })
  done;
  System.run_until_quiescent ~limit:10_000.0 system;
  let s0 = P.Rp2p.stats (System.stack system 0) in
  let s1 = P.Rp2p.stats (System.stack system 1) in
  check Alcotest.int "accepted" 5 s0.P.Rp2p.accepted;
  check Alcotest.int "delivered" 5 s1.P.Rp2p.delivered

let count_retrans_after_warmup ~adaptive () =
  (* A 25 ms link with a 10 ms initial timeout: every early datagram
     retransmits. The adaptive estimator must converge and stop; the
     fixed one keeps retransmitting every message forever. *)
  let sim_link = Latency.constant 25.0 in
  let system = System.create ~seed:8 ~link:sim_link ~n:2 () in
  P.Udp.register system;
  P.Rp2p.register
    ~config:{ P.Rp2p.default_config with adaptive; max_rto_ms = 500.0 }
    system;
  ensure_all system Service.rp2p;
  ignore (rp2p_recv_log system 1);
  (* Warm-up batch. *)
  for i = 1 to 10 do
    Stack.call (System.stack system 0) Service.rp2p
      (P.Rp2p.Send { dst = 1; size = 64; payload = Blob (string_of_int i) })
  done;
  System.run_for system 5_000.0;
  let before = (P.Rp2p.stats (System.stack system 0)).P.Rp2p.retransmissions in
  (* Steady state: 30 more messages, spaced out. *)
  for i = 11 to 40 do
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int i *. 60.0) (fun () ->
           Stack.call (System.stack system 0) Service.rp2p
             (P.Rp2p.Send { dst = 1; size = 64; payload = Blob (string_of_int i) })))
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  let after = (P.Rp2p.stats (System.stack system 0)).P.Rp2p.retransmissions in
  after - before

let test_rp2p_adaptive_rto_converges () =
  let adaptive = count_retrans_after_warmup ~adaptive:true () in
  let fixed = count_retrans_after_warmup ~adaptive:false () in
  check Alcotest.int "adaptive: no steady-state retransmissions" 0 adaptive;
  check Alcotest.bool
    (Printf.sprintf "fixed keeps retransmitting (%d)" fixed)
    true (fixed >= 30)

let test_rp2p_storm_backoff_resets_on_sample () =
  (* After a retransmission episode the timeout is inflated; a clean
     exchange brings it back (storm_backoff resets on a fresh sample).
     Observable effect: later messages on a fast link are not delayed
     by the earlier episode. *)
  let system = System.create ~seed:8 ~n:2 () in
  P.Udp.register system;
  P.Rp2p.register system;
  ensure_all system Service.rp2p;
  let got = rp2p_recv_log system 1 in
  (* Episode: partition so the first message retransmits a few times. *)
  Dpu_net.Datagram.partition (System.net system) [ [ 0 ]; [ 1 ] ];
  Stack.call (System.stack system 0) Service.rp2p
    (P.Rp2p.Send { dst = 1; size = 64; payload = Blob "stormy" });
  System.run_for system 300.0;
  Dpu_net.Datagram.heal (System.net system);
  System.run_for system 2_000.0;
  check Alcotest.int "first delivered after heal" 1 (List.length !got);
  (* Clean phase: send and measure delivery promptness. *)
  let t0 = Clock.now (System.clock system) in
  Stack.call (System.stack system 0) Service.rp2p
    (P.Rp2p.Send { dst = 1; size = 64; payload = Blob "clean" });
  System.run_for system 1_000.0;
  check Alcotest.int "second delivered" 2 (List.length !got);
  ignore t0

(* ------------------------------------------------------------------ *)
(* Failure detector                                                   *)
(* ------------------------------------------------------------------ *)

let fd_events system node =
  let log = ref [] in
  listen system ~node ~svc:Service.fd (fun p ->
      match p with
      | P.Fd.Suspect q -> log := `Suspect q :: !log
      | P.Fd.Restore q -> log := `Restore q :: !log
      | _ -> ());
  log

let test_fd_no_false_suspicion_when_alive () =
  let system = make_system () in
  ensure_all system Service.fd;
  let log = fd_events system 0 in
  System.run_for system 2_000.0;
  check Alcotest.int "quiet" 0 (List.length !log)

let test_fd_detects_crash () =
  let system = make_system () in
  ensure_all system Service.fd;
  let log = fd_events system 0 in
  System.crash_node system 2;
  System.run_for system 2_000.0;
  check Alcotest.bool "suspected 2" true (List.mem (`Suspect 2) !log);
  check Alcotest.bool "not 1" false (List.mem (`Suspect 1) !log);
  check (Alcotest.list Alcotest.int) "env view" [ 2 ]
    (P.Fd.suspects (System.stack system 0))

let test_fd_restore_after_partition_heals () =
  let system = make_system () in
  ensure_all system Service.fd;
  let log = fd_events system 0 in
  let net = System.net system in
  Dpu_net.Datagram.partition net [ [ 0 ]; [ 1; 2 ] ];
  System.run_for system 1_000.0;
  check Alcotest.bool "suspects during partition" true (List.mem (`Suspect 1) !log);
  Dpu_net.Datagram.heal net;
  System.run_for system 1_000.0;
  check Alcotest.bool "restored" true (List.mem (`Restore 1) !log);
  check (Alcotest.list Alcotest.int) "no suspects" [] (P.Fd.suspects (System.stack system 0))

let test_fd_adaptive_timeout () =
  (* After a false suspicion the per-node timeout grows, so a second
     partition of the same length does not trigger a second suspicion. *)
  let config = { P.Fd.period_ms = 20.0; timeout_ms = 100.0; timeout_increment_ms = 400.0 } in
  let system = System.create ~n:2 () in
  P.Udp.register system;
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack Service.net;
      ignore (P.Fd.install ~config ~n:2 stack));
  let log = fd_events system 0 in
  let net = System.net system in
  Dpu_net.Datagram.partition net [ [ 0 ]; [ 1 ] ];
  System.run_for system 300.0;
  Dpu_net.Datagram.heal net;
  System.run_for system 500.0;
  let suspicions = List.length (List.filter (fun e -> e = `Suspect 1) !log) in
  check Alcotest.int "first suspicion" 1 suspicions;
  (* Second, equally long partition: timeout is now 500 ms, so 300 ms of
     silence must pass unnoticed. *)
  Dpu_net.Datagram.partition net [ [ 0 ]; [ 1 ] ];
  System.run_for system 300.0;
  Dpu_net.Datagram.heal net;
  System.run_for system 500.0;
  let suspicions' = List.length (List.filter (fun e -> e = `Suspect 1) !log) in
  check Alcotest.int "no second suspicion" 1 suspicions'

(* ------------------------------------------------------------------ *)
(* Reliable broadcast                                                 *)
(* ------------------------------------------------------------------ *)

let test_rbcast_all_deliver () =
  let system = make_system ~n:4 () in
  ensure_all system P.Rbcast.service;
  let logs =
    List.init 4 (fun node ->
        let log = ref [] in
        listen system ~node ~svc:P.Rbcast.service (fun p ->
            match p with
            | P.Rbcast.Deliver { origin; payload = Blob s } -> log := (origin, s) :: !log
            | _ -> ());
        log)
  in
  Stack.call (System.stack system 2) P.Rbcast.service
    (P.Rbcast.Bcast { size = 64; payload = Blob "m" });
  System.run_until_quiescent ~limit:10_000.0 system;
  List.iter
    (fun log -> check Alcotest.bool "delivered everywhere" true (!log = [ (2, "m") ]))
    logs

let test_rbcast_dedup () =
  let system = make_system ~n:3 ~dup:0.5 ~seed:3 () in
  ensure_all system P.Rbcast.service;
  let count = ref 0 in
  listen system ~node:1 ~svc:P.Rbcast.service (fun p ->
      match p with P.Rbcast.Deliver _ -> incr count | _ -> ());
  for _ = 1 to 20 do
    Stack.call (System.stack system 0) P.Rbcast.service
      (P.Rbcast.Bcast { size = 64; payload = Blob "x" })
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  check Alcotest.int "once each" 20 !count

let test_rbcast_no_relay_still_delivers () =
  let system = System.create ~n:3 () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Rbcast.register ~relay:false system;
  ensure_all system P.Rbcast.service;
  let count = ref 0 in
  listen system ~node:2 ~svc:P.Rbcast.service (fun p ->
      match p with P.Rbcast.Deliver _ -> incr count | _ -> ());
  Stack.call (System.stack system 0) P.Rbcast.service
    (P.Rbcast.Bcast { size = 64; payload = Blob "x" });
  System.run_until_quiescent ~limit:10_000.0 system;
  check Alcotest.int "delivered without relay" 1 !count

let relay_agreement_scenario ~relay =
  (* Why forward-on-first-receipt matters (uniform agreement when the
     sender dies mid-broadcast): node 0's datagrams to node 2 are
     dropped, then node 0 crashes. Its broadcast reached only node 1
     first-hand. With relaying node 1 forwards it to node 2; without,
     node 2 never sees it. *)
  let system = System.create ~seed:5 ~n:3 () in
  P.Udp.register system;
  P.Rp2p.register
    ~config:{ P.Rp2p.default_config with max_retries = 3 }
    system;
  P.Rbcast.register ~relay system;
  ensure_all system P.Rbcast.service;
  let delivered = Array.make 3 false in
  List.iter
    (fun node ->
      listen system ~node ~svc:P.Rbcast.service (fun p ->
          match p with P.Rbcast.Deliver _ -> delivered.(node) <- true | _ -> ()))
    [ 1; 2 ];
  Dpu_net.Datagram.set_drop_filter (System.net system)
    (Some (fun ~src ~dst _ -> src = 0 && dst = 2));
  Stack.call (System.stack system 0) P.Rbcast.service
    (P.Rbcast.Bcast { size = 64; payload = Blob "m" });
  ignore
    (Clock.defer (System.clock system) ~delay:5.0 (fun () -> System.crash_node system 0));
  System.run_until_quiescent ~limit:30_000.0 system;
  (delivered.(1), delivered.(2))

let test_rbcast_relay_gives_agreement () =
  let d1, d2 = relay_agreement_scenario ~relay:true in
  check Alcotest.bool "node 1 delivered" true d1;
  check Alcotest.bool "node 2 delivered via relay" true d2

let test_rbcast_no_relay_breaks_agreement () =
  (* The negative control: without relaying, the crash + targeted loss
     leaves the correct nodes disagreeing — demonstrating that the
     relay is what buys uniform agreement. *)
  let d1, d2 = relay_agreement_scenario ~relay:false in
  check Alcotest.bool "node 1 delivered" true d1;
  check Alcotest.bool "node 2 left out" false d2

(* ------------------------------------------------------------------ *)
(* Chandra-Toueg consensus                                            *)
(* ------------------------------------------------------------------ *)

let decisions_log system =
  List.init (System.n system) (fun node ->
      let log = ref [] in
      listen system ~node ~svc:Service.consensus (fun p ->
          match p with
          | P.Consensus_iface.Decide { iid; value = Blob s } -> log := (iid, s) :: !log
          | P.Consensus_iface.Decide { iid; value = P.Consensus_iface.No_value } ->
            log := (iid, "<none>") :: !log
          | _ -> ());
      log)

let propose system ~node ~iid value =
  Stack.call (System.stack system node) Service.consensus
    (P.Consensus_iface.Propose { iid; value = Blob value; weight = String.length value })

let test_consensus_basic_agreement () =
  let system = make_system ~n:3 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:0 ~iid "a";
  propose system ~node:1 ~iid "b";
  propose system ~node:2 ~iid "c";
  System.run_until_quiescent ~limit:30_000.0 system;
  let decided = List.map (fun log -> List.assoc iid !log) logs in
  (match decided with
  | v :: rest ->
    check Alcotest.bool "validity" true (List.mem v [ "a"; "b"; "c" ]);
    List.iter (fun v' -> check Alcotest.string "agreement" v v') rest
  | [] -> fail "no decisions");
  check Alcotest.bool "decided counter" true
    (P.Consensus_ct.decided_count (System.stack system 0) >= 1)

let test_consensus_single_proposer () =
  let system = make_system ~n:5 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:3 ~iid "only";
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iter
    (fun log -> check Alcotest.string "all decide the only value" "only" (List.assoc iid !log))
    logs

let test_consensus_multi_instance () =
  let system = make_system ~n:3 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  for k = 0 to 9 do
    propose system ~node:(k mod 3) ~iid:{ P.Consensus_iface.epoch = 0; k } (string_of_int k)
  done;
  System.run_until_quiescent ~limit:20_000.0 system;
  List.iter
    (fun log ->
      for k = 0 to 9 do
        check Alcotest.string "instance decided" (string_of_int k)
          (List.assoc { P.Consensus_iface.epoch = 0; k } !log)
      done)
    logs

let test_consensus_epoch_separation () =
  let system = make_system ~n:3 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  propose system ~node:0 ~iid:{ P.Consensus_iface.epoch = 0; k = 0 } "old";
  propose system ~node:1 ~iid:{ P.Consensus_iface.epoch = 1; k = 0 } "new";
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iter
    (fun log ->
      check Alcotest.string "epoch 0" "old" (List.assoc { P.Consensus_iface.epoch = 0; k = 0 } !log);
      check Alcotest.string "epoch 1" "new" (List.assoc { P.Consensus_iface.epoch = 1; k = 0 } !log))
    logs

let test_consensus_coordinator_crash () =
  (* Round-0 coordinator of instance 0 is node 0; crash it before it can
     coordinate. The failure detector drives rounds forward. *)
  let system = make_system ~n:5 ~seed:2 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  System.crash_node system 0;
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:1 ~iid "survivor";
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iteri
    (fun node log ->
      if node <> 0 then
        check Alcotest.string "decided despite coordinator crash" "survivor"
          (List.assoc iid !log))
    logs

let test_consensus_crash_seeds_agree () =
  (* Multi-seed: a random minority crash must never break agreement. *)
  for seed = 1 to 8 do
    let system = make_system ~n:5 ~seed () in
    ensure_all system Service.consensus;
    let logs = decisions_log system in
    let victim = seed mod 5 in
    let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
    propose system ~node:((victim + 1) mod 5) ~iid "v";
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int (seed * 3)) (fun () ->
           System.crash_node system victim));
    System.run_until_quiescent ~limit:30_000.0 system;
    let decided =
      List.filteri (fun node _ -> node <> victim) logs
      |> List.map (fun log -> List.assoc_opt iid !log)
    in
    List.iter
      (fun d ->
        match d with
        | Some v -> check Alcotest.string "agreement under crash" "v" v
        | None -> fail (Printf.sprintf "correct node undecided (seed %d)" seed))
      decided
  done

let test_consensus_partition_heal () =
  (* A minority partition stalls nothing (majority decides); the healed
     minority node catches up via the decide relay / late-participant
     short-circuit. *)
  let system = make_system ~n:5 ~seed:6 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  Dpu_net.Datagram.partition (System.net system) [ [ 0; 1; 2; 3 ]; [ 4 ] ];
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:1 ~iid "majority";
  System.run_for system 2_000.0;
  List.iteri
    (fun node log ->
      if node <> 4 then
        check Alcotest.string "majority side decided" "majority" (List.assoc iid !log))
    logs;
  Dpu_net.Datagram.heal (System.net system);
  System.run_until_quiescent ~limit:30_000.0 system;
  check Alcotest.string "healed node caught up" "majority"
    (List.assoc iid !(List.nth logs 4))

let test_consensus_minority_side_cannot_decide () =
  (* Safety under partition: the 2-node side of a 5-node system must
     not decide anything on its own. *)
  let system = make_system ~n:5 ~seed:7 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  Dpu_net.Datagram.partition (System.net system) [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:3 ~iid "minority-value";
  System.run_for system 3_000.0;
  check Alcotest.bool "node 3 undecided" true (List.assoc_opt iid !(List.nth logs 3) = None);
  check Alcotest.bool "node 4 undecided" true (List.assoc_opt iid !(List.nth logs 4) = None);
  (* After healing everyone decides the same thing. (It may decide
     "<none>": the majority participants joined via wakeups with
     No_value estimates, and an all-empty quorum legitimately decides
     empty — the consensus-based ABcast simply re-proposes in the next
     instance. What is forbidden is disagreement.) *)
  Dpu_net.Datagram.heal (System.net system);
  System.run_until_quiescent ~limit:60_000.0 system;
  let decisions = List.map (fun log -> List.assoc iid !log) logs in
  (match decisions with
  | first :: rest ->
    check Alcotest.bool "a decision was reached" true (first <> "");
    List.iter (fun d -> check Alcotest.string "healed agreement" first d) rest
  | [] -> fail "no logs")

let test_consensus_propose_after_decided_reindicates () =
  let system = make_system ~n:3 () in
  ensure_all system Service.consensus;
  let logs = decisions_log system in
  let iid = { P.Consensus_iface.epoch = 0; k = 0 } in
  propose system ~node:0 ~iid "first";
  System.run_for system 10_000.0;
  propose system ~node:0 ~iid "late";
  System.run_for system 10_000.0;
  let node0 = List.filter (fun (i, _) -> i = iid) !(List.nth logs 0) in
  check Alcotest.bool "re-indicated" true (List.length node0 >= 2);
  List.iter (fun (_, v) -> check Alcotest.string "same decision" "first" v) node0

(* ------------------------------------------------------------------ *)
(* ABcast variants                                                    *)
(* ------------------------------------------------------------------ *)

(* Build a system with a given abcast variant bound on every stack. *)
let make_abcast_system ?(n = 3) ?(seed = 1) ?(loss = 0.0) variant =
  let system = make_system ~n ~seed ~loss () in
  P.Abcast_ct.register system;
  P.Abcast_seq.register system;
  P.Abcast_token.register system;
  System.iter_stacks system (fun stack ->
      ignore (Registry.instantiate (System.registry system) stack ~name:variant));
  system

let abcast_logs system =
  List.init (System.n system) (fun node ->
      let log = ref [] in
      listen system ~node ~svc:Service.abcast (fun p ->
          match p with
          | P.Abcast_iface.Deliver { origin = _; payload = Blob s } -> log := s :: !log
          | _ -> ());
      log)

let abcast system ~node s =
  Stack.call (System.stack system node) Service.abcast
    (P.Abcast_iface.Broadcast { size = 256; payload = Blob s })

let run_abcast_scenario ?(n = 3) ?(seed = 1) ?(loss = 0.0) ~msgs variant =
  let system = make_abcast_system ~n ~seed ~loss variant in
  let logs = abcast_logs system in
  for i = 0 to msgs - 1 do
    let node = i mod n in
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int i *. 3.0) (fun () ->
           abcast system ~node (Printf.sprintf "%d:%d" node i)))
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  (system, List.map (fun log -> List.rev !log) logs)

let check_abcast_properties ~msgs sequences =
  match sequences with
  | [] -> fail "no sequences"
  | first :: rest ->
    check Alcotest.int "all messages delivered" msgs (List.length first);
    check Alcotest.int "no duplicates" msgs (List.length (List.sort_uniq compare first));
    List.iter
      (fun seq -> check (Alcotest.list Alcotest.string) "identical total order" first seq)
      rest

let test_abcast_properties variant () =
  let _system, sequences = run_abcast_scenario ~msgs:30 variant in
  check_abcast_properties ~msgs:30 sequences

let test_abcast_under_loss variant () =
  let _system, sequences = run_abcast_scenario ~seed:4 ~loss:0.1 ~msgs:20 variant in
  check_abcast_properties ~msgs:20 sequences

let test_abcast_n7 variant () =
  let _system, sequences = run_abcast_scenario ~n:7 ~msgs:21 variant in
  check_abcast_properties ~msgs:21 sequences

let test_abcast_under_duplication variant () =
  (* Heavy datagram duplication: dedup layers at every level must hold. *)
  let system = System.create ~seed:21 ~dup:0.4 ~n:3 () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Fd.register system;
  P.Rbcast.register system;
  P.Consensus_ct.register system;
  P.Abcast_ct.register system;
  P.Abcast_seq.register system;
  P.Abcast_token.register system;
  System.iter_stacks system (fun stack ->
      ignore (Registry.instantiate (System.registry system) stack ~name:variant));
  let logs = abcast_logs system in
  for i = 0 to 14 do
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int i *. 6.0) (fun () ->
           abcast system ~node:(i mod 3) (string_of_int i)))
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  check_abcast_properties ~msgs:15 (List.map (fun l -> List.rev !l) logs)

let prop_abcast_total_order variant =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: total order for random workloads" variant)
    ~count:10
    QCheck.(pair (int_range 1 25) (int_range 1 1000))
    (fun (msgs, seed) ->
      let _system, sequences = run_abcast_scenario ~seed ~msgs variant in
      match sequences with
      | first :: rest ->
        List.length first = msgs && List.for_all (fun s -> s = first) rest
      | [] -> false)

let test_abcast_ct_batching () =
  (* With batching enabled, many concurrent messages need far fewer
     consensus instances. *)
  let count_instances batch_size =
    let system = make_system ~n:3 () in
    P.Abcast_ct.register ~batch_size system;
    System.iter_stacks system (fun stack ->
        ignore
          (Registry.instantiate (System.registry system) stack ~name:P.Abcast_ct.protocol_name));
    let logs = abcast_logs system in
    for i = 0 to 19 do
      abcast system ~node:(i mod 3) (string_of_int i)
    done;
    System.run_until_quiescent ~limit:30_000.0 system;
    check Alcotest.int "all delivered" 20 (List.length !(List.nth logs 0));
    P.Consensus_ct.decided_count (System.stack system 0)
  in
  let unbatched = count_instances 1 in
  let batched = count_instances 8 in
  check Alcotest.bool
    (Printf.sprintf "batched (%d) uses fewer instances than unbatched (%d)" batched unbatched)
    true
    (batched < unbatched)

let test_abcast_token_holder_crash () =
  (* Crash a node while traffic flows; the ring skips it after suspicion
     and the token is regenerated if lost. *)
  let system = make_abcast_system ~n:4 ~seed:9 P.Abcast_token.protocol_name in
  let logs = abcast_logs system in
  for i = 0 to 11 do
    let node = i mod 3 in
    (* only nodes 0-2 send; 3 will crash *)
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int i *. 10.0) (fun () ->
           abcast system ~node (string_of_int i)))
  done;
  ignore
    (Clock.defer (System.clock system) ~delay:35.0 (fun () -> System.crash_node system 3));
  System.run_until_quiescent ~limit:30_000.0 system;
  let sequences = List.filteri (fun i _ -> i <> 3) logs in
  match List.map (fun l -> List.rev !l) sequences with
  | first :: rest ->
    check Alcotest.int "survivors deliver everything" 12 (List.length first);
    List.iter (fun s -> check (Alcotest.list Alcotest.string) "order" first s) rest
  | [] -> fail "no logs"

(* ------------------------------------------------------------------ *)
(* Group membership                                                   *)
(* ------------------------------------------------------------------ *)

let make_gm_system ?(n = 3) ?(seed = 1) ?gm_config () =
  let system = make_system ~n ~seed () in
  P.Abcast_ct.register system;
  Dpu_core.Repl.register system;
  P.Gm.register ?config:gm_config system;
  System.iter_stacks system (fun stack ->
      ignore
        (Registry.instantiate (System.registry system) stack ~name:P.Abcast_ct.protocol_name);
      Registry.ensure_bound (System.registry system) stack Service.gm);
  system

let view_logs system =
  List.init (System.n system) (fun node ->
      let log = ref [] in
      listen system ~node ~svc:Service.gm (fun p ->
          match p with
          | P.Gm.View v -> log := v :: !log
          | _ -> ());
      log)

let test_gm_initial_view () =
  let system = make_gm_system () in
  System.run_for system 100.0;
  match P.Gm.current_view (System.stack system 0) with
  | Some v ->
    check Alcotest.int "view 0" 0 v.P.Gm.id;
    check (Alcotest.list Alcotest.int) "all members" [ 0; 1; 2 ] v.P.Gm.members
  | None -> fail "no view"

let test_gm_leave_join () =
  let system = make_gm_system () in
  let logs = view_logs system in
  Stack.call (System.stack system 0) Service.gm (P.Gm.Leave 2);
  System.run_for system 10_000.0;
  Stack.call (System.stack system 1) Service.gm (P.Gm.Join 2);
  System.run_for system 10_000.0;
  List.iter
    (fun log ->
      (* Initial view publication plus the two changes. *)
      let views = List.rev_map (fun v -> v.P.Gm.members) !log in
      check
        (Alcotest.list (Alcotest.list Alcotest.int))
        "same view sequence"
        [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 1; 2 ] ]
        views)
    logs;
  match P.Gm.current_view (System.stack system 0) with
  | Some v -> check Alcotest.int "two changes" 2 v.P.Gm.id
  | None -> fail "no view"

let test_gm_duplicate_proposal_idempotent () =
  let system = make_gm_system () in
  Stack.call (System.stack system 0) Service.gm (P.Gm.Leave 2);
  Stack.call (System.stack system 1) Service.gm (P.Gm.Leave 2);
  System.run_until_quiescent ~limit:20_000.0 system;
  match P.Gm.current_view (System.stack system 0) with
  | Some v ->
    check Alcotest.int "applied once" 1 v.P.Gm.id;
    check (Alcotest.list Alcotest.int) "members" [ 0; 1 ] v.P.Gm.members
  | None -> fail "no view"

let test_gm_excludes_crashed_member () =
  let system =
    make_gm_system ~n:4 ~gm_config:{ P.Gm.exclusion_delay_ms = 150.0 } ()
  in
  System.crash_node system 3;
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iter
    (fun node ->
      match P.Gm.current_view (System.stack system node) with
      | Some v ->
        check (Alcotest.list Alcotest.int) "crashed member excluded" [ 0; 1; 2 ]
          v.P.Gm.members
      | None -> fail "no view")
    [ 0; 1; 2 ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let variant_tests name variant =
    [
      tc (name ^ ": validity/integrity/total order") (test_abcast_properties variant);
      tc (name ^ ": under loss") (test_abcast_under_loss variant);
      tc (name ^ ": under duplication") (test_abcast_under_duplication variant);
      tc (name ^ ": n=7") (test_abcast_n7 variant);
    ]
  in
  Alcotest.run "protocols"
    [
      ( "udp",
        [ tc "roundtrip" test_udp_roundtrip; tc "crashed stack" test_udp_crashed_stack_silent ] );
      ( "rp2p",
        [
          tc "reliable under loss" test_rp2p_reliable_under_loss;
          tc "dedup" test_rp2p_dedup_under_duplication;
          tc "gives up on crashed" test_rp2p_gives_up_on_crashed_dst;
          tc "self send" test_rp2p_self_send;
          tc "stats" test_rp2p_stats_accepted;
          tc "adaptive RTO converges" test_rp2p_adaptive_rto_converges;
          tc "storm backoff resets" test_rp2p_storm_backoff_resets_on_sample;
        ] );
      ( "fd",
        [
          tc "no false suspicion" test_fd_no_false_suspicion_when_alive;
          tc "detects crash" test_fd_detects_crash;
          tc "restores" test_fd_restore_after_partition_heals;
          tc "adaptive timeout" test_fd_adaptive_timeout;
        ] );
      ( "rbcast",
        [
          tc "all deliver" test_rbcast_all_deliver;
          tc "dedup" test_rbcast_dedup;
          tc "no relay" test_rbcast_no_relay_still_delivers;
          tc "relay gives agreement on sender crash" test_rbcast_relay_gives_agreement;
          tc "no relay breaks it (negative control)" test_rbcast_no_relay_breaks_agreement;
        ] );
      ( "consensus",
        [
          tc "agreement" test_consensus_basic_agreement;
          tc "single proposer" test_consensus_single_proposer;
          tc "multi instance" test_consensus_multi_instance;
          tc "epoch separation" test_consensus_epoch_separation;
          tc "coordinator crash" test_consensus_coordinator_crash;
          tc "crash seeds agree" test_consensus_crash_seeds_agree;
          tc "re-indication" test_consensus_propose_after_decided_reindicates;
          tc "partition + heal" test_consensus_partition_heal;
          tc "minority cannot decide" test_consensus_minority_side_cannot_decide;
        ] );
      ("abcast.ct", variant_tests "ct" P.Abcast_ct.protocol_name);
      ("abcast.seq", variant_tests "seq" P.Abcast_seq.protocol_name);
      ("abcast.token", variant_tests "token" P.Abcast_token.protocol_name);
      ( "abcast.special",
        [
          tc "ct batching ablation" test_abcast_ct_batching;
          tc "token node crash" test_abcast_token_holder_crash;
        ] );
      ( "gm",
        [
          tc "initial view" test_gm_initial_view;
          tc "leave/join" test_gm_leave_join;
          tc "idempotent proposals" test_gm_duplicate_proposal_idempotent;
          tc "excludes crashed" test_gm_excludes_crashed_member;
        ] );
      ( "abcast.properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [
            prop_abcast_total_order P.Abcast_ct.protocol_name;
            prop_abcast_total_order P.Abcast_seq.protocol_name;
            prop_abcast_total_order P.Abcast_token.protocol_name;
          ] );
    ]
