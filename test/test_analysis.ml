(* Tests for the static analysis pass: the composition verifier
   (Dpu_analysis.Composition) against registries and plans crafted to
   violate each property, its agreement with the dynamic machinery
   (Registry.instantiate, Stack_props over a real trace), and the
   determinism lint (Dpu_analysis.Lint). *)

open Dpu_kernel
module C = Dpu_analysis.Composition
module B = Dpu_analysis.Behaviour
module L = Dpu_analysis.Lint
module SB = Dpu_core.Stack_builder
module RC = Dpu_core.Repl_consensus
module MW = Dpu_core.Middleware
module Variants = Dpu_core.Variants
module Batcher = Dpu_protocols.Batcher
module Schedule = Dpu_faults.Schedule
module E = Dpu_workload.Experiment
module Report = Dpu_props.Report

let check = Alcotest.check

let has_sub ~sub s =
  let ls = String.length sub and lv = String.length s in
  let rec go i = i + ls <= lv && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let report_named reports property =
  match List.find_opt (fun (r : Report.t) -> r.property = property) reports with
  | Some r -> r
  | None -> Alcotest.failf "no report named %S" property

let assert_all_ok reports =
  if not (Report.all_ok reports) then
    Alcotest.failf "expected all ok:@.%a" (Format.pp_print_list Report.pp) reports

let some_violation_mentions reports property sub =
  let r = report_named reports property in
  check Alcotest.bool (property ^ " fails") false r.Report.ok;
  check Alcotest.bool
    (Printf.sprintf "a %s violation mentions %S" property sub)
    true
    (List.exists (has_sub ~sub) r.Report.violations)

(* A populated registry exactly as [dpu_run] sees it. *)
let registry_for ?(n = 3) profile =
  let system = System.create ~n () in
  let register_extra system =
    Dpu_baselines.Maestro.register system;
    Dpu_baselines.Graceful.register system
  in
  SB.register_protocols ~register_extra ~profile system;
  System.registry system

let verify ?updates ?consensus_updates profile =
  C.verify_profile
    ~registry:(registry_for profile)
    ?updates ?consensus_updates profile

(* ------------------------------------------------------------------ *)
(* Shipped configurations verify                                      *)
(* ------------------------------------------------------------------ *)

let test_default_profile_ok () =
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.ct ] SB.default_profile)

let test_all_approach_layers_ok () =
  List.iter
    (fun layer ->
      assert_all_ok
        (verify ~updates:[ Dpu_core.Variants.sequencer ]
           { SB.default_profile with layer = Some layer }))
    [
      Dpu_core.Repl.protocol_name;
      Dpu_baselines.Maestro.protocol_name;
      Dpu_baselines.Graceful.protocol_name;
    ];
  assert_all_ok (verify { SB.default_profile with layer = None })

let test_consensus_layer_ok () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  assert_all_ok
    (verify
       ~consensus_updates:[ Dpu_protocols.Consensus_paxos.protocol_name ]
       profile)

let test_gm_profile_ok () =
  assert_all_ok (verify { SB.default_profile with with_gm = true })

let test_every_initial_variant_ok () =
  List.iter
    (fun initial ->
      assert_all_ok
        (verify ~updates:[ Dpu_core.Variants.ct ]
           { SB.default_profile with initial_abcast = initial }))
    Dpu_core.Variants.all

(* ------------------------------------------------------------------ *)
(* Well-formedness violations                                         *)
(* ------------------------------------------------------------------ *)

let dummy_factory ~name ~provides ~requires stack =
  Stack.add_module stack ~name ~provides ~requires (fun _ _ ->
      Stack.default_handlers)

let empty_plan =
  {
    C.prebound = [];
    roots = [];
    passive = [];
    named = [];
    updates = [];
    consensus_updates = [];
    layer = None;
  }

let test_missing_provider_named () =
  let reg = Registry.create () in
  let sx = Service.make "svc.x" in
  Registry.register reg ~name:"a" ~provides:[ Service.make "svc.a" ]
    ~requires:[ sx ]
    (dummy_factory ~name:"a" ~provides:[ Service.make "svc.a" ] ~requires:[ sx ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "a" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "svc.x";
  some_violation_mentions reports "static strong stack-well-formedness" "a"

let test_unknown_root_named () =
  let reports =
    C.verify ~registry:(Registry.create ())
      { empty_plan with roots = [ C.By_name "ghost" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "ghost"

(* An honest declared cycle builds dynamically (binding-before-recursion)
   but the conservative static check must still flag it. *)
let test_declared_cycle_flagged () =
  let reg = Registry.create () in
  let sa = Service.make "svc.a" and sb = Service.make "svc.b" in
  Registry.register reg ~name:"cyc.a" ~provides:[ sa ] ~requires:[ sb ]
    (dummy_factory ~name:"cyc.a" ~provides:[ sa ] ~requires:[ sb ]);
  Registry.register reg ~name:"cyc.b" ~provides:[ sb ] ~requires:[ sa ]
    (dummy_factory ~name:"cyc.b" ~provides:[ sb ] ~requires:[ sa ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "cyc.a" ] }
  in
  (* The dynamic build terminates... *)
  let sim = Dpu_engine.Sim.create () in
  let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
  ignore (Registry.instantiate reg stack ~name:"cyc.a" : Stack.module_);
  check Alcotest.bool "dynamic build succeeds" true (Stack.has_module stack ~name:"cyc.b");
  (* ...yet the static verdict is a cycle, in canonical form, with the
     closing edge spelled out (satellite: "a -> b" hid that b loops
     back to a). *)
  some_violation_mentions reports "acyclic provider chains"
    (Registry.cycle_string (Registry.canonical_cycle [ "cyc.a"; "cyc.b" ]))

(* A longer cycle: the full canonical rotation plus the closing edge
   must appear verbatim in both the static finding and the exception
   printer. *)
let test_cycle_closing_edge () =
  let reg = Registry.create () in
  let svc name = Service.make ("svc." ^ name) in
  let ring = [ ("tri.a", "tri.b"); ("tri.b", "tri.c"); ("tri.c", "tri.a") ] in
  List.iter
    (fun (name, needs) ->
      Registry.register reg ~name
        ~provides:[ svc name ] ~requires:[ svc needs ]
        (dummy_factory ~name ~provides:[ svc name ] ~requires:[ svc needs ]))
    ring;
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "tri.b" ] }
  in
  let rendered = Registry.cycle_string [ "tri.a"; "tri.b"; "tri.c" ] in
  check Alcotest.string "closing edge rendered"
    "tri.a -> tri.b -> tri.c -> tri.a" rendered;
  some_violation_mentions reports "acyclic provider chains" rendered;
  (* The dynamic exception prints the same form. *)
  check Alcotest.bool "exception printer shows the closing edge" true
    (has_sub ~sub:rendered
       (Printexc.to_string (Registry.Cyclic_requires [ "tri.a"; "tri.b"; "tri.c" ])));
  check Alcotest.string "empty cycle renders" "<empty cycle>"
    (Registry.cycle_string [])

let test_duplicate_binding () =
  let reg = Registry.create () in
  let s = Service.make "svc.shared" in
  List.iter
    (fun name ->
      Registry.register reg ~name ~provides:[ s ]
        (dummy_factory ~name ~provides:[ s ] ~requires:[]))
    [ "dup.a"; "dup.b" ];
  let reports =
    C.verify ~registry:reg
      { empty_plan with roots = [ C.By_name "dup.a"; C.By_name "dup.b" ] }
  in
  some_violation_mentions reports "unique service binding" "svc.shared";
  some_violation_mentions reports "unique service binding" "dup.b"

(* ------------------------------------------------------------------ *)
(* Update-plan safety                                                 *)
(* ------------------------------------------------------------------ *)

let test_update_ok_ct_to_seq () =
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.sequencer ] SB.default_profile)

let test_update_to_unregistered () =
  let reports = verify ~updates:[ "abcast.nope" ] SB.default_profile in
  some_violation_mentions reports "update-plan safety" "abcast.nope"

let test_update_drops_service () =
  (* Swapping the ABcast variant for a consensus implementation drops
     the abcast service its callers rely on. *)
  let profile = { SB.default_profile with initial_abcast = Dpu_core.Variants.sequencer } in
  let reports =
    verify ~updates:[ Dpu_protocols.Consensus_ct.protocol_name ] profile
  in
  some_violation_mentions reports "update-plan safety" "drops service abcast"

let test_update_without_layer () =
  let profile = { SB.default_profile with layer = None } in
  let reports = verify ~updates:[ Dpu_core.Variants.ct ] profile in
  some_violation_mentions reports "update-plan safety" "no replacement layer"

let test_update_post_swap_unresolvable () =
  let profile = SB.default_profile in
  let system = System.create ~n:3 () in
  SB.register_protocols ~profile system;
  let reg = System.registry system in
  let ghost = Service.make "svc.ghost" in
  Registry.register reg ~name:"abcast.fake"
    ~provides:[ Service.abcast ] ~requires:[ ghost ]
    (dummy_factory ~name:"abcast.fake" ~provides:[ Service.abcast ] ~requires:[ ghost ]);
  let reports = C.verify_profile ~registry:reg ~updates:[ "abcast.fake" ] profile in
  some_violation_mentions reports "update-plan safety" "svc.ghost"

let test_update_direct_caller_bypass () =
  let profile = SB.default_profile in
  let system = System.create ~n:3 () in
  SB.register_protocols ~profile system;
  let reg = System.registry system in
  (* A planned module that calls [abcast] directly, bypassing the
     replacement layer: its calls cannot be intercepted by the swap. *)
  Registry.register reg ~name:"app.direct" ~provides:[]
    ~requires:[ Service.abcast ]
    (dummy_factory ~name:"app.direct" ~provides:[] ~requires:[ Service.abcast ]);
  let plan = C.plan_of_profile ~updates:[ Dpu_core.Variants.sequencer ] profile in
  let plan = { plan with C.roots = plan.C.roots @ [ C.By_name "app.direct" ] } in
  let reports = C.verify ~registry:reg plan in
  some_violation_mentions reports "update-plan safety" "app.direct"

let test_consensus_update_missing_impl () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  let reports = verify ~consensus_updates:[ "consensus.nope" ] profile in
  some_violation_mentions reports "update-plan safety" "consensus.nope"

(* ------------------------------------------------------------------ *)
(* Behavioural update safety (tentpole)                                *)
(* ------------------------------------------------------------------ *)

let behaviour_report reports = report_named reports "behavioural update safety"

let spec_of_exn reg name =
  match Registry.spec_of reg ~name with
  | Some spec -> spec
  | None -> Alcotest.failf "%s has no declared spec" name

(* The 1-unfolding of the sequencer spec surfaces every in-flight
   shape class: an undelivered payload, an open ordering round, and —
   when batching is on — a partially-flushed batch. *)
let test_unfold1_shapes () =
  let reg = registry_for SB.default_profile in
  let shapes = B.unfold1 (spec_of_exn reg Variants.sequencer) in
  check Alcotest.bool "some in-flight shapes" true (shapes <> []);
  List.iter
    (fun (s : B.shape) ->
      check Alcotest.bool "every shape has pending work" true
        (s.B.sh_pending <> []);
      check Alcotest.bool "every shape has a provenance trace" true
        (s.B.sh_trace <> []))
    shapes;
  let has_pending p =
    List.exists (fun (s : B.shape) -> List.mem p (List.map B.pending_name s.B.sh_pending)) shapes
  in
  check Alcotest.bool "undelivered payload shape" true
    (has_pending (B.pending_name B.P_deliver));
  check Alcotest.bool "open ordering round shape" true
    (List.exists
       (fun (s : B.shape) ->
         List.exists
           (function B.P_wire k -> k.Spec.k_name = "seq.order" | _ -> false)
           s.B.sh_pending)
       shapes);
  (* Batched registration adds the partially-flushed-batch shape and
     the epoch-flush obligation. *)
  let batched_profile =
    {
      SB.default_profile with
      batching = Some { Batcher.max_batch = 16; max_delay_ms = 2.0 };
    }
  in
  let bspec = spec_of_exn (registry_for batched_profile) Variants.sequencer in
  check Alcotest.bool "batched spec takes the epoch-flush obligation" true
    (Spec.obliges bspec Spec.Epoch_flush);
  check Alcotest.bool "batched unfolding parks a batch" true
    (List.exists
       (fun (s : B.shape) ->
         List.exists
           (function B.P_batch _ -> true | _ -> false)
           s.B.sh_pending)
       (B.unfold1 bspec))

(* Direct ♢-combination: the shipped layer + epoch buffer discharge
   every obligation of every variant pair; removing the buffer leaves
   the successor's early traffic stranded on a sequence gap. *)
let test_check_pair_buffer_discharges () =
  let reg = registry_for SB.default_profile in
  let layer =
    (Dpu_core.Repl.protocol_name, spec_of_exn reg Dpu_core.Repl.protocol_name)
  in
  let buffer = ("epoch-buffer", Dpu_protocols.Epoch_buffer.spec) in
  List.iter
    (fun (old_name, new_name) ->
      let checked, hazards =
        B.check_pair ~old_name ~old_spec:(spec_of_exn reg old_name) ~new_name
          ~new_spec:(spec_of_exn reg new_name) ~layer ~passives:[ buffer ]
      in
      check Alcotest.bool (old_name ^ "->" ^ new_name ^ " examined") true
        (checked > 0);
      check Alcotest.int (old_name ^ "->" ^ new_name ^ " no hazards") 0
        (List.length hazards))
    [ (Variants.ct, Variants.sequencer); (Variants.sequencer, Variants.token) ];
  let _, hazards =
    B.check_pair ~old_name:Variants.sequencer
      ~old_spec:(spec_of_exn reg Variants.sequencer) ~new_name:Variants.token
      ~new_spec:(spec_of_exn reg Variants.token) ~layer ~passives:[]
  in
  check Alcotest.bool "no buffer strands early successor traffic" true
    (List.exists
       (fun (h : B.hazard) ->
         h.B.h_fate = `Stranded && h.B.h_obligation = Spec.Gap_free_gseq)
       hazards);
  match hazards with
  | h :: _ ->
    let msg =
      B.hazard_message ~old_name:Variants.sequencer ~new_name:Variants.token h
    in
    check Alcotest.bool "message carries a counterexample" true
      (has_sub ~sub:"counterexample:" msg)
  | [] -> Alcotest.fail "expected at least one hazard"

(* Every shipped variant pair is behaviourally safe under the shipped
   stack (layer + epoch buffer), in both directions. *)
let test_behaviour_matrix_all_safe () =
  List.iter
    (fun initial ->
      List.iter
        (fun target ->
          let reports =
            verify ~updates:[ target ]
              { SB.default_profile with initial_abcast = initial }
          in
          let r = behaviour_report reports in
          check Alcotest.bool
            (Printf.sprintf "%s -> %s safe" initial target)
            true r.Report.ok;
          check Alcotest.bool
            (Printf.sprintf "%s -> %s examined obligations" initial target)
            true (r.Report.checked > 0))
        Variants.all)
    Variants.all

let test_behaviour_no_buffer_rejected () =
  let reports =
    verify ~updates:[ Variants.sequencer ]
      { SB.default_profile with epoch_buffer = false }
  in
  some_violation_mentions reports "behavioural update safety" "gap-free-gseq";
  some_violation_mentions reports "behavioural update safety" "counterexample:"

(* A swap target registered without a spec — or with an opaque one —
   cannot be proven safe; the checker must say so rather than pass
   silently. *)
let test_behaviour_missing_spec_flagged () =
  let profile = SB.default_profile in
  let reg = registry_for profile in
  Registry.register reg ~name:"abcast.nospec" ~provides:[ Service.abcast ]
    (dummy_factory ~name:"abcast.nospec" ~provides:[ Service.abcast ]
       ~requires:[]);
  let reports =
    C.verify_profile ~registry:reg ~updates:[ "abcast.nospec" ] profile
  in
  some_violation_mentions reports "behavioural update safety"
    "declares no behavioural spec"

let test_behaviour_opaque_spec_flagged () =
  let profile = SB.default_profile in
  let reg = registry_for profile in
  Registry.register reg ~name:"abcast.blackbox" ~provides:[ Service.abcast ]
    ~spec:(Spec.opaque ~service:(Service.name Service.abcast) "legacy black box")
    (dummy_factory ~name:"abcast.blackbox" ~provides:[ Service.abcast ]
       ~requires:[]);
  let reports =
    C.verify_profile ~registry:reg ~updates:[ "abcast.blackbox" ] profile
  in
  some_violation_mentions reports "behavioural update safety" "opaque";
  some_violation_mentions reports "behavioural update safety" "legacy black box"

(* ------------------------------------------------------------------ *)
(* Static verdict vs dynamic behaviour                                *)
(* ------------------------------------------------------------------ *)

(* A "liar" registration declares provides it never binds: the dynamic
   resolver re-enters the protocol and must raise the same canonical
   cycle the static pass reports. *)
let test_liar_cycle_static_eq_dynamic () =
  let reg = Registry.create () in
  let sa = Service.make "svc.a" and sb = Service.make "svc.b" in
  (* Factories add modules providing nothing, so nothing ever binds and
     resolution recurses. *)
  Registry.register reg ~name:"liar.a" ~provides:[ sa ] ~requires:[ sb ]
    (dummy_factory ~name:"liar.a" ~provides:[] ~requires:[ sb ]);
  Registry.register reg ~name:"liar.b" ~provides:[ sb ] ~requires:[ sa ]
    (dummy_factory ~name:"liar.b" ~provides:[] ~requires:[ sa ]);
  let dynamic_cycle =
    let sim = Dpu_engine.Sim.create () in
    let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
    match Registry.instantiate reg stack ~name:"liar.a" with
    | exception Registry.Cyclic_requires cycle -> cycle
    | _ -> Alcotest.fail "expected Cyclic_requires"
  in
  check
    Alcotest.(list string)
    "dynamic cycle canonical" (Registry.canonical_cycle [ "liar.a"; "liar.b" ])
    dynamic_cycle;
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "liar.a" ] }
  in
  some_violation_mentions reports "acyclic provider chains"
    (Registry.cycle_string dynamic_cycle)

let test_missing_provider_static_eq_dynamic () =
  let reg = Registry.create () in
  let sx = Service.make "svc.x" in
  Registry.register reg ~name:"needy" ~provides:[ Service.make "svc.n" ]
    ~requires:[ sx ]
    (dummy_factory ~name:"needy" ~provides:[ Service.make "svc.n" ] ~requires:[ sx ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "needy" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "svc.x";
  let sim = Dpu_engine.Sim.create () in
  let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
  match Registry.instantiate reg stack ~name:"needy" with
  | exception Registry.No_provider svc ->
    check Alcotest.string "same service" "svc.x" (Service.name svc)
  | _ -> Alcotest.fail "expected No_provider"

(* Static OK must coincide with a dynamically well-formed build: build
   the verified profile for real and replay the trace checkers. *)
let test_static_ok_matches_dynamic_trace () =
  let profile = SB.default_profile in
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.ct ] profile);
  let system = System.create ~n:3 ~trace_enabled:true () in
  SB.build ~profile system;
  (* Bounded: the stack keeps periodic timers (fd heartbeats) alive. *)
  System.run_until system 200.0;
  let trace = System.trace system in
  let wf = Dpu_props.Stack_props.weak_stack_well_formedness trace in
  check Alcotest.bool "dynamic weak WF" true wf.Report.ok

(* --- behavioural verdicts vs the fault harness --------------------- *)

(* The schedule the epoch-buffer regression (test_faults) established
   as the discriminating one: a minority node is isolated across the
   switch trigger, so the majority switches and produces new-generation
   wire traffic while the isolated node is still on the old one. *)
let discriminating_faults =
  [
    Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ];
    Schedule.heal ~at:2_600.0;
  ]

let agreement_params ~initial ~target ~epoch_buffer =
  {
    E.default with
    n = 5;
    seed = 102;
    load = 30.0;
    duration_ms = 4_000.0;
    switch_at_ms = 2_000.0;
    initial;
    switch_to = Some target;
    msg_size = 1024;
    trace_enabled = true;
    faults = discriminating_faults;
    epoch_buffer;
  }

(* Pairs the static checker accepts must survive the property battery
   across a mid-stream swap under the discriminating schedule. *)
let test_safe_pairs_static_eq_dynamic () =
  List.iter
    (fun (initial, target) ->
      let profile = { SB.default_profile with initial_abcast = initial } in
      assert_all_ok (verify ~updates:[ target ] profile);
      let result = E.run (agreement_params ~initial ~target ~epoch_buffer:true) in
      List.iter
        (fun (r : Report.t) ->
          check Alcotest.bool
            (Printf.sprintf "%s->%s dynamic: %s" initial target r.Report.property)
            true r.Report.ok)
        (E.check result);
      check Alcotest.bool
        (Printf.sprintf "%s->%s switch completed" initial target)
        true (result.E.switch_window <> None))
    [ (Variants.ct, Variants.sequencer); (Variants.sequencer, Variants.token) ]

(* The pair the static checker rejects (no future-epoch buffer) must
   come with a concrete violating schedule — and the schedule really
   violates: replayed without the buffer, the isolated node strands
   the stream its peers delivered. [E.run] refuses unsafe plans
   (satellite: preflight), so the cluster is assembled directly. *)
let test_unsafe_pair_static_eq_dynamic () =
  let profile = { SB.default_profile with epoch_buffer = false } in
  let reports = verify ~updates:[ Variants.sequencer ] profile in
  some_violation_mentions reports "behavioural update safety" "gap-free-gseq";
  let config = { MW.default_config with seed = 102; msg_size = 1024; profile } in
  let mw = MW.create ~config ~n:5 () in
  let system = MW.system mw in
  let clock = System.clock system in
  let net = System.net system in
  Dpu_workload.Load_gen.start mw ~rate_per_s:30.0 ~until:4_000.0 ();
  Schedule.arm net discriminating_faults;
  ignore
    (Dpu_runtime.Clock.defer clock ~delay:2_000.0 (fun () ->
         MW.change_protocol mw ~node:4 Variants.sequencer));
  MW.run_for mw 10_000.0;
  let late = System.stack system 4 in
  check Alcotest.int "nothing stashes future-generation traffic" 0
    (Dpu_protocols.Epoch_buffer.stashed late);
  let collector = MW.collector mw in
  let count node = List.length (Dpu_core.Collector.delivers_of collector ~node) in
  check Alcotest.bool "traffic flowed at the majority" true (count 0 > 20);
  check Alcotest.bool
    "the isolated node stranded part of the stream (the counterexample)"
    true
    (count 4 < count 0)

(* ------------------------------------------------------------------ *)
(* Registry introspection (satellites 1-2)                            *)
(* ------------------------------------------------------------------ *)

let test_registry_introspection () =
  let reg = registry_for SB.default_profile in
  (match Registry.requires_of reg ~name:Dpu_core.Variants.ct with
  | Some requires ->
    check Alcotest.bool "abcast.ct requires consensus" true
      (List.exists (Service.equal Service.consensus) requires)
  | None -> Alcotest.fail "abcast.ct not registered");
  (match Registry.provides_of reg ~name:Dpu_core.Variants.ct with
  | Some provides ->
    check Alcotest.bool "abcast.ct provides abcast" true
      (List.exists (Service.equal Service.abcast) provides)
  | None -> Alcotest.fail "abcast.ct not registered");
  check Alcotest.bool "unknown name" true
    (Registry.provides_of reg ~name:"ghost" = None
    && Registry.requires_of reg ~name:"ghost" = None)

let test_canonical_cycle () =
  check
    Alcotest.(list string)
    "rotated to smallest first" [ "a"; "c"; "b" ]
    (Registry.canonical_cycle [ "b"; "a"; "c" ]);
  check Alcotest.(list string) "empty" [] (Registry.canonical_cycle [])

(* ------------------------------------------------------------------ *)
(* Experiment preflight                                               *)
(* ------------------------------------------------------------------ *)

let test_preflight_accepts_default () =
  assert_all_ok (E.preflight E.default)

let test_preflight_rejects_bad_swap () =
  let params =
    {
      E.default with
      initial = Dpu_core.Variants.sequencer;
      switch_to = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  check Alcotest.bool "preflight fails" false
    (Report.all_ok (E.preflight params));
  match E.run { params with duration_ms = 50.0 } with
  | exception E.Preflight_failure reports ->
    check Alcotest.bool "carries failing reports" false (Report.all_ok reports)
  | _ -> Alcotest.fail "expected Preflight_failure"

(* Satellite: a behaviourally rejected plan never reaches the
   simulation — [E.run] raises [Preflight_failure] before any event,
   so no message is ever sent under the unsafe configuration. *)
let test_preflight_rejects_unsafe_behaviour () =
  let params = { E.default with epoch_buffer = false } in
  let reports = E.preflight params in
  check Alcotest.bool "preflight fails" false (Report.all_ok reports);
  some_violation_mentions reports "behavioural update safety" "counterexample:";
  (* Precision: with no planned switch the same profile is merely
     fragile, not unsafe — preflight accepts it. *)
  assert_all_ok (E.preflight { params with switch_to = None });
  match E.run { params with duration_ms = 50.0 } with
  | exception E.Preflight_failure reports ->
    let r = behaviour_report reports in
    check Alcotest.bool "behavioural report is the failing one" false
      r.Report.ok;
    check Alcotest.bool "raised before any message was sent" true
      (r.Report.checked > 0)
  | result ->
    Alcotest.failf "expected Preflight_failure, ran and sent %d" result.E.sent

(* ------------------------------------------------------------------ *)
(* JSON export                                                        *)
(* ------------------------------------------------------------------ *)

let test_to_json_round_trip () =
  let reports = verify ~updates:[ Dpu_core.Variants.ct ] SB.default_profile in
  let json = C.to_json reports in
  let module J = Dpu_obs.Json in
  match J.of_string (J.to_string json) with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok parsed ->
    check Alcotest.(option string) "schema" (Some "dpu.analysis/2")
      (Option.bind (J.member parsed "schema") J.to_string_opt);
    check Alcotest.(option int) "schema version" (Some 2)
      (Option.bind (J.member parsed "schema_version") J.to_int_opt);
    (match J.member parsed "ok" with
    | Some (J.Bool true) -> ()
    | _ -> Alcotest.fail "top-level ok must be true");
    (match Option.bind (J.member parsed "reports") J.to_list_opt with
    | Some l -> check Alcotest.int "five properties" 5 (List.length l)
    | None -> Alcotest.fail "reports array missing");
    (* The verdicts parse back losslessly. *)
    (match C.of_json parsed with
    | Error e -> Alcotest.failf "of_json rejected own output: %s" e
    | Ok back ->
      check Alcotest.int "same report count" (List.length reports)
        (List.length back);
      List.iter2
        (fun (a : Report.t) (b : Report.t) ->
          check Alcotest.string "property" a.Report.property b.Report.property;
          check Alcotest.bool "ok" a.Report.ok b.Report.ok;
          check Alcotest.int "checked" a.Report.checked b.Report.checked;
          check
            Alcotest.(list string)
            "violations" a.Report.violations b.Report.violations)
        reports back)

(* Satellite: verdict files written by the PR4-era tool (schema
   [dpu.analysis/1]: no [schema_version], four properties) must still
   parse. The blob is a frozen fixture, not regenerated output. *)
let v1_fixture_blob =
  {|{"schema": "dpu.analysis/1", "ok": false, "reports": [
     {"property": "static strong stack-well-formedness", "ok": true,
      "checked": 18, "violations": []},
     {"property": "acyclic provider chains", "ok": true,
      "checked": 12, "violations": []},
     {"property": "unique service binding", "ok": true,
      "checked": 9, "violations": []},
     {"property": "update-plan safety", "ok": false, "checked": 4,
      "violations": ["changeABcast target abcast.nope is not registered"]}]}|}

let test_of_json_v1_fixture () =
  let module J = Dpu_obs.Json in
  match J.of_string v1_fixture_blob with
  | Error e -> Alcotest.failf "fixture does not parse as JSON: %s" e
  | Ok json -> (
    match C.of_json json with
    | Error e -> Alcotest.failf "v1 fixture rejected: %s" e
    | Ok reports ->
      check Alcotest.int "four properties (no behavioural report in v1)" 4
        (List.length reports);
      check Alcotest.bool "overall verdict preserved" false
        (Report.all_ok reports);
      let r = report_named reports "update-plan safety" in
      check Alcotest.bool "failing report reconstructed" false r.Report.ok;
      check
        Alcotest.(list string)
        "violation text preserved"
        [ "changeABcast target abcast.nope is not registered" ]
        r.Report.violations;
      check Alcotest.int "checked preserved" 4 r.Report.checked)

let test_of_json_rejects_unknown_schema () =
  let module J = Dpu_obs.Json in
  let blob = {|{"schema": "dpu.analysis/9", "ok": true, "reports": []}|} in
  (match J.of_string blob with
  | Ok json -> (
    match C.of_json json with
    | Error e ->
      check Alcotest.bool "error names the schema" true
        (has_sub ~sub:"dpu.analysis/9" e)
    | Ok _ -> Alcotest.fail "unknown schema must be rejected")
  | Error e -> Alcotest.failf "blob does not parse: %s" e);
  match J.of_string {|{"ok": true, "reports": []}|} with
  | Ok json -> (
    match C.of_json json with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "missing schema must be rejected")
  | Error e -> Alcotest.failf "blob does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Determinism lint                                                   *)
(* ------------------------------------------------------------------ *)

(* Build hazard lines by concatenation so this test file never trips
   the lint itself. *)
let hazard rule =
  match rule with
  | "hashtbl-iter" -> "  Hashtbl." ^ "iter (fun k v -> send k v) tbl"
  | "poly-compare" -> "  List.sort " ^ "compare xs"
  | "random" -> "  let x = Rand" ^ "om.int 6 in"
  | "wall-clock" -> "  let t = Unix.get" ^ "timeofday () in"
  | "marshal" -> "  Mar" ^ "shal.to_string v []"
  | "unix-io" -> "  let fd = Unix." ^ "socket PF_INET SOCK_DGRAM 0 in"
  | "unsafe-bytes" -> "  let s = Bytes.un" ^ "safe_to_string buf in"
  | "spec-opaque" -> "  let s = Spec." ^ "opaque ~service reason in"
  | r -> Alcotest.failf "unknown rule %s" r

let scan_lines ?(file = "lib/fake/test_input.ml") lines =
  L.scan_source ~file (String.concat "\n" lines)

let test_each_rule_fires () =
  List.iter
    (fun (r : L.rule) ->
      let findings = scan_lines [ hazard r.L.r_id ] in
      check Alcotest.bool (r.L.r_id ^ " fires") true
        (List.exists (fun f -> f.L.f_rule = r.L.r_id) findings))
    L.rules

let test_clean_code_no_findings () =
  check Alcotest.int "clean snippet" 0
    (List.length
       (scan_lines
          [
            "let xs = List.sort Int.compare xs";
            "let h = String.hash s";
            "let t = Sim.now sim";
          ]))

let test_suppression_needs_reason () =
  let allow = "(* dpu-lint: " ^ "allow hashtbl-iter — folded then sorted *)" in
  let allow_no_reason = "(* dpu-lint: " ^ "allow hashtbl-iter *)" in
  check Alcotest.int "reasoned suppression silences" 0
    (List.length (scan_lines [ hazard "hashtbl-iter" ^ " " ^ allow ]));
  check Alcotest.int "bare suppression does not" 1
    (List.length (scan_lines [ hazard "hashtbl-iter" ^ " " ^ allow_no_reason ]))

let test_suppression_previous_line () =
  let allow = "(* dpu-lint: " ^ "allow wall-clock — telemetry only *)" in
  check Alcotest.int "previous-line suppression" 0
    (List.length (scan_lines [ allow; hazard "wall-clock" ]));
  check Alcotest.int "two lines above is too far" 1
    (List.length (scan_lines [ allow; ""; hazard "wall-clock" ]))

let test_suppression_wrong_rule () =
  let allow = "(* dpu-lint: " ^ "allow random — not the right rule *)" in
  check Alcotest.int "wrong rule id does not silence" 1
    (List.length (scan_lines [ allow; hazard "wall-clock" ]))

let test_comments_and_strings_ignored () =
  check Alcotest.int "commented-out hazard" 0
    (List.length (scan_lines [ "(* " ^ hazard "hashtbl-iter" ^ " *)" ]));
  check Alcotest.int "hazard inside a string literal" 0
    (List.length (scan_lines [ "let doc = \"" ^ String.trim (hazard "marshal") ^ "\"" ]));
  check Alcotest.int "nested comment" 0
    (List.length (scan_lines [ "(* outer (* " ^ hazard "random" ^ " *) still out *)" ]))

let test_word_boundary () =
  check Alcotest.int "longer identifier does not match" 0
    (List.length (scan_lines [ "  List.sort " ^ "compare_cycles cycles" ]))

let test_file_exemptions () =
  check Alcotest.int "rng.ml may use Random" 0
    (List.length (scan_lines ~file:"lib/engine/rng.ml" [ hazard "random" ]));
  check Alcotest.int "sweep.ml may use Marshal" 0
    (List.length (scan_lines ~file:"lib/workload/sweep.ml" [ hazard "marshal" ]));
  check Alcotest.int "elsewhere Random is flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "random" ]))

(* The live backend is directory-exempt from wall-clock and unix-io —
   and from nothing else, nowhere else. *)
let test_dir_exemptions () =
  let live = "lib/live/udp_transport.ml" in
  check Alcotest.int "lib/live may read the wall clock" 0
    (List.length (scan_lines ~file:live [ hazard "wall-clock" ]));
  check Alcotest.int "lib/live may open sockets" 0
    (List.length (scan_lines ~file:live [ hazard "unix-io" ]));
  check Alcotest.int "lib/live is not exempt from other rules" 1
    (List.length (scan_lines ~file:live [ hazard "random" ]));
  (* The exemption is scoped to the directory: the same hazards in the
     engine or a protocol module still fire. *)
  check Alcotest.int "engine wall-clock still flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "wall-clock" ]));
  check Alcotest.int "engine socket IO still flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "unix-io" ]));
  check Alcotest.int "protocols wall-clock still flagged" 1
    (List.length (scan_lines ~file:"lib/protocols/rp2p.ml" [ hazard "wall-clock" ]));
  check Alcotest.int "protocols socket IO still flagged" 1
    (List.length (scan_lines ~file:"lib/protocols/rp2p.ml" [ hazard "unix-io" ]));
  (* A path that merely mentions live outside lib/ gets no pass. *)
  check Alcotest.int "name alone is not enough" 1
    (List.length (scan_lines ~file:"lib/enginelive/x.ml" [ hazard "unix-io" ]))

(* The zero-copy wire path gets no blanket pass: every unchecked byte
   access — even in Wire itself — needs a reasoned per-line allow. *)
let test_unsafe_bytes_has_no_exemptions () =
  List.iter
    (fun file ->
      check Alcotest.int (file ^ " flagged") 1
        (List.length (scan_lines ~file [ hazard "unsafe-bytes" ])))
    [ "lib/kernel/wire.ml"; "lib/live/udp_transport.ml"; "lib/kernel/payload.ml" ];
  let allow = "(* dpu-lint: " ^ "allow unsafe-bytes — read-only view *)" in
  check Alcotest.int "reasoned allow silences" 0
    (List.length
       (scan_lines ~file:"lib/kernel/wire.ml" [ allow; hazard "unsafe-bytes" ]));
  (* All the unchecked accessors fire, not just the one in the tree. *)
  List.iter
    (fun frag ->
      check Alcotest.int (frag ^ " variant fires") 1
        (List.length (scan_lines [ "  ignore (Bytes.un" ^ "safe_" ^ frag ^ " b)" ])))
    [ "get"; "set"; "of_string" ]

(* The structural pass: a [Registry.register] call that passes no
   [~spec] anywhere in the call site (satellite: no silent opacity).
   Lines are built by concatenation like the substring hazards. *)
let register_line =
  "  Registry.regi" ^ "ster reg ~name:\"x\" ~provides:[ svc ]"

let spec_line = "    ~sp" ^ "ec:(Spec.make ~service:\"svc.x\" ())"

let registry_spec_findings lines =
  List.filter
    (fun f -> f.L.f_rule = "registry-" ^ "spec")
    (scan_lines lines)

let test_registry_spec_fires () =
  match registry_spec_findings [ register_line; "    factory" ] with
  | [ f ] ->
    check Alcotest.int "flagged at the call line" 1 f.L.f_line;
    check Alcotest.bool "message mentions the fix" true
      (has_sub ~sub:"~sp" f.L.f_message || has_sub ~sub:"spec" f.L.f_message)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_registry_spec_satisfied_nearby () =
  check Alcotest.int "spec on the same line" 0
    (List.length (registry_spec_findings [ register_line ^ " " ^ String.trim spec_line ]));
  check Alcotest.int "spec a few lines below" 0
    (List.length
       (registry_spec_findings [ register_line; "    ~requires:[]"; spec_line ]));
  (* The window is bounded: a ~spec that belongs to some later
     expression does not excuse the call. *)
  let far_spec = List.init 13 (fun _ -> "    (* gap *)") @ [ spec_line ] in
  check Alcotest.int "spec beyond the window does not count" 1
    (List.length (registry_spec_findings (register_line :: far_spec)))

let test_registry_spec_suppressible () =
  let allow =
    "(* dpu-lint: " ^ "allow registry-spec — wrapper registers on behalf *)"
  in
  let bare = "(* dpu-lint: " ^ "allow registry-spec *)" in
  check Alcotest.int "reasoned allow silences" 0
    (List.length (registry_spec_findings [ allow; register_line ]));
  check Alcotest.int "bare allow does not" 1
    (List.length (registry_spec_findings [ bare; register_line ]))

let test_line_numbers_and_text () =
  let findings = scan_lines [ "let a = 1"; hazard "poly-compare" ] in
  match findings with
  | [ f ] ->
    check Alcotest.int "line number" 2 f.L.f_line;
    check Alcotest.bool "text excerpt trimmed" true
      (has_sub ~sub:"List.sort" f.L.f_text && not (String.length f.L.f_text = 0))
  | _ -> Alcotest.failf "expected exactly one finding, got %d" (List.length findings)

(* The tree itself must stay lint-clean (satellite: self-clean). Dune
   copies the sources into the build dir, so ../lib is scannable from
   the test's cwd. *)
let test_tree_is_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let findings = L.scan_paths [ "../lib" ] in
    if findings <> [] then
      Alcotest.failf "lint findings in lib:@.%s"
        (String.concat "\n"
           (List.map (fun f -> Format.asprintf "%a" L.pp_finding f) findings))
  end

let test_lint_json () =
  let findings = scan_lines [ hazard "random" ] in
  let module J = Dpu_obs.Json in
  match J.of_string (J.to_string (L.to_json findings)) with
  | Error e -> Alcotest.failf "lint JSON does not parse: %s" e
  | Ok parsed ->
    (match J.member parsed "ok" with
    | Some (J.Bool false) -> ()
    | _ -> Alcotest.fail "ok must be false with findings");
    check Alcotest.(option int) "count" (Some 1)
      (Option.bind (J.member parsed "count") J.to_int_opt)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "analysis"
    [
      ( "composition-ok",
        [
          tc "default profile" test_default_profile_ok;
          tc "all approaches" test_all_approach_layers_ok;
          tc "consensus layer" test_consensus_layer_ok;
          tc "gm profile" test_gm_profile_ok;
          tc "every initial variant" test_every_initial_variant_ok;
        ] );
      ( "composition-violations",
        [
          tc "missing provider named" test_missing_provider_named;
          tc "unknown root named" test_unknown_root_named;
          tc "declared cycle flagged" test_declared_cycle_flagged;
          tc "cycle closing edge" test_cycle_closing_edge;
          tc "duplicate binding" test_duplicate_binding;
        ] );
      ( "update-safety",
        [
          tc "ct->seq ok" test_update_ok_ct_to_seq;
          tc "unregistered target" test_update_to_unregistered;
          tc "drops service" test_update_drops_service;
          tc "no layer" test_update_without_layer;
          tc "post-swap unresolvable" test_update_post_swap_unresolvable;
          tc "direct-caller bypass" test_update_direct_caller_bypass;
          tc "consensus impl missing" test_consensus_update_missing_impl;
        ] );
      ( "behaviour",
        [
          tc "unfold1 shapes" test_unfold1_shapes;
          tc "check_pair discharge" test_check_pair_buffer_discharges;
          tc "variant matrix safe" test_behaviour_matrix_all_safe;
          tc "no buffer rejected" test_behaviour_no_buffer_rejected;
          tc "missing spec flagged" test_behaviour_missing_spec_flagged;
          tc "opaque spec flagged" test_behaviour_opaque_spec_flagged;
        ] );
      ( "static-vs-dynamic",
        [
          tc "liar cycle" test_liar_cycle_static_eq_dynamic;
          tc "missing provider" test_missing_provider_static_eq_dynamic;
          tc "clean build trace" test_static_ok_matches_dynamic_trace;
          slow "safe pairs survive the swap" test_safe_pairs_static_eq_dynamic;
          slow "unsafe pair has a violating schedule"
            test_unsafe_pair_static_eq_dynamic;
        ] );
      ( "registry",
        [
          tc "introspection" test_registry_introspection;
          tc "canonical cycle" test_canonical_cycle;
        ] );
      ( "preflight",
        [
          tc "accepts default" test_preflight_accepts_default;
          tc "rejects bad swap" test_preflight_rejects_bad_swap;
          tc "rejects unsafe behaviour" test_preflight_rejects_unsafe_behaviour;
        ] );
      ( "json",
        [
          tc "round trip" test_to_json_round_trip;
          tc "v1 fixture parses" test_of_json_v1_fixture;
          tc "unknown schema rejected" test_of_json_rejects_unknown_schema;
        ] );
      ( "lint",
        [
          tc "each rule fires" test_each_rule_fires;
          tc "clean code" test_clean_code_no_findings;
          tc "suppression needs reason" test_suppression_needs_reason;
          tc "previous-line suppression" test_suppression_previous_line;
          tc "wrong rule id" test_suppression_wrong_rule;
          tc "comments and strings" test_comments_and_strings_ignored;
          tc "word boundary" test_word_boundary;
          tc "file exemptions" test_file_exemptions;
          tc "directory exemptions" test_dir_exemptions;
          tc "unsafe-bytes has no exemptions" test_unsafe_bytes_has_no_exemptions;
          tc "registry-spec fires" test_registry_spec_fires;
          tc "registry-spec satisfied nearby" test_registry_spec_satisfied_nearby;
          tc "registry-spec suppressible" test_registry_spec_suppressible;
          tc "line numbers" test_line_numbers_and_text;
          tc "tree is clean" test_tree_is_clean;
          tc "lint json" test_lint_json;
        ] );
    ]
