(* Tests for the static analysis pass: the composition verifier
   (Dpu_analysis.Composition) against registries and plans crafted to
   violate each property, its agreement with the dynamic machinery
   (Registry.instantiate, Stack_props over a real trace), and the
   determinism lint (Dpu_analysis.Lint). *)

open Dpu_kernel
module C = Dpu_analysis.Composition
module L = Dpu_analysis.Lint
module SB = Dpu_core.Stack_builder
module RC = Dpu_core.Repl_consensus
module E = Dpu_workload.Experiment
module Report = Dpu_props.Report

let check = Alcotest.check

let has_sub ~sub s =
  let ls = String.length sub and lv = String.length s in
  let rec go i = i + ls <= lv && (String.sub s i ls = sub || go (i + 1)) in
  go 0

let report_named reports property =
  match List.find_opt (fun (r : Report.t) -> r.property = property) reports with
  | Some r -> r
  | None -> Alcotest.failf "no report named %S" property

let assert_all_ok reports =
  if not (Report.all_ok reports) then
    Alcotest.failf "expected all ok:@.%a" (Format.pp_print_list Report.pp) reports

let some_violation_mentions reports property sub =
  let r = report_named reports property in
  check Alcotest.bool (property ^ " fails") false r.Report.ok;
  check Alcotest.bool
    (Printf.sprintf "a %s violation mentions %S" property sub)
    true
    (List.exists (has_sub ~sub) r.Report.violations)

(* A populated registry exactly as [dpu_run] sees it. *)
let registry_for ?(n = 3) profile =
  let system = System.create ~n () in
  let register_extra system =
    Dpu_baselines.Maestro.register system;
    Dpu_baselines.Graceful.register system
  in
  SB.register_protocols ~register_extra ~profile system;
  System.registry system

let verify ?updates ?consensus_updates profile =
  C.verify_profile
    ~registry:(registry_for profile)
    ?updates ?consensus_updates profile

(* ------------------------------------------------------------------ *)
(* Shipped configurations verify                                      *)
(* ------------------------------------------------------------------ *)

let test_default_profile_ok () =
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.ct ] SB.default_profile)

let test_all_approach_layers_ok () =
  List.iter
    (fun layer ->
      assert_all_ok
        (verify ~updates:[ Dpu_core.Variants.sequencer ]
           { SB.default_profile with layer = Some layer }))
    [
      Dpu_core.Repl.protocol_name;
      Dpu_baselines.Maestro.protocol_name;
      Dpu_baselines.Graceful.protocol_name;
    ];
  assert_all_ok (verify { SB.default_profile with layer = None })

let test_consensus_layer_ok () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  assert_all_ok
    (verify
       ~consensus_updates:[ Dpu_protocols.Consensus_paxos.protocol_name ]
       profile)

let test_gm_profile_ok () =
  assert_all_ok (verify { SB.default_profile with with_gm = true })

let test_every_initial_variant_ok () =
  List.iter
    (fun initial ->
      assert_all_ok
        (verify ~updates:[ Dpu_core.Variants.ct ]
           { SB.default_profile with initial_abcast = initial }))
    Dpu_core.Variants.all

(* ------------------------------------------------------------------ *)
(* Well-formedness violations                                         *)
(* ------------------------------------------------------------------ *)

let dummy_factory ~name ~provides ~requires stack =
  Stack.add_module stack ~name ~provides ~requires (fun _ _ ->
      Stack.default_handlers)

let empty_plan =
  {
    C.prebound = [];
    roots = [];
    passive = [];
    named = [];
    updates = [];
    consensus_updates = [];
    layer = None;
  }

let test_missing_provider_named () =
  let reg = Registry.create () in
  let sx = Service.make "svc.x" in
  Registry.register reg ~name:"a" ~provides:[ Service.make "svc.a" ]
    ~requires:[ sx ]
    (dummy_factory ~name:"a" ~provides:[ Service.make "svc.a" ] ~requires:[ sx ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "a" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "svc.x";
  some_violation_mentions reports "static strong stack-well-formedness" "a"

let test_unknown_root_named () =
  let reports =
    C.verify ~registry:(Registry.create ())
      { empty_plan with roots = [ C.By_name "ghost" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "ghost"

(* An honest declared cycle builds dynamically (binding-before-recursion)
   but the conservative static check must still flag it. *)
let test_declared_cycle_flagged () =
  let reg = Registry.create () in
  let sa = Service.make "svc.a" and sb = Service.make "svc.b" in
  Registry.register reg ~name:"cyc.a" ~provides:[ sa ] ~requires:[ sb ]
    (dummy_factory ~name:"cyc.a" ~provides:[ sa ] ~requires:[ sb ]);
  Registry.register reg ~name:"cyc.b" ~provides:[ sb ] ~requires:[ sa ]
    (dummy_factory ~name:"cyc.b" ~provides:[ sb ] ~requires:[ sa ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "cyc.a" ] }
  in
  (* The dynamic build terminates... *)
  let sim = Dpu_engine.Sim.create () in
  let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
  ignore (Registry.instantiate reg stack ~name:"cyc.a" : Stack.module_);
  check Alcotest.bool "dynamic build succeeds" true (Stack.has_module stack ~name:"cyc.b");
  (* ...yet the static verdict is a cycle, in canonical form. *)
  some_violation_mentions reports "acyclic provider chains"
    (String.concat " -> " (Registry.canonical_cycle [ "cyc.a"; "cyc.b" ]))

let test_duplicate_binding () =
  let reg = Registry.create () in
  let s = Service.make "svc.shared" in
  List.iter
    (fun name ->
      Registry.register reg ~name ~provides:[ s ]
        (dummy_factory ~name ~provides:[ s ] ~requires:[]))
    [ "dup.a"; "dup.b" ];
  let reports =
    C.verify ~registry:reg
      { empty_plan with roots = [ C.By_name "dup.a"; C.By_name "dup.b" ] }
  in
  some_violation_mentions reports "unique service binding" "svc.shared";
  some_violation_mentions reports "unique service binding" "dup.b"

(* ------------------------------------------------------------------ *)
(* Update-plan safety                                                 *)
(* ------------------------------------------------------------------ *)

let test_update_ok_ct_to_seq () =
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.sequencer ] SB.default_profile)

let test_update_to_unregistered () =
  let reports = verify ~updates:[ "abcast.nope" ] SB.default_profile in
  some_violation_mentions reports "update-plan safety" "abcast.nope"

let test_update_drops_service () =
  (* Swapping the ABcast variant for a consensus implementation drops
     the abcast service its callers rely on. *)
  let profile = { SB.default_profile with initial_abcast = Dpu_core.Variants.sequencer } in
  let reports =
    verify ~updates:[ Dpu_protocols.Consensus_ct.protocol_name ] profile
  in
  some_violation_mentions reports "update-plan safety" "drops service abcast"

let test_update_without_layer () =
  let profile = { SB.default_profile with layer = None } in
  let reports = verify ~updates:[ Dpu_core.Variants.ct ] profile in
  some_violation_mentions reports "update-plan safety" "no replacement layer"

let test_update_post_swap_unresolvable () =
  let profile = SB.default_profile in
  let system = System.create ~n:3 () in
  SB.register_protocols ~profile system;
  let reg = System.registry system in
  let ghost = Service.make "svc.ghost" in
  Registry.register reg ~name:"abcast.fake"
    ~provides:[ Service.abcast ] ~requires:[ ghost ]
    (dummy_factory ~name:"abcast.fake" ~provides:[ Service.abcast ] ~requires:[ ghost ]);
  let reports = C.verify_profile ~registry:reg ~updates:[ "abcast.fake" ] profile in
  some_violation_mentions reports "update-plan safety" "svc.ghost"

let test_update_direct_caller_bypass () =
  let profile = SB.default_profile in
  let system = System.create ~n:3 () in
  SB.register_protocols ~profile system;
  let reg = System.registry system in
  (* A planned module that calls [abcast] directly, bypassing the
     replacement layer: its calls cannot be intercepted by the swap. *)
  Registry.register reg ~name:"app.direct" ~provides:[]
    ~requires:[ Service.abcast ]
    (dummy_factory ~name:"app.direct" ~provides:[] ~requires:[ Service.abcast ]);
  let plan = C.plan_of_profile ~updates:[ Dpu_core.Variants.sequencer ] profile in
  let plan = { plan with C.roots = plan.C.roots @ [ C.By_name "app.direct" ] } in
  let reports = C.verify ~registry:reg plan in
  some_violation_mentions reports "update-plan safety" "app.direct"

let test_consensus_update_missing_impl () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  let reports = verify ~consensus_updates:[ "consensus.nope" ] profile in
  some_violation_mentions reports "update-plan safety" "consensus.nope"

(* ------------------------------------------------------------------ *)
(* Static verdict vs dynamic behaviour                                *)
(* ------------------------------------------------------------------ *)

(* A "liar" registration declares provides it never binds: the dynamic
   resolver re-enters the protocol and must raise the same canonical
   cycle the static pass reports. *)
let test_liar_cycle_static_eq_dynamic () =
  let reg = Registry.create () in
  let sa = Service.make "svc.a" and sb = Service.make "svc.b" in
  (* Factories add modules providing nothing, so nothing ever binds and
     resolution recurses. *)
  Registry.register reg ~name:"liar.a" ~provides:[ sa ] ~requires:[ sb ]
    (dummy_factory ~name:"liar.a" ~provides:[] ~requires:[ sb ]);
  Registry.register reg ~name:"liar.b" ~provides:[ sb ] ~requires:[ sa ]
    (dummy_factory ~name:"liar.b" ~provides:[] ~requires:[ sa ]);
  let dynamic_cycle =
    let sim = Dpu_engine.Sim.create () in
    let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
    match Registry.instantiate reg stack ~name:"liar.a" with
    | exception Registry.Cyclic_requires cycle -> cycle
    | _ -> Alcotest.fail "expected Cyclic_requires"
  in
  check
    Alcotest.(list string)
    "dynamic cycle canonical" (Registry.canonical_cycle [ "liar.a"; "liar.b" ])
    dynamic_cycle;
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "liar.a" ] }
  in
  some_violation_mentions reports "acyclic provider chains"
    (String.concat " -> " dynamic_cycle)

let test_missing_provider_static_eq_dynamic () =
  let reg = Registry.create () in
  let sx = Service.make "svc.x" in
  Registry.register reg ~name:"needy" ~provides:[ Service.make "svc.n" ]
    ~requires:[ sx ]
    (dummy_factory ~name:"needy" ~provides:[ Service.make "svc.n" ] ~requires:[ sx ]);
  let reports =
    C.verify ~registry:reg { empty_plan with roots = [ C.By_name "needy" ] }
  in
  some_violation_mentions reports "static strong stack-well-formedness" "svc.x";
  let sim = Dpu_engine.Sim.create () in
  let stack = Stack.create ~clock:(Dpu_runtime.Sim_backend.clock sim) ~node:0 ~trace:(Trace.create ()) () in
  match Registry.instantiate reg stack ~name:"needy" with
  | exception Registry.No_provider svc ->
    check Alcotest.string "same service" "svc.x" (Service.name svc)
  | _ -> Alcotest.fail "expected No_provider"

(* Static OK must coincide with a dynamically well-formed build: build
   the verified profile for real and replay the trace checkers. *)
let test_static_ok_matches_dynamic_trace () =
  let profile = SB.default_profile in
  assert_all_ok (verify ~updates:[ Dpu_core.Variants.ct ] profile);
  let system = System.create ~n:3 ~trace_enabled:true () in
  SB.build ~profile system;
  (* Bounded: the stack keeps periodic timers (fd heartbeats) alive. *)
  System.run_until system 200.0;
  let trace = System.trace system in
  let wf = Dpu_props.Stack_props.weak_stack_well_formedness trace in
  check Alcotest.bool "dynamic weak WF" true wf.Report.ok

(* ------------------------------------------------------------------ *)
(* Registry introspection (satellites 1-2)                            *)
(* ------------------------------------------------------------------ *)

let test_registry_introspection () =
  let reg = registry_for SB.default_profile in
  (match Registry.requires_of reg ~name:Dpu_core.Variants.ct with
  | Some requires ->
    check Alcotest.bool "abcast.ct requires consensus" true
      (List.exists (Service.equal Service.consensus) requires)
  | None -> Alcotest.fail "abcast.ct not registered");
  (match Registry.provides_of reg ~name:Dpu_core.Variants.ct with
  | Some provides ->
    check Alcotest.bool "abcast.ct provides abcast" true
      (List.exists (Service.equal Service.abcast) provides)
  | None -> Alcotest.fail "abcast.ct not registered");
  check Alcotest.bool "unknown name" true
    (Registry.provides_of reg ~name:"ghost" = None
    && Registry.requires_of reg ~name:"ghost" = None)

let test_canonical_cycle () =
  check
    Alcotest.(list string)
    "rotated to smallest first" [ "a"; "c"; "b" ]
    (Registry.canonical_cycle [ "b"; "a"; "c" ]);
  check Alcotest.(list string) "empty" [] (Registry.canonical_cycle [])

(* ------------------------------------------------------------------ *)
(* Experiment preflight                                               *)
(* ------------------------------------------------------------------ *)

let test_preflight_accepts_default () =
  assert_all_ok (E.preflight E.default)

let test_preflight_rejects_bad_swap () =
  let params =
    {
      E.default with
      initial = Dpu_core.Variants.sequencer;
      switch_to = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  check Alcotest.bool "preflight fails" false
    (Report.all_ok (E.preflight params));
  match E.run { params with duration_ms = 50.0 } with
  | exception E.Preflight_failure reports ->
    check Alcotest.bool "carries failing reports" false (Report.all_ok reports)
  | _ -> Alcotest.fail "expected Preflight_failure"

(* ------------------------------------------------------------------ *)
(* JSON export                                                        *)
(* ------------------------------------------------------------------ *)

let test_to_json_round_trip () =
  let reports = verify ~updates:[ Dpu_core.Variants.ct ] SB.default_profile in
  let json = C.to_json reports in
  let module J = Dpu_obs.Json in
  match J.of_string (J.to_string json) with
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  | Ok parsed ->
    check Alcotest.(option string) "schema" (Some "dpu.analysis/1")
      (Option.bind (J.member parsed "schema") J.to_string_opt);
    (match J.member parsed "ok" with
    | Some (J.Bool true) -> ()
    | _ -> Alcotest.fail "top-level ok must be true");
    (match Option.bind (J.member parsed "reports") J.to_list_opt with
    | Some l -> check Alcotest.int "four properties" 4 (List.length l)
    | None -> Alcotest.fail "reports array missing")

(* ------------------------------------------------------------------ *)
(* Determinism lint                                                   *)
(* ------------------------------------------------------------------ *)

(* Build hazard lines by concatenation so this test file never trips
   the lint itself. *)
let hazard rule =
  match rule with
  | "hashtbl-iter" -> "  Hashtbl." ^ "iter (fun k v -> send k v) tbl"
  | "poly-compare" -> "  List.sort " ^ "compare xs"
  | "random" -> "  let x = Rand" ^ "om.int 6 in"
  | "wall-clock" -> "  let t = Unix.get" ^ "timeofday () in"
  | "marshal" -> "  Mar" ^ "shal.to_string v []"
  | "unix-io" -> "  let fd = Unix." ^ "socket PF_INET SOCK_DGRAM 0 in"
  | "unsafe-bytes" -> "  let s = Bytes.un" ^ "safe_to_string buf in"
  | r -> Alcotest.failf "unknown rule %s" r

let scan_lines ?(file = "lib/fake/test_input.ml") lines =
  L.scan_source ~file (String.concat "\n" lines)

let test_each_rule_fires () =
  List.iter
    (fun (r : L.rule) ->
      let findings = scan_lines [ hazard r.L.r_id ] in
      check Alcotest.bool (r.L.r_id ^ " fires") true
        (List.exists (fun f -> f.L.f_rule = r.L.r_id) findings))
    L.rules

let test_clean_code_no_findings () =
  check Alcotest.int "clean snippet" 0
    (List.length
       (scan_lines
          [
            "let xs = List.sort Int.compare xs";
            "let h = String.hash s";
            "let t = Sim.now sim";
          ]))

let test_suppression_needs_reason () =
  let allow = "(* dpu-lint: " ^ "allow hashtbl-iter — folded then sorted *)" in
  let allow_no_reason = "(* dpu-lint: " ^ "allow hashtbl-iter *)" in
  check Alcotest.int "reasoned suppression silences" 0
    (List.length (scan_lines [ hazard "hashtbl-iter" ^ " " ^ allow ]));
  check Alcotest.int "bare suppression does not" 1
    (List.length (scan_lines [ hazard "hashtbl-iter" ^ " " ^ allow_no_reason ]))

let test_suppression_previous_line () =
  let allow = "(* dpu-lint: " ^ "allow wall-clock — telemetry only *)" in
  check Alcotest.int "previous-line suppression" 0
    (List.length (scan_lines [ allow; hazard "wall-clock" ]));
  check Alcotest.int "two lines above is too far" 1
    (List.length (scan_lines [ allow; ""; hazard "wall-clock" ]))

let test_suppression_wrong_rule () =
  let allow = "(* dpu-lint: " ^ "allow random — not the right rule *)" in
  check Alcotest.int "wrong rule id does not silence" 1
    (List.length (scan_lines [ allow; hazard "wall-clock" ]))

let test_comments_and_strings_ignored () =
  check Alcotest.int "commented-out hazard" 0
    (List.length (scan_lines [ "(* " ^ hazard "hashtbl-iter" ^ " *)" ]));
  check Alcotest.int "hazard inside a string literal" 0
    (List.length (scan_lines [ "let doc = \"" ^ String.trim (hazard "marshal") ^ "\"" ]));
  check Alcotest.int "nested comment" 0
    (List.length (scan_lines [ "(* outer (* " ^ hazard "random" ^ " *) still out *)" ]))

let test_word_boundary () =
  check Alcotest.int "longer identifier does not match" 0
    (List.length (scan_lines [ "  List.sort " ^ "compare_cycles cycles" ]))

let test_file_exemptions () =
  check Alcotest.int "rng.ml may use Random" 0
    (List.length (scan_lines ~file:"lib/engine/rng.ml" [ hazard "random" ]));
  check Alcotest.int "sweep.ml may use Marshal" 0
    (List.length (scan_lines ~file:"lib/workload/sweep.ml" [ hazard "marshal" ]));
  check Alcotest.int "elsewhere Random is flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "random" ]))

(* The live backend is directory-exempt from wall-clock and unix-io —
   and from nothing else, nowhere else. *)
let test_dir_exemptions () =
  let live = "lib/live/udp_transport.ml" in
  check Alcotest.int "lib/live may read the wall clock" 0
    (List.length (scan_lines ~file:live [ hazard "wall-clock" ]));
  check Alcotest.int "lib/live may open sockets" 0
    (List.length (scan_lines ~file:live [ hazard "unix-io" ]));
  check Alcotest.int "lib/live is not exempt from other rules" 1
    (List.length (scan_lines ~file:live [ hazard "random" ]));
  (* The exemption is scoped to the directory: the same hazards in the
     engine or a protocol module still fire. *)
  check Alcotest.int "engine wall-clock still flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "wall-clock" ]));
  check Alcotest.int "engine socket IO still flagged" 1
    (List.length (scan_lines ~file:"lib/engine/sim.ml" [ hazard "unix-io" ]));
  check Alcotest.int "protocols wall-clock still flagged" 1
    (List.length (scan_lines ~file:"lib/protocols/rp2p.ml" [ hazard "wall-clock" ]));
  check Alcotest.int "protocols socket IO still flagged" 1
    (List.length (scan_lines ~file:"lib/protocols/rp2p.ml" [ hazard "unix-io" ]));
  (* A path that merely mentions live outside lib/ gets no pass. *)
  check Alcotest.int "name alone is not enough" 1
    (List.length (scan_lines ~file:"lib/enginelive/x.ml" [ hazard "unix-io" ]))

(* The zero-copy wire path gets no blanket pass: every unchecked byte
   access — even in Wire itself — needs a reasoned per-line allow. *)
let test_unsafe_bytes_has_no_exemptions () =
  List.iter
    (fun file ->
      check Alcotest.int (file ^ " flagged") 1
        (List.length (scan_lines ~file [ hazard "unsafe-bytes" ])))
    [ "lib/kernel/wire.ml"; "lib/live/udp_transport.ml"; "lib/kernel/payload.ml" ];
  let allow = "(* dpu-lint: " ^ "allow unsafe-bytes — read-only view *)" in
  check Alcotest.int "reasoned allow silences" 0
    (List.length
       (scan_lines ~file:"lib/kernel/wire.ml" [ allow; hazard "unsafe-bytes" ]));
  (* All the unchecked accessors fire, not just the one in the tree. *)
  List.iter
    (fun frag ->
      check Alcotest.int (frag ^ " variant fires") 1
        (List.length (scan_lines [ "  ignore (Bytes.un" ^ "safe_" ^ frag ^ " b)" ])))
    [ "get"; "set"; "of_string" ]

let test_line_numbers_and_text () =
  let findings = scan_lines [ "let a = 1"; hazard "poly-compare" ] in
  match findings with
  | [ f ] ->
    check Alcotest.int "line number" 2 f.L.f_line;
    check Alcotest.bool "text excerpt trimmed" true
      (has_sub ~sub:"List.sort" f.L.f_text && not (String.length f.L.f_text = 0))
  | _ -> Alcotest.failf "expected exactly one finding, got %d" (List.length findings)

(* The tree itself must stay lint-clean (satellite: self-clean). Dune
   copies the sources into the build dir, so ../lib is scannable from
   the test's cwd. *)
let test_tree_is_clean () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let findings = L.scan_paths [ "../lib" ] in
    if findings <> [] then
      Alcotest.failf "lint findings in lib:@.%s"
        (String.concat "\n"
           (List.map (fun f -> Format.asprintf "%a" L.pp_finding f) findings))
  end

let test_lint_json () =
  let findings = scan_lines [ hazard "random" ] in
  let module J = Dpu_obs.Json in
  match J.of_string (J.to_string (L.to_json findings)) with
  | Error e -> Alcotest.failf "lint JSON does not parse: %s" e
  | Ok parsed ->
    (match J.member parsed "ok" with
    | Some (J.Bool false) -> ()
    | _ -> Alcotest.fail "ok must be false with findings");
    check Alcotest.(option int) "count" (Some 1)
      (Option.bind (J.member parsed "count") J.to_int_opt)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "analysis"
    [
      ( "composition-ok",
        [
          tc "default profile" test_default_profile_ok;
          tc "all approaches" test_all_approach_layers_ok;
          tc "consensus layer" test_consensus_layer_ok;
          tc "gm profile" test_gm_profile_ok;
          tc "every initial variant" test_every_initial_variant_ok;
        ] );
      ( "composition-violations",
        [
          tc "missing provider named" test_missing_provider_named;
          tc "unknown root named" test_unknown_root_named;
          tc "declared cycle flagged" test_declared_cycle_flagged;
          tc "duplicate binding" test_duplicate_binding;
        ] );
      ( "update-safety",
        [
          tc "ct->seq ok" test_update_ok_ct_to_seq;
          tc "unregistered target" test_update_to_unregistered;
          tc "drops service" test_update_drops_service;
          tc "no layer" test_update_without_layer;
          tc "post-swap unresolvable" test_update_post_swap_unresolvable;
          tc "direct-caller bypass" test_update_direct_caller_bypass;
          tc "consensus impl missing" test_consensus_update_missing_impl;
        ] );
      ( "static-vs-dynamic",
        [
          tc "liar cycle" test_liar_cycle_static_eq_dynamic;
          tc "missing provider" test_missing_provider_static_eq_dynamic;
          tc "clean build trace" test_static_ok_matches_dynamic_trace;
        ] );
      ( "registry",
        [
          tc "introspection" test_registry_introspection;
          tc "canonical cycle" test_canonical_cycle;
        ] );
      ( "preflight",
        [
          tc "accepts default" test_preflight_accepts_default;
          tc "rejects bad swap" test_preflight_rejects_bad_swap;
        ] );
      ( "json", [ tc "round trip" test_to_json_round_trip ] );
      ( "lint",
        [
          tc "each rule fires" test_each_rule_fires;
          tc "clean code" test_clean_code_no_findings;
          tc "suppression needs reason" test_suppression_needs_reason;
          tc "previous-line suppression" test_suppression_previous_line;
          tc "wrong rule id" test_suppression_wrong_rule;
          tc "comments and strings" test_comments_and_strings_ignored;
          tc "word boundary" test_word_boundary;
          tc "file exemptions" test_file_exemptions;
          tc "directory exemptions" test_dir_exemptions;
          tc "unsafe-bytes has no exemptions" test_unsafe_bytes_has_no_exemptions;
          tc "line numbers" test_line_numbers_and_text;
          tc "tree is clean" test_tree_is_clean;
          tc "lint json" test_lint_json;
        ] );
    ]
