(* The live runtime backend: timer wheel semantics (on synthetic time —
   no wall clock involved), and the UDP transport loopback path with
   its envelope filtering. *)

open Dpu_kernel
module Clock = Dpu_runtime.Clock
module Wheel = Dpu_live.Timer_wheel

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                        *)
(* ------------------------------------------------------------------ *)

let test_wheel_fire_order () =
  let w = Wheel.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Wheel.add w ~now:0.0 ~delay:30.0 (note "c");
  Wheel.add w ~now:0.0 ~delay:10.0 (note "a");
  Wheel.add w ~now:0.0 ~delay:20.0 (note "b");
  Wheel.advance w ~now:5.0;
  check Alcotest.(list string) "nothing due yet" [] (List.rev !log);
  Wheel.advance w ~now:15.0;
  check Alcotest.(list string) "first due" [ "a" ] (List.rev !log);
  Wheel.advance w ~now:100.0;
  check Alcotest.(list string) "deadline order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "wheel drained" 0 (Wheel.pending w)

let test_wheel_same_deadline_fifo () =
  let w = Wheel.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Wheel.add w ~now:0.0 ~delay:10.0 (fun () -> log := i :: !log)
  done;
  Wheel.advance w ~now:50.0;
  check Alcotest.(list int) "insertion order at equal deadlines"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_wheel_cancellation () =
  let w = Wheel.create () in
  let fired = ref 0 in
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:10.0 ~timer:tm (fun () -> incr fired);
  Wheel.add w ~now:0.0 ~delay:10.0 (fun () -> incr fired);
  Clock.cancel tm;
  Wheel.advance w ~now:50.0;
  check Alcotest.int "cancelled entry skipped" 1 !fired

let test_wheel_far_slots () =
  (* Deadlines beyond slots * granularity must survive cursor wraps. *)
  let w = Wheel.create ~granularity_ms:1.0 ~slots:8 () in
  let fired = ref false in
  Wheel.add w ~now:0.0 ~delay:100.0 (fun () -> fired := true);
  Wheel.advance w ~now:99.0;
  check Alcotest.bool "not yet" false !fired;
  Wheel.advance w ~now:101.0;
  check Alcotest.bool "fires after wraps" true !fired

let test_wheel_rearm_not_same_pass () =
  let w = Wheel.create ~granularity_ms:1.0 () in
  let fired = ref 0 in
  let rec arm () =
    Wheel.add w ~now:10.0 ~delay:1.0 (fun () ->
        incr fired;
        arm ())
  in
  arm ();
  (* A positive-delay entry re-armed by its own callback must not fire
     again in the same pass, however far [now] advanced. *)
  Wheel.advance w ~now:1000.0;
  check Alcotest.int "one firing per pass" 1 !fired;
  Wheel.advance w ~now:2000.0;
  check Alcotest.int "next pass fires the re-arm" 2 !fired

let test_wheel_zero_delay_cascade () =
  let w = Wheel.create () in
  let log = ref [] in
  Wheel.add w ~now:0.0 ~delay:0.0 (fun () ->
      log := "outer" :: !log;
      Wheel.add w ~now:0.0 ~delay:0.0 (fun () -> log := "inner" :: !log));
  Wheel.advance w ~now:0.0;
  (* Same-instant cascades drain within one pass, like the simulator. *)
  check Alcotest.(list string) "cascade drained" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int "nothing pending" 0 (Wheel.pending w)

let test_wheel_next_deadline () =
  let w = Wheel.create () in
  check Alcotest.(option (float 0.0)) "empty" None (Wheel.next_deadline w);
  Wheel.add w ~now:0.0 ~delay:30.0 ignore;
  Wheel.add w ~now:0.0 ~delay:10.0 ignore;
  check Alcotest.(option (float 0.001)) "earliest" (Some 10.0) (Wheel.next_deadline w);
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:5.0 ~timer:tm ignore;
  Clock.cancel tm;
  check
    Alcotest.(option (float 0.001))
    "cancelled entries invisible" (Some 10.0) (Wheel.next_deadline w)

let test_wheel_cancel_discounts_pending () =
  let w = Wheel.create () in
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:10.0 ~timer:tm ignore;
  Wheel.add w ~now:0.0 ~delay:20.0 ignore;
  check Alcotest.int "both counted" 2 (Wheel.pending w);
  Clock.cancel tm;
  (* The scan observes the cancellation and takes the entry out of the
     count — no phantom work reported while the dead entry waits in a
     far slot for its sweep. *)
  ignore (Wheel.next_deadline w);
  check Alcotest.int "cancelled entry discounted" 1 (Wheel.pending w);
  ignore (Wheel.next_deadline w);
  check Alcotest.int "discounted exactly once" 1 (Wheel.pending w);
  Wheel.advance w ~now:50.0;
  check Alcotest.int "drained" 0 (Wheel.pending w)

let test_wheel_next_deadline_is_effective_fire_time () =
  (* Floor/tick clamping can push an entry past its nominal deadline;
     next_deadline must report when the entry will actually fire, or the
     node loop would wake early, see nothing due, and spin. *)
  let w = Wheel.create ~granularity_ms:1.0 () in
  Wheel.advance w ~now:5.0;
  let fired = ref false in
  Wheel.add w ~now:5.2 ~delay:0.3 (fun () -> fired := true);
  check
    Alcotest.(option (float 1e-9))
    "clamped to the filing tick" (Some 6.0) (Wheel.next_deadline w);
  Wheel.advance w ~now:5.6;
  check Alcotest.bool "nominal deadline passes without firing" false !fired;
  Wheel.advance w ~now:6.0;
  check Alcotest.bool "fires at the reported deadline" true !fired

(* ------------------------------------------------------------------ *)
(* UDP transport loopback                                             *)
(* ------------------------------------------------------------------ *)

let with_pair f =
  let mk () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    fd
  in
  let fd0 = mk () and fd1 = mk () in
  let peers = [| Unix.getsockname fd0; Unix.getsockname fd1 |] in
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd0;
      Unix.close fd1)
    (fun () -> f ~fd0 ~fd1 ~peers)

let await_readable fd =
  match Unix.select [ fd ] [] [] 5.0 with
  | [], _, _ -> Alcotest.fail "timed out waiting for a datagram"
  | _ -> ()

let msg = Dpu_core.App_msg.App (Msg.make ~origin:0 ~seq:7 ~size:32 "live")

let test_udp_loopback () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let got = ref [] in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src p -> got := (src, Payload.to_string p) :: !got);
      Dpu_runtime.Transport.send
        (Dpu_live.Udp_transport.transport t0)
        ~src:0 ~dst:1 ~size_bytes:32 msg;
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      check
        Alcotest.(list (pair int string))
        "delivered with sender identity"
        [ (0, Payload.to_string msg) ]
        (List.rev !got);
      let c = Dpu_live.Udp_transport.counters t1 in
      check Alcotest.int "delivered counter" 1 c.Dpu_runtime.Transport.delivered;
      check Alcotest.int "dropped counter" 0 c.Dpu_runtime.Transport.dropped)

let test_udp_foreign_frames_dropped () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 =
        Dpu_live.Udp_transport.create ~service:"dpu" ~generation:1 ~me:0 ~fd:fd0
          ~peers ()
      in
      let t1 =
        Dpu_live.Udp_transport.create ~service:"dpu" ~generation:2 ~me:1 ~fd:fd1
          ~peers ()
      in
      let got = ref 0 in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ _ -> incr got);
      (* Wrong deployment generation: shed at the transport. *)
      Dpu_runtime.Transport.send
        (Dpu_live.Udp_transport.transport t0)
        ~src:0 ~dst:1 ~size_bytes:32 msg;
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      (* Not even an envelope: also shed. *)
      let sent =
        Unix.sendto_substring fd1 "not a frame" 0 11 [] peers.(1)
      in
      check Alcotest.int "raw bytes sent" 11 sent;
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      check Alcotest.int "nothing delivered" 0 !got;
      let c = Dpu_live.Udp_transport.counters t1 in
      check Alcotest.int "both dropped" 2 c.Dpu_runtime.Transport.dropped)

let test_udp_send_accounting () =
  with_pair (fun ~fd0 ~fd1:_ ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let tr = Dpu_live.Udp_transport.transport t0 in
      (* The sealed frame exceeds the UDP payload limit: dropped before
         the syscall, and neither [sent] nor [bytes] may move. *)
      let big =
        Dpu_core.App_msg.App
          (Msg.make ~origin:0 ~seq:1 ~size:32 (String.make 70_000 'x'))
      in
      Dpu_runtime.Transport.send tr ~src:0 ~dst:1 ~size_bytes:70_000 big;
      let c = Dpu_live.Udp_transport.counters t0 in
      check Alcotest.int "oversized: dropped" 1 c.Dpu_runtime.Transport.dropped;
      check Alcotest.int "oversized: not sent" 0 c.Dpu_runtime.Transport.sent;
      check Alcotest.int "oversized: no bytes charged" 0
        c.Dpu_runtime.Transport.bytes)

let test_udp_syscall_failure_accounting () =
  (* Own sockets (not with_pair): the test closes the descriptor itself. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let peers = [| Unix.getsockname fd; Unix.getsockname fd |] in
  let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd ~peers () in
  Unix.close fd;
  (* sendto fails with EBADF: counted as dropped, never as sent. *)
  Dpu_runtime.Transport.send
    (Dpu_live.Udp_transport.transport t0)
    ~src:0 ~dst:1 ~size_bytes:32 msg;
  let c = Dpu_live.Udp_transport.counters t0 in
  check Alcotest.int "failed send: dropped" 1 c.Dpu_runtime.Transport.dropped;
  check Alcotest.int "failed send: not sent" 0 c.Dpu_runtime.Transport.sent;
  check Alcotest.int "failed send: no bytes charged" 0
    c.Dpu_runtime.Transport.bytes;
  (* drain on the dead descriptor must survive, count the error, and
     not recurse into a spin. *)
  ignore (Dpu_live.Udp_transport.drain t0 : int);
  check Alcotest.int "rx error counted" 1 (Dpu_live.Udp_transport.rx_errors t0);
  let c = Dpu_live.Udp_transport.counters t0 in
  check Alcotest.int "rx error surfaces as dropped input" 2
    c.Dpu_runtime.Transport.dropped

(* ------------------------------------------------------------------ *)
(* The fault shim over the live transport                             *)
(* ------------------------------------------------------------------ *)

(* A hand-cranked clock: the test sets [now]; deferred work runs
   immediately (no degraded links here, so nothing is ever deferred). *)
let manual_clock now_ref =
  {
    Clock.now = (fun () -> !now_ref);
    defer = (fun ~delay:_ f -> f ());
    schedule_impl =
      (fun ~delay:_ f ->
        f ();
        Clock.make_timer ~cancel:ignore);
    every_impl = (fun ~period:_ _ -> Clock.make_timer ~cancel:ignore);
  }

let test_live_shim_loss_window_restores () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let now = ref 0.0 in
      let shim =
        Dpu_faults.Fault_transport.create ~seed:5
          ~schedule:
            [ Dpu_faults.Schedule.loss_window ~p:1.0 ~from_:10.0 ~until:20.0 ]
          ~clock:(manual_clock now)
          (Dpu_live.Udp_transport.transport t0)
      in
      let ftr = Dpu_faults.Fault_transport.transport shim in
      let got = ref 0 in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ _ -> incr got);
      let send () = Dpu_runtime.Transport.send ftr ~src:0 ~dst:1 ~size_bytes:32 msg in
      now := 15.0;
      send ();
      (* inside the window: absorbed before any syscall *)
      now := 25.0;
      send ();
      (* after [until): the clean path is restored *)
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      check Alcotest.int "only the post-window frame arrives" 1 !got;
      let s = Dpu_faults.Fault_transport.stats shim in
      check Alcotest.int "loss charged to the shim" 1
        s.Dpu_faults.Fault_transport.injected_loss;
      (* Folded counters keep the protocols' invariant over real UDP. *)
      let c = Dpu_faults.Fault_transport.counters shim in
      check Alcotest.int "absorbed frame still counts as sent" 2
        c.Dpu_runtime.Transport.sent;
      check Alcotest.int "and as dropped" 1 c.Dpu_runtime.Transport.dropped;
      check Alcotest.bool "bytes include the absorbed frame" true
        (c.Dpu_runtime.Transport.bytes
        > (Dpu_live.Udp_transport.counters t0).Dpu_runtime.Transport.bytes))

(* ------------------------------------------------------------------ *)
(* Egress batching                                                    *)
(* ------------------------------------------------------------------ *)

let test_udp_egress_batching () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let batch_sizes = ref [] in
      let t0 =
        Dpu_live.Udp_transport.create ~batching:4
          ~on_batch:(fun k -> batch_sizes := k :: !batch_sizes)
          ~me:0 ~fd:fd0 ~peers ()
      in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let got = ref [] in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ p ->
          match p with
          | Dpu_core.App_msg.App m -> got := m.Msg.id.Msg.seq :: !got
          | _ -> ());
      let send seq =
        Dpu_runtime.Transport.send
          (Dpu_live.Udp_transport.transport t0)
          ~src:0 ~dst:1 ~size_bytes:32
          (Dpu_core.App_msg.App (Msg.make ~origin:0 ~seq ~size:32 "b"))
      in
      for seq = 0 to 8 do
        send seq
      done;
      (* 9 sends at cap 4: two full frames went out, one message waits. *)
      check Alcotest.int "one message still queued" 1
        (Dpu_live.Udp_transport.pending t0);
      Dpu_live.Udp_transport.flush t0;
      check Alcotest.int "flush empties the queues" 0
        (Dpu_live.Udp_transport.pending t0);
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      check
        Alcotest.(list int)
        "all messages delivered, in send order"
        (List.init 9 (fun i -> i))
        (List.rev !got);
      (* Counters stay message-grained; the frame grain is in batches. *)
      let c = Dpu_live.Udp_transport.counters t0 in
      check Alcotest.int "sent counts messages" 9 c.Dpu_runtime.Transport.sent;
      let b = Dpu_live.Udp_transport.batches t0 in
      check Alcotest.int "three frames" 3 b.Dpu_runtime.Transport.batches_sent;
      check Alcotest.int "nine messages in them" 9
        b.Dpu_runtime.Transport.batched_msgs;
      check Alcotest.(list int) "histogram saw 4,4,1" [ 4; 4; 1 ]
        (List.rev !batch_sizes);
      let c1 = Dpu_live.Udp_transport.counters t1 in
      check Alcotest.int "receiver delivered messages" 9
        c1.Dpu_runtime.Transport.delivered)

let test_udp_batch_respects_mtu () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 =
        Dpu_live.Udp_transport.create ~batching:8 ~me:0 ~fd:fd0 ~peers ()
      in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let got = ref 0 in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ _ -> incr got);
      (* ~40 KB payloads: any two burst the datagram limit, so each send
         after the first must flush the previous one rather than split
         the batch mid-frame. *)
      let send seq =
        Dpu_runtime.Transport.send
          (Dpu_live.Udp_transport.transport t0)
          ~src:0 ~dst:1 ~size_bytes:40_000
          (Dpu_core.App_msg.App
             (Msg.make ~origin:0 ~seq ~size:40_000 (String.make 40_000 'x')))
      in
      send 0;
      send 1;
      send 2;
      Dpu_live.Udp_transport.flush t0;
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      let b = Dpu_live.Udp_transport.batches t0 in
      check Alcotest.int "one frame per oversized element" 3
        b.Dpu_runtime.Transport.batches_sent;
      check Alcotest.int "all arrived" 3 !got;
      check Alcotest.int "none dropped" 0
        (Dpu_live.Udp_transport.counters t0).Dpu_runtime.Transport.dropped)

let test_udp_batching_allocates_once () =
  with_pair (fun ~fd0 ~fd1:_ ~peers ->
      let t0 =
        Dpu_live.Udp_transport.create ~batching:8 ~me:0 ~fd:fd0 ~peers ()
      in
      let after_create = Dpu_live.Udp_transport.encode_allocs t0 in
      for seq = 0 to 999 do
        Dpu_runtime.Transport.send
          (Dpu_live.Udp_transport.transport t0)
          ~src:0 ~dst:(seq mod 2) ~size_bytes:32
          (Dpu_core.App_msg.App (Msg.make ~origin:0 ~seq ~size:32 "a"))
      done;
      Dpu_live.Udp_transport.flush t0;
      (* 1000 messages, hundreds of batch frames: the whole encode path
         ran on the buffers allocated at [create]. *)
      check Alcotest.int "no encode-path allocation after create"
        after_create
        (Dpu_live.Udp_transport.encode_allocs t0);
      check Alcotest.int "everything shipped" 0 (Dpu_live.Udp_transport.pending t0))

let test_udp_batching_under_nemesis_shim () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 =
        Dpu_live.Udp_transport.create ~batching:3 ~me:0 ~fd:fd0 ~peers ()
      in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let now = ref 0.0 in
      let shim =
        Dpu_faults.Fault_transport.create ~seed:5
          ~schedule:
            [ Dpu_faults.Schedule.loss_window ~p:1.0 ~from_:10.0 ~until:20.0 ]
          ~clock:(manual_clock now)
          (Dpu_live.Udp_transport.transport t0)
      in
      let ftr = Dpu_faults.Fault_transport.transport shim in
      let delivered = ref 0 in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ _ -> incr delivered);
      let send seq =
        Dpu_runtime.Transport.send ftr ~src:0 ~dst:1 ~size_bytes:32
          (Dpu_core.App_msg.App (Msg.make ~origin:0 ~seq ~size:32 "n"))
      in
      (* 4 clean sends, 5 absorbed by the loss window, 3 clean again. *)
      now := 0.0;
      for seq = 0 to 3 do send seq done;
      now := 15.0;
      for seq = 4 to 8 do send seq done;
      now := 25.0;
      for seq = 9 to 11 do send seq done;
      Dpu_live.Udp_transport.flush t0;
      await_readable fd1;
      ignore (Dpu_live.Udp_transport.drain t1 : int);
      check Alcotest.int "survivors delivered" 7 !delivered;
      (* The nemesis absorbs whole messages BEFORE the egress queues, so
         the folded accounting still balances at message grain. *)
      let c = Dpu_faults.Fault_transport.counters shim in
      check Alcotest.int "sent = delivered + dropped"
        c.Dpu_runtime.Transport.sent
        (!delivered + c.Dpu_runtime.Transport.dropped);
      let b = Dpu_runtime.Transport.batches ftr in
      check Alcotest.int "batches carry only the survivors" 7
        b.Dpu_runtime.Transport.batched_msgs)

let test_udp_wrong_node_refused () =
  with_pair (fun ~fd0 ~fd1:_ ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let tr = Dpu_live.Udp_transport.transport t0 in
      (match Dpu_runtime.Transport.send tr ~src:1 ~dst:0 ~size_bytes:1 msg with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "sending as a foreign node accepted");
      match Dpu_runtime.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "handling a foreign node accepted")

(* ------------------------------------------------------------------ *)
(* Event-loop profile counters                                        *)
(* ------------------------------------------------------------------ *)

let test_wheel_profile_counters () =
  let w = Wheel.create () in
  check Alcotest.int "fired starts at 0" 0 (Wheel.fired w);
  check Alcotest.int "cascades start at 0" 0 (Wheel.cascades w);
  Wheel.add w ~now:0.0 ~delay:10.0 ignore;
  Wheel.add w ~now:0.0 ~delay:20.0 ignore;
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:15.0 ~timer:tm ignore;
  Clock.cancel tm;
  Wheel.advance w ~now:50.0;
  (* Cancelled entries are skipped, not fired. *)
  check Alcotest.int "slotted firings counted" 2 (Wheel.fired w);
  check Alcotest.int "no cascades yet" 0 (Wheel.cascades w);
  (* Zero-delay entries drained within a pass count as cascades. *)
  Wheel.add w ~now:50.0 ~delay:0.0 (fun () ->
      Wheel.add w ~now:50.0 ~delay:0.0 ignore);
  Wheel.advance w ~now:50.0;
  check Alcotest.int "cascade firings counted" 4 (Wheel.fired w);
  check Alcotest.int "both zero-delay entries cascaded" 2 (Wheel.cascades w)

(* ------------------------------------------------------------------ *)
(* Report compatibility and the merged live trace                     *)
(* ------------------------------------------------------------------ *)

module Node = Dpu_live.Node
module Serve = Dpu_live.Serve
module Json = Dpu_obs.Json
module Spans = Dpu_core.Spans

(* A report exactly as a pre-observability build wrote it: no "trace"
   field (and no "faults" — a clean run). Newer parsers must accept it
   and default the trace empty; dropping this shape would break mixed
   parent/child version rollouts and archived artifacts. *)
let pre_observability_report =
  {|{"node":1,
     "sends":[{"id":"1.1","t":12.5}],
     "delivers":[{"id":"1.1","t":14.0},{"id":"0.3","t":15.25}],
     "switches":[{"generation":1,"t":30.0}],
     "transport":{"sent":4,"delivered":3,"dropped":1,"bytes":4096,"rx_errors":0},
     "metrics":{"schema":"dpu.metrics/1","metrics":[]}}|}

let test_report_pre_observability_parses () =
  match Json.of_string pre_observability_report with
  | Error e -> Alcotest.fail ("fixture does not parse as JSON: " ^ e)
  | Ok j -> (
    match Node.report_of_json j with
    | Error e -> Alcotest.fail ("pre-observability report rejected: " ^ e)
    | Ok r ->
      check Alcotest.int "node" 1 r.Node.node;
      check Alcotest.int "sends" 1 (List.length r.Node.sends);
      check Alcotest.int "delivers" 2 (List.length r.Node.delivers);
      check Alcotest.bool "faults default None" true (r.Node.faults = None);
      check Alcotest.bool "trace defaults empty" true (r.Node.trace = []);
      (* And a trace-off report written by THIS build keeps that shape:
         re-serialising must not introduce the field. *)
      let j' = Node.report_to_json r in
      check Alcotest.bool "trace field stays absent" true
        (Json.member j' "trace" = None))

let test_report_trace_roundtrip () =
  match Json.of_string pre_observability_report with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Node.report_of_json j with
    | Error e -> Alcotest.fail e
    | Ok r ->
      let trace =
        [
          Dpu_obs.Trace_event.instant ~name:"node start" ~cat:"node" ~pid:1 ~tid:1
            ~ts_ms:0.5 ();
          Dpu_obs.Trace_event.instant ~name:"injected_loss src=1 dst=0" ~cat:"fault"
            ~pid:1 ~tid:1 ~ts_ms:20.0 ();
        ]
      in
      let r = { r with Node.trace } in
      match Node.report_of_json (Node.report_to_json r) with
      | Error e -> Alcotest.fail ("traced report did not parse back: " ^ e)
      | Ok r' -> check Alcotest.bool "trace roundtrips" true (r'.Node.trace = trace))

(* A short real deployment with [trace_out]: the windows recoverable
   from the merged Chrome trace must be exactly the windows the parent
   measured on its merged collector — the property `dpu_run report`
   relies on when it renders a timeline from the artifact alone. *)
let test_serve_merged_trace_matches_collector () =
  let trace_path = Filename.temp_file "dpu-live-trace" ".json" in
  let logs_dir = Filename.temp_file "dpu-live-logs" "" in
  Sys.remove logs_dir;
  (* temp_file created it as a file; Serve recreates it as a dir *)
  let params =
    {
      Serve.default with
      load = 20.0;
      duration_ms = 2_000.0;
      drain_ms = 1_200.0;
      switch_at_ms = 800.0;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove trace_path with Sys_error _ -> ());
      if Sys.file_exists logs_dir && Sys.is_directory logs_dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat logs_dir f) with Sys_error _ -> ())
          (Sys.readdir logs_dir);
        try Unix.rmdir logs_dir with Unix.Unix_error _ -> ()
      end)
    (fun () ->
      match Serve.run ~trace_out:trace_path ~logs_dir params with
      | Error e -> Alcotest.fail ("live deployment failed: " ^ e)
      | Ok outcome ->
        let timeline = Spans.replacement_timeline outcome.Serve.collector in
        check Alcotest.bool "the switch completed" true (timeline <> []);
        let content = In_channel.with_open_text trace_path In_channel.input_all in
        (match Json.of_string content with
        | Error e -> Alcotest.fail ("merged trace is not JSON: " ^ e)
        | Ok j -> (
          match Dpu_obs.Trace_event.events_of_json j with
          | Error e -> Alcotest.fail ("merged trace does not parse: " ^ e)
          | Ok events ->
            check
              Alcotest.(list (pair int (pair (float 1e-6) (float 1e-6))))
              "windows in the artifact = windows the parent measured" timeline
              (Spans.windows_of_trace_events events);
            (* The merge carries every node's own events too. *)
            let node_instants =
              List.filter
                (function
                  | Dpu_obs.Trace_event.Instant { cat = "node"; _ } -> true
                  | _ -> false)
                events
            in
            check Alcotest.bool "per-node start/stop marks present" true
              (List.length node_instants >= 2 * params.Serve.n)));
        (* Each child wrote a parseable structured log. *)
        List.init params.Serve.n Fun.id
        |> List.iter (fun me ->
               let path = Filename.concat logs_dir (Printf.sprintf "node-%d.jsonl" me) in
               check Alcotest.bool (Printf.sprintf "node %d log exists" me) true
                 (Sys.file_exists path);
               let s = In_channel.with_open_text path In_channel.input_all in
               match Dpu_obs.Log.entries_of_string s with
               | Error e -> Alcotest.fail (Printf.sprintf "node %d log: %s" me e)
               | Ok entries ->
                 check Alcotest.bool
                   (Printf.sprintf "node %d logged milestones" me)
                   true
                   (List.exists (fun e -> e.Dpu_obs.Log.e_msg = "node start") entries
                   && List.exists (fun e -> e.Dpu_obs.Log.e_msg = "node stop") entries)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "live"
    [
      ( "timer-wheel",
        [
          tc "fire order" test_wheel_fire_order;
          tc "same deadline is FIFO" test_wheel_same_deadline_fifo;
          tc "cancellation" test_wheel_cancellation;
          tc "far deadlines survive wraps" test_wheel_far_slots;
          tc "re-arm waits for the next pass" test_wheel_rearm_not_same_pass;
          tc "zero-delay cascade" test_wheel_zero_delay_cascade;
          tc "next deadline" test_wheel_next_deadline;
          tc "cancel discounts pending" test_wheel_cancel_discounts_pending;
          tc "next deadline is the effective fire time"
            test_wheel_next_deadline_is_effective_fire_time;
          tc "profile counters" test_wheel_profile_counters;
        ] );
      ( "udp-transport",
        [
          tc "loopback delivery" test_udp_loopback;
          tc "foreign frames dropped" test_udp_foreign_frames_dropped;
          tc "single-node ownership" test_udp_wrong_node_refused;
          tc "send counts only accepted frames" test_udp_send_accounting;
          tc "syscall failures never count as sent" test_udp_syscall_failure_accounting;
          tc "egress batching delivers in order" test_udp_egress_batching;
          tc "batches never burst the datagram limit" test_udp_batch_respects_mtu;
          tc "batching allocates only at create" test_udp_batching_allocates_once;
          tc "accounting balances under the nemesis shim"
            test_udp_batching_under_nemesis_shim;
        ] );
      ( "fault-shim",
        [ tc "loss window restores over real UDP" test_live_shim_loss_window_restores ] );
      ( "reports",
        [
          tc "pre-observability report parses" test_report_pre_observability_parses;
          tc "traced report roundtrips" test_report_trace_roundtrip;
        ] );
      ( "deployment",
        [ tc "merged trace matches the collector" test_serve_merged_trace_matches_collector ] );
    ]
