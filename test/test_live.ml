(* The live runtime backend: timer wheel semantics (on synthetic time —
   no wall clock involved), and the UDP transport loopback path with
   its envelope filtering. *)

open Dpu_kernel
module Clock = Dpu_runtime.Clock
module Wheel = Dpu_live.Timer_wheel

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                        *)
(* ------------------------------------------------------------------ *)

let test_wheel_fire_order () =
  let w = Wheel.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  Wheel.add w ~now:0.0 ~delay:30.0 (note "c");
  Wheel.add w ~now:0.0 ~delay:10.0 (note "a");
  Wheel.add w ~now:0.0 ~delay:20.0 (note "b");
  Wheel.advance w ~now:5.0;
  check Alcotest.(list string) "nothing due yet" [] (List.rev !log);
  Wheel.advance w ~now:15.0;
  check Alcotest.(list string) "first due" [ "a" ] (List.rev !log);
  Wheel.advance w ~now:100.0;
  check Alcotest.(list string) "deadline order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "wheel drained" 0 (Wheel.pending w)

let test_wheel_same_deadline_fifo () =
  let w = Wheel.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Wheel.add w ~now:0.0 ~delay:10.0 (fun () -> log := i :: !log)
  done;
  Wheel.advance w ~now:50.0;
  check Alcotest.(list int) "insertion order at equal deadlines"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_wheel_cancellation () =
  let w = Wheel.create () in
  let fired = ref 0 in
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:10.0 ~timer:tm (fun () -> incr fired);
  Wheel.add w ~now:0.0 ~delay:10.0 (fun () -> incr fired);
  Clock.cancel tm;
  Wheel.advance w ~now:50.0;
  check Alcotest.int "cancelled entry skipped" 1 !fired

let test_wheel_far_slots () =
  (* Deadlines beyond slots * granularity must survive cursor wraps. *)
  let w = Wheel.create ~granularity_ms:1.0 ~slots:8 () in
  let fired = ref false in
  Wheel.add w ~now:0.0 ~delay:100.0 (fun () -> fired := true);
  Wheel.advance w ~now:99.0;
  check Alcotest.bool "not yet" false !fired;
  Wheel.advance w ~now:101.0;
  check Alcotest.bool "fires after wraps" true !fired

let test_wheel_rearm_not_same_pass () =
  let w = Wheel.create ~granularity_ms:1.0 () in
  let fired = ref 0 in
  let rec arm () =
    Wheel.add w ~now:10.0 ~delay:1.0 (fun () ->
        incr fired;
        arm ())
  in
  arm ();
  (* A positive-delay entry re-armed by its own callback must not fire
     again in the same pass, however far [now] advanced. *)
  Wheel.advance w ~now:1000.0;
  check Alcotest.int "one firing per pass" 1 !fired;
  Wheel.advance w ~now:2000.0;
  check Alcotest.int "next pass fires the re-arm" 2 !fired

let test_wheel_zero_delay_cascade () =
  let w = Wheel.create () in
  let log = ref [] in
  Wheel.add w ~now:0.0 ~delay:0.0 (fun () ->
      log := "outer" :: !log;
      Wheel.add w ~now:0.0 ~delay:0.0 (fun () -> log := "inner" :: !log));
  Wheel.advance w ~now:0.0;
  (* Same-instant cascades drain within one pass, like the simulator. *)
  check Alcotest.(list string) "cascade drained" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int "nothing pending" 0 (Wheel.pending w)

let test_wheel_next_deadline () =
  let w = Wheel.create () in
  check Alcotest.(option (float 0.0)) "empty" None (Wheel.next_deadline w);
  Wheel.add w ~now:0.0 ~delay:30.0 ignore;
  Wheel.add w ~now:0.0 ~delay:10.0 ignore;
  check Alcotest.(option (float 0.001)) "earliest" (Some 10.0) (Wheel.next_deadline w);
  let tm = Clock.make_timer ~cancel:ignore in
  Wheel.add w ~now:0.0 ~delay:5.0 ~timer:tm ignore;
  Clock.cancel tm;
  check
    Alcotest.(option (float 0.001))
    "cancelled entries invisible" (Some 10.0) (Wheel.next_deadline w)

(* ------------------------------------------------------------------ *)
(* UDP transport loopback                                             *)
(* ------------------------------------------------------------------ *)

let with_pair f =
  let mk () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    fd
  in
  let fd0 = mk () and fd1 = mk () in
  let peers = [| Unix.getsockname fd0; Unix.getsockname fd1 |] in
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd0;
      Unix.close fd1)
    (fun () -> f ~fd0 ~fd1 ~peers)

let await_readable fd =
  match Unix.select [ fd ] [] [] 5.0 with
  | [], _, _ -> Alcotest.fail "timed out waiting for a datagram"
  | _ -> ()

let msg = Dpu_core.App_msg.App (Msg.make ~origin:0 ~seq:7 ~size:32 "live")

let test_udp_loopback () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let t1 = Dpu_live.Udp_transport.create ~me:1 ~fd:fd1 ~peers () in
      let got = ref [] in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src p -> got := (src, Payload.to_string p) :: !got);
      Dpu_runtime.Transport.send
        (Dpu_live.Udp_transport.transport t0)
        ~src:0 ~dst:1 ~size_bytes:32 msg;
      await_readable fd1;
      Dpu_live.Udp_transport.drain t1;
      check
        Alcotest.(list (pair int string))
        "delivered with sender identity"
        [ (0, Payload.to_string msg) ]
        (List.rev !got);
      let c = Dpu_live.Udp_transport.counters t1 in
      check Alcotest.int "delivered counter" 1 c.Dpu_runtime.Transport.delivered;
      check Alcotest.int "dropped counter" 0 c.Dpu_runtime.Transport.dropped)

let test_udp_foreign_frames_dropped () =
  with_pair (fun ~fd0 ~fd1 ~peers ->
      let t0 =
        Dpu_live.Udp_transport.create ~service:"dpu" ~generation:1 ~me:0 ~fd:fd0
          ~peers ()
      in
      let t1 =
        Dpu_live.Udp_transport.create ~service:"dpu" ~generation:2 ~me:1 ~fd:fd1
          ~peers ()
      in
      let got = ref 0 in
      Dpu_runtime.Transport.set_handler
        (Dpu_live.Udp_transport.transport t1)
        ~node:1
        (fun ~src:_ _ -> incr got);
      (* Wrong deployment generation: shed at the transport. *)
      Dpu_runtime.Transport.send
        (Dpu_live.Udp_transport.transport t0)
        ~src:0 ~dst:1 ~size_bytes:32 msg;
      await_readable fd1;
      Dpu_live.Udp_transport.drain t1;
      (* Not even an envelope: also shed. *)
      let sent =
        Unix.sendto_substring fd1 "not a frame" 0 11 [] peers.(1)
      in
      check Alcotest.int "raw bytes sent" 11 sent;
      await_readable fd1;
      Dpu_live.Udp_transport.drain t1;
      check Alcotest.int "nothing delivered" 0 !got;
      let c = Dpu_live.Udp_transport.counters t1 in
      check Alcotest.int "both dropped" 2 c.Dpu_runtime.Transport.dropped)

let test_udp_wrong_node_refused () =
  with_pair (fun ~fd0 ~fd1:_ ~peers ->
      let t0 = Dpu_live.Udp_transport.create ~me:0 ~fd:fd0 ~peers () in
      let tr = Dpu_live.Udp_transport.transport t0 in
      (match Dpu_runtime.Transport.send tr ~src:1 ~dst:0 ~size_bytes:1 msg with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "sending as a foreign node accepted");
      match Dpu_runtime.Transport.set_handler tr ~node:1 (fun ~src:_ _ -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "handling a foreign node accepted")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "live"
    [
      ( "timer-wheel",
        [
          tc "fire order" test_wheel_fire_order;
          tc "same deadline is FIFO" test_wheel_same_deadline_fifo;
          tc "cancellation" test_wheel_cancellation;
          tc "far deadlines survive wraps" test_wheel_far_slots;
          tc "re-arm waits for the next pass" test_wheel_rearm_not_same_pass;
          tc "zero-delay cascade" test_wheel_zero_delay_cascade;
          tc "next deadline" test_wheel_next_deadline;
        ] );
      ( "udp-transport",
        [
          tc "loopback delivery" test_udp_loopback;
          tc "foreign frames dropped" test_udp_foreign_frames_dropped;
          tc "single-node ownership" test_udp_wrong_node_refused;
        ] );
    ]
