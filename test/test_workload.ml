(* Tests for the workload generators, the ASCII renderer and the
   experiment harness behind the figures. *)

module W = Dpu_workload
module MW = Dpu_core.Middleware
module Stats = Dpu_engine.Stats

let check = Alcotest.check
let fail = Alcotest.fail

(* Small, fast experiment parameters. *)
let small =
  {
    W.Experiment.default with
    n = 3;
    load = 30.0;
    duration_ms = 2_000.0;
    warmup_ms = 200.0;
    switch_at_ms = 1_000.0;
    msg_size = 512;
  }

(* ------------------------------------------------------------------ *)
(* Load generators                                                    *)
(* ------------------------------------------------------------------ *)

let count_sends rate pattern =
  let mw = MW.create ~n:3 () in
  W.Load_gen.start mw ~rate_per_s:rate ~pattern ~size:256 ~until:2_000.0 ();
  MW.run_until_quiescent ~limit:10_000.0 mw;
  Dpu_core.Collector.send_count (MW.collector mw)

let test_constant_rate () =
  let sent = count_sends 50.0 W.Load_gen.Constant in
  (* 50 msg/s for 2 s => ~100 *)
  if sent < 90 || sent > 110 then fail (Printf.sprintf "constant rate produced %d" sent)

let test_poisson_rate () =
  let sent = count_sends 50.0 W.Load_gen.Poisson in
  if sent < 60 || sent > 140 then fail (Printf.sprintf "poisson rate produced %d" sent)

let test_burst_rate () =
  let sent = count_sends 50.0 (W.Load_gen.Burst { period_ms = 500.0; duty = 0.2 }) in
  if sent < 50 || sent > 150 then fail (Printf.sprintf "burst produced %d" sent)

let test_send_n () =
  let mw = MW.create ~n:3 () in
  ignore (W.Load_gen.send_n mw ~count:12 ~gap_ms:5.0 () : float);
  MW.run_until_quiescent ~limit:10_000.0 mw;
  check Alcotest.int "count" 12 (Dpu_core.Collector.send_count (MW.collector mw))

let test_send_n_warmup_boundary () =
  let mw = MW.create ~n:3 () in
  let boundary = W.Load_gen.send_n mw ~count:10 ~gap_ms:5.0 ~warmup:6 () in
  MW.run_until_quiescent ~limit:10_000.0 mw;
  (* Warmup messages are real traffic... *)
  check Alcotest.int "warmup + counted all sent" 16
    (Dpu_core.Collector.send_count (MW.collector mw));
  (* ...but the returned boundary splits the latency series so exactly
     the counted messages land at or after it. *)
  let series = Dpu_core.Collector.latency_series (MW.collector mw) in
  let measured = Dpu_engine.Series.stats_between series ~lo:boundary ~hi:infinity in
  check Alcotest.int "measured excludes warmup" 10 (Stats.count measured);
  check (Alcotest.float 1e-9) "boundary is first counted send" 30.0 boundary

let test_load_spread_across_nodes () =
  let mw = MW.create ~n:3 () in
  W.Load_gen.start mw ~rate_per_s:60.0 ~size:256 ~until:1_000.0 ();
  MW.run_until_quiescent ~limit:10_000.0 mw;
  let sends = Dpu_core.Collector.sends (MW.collector mw) in
  let per_node = Array.make 3 0 in
  List.iter (fun (_, node, _) -> per_node.(node) <- per_node.(node) + 1) sends;
  Array.iter
    (fun c -> check Alcotest.bool "each node sends" true (c > 10))
    per_node

(* ------------------------------------------------------------------ *)
(* Ascii                                                              *)
(* ------------------------------------------------------------------ *)

let test_ascii_table () =
  let s = W.Ascii.table ~header:[ "a"; "bbbb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check Alcotest.bool "contains rule" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && l.[0] = '-'));
  check Alcotest.bool "aligned" true
    (String.split_on_char '\n' s |> List.for_all (fun l -> not (String.contains l '\t')))

let test_ascii_chart_empty () =
  check Alcotest.string "placeholder" "(no data)\n" (W.Ascii.chart [])

let test_ascii_chart_renders () =
  let s =
    W.Ascii.chart ~title:"t" ~x_unit:"x" ~y_unit:"y"
      [ ("a", [ (0.0, 1.0); (1.0, 2.0) ]); ("b", [ (0.5, 1.5) ]) ]
  in
  check Alcotest.bool "has title" true (String.length s > 0 && s.[0] = 't');
  check Alcotest.bool "has glyph legend" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "  + a"))

let test_ascii_vbars () =
  let s = W.Ascii.vbars [ ("one", 1.0); ("two", 2.0) ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "two bars + trailing" 3 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Experiment harness                                                 *)
(* ------------------------------------------------------------------ *)

let test_experiment_runs_and_delivers () =
  let r = W.Experiment.run small in
  check Alcotest.bool "sent some" true (r.W.Experiment.sent > 30);
  check Alcotest.int "all delivered everywhere" r.W.Experiment.sent
    r.W.Experiment.delivered_everywhere;
  check Alcotest.bool "switch completed" true (r.W.Experiment.switch_window <> None);
  check Alcotest.bool "normal stats populated" true (Stats.count r.W.Experiment.normal > 0)

let test_experiment_no_switch () =
  let r = W.Experiment.run { small with switch_to = None } in
  check Alcotest.bool "no window" true (r.W.Experiment.switch_window = None);
  check (Alcotest.float 0.0) "no duration" 0.0 r.W.Experiment.switch_duration_ms;
  check Alcotest.int "during empty" 0 (Stats.count r.W.Experiment.during)

let test_experiment_no_layer () =
  let r =
    W.Experiment.run { small with approach = W.Experiment.No_layer; switch_to = None }
  in
  check Alcotest.int "all delivered" r.W.Experiment.sent r.W.Experiment.delivered_everywhere

let test_experiment_no_layer_ignores_switch () =
  (* A switch request without a layer is meaningless; the harness must
     simply not schedule one. *)
  let r = W.Experiment.run { small with approach = W.Experiment.No_layer } in
  check Alcotest.bool "no window" true (r.W.Experiment.switch_window = None)

let test_experiment_maestro_blocks () =
  let r = W.Experiment.run { small with approach = W.Experiment.Maestro } in
  check Alcotest.bool "blocked time recorded" true (r.W.Experiment.blocked_ms > 50.0);
  check Alcotest.int "still all delivered" r.W.Experiment.sent
    r.W.Experiment.delivered_everywhere

let test_experiment_graceful () =
  let r = W.Experiment.run { small with approach = W.Experiment.Graceful } in
  check (Alcotest.float 0.0) "graceful does not block" 0.0 r.W.Experiment.blocked_ms;
  check Alcotest.int "all delivered" r.W.Experiment.sent r.W.Experiment.delivered_everywhere

let test_experiment_check_clean () =
  let r = W.Experiment.run { small with trace_enabled = true } in
  let reports = W.Experiment.check r in
  check Alcotest.bool "several properties" true (List.length reports >= 5);
  List.iter
    (fun rep ->
      check Alcotest.bool rep.Dpu_props.Report.property true rep.Dpu_props.Report.ok)
    reports

let test_experiment_crash_injection () =
  let r =
    W.Experiment.run
      ~crash_at:[ (500.0, 2) ]
      { small with n = 5; switch_at_ms = 1_200.0 }
  in
  check (Alcotest.list Alcotest.int) "correct nodes" [ 0; 1; 3; 4 ] r.W.Experiment.correct;
  let reports = Dpu_props.Abcast_props.check_all r.W.Experiment.collector
      ~correct:r.W.Experiment.correct in
  List.iter
    (fun rep ->
      check Alcotest.bool rep.Dpu_props.Report.property true rep.Dpu_props.Report.ok)
    reports

let test_experiment_determinism () =
  let r1 = W.Experiment.run small in
  let r2 = W.Experiment.run small in
  check Alcotest.int "same sends" r1.W.Experiment.sent r2.W.Experiment.sent;
  check (Alcotest.float 1e-9) "same mean latency"
    (Stats.mean r1.W.Experiment.normal)
    (Stats.mean r2.W.Experiment.normal)

let test_experiment_seed_changes_run () =
  let r1 = W.Experiment.run small in
  let r2 = W.Experiment.run { small with seed = 99 } in
  check Alcotest.bool "different latencies" true
    (Stats.mean r1.W.Experiment.normal <> Stats.mean r2.W.Experiment.normal)

(* ------------------------------------------------------------------ *)
(* Throughput mode: batching under replacement, and the speedup       *)
(* ------------------------------------------------------------------ *)

let batched_cfg = { Dpu_protocols.Batcher.max_batch = 64; max_delay_ms = 200.0 }

(* A 200 ms delay trigger at 100 msg/s means the switch at 1 s lands
   mid-accumulation with near-certainty: the pending batch must be
   flushed at the epoch boundary (never split, never stranded) and any
   copy that raced into the old generation is dropped atomically and
   reissued by Algorithm 1 — so exactly-once delivery and total order
   must survive. *)
let run_switch_mid_batch ~initial ~target =
  let r =
    W.Experiment.run
      {
        small with
        load = 100.0;
        initial;
        switch_to = Some target;
        batching = Some batched_cfg;
      }
  in
  check Alcotest.bool "switch completed" true (r.W.Experiment.switch_window <> None);
  check Alcotest.int "no message lost or stranded in a batch"
    r.W.Experiment.sent r.W.Experiment.delivered_everywhere;
  List.iter
    (fun rep ->
      check Alcotest.bool rep.Dpu_props.Report.property true rep.Dpu_props.Report.ok)
    (W.Experiment.check r)

let test_switch_mid_batch_seq_to_ct () =
  run_switch_mid_batch ~initial:Dpu_core.Variants.sequencer ~target:Dpu_core.Variants.ct

let test_switch_mid_batch_ct_to_seq () =
  run_switch_mid_batch ~initial:Dpu_core.Variants.ct ~target:Dpu_core.Variants.sequencer

let test_throughput_open_loop_tracks_offered () =
  (* Well under the knee, delivered must track offered. *)
  let module T = W.Throughput in
  let pt = T.measure T.default ~offered:100.0 in
  check Alcotest.bool "delivered within 10% of offered" true
    (Float.abs (pt.T.delivered_per_s -. 100.0) <= 10.0)

let test_throughput_batching_at_least_doubles () =
  (* The headline claim of throughput mode: with the consensus path
     ordering one batch per round instead of one message, the closed
     loop sustains at least twice the unbatched rate. *)
  let module T = W.Throughput in
  let sustained batching =
    (T.saturate ~params:{ T.default with T.batching } ~clients_per_node:16 ())
      .T.delivered_per_s
  in
  let off = sustained None in
  let on = sustained (Some { Dpu_protocols.Batcher.max_batch = 16; max_delay_ms = 5.0 }) in
  check Alcotest.bool
    (Printf.sprintf "batched %.0f msg/s >= 2x unbatched %.0f msg/s" on off)
    true
    (on >= 2.0 *. off)

let test_switch_window_agrees_with_trace () =
  (* The collector's replacement window must agree with the kernel's
     own record of the switches: every node logs a "repl.switch" trace
     event when it installs the new generation, and the collector
     learns of it via the Protocol_changed indication a fixed number of
     dispatch hops later. *)
  let module Trace = Dpu_kernel.Trace in
  let r = W.Experiment.run { small with trace_enabled = true } in
  let kernel_switches =
    Trace.filter r.W.Experiment.trace (fun e ->
        match e.Trace.kind with
        | Trace.App ("repl.switch", _) -> true
        | _ -> false)
  in
  check Alcotest.int "one kernel switch per node" small.W.Experiment.n
    (List.length kernel_switches);
  let collector_switches = Dpu_core.Collector.switches r.W.Experiment.collector in
  check Alcotest.int "collector saw the same switches"
    (List.length kernel_switches)
    (List.length collector_switches);
  let slack = 5.0 in
  (* a few dispatch hops at hop_cost 0.5 ms *)
  List.iter
    (fun (node, generation, t_collector) ->
      check Alcotest.int "only generation 1" 1 generation;
      match List.find_opt (fun e -> e.Trace.node = node) kernel_switches with
      | None -> fail (Printf.sprintf "collector switch on node %d has no trace event" node)
      | Some e ->
        check Alcotest.bool
          (Printf.sprintf "node %d: collector trails the kernel by <= %.1f ms" node slack)
          true
          (t_collector >= e.Trace.time && t_collector -. e.Trace.time <= slack))
    collector_switches;
  match Dpu_core.Collector.switch_window r.W.Experiment.collector ~generation:1 with
  | None -> fail "no switch window"
  | Some (lo, hi) ->
    let times = List.map (fun e -> e.Trace.time) kernel_switches in
    let tmin = List.fold_left Float.min infinity times in
    let tmax = List.fold_left Float.max neg_infinity times in
    check Alcotest.bool "window opens with the first switch" true
      (lo >= tmin && lo -. tmin <= slack);
    check Alcotest.bool "window closes with the last switch" true
      (hi >= tmax && hi -. tmax <= slack)

let test_layer_overhead_positive () =
  (* The replacement layer adds a dispatch hop: with-layer latency must
     exceed no-layer latency, by a small factor (paper: ~5%). *)
  let base = { small with switch_to = None; duration_ms = 3_000.0 } in
  let without =
    W.Experiment.run { base with approach = W.Experiment.No_layer }
  in
  let with_layer = W.Experiment.run base in
  let overhead =
    (Stats.mean with_layer.W.Experiment.normal -. Stats.mean without.W.Experiment.normal)
    /. Stats.mean without.W.Experiment.normal
  in
  check Alcotest.bool
    (Printf.sprintf "overhead %.3f in (0, 0.25)" overhead)
    true
    (overhead > 0.0 && overhead < 0.25)

let test_figures_render () =
  (* Smoke-render each figure artifact on small runs. *)
  let r = W.Experiment.run small in
  let s5 = W.Figures.render_figure5 r in
  check Alcotest.bool "fig5 text" true (String.length s5 > 100);
  let points =
    W.Figures.figure6 ~ns:[ 3 ] ~loads:[ 20.0 ] ~seed:1 ()
  in
  check Alcotest.int "fig6 one point" 1 (List.length points);
  let s6 = W.Figures.render_figure6 points in
  check Alcotest.bool "fig6 text" true (String.length s6 > 100);
  let h =
    {
      W.Figures.layer_overhead_pct = 5.0;
      spike_pct = 50.0;
      spike_duration_ms = 40.0;
      app_blocked_ms = 0.0;
    }
  in
  check Alcotest.bool "headline text" true
    (String.length (W.Figures.render_headline h) > 50)

let test_comparison_rows () =
  let rows = W.Figures.compare_approaches ~n:3 ~load:20.0 ~seed:1 () in
  check Alcotest.int "three approaches" 3 (List.length rows);
  let find a = List.find (fun r -> r.W.Figures.approach = a) rows in
  let repl = find W.Experiment.Repl in
  let maestro = find W.Experiment.Maestro in
  check (Alcotest.float 0.0) "repl no blocking" 0.0 repl.W.Figures.blocked;
  check Alcotest.bool "maestro blocks" true (maestro.W.Figures.blocked > 50.0);
  check Alcotest.bool "everyone correct" true
    (List.for_all (fun r -> r.W.Figures.all_delivered) rows);
  check Alcotest.bool "rendering" true
    (String.length (W.Figures.render_comparison rows) > 100)

(* ------------------------------------------------------------------ *)
(* Sharded runner                                                      *)
(* ------------------------------------------------------------------ *)

let shard_small =
  {
    W.Shard.default with
    n = 6;
    shards = 2;
    load_per_s = 100.0;
    warmup_ms = 100.0;
    duration_ms = 600.0;
  }

let test_shard_runner_reports () =
  let r = W.Shard.run ~params:shard_small () in
  check Alcotest.int "one result per shard" 2 (List.length r.W.Shard.per_shard);
  List.iter
    (fun (s : W.Shard.shard_result) ->
      check Alcotest.bool "delivered something" true (s.delivered > 0);
      check Alcotest.bool "properties hold" true s.props_ok;
      check Alcotest.int "nothing undelivered" 0 s.undelivered;
      check (Alcotest.float 0.0) "nothing blocked" 0.0 s.blocked_ms;
      check Alcotest.int "no switch" 0 s.generation;
      check Alcotest.bool "latency measured" true (s.measured > 0);
      check Alcotest.bool "quantiles ordered" true
        (s.p50_ms <= s.p99_ms && s.p99_ms <= s.p999_ms))
    r.W.Shard.per_shard;
  check Alcotest.int "no rolling, no switches" 0 r.W.Shard.max_concurrent_switches;
  check Alcotest.bool "all ok" true r.W.Shard.all_ok

let test_shard_rolling_overlaps () =
  let params =
    {
      shard_small with
      n = 12;
      shards = 4;
      duration_ms = 800.0;
      rolling =
        Some { W.Shard.default_rolling with start_ms = 150.0; stagger_ms = 0.25 };
    }
  in
  let r = W.Shard.run ~params () in
  List.iter
    (fun (s : W.Shard.shard_result) ->
      check Alcotest.int "every shard switched" 1 s.generation;
      check Alcotest.bool "window recorded" true (s.window <> None);
      check Alcotest.bool "properties hold across the switch" true s.props_ok)
    r.W.Shard.per_shard;
  check Alcotest.bool "switch windows overlapped" true
    (r.W.Shard.max_concurrent_switches > 1);
  check Alcotest.bool "all ok" true r.W.Shard.all_ok

let test_shard_closed_loop () =
  let params =
    { shard_small with duration_ms = 400.0; closed_loop = Some 2 }
  in
  let r = W.Shard.run ~params () in
  List.iter
    (fun (s : W.Shard.shard_result) ->
      check Alcotest.bool "closed loop kept sending" true (s.delivered > 10);
      check Alcotest.bool "properties hold" true s.props_ok)
    r.W.Shard.per_shard;
  check Alcotest.bool "all ok" true r.W.Shard.all_ok

let test_shard_export_shapes () =
  let r = W.Shard.run ~params:shard_small () in
  let rows = W.Shard.csv_rows r in
  check Alcotest.int "one csv row per shard" 2 (List.length rows);
  List.iter
    (fun row ->
      check Alcotest.int "row arity matches header"
        (List.length W.Shard.csv_header) (List.length row))
    rows;
  let j = W.Shard.to_json r in
  let module J = Dpu_obs.Json in
  (match J.member j "shards" with
  | Some (J.List l) -> check Alcotest.int "json shard entries" 2 (List.length l)
  | _ -> fail "missing shards list");
  match J.member j "all_ok" with
  | Some (J.Bool b) -> check Alcotest.bool "json all_ok" true b
  | _ -> fail "missing all_ok"

let test_shard_determinism () =
  let quantiles r =
    List.map
      (fun (s : W.Shard.shard_result) -> (s.sent, s.delivered, s.p50_ms, s.p99_ms))
      r.W.Shard.per_shard
  in
  let a = W.Shard.run ~params:shard_small () in
  let b = W.Shard.run ~params:shard_small () in
  check Alcotest.bool "identical runs" true (quantiles a = quantiles b)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workload"
    [
      ( "load_gen",
        [
          tc "constant rate" test_constant_rate;
          tc "poisson rate" test_poisson_rate;
          tc "burst rate" test_burst_rate;
          tc "send_n" test_send_n;
          tc "send_n warmup boundary" test_send_n_warmup_boundary;
          tc "spread across nodes" test_load_spread_across_nodes;
        ] );
      ( "ascii",
        [
          tc "table" test_ascii_table;
          tc "chart empty" test_ascii_chart_empty;
          tc "chart renders" test_ascii_chart_renders;
          tc "vbars" test_ascii_vbars;
        ] );
      ( "experiment",
        [
          tc "runs and delivers" test_experiment_runs_and_delivers;
          tc "no switch" test_experiment_no_switch;
          tc "no layer" test_experiment_no_layer;
          tc "no layer ignores switch" test_experiment_no_layer_ignores_switch;
          tc "maestro blocks" test_experiment_maestro_blocks;
          tc "graceful" test_experiment_graceful;
          tc "check clean" test_experiment_check_clean;
          tc "crash injection" test_experiment_crash_injection;
          tc "determinism" test_experiment_determinism;
          tc "seed sensitivity" test_experiment_seed_changes_run;
          tc "layer overhead positive" test_layer_overhead_positive;
          tc "switch window agrees with trace" test_switch_window_agrees_with_trace;
        ] );
      ( "throughput",
        [
          tc "replacement mid-batch, seq->ct" test_switch_mid_batch_seq_to_ct;
          tc "replacement mid-batch, ct->seq" test_switch_mid_batch_ct_to_seq;
          tc "open loop tracks offered below the knee"
            test_throughput_open_loop_tracks_offered;
          tc "batching at least doubles the sustained rate"
            test_throughput_batching_at_least_doubles;
        ] );
      ( "figures",
        [ tc "render" test_figures_render; tc "comparison" test_comparison_rows ] );
      ( "shard",
        [
          tc "runner reports per-shard results" test_shard_runner_reports;
          tc "rolling replacement overlaps" test_shard_rolling_overlaps;
          tc "closed loop" test_shard_closed_loop;
          tc "export shapes" test_shard_export_shapes;
          tc "determinism" test_shard_determinism;
        ] );
    ]
