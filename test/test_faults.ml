(* Tests for the Dpu_faults subsystem: schedule interpretation against
   the datagram network, spec parsing, validation, nemesis determinism,
   and full-harness soaks that replace the ABcast protocol *during*
   each fault class with every §5 property checked across the switch. *)

module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Rng = Dpu_engine.Rng
module Latency = Dpu_net.Latency
module Datagram = Dpu_net.Datagram
module Schedule = Dpu_faults.Schedule
module Nemesis = Dpu_faults.Nemesis
module E = Dpu_workload.Experiment

let check = Alcotest.check
let fail = Alcotest.fail

let make_net ?(n = 3) ?(loss = 0.0) () =
  let sim = Sim.create ~seed:7 () in
  let net = Datagram.create sim ~n ~loss ~link:(Latency.constant 1.0) () in
  (sim, net)

let inbox net node =
  let log = ref [] in
  Datagram.set_handler net ~node (fun ~src payload -> log := (src, payload) :: !log);
  log

(* ------------------------------------------------------------------ *)
(* Schedule interpretation                                            *)
(* ------------------------------------------------------------------ *)

let test_crash_recover_schedule () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Schedule.arm net [ Schedule.crash ~at:10.0 1; Schedule.recover ~at:20.0 1 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 5.0 "before";
  send_at 15.0 "during";
  send_at 25.0 "after";
  Sim.run sim;
  check Alcotest.int "two delivered" 2 (List.length !inbox1);
  check Alcotest.bool "during dropped" true
    (List.for_all (fun (_, p) -> p <> "during") !inbox1);
  check Alcotest.int "dropped at arrival while down" 1
    (Datagram.counters net).Datagram.blocked_crash

let test_loss_window_schedule () =
  let sim, net = make_net ~loss:0.02 () in
  ignore (inbox net 1);
  Schedule.arm net [ Schedule.loss_window ~p:1.0 ~from_:10.0 ~until:20.0 ];
  let send_at t =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x"))
  in
  send_at 15.0;
  Sim.run sim;
  check Alcotest.int "lost inside window" 1 (Datagram.counters net).Datagram.lost;
  (* After the window the pre-existing probability is restored. *)
  check (Alcotest.float 1e-9) "baseline restored" 0.02 (Datagram.loss net)

let test_dup_burst_schedule () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Schedule.arm net [ Schedule.dup_burst ~p:1.0 ~from_:10.0 ~until:20.0 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 15.0 "inside";
  send_at 25.0 "outside";
  Sim.run sim;
  let copies tag = List.length (List.filter (fun (_, p) -> p = tag) !inbox1) in
  check Alcotest.int "duplicated inside" 2 (copies "inside");
  check Alcotest.int "single outside" 1 (copies "outside");
  check (Alcotest.float 0.0) "dup restored" 0.0 (Datagram.dup net)

let test_degrade_link_schedule () =
  let sim, net = make_net () in
  let arrivals = ref [] in
  Datagram.set_handler net ~node:1 (fun ~src:_ tag ->
      arrivals := (tag, Sim.now sim) :: !arrivals);
  Schedule.arm net
    [
      Schedule.degrade_link ~src:0 ~dst:1 ~link:(Latency.constant 40.0) ~from_:10.0
        ~until:20.0;
    ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 12.0 "slow";
  send_at 25.0 "fast";
  Sim.run sim;
  let time_of tag = List.assoc tag !arrivals in
  check (Alcotest.float 1e-6) "degraded inside window" 52.0 (time_of "slow");
  check (Alcotest.float 1e-6) "restored outside" 26.0 (time_of "fast")

let test_partition_heal_schedule () =
  let sim, net = make_net ~n:4 () in
  let inbox3 = inbox net 3 in
  Schedule.arm net
    [ Schedule.partition ~at:10.0 [ [ 0; 1 ]; [ 2; 3 ] ]; Schedule.heal ~at:20.0 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:3 ~size_bytes:10 tag))
  in
  send_at 15.0 "cross";
  send_at 25.0 "healed";
  Sim.run sim;
  check Alcotest.bool "only post-heal" true (!inbox3 = [ (0, "healed") ]);
  check Alcotest.int "partition drop counted" 1
    (Datagram.counters net).Datagram.blocked_partition

let test_on_event_observability () =
  let sim, net = make_net () in
  let seen = ref [] in
  Schedule.arm net
    ~on_event:(fun time what -> seen := (time, what) :: !seen)
    [ Schedule.crash ~at:5.0 1; Schedule.loss_window ~p:0.5 ~from_:10.0 ~until:20.0 ];
  Sim.run sim;
  let times = List.rev_map fst !seen in
  check (Alcotest.list (Alcotest.float 1e-9)) "all boundaries observed"
    [ 5.0; 10.0; 20.0 ] times

let test_custom_crash_hook () =
  let _sim, net = make_net () in
  let killed = ref [] in
  Schedule.arm net ~crash_node:(fun node -> killed := node :: !killed)
    [ Schedule.crash ~at:0.0 2 ];
  Sim.run (Datagram.sim net);
  check (Alcotest.list Alcotest.int) "hook used" [ 2 ] !killed;
  check Alcotest.bool "net-level crash bypassed" false (Datagram.is_crashed net 2)

(* ------------------------------------------------------------------ *)
(* Specs, validation, inspection                                      *)
(* ------------------------------------------------------------------ *)

let test_spec_parsing () =
  let ok spec =
    match Schedule.event_of_spec spec with
    | Ok e -> e
    | Error msg -> fail msg
  in
  (match (ok "crash@150:2").Schedule.action with
  | Schedule.Crash 2 -> ()
  | _ -> fail "crash spec");
  (match (ok "recover@200:2").Schedule.action with
  | Schedule.Recover 2 -> ()
  | _ -> fail "recover spec");
  (match (ok "partition@100:0,1|2,3").Schedule.action with
  | Schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] -> ()
  | _ -> fail "partition spec");
  (match (ok "heal@300").Schedule.action with
  | Schedule.Heal -> ()
  | _ -> fail "heal spec");
  (match (ok "loss@100-200:0.3").Schedule.action with
  | Schedule.Loss_window { p = 0.3; from_ = 100.0; until = 200.0 } -> ()
  | _ -> fail "loss spec");
  (match (ok "dup@100-200:0.1").Schedule.action with
  | Schedule.Dup_burst { p = 0.1; from_ = 100.0; until = 200.0 } -> ()
  | _ -> fail "dup spec");
  match (ok "slow@100-200:0>1:25").Schedule.action with
  | Schedule.Degrade_link
      { src = 0; dst = 1; window = { from_ = 100.0; until = 200.0 }; _ } -> ()
  | _ -> fail "slow spec"

let test_spec_errors () =
  List.iter
    (fun spec ->
      match Schedule.event_of_spec spec with
      | Ok _ -> fail (Printf.sprintf "spec %S should not parse" spec)
      | Error _ -> ())
    [ "crash@abc:1"; "crash@100"; "explode@5"; "loss@100:0.3"; "partition@100:"; "" ]

let test_of_specs_first_error_aborts () =
  (match Schedule.of_specs [ "crash@10:1"; "heal@20" ] with
  | Ok [ _; _ ] -> ()
  | Ok _ | Error _ -> fail "expected two events");
  match Schedule.of_specs [ "crash@10:1"; "nope" ] with
  | Error _ -> ()
  | Ok _ -> fail "expected error"

let test_validate () =
  let ok_or_fail = function Ok () -> () | Error msg -> fail msg in
  ok_or_fail
    (Schedule.validate ~n:3
       [ Schedule.crash ~at:1.0 2; Schedule.loss_window ~p:0.5 ~from_:1.0 ~until:2.0 ]);
  let expect_err sched =
    match Schedule.validate ~n:3 sched with
    | Error _ -> ()
    | Ok () -> fail "expected validation error"
  in
  expect_err [ Schedule.crash ~at:1.0 3 ];
  expect_err [ Schedule.crash ~at:(-1.0) 0 ];
  expect_err [ Schedule.loss_window ~p:1.5 ~from_:1.0 ~until:2.0 ];
  expect_err [ Schedule.loss_window ~p:0.5 ~from_:2.0 ~until:2.0 ];
  expect_err [ Schedule.partition ~at:1.0 [ [ 0; 1 ]; [ 1; 2 ] ] ];
  expect_err [ Schedule.degrade_link ~src:0 ~dst:5 ~link:(Latency.constant 1.0) ~from_:1.0 ~until:2.0 ]

let test_crashed_before () =
  let sched =
    [
      Schedule.crash ~at:10.0 1;
      Schedule.crash ~at:20.0 2;
      Schedule.recover ~at:30.0 1;
    ]
  in
  check (Alcotest.list Alcotest.int) "both down" [ 1; 2 ]
    (Schedule.crashed_before sched ~time:25.0);
  check (Alcotest.list Alcotest.int) "one recovered" [ 2 ]
    (Schedule.crashed_before sched ~time:35.0);
  check (Alcotest.list Alcotest.int) "none yet" []
    (Schedule.crashed_before sched ~time:5.0)

let test_duration () =
  check (Alcotest.float 0.0) "empty" 0.0 (Schedule.duration []);
  let sched =
    [ Schedule.crash ~at:50.0 1; Schedule.loss_window ~p:0.5 ~from_:10.0 ~until:90.0 ]
  in
  check (Alcotest.float 0.0) "window close counts" 90.0 (Schedule.duration sched)

(* ------------------------------------------------------------------ *)
(* Nemesis                                                            *)
(* ------------------------------------------------------------------ *)

let test_nemesis_deterministic () =
  let gen seed =
    Nemesis.generate ~rng:(Rng.create ~seed) ~n:6 ~horizon_ms:5_000.0 ~faults:6
      ~recoverable:true ()
  in
  check Alcotest.bool "same seed, same schedule" true (gen 42 = gen 42);
  check Alcotest.bool "different seeds differ" true (gen 42 <> gen 43)

let test_nemesis_schedules_valid () =
  for seed = 1 to 50 do
    let n = 3 + (seed mod 5) in
    let sched =
      Nemesis.generate ~rng:(Rng.create ~seed) ~n ~horizon_ms:4_000.0 ~faults:5
        ~recoverable:(seed mod 2 = 0) ()
    in
    (match Schedule.validate ~n sched with
    | Ok () -> ()
    | Error msg -> fail (Printf.sprintf "seed %d: %s" seed msg));
    (* Never crash node 0; never more than a minority down at once;
       everything settles before 0.9 * horizon. *)
    let down_at_end = Schedule.crashed_before sched ~time:infinity in
    check Alcotest.bool
      (Printf.sprintf "seed %d: node 0 alive" seed)
      false (List.mem 0 down_at_end);
    check Alcotest.bool
      (Printf.sprintf "seed %d: minority down" seed)
      true
      (List.length down_at_end <= (n - 1) / 2);
    check Alcotest.bool
      (Printf.sprintf "seed %d: settles before horizon" seed)
      true
      (Schedule.duration sched <= 0.9 *. 4_000.0)
  done

let test_nemesis_respects_classes () =
  let sched =
    Nemesis.generate ~rng:(Rng.create ~seed:5) ~n:5 ~horizon_ms:4_000.0
      ~classes:[ Nemesis.Loss ] ~faults:4 ()
  in
  check Alcotest.int "one event per fault" 4 (List.length sched);
  List.iter
    (fun e ->
      match e.Schedule.action with
      | Schedule.Loss_window _ -> ()
      | _ -> fail "unexpected fault class")
    sched

(* ------------------------------------------------------------------ *)
(* Full-harness soaks: replacement during each fault class            *)
(* ------------------------------------------------------------------ *)

(* ABcast replacement at 2000 ms while the scheduled fault is active;
   afterwards the §5 properties must hold across the switch. *)
let soak_params ~seed faults =
  {
    E.default with
    n = 5;
    seed;
    load = 30.0;
    duration_ms = 4_000.0;
    switch_at_ms = 2_000.0;
    initial = Dpu_core.Variants.ct;
    switch_to = Some Dpu_core.Variants.sequencer;
    msg_size = 1024;
    trace_enabled = true;
    faults;
  }

let assert_props_hold ~what result =
  let reports = E.check result in
  let find name =
    match
      List.find_opt (fun r -> r.Dpu_props.Report.property = name) reports
    with
    | Some r -> r
    | None -> fail (Printf.sprintf "%s: missing report %S" what name)
  in
  (* The acceptance pair, called out explicitly... *)
  check Alcotest.bool
    (Printf.sprintf "%s: uniform agreement across the switch" what)
    true (find "uniform agreement").Dpu_props.Report.ok;
  check Alcotest.bool
    (Printf.sprintf "%s: uniform total order across the switch" what)
    true (find "uniform total order").Dpu_props.Report.ok;
  (* ...and everything else too. *)
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s: %s" what r.Dpu_props.Report.property)
        true r.Dpu_props.Report.ok)
    reports;
  (* The switch really happened. *)
  check Alcotest.bool (what ^ ": switch completed") true
    (result.E.switch_window <> None);
  check Alcotest.bool (what ^ ": traffic flowed") true (result.E.sent > 20)

let test_switch_during_crash () =
  let faults = [ Schedule.crash ~at:1_500.0 3 ] in
  let result = E.run (soak_params ~seed:101 faults) in
  check (Alcotest.list Alcotest.int) "crashed node excluded" [ 0; 1; 2; 4 ]
    result.E.correct;
  assert_props_hold ~what:"switch-during-crash" result

let test_switch_during_partition () =
  let faults =
    [ Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ]; Schedule.heal ~at:2_600.0 ]
  in
  let result = E.run (soak_params ~seed:102 faults) in
  check (Alcotest.list Alcotest.int) "nobody crashed" [ 0; 1; 2; 3; 4 ] result.E.correct;
  assert_props_hold ~what:"switch-during-partition" result

let test_switch_during_loss_window () =
  let faults = [ Schedule.loss_window ~p:0.2 ~from_:1_500.0 ~until:2_600.0 ] in
  let result = E.run (soak_params ~seed:103 faults) in
  assert_props_hold ~what:"switch-during-loss" result

let test_switch_under_nemesis () =
  (* Randomised soak: a sampled schedule plus a replacement, properties
     checked across the switch. Deterministic in the seed. *)
  List.iter
    (fun seed ->
      let faults =
        Nemesis.generate ~rng:(Rng.create ~seed) ~n:5 ~horizon_ms:4_000.0 ~faults:3 ()
      in
      let result = E.run (soak_params ~seed faults) in
      assert_props_hold
        ~what:(Printf.sprintf "nemesis seed %d [%s]" seed
                 (Format.asprintf "%a" Schedule.pp faults))
        result)
    [ 201; 202; 203 ]

let test_epoch_buffer_engages () =
  (* Regression for the receive-side hole in the generation filter: the
     isolated node delivers the change message late, after the majority
     has switched and produced new-generation wire traffic. Before
     [Epoch_buffer] that traffic was acknowledged by the transport and
     dropped by every installed module's epoch filter — lost for good —
     and the late sequencer instance deadlocked on a global-sequence gap,
     delivering nothing after its switch. The buffer must engage at the
     late node, and every node must end with the same delivery count. *)
  let module MW = Dpu_core.Middleware in
  let module System = Dpu_kernel.System in
  let config = { MW.default_config with seed = 102; msg_size = 1024 } in
  let mw = MW.create ~config ~n:5 () in
  let system = MW.system mw in
  let clock = System.clock system in
  let net = System.net system in
  Dpu_workload.Load_gen.start mw ~rate_per_s:30.0 ~until:4_000.0 ();
  Schedule.arm net
    [ Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ]; Schedule.heal ~at:2_600.0 ];
  ignore
    (Clock.defer clock ~delay:2_000.0 (fun () ->
         MW.change_protocol mw ~node:4 Dpu_core.Variants.sequencer));
  MW.run_until_quiescent ~limit:120_000.0 mw;
  let late = System.stack system 4 in
  check Alcotest.bool "late node stashed future-generation traffic" true
    (Dpu_protocols.Epoch_buffer.stashed late > 0);
  check Alcotest.bool "stash replayed after the late switch" true
    (Dpu_protocols.Epoch_buffer.replayed late > 0);
  let collector = MW.collector mw in
  let count node = List.length (Dpu_core.Collector.delivers_of collector ~node) in
  check Alcotest.bool "traffic flowed" true (count 0 > 20);
  List.iter
    (fun node ->
      check Alcotest.int
        (Printf.sprintf "node %d delivered the full stream" node)
        (count 0) (count node))
    [ 1; 2; 3; 4 ]

let test_experiment_rejects_bad_schedule () =
  let params = soak_params ~seed:1 [ Schedule.crash ~at:100.0 99 ] in
  match E.run params with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          tc "crash + recover" test_crash_recover_schedule;
          tc "loss window" test_loss_window_schedule;
          tc "dup burst" test_dup_burst_schedule;
          tc "degrade link" test_degrade_link_schedule;
          tc "partition + heal" test_partition_heal_schedule;
          tc "on_event" test_on_event_observability;
          tc "custom crash hook" test_custom_crash_hook;
        ] );
      ( "spec",
        [
          tc "parses every kind" test_spec_parsing;
          tc "rejects junk" test_spec_errors;
          tc "of_specs aborts on error" test_of_specs_first_error_aborts;
        ] );
      ( "inspection",
        [
          tc "validate" test_validate;
          tc "crashed_before" test_crashed_before;
          tc "duration" test_duration;
        ] );
      ( "nemesis",
        [
          tc "deterministic" test_nemesis_deterministic;
          tc "valid schedules" test_nemesis_schedules_valid;
          tc "respects classes" test_nemesis_respects_classes;
        ] );
      ( "soak",
        [
          slow "switch during crash" test_switch_during_crash;
          slow "switch during partition" test_switch_during_partition;
          slow "switch during loss window" test_switch_during_loss_window;
          slow "switch under nemesis" test_switch_under_nemesis;
          slow "late switch engages epoch buffer" test_epoch_buffer_engages;
          tc "rejects bad schedule" test_experiment_rejects_bad_schedule;
        ] );
    ]
