(* Tests for the Dpu_faults subsystem: schedule interpretation against
   the datagram network, spec parsing, validation, nemesis determinism,
   and full-harness soaks that replace the ABcast protocol *during*
   each fault class with every §5 property checked across the switch. *)

module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Rng = Dpu_engine.Rng
module Latency = Dpu_net.Latency
module Datagram = Dpu_net.Datagram
module Schedule = Dpu_faults.Schedule
module Nemesis = Dpu_faults.Nemesis
module FT = Dpu_faults.Fault_transport
module RT = Dpu_runtime.Transport
module Runtime = Dpu_runtime.Runtime
module Corpus = Dpu_faults.Corpus
module Scenario = Dpu_workload.Scenario
module E = Dpu_workload.Experiment

let check = Alcotest.check
let fail = Alcotest.fail

let make_net ?(n = 3) ?(loss = 0.0) () =
  let sim = Sim.create ~seed:7 () in
  let net = Datagram.create sim ~n ~loss ~link:(Latency.constant 1.0) () in
  (sim, net)

let inbox net node =
  let log = ref [] in
  Datagram.set_handler net ~node (fun ~src payload -> log := (src, payload) :: !log);
  log

(* ------------------------------------------------------------------ *)
(* Schedule interpretation                                            *)
(* ------------------------------------------------------------------ *)

let test_crash_recover_schedule () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Schedule.arm net [ Schedule.crash ~at:10.0 1; Schedule.recover ~at:20.0 1 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 5.0 "before";
  send_at 15.0 "during";
  send_at 25.0 "after";
  Sim.run sim;
  check Alcotest.int "two delivered" 2 (List.length !inbox1);
  check Alcotest.bool "during dropped" true
    (List.for_all (fun (_, p) -> p <> "during") !inbox1);
  check Alcotest.int "dropped at arrival while down" 1
    (Datagram.counters net).Datagram.blocked_crash

let test_loss_window_schedule () =
  let sim, net = make_net ~loss:0.02 () in
  ignore (inbox net 1);
  Schedule.arm net [ Schedule.loss_window ~p:1.0 ~from_:10.0 ~until:20.0 ];
  let send_at t =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x"))
  in
  send_at 15.0;
  Sim.run sim;
  check Alcotest.int "lost inside window" 1 (Datagram.counters net).Datagram.lost;
  (* After the window the pre-existing probability is restored. *)
  check (Alcotest.float 1e-9) "baseline restored" 0.02 (Datagram.loss net)

let test_dup_burst_schedule () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Schedule.arm net [ Schedule.dup_burst ~p:1.0 ~from_:10.0 ~until:20.0 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 15.0 "inside";
  send_at 25.0 "outside";
  Sim.run sim;
  let copies tag = List.length (List.filter (fun (_, p) -> p = tag) !inbox1) in
  check Alcotest.int "duplicated inside" 2 (copies "inside");
  check Alcotest.int "single outside" 1 (copies "outside");
  check (Alcotest.float 0.0) "dup restored" 0.0 (Datagram.dup net)

let test_degrade_link_schedule () =
  let sim, net = make_net () in
  let arrivals = ref [] in
  Datagram.set_handler net ~node:1 (fun ~src:_ tag ->
      arrivals := (tag, Sim.now sim) :: !arrivals);
  Schedule.arm net
    [
      Schedule.degrade_link ~src:0 ~dst:1 ~link:(Latency.constant 40.0) ~from_:10.0
        ~until:20.0;
    ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 tag))
  in
  send_at 12.0 "slow";
  send_at 25.0 "fast";
  Sim.run sim;
  let time_of tag = List.assoc tag !arrivals in
  check (Alcotest.float 1e-6) "degraded inside window" 52.0 (time_of "slow");
  check (Alcotest.float 1e-6) "restored outside" 26.0 (time_of "fast")

let test_partition_heal_schedule () =
  let sim, net = make_net ~n:4 () in
  let inbox3 = inbox net 3 in
  Schedule.arm net
    [ Schedule.partition ~at:10.0 [ [ 0; 1 ]; [ 2; 3 ] ]; Schedule.heal ~at:20.0 ];
  let send_at t tag =
    ignore
      (Sim.schedule_at sim ~time:t (fun () ->
           Datagram.send net ~src:0 ~dst:3 ~size_bytes:10 tag))
  in
  send_at 15.0 "cross";
  send_at 25.0 "healed";
  Sim.run sim;
  check Alcotest.bool "only post-heal" true (!inbox3 = [ (0, "healed") ]);
  check Alcotest.int "partition drop counted" 1
    (Datagram.counters net).Datagram.blocked_partition

let test_on_event_observability () =
  let sim, net = make_net () in
  let seen = ref [] in
  Schedule.arm net
    ~on_event:(fun time what -> seen := (time, what) :: !seen)
    [ Schedule.crash ~at:5.0 1; Schedule.loss_window ~p:0.5 ~from_:10.0 ~until:20.0 ];
  Sim.run sim;
  let times = List.rev_map fst !seen in
  check (Alcotest.list (Alcotest.float 1e-9)) "all boundaries observed"
    [ 5.0; 10.0; 20.0 ] times

let test_custom_crash_hook () =
  let _sim, net = make_net () in
  let killed = ref [] in
  Schedule.arm net ~crash_node:(fun node -> killed := node :: !killed)
    [ Schedule.crash ~at:0.0 2 ];
  Sim.run (Datagram.sim net);
  check (Alcotest.list Alcotest.int) "hook used" [ 2 ] !killed;
  check Alcotest.bool "net-level crash bypassed" false (Datagram.is_crashed net 2)

(* ------------------------------------------------------------------ *)
(* Fault_transport: the shim behind the Transport seam                *)
(* ------------------------------------------------------------------ *)

(* The shim wrapped around the simulated backend — the sim stands in
   for "any transport"; the live variant is exercised in test_live. *)
let make_shim ?(n = 3) ?(seed = 11) schedule =
  let sim = Sim.create ~seed () in
  let net = Datagram.create sim ~n ~loss:0.0 ~link:(Latency.constant 1.0) () in
  let rt = Dpu_runtime.Sim_backend.runtime sim net in
  let shim =
    FT.create ~seed:(seed + 1) ~schedule ~clock:(Runtime.clock rt)
      (Runtime.transport rt)
  in
  (sim, shim, FT.transport shim)

let shim_inbox tr node =
  let log = ref [] in
  RT.set_handler tr ~node (fun ~src p -> log := (src, p) :: !log);
  log

let send_at sim tr t ~src ~dst tag =
  ignore
    (Sim.schedule_at sim ~time:t (fun () ->
         RT.send tr ~src ~dst ~size_bytes:10 tag))

let tags box = List.rev_map snd !box

let test_shim_crash_blocks_both_directions () =
  let sim, shim, tr =
    make_shim [ Schedule.crash ~at:10.0 1; Schedule.recover ~at:20.0 1 ]
  in
  let inbox0 = shim_inbox tr 0 and inbox1 = shim_inbox tr 1 in
  send_at sim tr 5.0 ~src:0 ~dst:1 "before";
  send_at sim tr 15.0 ~src:0 ~dst:1 "to-crashed";
  send_at sim tr 15.0 ~src:1 ~dst:0 "from-crashed";
  send_at sim tr 25.0 ~src:0 ~dst:1 "after";
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "crashed node silent, then back"
    [ "before"; "after" ] (tags inbox1);
  check (Alcotest.list Alcotest.string) "nothing escapes the crashed node" []
    (tags inbox0);
  check Alcotest.int "both directions absorbed" 2 (FT.stats shim).FT.blocked_crash

let test_shim_partition_symmetry () =
  (* Nodes 2 and 3 appear in no group: they form the implicit leftover
     group, mirroring Datagram.partition. Blocking is symmetric. *)
  let sim, shim, tr =
    make_shim ~n:4
      [ Schedule.partition ~at:10.0 [ [ 0; 1 ] ]; Schedule.heal ~at:20.0 ]
  in
  let boxes = Array.init 4 (fun node -> shim_inbox tr node) in
  send_at sim tr 15.0 ~src:0 ~dst:1 "same-group";
  send_at sim tr 15.0 ~src:2 ~dst:3 "leftover-group";
  send_at sim tr 15.0 ~src:0 ~dst:2 "cross-a";
  send_at sim tr 15.0 ~src:2 ~dst:0 "cross-b";
  send_at sim tr 25.0 ~src:0 ~dst:2 "healed";
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "inside a named group" [ "same-group" ]
    (tags boxes.(1));
  check (Alcotest.list Alcotest.string) "inside the implicit group"
    [ "leftover-group" ] (tags boxes.(3));
  check (Alcotest.list Alcotest.string) "cross-group only after heal"
    [ "healed" ] (tags boxes.(2));
  check (Alcotest.list Alcotest.string) "symmetric: nothing crossed back" []
    (tags boxes.(0));
  check Alcotest.int "both crossings absorbed" 2
    (FT.stats shim).FT.blocked_partition

let test_shim_loss_window_halfopen () =
  let sim, shim, tr =
    make_shim [ Schedule.loss_window ~p:1.0 ~from_:10.0 ~until:20.0 ] in
  let inbox1 = shim_inbox tr 1 in
  send_at sim tr 5.0 ~src:0 ~dst:1 "before";
  send_at sim tr 10.0 ~src:0 ~dst:1 "opens";
  send_at sim tr 15.0 ~src:0 ~dst:1 "inside";
  send_at sim tr 20.0 ~src:0 ~dst:1 "closes";
  send_at sim tr 25.0 ~src:0 ~dst:1 "after";
  Sim.run sim;
  (* [from_, until): the opening instant is inside, the closing instant
     restores the pre-window behaviour. *)
  check (Alcotest.list Alcotest.string) "half-open window"
    [ "before"; "closes"; "after" ] (tags inbox1);
  check Alcotest.int "losses charged to the shim" 2
    (FT.stats shim).FT.injected_loss;
  let c = FT.counters shim in
  check Alcotest.int "absorbed frames still count as sent" 5 c.RT.sent;
  check Alcotest.int "delivered" 3 c.RT.delivered;
  check Alcotest.int "dropped" 2 c.RT.dropped;
  check Alcotest.int "sent = delivered + dropped" c.RT.sent
    (c.RT.delivered + c.RT.dropped)

let test_shim_dup_burst () =
  let sim, shim, tr =
    make_shim [ Schedule.dup_burst ~p:1.0 ~from_:10.0 ~until:20.0 ] in
  let inbox1 = shim_inbox tr 1 in
  send_at sim tr 15.0 ~src:0 ~dst:1 "inside";
  send_at sim tr 25.0 ~src:0 ~dst:1 "outside";
  Sim.run sim;
  let copies tag = List.length (List.filter (( = ) tag) (tags inbox1)) in
  check Alcotest.int "duplicated inside" 2 (copies "inside");
  check Alcotest.int "single outside" 1 (copies "outside");
  check Alcotest.int "dup charged to the shim" 1 (FT.stats shim).FT.injected_dup

let test_shim_degrade_delay () =
  let sim, shim, tr =
    make_shim
      [
        Schedule.degrade_link ~src:0 ~dst:1 ~link:(Latency.constant 40.0)
          ~from_:10.0 ~until:20.0;
      ]
  in
  let arrivals = ref [] in
  RT.set_handler tr ~node:1 (fun ~src:_ tag ->
      arrivals := (tag, Sim.now sim) :: !arrivals);
  send_at sim tr 12.0 ~src:0 ~dst:1 "slow";
  send_at sim tr 25.0 ~src:0 ~dst:1 "fast";
  Sim.run sim;
  let time_of tag = List.assoc tag !arrivals in
  (* The degraded-link delay stacks on top of the base 1 ms link. *)
  check (Alcotest.float 1e-6) "deferred inside the window" 53.0 (time_of "slow");
  check (Alcotest.float 1e-6) "restored outside" 26.0 (time_of "fast");
  check Alcotest.int "delay charged to the shim" 1 (FT.stats shim).FT.delayed

let test_shim_rx_blocks_in_flight () =
  (* A frame sent just before the partition opens is still in flight
     when it lands: the receive-side re-check must absorb it. *)
  let sim, shim, tr =
    make_shim [ Schedule.partition ~at:10.0 [ [ 0 ]; [ 1; 2 ] ] ] in
  let inbox1 = shim_inbox tr 1 in
  send_at sim tr 9.5 ~src:0 ~dst:1 "in-flight";
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "absorbed at arrival" [] (tags inbox1);
  check Alcotest.int "rx-side absorption counted" 1
    (FT.stats shim).FT.rx_blocked;
  let c = FT.counters shim in
  check Alcotest.int "delivered excludes the blocked frame" 0 c.RT.delivered;
  check Alcotest.int "dropped includes it" 1 c.RT.dropped;
  check Alcotest.int "sent = delivered + dropped" c.RT.sent
    (c.RT.delivered + c.RT.dropped)

let test_shim_replay_deterministic () =
  (* Probabilistic faults draw from the shim's private RNG: same seeds,
     same schedule, byte-identical interleaving — twice. *)
  let run_once () =
    let sim, shim, tr =
      make_shim
        [
          Schedule.loss_window ~p:0.4 ~from_:10.0 ~until:60.0;
          Schedule.dup_burst ~p:0.3 ~from_:30.0 ~until:80.0;
        ]
    in
    let log = ref [] in
    RT.set_handler tr ~node:1 (fun ~src tag ->
        log := (src, tag, Sim.now sim) :: !log);
    for i = 0 to 49 do
      send_at sim tr
        (1.0 +. (1.5 *. float_of_int i))
        ~src:0 ~dst:1 (string_of_int i)
    done;
    Sim.run sim;
    (List.rev !log, FT.stats shim)
  in
  let log1, stats1 = run_once () in
  let log2, stats2 = run_once () in
  check Alcotest.bool "same delivery interleaving" true (log1 = log2);
  check Alcotest.bool "same fault accounting" true (stats1 = stats2);
  (* The schedule actually bit — this is not vacuous. *)
  check Alcotest.bool "losses happened" true (stats1.FT.injected_loss > 0);
  check Alcotest.bool "dups happened" true (stats1.FT.injected_dup > 0)

(* ------------------------------------------------------------------ *)
(* The adversarial scenario corpus, on the simulated backend          *)
(* ------------------------------------------------------------------ *)

let test_corpus_well_formed () =
  check Alcotest.int "five scenarios" 5 (List.length Corpus.all);
  List.iter
    (fun (sc : Corpus.t) ->
      match Corpus.validate sc with
      | Ok () -> ()
      | Error msg -> fail (Printf.sprintf "%s: %s" sc.Corpus.name msg))
    Corpus.all;
  check Alcotest.bool "find resolves every name" true
    (List.for_all (fun name -> Corpus.find name <> None) (Corpus.names ()));
  check Alcotest.bool "unknown name is None" true (Corpus.find "nope" = None)

let expect_installed ~what windows =
  List.iter
    (fun (generation, window) ->
      check Alcotest.bool
        (Printf.sprintf "%s: generation %d installed" what generation)
        true (window <> None))
    windows

let test_corpus_scenarios_hold_properties () =
  List.iter
    (fun (sc : Corpus.t) ->
      let what = sc.Corpus.name in
      let r = Scenario.run_sim ~seed:1 sc in
      check Alcotest.bool (what ^ ": traffic flowed") true (r.Scenario.sent > 20);
      check Alcotest.bool (what ^ ": full §5.1 battery holds") true
        (Scenario.ok r);
      match what with
      | "racing-replacements" -> (
        (* Two changes race through generation 0; total order picks one
           winner and the loser is dropped as stale. *)
        match r.Scenario.switch_windows with
        | [ (1, Some _); (2, None) ] -> ()
        | _ -> fail "racing: expected exactly the first-ordered change to win")
      | "coordinator-crash-mid-switch" ->
        check (Alcotest.list Alcotest.int) "crashed coordinator excluded"
          [ 0; 1; 3; 4 ] r.Scenario.correct;
        expect_installed ~what r.Scenario.switch_windows
      | "replacement-under-partition" ->
        check Alcotest.bool "the partition actually bit" true
          (r.Scenario.faults.FT.blocked_partition > 0);
        expect_installed ~what r.Scenario.switch_windows
      | _ -> expect_installed ~what r.Scenario.switch_windows)
    Corpus.all

let test_corpus_replay_deterministic () =
  let sc =
    match Corpus.find "replacement-under-partition" with
    | Some sc -> sc
    | None -> fail "scenario missing"
  in
  let s1 = Scenario.signature (Scenario.run_sim ~seed:3 sc) in
  let s2 = Scenario.signature (Scenario.run_sim ~seed:3 sc) in
  check Alcotest.bool "byte-identical replay" true (String.equal s1 s2);
  let s3 = Scenario.signature (Scenario.run_sim ~seed:4 sc) in
  check Alcotest.bool "the seed matters" true (not (String.equal s1 s3))

(* ------------------------------------------------------------------ *)
(* Specs, validation, inspection                                      *)
(* ------------------------------------------------------------------ *)

let test_spec_parsing () =
  let ok spec =
    match Schedule.event_of_spec spec with
    | Ok e -> e
    | Error msg -> fail msg
  in
  (match (ok "crash@150:2").Schedule.action with
  | Schedule.Crash 2 -> ()
  | _ -> fail "crash spec");
  (match (ok "recover@200:2").Schedule.action with
  | Schedule.Recover 2 -> ()
  | _ -> fail "recover spec");
  (match (ok "partition@100:0,1|2,3").Schedule.action with
  | Schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] -> ()
  | _ -> fail "partition spec");
  (match (ok "heal@300").Schedule.action with
  | Schedule.Heal -> ()
  | _ -> fail "heal spec");
  (match (ok "loss@100-200:0.3").Schedule.action with
  | Schedule.Loss_window { p = 0.3; from_ = 100.0; until = 200.0 } -> ()
  | _ -> fail "loss spec");
  (match (ok "dup@100-200:0.1").Schedule.action with
  | Schedule.Dup_burst { p = 0.1; from_ = 100.0; until = 200.0 } -> ()
  | _ -> fail "dup spec");
  match (ok "slow@100-200:0>1:25").Schedule.action with
  | Schedule.Degrade_link
      { src = 0; dst = 1; window = { from_ = 100.0; until = 200.0 }; _ } -> ()
  | _ -> fail "slow spec"

let test_spec_errors () =
  List.iter
    (fun spec ->
      match Schedule.event_of_spec spec with
      | Ok _ -> fail (Printf.sprintf "spec %S should not parse" spec)
      | Error _ -> ())
    [ "crash@abc:1"; "crash@100"; "explode@5"; "loss@100:0.3"; "partition@100:"; "" ]

let test_of_specs_first_error_aborts () =
  (match Schedule.of_specs [ "crash@10:1"; "heal@20" ] with
  | Ok [ _; _ ] -> ()
  | Ok _ | Error _ -> fail "expected two events");
  match Schedule.of_specs [ "crash@10:1"; "nope" ] with
  | Error _ -> ()
  | Ok _ -> fail "expected error"

let test_validate () =
  let ok_or_fail = function Ok () -> () | Error msg -> fail msg in
  ok_or_fail
    (Schedule.validate ~n:3
       [ Schedule.crash ~at:1.0 2; Schedule.loss_window ~p:0.5 ~from_:1.0 ~until:2.0 ]);
  let expect_err sched =
    match Schedule.validate ~n:3 sched with
    | Error _ -> ()
    | Ok () -> fail "expected validation error"
  in
  expect_err [ Schedule.crash ~at:1.0 3 ];
  expect_err [ Schedule.crash ~at:(-1.0) 0 ];
  expect_err [ Schedule.loss_window ~p:1.5 ~from_:1.0 ~until:2.0 ];
  expect_err [ Schedule.loss_window ~p:0.5 ~from_:2.0 ~until:2.0 ];
  expect_err [ Schedule.partition ~at:1.0 [ [ 0; 1 ]; [ 1; 2 ] ] ];
  expect_err [ Schedule.degrade_link ~src:0 ~dst:5 ~link:(Latency.constant 1.0) ~from_:1.0 ~until:2.0 ]

let test_crashed_before () =
  let sched =
    [
      Schedule.crash ~at:10.0 1;
      Schedule.crash ~at:20.0 2;
      Schedule.recover ~at:30.0 1;
    ]
  in
  check (Alcotest.list Alcotest.int) "both down" [ 1; 2 ]
    (Schedule.crashed_before sched ~time:25.0);
  check (Alcotest.list Alcotest.int) "one recovered" [ 2 ]
    (Schedule.crashed_before sched ~time:35.0);
  check (Alcotest.list Alcotest.int) "none yet" []
    (Schedule.crashed_before sched ~time:5.0)

let test_duration () =
  check (Alcotest.float 0.0) "empty" 0.0 (Schedule.duration []);
  let sched =
    [ Schedule.crash ~at:50.0 1; Schedule.loss_window ~p:0.5 ~from_:10.0 ~until:90.0 ]
  in
  check (Alcotest.float 0.0) "window close counts" 90.0 (Schedule.duration sched)

(* ------------------------------------------------------------------ *)
(* Nemesis                                                            *)
(* ------------------------------------------------------------------ *)

let test_nemesis_deterministic () =
  let gen seed =
    Nemesis.generate ~rng:(Rng.create ~seed) ~n:6 ~horizon_ms:5_000.0 ~faults:6
      ~recoverable:true ()
  in
  check Alcotest.bool "same seed, same schedule" true (gen 42 = gen 42);
  check Alcotest.bool "different seeds differ" true (gen 42 <> gen 43)

let test_nemesis_schedules_valid () =
  for seed = 1 to 50 do
    let n = 3 + (seed mod 5) in
    let sched =
      Nemesis.generate ~rng:(Rng.create ~seed) ~n ~horizon_ms:4_000.0 ~faults:5
        ~recoverable:(seed mod 2 = 0) ()
    in
    (match Schedule.validate ~n sched with
    | Ok () -> ()
    | Error msg -> fail (Printf.sprintf "seed %d: %s" seed msg));
    (* Never crash node 0; never more than a minority down at once;
       everything settles before 0.9 * horizon. *)
    let down_at_end = Schedule.crashed_before sched ~time:infinity in
    check Alcotest.bool
      (Printf.sprintf "seed %d: node 0 alive" seed)
      false (List.mem 0 down_at_end);
    check Alcotest.bool
      (Printf.sprintf "seed %d: minority down" seed)
      true
      (List.length down_at_end <= (n - 1) / 2);
    check Alcotest.bool
      (Printf.sprintf "seed %d: settles before horizon" seed)
      true
      (Schedule.duration sched <= 0.9 *. 4_000.0)
  done

let test_nemesis_respects_classes () =
  let sched =
    Nemesis.generate ~rng:(Rng.create ~seed:5) ~n:5 ~horizon_ms:4_000.0
      ~classes:[ Nemesis.Loss ] ~faults:4 ()
  in
  check Alcotest.int "one event per fault" 4 (List.length sched);
  List.iter
    (fun e ->
      match e.Schedule.action with
      | Schedule.Loss_window _ -> ()
      | _ -> fail "unexpected fault class")
    sched

(* ------------------------------------------------------------------ *)
(* Full-harness soaks: replacement during each fault class            *)
(* ------------------------------------------------------------------ *)

(* ABcast replacement at 2000 ms while the scheduled fault is active;
   afterwards the §5 properties must hold across the switch. *)
let soak_params ~seed faults =
  {
    E.default with
    n = 5;
    seed;
    load = 30.0;
    duration_ms = 4_000.0;
    switch_at_ms = 2_000.0;
    initial = Dpu_core.Variants.ct;
    switch_to = Some Dpu_core.Variants.sequencer;
    msg_size = 1024;
    trace_enabled = true;
    faults;
  }

let assert_props_hold ~what result =
  let reports = E.check result in
  let find name =
    match
      List.find_opt (fun r -> r.Dpu_props.Report.property = name) reports
    with
    | Some r -> r
    | None -> fail (Printf.sprintf "%s: missing report %S" what name)
  in
  (* The acceptance pair, called out explicitly... *)
  check Alcotest.bool
    (Printf.sprintf "%s: uniform agreement across the switch" what)
    true (find "uniform agreement").Dpu_props.Report.ok;
  check Alcotest.bool
    (Printf.sprintf "%s: uniform total order across the switch" what)
    true (find "uniform total order").Dpu_props.Report.ok;
  (* ...and everything else too. *)
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s: %s" what r.Dpu_props.Report.property)
        true r.Dpu_props.Report.ok)
    reports;
  (* The switch really happened. *)
  check Alcotest.bool (what ^ ": switch completed") true
    (result.E.switch_window <> None);
  check Alcotest.bool (what ^ ": traffic flowed") true (result.E.sent > 20)

let test_switch_during_crash () =
  let faults = [ Schedule.crash ~at:1_500.0 3 ] in
  let result = E.run (soak_params ~seed:101 faults) in
  check (Alcotest.list Alcotest.int) "crashed node excluded" [ 0; 1; 2; 4 ]
    result.E.correct;
  assert_props_hold ~what:"switch-during-crash" result

let test_switch_during_partition () =
  let faults =
    [ Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ]; Schedule.heal ~at:2_600.0 ]
  in
  let result = E.run (soak_params ~seed:102 faults) in
  check (Alcotest.list Alcotest.int) "nobody crashed" [ 0; 1; 2; 3; 4 ] result.E.correct;
  assert_props_hold ~what:"switch-during-partition" result

let test_switch_during_loss_window () =
  let faults = [ Schedule.loss_window ~p:0.2 ~from_:1_500.0 ~until:2_600.0 ] in
  let result = E.run (soak_params ~seed:103 faults) in
  assert_props_hold ~what:"switch-during-loss" result

let test_switch_under_nemesis () =
  (* Randomised soak: a sampled schedule plus a replacement, properties
     checked across the switch. Deterministic in the seed. *)
  List.iter
    (fun seed ->
      let faults =
        Nemesis.generate ~rng:(Rng.create ~seed) ~n:5 ~horizon_ms:4_000.0 ~faults:3 ()
      in
      let result = E.run (soak_params ~seed faults) in
      assert_props_hold
        ~what:(Printf.sprintf "nemesis seed %d [%s]" seed
                 (Format.asprintf "%a" Schedule.pp faults))
        result)
    [ 201; 202; 203 ]

let test_epoch_buffer_engages () =
  (* Regression for the receive-side hole in the generation filter: the
     isolated node delivers the change message late, after the majority
     has switched and produced new-generation wire traffic. Before
     [Epoch_buffer] that traffic was acknowledged by the transport and
     dropped by every installed module's epoch filter — lost for good —
     and the late sequencer instance deadlocked on a global-sequence gap,
     delivering nothing after its switch. The buffer must engage at the
     late node, and every node must end with the same delivery count. *)
  let module MW = Dpu_core.Middleware in
  let module System = Dpu_kernel.System in
  let config = { MW.default_config with seed = 102; msg_size = 1024 } in
  let mw = MW.create ~config ~n:5 () in
  let system = MW.system mw in
  let clock = System.clock system in
  let net = System.net system in
  Dpu_workload.Load_gen.start mw ~rate_per_s:30.0 ~until:4_000.0 ();
  Schedule.arm net
    [ Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ]; Schedule.heal ~at:2_600.0 ];
  ignore
    (Clock.defer clock ~delay:2_000.0 (fun () ->
         MW.change_protocol mw ~node:4 Dpu_core.Variants.sequencer));
  MW.run_until_quiescent ~limit:120_000.0 mw;
  let late = System.stack system 4 in
  check Alcotest.bool "late node stashed future-generation traffic" true
    (Dpu_protocols.Epoch_buffer.stashed late > 0);
  check Alcotest.bool "stash replayed after the late switch" true
    (Dpu_protocols.Epoch_buffer.replayed late > 0);
  let collector = MW.collector mw in
  let count node = List.length (Dpu_core.Collector.delivers_of collector ~node) in
  check Alcotest.bool "traffic flowed" true (count 0 > 20);
  List.iter
    (fun node ->
      check Alcotest.int
        (Printf.sprintf "node %d delivered the full stream" node)
        (count 0) (count node))
    [ 1; 2; 3; 4 ]

let test_experiment_rejects_bad_schedule () =
  let params = soak_params ~seed:1 [ Schedule.crash ~at:100.0 99 ] in
  match E.run params with
  | exception Invalid_argument _ -> ()
  | _ -> fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          tc "crash + recover" test_crash_recover_schedule;
          tc "loss window" test_loss_window_schedule;
          tc "dup burst" test_dup_burst_schedule;
          tc "degrade link" test_degrade_link_schedule;
          tc "partition + heal" test_partition_heal_schedule;
          tc "on_event" test_on_event_observability;
          tc "custom crash hook" test_custom_crash_hook;
        ] );
      ( "fault-transport",
        [
          tc "crash blocks both directions" test_shim_crash_blocks_both_directions;
          tc "partition symmetry + implicit group" test_shim_partition_symmetry;
          tc "loss window is half-open and restores" test_shim_loss_window_halfopen;
          tc "dup burst" test_shim_dup_burst;
          tc "degrade defers on the clock" test_shim_degrade_delay;
          tc "in-flight frames blocked at arrival" test_shim_rx_blocks_in_flight;
          tc "replay determinism" test_shim_replay_deterministic;
        ] );
      ( "corpus",
        [
          tc "well-formed" test_corpus_well_formed;
          slow "every scenario holds the battery" test_corpus_scenarios_hold_properties;
          slow "replay determinism" test_corpus_replay_deterministic;
        ] );
      ( "spec",
        [
          tc "parses every kind" test_spec_parsing;
          tc "rejects junk" test_spec_errors;
          tc "of_specs aborts on error" test_of_specs_first_error_aborts;
        ] );
      ( "inspection",
        [
          tc "validate" test_validate;
          tc "crashed_before" test_crashed_before;
          tc "duration" test_duration;
        ] );
      ( "nemesis",
        [
          tc "deterministic" test_nemesis_deterministic;
          tc "valid schedules" test_nemesis_schedules_valid;
          tc "respects classes" test_nemesis_respects_classes;
        ] );
      ( "soak",
        [
          slow "switch during crash" test_switch_during_crash;
          slow "switch during partition" test_switch_during_partition;
          slow "switch during loss window" test_switch_during_loss_window;
          slow "switch under nemesis" test_switch_under_nemesis;
          slow "late switch engages epoch buffer" test_epoch_buffer_engages;
          tc "rejects bad schedule" test_experiment_rejects_bad_schedule;
        ] );
    ]
