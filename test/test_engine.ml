(* Unit and property tests for the discrete-event engine. *)

module Heap = Dpu_engine.Heap
module Rng = Dpu_engine.Rng
module Sim = Dpu_engine.Sim
module Stats = Dpu_engine.Stats
module Series = Dpu_engine.Series

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Heap.create () in
  check Alcotest.int "length" 0 (Heap.length h);
  check Alcotest.bool "is_empty" true (Heap.is_empty h);
  check Alcotest.bool "pop" true (Heap.pop h = None);
  check Alcotest.bool "peek" true (Heap.peek h = None);
  check Alcotest.bool "min_priority" true (Heap.min_priority h = None)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> nan) in
  check (Alcotest.list (Alcotest.float 0.0)) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~priority:1.0 v) [ "a"; "b"; "c"; "d" ];
  Heap.add h ~priority:0.5 "first";
  let order =
    List.init 5 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  check (Alcotest.list Alcotest.string) "stable ties" [ "first"; "a"; "b"; "c"; "d" ] order

let test_heap_peek_nondestructive () =
  let h = Heap.create () in
  Heap.add h ~priority:2.0 "x";
  Heap.add h ~priority:1.0 "y";
  check Alcotest.bool "peek min" true (Heap.peek h = Some (1.0, "y"));
  check Alcotest.int "length unchanged" 2 (Heap.length h);
  check Alcotest.bool "min_priority" true (Heap.min_priority h = Some 1.0)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.add h ~priority:3.0 3;
  Heap.add h ~priority:1.0 1;
  (match Heap.pop h with
  | Some (_, 1) -> ()
  | Some _ | None -> fail "expected 1");
  Heap.add h ~priority:2.0 2;
  Heap.add h ~priority:0.5 0;
  let rest = List.init 3 (fun _ -> match Heap.pop h with Some (_, v) -> v | None -> -1) in
  check (Alcotest.list Alcotest.int) "rest" [ 0; 2; 3 ] rest

let test_heap_pop_exn () =
  let h = Heap.create () in
  check Alcotest.bool "pop_exn empty raises" true
    (match Heap.pop_exn h with _ -> false | exception Heap.Empty -> true);
  check Alcotest.bool "min_priority_exn empty raises" true
    (match Heap.min_priority_exn h with _ -> false | exception Heap.Empty -> true);
  List.iter (fun p -> Heap.add h ~priority:p p) [ 3.0; 1.0; 2.0 ];
  check (Alcotest.float 1e-9) "min priority" 1.0 (Heap.min_priority_exn h);
  check (Alcotest.float 1e-9) "pop min" 1.0 (Heap.pop_exn h);
  check (Alcotest.float 1e-9) "next min priority" 2.0 (Heap.min_priority_exn h);
  check (Alcotest.float 1e-9) "pop next" 2.0 (Heap.pop_exn h);
  check (Alcotest.float 1e-9) "pop last" 3.0 (Heap.pop_exn h);
  check Alcotest.bool "empty again" true (Heap.is_empty h)

let test_heap_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.add h ~priority:(float_of_int i) i
  done;
  Heap.clear h;
  check Alcotest.int "cleared" 0 (Heap.length h);
  Heap.add h ~priority:1.0 42;
  check Alcotest.bool "usable after clear" true (Heap.pop h = Some (1.0, 42))

let test_heap_iter_unordered () =
  let h = Heap.create () in
  for i = 1 to 20 do
    Heap.add h ~priority:(float_of_int (20 - i)) i
  done;
  let seen = ref 0 in
  Heap.iter_unordered h (fun _ -> incr seen);
  check Alcotest.int "all visited" 20 !seen

let test_heap_growth () =
  let h = Heap.create () in
  for i = 1000 downto 1 do
    Heap.add h ~priority:(float_of_int i) i
  done;
  check Alcotest.int "length" 1000 (Heap.length h);
  let prev = ref neg_infinity in
  let sorted = ref true in
  for _ = 1 to 1000 do
    match Heap.pop h with
    | Some (p, _) ->
      if p < !prev then sorted := false;
      prev := p
    | None -> sorted := false
  done;
  check Alcotest.bool "sorted drain" true !sorted

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains in sorted stable order" ~count:200
    QCheck.(list (pair (float_range 0.0 100.0) small_int))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun i (p, v) -> Heap.add h ~priority:p (p, i, v)) entries;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, x) -> drain (x :: acc)
      in
      let drained = drain [] in
      let expected =
        List.mapi (fun i (p, v) -> (p, i, v)) entries
        |> List.stable_sort (fun (p1, i1, _) (p2, i2, _) ->
               match compare p1 p2 with 0 -> compare i1 i2 | c -> c)
      in
      drained = expected)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check (Alcotest.float 0.0) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then same := false
  done;
  check Alcotest.bool "different streams" false !same

let test_rng_float_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then fail "float out of [0,1)"
  done

let test_rng_int_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    if x < 0 || x >= 13 then fail "int out of range"
  done

let test_rng_bool_extremes () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=1" true (Rng.bool r ~p:1.0);
    check Alcotest.bool "p=0" false (Rng.bool r ~p:0.0)
  done

let test_rng_uniform_bounds () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 500 do
    let x = Rng.uniform r ~lo:5.0 ~hi:6.5 in
    if x < 5.0 || x >= 6.5 then fail "uniform out of bounds"
  done

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:3.0 in
    if x < 0.0 then fail "negative exponential";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 3.0) > 0.15 then
    fail (Printf.sprintf "exponential mean off: %f" mean)

let test_rng_normal_moments () =
  let r = Rng.create ~seed:13 in
  let n = 20_000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Rng.normal r ~mean:10.0 ~stddev:2.0)
  done;
  if abs_float (Stats.mean s -. 10.0) > 0.1 then fail "normal mean off";
  if abs_float (Stats.stddev s -. 2.0) > 0.1 then fail "normal stddev off"

let test_rng_lognormal_positive () =
  let r = Rng.create ~seed:15 in
  for _ = 1 to 1000 do
    if Rng.lognormal r ~mu:0.0 ~sigma:1.0 <= 0.0 then fail "lognormal not positive"
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:17 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let r = Rng.create ~seed:19 in
  let a = Rng.split r in
  let b = Rng.split r in
  let equal = ref true in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then equal := false
  done;
  check Alcotest.bool "split streams differ" false !equal

let test_rng_copy_snapshot () =
  let r = Rng.create ~seed:21 in
  ignore (Rng.float r);
  let c = Rng.copy r in
  check (Alcotest.float 0.0) "copy continues identically" (Rng.float r) (Rng.float c)

let stream rng = List.init 8 (fun _ -> Rng.int64 rng)

(* The property the sharded fabric rests on: shard [k]'s stream is a
   function of (root seed, k) alone — never of how many other shards
   exist or in what order they were created. *)
let test_rng_split_key_independent_of_population () =
  let streams_with ~shards =
    List.init shards (fun k ->
        let root = Rng.create ~seed:42 in
        stream (Rng.split_key root ~key:k))
  in
  let four = streams_with ~shards:4 in
  let sixteen = streams_with ~shards:16 in
  List.iteri
    (fun k s ->
      check (Alcotest.list Alcotest.int64)
        (Printf.sprintf "shard %d stream unchanged at 16 shards" k)
        s (List.nth sixteen k))
    four

let test_rng_split_key_pure () =
  let r = Rng.create ~seed:7 in
  let before = stream (Rng.copy r) in
  ignore (Rng.split_key r ~key:3);
  ignore (Rng.split_key r ~key:9);
  check (Alcotest.list Alcotest.int64) "parent not advanced" before (stream r)

let test_rng_split_key_distinct () =
  let r = Rng.create ~seed:5 in
  let a = stream (Rng.split_key r ~key:0) in
  let b = stream (Rng.split_key r ~key:1) in
  check Alcotest.bool "distinct keys, distinct streams" false (a = b)

let test_rng_split_key_zero_matches_split () =
  (* split_key ~key:0 is the same derivation split performs, minus the
     parent advance — pin that so the two stay interchangeable for the
     first child. *)
  let a = Rng.create ~seed:11 and b = Rng.create ~seed:11 in
  check (Alcotest.list Alcotest.int64) "key 0 = first split child"
    (stream (Rng.split a))
    (stream (Rng.split_key b ~key:0))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let test_sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !log)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  ignore (Sim.schedule sim ~delay:5.5 (fun () -> seen := Sim.now sim));
  Sim.run sim;
  check (Alcotest.float 1e-9) "clock at event" 5.5 !seen;
  check (Alcotest.float 1e-9) "clock after run" 5.5 (Sim.now sim)

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let ran = ref false in
  ignore (Sim.schedule sim ~delay:(-4.0) (fun () -> ran := true));
  Sim.run sim;
  check Alcotest.bool "ran at now" true !ran;
  check (Alcotest.float 0.0) "clock" 0.0 (Sim.now sim)

let test_sim_schedule_at_past () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:10.0 (fun () -> ()));
  Sim.run sim;
  let ran_at = ref 0.0 in
  ignore (Sim.schedule_at sim ~time:3.0 (fun () -> ran_at := Sim.now sim));
  Sim.run sim;
  check (Alcotest.float 1e-9) "clamped to now" 10.0 !ran_at

let test_sim_cancel () =
  let sim = Sim.create () in
  let ran = ref false in
  let h = Sim.schedule sim ~delay:1.0 (fun () -> ran := true) in
  Sim.cancel sim h;
  check Alcotest.bool "cancelled flag" true (Sim.is_cancelled sim h);
  Sim.run sim;
  check Alcotest.bool "not run" false !ran

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.run ~until:5.5 sim;
  check Alcotest.int "only first five" 5 !count;
  check (Alcotest.float 1e-9) "clock at horizon" 5.5 (Sim.now sim);
  Sim.run sim;
  check Alcotest.int "rest run later" 10 !count

let test_sim_run_for () =
  let sim = Sim.create () in
  Sim.run_for sim 100.0;
  check (Alcotest.float 1e-9) "advances on empty queue" 100.0 (Sim.now sim);
  Sim.run_for sim 50.0;
  check (Alcotest.float 1e-9) "cumulative" 150.0 (Sim.now sim)

let test_sim_every () =
  let sim = Sim.create () in
  let count = ref 0 in
  let h = Sim.every sim ~period:10.0 (fun () -> incr count) in
  Sim.run ~until:55.0 sim;
  check Alcotest.int "five ticks" 5 !count;
  Sim.cancel sim h;
  Sim.run ~until:200.0 sim;
  check Alcotest.int "stops after cancel" 5 !count

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Sim.schedule sim ~delay:1.0 (fun () -> incr count; if !count = 3 then Sim.stop sim))
  done;
  Sim.run sim;
  check Alcotest.int "stopped early" 3 !count

let test_sim_max_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec loop () =
    incr count;
    ignore (Sim.schedule sim ~delay:1.0 loop)
  in
  ignore (Sim.schedule sim ~delay:1.0 loop);
  Sim.run ~max_events:50 sim;
  check Alcotest.int "bounded" 50 !count

let test_sim_max_events_ignores_cancelled () =
  (* Regression: reaping a cancelled event from the queue must not
     charge the [max_events] budget — a bounded run would end early. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let handles =
    List.init 10 (fun i ->
        Sim.schedule sim ~delay:(float_of_int (i + 1)) (fun () -> incr count))
  in
  (* Cancel the five earliest events; the five live ones must all fit
     in a budget of exactly five executions. *)
  List.iteri (fun i h -> if i < 5 then Sim.cancel sim h) handles;
  Sim.run ~max_events:5 sim;
  check Alcotest.int "all live events ran" 5 !count;
  check Alcotest.int "executed counter agrees" 5 (Sim.events_executed sim)

let test_sim_max_events_keeps_clock () =
  (* Regression: exiting [run ~until] via [max_events] with events still
     queued before the horizon must NOT fast-forward the clock — the
     next [step] would move virtual time backwards. *)
  let sim = Sim.create () in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(float_of_int i) (fun () -> ()))
  done;
  Sim.run ~until:20.0 ~max_events:3 sim;
  check (Alcotest.float 1e-9) "clock at last executed event" 3.0 (Sim.now sim);
  ignore (Sim.step sim : bool);
  check (Alcotest.float 1e-9) "clock moves forward" 4.0 (Sim.now sim);
  Sim.run ~until:20.0 sim;
  check (Alcotest.float 1e-9) "horizon honoured once drained" 20.0 (Sim.now sim)

let test_sim_stop_keeps_clock () =
  let sim = Sim.create () in
  for i = 1 to 5 do
    ignore
      (Sim.schedule sim ~delay:(float_of_int i) (fun () ->
           if Sim.now sim >= 2.0 then Sim.stop sim))
  done;
  Sim.run ~until:50.0 sim;
  check (Alcotest.float 1e-9) "stopped at event time" 2.0 (Sim.now sim)

let test_sim_until_ff_past_queued_beyond_horizon () =
  (* The fast-forward is still correct when the next event lies beyond
     the horizon. *)
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:30.0 (fun () -> ()));
  Sim.run ~until:20.0 ~max_events:5 sim;
  check (Alcotest.float 1e-9) "fast-forwarded" 20.0 (Sim.now sim)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule sim ~delay:0.0 (fun () -> log := "inner" :: !log))));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := "later" :: !log));
  Sim.run sim;
  check (Alcotest.list Alcotest.string) "nested order" [ "outer"; "inner"; "later" ]
    (List.rev !log)

let test_sim_pending () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> ()));
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> ()));
  check Alcotest.int "two pending" 2 (Sim.pending sim);
  Sim.run sim;
  check Alcotest.int "drained" 0 (Sim.pending sim)

let test_sim_stale_handle_after_reuse () =
  (* Arena slots are recycled through a free list; a handle kept past
     its event's execution must not cancel whatever event now occupies
     the slot. *)
  let sim = Sim.create () in
  let stale = Sim.schedule sim ~delay:1.0 (fun () -> ()) in
  Sim.run sim;
  let ran = ref false in
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> ran := true));
  Sim.cancel sim stale;
  check Alcotest.bool "stale handle reads cancelled" true (Sim.is_cancelled sim stale);
  Sim.run sim;
  check Alcotest.bool "recycled slot's event still fires" true !ran

let test_sim_group_ready_fifo () =
  let sim = Sim.create () in
  let g = Sim.new_group sim in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         for i = 1 to 4 do
           ignore (Sim.schedule_group sim ~group:g ~delay:0.0 (fun () -> log := i :: !log))
         done));
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "ready queue drains FIFO" [ 1; 2; 3; 4 ]
    (List.rev !log)

let test_sim_group_drain_order () =
  (* Ready queues drain lowest group id first, and all ready work runs
     before the next heap pop — one group's immediate cascade never
     interleaves with another group's. *)
  let sim = Sim.create () in
  let g0 = Sim.new_group sim in
  let g1 = Sim.new_group sim in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         ignore (Sim.schedule_group sim ~group:g1 ~delay:0.0 (fun () -> log := "b0" :: !log));
         ignore (Sim.schedule_group sim ~group:g0 ~delay:0.0 (fun () -> log := "a0" :: !log));
         ignore (Sim.schedule sim ~delay:0.0 (fun () -> log := "heap" :: !log));
         ignore (Sim.schedule_group sim ~group:g0 ~delay:0.0 (fun () -> log := "a1" :: !log))));
  Sim.run sim;
  check
    (Alcotest.list Alcotest.string)
    "group 0 first, then group 1, heap event last"
    [ "a0"; "a1"; "b0"; "heap" ] (List.rev !log);
  check Alcotest.int "two groups allocated" 2 (Sim.groups sim)

let test_sim_group_positive_delay_uses_heap () =
  (* A positive delay through schedule_group is ordinary heap
     scheduling: the clock must advance to fire it. *)
  let sim = Sim.create () in
  let g = Sim.new_group sim in
  let at = ref 0.0 in
  ignore (Sim.schedule_group sim ~group:g ~delay:2.5 (fun () -> at := Sim.now sim));
  check Alcotest.int "nothing on the ready queue" 0 (Sim.ready_pending sim ~group:g);
  Sim.run sim;
  check (Alcotest.float 1e-9) "fired via the heap at +2.5" 2.5 !at

let test_sim_group_pending_counts () =
  let sim = Sim.create () in
  let g0 = Sim.new_group sim in
  let g1 = Sim.new_group sim in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         ignore (Sim.schedule_group sim ~group:g0 ~delay:0.0 (fun () -> ()));
         ignore (Sim.schedule_group sim ~group:g0 ~delay:0.0 (fun () -> ()));
         ignore (Sim.schedule_group sim ~group:g1 ~delay:0.0 (fun () -> ()));
         check Alcotest.int "g0 ready" 2 (Sim.ready_pending sim ~group:g0);
         check Alcotest.int "g1 ready" 1 (Sim.ready_pending sim ~group:g1);
         check Alcotest.int "pending counts ready events" 3 (Sim.pending sim)));
  Sim.run sim;
  check Alcotest.int "all drained" 0 (Sim.pending sim)

let test_sim_group_cancel_ready () =
  let sim = Sim.create () in
  let g = Sim.new_group sim in
  let ran = ref false in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         let h = Sim.schedule_group sim ~group:g ~delay:0.0 (fun () -> ran := true) in
         Sim.cancel sim h));
  Sim.run sim;
  check Alcotest.bool "cancelled ready event did not run" false !ran

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  check Alcotest.int "count" 0 (Stats.count s);
  check Alcotest.bool "mean nan" true (Float.is_nan (Stats.mean s));
  check Alcotest.bool "percentile nan" true (Float.is_nan (Stats.percentile s 50.0))

let test_stats_known_values () =
  let s = Stats.create () in
  Stats.add_all s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "variance" (32.0 /. 7.0) (Stats.variance s);
  check (Alcotest.float 0.0) "min" 2.0 (Stats.min s);
  check (Alcotest.float 0.0) "max" 9.0 (Stats.max s)

let test_stats_percentiles () =
  let s = Stats.create () in
  Stats.add_all s [ 1.0; 2.0; 3.0; 4.0 ];
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "median interp" 2.5 (Stats.median s);
  check (Alcotest.float 1e-9) "p25" 1.75 (Stats.percentile s 25.0)

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 42.0;
  check (Alcotest.float 0.0) "mean" 42.0 (Stats.mean s);
  check Alcotest.bool "variance nan" true (Float.is_nan (Stats.variance s));
  check (Alcotest.float 0.0) "median" 42.0 (Stats.median s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_all a [ 1.0; 2.0 ];
  Stats.add_all b [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check Alcotest.int "count" 4 (Stats.count m);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean m)

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add_all s [ 1.0; 2.0 ];
  Stats.clear s;
  check Alcotest.int "count" 0 (Stats.count s);
  Stats.add s 5.0;
  check (Alcotest.float 0.0) "usable" 5.0 (Stats.mean s)

let test_stats_samples_order () =
  let s = Stats.create () in
  Stats.add_all s [ 3.0; 1.0; 2.0 ];
  check (Alcotest.array (Alcotest.float 0.0)) "insertion order" [| 3.0; 1.0; 2.0 |]
    (Stats.samples s)

let test_stats_nan_sorts_first () =
  (* [Float.compare] gives NaN a deterministic position (smallest);
     polymorphic compare relied on the boxed-float fallback. *)
  let s = Stats.create () in
  Stats.add_all s [ 2.0; nan; 1.0 ];
  check Alcotest.bool "p0 is the NaN" true (Float.is_nan (Stats.percentile s 0.0));
  check (Alcotest.float 1e-9) "p100 unaffected" 2.0 (Stats.percentile s 100.0)

let test_stats_pp_empty () =
  (* An empty accumulator must render, not raise or print NaNs. *)
  let s = Stats.create () in
  check Alcotest.string "renders n=0" "n=0" (Format.asprintf "%a" Stats.pp s)

let test_stats_pp_single () =
  let s = Stats.create () in
  Stats.add s 42.0;
  let out = Format.asprintf "%a" Stats.pp s in
  check Alcotest.bool "mentions n=1" true
    (String.length out >= 4 && String.sub out 0 4 = "n=1 ");
  (* A single sample has undefined variance but pp must still produce
     the mean/percentiles. *)
  check Alcotest.bool "mentions the value" true
    (let needle = "42.000" in
     let nl = String.length needle and hl = String.length out in
     let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
     go 0)

let test_stats_percentile_after_more_adds () =
  (* The sorted cache must invalidate on insertion. *)
  let s = Stats.create () in
  Stats.add_all s [ 10.0; 20.0 ];
  ignore (Stats.median s);
  Stats.add s 0.0;
  check (Alcotest.float 1e-9) "median updated" 10.0 (Stats.median s)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Stats.create () in
      Stats.add_all s xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(list_of_size Gen.(2 -- 50) (float_range 0.0 100.0))
    (fun xs ->
      let s = Stats.create () in
      Stats.add_all s xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | [ _ ] | [] -> true
      in
      mono vals)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_points_sorted () =
  let s = Series.create () in
  Series.add s ~time:3.0 ~value:30.0;
  Series.add s ~time:1.0 ~value:10.0;
  Series.add s ~time:2.0 ~value:20.0;
  let times = List.map (fun (p : Series.point) -> p.time) (Series.points s) in
  check (Alcotest.list (Alcotest.float 0.0)) "sorted" [ 1.0; 2.0; 3.0 ] times

let test_series_between () =
  let s = Series.create () in
  List.iter (fun t -> Series.add s ~time:t ~value:t) [ 0.0; 1.0; 2.0; 3.0; 4.0 ];
  let got = List.map (fun (p : Series.point) -> p.time) (Series.between s ~lo:1.0 ~hi:3.0) in
  check (Alcotest.list (Alcotest.float 0.0)) "half-open window" [ 1.0; 2.0 ] got

let test_series_stats () =
  let s = Series.create () in
  List.iter (fun v -> Series.add s ~time:v ~value:v) [ 1.0; 2.0; 3.0 ];
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean (Series.stats s));
  check Alcotest.int "count between" 1
    (Stats.count (Series.stats_between s ~lo:1.5 ~hi:2.5))

let test_series_window_average () =
  let s = Series.create () in
  Series.add s ~time:0.5 ~value:10.0;
  Series.add s ~time:0.7 ~value:20.0;
  Series.add s ~time:2.5 ~value:30.0;
  let windows = Series.window_average s ~width:1.0 in
  match windows with
  | [ w0; w2 ] ->
    check (Alcotest.float 1e-9) "first window mean" 15.0 w0.Series.value;
    check (Alcotest.float 1e-9) "first window mid" 0.5 w0.Series.time;
    check (Alcotest.float 1e-9) "skip empty window" 30.0 w2.Series.value;
    check (Alcotest.float 1e-9) "third window mid" 2.5 w2.Series.time
  | _ -> fail "expected exactly two windows"

let test_series_map_values () =
  let s = Series.create () in
  Series.add s ~time:1.0 ~value:2.0;
  let doubled = Series.map_values s (fun v -> v *. 2.0) in
  check (Alcotest.float 0.0) "mapped" 4.0 (List.hd (Series.values doubled))

let prop_series_window_preserves_weighted_mean =
  QCheck.Test.make ~name:"series length preserved by map" ~count:100
    QCheck.(list (pair (float_range 0.0 100.0) (float_range 0.0 10.0)))
    (fun pts ->
      let s = Series.create () in
      List.iter (fun (t, v) -> Series.add s ~time:t ~value:v) pts;
      Series.length (Series.map_values s (fun v -> v +. 1.0)) = List.length pts)

(* ------------------------------------------------------------------ *)

let qtests = [ prop_heap_sorted; prop_stats_mean_bounded; prop_stats_percentile_monotone;
               prop_series_window_preserves_weighted_mean ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine"
    [
      ( "heap",
        [
          tc "empty" test_heap_empty;
          tc "order" test_heap_order;
          tc "fifo ties" test_heap_fifo_ties;
          tc "peek nondestructive" test_heap_peek_nondestructive;
          tc "interleaved" test_heap_interleaved;
          tc "pop_exn" test_heap_pop_exn;
          tc "clear" test_heap_clear;
          tc "iter_unordered" test_heap_iter_unordered;
          tc "growth" test_heap_growth;
        ] );
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "seeds differ" test_rng_seeds_differ;
          tc "float range" test_rng_float_range;
          tc "int range" test_rng_int_range;
          tc "bool extremes" test_rng_bool_extremes;
          tc "uniform bounds" test_rng_uniform_bounds;
          tc "exponential mean" test_rng_exponential_mean;
          tc "normal moments" test_rng_normal_moments;
          tc "lognormal positive" test_rng_lognormal_positive;
          tc "shuffle permutation" test_rng_shuffle_permutation;
          tc "split independent" test_rng_split_independent;
          tc "copy snapshot" test_rng_copy_snapshot;
          tc "split_key population-independent" test_rng_split_key_independent_of_population;
          tc "split_key pure" test_rng_split_key_pure;
          tc "split_key distinct" test_rng_split_key_distinct;
          tc "split_key key 0 = split" test_rng_split_key_zero_matches_split;
        ] );
      ( "sim",
        [
          tc "schedule order" test_sim_schedule_order;
          tc "same-time fifo" test_sim_same_time_fifo;
          tc "clock advances" test_sim_clock_advances;
          tc "negative delay clamped" test_sim_negative_delay_clamped;
          tc "schedule_at past" test_sim_schedule_at_past;
          tc "cancel" test_sim_cancel;
          tc "until" test_sim_until;
          tc "run_for" test_sim_run_for;
          tc "every" test_sim_every;
          tc "stop" test_sim_stop;
          tc "max_events" test_sim_max_events;
          tc "max_events ignores cancelled" test_sim_max_events_ignores_cancelled;
          tc "max_events keeps clock" test_sim_max_events_keeps_clock;
          tc "stop keeps clock" test_sim_stop_keeps_clock;
          tc "ff past horizon-queued" test_sim_until_ff_past_queued_beyond_horizon;
          tc "nested scheduling" test_sim_nested_scheduling;
          tc "pending" test_sim_pending;
          tc "stale handle after slot reuse" test_sim_stale_handle_after_reuse;
          tc "group ready fifo" test_sim_group_ready_fifo;
          tc "group drain order" test_sim_group_drain_order;
          tc "group positive delay via heap" test_sim_group_positive_delay_uses_heap;
          tc "group pending counts" test_sim_group_pending_counts;
          tc "group cancel ready" test_sim_group_cancel_ready;
        ] );
      ( "stats",
        [
          tc "empty" test_stats_empty;
          tc "known values" test_stats_known_values;
          tc "percentiles" test_stats_percentiles;
          tc "single" test_stats_single;
          tc "merge" test_stats_merge;
          tc "clear" test_stats_clear;
          tc "samples order" test_stats_samples_order;
          tc "nan ordering" test_stats_nan_sorts_first;
          tc "cache invalidation" test_stats_percentile_after_more_adds;
          tc "pp empty" test_stats_pp_empty;
          tc "pp single sample" test_stats_pp_single;
        ] );
      ( "series",
        [
          tc "points sorted" test_series_points_sorted;
          tc "between" test_series_between;
          tc "stats" test_series_stats;
          tc "window average" test_series_window_average;
          tc "map values" test_series_map_values;
        ] );
      ("properties", List.map (QCheck_alcotest.to_alcotest ~long:false) qtests);
    ]
