(* Tests for the weaker broadcast orderings: vector clocks, FIFO
   broadcast, causal broadcast, and the corresponding checkers. *)

open Dpu_kernel
module P = Dpu_protocols
module V = Dpu_protocols.Vclock
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Latency = Dpu_net.Latency

let check = Alcotest.check

type Payload.t += Blob of int * int  (* origin, seq *)

(* ------------------------------------------------------------------ *)
(* Vector clocks                                                      *)
(* ------------------------------------------------------------------ *)

let test_vclock_basic () =
  let z = V.zero ~n:3 in
  check Alcotest.int "size" 3 (V.size z);
  check Alcotest.int "zero" 0 (V.get z 1);
  let t = V.tick z 1 in
  check Alcotest.int "ticked" 1 (V.get t 1);
  check Alcotest.int "immutably" 0 (V.get z 1);
  check Alcotest.bool "zero leq t" true (V.leq z t);
  check Alcotest.bool "t not leq zero" false (V.leq t z);
  check Alcotest.bool "lt" true (V.lt z t);
  check Alcotest.bool "not lt self" false (V.lt t t)

let test_vclock_merge_concurrent () =
  let z = V.zero ~n:2 in
  let a = V.tick z 0 in
  let b = V.tick z 1 in
  check Alcotest.bool "concurrent" true (V.concurrent a b);
  let m = V.merge a b in
  check (Alcotest.list Alcotest.int) "merge" [ 1; 1 ] (V.to_list m);
  check Alcotest.bool "a leq merge" true (V.leq a m);
  check Alcotest.bool "b leq merge" true (V.leq b m)

let test_vclock_deliverable () =
  let at = V.of_list [ 2; 1; 0 ] in
  (* Next message from sender 0 is its 3rd (component becomes 3). *)
  check Alcotest.bool "next from 0" true
    (V.deliverable (V.of_list [ 3; 1; 0 ]) ~at ~sender:0);
  check Alcotest.bool "skips one" false
    (V.deliverable (V.of_list [ 4; 1; 0 ]) ~at ~sender:0);
  check Alcotest.bool "missing dependency" false
    (V.deliverable (V.of_list [ 3; 1; 1 ]) ~at ~sender:0);
  check Alcotest.bool "old duplicate" false
    (V.deliverable (V.of_list [ 2; 1; 0 ]) ~at ~sender:0)

let prop_vclock_merge_lub =
  QCheck.Test.make ~name:"merge is the least upper bound" ~count:200
    QCheck.(pair (list_of_size (Gen.return 4) (int_range 0 5))
              (list_of_size (Gen.return 4) (int_range 0 5)))
    (fun (a, b) ->
      let va = V.of_list a and vb = V.of_list b in
      let m = V.merge va vb in
      V.leq va m && V.leq vb m
      && List.for_all2 (fun x y -> max x y = y) a (V.to_list m)
      |> fun upper ->
      upper
      && (* minimality: any other upper bound dominates the merge *)
      V.leq m (V.merge m (V.of_list [ 9; 9; 9; 9 ])))

let prop_vclock_leq_partial_order =
  QCheck.Test.make ~name:"leq is a partial order" ~count:200
    QCheck.(triple (list_of_size (Gen.return 3) (int_range 0 4))
              (list_of_size (Gen.return 3) (int_range 0 4))
              (list_of_size (Gen.return 3) (int_range 0 4)))
    (fun (a, b, c) ->
      let va = V.of_list a and vb = V.of_list b and vc = V.of_list c in
      let refl = V.leq va va in
      let antisym = (not (V.leq va vb && V.leq vb va)) || V.equal va vb in
      let trans = (not (V.leq va vb && V.leq vb vc)) || V.leq va vc in
      refl && antisym && trans)

(* ------------------------------------------------------------------ *)
(* FIFO broadcast                                                     *)
(* ------------------------------------------------------------------ *)

(* A network with wildly variable latency, to force reordering. *)
let make_system ?(n = 3) ?(seed = 1) () =
  let link =
    { Latency.model = Latency.Uniform { lo = 0.1; hi = 8.0 }; bandwidth_mbps = 100.0 }
  in
  let system = System.create ~seed ~link ~n () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Rbcast.register system;
  P.Fifo_bcast.register system;
  P.Causal_bcast.register system;
  system

let logs_of system svc deliver_case =
  List.init (System.n system) (fun node ->
      let log = ref [] in
      ignore
        (Stack.add_module (System.stack system node) ~name:"spy" ~provides:[]
           ~requires:[ svc ]
           (fun _ _ ->
             {
               Stack.default_handlers with
               handle_indication =
                 (fun s p ->
                   if Service.equal s svc then
                     match deliver_case p with
                     | Some (origin, seq) -> log := (origin, seq) :: !log
                     | None -> ());
             }));
      log)

let fifo_case = function
  | P.Fifo_bcast.Deliver { payload = Blob (o, s); _ } -> Some (o, s)
  | _ -> None

let causal_case = function
  | P.Causal_bcast.Deliver { payload = Blob (o, s); _ } -> Some (o, s)
  | _ -> None

let test_fifo_per_sender_order () =
  let system = make_system ~seed:3 () in
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack P.Fifo_bcast.service);
  let logs = logs_of system P.Fifo_bcast.service fifo_case in
  (* Rapid-fire bursts from every node: the jittery network will
     reorder the wire messages; fifo must straighten each sender. *)
  for i = 0 to 9 do
    for node = 0 to 2 do
      Stack.call (System.stack system node) P.Fifo_bcast.service
        (P.Fifo_bcast.Bcast { size = 64; payload = Blob (node, i) })
    done
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  let node_logs = List.mapi (fun node log -> (node, List.rev !log)) logs in
  List.iter
    (fun (_, log) -> check Alcotest.int "all delivered" 30 (List.length log))
    node_logs;
  let report = Dpu_props.Order_props.fifo_order node_logs in
  check Alcotest.bool "fifo order holds" true report.Dpu_props.Report.ok;
  (* Different senders may interleave differently: fifo is weaker than
     total order, and on this jittery network two nodes almost surely
     disagree on the global interleaving. *)
  let seqs = List.map snd node_logs in
  check Alcotest.bool "no accidental total order" true
    (match seqs with a :: rest -> List.exists (fun s -> s <> a) rest | [] -> false)

let test_fifo_checker_rejects () =
  let bad = [ (0, [ (1, 0); (1, 2) ]) ] in
  check Alcotest.bool "gap caught" false
    (Dpu_props.Order_props.fifo_order bad).Dpu_props.Report.ok;
  let swapped = [ (0, [ (1, 1); (1, 0) ]) ] in
  check Alcotest.bool "swap caught" false
    (Dpu_props.Order_props.fifo_order swapped).Dpu_props.Report.ok

(* ------------------------------------------------------------------ *)
(* Causal broadcast                                                   *)
(* ------------------------------------------------------------------ *)

let test_causal_happened_before () =
  (* node 0 broadcasts a; node 1, after delivering a, broadcasts b;
     every node must deliver a before b — even though the network is
     jittery enough that b's wire copies can overtake a's. *)
  let system = make_system ~seed:5 () in
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack P.Causal_bcast.service);
  let logs = logs_of system P.Causal_bcast.service causal_case in
  (* Chain of length 12 bouncing between nodes: each broadcast reacts
     to delivery of the previous one. *)
  let rec chain k node =
    if k < 12 then begin
      ignore
        (Stack.add_module (System.stack system node) ~name:"reactor" ~provides:[]
           ~requires:[ P.Causal_bcast.service ]
           (fun stack _ ->
             let fired = ref false in
             {
               Stack.default_handlers with
               handle_indication =
                 (fun s p ->
                   if Service.equal s P.Causal_bcast.service && not !fired then
                     match p with
                     | P.Causal_bcast.Deliver { payload = Blob (_, s'); _ } when s' = k - 1
                       ->
                       fired := true;
                       Stack.call stack P.Causal_bcast.service
                         (P.Causal_bcast.Bcast { size = 64; payload = Blob (node, k) })
                     | _ -> ());
             }));
      chain (k + 1) ((node + 1) mod 3)
    end
  in
  chain 1 1;
  Stack.call (System.stack system 0) P.Causal_bcast.service
    (P.Causal_bcast.Bcast { size = 64; payload = Blob (0, 0) });
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iteri
    (fun node log ->
      let seqs = List.rev_map snd !log in
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "node %d delivers the chain in causal order" node)
        (List.init 12 (fun i -> i))
        seqs)
    logs

let test_causal_concurrent_free () =
  (* Concurrent broadcasts may interleave differently across nodes, but
     causal pairs must agree — checked with the causal_order checker
     fed by the protocol's own stamps. *)
  let system = make_system ~seed:7 () in
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack P.Causal_bcast.service);
  let logs = logs_of system P.Causal_bcast.service causal_case in
  let stamps = ref [] in
  for i = 0 to 7 do
    for node = 0 to 2 do
      ignore
        (Clock.defer (System.clock system)
           ~delay:(float_of_int i *. 5.0)
           (fun () ->
             (* Record the stamp the module will use: its clock ticked
                at its own component. *)
             let stack = System.stack system node in
             (match P.Causal_bcast.clock stack with
             | Some vc ->
               stamps := (((node, i) : int * int), V.to_list (V.tick vc node)) :: !stamps
             | None -> ());
             Stack.call stack P.Causal_bcast.service
               (P.Causal_bcast.Bcast { size = 64; payload = Blob (node, i) })))
    done
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  let deliveries = List.mapi (fun node log -> (node, List.rev !log)) logs in
  List.iter
    (fun (_, log) -> check Alcotest.int "all delivered" 24 (List.length log))
    deliveries;
  let report = Dpu_props.Order_props.causal_order ~stamps:!stamps ~deliveries in
  check Alcotest.bool
    (Format.asprintf "%a" Dpu_props.Report.pp report)
    true report.Dpu_props.Report.ok;
  check Alcotest.bool "some causal pairs were actually checked" true
    (report.Dpu_props.Report.checked > 0)

let test_causal_checker_rejects () =
  let stamps = [ ((0, 0), [ 1; 0 ]); ((1, 0), [ 1; 1 ]) ] in
  (* (0,0) happened before (1,0); node 0 delivered them swapped. *)
  let deliveries = [ (0, [ (1, 0); (0, 0) ]) ] in
  check Alcotest.bool "causal violation caught" false
    (Dpu_props.Order_props.causal_order ~stamps ~deliveries).Dpu_props.Report.ok

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ordering"
    [
      ( "vclock",
        [
          tc "basics" test_vclock_basic;
          tc "merge / concurrency" test_vclock_merge_concurrent;
          tc "deliverability" test_vclock_deliverable;
        ] );
      ( "fifo",
        [
          tc "per-sender order on a jittery net" test_fifo_per_sender_order;
          tc "checker rejects" test_fifo_checker_rejects;
        ] );
      ( "causal",
        [
          tc "happened-before chain" test_causal_happened_before;
          tc "concurrent load, checker-verified" test_causal_concurrent_free;
          tc "checker rejects" test_causal_checker_rejects;
        ] );
      ( "properties",
        List.map
          (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_vclock_merge_lub; prop_vclock_leq_partial_order ] );
    ]
