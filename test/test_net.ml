(* Tests for the simulated datagram network. *)

module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng
module Latency = Dpu_net.Latency
module Datagram = Dpu_net.Datagram

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Latency models                                                     *)
(* ------------------------------------------------------------------ *)

let test_latency_constant () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10 do
    check (Alcotest.float 0.0) "constant" 2.5 (Latency.sample (Latency.Constant 2.5) rng)
  done

let test_latency_floor () =
  let rng = Rng.create ~seed:1 in
  check (Alcotest.float 0.0) "floored" 0.001
    (Latency.sample (Latency.Constant 0.0) rng)

let test_latency_uniform_bounds () =
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let d = Latency.sample (Latency.Uniform { lo = 1.0; hi = 2.0 }) rng in
    if d < 1.0 || d >= 2.0 then fail "uniform latency out of bounds"
  done

let test_latency_lognormal_median () =
  let rng = Rng.create ~seed:3 in
  let model = Latency.Lognormal { median = 0.5; sigma = 0.3 } in
  let samples = List.init 20_000 (fun _ -> Latency.sample model rng) in
  let below = List.length (List.filter (fun d -> d < 0.5) samples) in
  let frac = float_of_int below /. 20_000.0 in
  if abs_float (frac -. 0.5) > 0.02 then
    fail (Printf.sprintf "median fraction %f" frac)

let test_latency_bandwidth_term () =
  let rng = Rng.create ~seed:4 in
  let link = { Latency.model = Latency.Constant 1.0; bandwidth_mbps = 100.0 } in
  (* 4096 bytes at 100 Mb/s = 32768 bits / 100_000 bits-per-ms ~ 0.328 ms *)
  let d = Latency.delay link rng ~size_bytes:4096 in
  check (Alcotest.float 1e-6) "propagation + transmission" (1.0 +. 0.32768) d

let test_latency_infinite_bandwidth () =
  let rng = Rng.create ~seed:5 in
  let d = Latency.delay (Latency.constant 2.0) rng ~size_bytes:1_000_000 in
  check (Alcotest.float 0.0) "no transmission term" 2.0 d

(* ------------------------------------------------------------------ *)
(* Datagram network                                                   *)
(* ------------------------------------------------------------------ *)

let make_net ?(n = 3) ?(loss = 0.0) ?(dup = 0.0) ?link () =
  let sim = Sim.create ~seed:7 () in
  let link = match link with Some l -> l | None -> Latency.constant 1.0 in
  let net = Datagram.create sim ~n ~loss ~dup ~link () in
  (sim, net)

let inbox net node =
  let log = ref [] in
  Datagram.set_handler net ~node (fun ~src payload -> log := (src, payload) :: !log);
  log

let test_delivery () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:100 "hello";
  Sim.run sim;
  check Alcotest.int "one datagram" 1 (List.length !inbox1);
  check Alcotest.bool "content" true (!inbox1 = [ (0, "hello") ])

let test_self_send () =
  let sim, net = make_net () in
  let inbox0 = inbox net 0 in
  Datagram.send net ~src:0 ~dst:0 ~size_bytes:10 "loop";
  Sim.run sim;
  check Alcotest.int "delivered to self" 1 (List.length !inbox0)

let test_no_handler_blocked () =
  let sim, net = make_net () in
  Datagram.send net ~src:0 ~dst:2 ~size_bytes:10 "void";
  Sim.run sim;
  check Alcotest.int "blocked count" 1 (Datagram.counters net).Datagram.blocked

let test_loss_one () =
  let sim, net = make_net ~loss:1.0 () in
  let inbox1 = inbox net 1 in
  for _ = 1 to 20 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x"
  done;
  Sim.run sim;
  check Alcotest.int "all lost" 0 (List.length !inbox1);
  check Alcotest.int "counted" 20 (Datagram.counters net).Datagram.lost

let test_loss_zero () =
  let sim, net = make_net ~loss:0.0 () in
  let inbox1 = inbox net 1 in
  for _ = 1 to 20 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x"
  done;
  Sim.run sim;
  check Alcotest.int "all delivered" 20 (List.length !inbox1)

let test_self_send_never_lost () =
  let sim, net = make_net ~loss:1.0 () in
  let inbox0 = inbox net 0 in
  Datagram.send net ~src:0 ~dst:0 ~size_bytes:10 "x";
  Sim.run sim;
  check Alcotest.int "loopback reliable" 1 (List.length !inbox0)

let test_duplication () =
  let sim, net = make_net ~dup:1.0 () in
  let inbox1 = inbox net 1 in
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  Sim.run sim;
  check Alcotest.int "two copies" 2 (List.length !inbox1);
  check Alcotest.int "dup counter" 1 (Datagram.counters net).Datagram.duplicated

let test_dup_bytes_accounting () =
  (* [bytes] counts each datagram once at send; the duplication
     process's extra wire traffic is exactly [dup_bytes] on top. *)
  let sim, net = make_net ~dup:1.0 () in
  let inbox1 = inbox net 1 in
  let sizes = [ 10; 200; 3_000; 47 ] in
  List.iter (fun s -> Datagram.send net ~src:0 ~dst:1 ~size_bytes:s "x") sizes;
  Sim.run sim;
  let total = List.fold_left ( + ) 0 sizes in
  let c = Datagram.counters net in
  check Alcotest.int "every datagram duplicated" (List.length sizes)
    c.Datagram.duplicated;
  check Alcotest.int "dup_bytes = bytes of the extra copies" total
    c.Datagram.dup_bytes;
  check Alcotest.int "bytes counts each datagram once" total c.Datagram.bytes;
  check Alcotest.int "delivered = sent + duplicated"
    (c.Datagram.sent + c.Datagram.duplicated)
    c.Datagram.delivered;
  check Alcotest.int "receiver saw every copy"
    (c.Datagram.delivered)
    (List.length !inbox1)

let test_crash_dst () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.crash net 1;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  Sim.run sim;
  check Alcotest.int "nothing" 0 (List.length !inbox1);
  check Alcotest.bool "is_crashed" true (Datagram.is_crashed net 1)

let test_crash_src () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.crash net 0;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  Sim.run sim;
  check Alcotest.int "sender silenced" 0 (List.length !inbox1);
  check Alcotest.int "not even counted sent" 0 (Datagram.counters net).Datagram.sent

let test_crash_in_flight () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  (* Crash while the datagram is in flight (delivery at t=1). *)
  ignore (Sim.schedule sim ~delay:0.5 (fun () -> Datagram.crash net 1));
  Sim.run sim;
  check Alcotest.int "dropped at arrival" 0 (List.length !inbox1)

let test_correct_nodes () =
  let _sim, net = make_net ~n:4 () in
  Datagram.crash net 2;
  check (Alcotest.list Alcotest.int) "correct" [ 0; 1; 3 ] (Datagram.correct_nodes net)

let test_partition () =
  let sim, net = make_net ~n:4 () in
  let inbox1 = inbox net 1 in
  let inbox3 = inbox net 3 in
  Datagram.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "same-side";
  Datagram.send net ~src:0 ~dst:3 ~size_bytes:10 "cross";
  Sim.run sim;
  check Alcotest.int "same side delivered" 1 (List.length !inbox1);
  check Alcotest.int "cross dropped" 0 (List.length !inbox3)

let test_heal () =
  let sim, net = make_net ~n:2 () in
  let inbox1 = inbox net 1 in
  Datagram.partition net [ [ 0 ]; [ 1 ] ];
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "blocked";
  Sim.run sim;
  Datagram.heal net;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "after";
  Sim.run sim;
  check Alcotest.int "only post-heal" 1 (List.length !inbox1)

let test_partition_implicit_group () =
  let sim, net = make_net ~n:3 () in
  let inbox2 = inbox net 2 in
  (* Node 2 not mentioned: forms its own group. *)
  Datagram.partition net [ [ 0; 1 ] ];
  Datagram.send net ~src:0 ~dst:2 ~size_bytes:10 "x";
  Sim.run sim;
  check Alcotest.int "isolated" 0 (List.length !inbox2)

let test_drop_filter () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.set_drop_filter net (Some (fun ~src:_ ~dst:_ p -> p = "drop-me"));
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "drop-me";
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "keep-me";
  Sim.run sim;
  check Alcotest.int "one delivered" 1 (List.length !inbox1);
  Datagram.set_drop_filter net None;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "drop-me";
  Sim.run sim;
  check Alcotest.int "filter removed" 2 (List.length !inbox1)

let test_filtered_counted_separately () =
  (* Regression: filter drops must not be conflated with stochastic
     loss — fault-injection drops stay distinguishable in reports. *)
  let sim, net = make_net ~loss:0.0 () in
  ignore (inbox net 1);
  Datagram.set_drop_filter net (Some (fun ~src:_ ~dst:_ p -> p = "drop-me"));
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "drop-me";
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "keep-me";
  Sim.run sim;
  let c = Datagram.counters net in
  check Alcotest.int "filtered" 1 c.Datagram.filtered;
  check Alcotest.int "not lost" 0 c.Datagram.lost;
  check Alcotest.int "delivered" 1 c.Datagram.delivered

let test_recover () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.crash net 1;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "while-down";
  Sim.run sim;
  check Alcotest.int "nothing while down" 0 (List.length !inbox1);
  Datagram.recover net 1;
  check Alcotest.bool "not crashed" false (Datagram.is_crashed net 1);
  check (Alcotest.list Alcotest.int) "correct again" [ 0; 1; 2 ]
    (Datagram.correct_nodes net);
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "after-recover";
  Sim.run sim;
  check Alcotest.int "delivery resumes" 1 (List.length !inbox1);
  check Alcotest.bool "lost send stays lost" true (!inbox1 = [ (0, "after-recover") ])

let test_recover_resets_egress_clock () =
  let sim = Sim.create ~seed:7 () in
  let link = { Latency.model = Latency.Constant 0.1; bandwidth_mbps = 100.0 } in
  let net = Datagram.create sim ~n:2 ~link () in
  Datagram.set_handler net ~node:1 (fun ~src:_ _ -> ());
  for _ = 1 to 10 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:12_500 "1ms-each"
  done;
  check (Alcotest.float 1e-6) "backlog built" 10.0 (Datagram.egress_backlog_ms net ~node:0);
  Datagram.crash net 0;
  Sim.run ~until:1.0 sim;
  Datagram.recover net 0;
  check (Alcotest.float 0.0) "rebooted interface is idle" 0.0
    (Datagram.egress_backlog_ms net ~node:0)

let test_blocked_cause_counters () =
  let sim, net = make_net ~n:4 () in
  ignore (inbox net 1);
  (* no handler on node 3 *)
  Datagram.crash net 2;
  Datagram.send net ~src:0 ~dst:2 ~size_bytes:10 "to-crashed";
  Datagram.send net ~src:0 ~dst:3 ~size_bytes:10 "to-handlerless";
  Sim.run sim;
  Datagram.partition net [ [ 0 ]; [ 1 ] ];
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "cross-partition";
  Sim.run sim;
  let c = Datagram.counters net in
  check Alcotest.int "crash cause" 1 c.Datagram.blocked_crash;
  check Alcotest.int "partition cause" 1 c.Datagram.blocked_partition;
  check Alcotest.int "no-handler cause" 1 c.Datagram.blocked_no_handler;
  check Alcotest.int "total" 3 c.Datagram.blocked

let test_set_dup_dynamic () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.set_dup net 1.0;
  check (Alcotest.float 0.0) "getter" 1.0 (Datagram.dup net);
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  Sim.run sim;
  Datagram.set_dup net 0.0;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "y";
  Sim.run sim;
  check Alcotest.int "two then one" 3 (List.length !inbox1)

let test_set_loss_dynamic () =
  let sim, net = make_net () in
  let inbox1 = inbox net 1 in
  Datagram.set_loss net 1.0;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "x";
  Sim.run sim;
  Datagram.set_loss net 0.0;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "y";
  Sim.run sim;
  check Alcotest.int "only second" 1 (List.length !inbox1)

let test_counters_bytes () =
  let sim, net = make_net () in
  ignore (inbox net 1);
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:123 "x";
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:77 "y";
  Sim.run sim;
  let c = Datagram.counters net in
  check Alcotest.int "bytes" 200 c.Datagram.bytes;
  check Alcotest.int "sent" 2 c.Datagram.sent;
  check Alcotest.int "delivered" 2 c.Datagram.delivered

let test_egress_serialization () =
  (* A burst of large datagrams from one node must be spread out by the
     transmission time; with a constant propagation delay the arrival
     spacing equals size/bandwidth. *)
  let sim = Sim.create ~seed:7 () in
  let link = { Latency.model = Latency.Constant 0.1; bandwidth_mbps = 100.0 } in
  let net = Datagram.create sim ~n:2 ~link () in
  let arrivals = ref [] in
  Datagram.set_handler net ~node:1 (fun ~src:_ _ -> arrivals := Sim.now sim :: !arrivals);
  for _ = 1 to 5 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:4096 "big"
  done;
  Sim.run sim;
  let times = List.rev !arrivals in
  check Alcotest.int "all arrived" 5 (List.length times);
  let transmission = 4096.0 *. 8.0 /. (100.0 *. 1000.0) in
  let last = List.nth times 4 and first = List.hd times in
  check (Alcotest.float 1e-6) "serialised spacing" (4.0 *. transmission) (last -. first)

let test_egress_backlog_reported () =
  let sim = Sim.create ~seed:7 () in
  let link = { Latency.model = Latency.Constant 0.1; bandwidth_mbps = 100.0 } in
  let net = Datagram.create sim ~n:2 ~link () in
  Datagram.set_handler net ~node:1 (fun ~src:_ _ -> ());
  check (Alcotest.float 0.0) "idle" 0.0 (Datagram.egress_backlog_ms net ~node:0);
  for _ = 1 to 10 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:12_500 "1ms-each"
  done;
  (* 10 x 1 ms of transmission queued. *)
  check (Alcotest.float 1e-6) "ten ms queued" 10.0 (Datagram.egress_backlog_ms net ~node:0);
  Sim.run ~until:4.0 sim;
  check (Alcotest.float 1e-6) "drains with time" 6.0 (Datagram.egress_backlog_ms net ~node:0);
  Sim.run sim;
  check (Alcotest.float 0.0) "fully drained" 0.0 (Datagram.egress_backlog_ms net ~node:0)

let test_link_override () =
  let sim = Sim.create ~seed:7 () in
  let net = Datagram.create sim ~n:3 ~link:(Latency.constant 0.5) () in
  Datagram.set_link_override net ~src:0 ~dst:2 (Some (Latency.constant 40.0));
  let arrivals = ref [] in
  for node = 1 to 2 do
    Datagram.set_handler net ~node (fun ~src:_ tag ->
        arrivals := (tag, Sim.now sim) :: !arrivals)
  done;
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "lan";
  Datagram.send net ~src:0 ~dst:2 ~size_bytes:10 "wan";
  Sim.run sim;
  let time_of tag = List.assoc tag !arrivals in
  check (Alcotest.float 1e-6) "lan fast" 0.5 (time_of "lan");
  check (Alcotest.float 1e-6) "wan slow" 40.0 (time_of "wan");
  (* Remove the override: back to the default link. *)
  Datagram.set_link_override net ~src:0 ~dst:2 None;
  Datagram.send net ~src:0 ~dst:2 ~size_bytes:10 "wan2";
  Sim.run sim;
  check Alcotest.bool "restored" true (time_of "wan2" -. time_of "wan" < 10.0)

let test_link_override_directional () =
  (* The override table is keyed src * n + dst: the (1, 2) and (2, 1)
     directions — and every other pair — must never alias. *)
  let sim = Sim.create ~seed:7 () in
  let net = Datagram.create sim ~n:3 ~link:(Latency.constant 0.5) () in
  Datagram.set_link_override net ~src:1 ~dst:2 (Some (Latency.constant 40.0));
  let arrivals = ref [] in
  for node = 0 to 2 do
    Datagram.set_handler net ~node (fun ~src:_ tag ->
        arrivals := (tag, Sim.now sim) :: !arrivals)
  done;
  Datagram.send net ~src:1 ~dst:2 ~size_bytes:10 "slowed";
  Datagram.send net ~src:2 ~dst:1 ~size_bytes:10 "reverse";
  Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 "other";
  Sim.run sim;
  let time_of tag = List.assoc tag !arrivals in
  check (Alcotest.float 1e-6) "overridden direction slow" 40.0 (time_of "slowed");
  check (Alcotest.float 1e-6) "reverse direction untouched" 0.5 (time_of "reverse");
  check (Alcotest.float 1e-6) "other pair untouched" 0.5 (time_of "other")

let test_reordering_occurs () =
  (* With high-variance latency, arrival order differs from send order
     at least once in a decent sample. *)
  let sim = Sim.create ~seed:11 () in
  let link =
    { Latency.model = Latency.Uniform { lo = 0.1; hi = 10.0 }; bandwidth_mbps = infinity }
  in
  let net = Datagram.create sim ~n:2 ~link () in
  let order = ref [] in
  Datagram.set_handler net ~node:1 (fun ~src:_ i -> order := i :: !order);
  for i = 1 to 50 do
    Datagram.send net ~src:0 ~dst:1 ~size_bytes:10 i
  done;
  Sim.run sim;
  let received = List.rev !order in
  check Alcotest.int "all arrived" 50 (List.length received);
  check Alcotest.bool "some reordering" true (received <> List.init 50 (fun i -> i + 1))

let prop_no_loss_all_delivered =
  QCheck.Test.make ~name:"lossless network delivers everything exactly once" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 2 6))
    (fun (msgs, n) ->
      let sim = Sim.create ~seed:5 () in
      let net = Datagram.create sim ~n ~link:(Latency.constant 0.5) () in
      let received = ref 0 in
      for node = 0 to n - 1 do
        Datagram.set_handler net ~node (fun ~src:_ _ -> incr received)
      done;
      for i = 0 to msgs - 1 do
        Datagram.send net ~src:(i mod n) ~dst:((i + 1) mod n) ~size_bytes:10 i
      done;
      Sim.run sim;
      !received = msgs)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "net"
    [
      ( "latency",
        [
          tc "constant" test_latency_constant;
          tc "floor" test_latency_floor;
          tc "uniform bounds" test_latency_uniform_bounds;
          tc "lognormal median" test_latency_lognormal_median;
          tc "bandwidth term" test_latency_bandwidth_term;
          tc "infinite bandwidth" test_latency_infinite_bandwidth;
        ] );
      ( "datagram",
        [
          tc "delivery" test_delivery;
          tc "self send" test_self_send;
          tc "no handler -> blocked" test_no_handler_blocked;
          tc "loss=1" test_loss_one;
          tc "loss=0" test_loss_zero;
          tc "self send never lost" test_self_send_never_lost;
          tc "duplication" test_duplication;
          tc "dup bytes accounting" test_dup_bytes_accounting;
          tc "crash dst" test_crash_dst;
          tc "crash src" test_crash_src;
          tc "crash in flight" test_crash_in_flight;
          tc "correct nodes" test_correct_nodes;
          tc "partition" test_partition;
          tc "heal" test_heal;
          tc "implicit group" test_partition_implicit_group;
          tc "drop filter" test_drop_filter;
          tc "filtered counted separately" test_filtered_counted_separately;
          tc "recover" test_recover;
          tc "recover resets egress" test_recover_resets_egress_clock;
          tc "blocked causes" test_blocked_cause_counters;
          tc "dynamic loss" test_set_loss_dynamic;
          tc "dynamic dup" test_set_dup_dynamic;
          tc "counters" test_counters_bytes;
          tc "egress serialization" test_egress_serialization;
          tc "egress backlog" test_egress_backlog_reported;
          tc "link override" test_link_override;
          tc "link override directional" test_link_override_directional;
          tc "reordering" test_reordering_occurs;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_no_loss_all_delivered ] );
    ]
