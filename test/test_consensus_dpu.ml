(* Tests for the consensus-update extension (paper §7 / TR [16]):
   the Paxos implementation of the consensus service, and the
   consensus replacement layer that switches between Chandra-Toueg and
   Paxos on the fly. *)

open Dpu_kernel
module P = Dpu_protocols
module CI = Dpu_protocols.Consensus_iface
module Core = Dpu_core
module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module RC = Dpu_core.Repl_consensus
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check
let fail = Alcotest.fail

type Payload.t += Blob of string

(* ------------------------------------------------------------------ *)
(* Paxos as a consensus service implementation                        *)
(* ------------------------------------------------------------------ *)

let make_paxos_system ?(n = 3) ?(seed = 1) ?(loss = 0.0) () =
  let system = System.create ~seed ~loss ~n () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Fd.register system;
  P.Consensus_paxos.register system;
  System.iter_stacks system (fun stack ->
      Registry.ensure_bound (System.registry system) stack Service.consensus);
  system

let decision_logs system =
  List.init (System.n system) (fun node ->
      let log = ref [] in
      let stack = System.stack system node in
      ignore
        (Stack.add_module stack ~name:"spy" ~provides:[] ~requires:[ Service.consensus ]
           (fun _ _ ->
             {
               Stack.default_handlers with
               handle_indication =
                 (fun svc p ->
                   if Service.equal svc Service.consensus then
                     match p with
                     | CI.Decide { iid; value = Blob s } -> log := (iid, s) :: !log
                     | CI.Decide { iid; value = CI.No_value } -> log := (iid, "<none>") :: !log
                     | _ -> ());
             }));
      log)

let propose system ~node ~iid value =
  Stack.call (System.stack system node) Service.consensus
    (CI.Propose { iid; value = Blob value; weight = String.length value })

let test_paxos_agreement () =
  let system = make_paxos_system ~n:3 () in
  let logs = decision_logs system in
  let iid = { CI.epoch = 0; k = 0 } in
  propose system ~node:0 ~iid "a";
  propose system ~node:1 ~iid "b";
  propose system ~node:2 ~iid "c";
  System.run_until_quiescent ~limit:20_000.0 system;
  let decided = List.map (fun log -> List.assoc iid !log) logs in
  match decided with
  | v :: rest ->
    check Alcotest.bool "validity" true (List.mem v [ "a"; "b"; "c" ]);
    List.iter (fun v' -> check Alcotest.string "agreement" v v') rest
  | [] -> fail "no decisions"

let test_paxos_single_proposer () =
  let system = make_paxos_system ~n:5 () in
  let logs = decision_logs system in
  let iid = { CI.epoch = 0; k = 0 } in
  propose system ~node:3 ~iid "only";
  System.run_until_quiescent ~limit:20_000.0 system;
  List.iter
    (fun log -> check Alcotest.string "all decide the only value" "only" (List.assoc iid !log))
    logs

let test_paxos_multi_instance () =
  let system = make_paxos_system ~n:3 () in
  let logs = decision_logs system in
  for k = 0 to 9 do
    propose system ~node:(k mod 3) ~iid:{ CI.epoch = 0; k } (string_of_int k)
  done;
  System.run_until_quiescent ~limit:30_000.0 system;
  List.iter
    (fun log ->
      for k = 0 to 9 do
        check Alcotest.string "instance decided" (string_of_int k)
          (List.assoc { CI.epoch = 0; k } !log)
      done)
    logs

let test_paxos_epoch_separation () =
  let system = make_paxos_system ~n:3 () in
  let logs = decision_logs system in
  propose system ~node:0 ~iid:{ CI.epoch = 0; k = 0 } "old";
  propose system ~node:1 ~iid:{ CI.epoch = 1; k = 0 } "new";
  System.run_until_quiescent ~limit:20_000.0 system;
  List.iter
    (fun log ->
      check Alcotest.string "epoch 0" "old" (List.assoc { CI.epoch = 0; k = 0 } !log);
      check Alcotest.string "epoch 1" "new" (List.assoc { CI.epoch = 1; k = 0 } !log))
    logs

let test_paxos_leader_crash () =
  (* Node 0 is the initial Omega leader; crash it before proposing. *)
  let system = make_paxos_system ~n:5 ~seed:3 () in
  let logs = decision_logs system in
  System.crash_node system 0;
  let iid = { CI.epoch = 0; k = 0 } in
  propose system ~node:2 ~iid "survivor";
  System.run_until_quiescent ~limit:60_000.0 system;
  List.iteri
    (fun node log ->
      if node <> 0 then
        check Alcotest.string "decided despite leader crash" "survivor" (List.assoc iid !log))
    logs

let test_paxos_crash_seeds_agree () =
  for seed = 1 to 6 do
    let system = make_paxos_system ~n:5 ~seed () in
    let logs = decision_logs system in
    let victim = seed mod 5 in
    let iid = { CI.epoch = 0; k = 0 } in
    propose system ~node:((victim + 1) mod 5) ~iid "v";
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int (seed * 2)) (fun () ->
           System.crash_node system victim));
    System.run_until_quiescent ~limit:60_000.0 system;
    List.iteri
      (fun node log ->
        if node <> victim then
          match List.assoc_opt iid !log with
          | Some v -> check Alcotest.string "agreement under crash" "v" v
          | None -> fail (Printf.sprintf "node %d undecided (seed %d)" node seed))
      logs
  done

let test_paxos_under_loss () =
  let system = make_paxos_system ~n:3 ~seed:4 ~loss:0.2 () in
  let logs = decision_logs system in
  for k = 0 to 4 do
    propose system ~node:(k mod 3) ~iid:{ CI.epoch = 0; k } (string_of_int k)
  done;
  System.run_until_quiescent ~limit:60_000.0 system;
  List.iter
    (fun log ->
      for k = 0 to 4 do
        check Alcotest.string "decided under loss" (string_of_int k)
          (List.assoc { CI.epoch = 0; k } !log)
      done)
    logs

(* ABcast running over Paxos instead of CT: the service spec suffices. *)
let test_abcast_over_paxos () =
  let system = System.create ~seed:1 ~n:5 () in
  P.Udp.register system;
  P.Rp2p.register system;
  P.Fd.register system;
  P.Rbcast.register system;
  P.Consensus_paxos.register system;
  P.Abcast_ct.register system;
  System.iter_stacks system (fun stack ->
      ignore
        (Registry.instantiate (System.registry system) stack ~name:P.Abcast_ct.protocol_name));
  let logs =
    List.init 5 (fun node ->
        let log = ref [] in
        ignore
          (Stack.add_module (System.stack system node) ~name:"l" ~provides:[]
             ~requires:[ Service.abcast ]
             (fun _ _ ->
               {
                 Stack.default_handlers with
                 handle_indication =
                   (fun _ p ->
                     match p with
                     | P.Abcast_iface.Deliver { payload = Blob s; _ } -> log := s :: !log
                     | _ -> ());
               }));
        log)
  in
  for i = 0 to 19 do
    let node = i mod 5 in
    ignore
      (Clock.defer (System.clock system) ~delay:(float_of_int i *. 8.0) (fun () ->
           Stack.call (System.stack system node) Service.abcast
             (P.Abcast_iface.Broadcast { size = 256; payload = Blob (string_of_int i) })))
  done;
  System.run_until_quiescent ~limit:60_000.0 system;
  match List.map (fun l -> List.rev !l) logs with
  | first :: rest ->
    check Alcotest.int "all delivered" 20 (List.length first);
    List.iter (fun s -> check (Alcotest.list Alcotest.string) "order" first s) rest
  | [] -> fail "no logs"

(* ------------------------------------------------------------------ *)
(* The consensus replacement layer                                    *)
(* ------------------------------------------------------------------ *)

let mw_with_consensus_layer ?(n = 5) ?(seed = 1) ?(loss = 0.0)
    ?(initial = P.Consensus_ct.protocol_name) () =
  let profile = { SB.default_profile with consensus_layer = Some initial } in
  let config = { MW.default_config with seed; loss; profile } in
  MW.create ~config ~n ()

let delivery_logs mw =
  let n = MW.n mw in
  let logs = Array.make n [] in
  for node = 0 to n - 1 do
    MW.subscribe mw ~node (fun m -> logs.(node) <- Msg.id_to_string m.Msg.id :: logs.(node))
  done;
  logs

let assert_consistent ?(skip = []) ~expect_count logs =
  let seqs = Array.to_list (Array.map List.rev logs) in
  let live = List.filteri (fun i _ -> not (List.mem i skip)) seqs in
  match live with
  | [] -> fail "no live sequences"
  | first :: rest ->
    check Alcotest.int "delivery count" expect_count (List.length first);
    check Alcotest.int "no duplicates" expect_count
      (List.length (List.sort_uniq compare first));
    List.iter (fun s -> check (Alcotest.list Alcotest.string) "total order" first s) rest

let drive ?(msgs = 24) ?(gap = 10.0) ?switch_at ?target mw =
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  let n = MW.n mw in
  for i = 0 to msgs - 1 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. gap) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod n) (string_of_int i))))
  done;
  (match (switch_at, target) with
  | Some t, Some prot ->
    ignore (Clock.defer clock ~delay:t (fun () -> MW.change_consensus mw ~node:1 prot))
  | _, _ -> ());
  MW.run_until_quiescent ~limit:60_000.0 mw;
  logs

let test_layer_plain_traffic () =
  let mw = mw_with_consensus_layer () in
  let logs = drive mw in
  assert_consistent ~expect_count:24 logs;
  check Alcotest.int "no switch" 0 (RC.generation (System.stack (MW.system mw) 0))

let test_layer_stack_shape () =
  let mw = mw_with_consensus_layer () in
  let stack = System.stack (MW.system mw) 0 in
  check Alcotest.bool "layer present" true (Stack.has_module stack ~name:"repl.consensus");
  check Alcotest.bool "impl present" true (Stack.has_module stack ~name:"consensus.ct");
  (match Stack.bound stack Service.consensus with
  | Some m -> check Alcotest.string "layer bound" "repl.consensus" (Stack.module_name m)
  | None -> fail "consensus unbound");
  check Alcotest.bool "slot 0 bound" true
    (Stack.bound stack (Service.make "consensus-impl.0") <> None)

let test_layer_switch_ct_to_paxos () =
  let mw = mw_with_consensus_layer () in
  let logs =
    drive ~switch_at:100.0 ~target:P.Consensus_paxos.protocol_name mw
  in
  assert_consistent ~expect_count:24 logs;
  for node = 0 to 4 do
    let stack = System.stack (MW.system mw) node in
    check Alcotest.int "generation 1" 1 (RC.generation stack);
    check Alcotest.bool "old impl decided some" true (P.Consensus_ct.decided_count stack > 0);
    check Alcotest.bool "new impl decided some" true
      (P.Consensus_paxos.decided_count stack > 0)
  done

let test_layer_switch_paxos_to_ct () =
  let mw = mw_with_consensus_layer ~initial:P.Consensus_paxos.protocol_name () in
  let logs = drive ~switch_at:100.0 ~target:P.Consensus_ct.protocol_name mw in
  assert_consistent ~expect_count:24 logs;
  let stack = System.stack (MW.system mw) 2 in
  check Alcotest.int "generation 1" 1 (RC.generation stack);
  check Alcotest.bool "ct decided some" true (P.Consensus_ct.decided_count stack > 0)

let test_layer_double_switch () =
  let mw = mw_with_consensus_layer () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 35 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 5) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:80.0 (fun () ->
         MW.change_consensus mw ~node:0 P.Consensus_paxos.protocol_name));
  ignore
    (Clock.defer clock ~delay:220.0 (fun () ->
         MW.change_consensus mw ~node:3 P.Consensus_ct.protocol_name));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_consistent ~expect_count:36 logs;
  check Alcotest.int "generation 2" 2 (RC.generation (System.stack (MW.system mw) 4))

let test_layer_switch_with_loss () =
  let mw = mw_with_consensus_layer ~seed:7 ~loss:0.1 () in
  let logs =
    drive ~msgs:20 ~gap:12.0 ~switch_at:110.0 ~target:P.Consensus_paxos.protocol_name mw
  in
  assert_consistent ~expect_count:20 logs;
  check Alcotest.int "switched" 1 (RC.generation (System.stack (MW.system mw) 0))

let test_layer_switch_with_minority_crash () =
  let mw = mw_with_consensus_layer ~seed:9 () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  (* Only survivors broadcast. *)
  for i = 0 to 19 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 12.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))))
  done;
  ignore (Clock.defer clock ~delay:50.0 (fun () -> MW.crash mw 4));
  ignore
    (Clock.defer clock ~delay:120.0 (fun () ->
         MW.change_consensus mw ~node:0 P.Consensus_paxos.protocol_name));
  MW.run_until_quiescent ~limit:90_000.0 mw;
  assert_consistent ~skip:[ 4 ] ~expect_count:20 logs;
  List.iter
    (fun node ->
      check Alcotest.int "survivors switched" 1
        (RC.generation (System.stack (MW.system mw) node)))
    [ 0; 1; 2; 3 ]

let test_layer_abcast_properties_across_switch () =
  List.iter
    (fun seed ->
      let mw = mw_with_consensus_layer ~seed () in
      ignore
        (drive ~msgs:20 ~gap:8.0 ~switch_at:(60.0 +. float_of_int (seed * 13))
           ~target:P.Consensus_paxos.protocol_name mw);
      let reports =
        Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct:[ 0; 1; 2; 3; 4 ]
      in
      List.iter
        (fun r ->
          check Alcotest.bool
            (Printf.sprintf "seed %d: %s" seed r.Dpu_props.Report.property)
            true r.Dpu_props.Report.ok)
        reports)
    [ 1; 2; 3 ]

let test_layer_request_from_silent_node () =
  (* The requesting node never broadcasts data; the gossiped request
     must still thread the switch through other nodes' proposals. *)
  let mw = mw_with_consensus_layer () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 15 do
    (* node 4 stays silent *)
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 4) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:60.0 (fun () ->
         MW.change_consensus mw ~node:4 P.Consensus_paxos.protocol_name));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_consistent ~expect_count:16 logs;
  check Alcotest.int "switched" 1 (RC.generation (System.stack (MW.system mw) 4))

let test_layer_no_layer_raises () =
  let mw = MW.create ~n:3 () in
  try
    MW.change_consensus mw ~node:0 P.Consensus_paxos.protocol_name;
    fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_layer_combined_with_abcast_switch () =
  (* A consensus switch followed, later, by an ABcast protocol switch
     (sequential, not simultaneous — the documented scope): both apply,
     order holds. The new ABcast stream starts back on the initial
     consensus implementation (documented). *)
  let mw = mw_with_consensus_layer () in
  let logs = delivery_logs mw in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 29 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 15.0) (fun () ->
           ignore (MW.broadcast mw ~node:(i mod 5) (string_of_int i))))
  done;
  ignore
    (Clock.defer clock ~delay:80.0 (fun () ->
         MW.change_consensus mw ~node:1 P.Consensus_paxos.protocol_name));
  ignore
    (Clock.defer clock ~delay:250.0 (fun () ->
         MW.change_protocol mw ~node:2 Core.Variants.ct));
  MW.run_until_quiescent ~limit:90_000.0 mw;
  assert_consistent ~expect_count:30 logs;
  check Alcotest.int "abcast switched" 1
    (Core.Repl.generation (System.stack (MW.system mw) 0))

let prop_consensus_switch_any_time =
  QCheck.Test.make ~name:"consensus switch at a random moment preserves total order"
    ~count:8
    QCheck.(pair (int_range 0 200) (int_range 1 500))
    (fun (switch_at, seed) ->
      let mw = mw_with_consensus_layer ~seed () in
      let logs = delivery_logs mw in
      let clock = System.clock (MW.system mw) in
      for i = 0 to 14 do
        ignore
          (Clock.defer clock ~delay:(float_of_int i *. 11.0) (fun () ->
               ignore (MW.broadcast mw ~node:(i mod 5) (string_of_int i))))
      done;
      ignore
        (Clock.defer clock ~delay:(float_of_int switch_at) (fun () ->
             MW.change_consensus mw ~node:(seed mod 5) P.Consensus_paxos.protocol_name));
      MW.run_until_quiescent ~limit:90_000.0 mw;
      match Array.to_list (Array.map List.rev logs) with
      | first :: rest -> List.length first = 15 && List.for_all (fun s -> s = first) rest
      | [] -> false)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "consensus-dpu"
    [
      ( "paxos",
        [
          tc "agreement" test_paxos_agreement;
          tc "single proposer" test_paxos_single_proposer;
          tc "multi instance" test_paxos_multi_instance;
          tc "epoch separation" test_paxos_epoch_separation;
          tc "leader crash" test_paxos_leader_crash;
          tc "crash seeds agree" test_paxos_crash_seeds_agree;
          tc "under loss" test_paxos_under_loss;
          tc "abcast over paxos" test_abcast_over_paxos;
        ] );
      ( "repl-consensus",
        [
          tc "plain traffic" test_layer_plain_traffic;
          tc "stack shape" test_layer_stack_shape;
          tc "switch ct->paxos" test_layer_switch_ct_to_paxos;
          tc "switch paxos->ct" test_layer_switch_paxos_to_ct;
          tc "double switch" test_layer_double_switch;
          tc "switch with loss" test_layer_switch_with_loss;
          tc "switch with minority crash" test_layer_switch_with_minority_crash;
          tc "abcast properties across switch" test_layer_abcast_properties_across_switch;
          tc "request from silent node" test_layer_request_from_silent_node;
          tc "without layer raises" test_layer_no_layer_raises;
          tc "combined with abcast switch" test_layer_combined_with_abcast_switch;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_consensus_switch_any_time ] );
    ]
