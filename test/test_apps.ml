(* Tests for the replicated key-value store (the paper's motivating
   application: a replicated non-stop service on totally ordered
   broadcast) and the group-membership property checkers. *)

open Dpu_kernel
module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module KV = Dpu_apps.Replicated_kv
module Gm = Dpu_protocols.Gm
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let check = Alcotest.check
let fail = Alcotest.fail

let make ?(n = 3) ?(seed = 1) ?profile () =
  let profile = match profile with Some p -> p | None -> SB.default_profile in
  let config = { MW.default_config with seed; profile } in
  let mw = MW.create ~config ~n () in
  let replicas = Array.init n (fun node -> KV.attach mw ~node) in
  (mw, replicas)

let assert_replicas_agree replicas =
  let digests = Array.to_list (Array.map KV.digest replicas) in
  match digests with
  | first :: rest ->
    List.iteri
      (fun i d -> check Alcotest.string (Printf.sprintf "replica %d digest" (i + 1)) first d)
      rest
  | [] -> fail "no replicas"

(* ------------------------------------------------------------------ *)
(* Replicated KV                                                      *)
(* ------------------------------------------------------------------ *)

let test_kv_basic_put_get () =
  let mw, r = make () in
  KV.put r.(0) "city" "Lausanne";
  MW.run_for mw 2_000.0;
  for node = 0 to 2 do
    check (Alcotest.option Alcotest.string) "replicated" (Some "Lausanne")
      (KV.get r.(node) "city")
  done;
  assert_replicas_agree r

let test_kv_overwrite_order () =
  (* Concurrent writes to the same key: replicas may disagree on which
     wins a priori, but total order makes them all pick the same one. *)
  let mw, r = make ~seed:5 () in
  KV.put r.(0) "k" "from-0";
  KV.put r.(1) "k" "from-1";
  KV.put r.(2) "k" "from-2";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  assert_replicas_agree r;
  check Alcotest.bool "some write won" true (KV.get r.(0) "k" <> None)

let test_kv_delete () =
  let mw, r = make () in
  KV.put r.(0) "k" "v";
  MW.run_for mw 1_000.0;
  KV.delete r.(1) "k";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  for node = 0 to 2 do
    check (Alcotest.option Alcotest.string) "deleted" None (KV.get r.(node) "k")
  done;
  check Alcotest.int "size" 0 (KV.size r.(0))

let test_kv_counters_lose_no_updates () =
  (* Increments are read-modify-write inside the ordered apply, so
     concurrent increments from every node all count. *)
  let mw, r = make ~seed:3 () in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 29 do
    let node = i mod 3 in
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 3.0) (fun () ->
           KV.incr r.(node) "hits"))
  done;
  MW.run_until_quiescent ~limit:30_000.0 mw;
  for node = 0 to 2 do
    check Alcotest.int "all increments counted" 30 (KV.get_int r.(node) "hits")
  done

let test_kv_applied_positions () =
  let mw, r = make () in
  KV.put r.(0) "a" "1";
  KV.put r.(1) "b" "2";
  KV.incr r.(2) "c";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  for node = 0 to 2 do
    check Alcotest.int "three ops applied" 3 (KV.applied r.(node))
  done;
  check Alcotest.int "entries" 3 (KV.size r.(0));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "sorted entries"
    [ ("a", "1"); ("b", "2"); ("c", "1") ]
    (KV.entries r.(0))

let test_kv_state_survives_abcast_switch () =
  let mw, r = make ~seed:7 () in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 19 do
    let node = i mod 3 in
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 8.0) (fun () ->
           KV.put r.(node) (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i);
           KV.incr r.(node) "ops"))
  done;
  ignore
    (Clock.defer clock ~delay:70.0 (fun () ->
         MW.change_protocol mw ~node:1 Dpu_core.Variants.token));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_replicas_agree r;
  check Alcotest.int "all writes present" 21 (KV.size r.(0));
  check Alcotest.int "counter exact across switch" 20 (KV.get_int r.(1) "ops")

let test_kv_state_survives_consensus_swap () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  let mw, r = make ~n:5 ~seed:9 ~profile () in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 19 do
    let node = i mod 5 in
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 10.0) (fun () ->
           KV.incr r.(node) "balance" ~by:(i + 1)))
  done;
  ignore
    (Clock.defer clock ~delay:90.0 (fun () ->
         MW.change_consensus mw ~node:2 Dpu_protocols.Consensus_paxos.protocol_name));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_replicas_agree r;
  (* sum 1..20 = 210 *)
  for node = 0 to 4 do
    check Alcotest.int "balance conserved" 210 (KV.get_int r.(node) "balance")
  done

let test_kv_crashed_replica_prefix () =
  let mw, r = make ~n:3 ~seed:11 () in
  KV.put r.(0) "early" "yes";
  MW.run_for mw 1_000.0;
  MW.crash mw 2;
  KV.put r.(0) "late" "yes";
  MW.run_until_quiescent ~limit:30_000.0 mw;
  (* The crashed replica holds a prefix of the history; survivors agree
     on the full state. *)
  check Alcotest.string "survivors agree" (KV.digest r.(0)) (KV.digest r.(1));
  check (Alcotest.option Alcotest.string) "crashed replica has the prefix" (Some "yes")
    (KV.get r.(2) "early");
  check (Alcotest.option Alcotest.string) "crashed replica missed the tail" None
    (KV.get r.(2) "late")

let test_kv_foreign_traffic_ignored () =
  (* Raw middleware broadcasts that are not kv operations must not
     disturb the store. *)
  let mw, r = make () in
  ignore (MW.broadcast mw ~node:0 "not a kv op");
  KV.put r.(1) "k" "v";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  check Alcotest.int "one op applied" 1 (KV.applied r.(0));
  check Alcotest.int "one key" 1 (KV.size r.(0))

let test_kv_late_join_catches_up () =
  let mw, r = make () in
  KV.put r.(0) "a" "1";
  KV.put r.(1) "b" "2";
  KV.incr r.(2) "hits" ~by:5;
  MW.run_for mw 1_500.0;
  (* A fresh replica process joins on node 2 (e.g. after an operator
     restarted the application there): it missed everything so far. *)
  let joiner = KV.attach_late mw ~node:2 ~from:0 in
  check Alcotest.bool "not yet synced" false (KV.synced joiner);
  KV.put r.(0) "c" "3";
  MW.run_until_quiescent ~limit:30_000.0 mw;
  check Alcotest.bool "synced" true (KV.synced joiner);
  check (Alcotest.option Alcotest.string) "old state transferred" (Some "1")
    (KV.get joiner "a");
  check Alcotest.int "counter transferred" 5 (KV.get_int joiner "hits");
  check (Alcotest.option Alcotest.string) "live tail applied" (Some "3")
    (KV.get joiner "c");
  check Alcotest.string "digest matches" (KV.digest r.(0)) (KV.digest joiner);
  check Alcotest.int "applied counter consistent" (KV.applied r.(0)) (KV.applied joiner)

let test_kv_late_join_buffers_inflight () =
  (* Operations keep flowing between the sync request and the snapshot;
     the joiner must end up with exactly the agreed history. *)
  let mw, r = make ~seed:13 () in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 9 do
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 4.0) (fun () ->
           KV.incr r.(i mod 3) "n"))
  done;
  let joiner = ref None in
  ignore
    (Clock.defer clock ~delay:13.0 (fun () ->
         joiner := Some (KV.attach_late mw ~node:1 ~from:2)));
  MW.run_until_quiescent ~limit:30_000.0 mw;
  match !joiner with
  | Some j ->
    check Alcotest.bool "synced" true (KV.synced j);
    check Alcotest.int "exact counter" 10 (KV.get_int j "n");
    check Alcotest.string "digest" (KV.digest r.(0)) (KV.digest j)
  | None -> fail "joiner not created"

let test_kv_late_join_across_switch () =
  let mw, r = make ~seed:17 () in
  KV.put r.(0) "pre" "x";
  MW.run_for mw 500.0;
  let joiner = KV.attach_late mw ~node:1 ~from:0 in
  MW.change_protocol mw ~node:2 Dpu_core.Variants.sequencer;
  KV.put r.(2) "post" "y";
  MW.run_until_quiescent ~limit:30_000.0 mw;
  check Alcotest.bool "synced across switch" true (KV.synced joiner);
  check Alcotest.string "digest" (KV.digest r.(0)) (KV.digest joiner)

let prop_kv_convergence =
  QCheck.Test.make ~name:"replicas converge for random op mixes" ~count:10
    QCheck.(pair (int_range 1 25) (int_range 1 1000))
    (fun (ops, seed) ->
      let mw, r = make ~seed () in
      let rng = Dpu_engine.Rng.create ~seed in
      let clock = System.clock (MW.system mw) in
      for i = 0 to ops - 1 do
        let node = Dpu_engine.Rng.int rng 3 in
        let key = Printf.sprintf "k%d" (Dpu_engine.Rng.int rng 5) in
        let action = Dpu_engine.Rng.int rng 3 in
        ignore
          (Clock.defer clock ~delay:(float_of_int i *. 5.0) (fun () ->
               match action with
               | 0 -> KV.put r.(node) key (string_of_int i)
               | 1 -> KV.delete r.(node) key
               | _ -> KV.incr r.(node) key))
      done;
      MW.run_until_quiescent ~limit:60_000.0 mw;
      let d0 = KV.digest r.(0) in
      KV.digest r.(1) = d0 && KV.digest r.(2) = d0
      && KV.applied r.(0) = ops && KV.applied r.(1) = ops)

(* ------------------------------------------------------------------ *)
(* Lock service                                                       *)
(* ------------------------------------------------------------------ *)

module Lock = Dpu_apps.Lock_service

let make_locks ?(n = 3) ?(seed = 1) ?(with_gm = false) () =
  let profile = { SB.default_profile with with_gm } in
  let config = { MW.default_config with seed; profile } in
  let mw = MW.create ~config ~n () in
  (mw, Array.init n (fun node -> Lock.attach mw ~node))

let assert_lock_replicas_agree locks =
  let ds = Array.to_list (Array.map Lock.digest locks) in
  match ds with
  | first :: rest ->
    List.iter (fun d -> check Alcotest.string "lock tables agree" first d) rest
  | [] -> fail "no replicas"

let test_lock_grant_and_release () =
  let mw, l = make_locks () in
  Lock.acquire l.(1) "db";
  MW.run_for mw 2_000.0;
  check (Alcotest.option Alcotest.int) "granted" (Some 1) (Lock.holder l.(0) "db");
  check Alcotest.bool "holds" true (Lock.holds l.(1) "db");
  Lock.release l.(1) "db";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  check (Alcotest.option Alcotest.int) "free" None (Lock.holder l.(2) "db");
  assert_lock_replicas_agree l

let test_lock_fifo_queue () =
  let mw, l = make_locks () in
  Lock.acquire l.(2) "db";
  MW.run_for mw 1_000.0;
  Lock.acquire l.(0) "db";
  MW.run_for mw 1_000.0;
  Lock.acquire l.(1) "db";
  MW.run_for mw 1_000.0;
  check (Alcotest.option Alcotest.int) "holder" (Some 2) (Lock.holder l.(0) "db");
  check (Alcotest.list Alcotest.int) "fifo waiters" [ 0; 1 ] (Lock.waiters l.(0) "db");
  Lock.release l.(2) "db";
  MW.run_for mw 1_000.0;
  check (Alcotest.option Alcotest.int) "passed to next" (Some 0) (Lock.holder l.(1) "db");
  assert_lock_replicas_agree l

let test_lock_mutual_exclusion_under_contention () =
  (* All nodes fight for one lock in a loop: at every replica, at every
     grant, there is exactly one holder, and grants follow the queue. *)
  let mw, l = make_locks ~seed:5 () in
  let grants = ref [] in
  for node = 0 to 2 do
    Lock.on_granted l.(node) (fun name -> grants := (node, name) :: !grants);
    (* Hold briefly, then release and immediately re-request, twice. *)
    Lock.on_granted l.(node) (fun name ->
        ignore
          (Clock.defer (System.clock (MW.system mw)) ~delay:20.0 (fun () ->
               Lock.release l.(node) name)))
  done;
  for node = 0 to 2 do
    Lock.acquire l.(node) "mutex";
    Lock.acquire l.(node) "mutex" (* duplicate while queued: ignored *)
  done;
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_lock_replicas_agree l;
  check Alcotest.int "each node granted exactly once" 3 (List.length !grants);
  check (Alcotest.option Alcotest.int) "finally free" None (Lock.holder l.(0) "mutex")

let test_lock_release_by_non_holder_ignored () =
  let mw, l = make_locks () in
  Lock.acquire l.(0) "db";
  MW.run_for mw 1_000.0;
  Lock.release l.(1) "db";
  MW.run_until_quiescent ~limit:20_000.0 mw;
  check (Alcotest.option Alcotest.int) "still held by 0" (Some 0) (Lock.holder l.(2) "db")

let test_lock_eviction_on_crash () =
  let mw, l = make_locks ~n:4 ~with_gm:true () in
  Lock.acquire l.(3) "db";
  MW.run_for mw 500.0;
  Lock.acquire l.(1) "db";
  MW.run_for mw 500.0;
  check (Alcotest.option Alcotest.int) "node 3 holds" (Some 3) (Lock.holder l.(0) "db");
  MW.crash mw 3;
  (* FD suspicion -> GM exclusion -> view change -> eviction broadcast. *)
  MW.run_until_quiescent ~limit:60_000.0 mw;
  List.iter
    (fun node ->
      check (Alcotest.option Alcotest.int) "lock passed to waiter" (Some 1)
        (Lock.holder l.(node) "db");
      check (Alcotest.list Alcotest.int) "eviction recorded" [ 3 ] (Lock.evicted l.(node)))
    [ 0; 1; 2 ]

let test_lock_dead_node_requests_ignored () =
  let mw, l = make_locks ~n:4 ~with_gm:true () in
  (* Node 3's acquire is sent but node 3 crashes immediately; whether
     the request is ordered before or after the eviction, the final
     state must not contain node 3. *)
  Lock.acquire l.(3) "db";
  MW.crash mw 3;
  MW.run_until_quiescent ~limit:60_000.0 mw;
  List.iter
    (fun node ->
      check Alcotest.bool "node 3 not in table" false
        (Lock.holder l.(node) "db" = Some 3 || List.mem 3 (Lock.waiters l.(node) "db")))
    [ 0; 1; 2 ]

let test_lock_across_protocol_switch () =
  let mw, l = make_locks ~seed:7 () in
  let clock = System.clock (MW.system mw) in
  for i = 0 to 11 do
    let node = i mod 3 in
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 20.0) (fun () ->
           Lock.acquire l.(node) (Printf.sprintf "lock%d" (i mod 4))))
  done;
  ignore
    (Clock.defer clock ~delay:100.0 (fun () ->
         MW.change_protocol mw ~node:0 Dpu_core.Variants.sequencer));
  MW.run_until_quiescent ~limit:60_000.0 mw;
  assert_lock_replicas_agree l

(* ------------------------------------------------------------------ *)
(* GM property checkers                                               *)
(* ------------------------------------------------------------------ *)

let v id members = { Gm.id; members }

let test_gm_props_identical_pass () =
  let seq = [ v 0 [ 0; 1; 2 ]; v 1 [ 0; 1 ] ] in
  let r = Dpu_props.Gm_props.identical_view_sequences [ (0, seq); (1, seq); (2, seq) ] in
  check Alcotest.bool "ok" true r.Dpu_props.Report.ok

let test_gm_props_prefix_pass () =
  let full = [ v 0 [ 0; 1 ]; v 1 [ 0 ] ] in
  let prefix = [ v 0 [ 0; 1 ] ] in
  let r = Dpu_props.Gm_props.identical_view_sequences [ (0, full); (1, prefix) ] in
  check Alcotest.bool "prefix allowed" true r.Dpu_props.Report.ok

let test_gm_props_divergence_fails () =
  let a = [ v 0 [ 0; 1 ]; v 1 [ 0 ] ] in
  let b = [ v 0 [ 0; 1 ]; v 1 [ 1 ] ] in
  let r = Dpu_props.Gm_props.identical_view_sequences [ (0, a); (1, b) ] in
  check Alcotest.bool "divergence caught" false r.Dpu_props.Report.ok

let test_gm_props_monotone () =
  let good = [ (0, [ v 0 [ 0 ]; v 1 [ 0 ] ]) ] in
  check Alcotest.bool "monotone ok" true
    (Dpu_props.Gm_props.monotone_view_ids good).Dpu_props.Report.ok;
  let bad = [ (0, [ v 0 [ 0 ]; v 2 [ 0 ] ]) ] in
  check Alcotest.bool "gap caught" false
    (Dpu_props.Gm_props.monotone_view_ids bad).Dpu_props.Report.ok

let test_gm_props_on_real_run () =
  (* Drive real GM through a protocol switch and feed the checkers. *)
  let profile = { SB.default_profile with with_gm = true } in
  let config = { MW.default_config with profile } in
  let mw = MW.create ~config ~n:3 () in
  let views = Array.make 3 [] in
  for node = 0 to 2 do
    MW.on_view mw ~node (fun view -> views.(node) <- view :: views.(node))
  done;
  MW.run_for mw 300.0;
  MW.leave mw ~node:0 2;
  MW.run_for mw 2_000.0;
  MW.change_protocol mw ~node:1 Dpu_core.Variants.sequencer;
  MW.run_for mw 2_000.0;
  MW.join mw ~node:1 2;
  MW.run_until_quiescent ~limit:30_000.0 mw;
  let node_views = List.init 3 (fun node -> (node, List.rev views.(node))) in
  let reports = Dpu_props.Gm_props.check_all node_views in
  List.iter
    (fun r -> check Alcotest.bool r.Dpu_props.Report.property true r.Dpu_props.Report.ok)
    reports;
  check Alcotest.int "three views beyond the initial" 3
    (List.length (List.assoc 0 node_views))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "apps"
    [
      ( "replicated-kv",
        [
          tc "put/get" test_kv_basic_put_get;
          tc "overwrite order" test_kv_overwrite_order;
          tc "delete" test_kv_delete;
          tc "counters lose no updates" test_kv_counters_lose_no_updates;
          tc "applied positions" test_kv_applied_positions;
          tc "state survives abcast switch" test_kv_state_survives_abcast_switch;
          tc "state survives consensus swap" test_kv_state_survives_consensus_swap;
          tc "crashed replica holds prefix" test_kv_crashed_replica_prefix;
          tc "foreign traffic ignored" test_kv_foreign_traffic_ignored;
          tc "late join catches up" test_kv_late_join_catches_up;
          tc "late join buffers in-flight ops" test_kv_late_join_buffers_inflight;
          tc "late join across a switch" test_kv_late_join_across_switch;
        ] );
      ( "lock-service",
        [
          tc "grant and release" test_lock_grant_and_release;
          tc "fifo queue" test_lock_fifo_queue;
          tc "mutual exclusion under contention" test_lock_mutual_exclusion_under_contention;
          tc "non-holder release ignored" test_lock_release_by_non_holder_ignored;
          tc "eviction on crash" test_lock_eviction_on_crash;
          tc "dead node requests ignored" test_lock_dead_node_requests_ignored;
          tc "across a protocol switch" test_lock_across_protocol_switch;
        ] );
      ( "gm-props",
        [
          tc "identical pass" test_gm_props_identical_pass;
          tc "prefix pass" test_gm_props_prefix_pass;
          tc "divergence fails" test_gm_props_divergence_fails;
          tc "monotone" test_gm_props_monotone;
          tc "real run through a switch" test_gm_props_on_real_run;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest ~long:false prop_kv_convergence ] );
    ]
