test/test_core.ml: Alcotest Array Dpu_core Dpu_engine Dpu_kernel Dpu_net Dpu_props Dpu_protocols Format List Msg Printf QCheck QCheck_alcotest Registry Service Stack System Trace
