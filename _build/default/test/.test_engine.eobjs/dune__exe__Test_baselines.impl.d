test/test_baselines.ml: Alcotest Array Dpu_baselines Dpu_core Dpu_engine Dpu_kernel Float List Msg Printf Service Stack System Trace
