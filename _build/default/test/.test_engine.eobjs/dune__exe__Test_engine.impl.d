test/test_engine.ml: Alcotest Array Dpu_engine Float Gen List Printf QCheck QCheck_alcotest
