test/test_apps.ml: Alcotest Array Dpu_apps Dpu_core Dpu_engine Dpu_kernel Dpu_props Dpu_protocols List Printf QCheck QCheck_alcotest System
