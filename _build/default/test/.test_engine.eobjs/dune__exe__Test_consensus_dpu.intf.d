test/test_consensus_dpu.mli:
