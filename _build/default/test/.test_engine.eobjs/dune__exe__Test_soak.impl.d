test/test_soak.ml: Alcotest Dpu_core Dpu_engine Dpu_kernel Dpu_net Dpu_props Dpu_protocols Dpu_workload List Printf String System
