test/test_workload.ml: Alcotest Array Dpu_core Dpu_engine Dpu_props Dpu_workload List Printf String
