test/test_kernel.mli:
