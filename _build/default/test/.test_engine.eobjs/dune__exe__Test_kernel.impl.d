test/test_kernel.ml: Alcotest Array Dpu_engine Dpu_kernel List Msg Payload Printf QCheck QCheck_alcotest Registry Service Stack System Trace
