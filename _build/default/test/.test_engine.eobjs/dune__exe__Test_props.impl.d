test/test_props.ml: Alcotest Dpu_core Dpu_kernel Dpu_props Format List Msg String Trace
