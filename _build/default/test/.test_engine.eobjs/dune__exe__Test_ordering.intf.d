test/test_ordering.mli:
