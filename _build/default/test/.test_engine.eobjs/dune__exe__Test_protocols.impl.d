test/test_protocols.ml: Alcotest Array Dpu_core Dpu_engine Dpu_kernel Dpu_net Dpu_protocols List Payload Printf QCheck QCheck_alcotest Registry Service Stack String System
