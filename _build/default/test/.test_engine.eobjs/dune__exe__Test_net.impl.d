test/test_net.ml: Alcotest Dpu_engine Dpu_net List Printf QCheck QCheck_alcotest
