test/test_ordering.ml: Alcotest Dpu_engine Dpu_kernel Dpu_net Dpu_props Dpu_protocols Format Gen List Payload Printf QCheck QCheck_alcotest Registry Service Stack System
