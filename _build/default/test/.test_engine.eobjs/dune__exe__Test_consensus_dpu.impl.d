test/test_consensus_dpu.ml: Alcotest Array Dpu_core Dpu_engine Dpu_kernel Dpu_props Dpu_protocols List Msg Payload Printf QCheck QCheck_alcotest Registry Service Stack String System
