test/test_model.ml: Alcotest Dpu_model Format List Printf String
