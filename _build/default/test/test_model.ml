(* Tests for the bounded model checker of Algorithm 1: the faithful
   algorithm verifies exhaustively, each mutated variant (one line of
   the algorithm deleted) yields a counterexample naming the property
   the paper proves with that line. *)

module M = Dpu_model.Algo1
module C = Dpu_model.Consswap

let check = Alcotest.check
let fail = Alcotest.fail

let expect_verified ?(bounds = M.default_bounds) ?mutation label =
  match M.check ?mutation ~bounds () with
  | M.Verified { states; quiescent } ->
    check Alcotest.bool (label ^ ": explored something") true (states > 100);
    check Alcotest.bool (label ^ ": reached quiescent states") true (quiescent > 0)
  | M.Violation _ as r -> fail (Format.asprintf "%s: %a" label M.pp_result r)
  | M.Bound_exceeded _ -> fail (label ^ ": bound exceeded")

let expect_violation ?(bounds = M.default_bounds) ~mutation ~property label =
  match M.check ~mutation ~bounds () with
  | M.Violation { property = p; trace; _ } ->
    check Alcotest.bool
      (Printf.sprintf "%s: property %S mentions %S" label p property)
      true
      (let contains hay needle =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       contains p property);
    check Alcotest.bool (label ^ ": counterexample is non-trivial") true
      (List.length trace >= 4);
    (* Every counterexample must involve an actual protocol change:
       without one, Algorithm 1 degenerates to plain ABcast, which all
       mutations leave untouched. *)
    check Alcotest.bool (label ^ ": counterexample includes a change") true
      (List.exists (function M.Change _ -> true | _ -> false) trace)
  | M.Verified _ -> fail (label ^ ": expected a violation")
  | M.Bound_exceeded _ -> fail (label ^ ": bound exceeded")

let test_faithful_default () = expect_verified "default bounds"

let test_faithful_three_nodes () =
  expect_verified ~bounds:{ M.default_bounds with nodes = 3; sends = 1 } "three nodes"

(* The checker's headline finding: Algorithm 1 *as printed* breaks
   uniform agreement when two changeABcast requests overlap (the second
   change message travels through the old generation's stream). The
   symmetric generation check on line 10 repairs it. *)
let test_paper_overlapping_changes_flaw () =
  expect_violation
    ~bounds:{ M.default_bounds with sends = 1; changes = 2 }
    ~mutation:M.Faithful ~property:"agreement" "overlapping changes (as printed)"

let test_fixed_line10_repairs_it () =
  expect_verified
    ~bounds:{ M.default_bounds with sends = 1; changes = 2 }
    ~mutation:M.Fixed_line10 "overlapping changes (fixed)";
  (* The fix is also conservative: it changes nothing at one change. *)
  expect_verified ~mutation:M.Fixed_line10 "fixed at one change"

let test_faithful_with_crash () =
  expect_verified ~bounds:{ M.default_bounds with crashes = 1 } "one crash"

let test_faithful_three_sends () =
  (* sends is the expensive dimension (hundreds of thousands of states
     at 3); keep the suite fast by trading a send for a crash. *)
  expect_verified
    ~bounds:{ M.default_bounds with sends = 3; changes = 0 }
    "three sends, no change"

let test_no_sn_check_breaks_integrity () =
  expect_violation ~mutation:M.No_sn_check ~property:"integrity" "line 18"

let test_no_reissue_breaks_validity () =
  expect_violation ~mutation:M.No_reissue ~property:"validity" "lines 15-16"

let test_no_removal_breaks_integrity () =
  expect_violation ~mutation:M.No_undelivered_removal ~property:"integrity" "lines 19-20"

let test_mutations_harmless_without_change () =
  (* With a change budget of zero, Algorithm 1 is plain ABcast and all
     three mutations are dead code: everything verifies. *)
  let bounds = { M.default_bounds with changes = 0 } in
  List.iter
    (fun mutation ->
      expect_verified ~bounds ~mutation (M.mutation_name mutation ^ " without change"))
    [ M.No_sn_check; M.No_reissue; M.No_undelivered_removal ]

let test_bound_exceeded_reported () =
  match M.check ~bounds:{ M.default_bounds with max_states = 50 } () with
  | M.Bound_exceeded { states } -> check Alcotest.bool "cut off" true (states >= 50)
  | M.Verified _ | M.Violation _ -> fail "expected bound exceeded"

let test_counterexample_renders () =
  match M.check ~mutation:M.No_sn_check () with
  | M.Violation _ as r ->
    let s = Format.asprintf "%a" M.pp_result r in
    check Alcotest.bool "mentions changeABcast" true
      (let contains hay needle =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       contains s "changeABcast" && contains s "Adelivers")
  | M.Verified _ | M.Bound_exceeded _ -> fail "expected violation"

(* ------------------------------------------------------------------ *)
(* The consensus replacement layer's switch threading                 *)
(* ------------------------------------------------------------------ *)

let cs_verified ?(bounds = C.default_bounds) ?variant label =
  match C.check ?variant ~bounds () with
  | C.Verified { states; quiescent } ->
    check Alcotest.bool (label ^ ": explored") true (states > 50);
    check Alcotest.bool (label ^ ": quiescent reached") true (quiescent > 0)
  | C.Violation _ as r -> fail (Format.asprintf "%s: %a" label C.pp_result r)
  | C.Bound_exceeded _ -> fail (label ^ ": bound exceeded")

let test_consswap_sound () =
  cs_verified "default";
  cs_verified ~bounds:{ C.default_bounds with instances = 3 } "three instances";
  cs_verified ~bounds:{ C.default_bounds with nodes = 3 } "three nodes"

let test_consswap_prefix_defer_essential () =
  match C.check ~variant:C.No_prefix_defer () with
  | C.Violation { property; trace; _ } ->
    check Alcotest.bool "disagreement found" true
      (String.length property > 0 && String.sub property 0 8 = "decision");
    check Alcotest.bool "non-trivial trace" true (List.length trace >= 8)
  | C.Verified _ -> fail "expected the defer rule to be essential"
  | C.Bound_exceeded _ -> fail "bound exceeded"

let test_consswap_defense_in_depth () =
  (* Under the sequential-client contract these two guards are
     redundant — the model proves the contract already excludes the
     scenarios they'd catch. They remain in the implementation as
     defense-in-depth against non-conforming clients. *)
  cs_verified ~variant:C.No_stale_discard "stale-discard redundant";
  cs_verified ~variant:C.No_reissue "re-issue redundant"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "model"
    [
      ( "faithful (exhaustive)",
        [
          tc "default bounds" test_faithful_default;
          tc "three nodes" test_faithful_three_nodes;
          tc "with a crash" test_faithful_with_crash;
          tc "three sends" test_faithful_three_sends;
        ] );
      ( "the finding: overlapping changes",
        [
          tc "paper variant violates agreement" test_paper_overlapping_changes_flaw;
          tc "line-10 check repairs it" test_fixed_line10_repairs_it;
        ] );
      ( "mutations (counterexamples)",
        [
          tc "no line 18 -> integrity" test_no_sn_check_breaks_integrity;
          tc "no lines 15-16 -> validity" test_no_reissue_breaks_validity;
          tc "no lines 19-20 -> integrity" test_no_removal_breaks_integrity;
          tc "harmless without a change" test_mutations_harmless_without_change;
        ] );
      ( "consensus replacement layer",
        [
          tc "sound design verifies" test_consswap_sound;
          tc "prefix-defer is essential" test_consswap_prefix_defer_essential;
          tc "other guards are defense-in-depth" test_consswap_defense_in_depth;
        ] );
      ( "machinery",
        [
          tc "bound exceeded" test_bound_exceeded_reported;
          tc "counterexample rendering" test_counterexample_renders;
        ] );
    ]
