lib/workload/figures.mli: Experiment
