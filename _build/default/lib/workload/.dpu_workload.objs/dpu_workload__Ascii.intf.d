lib/workload/ascii.mli:
