lib/workload/ascii.ml: Array Buffer Float List Printf String
