lib/workload/load_gen.mli: Dpu_core
