lib/workload/figures.ml: Array Ascii Buffer Dpu_engine Experiment Float List Printf
