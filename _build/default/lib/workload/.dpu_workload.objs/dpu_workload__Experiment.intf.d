lib/workload/experiment.mli: Dpu_core Dpu_engine Dpu_kernel Dpu_props Load_gen
