lib/workload/experiment.ml: Array Dpu_baselines Dpu_core Dpu_engine Dpu_kernel Dpu_props Float List Load_gen
