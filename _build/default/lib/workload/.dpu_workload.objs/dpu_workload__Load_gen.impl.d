lib/workload/load_gen.ml: Dpu_core Dpu_engine Dpu_kernel Float
