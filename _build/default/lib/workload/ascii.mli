(** Plain-text rendering of series and tables for the bench output. *)

val chart :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_unit:string ->
  ?y_unit:string ->
  (string * (float * float) list) list ->
  string
(** Scatter plot of named series on a shared grid; each series gets its
    own glyph. Empty input renders a placeholder. *)

val table : header:string list -> string list list -> string
(** Column-aligned table with a header rule. *)

val vbars : ?width:int -> (string * float) list -> string
(** Horizontal bar chart: one labelled bar per entry. *)
