let glyphs = [| '+'; 'x'; 'o'; '*'; '#'; '@'; '%'; '&' |]

let chart ?(width = 72) ?(height = 18) ?(title = "") ?(x_unit = "") ?(y_unit = "") series =
  let all_points = List.concat_map snd series in
  if all_points = [] then "(no data)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let fmin l = List.fold_left min (List.hd l) l in
    let fmax l = List.fold_left max (List.hd l) l in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = Float.min 0.0 (fmin ys) and y1 = fmax ys in
    let x1 = if x1 = x0 then x0 +. 1.0 else x1 in
    let y1 = if y1 = y0 then y0 +. 1.0 else y1 in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, points) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- glyph)
          points)
      series;
    let buf = Buffer.create 4096 in
    if title <> "" then Buffer.add_string buf (title ^ "\n");
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" glyphs.(si mod Array.length glyphs) name))
      series;
    Array.iteri
      (fun row line ->
        let y_here =
          y1 -. (float_of_int row /. float_of_int (height - 1) *. (y1 -. y0))
        in
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%10.1f |" y_here
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-12.1f%*s%12.1f %s\n" (if y_unit = "" then "" else y_unit)
         x0 (width - 26) "" x1 x_unit);
    Buffer.contents buf
  end

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (try List.nth row c with _ -> "")))
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = try List.nth row c with _ -> "" in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let vbars ?(width = 50) entries =
  if entries = [] then "(no data)\n"
  else begin
    let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    let label_w =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (label, v) ->
        let bar = int_of_float (v /. vmax *. float_of_int width) in
        Buffer.add_string buf
          (Printf.sprintf "  %-*s | %s %.2f\n" label_w label (String.make bar '#') v))
      entries;
    Buffer.contents buf
  end
