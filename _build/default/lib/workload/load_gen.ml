module MW = Dpu_core.Middleware
module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng

type pattern =
  | Constant
  | Poisson
  | Burst of { period_ms : float; duty : float }

let start mw ~rate_per_s ?(pattern = Constant) ?size ?(body = "payload") ~until () =
  let n = MW.n mw in
  let sim = Dpu_kernel.System.sim (MW.system mw) in
  let rng = Rng.split (Sim.rng sim) in
  let per_node_gap = 1000.0 /. (rate_per_s /. float_of_int n) in
  let next_gap node =
    match pattern with
    | Constant -> per_node_gap
    | Poisson -> Rng.exponential rng ~mean:per_node_gap
    | Burst { period_ms; duty } ->
      (* Send at rate/duty while inside the duty window, else wait for
         the next window. *)
      let t = Sim.now sim in
      let phase = Float.rem t period_ms in
      if phase < period_ms *. duty then per_node_gap *. duty
      else period_ms -. phase +. (Rng.float rng *. 0.1 *. float_of_int node)
  in
  let rec loop node () =
    if Sim.now sim < until then begin
      ignore (MW.broadcast mw ~node ?size body : Dpu_kernel.Msg.t);
      ignore (Sim.schedule sim ~delay:(next_gap node) (loop node) : Sim.handle)
    end
  in
  for node = 0 to n - 1 do
    (* Stagger start phases so the aggregate load is smooth. *)
    let phase = per_node_gap *. float_of_int node /. float_of_int n in
    ignore (Sim.schedule sim ~delay:phase (loop node) : Sim.handle)
  done

let send_n mw ~count ?(gap_ms = 10.0) ?size () =
  let n = MW.n mw in
  let sim = Dpu_kernel.System.sim (MW.system mw) in
  for i = 0 to count - 1 do
    let node = i mod n in
    ignore
      (Sim.schedule sim ~delay:(gap_ms *. float_of_int i) (fun () ->
           ignore (MW.broadcast mw ~node ?size "msg" : Dpu_kernel.Msg.t))
        : Sim.handle)
  done
