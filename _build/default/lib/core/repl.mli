(** The replacement module — Algorithm 1 of the paper.

    [Repl] provides the [r-abcast] indirection service (Fig. 3's [r-p])
    and requires [abcast]. It intercepts every broadcast and delivery
    so that it can coordinate a dynamic replacement of the ABcast
    protocol with no extra synchronisation machinery: the protocol
    change message is simply atomically broadcast through the protocol
    being replaced, so every stack switches at the same point of the
    total order.

    Line-by-line correspondence with Algorithm 1:

    - state: [undelivered] (line 2), the current provider binding
      (line 3), [seqNumber] (line 4);
    - [Change_abcast prot] call → [ABcast(newABcast, seqNumber, prot)]
      (lines 5–6), here {!A_new};
    - [R_broadcast m] call → add to [undelivered], then
      [ABcast(nil, seqNumber, m)] (lines 7–9), here {!A_data};
    - [Adeliver] of {!A_new} → increment [seqNumber], unbind the old
      module, [create_module] the new protocol (recursively binding
      providers for any services it requires — lines 22–28 via
      [Registry.instantiate]), and re-issue all undelivered messages
      through the new protocol (lines 10–16);
    - [Adeliver] of {!A_data} → discard if the generation does not
      match [seqNumber] (line 18), otherwise remove from [undelivered]
      (lines 19–20) and [rAdeliver] (line 21).

    The [prot] argument travels as a protocol name resolved against the
    system registry (see {!Dpu_kernel.Registry}).

    Correctness: weak stack-well-formedness (the unbind of line 12 is
    followed by a bind within the same replacement step), weak
    protocol-operationability (uniform agreement of ABcast makes every
    correct stack eventually deliver {!A_new} and create the module),
    and the four ABcast properties across replacements (§5.2.2) — all
    checked mechanically by the [Dpu_props] test-suite. *)

open Dpu_kernel

(** Wire payloads carried inside the underlying ABcast stream. Exposed
    for tests and trace inspection. *)
type Payload.t +=
  | A_data of { sn : int; id : Msg.id; size : int; payload : Payload.t }
      (** [ABcast(nil, seqNumber, m)] *)
  | A_new of { sn : int; protocol : string }
      (** [ABcast(newABcast, seqNumber, prot)] *)

val protocol_name : string
(** ["repl.abcast"] *)

val install : registry:Registry.t -> Stack.t -> Stack.module_

val register : System.t -> unit
(** Register under {!protocol_name}, providing [Service.r_abcast]. *)

val generation : Stack.t -> int
(** Current [seqNumber] of the stack's replacement module (0 initially). *)

val undelivered_count : Stack.t -> int
(** Size of the [undelivered] set (diagnostics). *)
