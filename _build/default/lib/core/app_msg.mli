(** Application-level payloads carried through (r-)abcast. *)

open Dpu_kernel

type Payload.t += App of Msg.t
(** An application message with a unique id; what the workload
    generators broadcast and the monitors track. *)
