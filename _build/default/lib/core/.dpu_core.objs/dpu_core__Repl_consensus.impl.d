lib/core/repl_consensus.ml: Dpu_kernel Dpu_protocols Hashtbl List Payload Printf Registry Service Stack
