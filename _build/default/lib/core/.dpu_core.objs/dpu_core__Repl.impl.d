lib/core/repl.ml: Dpu_kernel Dpu_protocols Hashtbl List Msg Payload Printf Registry Service Stack System
