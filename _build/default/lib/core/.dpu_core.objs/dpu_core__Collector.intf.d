lib/core/collector.mli: Dpu_engine Dpu_kernel Msg
