lib/core/stack_builder.mli: Collector Dpu_kernel System
