lib/core/variants.mli: Dpu_kernel
