lib/core/monitor.mli: Collector Dpu_kernel Stack
