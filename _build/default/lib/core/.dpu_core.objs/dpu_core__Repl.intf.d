lib/core/repl.mli: Dpu_kernel Msg Payload Registry Stack System
