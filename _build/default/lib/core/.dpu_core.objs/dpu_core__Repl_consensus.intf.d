lib/core/repl_consensus.mli: Dpu_kernel Payload Registry Stack System
