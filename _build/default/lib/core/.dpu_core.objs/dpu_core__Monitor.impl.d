lib/core/monitor.ml: App_msg Collector Dpu_engine Dpu_kernel Dpu_protocols Msg Service Stack
