lib/core/variants.ml: Dpu_protocols
