lib/core/collector.ml: Dpu_engine Dpu_kernel Hashtbl List Msg
