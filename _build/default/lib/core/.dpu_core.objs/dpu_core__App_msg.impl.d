lib/core/app_msg.ml: Dpu_kernel Msg Payload Printf
