lib/core/stack_builder.ml: Dpu_kernel Dpu_protocols Monitor Option Registry Repl Repl_consensus Service Stack System Variants
