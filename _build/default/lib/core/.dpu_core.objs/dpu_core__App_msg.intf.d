lib/core/app_msg.mli: Dpu_kernel Msg Payload
