lib/core/middleware.mli: Collector Dpu_engine Dpu_kernel Dpu_net Dpu_protocols Msg Stack_builder System
