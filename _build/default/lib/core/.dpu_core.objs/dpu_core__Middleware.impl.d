lib/core/middleware.ml: App_msg Array Collector Dpu_kernel Dpu_net Dpu_protocols Msg Option Repl_consensus Service Stack Stack_builder System
