open Dpu_kernel

type Payload.t += App of Msg.t

let () =
  Payload.register_printer (function
    | App m -> Some (Printf.sprintf "app %s" (Msg.id_to_string m.Msg.id))
    | _ -> None)
