(** System-wide instrumentation: who broadcast what when, and who
    delivered what when.

    The paper's §6 metric is the *average latency* of ABcast: for a
    message [m], [t_i(m)] is the time between ABcasting [m] and
    delivering it on stack [i]; the latency of [m] is the mean of
    [t_i(m)] over all stacks that delivered it. {!latency_series}
    returns one point per message, keyed by its send time — exactly the
    scatter plotted in Fig. 5. *)

open Dpu_kernel

type t

val create : unit -> t

val record_send : t -> node:int -> id:Msg.id -> time:float -> unit

val record_deliver : t -> node:int -> id:Msg.id -> time:float -> unit

val record_switch : t -> node:int -> generation:int -> time:float -> unit
(** A stack completed a protocol switch (installed generation [g]). *)

val sends : t -> (Msg.id * int * float) list
(** (id, sender, send time), in send order. *)

val send_count : t -> int

val send_time : t -> Msg.id -> float option

val delivers_of : t -> node:int -> (Msg.id * float) list
(** Delivery sequence of a node, in delivery order. *)

val delivered_nodes : t -> int list
(** Nodes that delivered at least one message. *)

val deliver_times : t -> Msg.id -> (int * float) list
(** All (node, time) deliveries of one message. *)

val latency_of : t -> Msg.id -> float option
(** Mean over stacks of [t_i(m)]; [None] if never delivered. *)

val latency_series : t -> Dpu_engine.Series.t
(** One (send-time, average-latency) point per delivered message. *)

val undelivered_ids : t -> expected_copies:int -> Msg.id list
(** Messages delivered by fewer than [expected_copies] nodes. *)

val switch_window : t -> generation:int -> (float * float) option
(** (first, last) time a stack installed [generation] — the
    paper's replacement window: starts when any process triggers it,
    finishes when all machines have replaced the module. *)

val switches : t -> (int * int * float) list
(** (node, generation, time) in order of occurrence. *)
