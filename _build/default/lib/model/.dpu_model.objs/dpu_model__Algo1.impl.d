lib/model/algo1.ml: Format Hashtbl List Printf
