lib/model/algo1.mli: Format
