lib/model/consswap.ml: Format Hashtbl List Printf
