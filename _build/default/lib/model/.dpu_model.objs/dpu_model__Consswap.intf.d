lib/model/consswap.mli: Format
