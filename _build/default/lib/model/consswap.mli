(** Bounded model checking of the consensus replacement layer
    ([Dpu_core.Repl_consensus], the paper's §7 / TR [16] extension).

    The abstraction: one sequential stream of consensus instances
    [k = 0, 1, …]. Every node proposes each instance (under its current
    generation, optionally tagged with a pending change request), and
    proposes [k+1] only after it accepted a decision for [k] — the
    sequential-client contract the layer documents. Each generation's
    implementation may decide an instance by picking one of the
    proposals made under that generation; one instance can end up
    decided by *both* the old and the new implementation (the re-issue
    path), which is exactly the razor's edge the design must survive.
    Nodes learn decisions in arbitrary order and per the layer's rules:
    accept only the current generation, track the decided prefix, apply
    a tagged switch only once the prefix reaches it, re-issue own
    undecided proposals beyond the switch point.

    Checked in every reachable state: {e decision agreement} (no two
    nodes accept different values for one instance) and {e at most one
    acceptance per instance per node}; in every quiescent state:
    {e completeness} (every node accepted a decision for every instance
    it proposed) and {e switch agreement} (all nodes end in the same
    generation). *)

type bounds = {
  nodes : int;
  instances : int;  (** length of the instance stream *)
  changes : int;  (** change requests (0 or 1) *)
  max_states : int;
}

val default_bounds : bounds
(** 2 nodes, 2 instances, 1 change, 4M states. *)

type variant =
  | Sound  (** the shipped design *)
  | No_prefix_defer
      (** apply a tagged switch immediately on its decision, even with
          earlier instances still undecided locally *)
  | No_stale_discard
      (** accept decisions of superseded generations *)
  | No_reissue  (** do not re-propose undecided instances after a switch *)

val variant_name : variant -> string

type result =
  | Verified of { states : int; quiescent : int }
  | Violation of { property : string; trace : string list; states : int }
  | Bound_exceeded of { states : int }

val check : ?variant:variant -> ?bounds:bounds -> unit -> result

val pp_result : Format.formatter -> result -> unit
