(** Exhaustive bounded model checking of Algorithm 1.

    The trace checkers in [Dpu_props] verify the runs we happened to
    simulate; this module verifies {e every} run within small bounds.
    It abstracts the system at exactly the level of the paper's §5
    proofs:

    - each protocol generation provides atomic broadcast, modelled as a
      shared growing sequence (the agreed order) fed nondeterministically
      from a pending set;
    - each stack consumes every generation's sequence at its own pace
      (old modules keep delivering after being unbound, §2) and runs
      Algorithm 1 verbatim: [seqNumber], the [undelivered] set, the
      generation check of line 18, the re-issue of lines 15–16;
    - clients broadcast, any stack may request a change, stacks may
      fail-stop.

    The checker enumerates all interleavings of these actions up to the
    given budgets, checking uniform integrity and total order in every
    reachable state and validity + uniform agreement in every quiescent
    state — the mechanised counterpart of §5.2.2, exhaustive instead of
    per-run.

    {b Mutations.} To show each line of the algorithm is load-bearing,
    the model can be run with a line deleted; the checker then returns
    a minimal counterexample trace:
    - {!no_sn_check} (drop line 18) — stale-generation deliveries reach
      the application: duplicates / order violations;
    - {!no_reissue} (drop lines 15–16) — messages caught by the switch
      are lost: validity fails;
    - {!no_undelivered_removal} (drop lines 19–20) — delivered messages
      are re-issued anyway: duplicates.

    {b A finding.} At [changes = 2] the checker produces a
    counterexample against Algorithm 1 {e as printed}: two overlapping
    [changeABcast] requests both enter the generation-0 stream (both
    requesters still had [seqNumber = 0]); a stack that processes the
    two change messages back-to-back skips generation 1 entirely and
    discards (line 18) a message that a slower stack delivered during
    its generation-1 window — uniform agreement fails. The paper's
    §5.2.2 agreement proof silently assumes a change of protocol [sn]
    is ABcast through protocol [sn]; overlapping requests violate that
    assumption. {!Fixed_line10} (discard stale change messages, the
    same filter line 18 applies to data) restores every property at
    the same bounds, and is what this repository's [Repl] implements. *)

type mutation =
  | Faithful  (** Algorithm 1 exactly as printed *)
  | Fixed_line10
      (** apply a [newABcast] delivery only when its generation tag
          matches [seqNumber] (the symmetric check to line 18) — the
          repair for the overlapping-changes flaw below *)
  | No_sn_check
  | No_reissue
  | No_undelivered_removal

val mutation_name : mutation -> string

type bounds = {
  nodes : int;  (** number of stacks (2–3 keeps exploration fast) *)
  sends : int;  (** total client broadcasts *)
  changes : int;  (** total protocol-change requests *)
  crashes : int;  (** fail-stops allowed *)
  max_states : int;  (** exploration cut-off (safety net) *)
}

val default_bounds : bounds
(** 2 nodes, 2 sends, 1 change, 0 crashes, 2M states. *)

type action =
  | Send of { node : int; msg : int }
  | Change of { node : int }
  | Order of { generation : int; what : string }
  | Deliver of { node : int; generation : int; what : string }
  | Crash of { node : int }

val pp_action : Format.formatter -> action -> unit

type result =
  | Verified of { states : int; quiescent : int }
      (** all reachable states satisfy the properties *)
  | Violation of { property : string; trace : action list; states : int }
      (** a counterexample: the action sequence leading to it *)
  | Bound_exceeded of { states : int }

val check : ?mutation:mutation -> ?bounds:bounds -> unit -> result

val pp_result : Format.formatter -> result -> unit
