open Dpu_protocols

let view_to_string (v : Gm.view) =
  Printf.sprintf "v%d{%s}" v.Gm.id (String.concat "," (List.map string_of_int v.Gm.members))

let identical_view_sequences node_views =
  let checked = ref 0 in
  let reference =
    List.fold_left
      (fun acc (_, views) -> if List.length views > List.length acc then views else acc)
      [] node_views
  in
  let is_prefix shorter longer =
    let rec go = function
      | [], _ -> true
      | _ :: _, [] -> false
      | a :: rest_a, b :: rest_b -> a = b && go (rest_a, rest_b)
    in
    go (shorter, longer)
  in
  let violations =
    List.filter_map
      (fun (node, views) ->
        incr checked;
        if is_prefix views reference then None
        else
          Some
            (Printf.sprintf "node %d installed [%s], diverging from [%s]" node
               (String.concat "; " (List.map view_to_string views))
               (String.concat "; " (List.map view_to_string reference))))
      node_views
  in
  Report.make ~property:"identical view sequences" ~checked:!checked violations

let monotone_view_ids node_views =
  let checked = ref 0 in
  let violations =
    List.concat_map
      (fun (node, views) ->
        let rec walk = function
          | (a : Gm.view) :: (b :: _ as rest) ->
            incr checked;
            if b.Gm.id <> a.Gm.id + 1 then
              Printf.sprintf "node %d installed view %d after view %d" node b.Gm.id
                a.Gm.id
              :: walk rest
            else walk rest
          | [ _ ] | [] -> []
        in
        walk views)
      node_views
  in
  Report.make ~property:"monotone view ids" ~checked:!checked violations

let check_all node_views =
  [ identical_view_sequences node_views; monotone_view_ids node_views ]
