type t = {
  property : string;
  ok : bool;
  violations : string list;
  checked : int;
}

let make ~property ?(max_violations = 10) ~checked violations =
  let total = List.length violations in
  let shown = List.filteri (fun i _ -> i < max_violations) violations in
  let shown =
    if total > max_violations then
      shown @ [ Printf.sprintf "... and %d more" (total - max_violations) ]
    else shown
  in
  { property; ok = total = 0; violations = shown; checked }

let pp ppf t =
  if t.ok then Format.fprintf ppf "[ok]   %s (%d checked)" t.property t.checked
  else begin
    Format.fprintf ppf "[FAIL] %s (%d checked):" t.property t.checked;
    List.iter (fun v -> Format.fprintf ppf "@\n       %s" v) t.violations
  end

let all_ok reports = List.for_all (fun r -> r.ok) reports

let pp_all ppf reports =
  List.iter (fun r -> Format.fprintf ppf "%a@\n" pp r) reports
