(** Mechanical checkers for the paper's generic DPU properties (§3),
    evaluated over the kernel {!Dpu_kernel.Trace}.

    - {e Stack-well-formedness}: whenever a module calls a service, the
      service is bound to one module (strong) or eventually bound
      (weak). The kernel queues calls on unbound services and records
      [Call_blocked]/[Call_unblocked] pairs, so the weak property holds
      iff every blocked call was eventually released, and the strong
      property holds iff no call ever blocked.

    - {e Protocol-operationability}: whenever a module of protocol [P]
      is bound in some stack, every non-crashed stack (eventually, for
      weak) contains a module of [P]. Modules are identified by their
      protocol name. *)

open Dpu_kernel

val weak_stack_well_formedness : Trace.t -> Report.t

val strong_stack_well_formedness : Trace.t -> Report.t

val weak_protocol_operationability :
  Trace.t -> protocol:string -> nodes:int list -> Report.t
(** [nodes] is the full set of stacks in the system; stacks with a
    [Crash] entry are exempted from the obligation. *)

val strong_protocol_operationability :
  Trace.t -> protocol:string -> nodes:int list -> Report.t
(** Every bind of [P] at time [t] requires every non-crashed stack to
    already contain a [P] module at [t]. *)

val check_generic : Trace.t -> protocols:string list -> nodes:int list -> Report.t list
(** Weak well-formedness plus weak operationability for each protocol. *)
