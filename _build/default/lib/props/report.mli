(** Result of checking one correctness property against a run. *)

type t = {
  property : string;
  ok : bool;
  violations : string list;  (** human-readable, capped *)
  checked : int;  (** how many obligations were examined *)
}

val make : property:string -> ?max_violations:int -> checked:int -> string list -> t
(** [make ~property ~checked violations]: [ok] iff no violations;
    violations beyond [max_violations] (default 10) are summarised. *)

val pp : Format.formatter -> t -> unit

val all_ok : t list -> bool

val pp_all : Format.formatter -> t list -> unit
