open Dpu_kernel
module Collector = Dpu_core.Collector

let id_of_string_exn s =
  match String.split_on_char '.' s with
  | [ origin; seq ] -> { Msg.origin = int_of_string origin; seq = int_of_string seq }
  | _ -> invalid_arg "id_of_string_exn"

let validity collector ~correct =
  let checked = ref 0 in
  let violations =
    List.filter_map
      (fun (id, sender, _t0) ->
        if List.mem sender correct then begin
          incr checked;
          let delivered_at_sender =
            List.exists (fun (node, _) -> node = sender) (Collector.deliver_times collector id)
          in
          if delivered_at_sender then None
          else
            Some
              (Printf.sprintf "correct sender %d never Adelivered its own %s" sender
                 (Msg.id_to_string id))
        end
        else None)
      (Collector.sends collector)
  in
  Report.make ~property:"validity" ~checked:!checked violations

let uniform_agreement collector ~correct =
  let checked = ref 0 in
  let violations =
    List.concat_map
      (fun (id, _sender, _t0) ->
        let deliverers = List.map fst (Collector.deliver_times collector id) in
        if deliverers = [] then []
        else begin
          incr checked;
          List.filter_map
            (fun node ->
              if List.mem node deliverers then None
              else
                Some
                  (Printf.sprintf "%s delivered somewhere but not at correct node %d"
                     (Msg.id_to_string id) node))
            correct
        end)
      (Collector.sends collector)
  in
  Report.make ~property:"uniform agreement" ~checked:!checked violations

let uniform_integrity collector =
  let sent : (Msg.id, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter (fun (id, _, _) -> Hashtbl.replace sent id ()) (Collector.sends collector);
  let checked = ref 0 in
  let violations = ref [] in
  List.iter
    (fun node ->
      let seen : (Msg.id, unit) Hashtbl.t = Hashtbl.create 1024 in
      List.iter
        (fun (id, _time) ->
          incr checked;
          if Hashtbl.mem seen id then
            violations :=
              Printf.sprintf "node %d Adelivered %s twice" node (Msg.id_to_string id)
              :: !violations
          else Hashtbl.replace seen id ();
          if not (Hashtbl.mem sent id) then
            violations :=
              Printf.sprintf "node %d Adelivered %s which was never ABcast" node
                (Msg.id_to_string id)
              :: !violations)
        (Collector.delivers_of collector ~node))
    (Collector.delivered_nodes collector);
  Report.make ~property:"uniform integrity" ~checked:!checked (List.rev !violations)

let uniform_total_order collector =
  let nodes = Collector.delivered_nodes collector in
  let position node =
    let tbl : (Msg.id, int) Hashtbl.t = Hashtbl.create 1024 in
    List.iteri
      (fun i (id, _) -> if not (Hashtbl.mem tbl id) then Hashtbl.replace tbl id i)
      (Collector.delivers_of collector ~node);
    tbl
  in
  let positions = List.map (fun n -> (n, position n)) nodes in
  let checked = ref 0 in
  let violations = ref [] in
  (* For each ordered pair (p, q): walk q's sequence; the p-positions of
     the messages q delivered must be (a) strictly increasing over the
     common subset and (b) gap-free with respect to p's sequence up to
     the point reached — i.e. if q delivered something p put at
     position i, q must have delivered everything p put before i
     (uniformity). (b) is implied by (a) plus prefix coverage; we check
     (a) directly and (b) via a coverage counter. *)
  List.iter
    (fun (p, pos_p) ->
      List.iter
        (fun (q, _) ->
          if p <> q then begin
            let last = ref (-1) in
            let common = ref 0 in
            List.iter
              (fun (id, _) ->
                match Hashtbl.find_opt pos_p id with
                | None -> ()
                | Some i ->
                  incr checked;
                  incr common;
                  if i <= !last then
                    violations :=
                      Printf.sprintf
                        "nodes %d and %d disagree on the order of %s (p-pos %d after %d)"
                        p q (Msg.id_to_string id) i !last
                      :: !violations
                  else last := i)
              (Collector.delivers_of collector ~node:q);
            (* (b): q's common subset must be a prefix of p's sequence
               up to the furthest p-position reached. *)
            if !last + 1 > !common then
              violations :=
                Printf.sprintf
                  "node %d delivered a message node %d ordered at position %d but skipped %d earlier ones"
                  q p !last (!last + 1 - !common)
                :: !violations
          end)
        positions)
    positions;
  Report.make ~property:"uniform total order" ~checked:!checked (List.rev !violations)

let check_all collector ~correct =
  [
    validity collector ~correct;
    uniform_agreement collector ~correct;
    uniform_integrity collector;
    uniform_total_order collector;
  ]
