let fifo_order node_logs =
  let checked = ref 0 in
  let violations = ref [] in
  List.iter
    (fun (node, log) ->
      let next : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (origin, seq) ->
          incr checked;
          let expected =
            match Hashtbl.find_opt next origin with Some e -> e | None -> 0
          in
          if seq <> expected then
            violations :=
              Printf.sprintf "node %d delivered %d.%d but expected %d.%d" node origin
                seq origin expected
              :: !violations;
          Hashtbl.replace next origin (max (seq + 1) expected))
        log)
    node_logs;
  Report.make ~property:"FIFO order" ~checked:!checked (List.rev !violations)

let vect_lt a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x <= y) a b
  && List.exists2 (fun x y -> x < y) a b

let causal_order ~stamps ~deliveries =
  let checked = ref 0 in
  let violations = ref [] in
  (* All happened-before pairs. *)
  let pairs =
    List.concat_map
      (fun (m, sm) ->
        List.filter_map
          (fun (m', sm') -> if m <> m' && vect_lt sm sm' then Some (m, m') else None)
          stamps)
      stamps
  in
  List.iter
    (fun (node, log) ->
      let pos : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      List.iteri (fun i m -> if not (Hashtbl.mem pos m) then Hashtbl.replace pos m i) log;
      List.iter
        (fun (m, m') ->
          match (Hashtbl.find_opt pos m, Hashtbl.find_opt pos m') with
          | Some i, Some j ->
            incr checked;
            if i >= j then
              violations :=
                Printf.sprintf
                  "node %d delivered %d.%d before its causal predecessor %d.%d" node
                  (fst m') (snd m') (fst m) (snd m)
                :: !violations
          | Some _, None | None, Some _ | None, None -> ())
        pairs)
    deliveries;
  Report.make ~property:"causal order" ~checked:!checked (List.rev !violations)
