(** Mechanical checkers for the atomic broadcast specification (§5.1),
    evaluated over a finished run's {!Dpu_core.Collector} record.

    “Eventually” is interpreted at end-of-run on a quiescent system, as
    usual for trace checking: run the simulator until no events remain
    (or well past the last send) before checking.

    These are exactly the four properties the paper proves hold
    *across* a dynamic replacement (§5.2.2), so running them over runs
    that switch protocols mid-stream is the mechanised counterpart of
    that proof. *)

open Dpu_kernel

val validity : Dpu_core.Collector.t -> correct:int list -> Report.t
(** If a correct process ABcasts [m], it eventually Adelivers [m]. *)

val uniform_agreement : Dpu_core.Collector.t -> correct:int list -> Report.t
(** If any process Adelivers [m], every correct process does. *)

val uniform_integrity : Dpu_core.Collector.t -> Report.t
(** Every process Adelivers [m] at most once, and only if [m] was
    previously ABcast. *)

val uniform_total_order : Dpu_core.Collector.t -> Report.t
(** For any two processes and any two messages both delivered by both,
    the relative delivery order agrees; additionally, if [p] delivers
    [m] before [m'] and [q] delivers [m'], then [q] must also have
    delivered [m] (uniformity over partial sequences, e.g. at crashed
    processes). *)

val check_all : Dpu_core.Collector.t -> correct:int list -> Report.t list

val id_of_string_exn : string -> Msg.id
(** Parse ["origin.seq"] (inverse of [Msg.id_to_string]); for tools. *)
