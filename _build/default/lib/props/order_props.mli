(** Checkers for the weaker broadcast orderings (FIFO, causal).

    Inputs are abstract delivery logs, so the checkers work on any
    record of a run:
    - a {e send record} identifies each message by [(origin, seq)]
      where [seq] counts the origin's broadcasts (0, 1, …);
    - a {e delivery log} lists, per node, the [(origin, seq)] pairs in
      delivery order. *)

val fifo_order : (int * (int * int) list) list -> Report.t
(** Per receiving node: messages of each origin must be delivered in
    increasing [seq] order, gap-free. *)

val causal_order :
  stamps:((int * int) * int list) list ->
  deliveries:(int * (int * int) list) list ->
  Report.t
(** [stamps] gives each message's vector clock at broadcast; if
    [stamp m < stamp m'] (component-wise, strictly) then every node
    that delivered both must deliver [m] first. *)
