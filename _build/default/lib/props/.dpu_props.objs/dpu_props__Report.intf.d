lib/props/report.mli: Format
