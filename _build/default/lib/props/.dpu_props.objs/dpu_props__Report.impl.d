lib/props/report.ml: Format List Printf
