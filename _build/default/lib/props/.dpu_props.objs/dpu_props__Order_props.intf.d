lib/props/order_props.mli: Report
