lib/props/abcast_props.ml: Dpu_core Dpu_kernel Hashtbl List Msg Printf Report String
