lib/props/gm_props.ml: Dpu_protocols Gm List Printf Report String
