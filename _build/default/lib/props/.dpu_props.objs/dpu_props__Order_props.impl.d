lib/props/order_props.ml: Hashtbl List Printf Report
