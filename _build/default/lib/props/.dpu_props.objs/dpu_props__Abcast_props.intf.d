lib/props/abcast_props.mli: Dpu_core Dpu_kernel Msg Report
