lib/props/stack_props.mli: Dpu_kernel Report Trace
