lib/props/gm_props.mli: Dpu_protocols Gm Report
