lib/props/stack_props.ml: Dpu_kernel Hashtbl List Option Printf Report String Trace
