(** Checkers for group membership correctness.

    GM's contract (built on totally ordered broadcast, paper §4.1 /
    [17]): every correct stack installs the {e same sequence of views}.
    A crashed stack may stop at a prefix. *)

open Dpu_protocols

val identical_view_sequences : (int * Gm.view list) list -> Report.t
(** Input: per node, the views in installation order. Correct nodes
    must agree on the whole sequence (the longest sequence is the
    reference; every other must be a prefix of it — pass only correct
    nodes to require full equality modulo in-flight tails). *)

val monotone_view_ids : (int * Gm.view list) list -> Report.t
(** View identifiers must increase by exactly one per installation at
    every node. *)

val check_all : (int * Gm.view list) list -> Report.t list
