(** Online and offline summary statistics.

    [t] accumulates samples with Welford's algorithm (numerically stable
    mean/variance) and keeps the raw samples so that exact percentiles
    can be computed afterwards. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_all : t -> float list -> unit

val count : t -> int

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** Smallest sample; [nan] when empty. *)

val max : t -> float
(** Largest sample; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation
    between closest ranks; [nan] when empty. Sorts lazily, O(n log n)
    on first call after an insertion. *)

val median : t -> float

val samples : t -> float array
(** Copy of the raw samples in insertion order. *)

val merge : t -> t -> t
(** Combined statistics over both sample sets. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render as [n=… mean=… p50=… p95=… max=…]. *)
