lib/engine/stats.ml: Array Float Format List
