lib/engine/rng.mli:
