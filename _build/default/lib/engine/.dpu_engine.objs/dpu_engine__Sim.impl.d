lib/engine/sim.ml: Heap Rng
