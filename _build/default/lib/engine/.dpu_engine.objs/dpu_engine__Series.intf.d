lib/engine/series.mli: Stats
