lib/engine/stats.mli: Format
