lib/engine/series.ml: Float Hashtbl List Stats
