lib/engine/sim.mli: Rng
