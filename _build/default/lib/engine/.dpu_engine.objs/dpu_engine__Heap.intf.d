lib/engine/heap.mli:
