(** Time series of (timestamp, value) samples.

    Used by the experiment harness to record per-message latencies
    keyed by send time, and to derive the windowed averages the paper
    plots in Figures 5 and 6. *)

type t

type point = { time : float; value : float }

val create : unit -> t

val add : t -> time:float -> value:float -> unit

val length : t -> int

val points : t -> point list
(** All points sorted by time (insertion-stable for equal times). *)

val values : t -> float list

val between : t -> lo:float -> hi:float -> point list
(** Points with [lo <= time < hi]. *)

val stats : t -> Stats.t
(** Summary statistics of the values. *)

val stats_between : t -> lo:float -> hi:float -> Stats.t

val window_average : t -> width:float -> point list
(** Tumbling-window average: one output point per [width]-sized window
    (window midpoint, mean of the values inside). Empty windows are
    skipped. *)

val map_values : t -> (float -> float) -> t
