(** A replicated distributed lock service — mutual exclusion built on
    nothing but the middleware's totally ordered broadcast, with
    crash recovery driven by group membership.

    Every node runs a replica of the lock table. Acquire and release
    requests are atomically broadcast, so all replicas see the same
    sequence of requests and agree, at every point of the history, on
    each lock's holder and FIFO waiter queue. No separate lock manager,
    no extra round trips beyond the broadcast itself.

    Crash recovery: when group membership excludes a node, the
    smallest-id surviving member broadcasts an eviction for it. The
    eviction is itself an ordered message, so every replica drops the
    dead node's holdings and queued requests at the same point — and
    ignores any of its requests that the broadcast happens to order
    later. Requires a profile with [with_gm = true] for auto-eviction;
    without GM the service still works, minus crash recovery.

    Guarantees (checked in the test-suite, including across dynamic
    protocol updates):
    - {e safety}: at most one holder per lock at every replica, and all
      replicas agree on it;
    - {e FIFO fairness}: the lock passes in request order;
    - {e liveness}: a released or evicted lock is granted to the next
      waiter. *)

type t

val attach : Dpu_core.Middleware.t -> node:int -> t

val node : t -> int

val acquire : t -> string -> unit
(** Request the lock: this node joins the lock's FIFO queue (duplicate
    requests while queued are ignored). The grant arrives via
    {!on_granted} / becomes visible through {!holder}. *)

val release : t -> string -> unit
(** Give the lock up (a no-op unless this node holds it when the
    request is ordered). *)

val holder : t -> string -> int option
(** Current holder of the lock at this replica. *)

val waiters : t -> string -> int list
(** Queued requesters behind the holder, FIFO. *)

val holds : t -> string -> bool
(** Does this node hold the lock (at this replica's point in the
    history)? *)

val on_granted : t -> (string -> unit) -> unit
(** Callback invoked when this node becomes the holder of a lock. *)

val evicted : t -> int list
(** Nodes evicted from the lock table so far (ascending). *)

val digest : t -> string
(** Deterministic digest of the whole lock table, for replica
    comparison. *)
