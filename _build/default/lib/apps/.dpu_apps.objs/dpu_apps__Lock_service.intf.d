lib/apps/lock_service.mli: Dpu_core
