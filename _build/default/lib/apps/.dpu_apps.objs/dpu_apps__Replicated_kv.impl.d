lib/apps/replicated_kv.ml: Buffer Digest Dpu_core Dpu_kernel Hashtbl List Printf String
