lib/apps/lock_service.ml: Buffer Digest Dpu_core Dpu_kernel Dpu_protocols Hashtbl List Option Printf String
