lib/apps/replicated_kv.mli: Dpu_core
