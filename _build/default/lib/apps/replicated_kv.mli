(** A replicated key-value store — the paper's motivating application
    ("group communication middleware … used for implementing replicated
    non-stop services", §1), built on nothing but the middleware's
    totally ordered broadcast.

    Each node attaches one replica. Updates are atomically broadcast;
    every replica applies the same sequence of operations, so the state
    machines never diverge — including while the protocols underneath
    are being replaced. Reads are served from local state (sequentially
    consistent; a read observes a prefix of the agreed history).

    {[
      let mw = Middleware.create ~n:3 () in
      let kv = Array.init 3 (fun node -> Replicated_kv.attach mw ~node) in
      Replicated_kv.put kv.(0) "colour" "red";
      Middleware.change_protocol mw ~node:1 Variants.sequencer;
      Replicated_kv.put kv.(2) "colour" "blue";
      Middleware.run_until_quiescent ~limit:10_000.0 mw;
      (* all replicas now agree: Some "blue", identical digests *)
    ]} *)

type t

val attach : Dpu_core.Middleware.t -> node:int -> t
(** Create the replica living on [node]. At most one per node. *)

val attach_late : Dpu_core.Middleware.t -> node:int -> from:int -> t
(** Join a node to an already-running store: the new replica misses the
    operations ordered before it attached, so it requests a state
    transfer from the replica on node [from]. The sync request and the
    snapshot both travel through the ordered broadcast, which pins the
    hand-over to an exact position of the history: the snapshot covers
    everything up to the request, the joiner buffers what is ordered
    between request and snapshot, and replays it on installation —
    deterministic catch-up, no locks, no pauses. [synced] reports
    completion. *)

val synced : t -> bool
(** [true] once the replica's state reflects a full prefix of the
    history (always true for {!attach} replicas). *)

val node : t -> int

(** {1 Updates (totally ordered)} *)

val put : t -> string -> string -> unit
(** Broadcast a write; applied at every replica in the agreed order. *)

val delete : t -> string -> unit

val incr : t -> ?by:int -> string -> unit
(** Broadcast an atomic increment of an integer cell (absent = 0).
    Read-modify-write as a single ordered operation, so concurrent
    increments from different nodes never lose updates. *)

(** {1 Local reads} *)

val get : t -> string -> string option

val get_int : t -> string -> int
(** The integer value of a counter cell (0 if absent or non-numeric). *)

val size : t -> int
(** Number of live keys. *)

val applied : t -> int
(** Operations applied so far (the replica's position in the history). *)

val digest : t -> string
(** Order-insensitive digest of the current state: equal digests ⇔
    equal contents. Replicas that applied the same prefix agree. *)

val entries : t -> (string * string) list
(** Current contents, sorted by key. *)
