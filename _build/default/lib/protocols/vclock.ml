type t = int array

let zero ~n = Array.make n 0

let size = Array.length

let get t i = t.(i)

let tick t i =
  let t' = Array.copy t in
  t'.(i) <- t'.(i) + 1;
  t'

let merge a b =
  assert (Array.length a = Array.length b);
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  assert (Array.length a = Array.length b);
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let deliverable t ~at ~sender =
  assert (Array.length t = Array.length at);
  let ok = ref (t.(sender) = at.(sender) + 1) in
  Array.iteri (fun j x -> if j <> sender && x > at.(j) then ok := false) t;
  !ok

let to_list = Array.to_list

let of_list = Array.of_list

let pp ppf t =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int (to_list t)))
