lib/protocols/abcast_ct.ml: Abcast_iface Consensus_iface Dpu_kernel Hashtbl List Msg Payload Printf Rbcast Registry Service Stack System
