lib/protocols/consensus_paxos.ml: Array Consensus_iface Dpu_engine Dpu_kernel Fd Hashtbl List Payload Printf Registry Rp2p Service Stack System
