lib/protocols/abcast_iface.mli: Dpu_kernel Payload Stack
