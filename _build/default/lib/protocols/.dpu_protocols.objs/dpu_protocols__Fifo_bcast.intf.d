lib/protocols/fifo_bcast.mli: Dpu_kernel Payload Service Stack System
