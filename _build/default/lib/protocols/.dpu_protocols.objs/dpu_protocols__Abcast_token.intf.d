lib/protocols/abcast_token.mli: Dpu_kernel Stack System
