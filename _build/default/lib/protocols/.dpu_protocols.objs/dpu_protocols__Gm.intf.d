lib/protocols/gm.mli: Dpu_kernel Payload Stack System
