lib/protocols/abcast_seq.mli: Dpu_kernel Stack System
