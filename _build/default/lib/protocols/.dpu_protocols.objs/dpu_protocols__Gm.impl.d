lib/protocols/gm.ml: Array Dpu_engine Dpu_kernel Fd Float Hashtbl List Payload Printf Registry Repl_iface Service Stack String System
