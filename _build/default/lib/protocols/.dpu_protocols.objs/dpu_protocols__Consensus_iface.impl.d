lib/protocols/consensus_iface.ml: Dpu_kernel Payload Printf
