lib/protocols/fd.ml: Array Dpu_engine Dpu_kernel List Payload Printf Registry Service Stack System Udp
