lib/protocols/repl_iface.ml: Dpu_kernel Payload Printf
