lib/protocols/fd.mli: Dpu_kernel Payload Stack System
