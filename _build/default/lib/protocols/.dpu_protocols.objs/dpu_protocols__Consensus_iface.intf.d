lib/protocols/consensus_iface.mli: Dpu_kernel Payload
