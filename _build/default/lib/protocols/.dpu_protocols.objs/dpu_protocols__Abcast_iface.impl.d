lib/protocols/abcast_iface.ml: Dpu_kernel Payload Printf Stack
