lib/protocols/rp2p.ml: Dpu_engine Dpu_kernel Float Hashtbl List Payload Printf Registry Service Stack System Udp
