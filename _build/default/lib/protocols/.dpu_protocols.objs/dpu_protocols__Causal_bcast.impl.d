lib/protocols/causal_bcast.ml: Dpu_kernel List Payload Printf Rbcast Registry Service Stack String System Vclock
