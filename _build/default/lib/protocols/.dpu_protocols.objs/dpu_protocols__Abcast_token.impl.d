lib/protocols/abcast_token.ml: Abcast_iface Array Dpu_engine Dpu_kernel Fd Hashtbl List Payload Printf Queue Registry Rp2p Service Stack System
