lib/protocols/vclock.mli: Format
