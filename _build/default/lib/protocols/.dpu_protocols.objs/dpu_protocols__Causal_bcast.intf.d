lib/protocols/causal_bcast.mli: Dpu_kernel Payload Service Stack System Vclock
