lib/protocols/udp.mli: Dpu_kernel Dpu_net Payload Stack System
