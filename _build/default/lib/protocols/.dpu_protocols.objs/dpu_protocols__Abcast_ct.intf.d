lib/protocols/abcast_ct.mli: Dpu_kernel Msg Payload Stack System
