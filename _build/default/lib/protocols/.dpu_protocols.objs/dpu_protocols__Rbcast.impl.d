lib/protocols/rbcast.ml: Dpu_kernel Hashtbl Payload Printf Registry Rp2p Service Stack System
