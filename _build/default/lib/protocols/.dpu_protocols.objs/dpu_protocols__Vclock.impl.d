lib/protocols/vclock.ml: Array Format List String
