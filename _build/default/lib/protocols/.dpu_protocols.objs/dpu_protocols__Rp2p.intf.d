lib/protocols/rp2p.mli: Dpu_kernel Payload Stack System
