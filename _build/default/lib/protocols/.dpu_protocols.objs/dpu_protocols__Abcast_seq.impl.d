lib/protocols/abcast_seq.ml: Abcast_iface Dpu_kernel Hashtbl Msg Payload Printf Registry Rp2p Service Stack System
