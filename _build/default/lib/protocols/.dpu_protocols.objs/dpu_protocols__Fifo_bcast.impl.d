lib/protocols/fifo_bcast.ml: Dpu_kernel Hashtbl Payload Printf Rbcast Registry Service Stack System
