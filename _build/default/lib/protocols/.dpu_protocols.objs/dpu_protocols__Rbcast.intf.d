lib/protocols/rbcast.mli: Dpu_kernel Payload Service Stack System
