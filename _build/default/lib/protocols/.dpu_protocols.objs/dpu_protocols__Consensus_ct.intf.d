lib/protocols/consensus_ct.mli: Dpu_kernel Service Stack System
