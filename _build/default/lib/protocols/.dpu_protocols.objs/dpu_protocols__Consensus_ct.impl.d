lib/protocols/consensus_ct.ml: Array Consensus_iface Dpu_engine Dpu_kernel Fd Hashtbl List Option Payload Printf Registry Rp2p Service Stack System
