lib/protocols/repl_iface.mli: Dpu_kernel Payload
