lib/protocols/udp.ml: Dpu_kernel Dpu_net Payload Printf Registry Service Stack System
