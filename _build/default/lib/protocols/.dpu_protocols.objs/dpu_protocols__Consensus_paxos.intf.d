lib/protocols/consensus_paxos.mli: Dpu_kernel Service Stack System
