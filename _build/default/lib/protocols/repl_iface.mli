(** Specification of the replacement module's indirection service
    ([r-p] in Fig. 3; [r-abcast] here).

    This is the service applications and upper-layer protocols (e.g.
    group membership) call instead of [abcast]. It is defined apart
    from the replacement implementation ([Dpu_core.Repl]) to make the
    paper's structural point concrete: callers program against the
    specification of the replaced protocol, never against a particular
    implementation or the replacement machinery.

    Semantics: {!R_broadcast}/{!R_deliver} satisfy the atomic broadcast
    properties of §5.1 — including *across* dynamic replacements of the
    underlying ABcast protocol (§5.2.2). *)

open Dpu_kernel

type Payload.t +=
  | R_broadcast of { size : int; payload : Payload.t }
      (** call: rABcast — atomically broadcast through the replacement
          layer *)
  | R_deliver of { origin : int; payload : Payload.t }
      (** indication: rAdeliver — totally ordered at every stack *)
  | Change_abcast of string
      (** call: changeABcast(prot) — replace the ABcast protocol on
          every stack with the registered protocol named [prot] *)
  | Protocol_changed of { generation : int; protocol : string }
      (** indication: this stack has switched; [generation] is the new
          seqNumber *)
