open Dpu_kernel

type Payload.t +=
  | R_broadcast of { size : int; payload : Payload.t }
  | R_deliver of { origin : int; payload : Payload.t }
  | Change_abcast of string
  | Protocol_changed of { generation : int; protocol : string }

let () =
  Payload.register_printer (function
    | R_broadcast { size; payload } ->
      Some (Printf.sprintf "r-abcast size=%d %s" size (Payload.to_string payload))
    | R_deliver { origin; payload } ->
      Some (Printf.sprintf "r-adeliver origin=%d %s" origin (Payload.to_string payload))
    | Change_abcast prot -> Some (Printf.sprintf "change-abcast %s" prot)
    | Protocol_changed { generation; protocol } ->
      Some (Printf.sprintf "protocol-changed gen=%d %s" generation protocol)
    | _ -> None)
