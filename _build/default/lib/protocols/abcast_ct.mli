(** Consensus-based atomic broadcast (the [ABcast] module of Fig. 4).

    The Chandra–Toueg reduction [5]: payloads are disseminated with
    reliable broadcast; a sequence of consensus instances decides, for
    each slot [k], a batch of not-yet-delivered payloads; every stack
    delivers decided batches in slot order, giving uniform total order.

    As in the paper's prototype, the default proposes one message per
    consensus instance and ships full message contents (not
    identifiers) through consensus — the paper's §6 notes its latency
    figures are high for exactly this reason, and the load/latency
    curve of Fig. 6 is shaped by this queueing. [batch_size] lifts the
    limit for the batching ablation bench.

    The module is epoch-aware: it reads the protocol generation from
    the stack environment at creation and tags all its consensus
    instances and wire traffic with it, so a replacement's new module
    never collides with its predecessor. *)

open Dpu_kernel

type item = { id : Msg.id; size : int; payload : Payload.t }

type Payload.t += Batch of item list
(** The consensus value: a batch of items, sorted by id by the
    proposer; decided batches are applied in that order. *)

type Payload.t += Disseminate of { epoch : int; item : item }
(** The rbcast wire payload (exposed for trace tooling and tests). *)

val protocol_name : string
(** ["abcast.ct"] *)

val install : ?batch_size:int -> Stack.t -> Stack.module_

val register : ?batch_size:int -> System.t -> unit
