(** Vector clocks over a fixed set of [n] processes.

    The causality tracking device behind {!Causal_bcast}: component [i]
    counts broadcasts by process [i]. Immutable; all operations return
    fresh vectors. *)

type t

val zero : n:int -> t

val size : t -> int

val get : t -> int -> int

val tick : t -> int -> t
(** Increment component [i]. *)

val merge : t -> t -> t
(** Component-wise maximum (requires equal sizes). *)

val leq : t -> t -> bool
(** [leq a b]: every component of [a] is ≤ the matching one of [b] —
    the happened-before-or-equal relation. *)

val equal : t -> t -> bool

val lt : t -> t -> bool
(** Strictly happened-before: [leq a b] and not [equal a b]. *)

val concurrent : t -> t -> bool
(** Neither ordered before the other. *)

val deliverable : t -> at:t -> sender:int -> bool
(** The causal-delivery condition: message stamped [t] from [sender]
    can be delivered at a process whose vector is [at] iff
    [t.(sender) = at.(sender) + 1] and [t.(j) <= at.(j)] for every
    other [j] — i.e. it is the sender's next message and every message
    it causally depends on has been delivered. *)

val to_list : t -> int list

val of_list : int list -> t

val pp : Format.formatter -> t -> unit
