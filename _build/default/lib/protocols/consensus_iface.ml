open Dpu_kernel

type iid = { epoch : int; k : int }

let iid_compare a b =
  let c = compare a.epoch b.epoch in
  if c <> 0 then c else compare a.k b.k

let pp_iid { epoch; k } = Printf.sprintf "%d:%d" epoch k

type Payload.t +=
  | Propose of { iid : iid; value : Payload.t; weight : int }
  | Decide of { iid : iid; value : Payload.t }
  | No_value

let () =
  Payload.register_printer (function
    | Propose { iid; _ } -> Some (Printf.sprintf "consensus.propose %s" (pp_iid iid))
    | Decide { iid; _ } -> Some (Printf.sprintf "consensus.decide %s" (pp_iid iid))
    | No_value -> Some "consensus.no-value"
    | _ -> None)
