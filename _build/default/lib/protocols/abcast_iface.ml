open Dpu_kernel

type Payload.t +=
  | Broadcast of { size : int; payload : Payload.t }
  | Deliver of { origin : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Broadcast { size; payload } ->
      Some (Printf.sprintf "abcast size=%d %s" size (Payload.to_string payload))
    | Deliver { origin; payload } ->
      Some (Printf.sprintf "adeliver origin=%d %s" origin (Payload.to_string payload))
    | _ -> None)

let epoch_key = "abcast.epoch"

let current_epoch stack = Stack.get_env stack epoch_key ~default:0
