type kind =
  | Add_module of string
  | Remove_module of string
  | Bind of string * string
  | Unbind of string * string
  | Call of string * string
  | Call_blocked of string * string
  | Call_unblocked of string
  | Indication of string * string
  | Crash
  | App of string * string

type entry = { time : float; node : int; kind : kind }

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable rev_entries : entry list;
  mutable n : int;
  mutable truncated : bool;
}

let create ?(enabled = true) ?(capacity = 2_000_000) () =
  { enabled; capacity; rev_entries = []; n = 0; truncated = false }

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

let record t ~time ~node kind =
  if t.enabled then begin
    if t.n >= t.capacity then t.truncated <- true
    else begin
      t.rev_entries <- { time; node; kind } :: t.rev_entries;
      t.n <- t.n + 1
    end
  end

let entries t = List.rev t.rev_entries

let length t = t.n

let truncated t = t.truncated

let filter t p = List.filter p (entries t)

let kind_to_string = function
  | Add_module m -> Printf.sprintf "add-module %s" m
  | Remove_module m -> Printf.sprintf "remove-module %s" m
  | Bind (s, m) -> Printf.sprintf "bind %s -> %s" s m
  | Unbind (s, m) -> Printf.sprintf "unbind %s -/- %s" s m
  | Call (s, p) -> Printf.sprintf "call %s [%s]" s p
  | Call_blocked (s, p) -> Printf.sprintf "call-blocked %s [%s]" s p
  | Call_unblocked s -> Printf.sprintf "call-unblocked %s" s
  | Indication (s, p) -> Printf.sprintf "indication %s [%s]" s p
  | Crash -> "crash"
  | App (tag, data) -> Printf.sprintf "app %s [%s]" tag data

let pp_entry ppf e =
  Format.fprintf ppf "%10.3f n%d %s" e.time e.node (kind_to_string e.kind)
