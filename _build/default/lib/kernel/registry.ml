type factory = Stack.t -> Stack.module_

type entry = { e_name : string; e_provides : Service.t list; e_factory : factory }

type t = { mutable entries : entry list (* most recent first *) }

exception Unknown_protocol of string

exception No_provider of Service.t

let create () = { entries = [] }

let register t ~name ~provides factory =
  t.entries <-
    { e_name = name; e_provides = provides; e_factory = factory }
    :: List.filter (fun e -> not (String.equal e.e_name name)) t.entries

let names t = List.rev_map (fun e -> e.e_name) t.entries

let mem t ~name = List.exists (fun e -> String.equal e.e_name name) t.entries

let find t name = List.find_opt (fun e -> String.equal e.e_name name) t.entries

let provider_of t svc =
  match
    List.find_opt (fun e -> List.exists (Service.equal svc) e.e_provides) t.entries
  with
  | Some e -> Some e.e_name
  | None -> None

(* Binding the new module's provided services *before* recursing on its
   requirements makes cyclic service graphs terminate: by the time a
   dependency loops back, the service is already bound. *)
let rec instantiate t stack ~name =
  match find t name with
  | None -> raise (Unknown_protocol name)
  | Some e ->
    let m = e.e_factory stack in
    List.iter
      (fun svc ->
        match Stack.bound stack svc with
        | None -> Stack.bind stack svc m
        | Some _ -> ())
      (Stack.module_provides m);
    List.iter (fun svc -> ensure_bound t stack svc) (Stack.module_requires m);
    m

and create_only t stack ~name =
  match find t name with
  | None -> raise (Unknown_protocol name)
  | Some e -> e.e_factory stack

and ensure_bound t stack svc =
  match Stack.bound stack svc with
  | Some _ -> ()
  | None -> (
    match provider_of t svc with
    | None -> raise (No_provider svc)
    | Some name -> ignore (instantiate t stack ~name : Stack.module_))
