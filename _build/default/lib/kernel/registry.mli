(** Module factories and recursive instantiation.

    Algorithm 1's [create_module] (lines 22–28) creates a protocol
    module, binds it, and then recursively creates providers for any
    required service that is not yet bound in the stack. The registry
    is the lookup table this needs: it maps protocol names and service
    names to factories.

    In the paper the [prot] argument of [changeABcast] is the new
    protocol itself (code). Here a protocol travels as its registered
    name, resolved against the registry of the receiving system — the
    same information content, shipped the same way (inside a totally
    ordered ABcast message). *)

type factory = Stack.t -> Stack.module_
(** A factory adds its module to the given stack and returns it. *)

type t

exception Unknown_protocol of string

exception No_provider of Service.t

val create : unit -> t

val register : t -> name:string -> provides:Service.t list -> factory -> unit
(** Register a protocol under [name]. Registering the same name again
    replaces the previous factory (used to stage protocol versions). *)

val names : t -> string list

val mem : t -> name:string -> bool

val provider_of : t -> Service.t -> string option
(** Name of the most recently registered protocol providing the
    service. *)

val instantiate : t -> Stack.t -> name:string -> Stack.module_
(** [create_module] of Algorithm 1: create the named module, bind it to
    each of its provided services that has no current binding, then
    recursively ensure every required service has a bound provider.
    Raises {!Unknown_protocol} or {!No_provider}. *)

val ensure_bound : t -> Stack.t -> Service.t -> unit
(** Instantiate a provider chain for [service] unless one is already
    bound. *)

val create_only : t -> Stack.t -> name:string -> Stack.module_
(** Run the factory without binding anything and without resolving
    required services. This models systems that *cannot* create
    providers for new dependencies (the paper's §4.2 criticism of
    Graceful Adaptation: an alternative component may only use the
    services its host module already requires). Raises
    {!Unknown_protocol}. *)
