type t = ..

type t += Unit

let printers : (t -> string option) list ref = ref []

let register_printer f = printers := f :: !printers

let to_string p =
  match p with
  | Unit -> "unit"
  | _ ->
    let rec try_all = function
      | [] -> "<payload>"
      | f :: rest -> ( match f p with Some s -> s | None -> try_all rest)
    in
    try_all !printers

let pp ppf p = Format.pp_print_string ppf (to_string p)
