(** Services: the specifications modules are bound to (paper §2).

    A service is identified by its name. Protocols *provide* services
    and *require* services; at most one module per stack is bound to a
    service at a time, and the binding can change at run time — that is
    the mechanism dynamic protocol update is built on. *)

type t

val make : string -> t
(** [make name] is the service called [name]. Two [make] of the same
    name are equal. *)

val name : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

(** {1 Well-known services of the group-communication stack (Fig. 4)} *)

val net : t
(** Unreliable datagram transport (UDP). *)

val rp2p : t
(** Reliable point-to-point channels. *)

val fd : t
(** Failure detector. *)

val consensus : t
(** Distributed consensus. *)

val abcast : t
(** Atomic broadcast — the service whose provider gets replaced. *)

val r_abcast : t
(** The replacement module's indirection interface ([r-p] in Fig. 3):
    what applications and upper protocols actually call. *)

val gm : t
(** Group membership. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
