(** Open payload type for service calls, indications and datagrams.

    Each protocol extends [t] with its own constructors, so modules
    sharing a service (e.g. everything multiplexed over [net]) simply
    pattern-match on their own constructors and ignore the rest. This
    mirrors the untyped event model of SAMOA/Appia protocol kernels
    while staying allocation-cheap and printable. *)

type t = ..

type t += Unit  (** a payload carrying no information *)

val register_printer : (t -> string option) -> unit
(** Add a printer for some constructors; printers are tried most recent
    first. *)

val to_string : t -> string
(** Best-effort rendering (["<payload>"] if no printer matches). *)

val pp : Format.formatter -> t -> unit
