lib/kernel/system.mli: Dpu_engine Dpu_net Payload Registry Stack Trace
