lib/kernel/msg.ml: Format Map Printf Set
