lib/kernel/registry.mli: Service Stack
