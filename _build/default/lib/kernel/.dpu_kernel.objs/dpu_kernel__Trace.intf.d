lib/kernel/trace.mli: Format
