lib/kernel/system.ml: Array Dpu_engine Dpu_net Payload Registry Stack Trace
