lib/kernel/stack.ml: Dpu_engine Hashtbl List Option Payload Queue Service String Trace
