lib/kernel/registry.ml: List Service Stack String
