lib/kernel/service.ml: Format Hashtbl Map Set String
