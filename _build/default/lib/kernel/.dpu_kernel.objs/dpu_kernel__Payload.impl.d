lib/kernel/payload.ml: Format
