lib/kernel/service.mli: Format Map Set
