lib/kernel/stack.mli: Dpu_engine Payload Service Trace
