lib/kernel/msg.mli: Format Map Set
