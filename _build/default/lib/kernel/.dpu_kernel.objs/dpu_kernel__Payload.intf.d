lib/kernel/payload.mli: Format
