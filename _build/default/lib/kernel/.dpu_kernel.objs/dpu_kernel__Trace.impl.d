lib/kernel/trace.ml: Format List Printf
