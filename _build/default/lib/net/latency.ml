module Rng = Dpu_engine.Rng

type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { median : float; sigma : float }

type link = { model : t; bandwidth_mbps : float }

let lan = { model = Lognormal { median = 0.25; sigma = 0.25 }; bandwidth_mbps = 100.0 }

let constant d = { model = Constant d; bandwidth_mbps = infinity }

let sample model rng =
  let raw =
    match model with
    | Constant d -> d
    | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
    | Lognormal { median; sigma } -> Rng.lognormal rng ~mu:(log median) ~sigma
  in
  if raw < 0.001 then 0.001 else raw

let delay link rng ~size_bytes =
  let transmission =
    if link.bandwidth_mbps = infinity then 0.0
    else
      (* bits / (Mb/s * 1000 bits-per-ms-per-Mbps) -> ms *)
      float_of_int (size_bytes * 8) /. (link.bandwidth_mbps *. 1000.0)
  in
  sample link.model rng +. transmission
