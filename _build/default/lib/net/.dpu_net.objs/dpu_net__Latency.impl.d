lib/net/latency.ml: Dpu_engine
