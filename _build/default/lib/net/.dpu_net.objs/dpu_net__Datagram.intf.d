lib/net/datagram.mli: Dpu_engine Latency
