lib/net/datagram.ml: Array Dpu_engine Float Hashtbl Latency List
