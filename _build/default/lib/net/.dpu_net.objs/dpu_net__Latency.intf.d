lib/net/latency.mli: Dpu_engine
