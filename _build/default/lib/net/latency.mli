(** Link latency models.

    A link delay has two parts: a sampled propagation/processing delay
    and a deterministic transmission delay [size / bandwidth]. The
    defaults approximate the paper's testbed (100 Base-TX switched
    Ethernet between Pentium-III machines). *)

type t =
  | Constant of float  (** fixed delay in ms *)
  | Uniform of { lo : float; hi : float }  (** uniform in [lo, hi) ms *)
  | Lognormal of { median : float; sigma : float }
      (** heavy-ish tail typical of a real LAN; [median] in ms *)

type link = {
  model : t;
  bandwidth_mbps : float;  (** link bandwidth in megabits per second *)
}

val lan : link
(** 100 Mb/s switched LAN: log-normal around 0.25 ms median. *)

val constant : float -> link
(** Fixed-delay, infinite-bandwidth link (for deterministic tests). *)

val sample : t -> Dpu_engine.Rng.t -> float
(** Draw one propagation delay in ms. Always >= 0.001. *)

val delay : link -> Dpu_engine.Rng.t -> size_bytes:int -> float
(** Total one-way delay in ms for a datagram of [size_bytes]. *)
