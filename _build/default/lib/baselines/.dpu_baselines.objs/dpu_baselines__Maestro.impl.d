lib/baselines/maestro.ml: Dpu_engine Dpu_kernel Dpu_protocols Hashtbl List Msg Payload Printf Registry Service Stack System
