lib/baselines/graceful.mli: Dpu_kernel Registry Stack System
