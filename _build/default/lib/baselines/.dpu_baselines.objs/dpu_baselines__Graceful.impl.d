lib/baselines/graceful.ml: Dpu_engine Dpu_kernel Dpu_protocols Hashtbl List Msg Option Payload Printf Registry Service Stack String System
