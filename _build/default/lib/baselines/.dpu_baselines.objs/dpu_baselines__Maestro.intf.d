lib/baselines/maestro.mli: Dpu_kernel Registry Stack System
