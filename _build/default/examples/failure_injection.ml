(* Adversarial run: message loss, a partition and a crash around a
   dynamic protocol update.

   Run with:  dune exec examples/failure_injection.exe

   A 5-node cluster runs under load on a lossy LAN (2% datagram loss).
   Mid-run we partition one node away, trigger a protocol replacement
   while the partition is up, heal it, and finally crash another node.
   At the end every atomic broadcast property and the paper's generic
   DPU properties (§3) are checked mechanically over the full trace. *)

module MW = Dpu_core.Middleware
module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram

let () =
  let config = { MW.default_config with loss = 0.02; seed = 42 } in
  let mw = MW.create ~config ~n:5 () in
  let sim = Dpu_kernel.System.sim (MW.system mw) in
  let net = Dpu_kernel.System.net (MW.system mw) in
  let at t f = ignore (Sim.schedule sim ~delay:t f : Sim.handle) in

  Dpu_workload.Load_gen.start mw ~rate_per_s:30.0 ~until:6_000.0 ();

  at 1_500.0 (fun () ->
      print_endline "[1500 ms] partitioning node 4 away from the majority";
      Datagram.partition net [ [ 0; 1; 2; 3 ]; [ 4 ] ]);
  at 2_000.0 (fun () ->
      print_endline "[2000 ms] replacing the ABcast protocol during the partition";
      MW.change_protocol mw ~node:0 Dpu_core.Variants.ct);
  at 3_000.0 (fun () ->
      print_endline "[3000 ms] healing the partition (node 4 must catch up and switch)";
      Datagram.heal net);
  at 4_500.0 (fun () ->
      print_endline "[4500 ms] crashing node 2 for good";
      MW.crash mw 2);

  MW.run_until_quiescent ~limit:120_000.0 mw;

  let correct = Dpu_kernel.System.correct_nodes (MW.system mw) in
  Printf.printf "\ncorrect nodes at the end: {%s}\n"
    (String.concat ", " (List.map string_of_int correct));
  List.iter
    (fun node ->
      Printf.printf "node %d generation: %d\n" node
        (Dpu_core.Repl.generation (Dpu_kernel.System.stack (MW.system mw) node)))
    correct;

  let abcast_reports = Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct in
  let generic_reports =
    Dpu_props.Stack_props.check_generic
      (Dpu_kernel.System.trace (MW.system mw))
      ~protocols:[ "abcast.ct"; "repl.abcast" ]
      ~nodes:[ 0; 1; 2; 3; 4 ]
  in
  Format.printf "%a" Dpu_props.Report.pp_all (abcast_reports @ generic_reports);
  if Dpu_props.Report.all_ok (abcast_reports @ generic_reports) then
    print_endline "all properties held despite loss, partition and crash"
  else begin
    print_endline "PROPERTY VIOLATION";
    exit 1
  end
