(* Mechanised verification of the paper's algorithm — and a finding.

   Run with:  dune exec examples/verify.exe

   This example runs the bounded model checkers over Algorithm 1 and
   over the consensus replacement layer, telling the story in order:

   1. Algorithm 1 as printed verifies exhaustively at one protocol
      change — the mechanised version of the paper's §5.2.2 proofs.
   2. Deleting any checked line produces a minimal counterexample
      naming exactly the property that line protects.
   3. The finding: with two OVERLAPPING changeABcast requests, the
      as-printed algorithm violates uniform agreement. The proof's
      hidden assumption — a change of protocol sn travels through
      protocol sn — does not survive concurrency of changes.
   4. The repair (the symmetric generation check on line 10, which this
      repository's Repl implements) verifies at the same bounds. *)

module M = Dpu_model.Algo1
module C = Dpu_model.Consswap

let headline text =
  Printf.printf "\n--- %s ---\n" text

let run mutation bounds =
  Format.printf "%-52s %a@." (M.mutation_name mutation) M.pp_result
    (M.check ~mutation ~bounds ())

let () =
  headline "1. Algorithm 1, as printed, one protocol change: exhaustive";
  run M.Faithful M.default_bounds;
  run M.Faithful { M.default_bounds with crashes = 1 };
  run M.Faithful { M.default_bounds with nodes = 3; sends = 1 };

  headline "2. every checked line is load-bearing";
  run M.No_sn_check M.default_bounds;
  run M.No_reissue M.default_bounds;
  run M.No_undelivered_removal M.default_bounds;

  headline "3. the finding: overlapping changeABcast requests";
  run M.Faithful { M.default_bounds with sends = 1; changes = 2 };

  headline "4. the repair (line 10 checks sn = seqNumber, as our Repl does)";
  run M.Fixed_line10 { M.default_bounds with sends = 1; changes = 2 };

  headline "5. the consensus replacement layer (paper's future work)";
  Format.printf "%-52s %a@." (C.variant_name C.Sound) C.pp_result (C.check ());
  Format.printf "%-52s %a@."
    (C.variant_name C.No_prefix_defer)
    C.pp_result
    (C.check ~variant:C.No_prefix_defer ());

  print_newline ();
  print_endline
    "summary: the paper's properties hold exhaustively at these bounds for the\n\
     repaired algorithm; each deleted line, and each deleted rule of the\n\
     consensus-swap design, is refuted by a concrete counterexample trace."
