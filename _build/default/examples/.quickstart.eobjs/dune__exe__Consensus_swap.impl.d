examples/consensus_swap.ml: Dpu_core Dpu_engine Dpu_kernel Dpu_props Dpu_protocols Dpu_workload Format Printf
