examples/consensus_swap.mli:
