examples/quickstart.ml: Dpu_core Dpu_engine Dpu_kernel Format Printf
