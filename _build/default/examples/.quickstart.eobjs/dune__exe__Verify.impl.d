examples/verify.ml: Dpu_model Format Printf
