examples/membership.ml: Array Dpu_core Dpu_engine Dpu_kernel Dpu_protocols List Printf String
