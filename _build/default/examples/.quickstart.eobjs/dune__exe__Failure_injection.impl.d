examples/failure_injection.ml: Dpu_core Dpu_engine Dpu_kernel Dpu_net Dpu_props Dpu_workload Format List Printf String
