examples/membership.mli:
