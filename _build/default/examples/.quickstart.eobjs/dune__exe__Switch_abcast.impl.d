examples/switch_abcast.ml: Dpu_core Dpu_engine Dpu_kernel Dpu_props Dpu_workload Format Printf
