examples/verify.mli:
