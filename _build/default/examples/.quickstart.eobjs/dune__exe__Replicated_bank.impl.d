examples/replicated_bank.ml: Array Dpu_apps Dpu_core Dpu_engine Dpu_kernel Dpu_protocols List Printf String
