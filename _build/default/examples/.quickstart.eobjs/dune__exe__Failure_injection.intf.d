examples/failure_injection.mli:
