examples/replicated_bank.mli:
