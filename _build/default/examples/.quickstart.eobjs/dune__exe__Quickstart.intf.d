examples/quickstart.mli:
