examples/switch_abcast.mli:
