(* Quickstart: a three-node adaptive group-communication cluster.

   Run with:  dune exec examples/quickstart.exe

   Builds the Fig. 4 stack on three simulated machines, atomically
   broadcasts a few messages, replaces the atomic broadcast protocol on
   the fly (consensus-based -> fixed sequencer), and shows that the
   totally ordered stream continues seamlessly. *)

module MW = Dpu_core.Middleware
module Msg = Dpu_kernel.Msg

let () =
  let mw = MW.create ~n:3 () in

  (* Watch the totally ordered delivery stream on node 0. *)
  MW.subscribe mw ~node:0 (fun m ->
      Printf.printf "  [%7.2f ms] node 0 delivers %-4s from node %d: %s\n"
        (MW.now mw) (Msg.id_to_string m.Msg.id) m.Msg.id.Msg.origin m.Msg.body);

  (* Be told when the protocol switch completes locally. *)
  MW.on_protocol_change mw ~node:0 (fun ~generation ~protocol ->
      Printf.printf "  [%7.2f ms] node 0 switched to %s (generation %d)\n"
        (MW.now mw) protocol generation);

  print_endline "Broadcasting through the consensus-based protocol:";
  ignore (MW.broadcast mw ~node:0 "hello");
  ignore (MW.broadcast mw ~node:1 "group");
  ignore (MW.broadcast mw ~node:2 "communication");
  MW.run_for mw 500.0;

  print_endline "Replacing the ABcast protocol on the fly (no stop, no blocking):";
  MW.change_protocol mw ~node:1 Dpu_core.Variants.sequencer;
  ignore (MW.broadcast mw ~node:0 "still");
  ignore (MW.broadcast mw ~node:1 "totally");
  ignore (MW.broadcast mw ~node:2 "ordered");
  MW.run_until_quiescent ~limit:5_000.0 mw;

  let stats = Dpu_engine.Series.stats (MW.latency_series mw) in
  Format.printf "Average ABcast latency: %a@." Dpu_engine.Stats.pp stats
