(* A replicated non-stop service — the paper's §1 motivation — built on
   the middleware: a toy bank whose accounts are replicated on every
   node via totally ordered broadcast, kept consistent through TWO
   dynamic protocol updates (ABcast and consensus) and a crash.

   Run with:  dune exec examples/replicated_bank.exe

   The invariant to watch: transfers move money between accounts, so
   the total balance is conserved at every replica at every time —
   including while the protocols executing those transfers are being
   replaced underneath the application. *)

module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module KV = Dpu_apps.Replicated_kv
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let accounts = [ "alice"; "bob"; "carol" ]

let total replica =
  List.fold_left (fun acc name -> acc + KV.get_int replica name) 0 accounts

let () =
  let profile =
    {
      SB.default_profile with
      consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
    }
  in
  let config = { MW.default_config with profile; seed = 4 } in
  let n = 5 in
  let mw = MW.create ~config ~n () in
  let replicas = Array.init n (fun node -> KV.attach mw ~node) in

  (* Initial funding: 300 units in the system. *)
  List.iter (fun name -> KV.incr replicas.(0) name ~by:100) accounts;

  (* Random transfers from every node, two per simulated 100 ms. *)
  let clock = Dpu_kernel.System.clock (MW.system mw) in
  let rng = Dpu_engine.Rng.create ~seed:99 in
  for i = 0 to 59 do
    let node = Dpu_engine.Rng.int rng n in
    let src = List.nth accounts (Dpu_engine.Rng.int rng 3) in
    let dst = List.nth accounts (Dpu_engine.Rng.int rng 3) in
    let amount = 1 + Dpu_engine.Rng.int rng 9 in
    ignore
      (Clock.defer clock ~delay:(float_of_int i *. 50.0) (fun () ->
           (* A transfer is two ordered increments; both apply at every
              replica in the same order, so totals never drift. *)
           KV.incr replicas.(node) src ~by:(-amount);
           KV.incr replicas.(node) dst ~by:amount))
  done;

  let at t f = ignore (Clock.defer clock ~delay:t f) in
  at 800.0 (fun () ->
      Printf.printf "[ 800 ms] replacing ABcast: consensus-based -> token ring\n";
      MW.change_protocol mw ~node:1 Dpu_core.Variants.token);
  at 1_600.0 (fun () ->
      Printf.printf "[1600 ms] replacing consensus: CT -> Paxos (for future streams)\n";
      MW.change_consensus mw ~node:3 Dpu_protocols.Consensus_paxos.protocol_name);
  at 2_400.0 (fun () ->
      Printf.printf "[2400 ms] crashing replica 4\n";
      MW.crash mw 4);

  MW.run_until_quiescent ~limit:60_000.0 mw;

  print_newline ();
  for node = 0 to n - 2 do
    Printf.printf "replica %d: %s  (total %d, %d ops applied)\n" node
      (String.concat "  "
         (List.map
            (fun a -> Printf.sprintf "%s=%d" a (KV.get_int replicas.(node) a))
            accounts))
      (total replicas.(node))
      (KV.applied replicas.(node))
  done;

  let ok = ref true in
  let reference = KV.digest replicas.(0) in
  for node = 1 to n - 2 do
    if KV.digest replicas.(node) <> reference then ok := false
  done;
  for node = 0 to n - 2 do
    if total replicas.(node) <> 300 then ok := false
  done;
  if !ok then
    print_endline
      "\nmoney conserved and replicas identical across two protocol updates and a crash"
  else begin
    print_endline "\nINVARIANT VIOLATED";
    exit 1
  end
