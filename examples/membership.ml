(* Group membership running *on top of* the replaceable protocol.

   Run with:  dune exec examples/membership.exe

   The GM module of Fig. 4 orders its view changes through [r-abcast],
   the replacement module's indirection interface. This example shows
   the paper's layering claim in action: GM keeps installing consistent
   views while the atomic broadcast protocol underneath it is replaced,
   and GM's code neither knows nor cares.

   Timeline: leave, protocol switch, join, crash (the failure detector
   drives an exclusion) — views stay identical on every live node. *)

module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module Gm = Dpu_protocols.Gm
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let () =
  let profile = { SB.default_profile with with_gm = true } in
  let config = { MW.default_config with profile } in
  let mw = MW.create ~config ~n:4 () in

  let views = Array.make 4 [] in
  for node = 0 to 3 do
    MW.on_view mw ~node (fun v -> views.(node) <- v :: views.(node))
  done;
  MW.on_view mw ~node:0 (fun v ->
      Printf.printf "[%8.1f ms] node 0 installs view %d = {%s}\n" (MW.now mw)
        v.Gm.id
        (String.concat ", " (List.map string_of_int v.Gm.members)));

  let clock = Dpu_kernel.System.clock (MW.system mw) in
  let at t f = ignore (Clock.defer clock ~delay:t f) in

  at 500.0 (fun () ->
      print_endline "--- node 3 leaves the group ---";
      MW.leave mw ~node:3 3);
  at 1_500.0 (fun () ->
      print_endline "--- replacing the ABcast protocol under GM ---";
      MW.change_protocol mw ~node:1 Dpu_core.Variants.sequencer);
  at 2_500.0 (fun () ->
      print_endline "--- node 3 rejoins (through the NEW protocol) ---";
      MW.join mw ~node:0 3);
  at 3_500.0 (fun () ->
      print_endline "--- node 2 crashes; the failure detector will exclude it ---";
      MW.crash mw 2);

  MW.run_until_quiescent ~limit:20_000.0 mw;

  (* Every live node went through the identical view sequence. *)
  let seq node = List.rev_map (fun v -> (v.Gm.id, v.Gm.members)) views.(node) in
  let reference = seq 0 in
  List.iter
    (fun node ->
      if seq node <> reference then begin
        Printf.printf "node %d saw a different view sequence!\n" node;
        exit 1
      end)
    [ 1; 3 ];
  Printf.printf "\n%d views installed; nodes 0, 1 and 3 agree on all of them.\n"
    (List.length reference);
  match List.rev reference with
  | (_, final) :: _ when final = [ 0; 1; 3 ] ->
    print_endline "final view is {0, 1, 3}: leave, rejoin and crash-exclusion all applied."
  | (_, final) :: _ ->
    Printf.printf "unexpected final view {%s}\n"
      (String.concat ", " (List.map string_of_int final));
    exit 1
  | [] ->
    print_endline "no views installed";
    exit 1
