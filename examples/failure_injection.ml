(* Adversarial run: message loss, a partition and a crash around a
   dynamic protocol update, declared as a Dpu_faults schedule.

   Run with:  dune exec examples/failure_injection.exe

   A 5-node cluster runs under load on a lossy LAN (2% datagram loss).
   The fault schedule partitions one node away, a protocol replacement
   triggers while the partition is up, the partition heals, a loss
   window spikes drop rates, and finally one node crashes for good.
   At the end every atomic broadcast property and the paper's generic
   DPU properties (§3) are checked mechanically over the full trace. *)

module MW = Dpu_core.Middleware
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Datagram = Dpu_net.Datagram
module Schedule = Dpu_faults.Schedule

let () =
  let config = { MW.default_config with loss = 0.02; seed = 42 } in
  let mw = MW.create ~config ~n:5 () in
  let clock = Dpu_kernel.System.clock (MW.system mw) in
  let net = Dpu_kernel.System.net (MW.system mw) in

  Dpu_workload.Load_gen.start mw ~rate_per_s:30.0 ~until:6_000.0 ();

  (* The whole adverse scenario, declaratively. *)
  let schedule =
    [
      Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ];
      Schedule.heal ~at:3_000.0;
      Schedule.loss_window ~p:0.25 ~from_:3_200.0 ~until:3_800.0;
      Schedule.crash ~at:4_500.0 2;
    ]
  in
  (match Schedule.validate ~n:5 schedule with
  | Ok () -> ()
  | Error msg -> failwith msg);
  Format.printf "schedule: %a@." Schedule.pp schedule;
  Schedule.arm net schedule
    ~crash_node:(fun node -> MW.crash mw node)
    ~on_event:(fun time what -> Printf.printf "[%7.1f ms] %s\n" time what);

  (* The replacement fires while the partition is up: node 4 must catch
     up and switch after the heal. *)
  ignore
    (Clock.defer clock ~delay:2_000.0 (fun () ->
         print_endline "[ 2000.0 ms] replacing the ABcast protocol during the partition";
         MW.change_protocol mw ~node:0 Dpu_core.Variants.ct));

  MW.run_until_quiescent ~limit:120_000.0 mw;

  let correct = Dpu_kernel.System.correct_nodes (MW.system mw) in
  Printf.printf "\ncorrect nodes at the end: {%s}\n"
    (String.concat ", " (List.map string_of_int correct));
  List.iter
    (fun node ->
      Printf.printf "node %d generation: %d\n" node
        (Dpu_core.Repl.generation (Dpu_kernel.System.stack (MW.system mw) node)))
    correct;
  let c = Datagram.counters net in
  Printf.printf
    "net: %d sent, %d delivered, %d lost, %d filtered, %d blocked (crash %d, partition %d)\n"
    c.Datagram.sent c.Datagram.delivered c.Datagram.lost c.Datagram.filtered
    c.Datagram.blocked c.Datagram.blocked_crash c.Datagram.blocked_partition;

  let abcast_reports = Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct in
  let generic_reports =
    Dpu_props.Stack_props.check_generic
      (Dpu_kernel.System.trace (MW.system mw))
      ~protocols:[ "abcast.ct"; "repl.abcast" ]
      ~nodes:[ 0; 1; 2; 3; 4 ]
  in
  Format.printf "%a" Dpu_props.Report.pp_all (abcast_reports @ generic_reports);
  if Dpu_props.Report.all_ok (abcast_reports @ generic_reports) then
    print_endline "all properties held despite loss, partition and crash"
  else begin
    print_endline "PROPERTY VIOLATION";
    exit 1
  end
