(* Hot-swapping the CONSENSUS protocol under the running middleware —
   the paper's §7 future work, executed.

   Run with:  dune exec examples/consensus_swap.exe

   The stack runs consensus-based atomic broadcast. Mid-run we replace
   the consensus implementation underneath it: Chandra-Toueg (rotating
   coordinator, ◇S failure detector) is exchanged for Paxos (ballots,
   Ω leader) — while ABcast traffic keeps flowing and the ABcast module
   itself neither knows nor cares. The change request is threaded
   through a decided consensus instance, so every stack switches at the
   same point of the instance sequence. *)

module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module P = Dpu_protocols
module RC = Dpu_core.Repl_consensus
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock

let () =
  let profile =
    { SB.default_profile with consensus_layer = Some P.Consensus_ct.protocol_name }
  in
  let config = { MW.default_config with profile } in
  let mw = MW.create ~config ~n:5 () in

  let delivered = ref 0 in
  MW.subscribe mw ~node:0 (fun _ -> incr delivered);

  Dpu_workload.Load_gen.start mw ~rate_per_s:40.0 ~until:4_000.0 ();

  let clock = Dpu_kernel.System.clock (MW.system mw) in
  ignore
    (Clock.defer clock ~delay:2_000.0 (fun () ->
         Printf.printf "[2000 ms] requesting consensus replacement: CT -> Paxos\n";
         MW.change_consensus mw ~node:3 P.Consensus_paxos.protocol_name));

  MW.run_until_quiescent ~limit:30_000.0 mw;

  Printf.printf "\nnode 0 delivered %d totally ordered messages\n" !delivered;
  for node = 0 to 4 do
    let stack = Dpu_kernel.System.stack (MW.system mw) node in
    Printf.printf
      "node %d: consensus generation %d — CT decided %3d instances, Paxos decided %3d\n"
      node (RC.generation stack)
      (P.Consensus_ct.decided_count stack)
      (P.Consensus_paxos.decided_count stack)
  done;

  let reports =
    Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct:[ 0; 1; 2; 3; 4 ]
  in
  Format.printf "%a" Dpu_props.Report.pp_all reports;
  if Dpu_props.Report.all_ok reports then
    print_endline "atomic broadcast properties held across the consensus replacement"
  else exit 1
