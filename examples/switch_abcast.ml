(* Live protocol switching under load — the paper's core scenario.

   Run with:  dune exec examples/switch_abcast.exe

   A 5-node cluster under a steady 40 msg/s ABcast load walks through
   all three protocol implementations:

     consensus-based (CT)  ->  fixed sequencer  ->  token ring

   while the totally ordered stream keeps flowing. At the end we verify
   mechanically (with the trace checkers) that every atomic broadcast
   property held across both replacements, and we print the latency each
   protocol delivered — three genuinely different performance profiles,
   one service. *)

module MW = Dpu_core.Middleware
module Sim = Dpu_engine.Sim
module Clock = Dpu_runtime.Clock
module Stats = Dpu_engine.Stats
module Series = Dpu_engine.Series

let () =
  let mw = MW.create ~n:5 () in
  let switches = ref [] in
  MW.on_protocol_change mw ~node:0 (fun ~generation ~protocol ->
      switches := (MW.now mw, generation, protocol) :: !switches;
      Printf.printf "[%8.1f ms] switched to %s (generation %d)\n" (MW.now mw) protocol
        generation);

  (* 40 msg/s for 9 virtual seconds. *)
  Dpu_workload.Load_gen.start mw ~rate_per_s:40.0 ~until:9_000.0 ();

  let clock = Dpu_kernel.System.clock (MW.system mw) in
  ignore
    (Clock.defer clock ~delay:3_000.0 (fun () ->
         print_endline "--- requesting switch to the fixed-sequencer protocol ---";
         MW.change_protocol mw ~node:2 Dpu_core.Variants.sequencer));
  ignore
    (Clock.defer clock ~delay:6_000.0 (fun () ->
         print_endline "--- requesting switch to the token-ring protocol ---";
         MW.change_protocol mw ~node:4 Dpu_core.Variants.token));

  MW.run_until_quiescent ~limit:30_000.0 mw;

  (* Latency per protocol era. *)
  let series = MW.latency_series mw in
  let era name lo hi =
    let s = Series.stats_between series ~lo ~hi in
    Printf.printf "%-22s %5.0f..%5.0f ms: mean latency %6.2f ms over %d msgs\n" name lo
      hi (Stats.mean s) (Stats.count s)
  in
  print_newline ();
  era "consensus-based (CT)" 500.0 3_000.0;
  era "fixed sequencer" 3_200.0 6_000.0;
  era "token ring" 6_200.0 9_000.0;

  (* Mechanical §5.2.2 check: the ABcast properties held across both
     replacements. *)
  print_newline ();
  let reports =
    Dpu_props.Abcast_props.check_all (MW.collector mw) ~correct:[ 0; 1; 2; 3; 4 ]
  in
  Format.printf "%a" Dpu_props.Report.pp_all reports;
  if Dpu_props.Report.all_ok reports then
    print_endline "all atomic broadcast properties held across both switches"
  else exit 1
