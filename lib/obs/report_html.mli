(** Self-contained HTML rendering for `dpu_run report`.

    Four optional sections, each driven by one artifact kind:

    - a replacement timeline (table of "replacement gen=N" windows plus
      an SVG swimlane per trace pid) from a merged Chrome trace;
    - latency quantile tables (p50/p99/p999 via
      {!Metrics.quantile_of_buckets}) from an exported metrics snapshot,
      accepting both the scenario shape ("dpu.metrics/1") and the serve
      per-node nesting ([{"nodes": [...]}]);
    - a sharded-run section (per-shard quantile table plus a
      switch-window swimlane, one lane per shard) from a
      [dpu_run shard --json] export;
    - per-commit trend charts over a history of BENCH_results.json
      files, one small SVG line chart per numeric series.

    The output embeds all CSS/SVG inline — no scripts, no external
    fetches — so it can be archived as a single CI artifact. *)

val windows_of_events : Trace_event.t list -> (int * (float * float)) list
(** The replacement windows recoverable from a trace: generation with
    [(start_ms, end_ms)], sorted by generation. *)

val render :
  ?metrics:Json.t ->
  ?trace:Trace_event.t list ->
  ?shard:Json.t ->
  ?history:(string * Json.t) list ->
  title:string ->
  unit ->
  string
(** [history] entries are [(label, bench_json)] in chronological
    order (oldest first); labels become the x-axis endpoints. *)
