let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape field =
  if needs_quoting field then begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else field

let row_to_string row = String.concat "," (List.map escape row)

let render ~header rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (row_to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (row_to_string row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let to_file path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header rows))
