(** RFC 4180-style CSV rendering (fields containing commas, quotes or
    newlines are quoted, quotes doubled). *)

val escape : string -> string

val render : header:string list -> string list list -> string
(** Header line plus one line per row, each newline-terminated. *)

val to_file : string -> header:string list -> string list list -> unit
