(** Metrics registry: named counters, gauges and histograms with
    labels.

    Two usage styles, both cheap when observability is off:

    - {e instruments} ({!counter}, {!gauge}, {!histogram}) are created
      once at wiring time and mutated on the hot path; each mutation is
      guarded by a single boolean test, and instruments created against
      {!noop} are detached dummies;
    - {e callback registrations} ({!register_int}, {!register_float})
      read an existing subsystem counter only when a snapshot is taken
      — zero hot-path cost — and are ignored entirely on {!noop}.

    Labels (e.g. [("node", "3")]) distinguish series of the same name;
    an instrument is identified by its name plus its sorted label set,
    and re-creating an existing one returns the same cells. *)

type t

val create : ?enabled:bool -> unit -> t

val noop : t
(** The shared disabled registry. Instrument creation returns dummies,
    callback registration is a no-op, and {!set_enabled} is ignored —
    safe to use as a default everywhere. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** {1 Counters} *)

type counter

val counter : t -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val register_int : t -> ?labels:(string * string) list -> string -> (unit -> int) -> unit
(** Register a callback sampled at snapshot time, exported as a
    counter. Use for subsystems that already maintain plain [int]
    counters. *)

val register_float :
  t -> ?labels:(string * string) list -> string -> (unit -> float) -> unit
(** Same, exported as a gauge. *)

(** {1 Histograms} *)

type histogram

val default_bounds : float array
(** Upper bucket bounds in milliseconds, 0.25 .. 5000. *)

val histogram :
  t -> ?labels:(string * string) list -> ?bounds:float array -> string -> histogram

val observe : histogram -> float -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float option
(** Bucket-based quantile estimate (Prometheus [histogram_quantile]
    style): the bucket where the cumulative count crosses rank
    [q * count] is interpolated linearly, tightened by the observed
    min/max so the open +inf bucket never yields an infinite estimate.
    [None] on an empty histogram. Raises [Invalid_argument] unless
    [0 <= q <= 1]. *)

val quantile_of_buckets :
  bounds:float array ->
  counts:int array ->
  ?lo:float ->
  ?hi:float ->
  float ->
  float option
(** The same estimator over raw bucket data — e.g. buckets parsed back
    from an exported metrics snapshot. [counts] must have exactly one
    more entry than [bounds] (the final +inf bucket); [lo]/[hi] are the
    observed extremes when known. *)

(** {1 Snapshots}

    A {!snapshot} is a pure-data copy of every instrument — callbacks
    sampled, histograms deep-copied, no closures — so it survives
    [Marshal] across process boundaries. {!merge} folds a snapshot into
    another registry: counters (including sampled callbacks) add,
    gauges keep the maximum, histograms with identical bounds add
    bucket-wise. Merging is commutative for counters and histograms, so
    per-worker snapshots merged in any order produce the same totals. *)

type snapshot

val snapshot : t -> snapshot
(** Sample every instrument of [t] into detached pure data. *)

val merge : t -> snapshot -> unit
(** Fold a snapshot into [t], creating plain instruments for series [t]
    does not have yet. Series whose existing counterpart in [t] is a
    callback registration (they sample {e this} process) or has a
    mismatched kind are skipped. No-op on {!noop}. *)

val snapshot_value : snapshot -> ?labels:(string * string) list -> string -> float option
(** Like {!value}, over a snapshot. *)

val snapshot_sum : snapshot -> string -> float
(** Like {!sum}, over a snapshot. *)

(** {1 Snapshot and query} *)

val value : t -> ?labels:(string * string) list -> string -> float option
(** Current value of the instrument with this exact name and label set
    (histograms report their observation count). *)

val sum : t -> string -> float
(** Sum of all series with this name across label sets — e.g. a
    per-node counter totalled over the cluster. *)

val names : t -> string list
(** Sorted distinct metric names. *)

val to_json : t -> Json.t
(** Full snapshot: [{"schema":"dpu.metrics/1","metrics":[...]}], with
    callbacks sampled now. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per series, sorted by name: [name{labels} value]. *)
