type hist = {
  bounds : float array; (* ascending upper bounds; final bucket is +inf *)
  bucket_counts : int array; (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type value =
  | Counter of int ref
  | Gauge of float ref
  | Int_fn of (unit -> int)
  | Float_fn of (unit -> float)
  | Hist of hist

type instrument = {
  i_name : string;
  i_labels : (string * string) list; (* sorted by key *)
  i_value : value;
}

type t = {
  mutable enabled : bool;
  sink : bool;
  tbl : (string, instrument) Hashtbl.t;
  mutable rev_order : instrument list;
}

type counter = { c_reg : t; c_cell : int ref }

type gauge = { g_reg : t; g_cell : float ref }

type histogram = { h_reg : t; h_hist : hist }

let create ?(enabled = true) () =
  { enabled; sink = false; tbl = Hashtbl.create 64; rev_order = [] }

(* The shared disabled registry: creating instruments against it
   returns dummies and registers nothing, so the instrumented hot paths
   cost one boolean test. *)
let noop = { enabled = false; sink = true; tbl = Hashtbl.create 1; rev_order = [] }

let enabled t = t.enabled

let set_enabled t b = if not t.sink then t.enabled <- b

let sort_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  name ^ "{"
  ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
  ^ "}"

let register t ~name ~labels value =
  let labels = sort_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some i -> i
  | None ->
    let i = { i_name = name; i_labels = labels; i_value = value } in
    Hashtbl.replace t.tbl k i;
    t.rev_order <- i :: t.rev_order;
    i

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let counter t ?(labels = []) name =
  if t.sink then { c_reg = t; c_cell = ref 0 }
  else
    match (register t ~name ~labels (Counter (ref 0))).i_value with
    | Counter c -> { c_reg = t; c_cell = c }
    | _ ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %s is registered with another type" name)

let incr c = if c.c_reg.enabled then Stdlib.incr c.c_cell

let add c k = if c.c_reg.enabled then c.c_cell := !(c.c_cell) + k

let counter_value c = !(c.c_cell)

(* ------------------------------------------------------------------ *)
(* Gauges                                                             *)
(* ------------------------------------------------------------------ *)

let gauge t ?(labels = []) name =
  if t.sink then { g_reg = t; g_cell = ref 0.0 }
  else
    match (register t ~name ~labels (Gauge (ref 0.0))).i_value with
    | Gauge g -> { g_reg = t; g_cell = g }
    | _ ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %s is registered with another type" name)

let set g v = if g.g_reg.enabled then g.g_cell := v

let gauge_value g = !(g.g_cell)

let register_int t ?(labels = []) name fn =
  if not t.sink then ignore (register t ~name ~labels (Int_fn fn) : instrument)

let register_float t ?(labels = []) name fn =
  if not t.sink then ignore (register t ~name ~labels (Float_fn fn) : instrument)

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

let default_bounds =
  [| 0.25; 0.5; 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 5000.0 |]

let make_hist bounds =
  {
    bounds;
    bucket_counts = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let histogram t ?(labels = []) ?(bounds = default_bounds) name =
  if t.sink then { h_reg = t; h_hist = make_hist [||] }
  else
    match (register t ~name ~labels (Hist (make_hist bounds))).i_value with
    | Hist h -> { h_reg = t; h_hist = h }
    | _ ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s is registered with another type" name)

let observe hd x =
  if hd.h_reg.enabled then begin
    let h = hd.h_hist in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    if x < h.h_min then h.h_min <- x;
    if x > h.h_max then h.h_max <- x;
    let nb = Array.length h.bounds in
    let rec bucket i = if i >= nb || x <= h.bounds.(i) then i else bucket (i + 1) in
    let b = bucket 0 in
    h.bucket_counts.(b) <- h.bucket_counts.(b) + 1
  end

let histogram_count hd = hd.h_hist.h_count

let histogram_sum hd = hd.h_hist.h_sum

(* Bucket-based quantile estimation in the Prometheus
   histogram_quantile style: find the bucket where the cumulative count
   crosses rank [q * total] and interpolate linearly inside it. The
   observed extremes tighten the first bucket's lower edge and cap the
   open-ended +inf bucket, so p999 of a histogram whose tail sits in
   the last bounded bucket never reports an infinite value. *)
let quantile_of_buckets ~bounds ~counts ?lo:(observed_min = nan) ?hi:(observed_max = nan) q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.quantile_of_buckets: q outside [0, 1]";
  if Array.length counts <> Array.length bounds + 1 then
    invalid_arg "Metrics.quantile_of_buckets: counts must have one more entry than bounds";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then None
  else begin
    let rank = q *. float_of_int total in
    let nb = Array.length bounds in
    (* First bucket whose cumulative count reaches [rank]; [below] is
       the cumulative count strictly before it. *)
    let rec find i below =
      let cum = below + counts.(i) in
      if float_of_int cum >= rank || i >= nb then (i, below)
      else find (i + 1) cum
    in
    let i, below = find 0 0 in
    let lower =
      if i = 0 then
        if Float.is_nan observed_min then 0.0 else Float.min observed_min bounds.(0)
      else bounds.(i - 1)
    in
    if i >= nb then
      (* The open +inf bucket: no upper edge to interpolate towards —
         report the best finite estimate available. *)
      Some
        (if not (Float.is_nan observed_max) then observed_max
         else if nb > 0 then bounds.(nb - 1)
         else if not (Float.is_nan observed_min) then observed_min
         else 0.0)
    else begin
      let upper = bounds.(i) in
      let inside = float_of_int counts.(i) in
      let fraction = if inside <= 0.0 then 1.0 else (rank -. float_of_int below) /. inside in
      let v = lower +. ((upper -. lower) *. fraction) in
      let v = if Float.is_nan observed_max then v else Float.min v observed_max in
      let v = if Float.is_nan observed_min then v else Float.max v observed_min in
      Some v
    end
  end

let hist_quantile h q =
  if h.h_count = 0 then None
  else
    quantile_of_buckets ~bounds:h.bounds ~counts:h.bucket_counts ~lo:h.h_min
      ~hi:h.h_max q

let histogram_quantile hd q = hist_quantile hd.h_hist q

(* ------------------------------------------------------------------ *)
(* Snapshot / query                                                   *)
(* ------------------------------------------------------------------ *)

let instruments t = List.rev t.rev_order

let read_value = function
  | Counter c -> float_of_int !c
  | Gauge g -> !g
  | Int_fn f -> float_of_int (f ())
  | Float_fn f -> f ()
  | Hist h -> float_of_int h.h_count

let value t ?(labels = []) name =
  match Hashtbl.find_opt t.tbl (key name (sort_labels labels)) with
  | Some i -> Some (read_value i.i_value)
  | None -> None

let sum t name =
  List.fold_left
    (fun acc i -> if String.equal i.i_name name then acc +. read_value i.i_value else acc)
    0.0 (instruments t)

let names t =
  List.sort_uniq String.compare (List.map (fun i -> i.i_name) (instruments t))

let hist_json h =
  let mean = if h.h_count = 0 then Json.Null else Json.Float (h.h_sum /. float_of_int h.h_count) in
  let buckets =
    List.init
      (Array.length h.bucket_counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Float h.bounds.(i) else Json.Str "inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.bucket_counts.(i)) ])
  in
  [
    ("type", Json.Str "histogram");
    ("count", Json.Int h.h_count);
    ("sum", Json.Float h.h_sum);
    ("min", if h.h_count = 0 then Json.Null else Json.Float h.h_min);
    ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
    ("mean", mean);
    ("buckets", Json.List buckets);
  ]

let value_json = function
  | Counter c -> [ ("type", Json.Str "counter"); ("value", Json.Int !c) ]
  | Int_fn f -> [ ("type", Json.Str "counter"); ("value", Json.Int (f ())) ]
  | Gauge g -> [ ("type", Json.Str "gauge"); ("value", Json.Float !g) ]
  | Float_fn f -> [ ("type", Json.Str "gauge"); ("value", Json.Float (f ())) ]
  | Hist h -> hist_json h

let instrument_json i =
  Json.Obj
    (("name", Json.Str i.i_name)
    :: ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) i.i_labels))
    :: value_json i.i_value)

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "dpu.metrics/1");
      ("enabled", Json.Bool t.enabled);
      ("metrics", Json.List (List.map instrument_json (instruments t)));
    ]

(* ------------------------------------------------------------------ *)
(* Snapshots: pure-data copies that survive Marshal                   *)
(* ------------------------------------------------------------------ *)

type sample_value =
  | S_counter of int
  | S_gauge of float
  | S_hist of hist

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : sample_value;
}

type snapshot = sample list

let copy_hist h =
  {
    bounds = Array.copy h.bounds;
    bucket_counts = Array.copy h.bucket_counts;
    h_count = h.h_count;
    h_sum = h.h_sum;
    h_min = h.h_min;
    h_max = h.h_max;
  }

let snapshot t =
  List.map
    (fun i ->
      let v =
        match i.i_value with
        | Counter c -> S_counter !c
        | Int_fn f -> S_counter (f ())
        | Gauge g -> S_gauge !g
        | Float_fn f -> S_gauge (f ())
        | Hist h -> S_hist (copy_hist h)
      in
      { s_name = i.i_name; s_labels = i.i_labels; s_value = v })
    (instruments t)

let merge_hist_into dst src =
  if Array.length dst.bounds = Array.length src.bounds then begin
    Array.iteri
      (fun i c -> dst.bucket_counts.(i) <- dst.bucket_counts.(i) + c)
      src.bucket_counts;
    dst.h_count <- dst.h_count + src.h_count;
    dst.h_sum <- dst.h_sum +. src.h_sum;
    if src.h_min < dst.h_min then dst.h_min <- src.h_min;
    if src.h_max > dst.h_max then dst.h_max <- src.h_max
  end

let merge t snap =
  if not t.sink then
    List.iter
      (fun s ->
        match Hashtbl.find_opt t.tbl (key s.s_name s.s_labels) with
        | None ->
          let value =
            match s.s_value with
            | S_counter v -> Counter (ref v)
            | S_gauge v -> Gauge (ref v)
            | S_hist h -> Hist (copy_hist h)
          in
          ignore (register t ~name:s.s_name ~labels:s.s_labels value : instrument)
        | Some i -> (
          match (i.i_value, s.s_value) with
          | Counter c, S_counter v -> c := !c + v
          | Gauge g, S_gauge v -> if v > !g then g := v
          | Hist dst, S_hist src -> merge_hist_into dst src
          (* Callback registrations sample this process and cannot
             absorb foreign values; mismatched kinds are skipped. *)
          | (Counter _ | Gauge _ | Int_fn _ | Float_fn _ | Hist _), _ -> ()))
      snap

let snapshot_value snap ?(labels = []) name =
  let labels = sort_labels labels in
  List.find_map
    (fun s ->
      if String.equal s.s_name name && s.s_labels = labels then
        Some
          (match s.s_value with
          | S_counter v -> float_of_int v
          | S_gauge v -> v
          | S_hist h -> float_of_int h.h_count)
      else None)
    snap

let snapshot_sum snap name =
  List.fold_left
    (fun acc s ->
      if String.equal s.s_name name then
        acc
        +.
        match s.s_value with
        | S_counter v -> float_of_int v
        | S_gauge v -> v
        | S_hist h -> float_of_int h.h_count
      else acc)
    0.0 snap

let pp_summary ppf t =
  let sorted =
    List.sort
      (fun a b ->
        let label_compare (k1, v1) (k2, v2) =
          match String.compare k1 k2 with 0 -> String.compare v1 v2 | c -> c
        in
        match String.compare a.i_name b.i_name with
        | 0 -> List.compare label_compare a.i_labels b.i_labels
        | c -> c)
      (instruments t)
  in
  List.iter
    (fun i ->
      let labels =
        match i.i_labels with
        | [] -> ""
        | l ->
          "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) ^ "}"
      in
      match i.i_value with
      | Hist h ->
        if h.h_count = 0 then
          Format.fprintf ppf "%s%s count=0@." i.i_name labels
        else
          let q p = Option.value ~default:Float.nan (hist_quantile h p) in
          Format.fprintf ppf
            "%s%s count=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p99=%.3f p999=%.3f@."
            i.i_name labels h.h_count
            (h.h_sum /. float_of_int h.h_count)
            h.h_min h.h_max (q 0.5) (q 0.99) (q 0.999)
      | v -> Format.fprintf ppf "%s%s %g@." i.i_name labels (read_value v))
    sorted
