type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  threshold : int;
  clock : unit -> float;
  emit : (string -> unit) option; (* [None]: the frozen noop logger *)
}

let noop = { threshold = max_int; clock = (fun () -> 0.0); emit = None }

let create ?(level = Info) ~clock ~emit () =
  { threshold = rank level; clock; emit = Some emit }

let enabled t lvl =
  match t.emit with None -> false | Some _ -> rank lvl >= t.threshold

(* One JSON object per line, fields in a fixed order (t, level, msg,
   then caller fields in the order given): on the simulator clock the
   emitted bytes are a pure function of the run, so two identical runs
   produce identical JSONL files. *)
let line t lvl ~fields msg =
  Json.to_string
    (Json.Obj
       (("t", Json.Float (t.clock ()))
       :: ("level", Json.Str (level_name lvl))
       :: ("msg", Json.Str msg)
       :: fields))

let log t lvl ?(fields = []) msg =
  match t.emit with
  | Some emit when rank lvl >= t.threshold -> emit (line t lvl ~fields msg)
  | Some _ | None -> ()

let debug t ?fields msg = log t Debug ?fields msg

let info t ?fields msg = log t Info ?fields msg

let warn t ?fields msg = log t Warn ?fields msg

let error t ?fields msg = log t Error ?fields msg

let to_buffer ?level ~clock buf =
  create ?level ~clock
    ~emit:(fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    ()

let to_file ?level ~clock path =
  let oc = open_out path in
  let t =
    create ?level ~clock
      ~emit:(fun l ->
        output_string oc l;
        output_char oc '\n')
      ()
  in
  (t, fun () -> close_out oc)

(* ------------------------------------------------------------------ *)
(* Parsing — CI and tests validate emitted JSONL files.               *)
(* ------------------------------------------------------------------ *)

type entry = { e_time : float; e_level : level; e_msg : string; e_fields : Json.t }

let entry_of_line s =
  match Json.of_string s with
  | Stdlib.Error e -> Stdlib.Error e
  | Ok j -> (
    let time = Option.bind (Json.member j "t") Json.to_float_opt in
    let lvl =
      Option.bind (Option.bind (Json.member j "level") Json.to_string_opt)
        level_of_string
    in
    let msg = Option.bind (Json.member j "msg") Json.to_string_opt in
    match (time, lvl, msg) with
    | Some e_time, Some e_level, Some e_msg ->
      Ok { e_time; e_level; e_msg; e_fields = j }
    | _ -> Stdlib.Error "log entry: missing t/level/msg")

let entries_of_string s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
      if String.trim l = "" then go acc rest
      else (
        match entry_of_line l with
        | Ok e -> go (e :: acc) rest
        | Stdlib.Error e -> Stdlib.Error e)
  in
  go [] (String.split_on_char '\n' s)
