(** Chrome trace-event JSON (the format Perfetto and chrome://tracing
    load).

    Timestamps are microseconds; the constructors below take virtual
    milliseconds and convert. [pid] and [tid] map to the two grouping
    levels of the trace viewer — here pid = simulated node (plus one
    synthetic "timeline" process) and tid = a per-node lane. *)

type args = (string * Json.t) list

type t =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts_us : float;
      dur_us : float;
      args : args;
    }  (** a span: ph "X" *)
  | Instant of { name : string; cat : string; pid : int; tid : int; ts_us : float; args : args }
      (** a point event: ph "i" *)
  | Process_name of { pid : int; name : string }  (** metadata: ph "M" *)
  | Thread_name of { pid : int; tid : int; name : string }

val us_of_ms : float -> float

val complete :
  name:string ->
  cat:string ->
  pid:int ->
  tid:int ->
  ts_ms:float ->
  dur_ms:float ->
  ?args:args ->
  unit ->
  t
(** A span; negative durations are clamped to 0. *)

val instant : name:string -> cat:string -> pid:int -> tid:int -> ts_ms:float -> ?args:args -> unit -> t

val process_name : pid:int -> string -> t

val thread_name : pid:int -> tid:int -> string -> t

val to_json : t list -> Json.t
(** The standard envelope:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val event_json : t -> Json.t
(** One event as its trace-format JSON object. *)

val of_json : Json.t -> (t, string) result
(** Parse one event back; inverse of {!event_json} for the four phases
    this module emits ("X", "i", and the two "M" metadata kinds). *)

val events_of_json : Json.t -> (t list, string) result
(** Parse either the {!to_json} envelope or a bare event list. Used to
    merge trace buffers shipped in live node reports and to re-read
    exported artifacts. *)
