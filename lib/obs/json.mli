(** A minimal dependency-free JSON representation.

    The exporters in this library (metrics snapshots, Chrome trace
    events, bench artifacts) emit through this type; the parser exists
    so that tests and CI can validate the emitted artifacts without an
    external JSON package. Non-finite floats serialise as [null] — an
    emitted document is always syntactically valid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation. *)

val pp : Format.formatter -> t -> unit

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a file. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. [Error] carries a message with the
    byte offset of the failure. *)

(** {1 Accessors} *)

val member : t -> string -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list_opt : t -> t list option

val to_string_opt : t -> string option

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** [Int] and [Float] both succeed. *)
