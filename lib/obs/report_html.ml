module TE = Trace_event

(* ------------------------------------------------------------------ *)
(* Small HTML/SVG helpers                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Compact numeric rendering: integers stay integers, everything else
   keeps three decimals with trailing zeros trimmed. *)
let num v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.3f" v in
    let rec trim i = if i > 0 && s.[i] = '0' then trim (i - 1) else i in
    let i = trim (String.length s - 1) in
    let i = if s.[i] = '.' then i - 1 else i in
    String.sub s 0 (i + 1)
  end

let categorical =
  (* cat / series palette, colour-blind-safe. *)
  [| "#4269d0"; "#efb118"; "#ff725c"; "#6cc5b0"; "#3ca951"; "#a463f2"; "#97bbf5"; "#9c6b4e" |]

let color_of_cat = function
  | "dpu" -> "#4269d0"
  | "nemesis" -> "#ff725c"
  | "fault" -> "#efb118"
  | "node" -> "#6cc5b0"
  | "kernel" -> "#a463f2"
  | _ -> "#9ea3ad"

(* ------------------------------------------------------------------ *)
(* Timeline section (merged Chrome trace)                             *)
(* ------------------------------------------------------------------ *)

type row_event =
  | Span of { name : string; cat : string; t0 : float; t1 : float }
  | Mark of { name : string; cat : string; at : float }

let timeline_cats = [ "dpu"; "nemesis"; "fault"; "node"; "kernel" ]

let windows_of_events events =
  (* "replacement gen=N" complete spans, wherever they live. *)
  List.filter_map
    (function
      | TE.Complete { name; cat = "dpu"; ts_us; dur_us; _ } -> (
        match Scanf.sscanf_opt name "replacement gen=%d" Fun.id with
        | Some generation ->
          Some (generation, (ts_us /. 1000.0, (ts_us +. dur_us) /. 1000.0))
        | None -> None)
      | _ -> None)
    events
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let rows_of_events events =
  let names : (int, string) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (function
      | TE.Process_name { pid; name } -> Hashtbl.replace names pid name
      | _ -> ())
    events;
  let rows : (int, row_event list ref) Hashtbl.t = Hashtbl.create 8 in
  let push pid e =
    match Hashtbl.find_opt rows pid with
    | Some r -> r := e :: !r
    | None -> Hashtbl.replace rows pid (ref [ e ])
  in
  List.iter
    (function
      | TE.Complete { name; cat; pid; ts_us; dur_us; _ }
        when List.mem cat timeline_cats ->
        push pid (Span { name; cat; t0 = ts_us /. 1000.0; t1 = (ts_us +. dur_us) /. 1000.0 })
      | TE.Instant { name; cat; pid; ts_us; _ } when List.mem cat timeline_cats ->
        push pid (Mark { name; cat; at = ts_us /. 1000.0 })
      | _ -> ())
    events;
  (* dpu-lint: allow hashtbl-iter — folded rows are sorted by pid below *)
  Hashtbl.fold
    (fun pid r acc ->
      let label =
        match Hashtbl.find_opt names pid with
        | Some n -> n
        | None -> Printf.sprintf "pid %d" pid
      in
      (pid, label, List.rev !r) :: acc)
    rows []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let timeline_svg rows =
  let all =
    List.concat_map
      (fun (_, _, es) ->
        List.concat_map
          (function Span { t0; t1; _ } -> [ t0; t1 ] | Mark { at; _ } -> [ at ])
          es)
      rows
  in
  match all with
  | [] -> "<p class=\"empty\">no timeline events in the trace</p>"
  | _ ->
    let tmin = List.fold_left Float.min infinity all in
    let tmax = List.fold_left Float.max neg_infinity all in
    let span = Float.max (tmax -. tmin) 1e-6 in
    let left = 150.0 and width = 760.0 and row_h = 26.0 in
    let x t = left +. ((t -. tmin) /. span *. width) in
    let height = (row_h *. float_of_int (List.length rows)) +. 40.0 in
    let buf = Buffer.create 4096 in
    Printf.bprintf buf
      "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" class=\"timeline\">\n"
      (left +. width +. 20.0) height;
    (* time axis: five labelled gridlines *)
    for i = 0 to 4 do
      let t = tmin +. (span *. float_of_int i /. 4.0) in
      Printf.bprintf buf
        "<line x1=\"%.1f\" y1=\"18\" x2=\"%.1f\" y2=\"%.1f\" class=\"grid\"/>\n\
         <text x=\"%.1f\" y=\"12\" class=\"axis\" text-anchor=\"middle\">%s ms</text>\n"
        (x t) (x t) (height -. 10.0) (x t) (num t)
    done;
    List.iteri
      (fun i (_, label, es) ->
        let y = 24.0 +. (row_h *. float_of_int i) in
        Printf.bprintf buf
          "<text x=\"%.1f\" y=\"%.1f\" class=\"rowlabel\" text-anchor=\"end\">%s</text>\n"
          (left -. 8.0) (y +. 14.0) (escape label);
        List.iter
          (function
            | Span { name; cat; t0; t1 } ->
              let x0 = x t0 and x1 = x t1 in
              Printf.bprintf buf
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"14\" rx=\"2\" \
                 fill=\"%s\" fill-opacity=\"0.75\"><title>%s: %s..%s ms (%s ms)</title></rect>\n"
                x0 (y +. 4.0)
                (Float.max (x1 -. x0) 1.5)
                (color_of_cat cat) (escape name) (num t0) (num t1) (num (t1 -. t0))
            | Mark { name; cat; at } ->
              Printf.bprintf buf
                "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3.5\" fill=\"%s\">\
                 <title>%s @ %s ms</title></circle>\n"
                (x at) (y +. 11.0) (color_of_cat cat) (escape name) (num at))
          es)
      rows;
    Buffer.add_string buf "</svg>\n";
    (* legend *)
    Buffer.add_string buf "<p class=\"legend\">";
    List.iter
      (fun cat ->
        Printf.bprintf buf
          "<span><span class=\"swatch\" style=\"background:%s\"></span>%s</span> "
          (color_of_cat cat) cat)
      timeline_cats;
    Buffer.add_string buf "</p>\n";
    Buffer.contents buf

let timeline_section events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<h2>Replacement timeline</h2>\n";
  (match windows_of_events events with
  | [] -> Buffer.add_string buf "<p class=\"empty\">no replacement window in the trace</p>\n"
  | windows ->
    Buffer.add_string buf
      "<table><tr><th>generation</th><th>start [ms]</th><th>end [ms]</th><th>window [ms]</th></tr>\n";
    List.iter
      (fun (generation, (lo, hi)) ->
        Printf.bprintf buf "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
          generation (num lo) (num hi)
          (num (hi -. lo)))
      windows;
    Buffer.add_string buf "</table>\n");
  let messages =
    List.length
      (List.filter
         (function TE.Complete { cat = "abcast"; _ } -> true | _ -> false)
         events)
  in
  Buffer.add_string buf (timeline_svg (rows_of_events events));
  Printf.bprintf buf
    "<p class=\"note\">%d trace events in total, %d per-message abcast spans \
     (omitted above; load the trace JSON in Perfetto for the full picture).</p>\n"
    (List.length events) messages;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics section (latency quantile tables from histogram buckets)   *)
(* ------------------------------------------------------------------ *)

type parsed_hist = {
  ph_name : string;
  ph_labels : string;
  ph_count : int;
  ph_mean : float;
  ph_min : float;
  ph_max : float;
  ph_bounds : float array;
  ph_counts : int array;
}

type parsed_scalar = { ps_name : string; ps_labels : string; ps_value : float }

let labels_string j =
  match Json.member j "labels" with
  | Some (Json.Obj []) | None -> ""
  | Some (Json.Obj fields) ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             k ^ "=" ^ match Json.to_string_opt v with Some s -> s | None -> "?")
           fields)
    ^ "}"
  | Some _ -> ""

let parse_instrument ~extra j =
  let name =
    Option.value ~default:"?" (Option.bind (Json.member j "name") Json.to_string_opt)
  in
  let labels = extra ^ labels_string j in
  match Option.bind (Json.member j "type") Json.to_string_opt with
  | Some "histogram" -> (
    let f field = Option.bind (Json.member j field) Json.to_float_opt in
    match Option.bind (Json.member j "buckets") Json.to_list_opt with
    | None -> None
    | Some buckets ->
      let parsed =
        List.filter_map
          (fun b ->
            match Option.bind (Json.member b "count") Json.to_int_opt with
            | None -> None
            | Some count ->
              let le = Option.bind (Json.member b "le") Json.to_float_opt in
              Some (le, count))
          buckets
      in
      let bounds = Array.of_list (List.filter_map fst parsed) in
      let counts = Array.of_list (List.map snd parsed) in
      if Array.length counts <> Array.length bounds + 1 then None
      else
        Some
          (Either.Left
             {
               ph_name = name;
               ph_labels = labels;
               ph_count =
                 Option.value ~default:0
                   (Option.bind (Json.member j "count") Json.to_int_opt);
               ph_mean = Option.value ~default:Float.nan (f "mean");
               ph_min = Option.value ~default:Float.nan (f "min");
               ph_max = Option.value ~default:Float.nan (f "max");
               ph_bounds = bounds;
               ph_counts = counts;
             }))
  | Some ("counter" | "gauge") ->
    Option.map
      (fun v -> Either.Right { ps_name = name; ps_labels = labels; ps_value = v })
      (Option.bind (Json.member j "value") Json.to_float_opt)
  | Some _ | None -> None

(* Accept both exported metrics shapes: the scenario snapshot
   ({"schema":"dpu.metrics/1","metrics":[...]}) and the serve per-node
   nesting ({"nodes":[{"node":i,"metrics":<snapshot>}, ...]}). *)
let parse_metrics j =
  let of_snapshot ~extra j =
    match Option.bind (Json.member j "metrics") Json.to_list_opt with
    | None -> []
    | Some instruments -> List.filter_map (parse_instrument ~extra) instruments
  in
  match Option.bind (Json.member j "nodes") Json.to_list_opt with
  | Some nodes ->
    List.concat_map
      (fun entry ->
        let extra =
          match Option.bind (Json.member entry "node") Json.to_int_opt with
          | Some node -> Printf.sprintf "[node %d]" node
          | None -> ""
        in
        match Json.member entry "metrics" with
        | Some snapshot -> of_snapshot ~extra snapshot
        | None -> [])
      nodes
  | None -> of_snapshot ~extra:"" j

let metrics_section j =
  let hists, scalars = List.partition_map Fun.id (parse_metrics j) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<h2>Latency quantiles</h2>\n";
  (match hists with
  | [] -> Buffer.add_string buf "<p class=\"empty\">no histograms in the metrics snapshot</p>\n"
  | hists ->
    Buffer.add_string buf
      "<table><tr><th>histogram</th><th>count</th><th>mean</th><th>min</th>\
       <th>max</th><th>p50</th><th>p99</th><th>p999</th></tr>\n";
    List.iter
      (fun h ->
        let q p =
          match
            Metrics.quantile_of_buckets ~bounds:h.ph_bounds ~counts:h.ph_counts
              ~lo:h.ph_min ~hi:h.ph_max p
          with
          | Some v -> num v
          | None -> "-"
        in
        Printf.bprintf buf
          "<tr><td>%s%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td>\
           <td>%s</td><td>%s</td><td>%s</td></tr>\n"
          (escape h.ph_name) (escape h.ph_labels) h.ph_count (num h.ph_mean)
          (num h.ph_min) (num h.ph_max) (q 0.5) (q 0.99) (q 0.999))
      hists;
    Buffer.add_string buf "</table>\n");
  (match scalars with
  | [] -> ()
  | scalars ->
    Printf.bprintf buf
      "<details><summary>%d counters and gauges</summary><table>\
       <tr><th>series</th><th>value</th></tr>\n"
      (List.length scalars);
    List.iter
      (fun s ->
        Printf.bprintf buf "<tr><td>%s%s</td><td>%s</td></tr>\n" (escape s.ps_name)
          (escape s.ps_labels) (num s.ps_value))
      scalars;
    Buffer.add_string buf "</table></details>\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Trend section (history of BENCH_results.json files)                *)
(* ------------------------------------------------------------------ *)

let mean = function
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))

(* The numeric series worth tracking per bench file: every numeric
   scalar directly under each results section (fig5, headline, ...),
   plus aggregates over the fig6 point grid and the per-approach
   comparison rows, plus the total wall clock. *)
let series_of_bench j =
  let results =
    match Json.member j "results" with Some (Json.Obj sections) -> sections | _ -> []
  in
  let scalars =
    List.concat_map
      (fun (section, body) ->
        match body with
        | Json.Obj fields ->
          List.filter_map
            (fun (k, v) ->
              match Json.to_float_opt v with
              | Some f -> Some (section ^ "." ^ k, f)
              | None -> None)
            fields
        | _ -> [])
      results
  in
  let fig6 =
    match
      Option.bind
        (Option.bind (List.assoc_opt "fig6" results) (fun s -> Json.member s "points"))
        Json.to_list_opt
    with
    | None -> []
    | Some points ->
      List.filter_map
        (fun key ->
          List.filter_map
            (fun p -> Option.bind (Json.member p key) Json.to_float_opt)
            points
          |> mean
          |> Option.map (fun v -> ("fig6.mean_" ^ key, v)))
        [ "no_layer_ms"; "with_layer_ms"; "during_ms" ]
  in
  let compare_rows =
    match
      Option.bind
        (Option.bind (List.assoc_opt "compare" results) (fun s ->
             Json.member s "approaches"))
        Json.to_list_opt
    with
    | None -> []
    | Some rows ->
      List.concat_map
        (fun row ->
          match Option.bind (Json.member row "approach") Json.to_string_opt with
          | None -> []
          | Some approach ->
            List.filter_map
              (fun key ->
                Option.map
                  (fun v -> (Printf.sprintf "compare.%s.%s" approach key, v))
                  (Option.bind (Json.member row key) Json.to_float_opt))
              [ "normal_ms"; "during_switch_ms"; "switch_duration_ms"; "blocked_ms" ])
        rows
  in
  let wall =
    match Option.bind (Json.member j "wall_clock_s") Json.to_float_opt with
    | Some v -> [ ("bench.wall_clock_s", v) ]
    | None -> []
  in
  scalars @ fig6 @ compare_rows @ wall

let trend_chart ~key ~labels points =
  (* [points]: one [float option] per history entry, entry order. *)
  let w = 270.0 and h = 72.0 and pad = 6.0 in
  let present = List.filter_map Fun.id points in
  match present with
  | [] -> ""
  | _ ->
    let vmin = List.fold_left Float.min infinity present in
    let vmax = List.fold_left Float.max neg_infinity present in
    let spread = if vmax -. vmin < 1e-9 then 1.0 else vmax -. vmin in
    let n = List.length points in
    let x i = pad +. (float_of_int i /. float_of_int (max 1 (n - 1)) *. (w -. (2.0 *. pad))) in
    let y v = h -. pad -. ((v -. vmin) /. spread *. (h -. (2.0 *. pad))) in
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "<div class=\"trend\"><div class=\"trend-title\">%s</div>\n"
      (escape key);
    Printf.bprintf buf "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\">\n" w h;
    let coords =
      List.mapi (fun i v -> Option.map (fun v -> (x i, y v)) v) points
      |> List.filter_map Fun.id
    in
    (match coords with
    | [ (cx, cy) ] ->
      Printf.bprintf buf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n" cx cy
        categorical.(0)
    | coords ->
      Printf.bprintf buf "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\""
        categorical.(0);
      List.iter (fun (cx, cy) -> Printf.bprintf buf "%.1f,%.1f " cx cy) coords;
      Buffer.add_string buf "\"/>\n";
      List.iter
        (fun (cx, cy) ->
          Printf.bprintf buf "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.2\" fill=\"%s\"/>\n"
            cx cy categorical.(0))
        coords);
    Buffer.add_string buf "</svg>\n";
    let last = List.fold_left (fun acc v -> match v with Some v -> Some v | None -> acc) None points in
    let first_label = match labels with l :: _ -> l | [] -> "" in
    let last_label = List.fold_left (fun _ l -> l) first_label labels in
    Printf.bprintf buf
      "<div class=\"trend-foot\"><span>%s → %s</span><span>last %s \
       <small>(min %s, max %s)</small></span></div></div>\n"
      (escape first_label) (escape last_label)
      (match last with Some v -> num v | None -> "-")
      (num vmin) (num vmax);
    Buffer.contents buf

let trend_section history =
  let labels = List.map fst history in
  let per_entry = List.map (fun (_, j) -> series_of_bench j) history in
  (* Union of keys, in first-seen order. *)
  let keys =
    List.fold_left
      (fun acc series ->
        List.fold_left
          (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
          acc series)
      [] per_entry
  in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "<h2>Perf trends (%d bench entries)</h2>\n" (List.length history);
  if keys = [] then
    Buffer.add_string buf "<p class=\"empty\">no numeric series found in the history</p>\n"
  else begin
    Buffer.add_string buf "<div class=\"trends\">\n";
    List.iter
      (fun key ->
        let points = List.map (fun series -> List.assoc_opt key series) per_entry in
        Buffer.add_string buf (trend_chart ~key ~labels points))
      keys;
    Buffer.add_string buf "</div>\n"
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Shard section (a sharded-run JSON from `dpu_run shard --json`)     *)
(* ------------------------------------------------------------------ *)

let shard_field j name = Option.bind (Json.member j name) Json.to_float_opt

let shard_num j name = match shard_field j name with Some v -> num v | None -> "-"

(* One swimlane per shard, its generation-1 switch window as a bar:
   vertically overlapping bars ARE the headline — that many Algorithm 1
   runs were in flight at the same instant. *)
let shard_swimlane shards =
  let windows =
    List.filter_map
      (fun s ->
        match
          ( shard_field s "shard",
            shard_field s "window_start_ms",
            shard_field s "window_end_ms" )
        with
        | Some id, Some lo, Some hi -> Some (int_of_float id, lo, hi)
        | _ -> None)
      shards
  in
  match windows with
  | [] -> "<p class=\"empty\">no switch windows (run without --rolling)</p>\n"
  | _ ->
    let tmin = List.fold_left (fun a (_, lo, _) -> Float.min a lo) infinity windows in
    let tmax = List.fold_left (fun a (_, _, hi) -> Float.max a hi) neg_infinity windows in
    let span = Float.max (tmax -. tmin) 1e-6 in
    let left = 150.0 and width = 760.0 and row_h = 22.0 in
    let x t = left +. ((t -. tmin) /. span *. width) in
    let height = (row_h *. float_of_int (List.length windows)) +. 40.0 in
    let buf = Buffer.create 4096 in
    Printf.bprintf buf
      "<svg class=\"timeline\" viewBox=\"0 0 %.0f %.0f\" height=\"%.0f\">\n"
      (left +. width +. 20.0) height height;
    List.iteri
      (fun i (shard, lo, hi) ->
        let y = 20.0 +. (row_h *. float_of_int i) in
        Printf.bprintf buf
          "<text class=\"rowlabel\" x=\"4\" y=\"%.1f\">shard %d</text>\n"
          (y +. 13.0) shard;
        Printf.bprintf buf
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"2\" \
           fill=\"%s\"><title>shard %d: %.2f..%.2f ms (%.2f ms)</title></rect>\n"
          (x lo) (y +. 3.0)
          (Float.max (x hi -. x lo) 2.0)
          (row_h -. 6.0)
          categorical.(i mod Array.length categorical)
          shard lo hi (hi -. lo))
      windows;
    Printf.bprintf buf
      "<text class=\"axis\" x=\"%.1f\" y=\"%.1f\">%.2f ms</text>\n\
       <text class=\"axis\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%.2f ms</text>\n"
      left (height -. 6.0) tmin (left +. width) (height -. 6.0) tmax;
    Buffer.add_string buf "</svg>\n";
    Buffer.contents buf

let shard_section j =
  let buf = Buffer.create 8192 in
  let shards =
    match Option.bind (Json.member j "shards") Json.to_list_opt with
    | Some l -> l
    | None -> []
  in
  Printf.bprintf buf "<h2>Sharded run (%d shards)</h2>\n" (List.length shards);
  (match Json.member j "all_ok" with
  | Some (Json.Bool true) ->
    Buffer.add_string buf
      "<p class=\"note\">all shards: properties hold, nothing undelivered, \
       nothing blocked</p>\n"
  | Some (Json.Bool false) ->
    Buffer.add_string buf "<p><strong>VIOLATIONS — see the table</strong></p>\n"
  | _ -> ());
  Buffer.add_string buf
    "<table><tr><th>shard</th><th>nodes</th><th>sent</th><th>delivered</th>\
     <th>p50 ms</th><th>p99 ms</th><th>p999 ms</th><th>mean ms</th>\
     <th>gen</th><th>blocked ms</th><th>undelivered</th><th>props</th></tr>\n";
  List.iter
    (fun s ->
      let ok =
        match Json.member s "props_ok" with Some (Json.Bool b) -> b | _ -> false
      in
      Printf.bprintf buf
        "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td>\
         <td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
        (shard_num s "shard") (shard_num s "nodes") (shard_num s "sent")
        (shard_num s "delivered") (shard_num s "p50_ms") (shard_num s "p99_ms")
        (shard_num s "p999_ms") (shard_num s "mean_ms") (shard_num s "generation")
        (shard_num s "blocked_ms") (shard_num s "undelivered")
        (if ok then "ok" else "VIOLATED"))
    shards;
  Buffer.add_string buf "</table>\n";
  Buffer.add_string buf "<h2>Replacement swimlane</h2>\n";
  (match Option.bind (Json.member j "max_concurrent_switches") Json.to_int_opt with
  | Some k when k > 0 ->
    Printf.bprintf buf "<p class=\"note\">max concurrent in-flight swaps: %d</p>\n" k
  | _ -> ());
  Buffer.add_string buf (shard_swimlane shards);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The page                                                           *)
(* ------------------------------------------------------------------ *)

let style =
  {|body{font:14px/1.5 system-ui,sans-serif;color:#1a1c22;margin:2rem auto;max-width:960px;padding:0 1rem}
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #d5d8e0;padding-bottom:.3rem}
table{border-collapse:collapse;margin:.5rem 0}
td,th{border:1px solid #d5d8e0;padding:.25rem .6rem;text-align:right;font-variant-numeric:tabular-nums}
th{background:#f2f3f7}td:first-child,th:first-child{text-align:left}
.empty,.note{color:#6b7081}.legend span{margin-right:1rem}
.swatch{display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:.35rem}
svg.timeline{width:100%;background:#fafbfd;border:1px solid #e3e6ee;border-radius:4px}
.grid{stroke:#e3e6ee}.axis,.rowlabel{font-size:11px;fill:#6b7081}.rowlabel{font-size:12px;fill:#1a1c22}
.trends{display:flex;flex-wrap:wrap;gap:1rem}
.trend{border:1px solid #e3e6ee;border-radius:4px;padding:.5rem;width:286px}
.trend svg{width:100%;background:#fafbfd}
.trend-title{font-size:12px;font-weight:600;margin-bottom:.2rem;word-break:break-all}
.trend-foot{display:flex;justify-content:space-between;font-size:11px;color:#6b7081}
@media(prefers-color-scheme:dark){body{background:#15171c;color:#e4e6eb}
th{background:#23262e}td,th{border-color:#3a3e48}
svg.timeline,.trend svg{background:#1b1e24;border-color:#3a3e48}.trend{border-color:#3a3e48}
h2{border-color:#3a3e48}.rowlabel{fill:#e4e6eb}.grid{stroke:#2a2e36}}|}

let render ?metrics ?trace ?shard ?(history = []) ~title () =
  let buf = Buffer.create 16384 in
  Printf.bprintf buf
    "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>%s</title>\n\
     <style>%s</style></head>\n<body>\n<h1>%s</h1>\n"
    (escape title) style (escape title);
  (match trace with
  | Some events -> Buffer.add_string buf (timeline_section events)
  | None -> ());
  (match metrics with
  | Some j -> Buffer.add_string buf (metrics_section j)
  | None -> ());
  (match shard with
  | Some j -> Buffer.add_string buf (shard_section j)
  | None -> ());
  if history <> [] then Buffer.add_string buf (trend_section history);
  if trace = None && metrics = None && shard = None && history = [] then
    Buffer.add_string buf "<p class=\"empty\">nothing to report: no inputs given</p>\n";
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
