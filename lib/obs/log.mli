(** Structured, leveled, clock-stamped logging to JSONL sinks.

    Each record is one JSON object on one line: [t] (milliseconds on
    whatever clock the logger was created with), [level], [msg], then
    the caller's fields in the order given. On the simulator clock the
    emitted bytes are a pure function of the run — two identical runs
    write identical files — while live nodes stamp wall-clock
    milliseconds since the deployment epoch, so per-node JSONL files
    merge onto the same time axis as the trace events.

    The default everywhere is {!noop}: a frozen disabled logger whose
    calls cost one option test and allocate nothing. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> level option
(** Case-insensitive; accepts "warning" for [Warn]. *)

type t

val noop : t
(** Drops everything; safe to use as a default. *)

val create : ?level:level -> clock:(unit -> float) -> emit:(string -> unit) -> unit -> t
(** [emit] receives one complete JSONL line (no trailing newline) per
    record at or above [level] (default [Info]). *)

val to_buffer : ?level:level -> clock:(unit -> float) -> Buffer.t -> t
(** Append newline-terminated records to a buffer (tests, in-memory
    capture). *)

val to_file : ?level:level -> clock:(unit -> float) -> string -> t * (unit -> unit)
(** Open [path] for writing and return the logger plus a close
    function; the caller must invoke it to flush. *)

val enabled : t -> level -> bool

val log : t -> level -> ?fields:(string * Json.t) list -> string -> unit

val debug : t -> ?fields:(string * Json.t) list -> string -> unit

val info : t -> ?fields:(string * Json.t) list -> string -> unit

val warn : t -> ?fields:(string * Json.t) list -> string -> unit

val error : t -> ?fields:(string * Json.t) list -> string -> unit

(** {1 Parsing} — CI and tests validate emitted JSONL artifacts. *)

type entry = {
  e_time : float;
  e_level : level;
  e_msg : string;
  e_fields : Json.t;  (** the whole record, for extra-field lookup *)
}

val entry_of_line : string -> (entry, string) result

val entries_of_string : string -> (entry list, string) result
(** Parse a whole JSONL document; blank lines are skipped. *)
