type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* A float must render as a JSON number: never "nan"/"inf" (emitted as
   null), always round-trippable. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* "%g" may print "1" for 1.0; that is still a valid JSON number. *)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for our own exports and tests)  *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected %c, found %c" c c')
    | None -> error (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with Failure _ -> error "bad \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8 (BMP only; surrogate
                  pairs are not recombined — we never emit them). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if tok = "" then error "expected number";
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %s" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %s" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> error "expected , or ] in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> error "expected , or } in object"
        in
        Obj (members [])
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member v key =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
