type args = (string * Json.t) list

type t =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts_us : float;
      dur_us : float;
      args : args;
    }
  | Instant of { name : string; cat : string; pid : int; tid : int; ts_us : float; args : args }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

let us_of_ms ms = ms *. 1000.0

let complete ~name ~cat ~pid ~tid ~ts_ms ~dur_ms ?(args = []) () =
  Complete
    {
      name;
      cat;
      pid;
      tid;
      ts_us = us_of_ms ts_ms;
      dur_us = us_of_ms (Float.max 0.0 dur_ms);
      args;
    }

let instant ~name ~cat ~pid ~tid ~ts_ms ?(args = []) () =
  Instant { name; cat; pid; tid; ts_us = us_of_ms ts_ms; args }

let process_name ~pid name = Process_name { pid; name }

let thread_name ~pid ~tid name = Thread_name { pid; tid; name }

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete { name; cat; pid; tid; ts_us; dur_us; args } ->
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str "X");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Float ts_us);
         ("dur", Json.Float dur_us);
       ]
      @ args_field args)
  | Instant { name; cat; pid; tid; ts_us; args } ->
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str "i");
         ("s", Json.Str "t");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Float ts_us);
       ]
      @ args_field args)
  | Process_name { pid; name } ->
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  | Thread_name { pid; tid; name } ->
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]
