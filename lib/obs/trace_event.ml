type args = (string * Json.t) list

type t =
  | Complete of {
      name : string;
      cat : string;
      pid : int;
      tid : int;
      ts_us : float;
      dur_us : float;
      args : args;
    }
  | Instant of { name : string; cat : string; pid : int; tid : int; ts_us : float; args : args }
  | Process_name of { pid : int; name : string }
  | Thread_name of { pid : int; tid : int; name : string }

let us_of_ms ms = ms *. 1000.0

let complete ~name ~cat ~pid ~tid ~ts_ms ~dur_ms ?(args = []) () =
  Complete
    {
      name;
      cat;
      pid;
      tid;
      ts_us = us_of_ms ts_ms;
      dur_us = us_of_ms (Float.max 0.0 dur_ms);
      args;
    }

let instant ~name ~cat ~pid ~tid ~ts_ms ?(args = []) () =
  Instant { name; cat; pid; tid; ts_us = us_of_ms ts_ms; args }

let process_name ~pid name = Process_name { pid; name }

let thread_name ~pid ~tid name = Thread_name { pid; tid; name }

let args_field = function
  | [] -> []
  | args -> [ ("args", Json.Obj args) ]

let event_json = function
  | Complete { name; cat; pid; tid; ts_us; dur_us; args } ->
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str "X");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Float ts_us);
         ("dur", Json.Float dur_us);
       ]
      @ args_field args)
  | Instant { name; cat; pid; tid; ts_us; args } ->
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str cat);
         ("ph", Json.Str "i");
         ("s", Json.Str "t");
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
         ("ts", Json.Float ts_us);
       ]
      @ args_field args)
  | Process_name { pid; name } ->
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  | Thread_name { pid; tid; name } ->
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]

let to_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Parsing — events shipped across process boundaries (live node      *)
(* reports) and artifacts re-read by `dpu_run report` and tests.      *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field j name to_ kind =
  match Option.bind (Json.member j name) to_ with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "trace event: missing or non-%s field %S" kind name)

let str j name = field j name Json.to_string_opt "string"

let int_ j name = field j name Json.to_int_opt "int"

let num j name = field j name Json.to_float_opt "number"

let parse_args j =
  match Json.member j "args" with
  | None -> Ok []
  | Some (Json.Obj fields) -> Ok fields
  | Some _ -> Error "trace event: \"args\" is not an object"

let of_json j =
  let* ph = str j "ph" in
  match ph with
  | "X" ->
    let* name = str j "name" in
    let* cat = str j "cat" in
    let* pid = int_ j "pid" in
    let* tid = int_ j "tid" in
    let* ts_us = num j "ts" in
    let* dur_us = num j "dur" in
    let* args = parse_args j in
    Ok (Complete { name; cat; pid; tid; ts_us; dur_us; args })
  | "i" ->
    let* name = str j "name" in
    let* cat = str j "cat" in
    let* pid = int_ j "pid" in
    let* tid = int_ j "tid" in
    let* ts_us = num j "ts" in
    let* args = parse_args j in
    Ok (Instant { name; cat; pid; tid; ts_us; args })
  | "M" -> (
    let* kind = str j "name" in
    let* pid = int_ j "pid" in
    let* args =
      match Json.member j "args" with
      | Some a -> Ok a
      | None -> Error "trace event: metadata without args"
    in
    let* name = str args "name" in
    match kind with
    | "process_name" -> Ok (Process_name { pid; name })
    | "thread_name" ->
      let* tid = int_ j "tid" in
      Ok (Thread_name { pid; tid; name })
    | other -> Error (Printf.sprintf "trace event: unknown metadata kind %S" other))
  | other -> Error (Printf.sprintf "trace event: unknown phase %S" other)

let events_of_json j =
  let events =
    match j with
    | Json.List l -> Ok l
    | Json.Obj _ -> (
      match Option.bind (Json.member j "traceEvents") Json.to_list_opt with
      | Some l -> Ok l
      | None -> Error "trace: no \"traceEvents\" list")
    | _ -> Error "trace: expected an object or a list"
  in
  let* events = events in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      let* e = of_json e in
      go (e :: acc) rest
  in
  go [] events
