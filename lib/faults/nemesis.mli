(** Seeded random fault-schedule generator for soak testing.

    Samples a {!Schedule.t} from an explicit {!Dpu_engine.Rng} stream:
    the same generator state produces the same schedule, so a soak
    failure reproduces from its seed. Generated schedules respect the
    crash-prone-but-live assumptions the protocols need: at most a
    minority of nodes is ever down at once, node 0 is never crashed
    (it bootstraps the sequencer/token variants), partitions always
    heal, and windows close before [0.9 * horizon_ms] so the run can
    converge and the checkers see a quiescent system. *)

type fault_class =
  | Crashes
  | Partitions
  | Loss
  | Dup
  | Slow_links

val all_classes : fault_class list

val generate :
  rng:Dpu_engine.Rng.t ->
  n:int ->
  horizon_ms:float ->
  ?classes:fault_class list ->
  ?faults:int ->
  ?recoverable:bool ->
  unit ->
  Schedule.t
(** [generate ~rng ~n ~horizon_ms ()] draws [faults] (default 3)
    faults of random classes (default {!all_classes}), sorted by time.
    With [recoverable] (default [false]) crashed nodes may be
    recovered later — enable only for network-level runs; the
    full-stack harness treats crashes as fail-stop. *)
