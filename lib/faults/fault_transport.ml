module Transport = Dpu_runtime.Transport
module Clock = Dpu_runtime.Clock
module Rng = Dpu_engine.Rng
module Latency = Dpu_net.Latency

(* ------------------------------------------------------------------ *)
(* Compiled schedules: fault state as a pure function of time          *)
(* ------------------------------------------------------------------ *)

module State = struct
  type t = {
    (* (time, node, down?) crash/recover transitions, time-sorted *)
    transitions : (float * int * bool) array;
    (* (time, groups) partition/heal history, time-sorted; [None] = healed *)
    partitions : (float * int list list option) array;
    loss_windows : (float * float * float) array;  (* from, until, p *)
    dup_windows : (float * float * float) array;
    degrades : (float * float * int * int * Latency.link) array;
  }

  let compile schedule =
    let sorted = Schedule.sorted schedule in
    let transitions = ref [] and partitions = ref [] in
    let loss = ref [] and dup = ref [] and degrades = ref [] in
    List.iter
      (fun (e : Schedule.event) ->
        match e.Schedule.action with
        | Schedule.Crash node -> transitions := (e.at, node, true) :: !transitions
        | Schedule.Recover node -> transitions := (e.at, node, false) :: !transitions
        | Schedule.Partition groups -> partitions := (e.at, Some groups) :: !partitions
        | Schedule.Heal -> partitions := (e.at, None) :: !partitions
        | Schedule.Loss_window { p; from_; until } -> loss := (from_, until, p) :: !loss
        | Schedule.Dup_burst { p; from_; until } -> dup := (from_, until, p) :: !dup
        | Schedule.Degrade_link { src; dst; link; window } ->
          degrades := (window.from_, window.until, src, dst, link) :: !degrades)
      sorted;
    {
      transitions = Array.of_list (List.rev !transitions);
      partitions = Array.of_list (List.rev !partitions);
      loss_windows = Array.of_list (List.rev !loss);
      dup_windows = Array.of_list (List.rev !dup);
      degrades = Array.of_list (List.rev !degrades);
    }

  (* Windows are half-open [from_, until): the instant a window closes
     behaves exactly as if it never opened, matching the restore
     callbacks Schedule.arm fires at [until] on the simulator path. *)
  let in_window ~now ~from_ ~until = from_ <= now && now < until

  let crashed t ~now node =
    let down = ref false in
    Array.iter
      (fun (at, who, d) -> if at <= now && who = node then down := d)
      t.transitions;
    !down

  let separated t ~now ~src ~dst =
    if src = dst then false
    else begin
      let current = ref None in
      Array.iter
        (fun (at, groups) -> if at <= now then current := Some groups)
        t.partitions;
      match !current with
      | None | Some None -> false
      | Some (Some groups) ->
        (* Nodes missing from every group share one implicit leftover
           group, mirroring [Datagram.partition]. *)
        let group_of node =
          let rec find gid = function
            | [] -> -1
            | members :: rest ->
              if List.mem node members then gid else find (gid + 1) rest
          in
          find 0 groups
        in
        group_of src <> group_of dst
    end

  (* Overlapping windows compose as independent trials. *)
  let combined windows ~now =
    let pass =
      Array.fold_left
        (fun acc (from_, until, p) ->
          if in_window ~now ~from_ ~until then acc *. (1.0 -. p) else acc)
        1.0 windows
    in
    1.0 -. pass

  let loss t ~now = combined t.loss_windows ~now

  let dup t ~now = combined t.dup_windows ~now

  let link t ~now ~src ~dst =
    Array.fold_left
      (fun acc (from_, until, s, d, l) ->
        if s = src && d = dst && in_window ~now ~from_ ~until then Some l else acc)
      None t.degrades
end

(* ------------------------------------------------------------------ *)
(* The shim                                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  blocked_crash : int;
  blocked_partition : int;
  injected_loss : int;
  injected_dup : int;
  delayed : int;
  rx_blocked : int;
}

let no_stats =
  {
    blocked_crash = 0;
    blocked_partition = 0;
    injected_loss = 0;
    injected_dup = 0;
    delayed = 0;
    rx_blocked = 0;
  }

type 'a t = {
  inner : 'a Transport.t;
  clock : Clock.t;
  state : State.t;
  rng : Rng.t;
  on_event : (kind:string -> detail:string -> unit) option;
  mutable blocked_crash : int;
  mutable blocked_partition : int;
  mutable injected_loss : int;
  mutable injected_dup : int;
  mutable delayed : int;
  mutable rx_blocked : int;
  mutable absorbed_bytes : int;
}

let create ?(seed = 0x5eed) ?on_event ~schedule ~clock inner =
  {
    inner;
    clock;
    state = State.compile schedule;
    rng = Rng.create ~seed;
    on_event;
    blocked_crash = 0;
    blocked_partition = 0;
    injected_loss = 0;
    injected_dup = 0;
    delayed = 0;
    rx_blocked = 0;
    absorbed_bytes = 0;
  }

let stats t =
  {
    blocked_crash = t.blocked_crash;
    blocked_partition = t.blocked_partition;
    injected_loss = t.injected_loss;
    injected_dup = t.injected_dup;
    delayed = t.delayed;
    rx_blocked = t.rx_blocked;
  }

let absorbed t = t.blocked_crash + t.blocked_partition + t.injected_loss

let fire t kind ~src ~dst =
  match t.on_event with
  | None -> ()
  | Some f -> f ~kind ~detail:(Printf.sprintf "src=%d dst=%d" src dst)

let send t ~src ~dst ~size_bytes payload =
  let now = Clock.now t.clock in
  if State.crashed t.state ~now src || State.crashed t.state ~now dst then begin
    t.blocked_crash <- t.blocked_crash + 1;
    t.absorbed_bytes <- t.absorbed_bytes + size_bytes;
    fire t "blocked_crash" ~src ~dst
  end
  else if State.separated t.state ~now ~src ~dst then begin
    t.blocked_partition <- t.blocked_partition + 1;
    t.absorbed_bytes <- t.absorbed_bytes + size_bytes;
    fire t "blocked_partition" ~src ~dst
  end
  else begin
    let p_loss = State.loss t.state ~now in
    if p_loss > 0.0 && Rng.bool t.rng ~p:p_loss then begin
      t.injected_loss <- t.injected_loss + 1;
      t.absorbed_bytes <- t.absorbed_bytes + size_bytes;
      fire t "injected_loss" ~src ~dst
    end
    else begin
      let duplicate =
        let p = State.dup t.state ~now in
        p > 0.0 && Rng.bool t.rng ~p
      in
      let forward () =
        match State.link t.state ~now ~src ~dst with
        | None -> Transport.send t.inner ~src ~dst ~size_bytes payload
        | Some link ->
          (* On top of whatever latency the wrapped transport already
             has: a degraded link is extra queueing, not a replacement
             of the base path. *)
          t.delayed <- t.delayed + 1;
          fire t "delayed" ~src ~dst;
          let delay = Latency.delay link t.rng ~size_bytes in
          Clock.defer t.clock ~delay (fun () ->
              Transport.send t.inner ~src ~dst ~size_bytes payload)
      in
      forward ();
      if duplicate then begin
        t.injected_dup <- t.injected_dup + 1;
        fire t "injected_dup" ~src ~dst;
        forward ()
      end
    end
  end

let wrap_handler t ~node f ~src payload =
  let now = Clock.now t.clock in
  if
    State.crashed t.state ~now src
    || State.crashed t.state ~now node
    || State.separated t.state ~now ~src ~dst:node
  then begin
    t.rx_blocked <- t.rx_blocked + 1;
    fire t "rx_blocked" ~src ~dst:node
  end
  else f ~src payload

let counters t =
  let c = Transport.counters t.inner in
  let absorbed = absorbed t in
  {
    Transport.sent = c.Transport.sent + absorbed;
    delivered = c.Transport.delivered - t.rx_blocked;
    dropped = c.Transport.dropped + absorbed + t.rx_blocked;
    bytes = c.Transport.bytes + t.absorbed_bytes;
  }

let transport t =
  {
    Transport.n = Transport.n t.inner;
    send = (fun ~src ~dst ~size_bytes payload -> send t ~src ~dst ~size_bytes payload);
    set_handler =
      (fun ~node f -> Transport.set_handler t.inner ~node (wrap_handler t ~node f));
    counters = (fun () -> counters t);
    (* Faults absorb whole messages before they reach the inner
       transport's egress queues, so batch statistics pass through
       untouched. *)
    batches = (fun () -> Transport.batches t.inner);
  }
