(** The adversarial replacement scenario corpus.

    Each scenario pairs a protocol-replacement plan with a fault
    schedule the paper never imagined, and is meant to run {e twice}:
    once in the simulator and once over real UDP sockets — from the
    same values, through the same {!Fault_transport} shim — with the
    full atomic-broadcast property battery checked on the merged logs
    both times. The simulated driver is [Dpu_workload.Scenario]; the
    live driver is [Dpu_live.Serve] via [dpu_run serve --scenario] /
    [dpu_run corpus]. *)

type switch = { sw_at : float; sw_node : int; sw_to : string }
(** One changeABcast call: at [sw_at] ms, node [sw_node] requests a
    replacement to protocol [sw_to]. *)

type t = {
  name : string;
  summary : string;
  n : int;
  load : float;  (** aggregate messages per second *)
  duration_ms : float;
  drain_ms : float;  (** settle time after the load stops (live runs) *)
  initial : string;  (** initial ABcast variant *)
  switches : switch list;
  schedule : Schedule.t;
}

val all : t list
(** replacement-under-partition, racing-replacements,
    coordinator-crash-mid-switch, rollback-previous-generation,
    cascading-heterogeneous-switch. *)

val names : unit -> string list

val find : string -> t option

val correct_nodes : t -> int list
(** All nodes minus those the schedule crash-silences without
    recovery — the [~correct] set for the property checkers. *)

val validate : t -> (unit, string) result
(** The fault schedule and every switch target a node in range. *)

val pp : Format.formatter -> t -> unit
