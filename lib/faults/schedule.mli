(** Declarative, deterministic fault schedules.

    A schedule is a list of timed actions against a {!Dpu_net.Datagram}
    network: crashes, recoveries, partitions and heals fire at one
    instant; loss windows, duplication bursts and link degradations
    open and close around a time window. {!arm} compiles the schedule
    into {!Dpu_engine.Sim} timers, so the same schedule on the same
    seed replays the exact same adverse interleaving — a failing soak
    reproduces from its seed alone.

    Times are absolute virtual milliseconds (the harness arms
    schedules at virtual time 0). *)

module Latency = Dpu_net.Latency

type window = { from_ : float; until : float }

type action =
  | Crash of int  (** silence a node (fail-stop unless recovered) *)
  | Recover of int  (** un-crash a node; resets its egress clock *)
  | Partition of int list list  (** groups; leftovers isolate together *)
  | Heal  (** remove any partition *)
  | Loss_window of { p : float; from_ : float; until : float }
      (** raise iid datagram loss to [p] inside the window, then
          restore the probability in force when the window opened *)
  | Dup_burst of { p : float; from_ : float; until : float }
      (** raise iid datagram duplication to [p] inside the window *)
  | Degrade_link of { src : int; dst : int; link : Latency.link; window : window }
      (** give one directed pair a (typically slower) link inside the
          window, then restore the default *)

type event = { at : float; action : action }
(** For windowed actions [at] is the opening time of the window; the
    constructors below maintain this invariant. *)

type t = event list

(** {1 Constructors} *)

val crash : at:float -> int -> event

val recover : at:float -> int -> event

val partition : at:float -> int list list -> event

val heal : at:float -> event

val loss_window : p:float -> from_:float -> until:float -> event

val dup_burst : p:float -> from_:float -> until:float -> event

val degrade_link :
  src:int -> dst:int -> link:Latency.link -> from_:float -> until:float -> event

(** {1 Inspection} *)

val sorted : t -> t
(** Stable-sorted by [at]. *)

val duration : t -> float
(** Latest time mentioned by any event (including window closings);
    0 for the empty schedule. *)

val crashed_before : t -> time:float -> int list
(** Nodes whose last [Crash]/[Recover] at or before [time] is a
    [Crash] — i.e. down at [time] under this schedule (ascending). *)

val validate : n:int -> t -> (unit, string) result
(** Check node indices against [n], probabilities in [0, 1], windows
    non-empty and times non-negative. *)

val pp_action : Format.formatter -> action -> unit

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit

(** {1 Spec strings}

    Compact one-token grammar for command lines:
    {v
    crash@T:NODE            recover@T:NODE
    partition@T:0,1|2,3     heal@T
    loss@FROM-UNTIL:P       dup@FROM-UNTIL:P
    slow@FROM-UNTIL:SRC>DST:LATENCY_MS
    v} *)

val event_of_spec : string -> (event, string) result

val of_specs : string list -> (t, string) result
(** Parse every spec; the first error aborts. *)

(** {1 Interpretation} *)

val arm :
  ?crash_node:(int -> unit) ->
  ?recover_node:(int -> unit) ->
  ?on_event:(float -> string -> unit) ->
  'a Dpu_net.Datagram.t ->
  t ->
  unit
(** Compile the schedule into simulator timers against the network.

    [crash_node]/[recover_node] override what [Crash]/[Recover] do —
    the full-stack harness passes its own crash (which also fail-stops
    the protocol stack); the defaults act on the datagram layer only.
    [on_event] observes every boundary (action firings and window
    closings) with the virtual time and a human-readable description.

    Overlapping windows of the same kind are restored in closing
    order, each to the probability (or link) in force when it opened;
    nesting them is allowed but the last closer wins. *)
