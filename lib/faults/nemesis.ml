module Rng = Dpu_engine.Rng
module Latency = Dpu_net.Latency

type fault_class =
  | Crashes
  | Partitions
  | Loss
  | Dup
  | Slow_links

let all_classes = [ Crashes; Partitions; Loss; Dup; Slow_links ]

(* Windows live inside [0.1h, 0.9h]: faults injected at the very start
   hit protocols mid-bootstrap, and faults still open at the horizon
   leave no time to converge before the checkers run. *)
let window rng ~horizon_ms =
  let lo = 0.1 *. horizon_ms and hi = 0.9 *. horizon_ms in
  let from_ = Rng.uniform rng ~lo ~hi:(hi -. 100.0) in
  let until = Rng.uniform rng ~lo:(from_ +. 100.0) ~hi in
  (from_, until)

let generate ~rng ~n ~horizon_ms ?(classes = all_classes) ?(faults = 3)
    ?(recoverable = false) () =
  assert (n >= 2);
  let classes = if classes = [] then all_classes else classes in
  let classes_arr = Array.of_list classes in
  let max_down = (n - 1) / 2 in
  let crashed = ref [] in
  let rec gen budget acc =
    if budget <= 0 then acc
    else
      let cls = classes_arr.(Rng.int rng (Array.length classes_arr)) in
      let events =
        match cls with
        | Crashes ->
          if List.length !crashed >= max_down || n < 3 then []
          else begin
            (* Never node 0: it bootstraps the sequencer/token variants. *)
            let candidates =
              List.filter
                (fun node -> not (List.mem node !crashed))
                (List.init (n - 1) (fun i -> i + 1))
            in
            match candidates with
            | [] -> []
            | _ ->
              let node = List.nth candidates (Rng.int rng (List.length candidates)) in
              crashed := node :: !crashed;
              let from_, until = window rng ~horizon_ms in
              if recoverable && Rng.bool rng ~p:0.5 then begin
                crashed := List.filter (fun m -> m <> node) !crashed;
                [ Schedule.crash ~at:from_ node; Schedule.recover ~at:until node ]
              end
              else [ Schedule.crash ~at:from_ node ]
          end
        | Partitions ->
          (* Isolate a random minority (never containing node 0), heal
             within the window. *)
          let size = 1 + Rng.int rng (Stdlib.max 1 max_down) in
          let nodes = Array.init (n - 1) (fun i -> i + 1) in
          Rng.shuffle rng nodes;
          let isolated = Array.to_list (Array.sub nodes 0 (Stdlib.min size (n - 1))) in
          let rest =
            List.filter (fun m -> not (List.mem m isolated)) (List.init n Fun.id)
          in
          let from_, until = window rng ~horizon_ms in
          [ Schedule.partition ~at:from_ [ rest; isolated ]; Schedule.heal ~at:until ]
        | Loss ->
          let from_, until = window rng ~horizon_ms in
          let p = Rng.uniform rng ~lo:0.05 ~hi:0.3 in
          [ Schedule.loss_window ~p ~from_ ~until ]
        | Dup ->
          let from_, until = window rng ~horizon_ms in
          let p = Rng.uniform rng ~lo:0.05 ~hi:0.3 in
          [ Schedule.dup_burst ~p ~from_ ~until ]
        | Slow_links ->
          let src = Rng.int rng n in
          let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
          let from_, until = window rng ~horizon_ms in
          let lat = Rng.uniform rng ~lo:5.0 ~hi:50.0 in
          [ Schedule.degrade_link ~src ~dst ~link:(Latency.constant lat) ~from_ ~until ]
      in
      gen (budget - 1) (events @ acc)
  in
  Schedule.sorted (gen faults [])
