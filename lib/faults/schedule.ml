module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram
module Latency = Dpu_net.Latency

type window = { from_ : float; until : float }

type action =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal
  | Loss_window of { p : float; from_ : float; until : float }
  | Dup_burst of { p : float; from_ : float; until : float }
  | Degrade_link of { src : int; dst : int; link : Latency.link; window : window }

type event = { at : float; action : action }

type t = event list

let crash ~at node = { at; action = Crash node }

let recover ~at node = { at; action = Recover node }

let partition ~at groups = { at; action = Partition groups }

let heal ~at = { at; action = Heal }

let loss_window ~p ~from_ ~until = { at = from_; action = Loss_window { p; from_; until } }

let dup_burst ~p ~from_ ~until = { at = from_; action = Dup_burst { p; from_; until } }

let degrade_link ~src ~dst ~link ~from_ ~until =
  { at = from_; action = Degrade_link { src; dst; link; window = { from_; until } } }

let sorted t = List.stable_sort (fun a b -> Float.compare a.at b.at) t

let event_end e =
  match e.action with
  | Crash _ | Recover _ | Partition _ | Heal -> e.at
  | Loss_window { until; _ } | Dup_burst { until; _ } -> until
  | Degrade_link { window; _ } -> window.until

let duration t = List.fold_left (fun acc e -> Float.max acc (event_end e)) 0.0 t

let crashed_before t ~time =
  let relevant =
    List.filter
      (fun e ->
        e.at <= time
        && match e.action with Crash _ | Recover _ -> true | _ -> false)
      (sorted t)
  in
  let down = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match e.action with
      | Crash node -> Hashtbl.replace down node true
      | Recover node -> Hashtbl.replace down node false
      | _ -> ())
    relevant;
  (* dpu-lint: allow hashtbl-iter — folded nodes are sorted before use *)
  Hashtbl.fold (fun node is_down acc -> if is_down then node :: acc else acc) down []
  |> List.sort Int.compare

let validate ~n t =
  let ok = Result.ok () in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let node_ok node = node >= 0 && node < n in
  let prob_ok p = p >= 0.0 && p <= 1.0 in
  let check_event e =
    if e.at < 0.0 then err "event at negative time %g" e.at
    else
      match e.action with
      | Crash node | Recover node ->
        if node_ok node then ok else err "node %d out of range [0, %d)" node n
      | Partition groups ->
        let members = List.concat groups in
        if List.exists (fun m -> not (node_ok m)) members then
          err "partition mentions a node out of range [0, %d)" n
        else if
          List.length members <> List.length (List.sort_uniq Int.compare members)
        then err "partition lists a node twice"
        else ok
      | Heal -> ok
      | Loss_window { p; from_; until } | Dup_burst { p; from_; until } ->
        if not (prob_ok p) then err "probability %g outside [0, 1]" p
        else if not (until > from_) then err "empty window %g-%g" from_ until
        else ok
      | Degrade_link { src; dst; window; _ } ->
        if not (node_ok src && node_ok dst) then
          err "link %d->%d out of range [0, %d)" src dst n
        else if not (window.until > window.from_) then
          err "empty window %g-%g" window.from_ window.until
        else ok
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> check_event e)
    ok t

let pp_groups ppf groups =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
    (fun ppf members ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
        Format.pp_print_int ppf members)
    ppf groups

let pp_action ppf = function
  | Crash node -> Format.fprintf ppf "crash node %d" node
  | Recover node -> Format.fprintf ppf "recover node %d" node
  | Partition groups -> Format.fprintf ppf "partition %a" pp_groups groups
  | Heal -> Format.pp_print_string ppf "heal"
  | Loss_window { p; from_; until } ->
    Format.fprintf ppf "loss p=%g over %g-%g" p from_ until
  | Dup_burst { p; from_; until } ->
    Format.fprintf ppf "dup p=%g over %g-%g" p from_ until
  | Degrade_link { src; dst; window; _ } ->
    Format.fprintf ppf "degrade link %d->%d over %g-%g" src dst window.from_
      window.until

let pp_event ppf e = Format.fprintf ppf "@%g %a" e.at pp_action e.action

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_event ppf (sorted t)

(* ------------------------------------------------------------------ *)
(* Spec strings                                                       *)
(* ------------------------------------------------------------------ *)

let split_once c s =
  match String.index_opt s c with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let float_arg s = float_of_string_opt s

let int_arg s = int_of_string_opt s

let window_arg s =
  (* FROM-UNTIL; both are non-negative, so '-' only appears as the
     separator. *)
  match split_once '-' s with
  | None -> None
  | Some (a, b) -> (
    match (float_arg a, float_arg b) with
    | Some from_, Some until -> Some (from_, until)
    | _ -> None)

let event_of_spec spec =
  let err () = Error (Printf.sprintf "cannot parse fault spec %S" spec) in
  match split_once '@' spec with
  | None -> err ()
  | Some (kind, rest) -> (
    match kind with
    | "crash" | "recover" -> (
      match split_once ':' rest with
      | Some (t, node) -> (
        match (float_arg t, int_arg node) with
        | Some at, Some node ->
          Ok (if kind = "crash" then crash ~at node else recover ~at node)
        | _ -> err ())
      | None -> err ())
    | "heal" -> (
      match float_arg rest with Some at -> Ok (heal ~at) | None -> err ())
    | "partition" -> (
      match split_once ':' rest with
      | Some (t, groups_s) -> (
        match float_arg t with
        | None -> err ()
        | Some at -> (
          let parse_group g =
            let members = String.split_on_char ',' g in
            let parsed = List.filter_map int_arg members in
            if List.length parsed = List.length members && parsed <> [] then
              Some parsed
            else None
          in
          let groups =
            List.map parse_group (String.split_on_char '|' groups_s)
          in
          if List.exists Option.is_none groups then err ()
          else Ok (partition ~at (List.filter_map Fun.id groups))))
      | None -> err ())
    | "loss" | "dup" -> (
      match split_once ':' rest with
      | Some (w, p) -> (
        match (window_arg w, float_arg p) with
        | Some (from_, until), Some p ->
          Ok
            (if kind = "loss" then loss_window ~p ~from_ ~until
             else dup_burst ~p ~from_ ~until)
        | _ -> err ())
      | None -> err ())
    | "slow" -> (
      (* slow@FROM-UNTIL:SRC>DST:LAT_MS *)
      match split_once ':' rest with
      | Some (w, rest) -> (
        match (window_arg w, split_once ':' rest) with
        | Some (from_, until), Some (pair, lat) -> (
          match (split_once '>' pair, float_arg lat) with
          | Some (src, dst), Some lat_ms -> (
            match (int_arg src, int_arg dst) with
            | Some src, Some dst ->
              Ok
                (degrade_link ~src ~dst ~link:(Latency.constant lat_ms) ~from_
                   ~until)
            | _ -> err ())
          | _ -> err ())
        | _ -> err ())
      | None -> err ())
    | _ -> err ())

let of_specs specs =
  List.fold_left
    (fun acc spec ->
      match acc with
      | Error _ -> acc
      | Ok events -> (
        match event_of_spec spec with
        | Ok e -> Ok (e :: events)
        | Error _ as e -> e))
    (Ok []) specs
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Interpretation                                                     *)
(* ------------------------------------------------------------------ *)

let arm ?crash_node ?recover_node ?(on_event = fun _ _ -> ()) net t =
  let sim = Datagram.sim net in
  let crash_node =
    match crash_node with Some f -> f | None -> Datagram.crash net
  in
  let recover_node =
    match recover_node with Some f -> f | None -> Datagram.recover net
  in
  let at time describe fn =
    ignore
      (Sim.schedule_at sim ~time (fun () ->
           fn ();
           on_event (Sim.now sim) (describe ()))
        : Sim.handle)
  in
  let describe_action action () = Format.asprintf "%a" pp_action action in
  List.iter
    (fun e ->
      match e.action with
      | Crash node -> at e.at (describe_action e.action) (fun () -> crash_node node)
      | Recover node ->
        at e.at (describe_action e.action) (fun () -> recover_node node)
      | Partition groups ->
        at e.at (describe_action e.action) (fun () -> Datagram.partition net groups)
      | Heal -> at e.at (describe_action e.action) (fun () -> Datagram.heal net)
      | Loss_window { p; from_; until } ->
        let saved = ref 0.0 in
        at from_ (describe_action e.action) (fun () ->
            saved := Datagram.loss net;
            Datagram.set_loss net p);
        at until
          (fun () -> Printf.sprintf "loss window closes, back to p=%g" !saved)
          (fun () -> Datagram.set_loss net !saved)
      | Dup_burst { p; from_; until } ->
        let saved = ref 0.0 in
        at from_ (describe_action e.action) (fun () ->
            saved := Datagram.dup net;
            Datagram.set_dup net p);
        at until
          (fun () -> Printf.sprintf "dup burst closes, back to p=%g" !saved)
          (fun () -> Datagram.set_dup net !saved)
      | Degrade_link { src; dst; link; window } ->
        at window.from_ (describe_action e.action) (fun () ->
            Datagram.set_link_override net ~src ~dst (Some link));
        at window.until
          (fun () -> Printf.sprintf "link %d->%d restored" src dst)
          (fun () -> Datagram.set_link_override net ~src ~dst None))
    (sorted t)
