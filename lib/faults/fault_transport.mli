(** Fault injection behind the {!Dpu_runtime.Transport} seam.

    A shim that wraps {e any} transport — the simulated datagram
    backend or the live UDP one — and interprets a {!Schedule} against
    it, so the same schedule value produces the same adverse
    interleaving on both backends:

    - [Crash node]: every frame from or to the node is absorbed, in
      both directions, until a matching [Recover]. The node's process
      keeps running — this is fail-silence at the network, which is
      what a nemesis can do to a live process without killing it (and
      exactly what [Recover] needs to be meaningful).
    - [Partition groups] / [Heal]: frames crossing group boundaries are
      absorbed; nodes listed in no group share one implicit leftover
      group, mirroring [Dpu_net.Datagram.partition].
    - [Loss_window] / [Dup_burst]: inside the window each frame is
      independently dropped (or sent twice) with probability [p], drawn
      from the shim's own deterministic {!Dpu_engine.Rng} so the
      wrapped transport's randomness is never perturbed. Overlapping
      windows compose as independent trials.
    - [Degrade_link]: frames on the (src, dst) link are deferred by a
      delay sampled from the window's latency model via the runtime
      {!Dpu_runtime.Clock} — added on top of whatever delay the wrapped
      transport itself has.

    Fault state is a {e pure function of [Clock.now]} (see {!State}),
    not a set of armed timers: a live node that sleeps through a whole
    window still observes exactly the schedule's boundaries, and a
    simulated run replays byte-identically however events interleave.

    Send-side checks use the sender's clock; receive-side checks
    (crash/partition only — the deterministic faults) are re-applied
    when the wrapped transport hands a frame up, which keeps windows
    honest across processes whose clocks are only approximately
    aligned, and catches frames that were already in flight when a
    window opened. *)

module Transport = Dpu_runtime.Transport
module Clock = Dpu_runtime.Clock

(** Compiled schedule: fault state as a pure function of time. Windows
    are half-open [[from_, until)]. *)
module State : sig
  type t

  val compile : Schedule.t -> t

  val crashed : t -> now:float -> int -> bool

  val separated : t -> now:float -> src:int -> dst:int -> bool

  val loss : t -> now:float -> float
  (** Combined drop probability of all loss windows open at [now]. *)

  val dup : t -> now:float -> float

  val link : t -> now:float -> src:int -> dst:int -> Dpu_net.Latency.link option
  (** The degraded-link model covering (src, dst) at [now], if any. *)
end

type stats = {
  blocked_crash : int;  (** frames absorbed: src or dst crash-silenced *)
  blocked_partition : int;  (** frames absorbed: endpoints separated *)
  injected_loss : int;  (** frames absorbed inside a loss window *)
  injected_dup : int;  (** extra copies sent inside a dup burst *)
  delayed : int;  (** frames deferred by a degraded link *)
  rx_blocked : int;
      (** frames the wrapped transport delivered but the shim absorbed
          on the receive side (crash/partition at arrival time) *)
}

val no_stats : stats

type 'a t

val create :
  ?seed:int ->
  ?on_event:(kind:string -> detail:string -> unit) ->
  schedule:Schedule.t ->
  clock:Clock.t ->
  'a Transport.t ->
  'a t
(** [seed] feeds the shim's private RNG for loss/dup draws and degrade
    latency sampling; give each process of a live deployment a distinct
    seed so their drop patterns are independent.

    [on_event] fires synchronously at each injection, with [kind] one
    of ["blocked_crash"], ["blocked_partition"], ["injected_loss"],
    ["injected_dup"], ["delayed"], ["rx_blocked"] and [detail] naming
    the endpoints — observability hooks record these as trace instants.
    This module stays observability-agnostic: plain strings, no
    [Dpu_obs] dependency. *)

val transport : 'a t -> 'a Transport.t
(** The faulty view. Its counters fold the shim's absorptions into the
    wrapped transport's: absorbed sends count as [sent] + [dropped]
    (charging the modelled [size_bytes]), receive-side absorptions move
    a frame from [delivered] to [dropped] — so
    [sent = delivered + dropped] style invariants keep holding from the
    protocols' point of view. *)

val stats : 'a t -> stats

val counters : 'a t -> Transport.counters
(** Same as the wrapped view's [counters]. *)
