module P = Dpu_protocols

let ct = P.Abcast_ct.protocol_name

let seq = P.Abcast_seq.protocol_name

let token = P.Abcast_token.protocol_name

type switch = { sw_at : float; sw_node : int; sw_to : string }

type t = {
  name : string;
  summary : string;
  n : int;
  load : float;
  duration_ms : float;
  drain_ms : float;
  initial : string;
  switches : switch list;
  schedule : Schedule.t;
}

let sw ~at ~node target = { sw_at = at; sw_node = node; sw_to = target }

(* Every scenario fits one shape: open-loop load for [duration_ms],
   one or more changeABcast calls mid-stream, a fault schedule from the
   DSL, and the full Abcast_props battery over the merged logs at the
   end. Durations are short enough that a live (wall-clock) run of the
   whole corpus stays in CI budget. *)
let all =
  [
    {
      name = "replacement-under-partition";
      summary =
        "ABcast CT->sequencer swap while a minority node is partitioned away; \
         the partition heals before the run ends and the late node must catch \
         up through the epoch buffer";
      n = 5;
      load = 30.0;
      duration_ms = 4_000.0;
      drain_ms = 2_000.0;
      initial = ct;
      switches = [ sw ~at:2_000.0 ~node:0 seq ];
      schedule =
        [
          Schedule.partition ~at:1_500.0 [ [ 0; 1; 2; 3 ]; [ 4 ] ];
          Schedule.heal ~at:2_600.0;
        ];
    };
    {
      name = "racing-replacements";
      summary =
        "two nodes request different replacements 0.5 ms apart under a \
         duplication burst; the totally-ordered change stream must apply \
         exactly one and drop the loser as stale";
      n = 5;
      load = 30.0;
      duration_ms = 4_000.0;
      drain_ms = 2_000.0;
      initial = ct;
      (* Both requests are issued while the group is still at generation
         0 — they genuinely race through the change stream, and the one
         ordered second must be dropped as stale. *)
      switches = [ sw ~at:2_000.0 ~node:0 seq; sw ~at:2_000.5 ~node:1 token ];
      schedule = [ Schedule.dup_burst ~p:0.15 ~from_:1_800.0 ~until:2_800.0 ];
    };
    {
      name = "coordinator-crash-mid-switch";
      summary =
        "the node that triggers the replacement is crash-silenced 250 ms after \
         issuing changeABcast; the survivors must still complete Algorithm 1 \
         and keep the properties without it";
      n = 5;
      load = 30.0;
      duration_ms = 4_000.0;
      drain_ms = 2_000.0;
      initial = ct;
      switches = [ sw ~at:2_000.0 ~node:2 seq ];
      schedule = [ Schedule.crash ~at:2_250.0 2 ];
    };
    {
      name = "rollback-previous-generation";
      summary =
        "CT->sequencer, then back to CT one second later through a loss window \
         — the rollback is just another replacement, one generation up";
      n = 3;
      load = 30.0;
      duration_ms = 4_000.0;
      drain_ms = 2_000.0;
      initial = ct;
      switches = [ sw ~at:1_500.0 ~node:0 seq; sw ~at:2_500.0 ~node:0 ct ];
      schedule = [ Schedule.loss_window ~p:0.1 ~from_:2_000.0 ~until:3_000.0 ];
    };
    {
      name = "cascading-heterogeneous-switch";
      summary =
        "CT -> sequencer -> token ring -> CT, each leg triggered by a \
         different node while one link is degraded; three generations of \
         heterogeneous protocols share one totally-ordered stream";
      n = 5;
      load = 30.0;
      duration_ms = 4_400.0;
      drain_ms = 2_000.0;
      initial = ct;
      switches =
        [
          sw ~at:1_200.0 ~node:0 seq;
          sw ~at:2_200.0 ~node:1 token;
          sw ~at:3_200.0 ~node:2 ct;
        ];
      schedule =
        [
          Schedule.degrade_link ~src:0 ~dst:1
            ~link:(Dpu_net.Latency.constant 5.0)
            ~from_:1_500.0 ~until:3_500.0;
        ];
    };
  ]

let names () = List.map (fun s -> s.name) all

let find name = List.find_opt (fun s -> s.name = name) all

let correct_nodes t =
  let down = Schedule.crashed_before t.schedule ~time:infinity in
  List.filter (fun node -> not (List.mem node down)) (List.init t.n Fun.id)

let validate t =
  match Schedule.validate ~n:t.n t.schedule with
  | Error _ as e -> e
  | Ok () ->
    List.fold_left
      (fun acc s ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if s.sw_node < 0 || s.sw_node >= t.n then
            Error
              (Printf.sprintf "switch at %g: node %d out of range [0, %d)" s.sw_at
                 s.sw_node t.n)
          else if s.sw_at < 0.0 then
            Error (Printf.sprintf "switch at negative time %g" s.sw_at)
          else Ok ())
      (Ok ()) t.switches

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d nodes, %g msg/s for %g ms, initial %s@," t.name
    t.n t.load t.duration_ms t.initial;
  List.iter
    (fun s ->
      Format.fprintf ppf "  switch @%g node %d -> %s@," s.sw_at s.sw_node s.sw_to)
    t.switches;
  if t.schedule = [] then Format.fprintf ppf "  no faults@]"
  else Format.fprintf ppf "  faults: %a@]" Schedule.pp t.schedule
