open Dpu_kernel
module Abcast_iface = Dpu_protocols.Abcast_iface
module Repl_iface = Dpu_protocols.Repl_iface

type Payload.t +=
  | M_data of { gen : int; id : Msg.id; size : int; payload : Payload.t }
  | M_switch of { gen : int; protocol : string }

let () =
  Payload.register_printer (function
    | M_data { gen; id; _ } ->
      Some (Printf.sprintf "maestro.data gen=%d %s" gen (Msg.id_to_string id))
    | M_switch { gen; protocol } ->
      Some (Printf.sprintf "maestro.switch gen=%d %s" gen protocol)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"maestro"
    ~encode:(function
      | M_data { gen; id; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w gen;
            Msg.write_id w id;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | M_switch { gen; protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w gen;
            Wire.W.str w protocol)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let gen = Wire.R.int r in
        let id = Msg.read_id r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        M_data { gen; id; size; payload }
      | 1 ->
        let gen = Wire.R.int r in
        let protocol = Wire.R.str r in
        M_switch { gen; protocol }
      | c -> raise (Wire.Error (Printf.sprintf "maestro: bad case %d" c)))

type config = { drain_ms : float; startup_ms : float }

let default_config = { drain_ms = 150.0; startup_ms = 20.0 }

let protocol_name = "maestro.ss"

let header_size = 48

let k_blocked_us = "maestro.blocked_us"
let k_reissued = "maestro.reissued"

let blocked_ms stack = float_of_int (Stack.get_env stack k_blocked_us ~default:0) /. 1000.0

let reissued stack = Stack.get_env stack k_reissued ~default:0

(* The "whole stack" that gets replaced: every module providing one of
   the group-communication services below the switch module. *)
let substrate_services =
  [ Service.net; Service.rp2p; Service.fd; Service.consensus;
    Dpu_protocols.Rbcast.service; Service.abcast ]

let install ?(config = default_config) ~registry stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast ]
    (fun stack _self ->
      let gen = ref 0 in
      let next_local = ref 0 in
      let undelivered : (Msg.id, int * Payload.t) Hashtbl.t = Hashtbl.create 64 in
      let blocked = ref false in
      let blocked_since = ref 0.0 in
      let now () = Stack.now stack in
      let abcast ~size payload =
        Stack.call stack Service.abcast (Abcast_iface.Broadcast { size; payload })
      in
      let send_data id size payload =
        abcast ~size:(size + header_size) (M_data { gen = !gen; id; size; payload })
      in
      let r_broadcast ~size payload =
        let id = { Msg.origin = me; seq = !next_local } in
        incr next_local;
        Hashtbl.replace undelivered id (size, payload);
        (* While blocked, the message stays in [undelivered] and goes
           out with the re-issue pass once the new stack is up. *)
        if not !blocked then send_data id size payload
      in
      let teardown () =
        let victims =
          List.filter
            (fun m ->
              List.exists
                (fun svc ->
                  List.exists (Service.equal svc) (Stack.module_provides m))
                substrate_services)
            (Stack.modules stack)
        in
        List.iter (Stack.remove_module stack) victims
      in
      let rebuild protocol =
        teardown ();
        incr gen;
        Stack.set_env stack Abcast_iface.epoch_key !gen;
        ignore (Registry.instantiate registry stack ~name:protocol : Stack.module_);
        (* Give the fresh stack a warm-up before resuming traffic. *)
        ignore
          (Stack.after stack ~delay:config.startup_ms (fun () ->
               blocked := false;
               let us = int_of_float ((now () -. !blocked_since) *. 1000.0) in
               Stack.set_env stack k_blocked_us
                 (Stack.get_env stack k_blocked_us ~default:0 + us);
               Stack.app_event stack ~tag:"maestro.switch"
                 ~data:(Printf.sprintf "gen=%d prot=%s" !gen protocol);
               Stack.indicate stack Service.r_abcast
                 (Repl_iface.Protocol_changed { generation = !gen; protocol });
               let pending =
                 (* dpu-lint: allow hashtbl-iter — folded messages are sorted by id below *)
                 Hashtbl.fold (fun id v acc -> (id, v) :: acc) undelivered []
                 |> List.sort (fun (a, _) (b, _) -> Msg.id_compare a b)
               in
               Stack.set_env stack k_reissued
                 (Stack.get_env stack k_reissued ~default:0 + List.length pending);
               List.iter (fun (id, (size, payload)) -> send_data id size payload) pending)
            : Dpu_runtime.Clock.timer)
      in
      let on_switch g protocol =
        if g = !gen && not !blocked then begin
          (* Finalise: block the application, stop delivering, and let
             in-flight traffic (including this switch message at slower
             stacks) drain before destroying the old stack. *)
          blocked := true;
          blocked_since := now ();
          ignore
            (Stack.after stack ~delay:config.drain_ms (fun () -> rebuild protocol)
              : Dpu_runtime.Clock.timer)
        end
      in
      let on_data g id payload =
        (* Deliveries ordered after the switch point (or from a stale
           generation) are discarded at every stack alike; senders
           re-issue them through the new stack. *)
        if g = !gen && not !blocked then begin
          Hashtbl.remove undelivered id;
          Stack.indicate stack Service.r_abcast
            (Repl_iface.R_deliver { origin = id.Msg.origin; payload })
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Repl_iface.R_broadcast { size; payload } -> r_broadcast ~size payload
            | Repl_iface.Change_abcast protocol ->
              abcast ~size:header_size (M_switch { gen = !gen; protocol })
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.abcast then
              match p with
              | Abcast_iface.Deliver { origin = _; payload = M_data { gen = g; id; size = _; payload } } ->
                on_data g id payload
              | Abcast_iface.Deliver { origin = _; payload = M_switch { gen = g; protocol } } ->
                on_switch g protocol
              | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.r_abcast) ~roles:[ "member" ]
    ~kinds:[ Spec.kind ~role:"member" "maestro.switch" ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "maestro.switch") "switching";
        Spec.t "switching" (Spec.Recv "maestro.switch") "idle";
      ]
    ~obligations:[ Spec.Total_order; Spec.Exactly_once; Spec.Validity ]
      (* blocks sends while the substrate is torn down and rebuilt, then
         re-issues what the old stack never delivered *)
    ~capabilities:
      [
        Spec.Quiesce_before_switch;
        Spec.Reissue_undelivered;
        Spec.Generation_filter;
      ]
    ()

let register ?config system =
  let registry = System.registry system in
  Registry.register registry ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast ] ~spec
    (fun stack -> install ?config ~registry stack)
