(** Executable model of Graceful Adaptation [6] (§4.2).

    Each adaptable module hosts alternative implementations
    (adaptation-aware components, AACs); a component adaptor (CA)
    coordinates switching between them in three coordinated steps:

    + {b prepare}: the initiator asks every stack to instantiate the
      new AAC (not yet activated); a barrier waits for {e all} stacks;
    + {b deactivate}: the cut-over point is agreed by all stacks (here,
      as in [6], coordination runs in parallel with the message flow);
    + {b activate}: each stack deactivates the old AAC, activates the
      new one, re-issues its in-flight messages, and acks back;
      a final barrier ends the adaptation.

    Two contrasts with the paper's [Repl] are modelled faithfully:

    - the {e barrier rounds}: the switch spans two extra round-trips
      plus the straggliest stack, so the replacement window is longer;
    - the {e service restriction}: an AAC may only use the services its
      host module already has bound (it is prepared with
      [Registry.create_only], never creating new providers). A switch
      to a protocol with unmet requirements is *refused* — observable
      via {!refused} — where [Repl] would simply build the missing
      substrate (Algorithm 1 lines 22–28).

    Provides [Service.r_abcast] with the [Repl_iface] payloads. *)

open Dpu_kernel

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | G_data of { gen : int; id : Msg.id; size : int; payload : Payload.t }
  | G_point of { gen : int; protocol : string }
  | C_prepare of { gen : int; protocol : string; initiator : int }
  | C_prepared of { gen : int; from : int; ok : bool }
  | C_activated of { gen : int; from : int }

type config = { control_resend_ms : float  (** barrier ack resend period *) }

val default_config : config

val protocol_name : string
(** ["graceful.ca"] *)

val install : ?config:config -> registry:Registry.t -> n:int -> Stack.t -> Stack.module_

val register : ?config:config -> System.t -> unit

val refused : Stack.t -> int
(** Number of adaptation requests this stack refused because the new
    component required services outside the module's requirements. *)

val switch_duration_ms : Stack.t -> float
(** Duration of the last completed adaptation as seen by its initiator
    (prepare request to final ack); 0 if none completed here. *)
