(** Executable model of the Maestro approach to DPU [20] (§4.2).

    Maestro replaces *whole protocol stacks*: to replace a single
    protocol, every machine installs a stack switch ([SS]) module that
    (1) finalises the local old stack and (2) starts a new stack. Our
    model captures the two properties the paper contrasts against:

    - the application is {e blocked} during the replacement (calls are
      queued from the moment the switch message is delivered until the
      new stack is up);
    - the whole stack below the switch module — UDP, RP2P, FD,
      consensus, reliable broadcast, ABcast — is torn down and rebuilt,
      not just the ABcast module.

    The switch message itself is atomically broadcast through the old
    stack, so all stacks cut over at the same point of the total order;
    a drain period then lets slow stacks receive it before anyone
    destroys the protocols it travelled through (this stands in for the
    view-synchrony machinery Ensemble uses). Deliveries ordered after
    the cut are discarded everywhere and re-issued through the new
    stack, preserving the ABcast properties — at the cost of the
    blocking window the experiments measure.

    Provides [Service.r_abcast] with the [Repl_iface] payloads, so the
    experiment harness can drive it exactly like the paper's [Repl]. *)

open Dpu_kernel

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | M_data of { gen : int; id : Msg.id; size : int; payload : Payload.t }
  | M_switch of { gen : int; protocol : string }

type config = {
  drain_ms : float;
      (** grace period between delivering the switch message and
          tearing the old stack down *)
  startup_ms : float;  (** new-stack warm-up before unblocking *)
}

val default_config : config
(** drain 150 ms, startup 20 ms. *)

val protocol_name : string
(** ["maestro.ss"] *)

val install : ?config:config -> registry:Registry.t -> Stack.t -> Stack.module_

val register : ?config:config -> System.t -> unit

val blocked_ms : Stack.t -> float
(** Total virtual time this stack's application was blocked. *)

val reissued : Stack.t -> int
(** Messages that had to be re-broadcast through the new stack. *)
