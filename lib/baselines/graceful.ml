open Dpu_kernel
module Abcast_iface = Dpu_protocols.Abcast_iface
module Repl_iface = Dpu_protocols.Repl_iface
module Rp2p = Dpu_protocols.Rp2p

type Payload.t +=
  | G_data of { gen : int; id : Msg.id; size : int; payload : Payload.t }
  | G_point of { gen : int; protocol : string }  (* cut-over marker, ordered *)
  (* Control messages over rp2p. *)
  | C_prepare of { gen : int; protocol : string; initiator : int }
  | C_prepared of { gen : int; from : int; ok : bool }
  | C_activated of { gen : int; from : int }

let () =
  Payload.register_printer (function
    | G_data { gen; id; _ } ->
      Some (Printf.sprintf "graceful.data gen=%d %s" gen (Msg.id_to_string id))
    | G_point { gen; protocol } -> Some (Printf.sprintf "graceful.point gen=%d %s" gen protocol)
    | C_prepare { gen; protocol; initiator } ->
      Some (Printf.sprintf "graceful.prepare gen=%d %s from=%d" gen protocol initiator)
    | C_prepared { gen; from; ok } ->
      Some (Printf.sprintf "graceful.prepared gen=%d from=%d ok=%b" gen from ok)
    | C_activated { gen; from } ->
      Some (Printf.sprintf "graceful.activated gen=%d from=%d" gen from)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"graceful"
    ~encode:(function
      | G_data { gen; id; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w gen;
            Msg.write_id w id;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | G_point { gen; protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w gen;
            Wire.W.str w protocol)
      | C_prepare { gen; protocol; initiator } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w gen;
            Wire.W.str w protocol;
            Wire.W.int w initiator)
      | C_prepared { gen; from; ok } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.int w gen;
            Wire.W.int w from;
            Wire.W.bool w ok)
      | C_activated { gen; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 4;
            Wire.W.int w gen;
            Wire.W.int w from)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let gen = Wire.R.int r in
        let id = Msg.read_id r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        G_data { gen; id; size; payload }
      | 1 ->
        let gen = Wire.R.int r in
        let protocol = Wire.R.str r in
        G_point { gen; protocol }
      | 2 ->
        let gen = Wire.R.int r in
        let protocol = Wire.R.str r in
        let initiator = Wire.R.int r in
        C_prepare { gen; protocol; initiator }
      | 3 ->
        let gen = Wire.R.int r in
        let from = Wire.R.int r in
        let ok = Wire.R.bool r in
        C_prepared { gen; from; ok }
      | 4 ->
        let gen = Wire.R.int r in
        let from = Wire.R.int r in
        C_activated { gen; from }
      | c -> raise (Wire.Error (Printf.sprintf "graceful: bad case %d" c)))

type config = { control_resend_ms : float }

let default_config = { control_resend_ms = 100.0 }

let protocol_name = "graceful.ca"

let header_size = 48
let control_size = 64

let k_refused = "graceful.refused"
let k_switch_us = "graceful.switch_us"

let refused stack = Stack.get_env stack k_refused ~default:0

let switch_duration_ms stack =
  float_of_int (Stack.get_env stack k_switch_us ~default:0) /. 1000.0

let install ?(config = default_config) ~registry ~n stack =
  ignore config;
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast; Service.rp2p ]
    (fun stack _self ->
      let gen = ref 0 in
      let next_local = ref 0 in
      let undelivered : (Msg.id, int * Payload.t) Hashtbl.t = Hashtbl.create 64 in
      let prepared : Stack.module_ option ref = ref None in
      (* Initiator-side barrier state. *)
      let prepare_acks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let activate_acks : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      let initiating = ref None in  (* protocol being adapted to *)
      let initiate_started = ref 0.0 in
      let point_sent = ref false in
      let now () = Stack.now stack in
      let abcast ~size payload =
        Stack.call stack Service.abcast (Abcast_iface.Broadcast { size; payload })
      in
      let ctl ~dst payload =
        Stack.call stack Service.rp2p (Rp2p.Send { dst; size = control_size; payload })
      in
      let ctl_all payload =
        for dst = 0 to n - 1 do
          ctl ~dst payload
        done
      in
      let send_data id size payload =
        abcast ~size:(size + header_size) (G_data { gen = !gen; id; size; payload })
      in
      let r_broadcast ~size payload =
        let id = { Msg.origin = me; seq = !next_local } in
        incr next_local;
        Hashtbl.replace undelivered id (size, payload);
        (* Message flow continues during the whole adaptation. *)
        send_data id size payload
      in
      (* Step 1 at every stack: instantiate the new AAC without
         activating it. The AAC may only use services the module
         already has — Registry.create_only never builds providers. *)
      let on_prepare g protocol initiator =
        if g = !gen && !prepared = None then begin
          (* The factory reads the generation at creation time, so the
             env must be bumped before the new AAC is instantiated —
             otherwise its wire traffic would collide with the active
             component's. *)
          Stack.set_env stack Abcast_iface.epoch_key (!gen + 1);
          let m = Registry.create_only registry stack ~name:protocol in
          let unmet =
            List.filter
              (fun svc -> Option.is_none (Stack.bound stack svc))
              (Stack.module_requires m)
          in
          if unmet = [] then begin
            prepared := Some m;
            ctl ~dst:initiator (C_prepared { gen = g; from = me; ok = true })
          end
          else begin
            Stack.remove_module stack m;
            Stack.set_env stack Abcast_iface.epoch_key !gen;
            Stack.set_env stack k_refused (Stack.get_env stack k_refused ~default:0 + 1);
            Stack.app_event stack ~tag:"graceful.refused"
              ~data:
                (Printf.sprintf "%s requires %s" protocol
                   (String.concat "," (List.map Service.name unmet)));
            ctl ~dst:initiator (C_prepared { gen = g; from = me; ok = false })
          end
        end
      in
      (* Step 3 at every stack: the ordered cut-over marker arrived —
         deactivate the old AAC, activate the new one. *)
      let on_point g protocol =
        if g = !gen then begin
          match !prepared with
          | None -> ()  (* refused locally; initiator aborted anyway *)
          | Some m ->
            prepared := None;
            Stack.unbind stack Service.abcast;
            Stack.bind stack Service.abcast m;
            incr gen;
            Stack.app_event stack ~tag:"graceful.switch"
              ~data:(Printf.sprintf "gen=%d prot=%s" !gen protocol);
            Stack.indicate stack Service.r_abcast
              (Repl_iface.Protocol_changed { generation = !gen; protocol });
            let pending =
              (* dpu-lint: allow hashtbl-iter — folded messages are sorted by id below *)
              Hashtbl.fold (fun id v acc -> (id, v) :: acc) undelivered []
              |> List.sort (fun (a, _) (b, _) -> Msg.id_compare a b)
            in
            List.iter (fun (id, (size, payload)) -> send_data id size payload) pending;
            (match !initiating with
            | Some _ -> ()
            | None -> ());
            ctl_all (C_activated { gen = g; from = me })
        end
      in
      let on_data g id payload =
        if g = !gen then begin
          Hashtbl.remove undelivered id;
          Stack.indicate stack Service.r_abcast
            (Repl_iface.R_deliver { origin = id.Msg.origin; payload })
        end
      in
      (* Initiator-side barrier bookkeeping. *)
      let on_prepared g from ok =
        match !initiating with
        | Some protocol when g = !gen ->
          if not ok then begin
            (* One stack refused: abort the adaptation. *)
            initiating := None;
            Hashtbl.reset prepare_acks;
            Stack.app_event stack ~tag:"graceful.aborted" ~data:protocol
          end
          else begin
            Hashtbl.replace prepare_acks from ();
            if Hashtbl.length prepare_acks = n && not !point_sent then begin
              point_sent := true;
              abcast ~size:header_size (G_point { gen = g; protocol })
            end
          end
        | Some _ | None -> ()
      in
      let on_activated g from =
        if !initiating <> None && g + 1 = !gen then begin
          Hashtbl.replace activate_acks from ();
          if Hashtbl.length activate_acks = n then begin
            initiating := None;
            point_sent := false;
            Hashtbl.reset prepare_acks;
            Hashtbl.reset activate_acks;
            let us = int_of_float ((now () -. !initiate_started) *. 1000.0) in
            Stack.set_env stack k_switch_us us
          end
        end
      in
      let change protocol =
        if !initiating = None then begin
          initiating := Some protocol;
          initiate_started := now ();
          point_sent := false;
          Hashtbl.reset prepare_acks;
          Hashtbl.reset activate_acks;
          ctl_all (C_prepare { gen = !gen; protocol; initiator = me })
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Repl_iface.R_broadcast { size; payload } -> r_broadcast ~size payload
            | Repl_iface.Change_abcast protocol -> change protocol
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.abcast then
              match p with
              | Abcast_iface.Deliver { origin = _; payload = G_data { gen = g; id; size = _; payload } } ->
                on_data g id payload
              | Abcast_iface.Deliver { origin = _; payload = G_point { gen = g; protocol } } ->
                on_point g protocol
              | _ -> ()
            else if Service.equal svc Service.rp2p then
              match p with
              | Rp2p.Recv { src = _; payload = C_prepare { gen = g; protocol; initiator } } ->
                on_prepare g protocol initiator
              | Rp2p.Recv { src = _; payload = C_prepared { gen = g; from; ok } } ->
                on_prepared g from ok
              | Rp2p.Recv { src = _; payload = C_activated { gen = g; from } } ->
                on_activated g from
              | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.r_abcast) ~roles:[ "member" ]
    ~kinds:
      [
        Spec.kind ~role:"member" "graceful.prepare";
        Spec.kind ~role:"member" "graceful.point";
      ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "graceful.prepare") "preparing";
        Spec.t "preparing" (Spec.Recv "graceful.prepare") "prepared";
        Spec.t "prepared" (Spec.Emit "graceful.point") "cutting";
        Spec.t "cutting" (Spec.Recv "graceful.point") "idle";
      ]
    ~obligations:[ Spec.Total_order; Spec.Exactly_once; Spec.Validity ]
      (* ordered G-point cut-over; undelivered payloads re-issued on the
         prepared alternative, deliveries filtered by generation *)
    ~capabilities:[ Spec.Reissue_undelivered; Spec.Generation_filter ] ()

let register ?config system =
  let registry = System.registry system in
  let n = System.n system in
  Registry.register registry ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast; Service.rp2p ] ~spec
    (fun stack -> install ?config ~registry ~n stack)
