(** The TRANSPORT signature: what protocol code may know about the
    network.

    A transport moves opaque payloads between numbered nodes
    [0 .. n-1] with datagram semantics: messages may be lost,
    duplicated and reordered; they are never corrupted. The simulator
    backend ({!Sim_backend.transport}) wraps {!Dpu_net.Datagram}; the
    live backend ([Dpu_live.Udp_transport]) wraps one UDP socket per
    OS process and a wire codec ({!Dpu_kernel.Payload.encode}).

    In a simulated deployment one transport value carries all [n]
    endpoints; in a live deployment each process holds a transport
    that can only send from — and install the handler of — its own
    node. *)

type counters = {
  sent : int;  (** messages accepted from senders *)
  delivered : int;  (** messages handed to a receive handler *)
  dropped : int;
      (** messages that did not reach a handler: loss, filters,
          crashed or partitioned destinations, handler-less arrivals,
          undecodable frames *)
  bytes : int;  (** wire bytes accepted from senders *)
}

type batch_counters = {
  batches_sent : int;
      (** batch frames put on the wire (throughput mode only; backends
          without egress batching report zero) *)
  batched_msgs : int;
      (** messages those frames carried — [batched_msgs /
          batches_sent] is the mean egress batch size *)
}

val zero_batches : batch_counters

type 'a t = {
  n : int;  (** number of nodes *)
  send : src:int -> dst:int -> size_bytes:int -> 'a -> unit;
      (** queue a datagram; [size_bytes] is the modelled (simulator)
          or accounted (live) payload size *)
  set_handler : node:int -> (src:int -> 'a -> unit) -> unit;
      (** install the receive callback of [node], replacing any
          previous one. Live backends only accept their own node. *)
  counters : unit -> counters;
  batches : unit -> batch_counters;
      (** egress batching statistics; {!zero_batches} when the backend
          does not batch *)
}

val n : 'a t -> int

val send : 'a t -> src:int -> dst:int -> size_bytes:int -> 'a -> unit

val set_handler : 'a t -> node:int -> (src:int -> 'a -> unit) -> unit

val counters : 'a t -> counters

val batches : 'a t -> batch_counters
