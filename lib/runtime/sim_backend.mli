(** The deterministic backend: {!Clock} over the discrete-event
    simulator and {!Transport} over the simulated datagram network.

    This is a thin adapter — every call forwards 1:1 to the wrapped
    [Sim.t]/[Datagram.t], so the event order (and therefore every
    figure and sweep digest) is bit-identical to driving the simulator
    directly. *)

val clock : Dpu_engine.Sim.t -> Clock.t

val transport : 'a Dpu_net.Datagram.t -> 'a Transport.t

val runtime : Dpu_engine.Sim.t -> 'a Dpu_net.Datagram.t -> 'a Runtime.t
(** Bundle both with the simulator's root PRNG. *)
