(** The deterministic backend: {!Clock} over the discrete-event
    simulator and {!Transport} over the simulated datagram network.

    This is a thin adapter — every call forwards 1:1 to the wrapped
    [Sim.t]/[Datagram.t], so the event order (and therefore every
    figure and sweep digest) is bit-identical to driving the simulator
    directly.

    [group] tags the clock with a [Sim.group]: zero-delay defers then
    ride the group's ready queue instead of the global heap, which is
    how a multi-group fabric keeps each group's immediate work in its
    own FIFO. Omitting [group] (every legacy caller) is byte-identical
    to the pre-group behaviour. *)

val clock : ?group:Dpu_engine.Sim.group -> Dpu_engine.Sim.t -> Clock.t

val transport : 'a Dpu_net.Datagram.t -> 'a Transport.t

val runtime :
  ?group:Dpu_engine.Sim.group ->
  ?rng:Dpu_engine.Rng.t ->
  Dpu_engine.Sim.t ->
  'a Dpu_net.Datagram.t ->
  'a Runtime.t
(** Bundle both with [rng] (default: the simulator's root PRNG — a
    fabric passes each group its own [Rng.split_key] substream). *)
