type 'a t = {
  clock : Clock.t;
  transport : 'a Transport.t;
  rng : Dpu_engine.Rng.t;
}

let create ~clock ~transport ~rng = { clock; transport; rng }

let clock t = t.clock

let transport t = t.transport

let rng t = t.rng
