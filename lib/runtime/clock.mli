(** The CLOCK signature: what protocol code may know about time.

    A clock tells the current time in milliseconds (virtual for the
    simulator backend, monotonic-wall for the live backend), schedules
    one-shot and periodic callbacks, and cancels them. Everything under
    [lib/kernel], [lib/core] and [lib/protocols] depends on this record
    — never on [Dpu_engine.Sim] directly — so the same protocol stack
    runs unmodified inside the discrete-event simulator and over real
    sockets (see [Dpu_live]).

    Implementations must preserve two ordering guarantees the
    simulator gives and the protocols rely on:

    - callbacks scheduled for the same instant fire in scheduling
      order;
    - [now] never goes backwards while a callback runs. *)

type timer
(** Cancellation handle for a scheduled callback. *)

type t = {
  now : unit -> float;  (** current time, milliseconds *)
  defer : delay:float -> (unit -> unit) -> unit;
      (** fire-and-forget one-shot: no handle is allocated, the
          callback cannot be cancelled. This is the dispatch hot path
          ([Stack.call]/[Stack.indicate] hop delays). *)
  schedule_impl : delay:float -> (unit -> unit) -> timer;
      (** use {!schedule}, which wraps the cancellation contract *)
  every_impl : period:float -> (unit -> unit) -> timer;
      (** use {!every} *)
}

val make_timer : cancel:(unit -> unit) -> timer
(** For backend implementors: a timer whose [cancel] runs the given
    hook exactly once. *)

val now : t -> float

val defer : t -> delay:float -> (unit -> unit) -> unit

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** One-shot callback after [max delay 0] ms; cancellable. *)

val every : t -> period:float -> (unit -> unit) -> timer
(** Periodic callback, first firing one period from now, until the
    timer is cancelled. *)

val cancel : timer -> unit
(** Cancel a pending timer. Idempotent; cancelling a fired one-shot
    timer is a no-op. *)

val is_cancelled : timer -> bool
(** Whether {!cancel} was called on this timer. *)
