type counters = { sent : int; delivered : int; dropped : int; bytes : int }

type batch_counters = { batches_sent : int; batched_msgs : int }

let zero_batches = { batches_sent = 0; batched_msgs = 0 }

type 'a t = {
  n : int;
  send : src:int -> dst:int -> size_bytes:int -> 'a -> unit;
  set_handler : node:int -> (src:int -> 'a -> unit) -> unit;
  counters : unit -> counters;
  batches : unit -> batch_counters;
}

let n t = t.n

let send t ~src ~dst ~size_bytes payload = t.send ~src ~dst ~size_bytes payload

let set_handler t ~node f = t.set_handler ~node f

let counters t = t.counters ()

let batches t = t.batches ()
