module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram

let clock ?group sim =
  let sched =
    match group with
    | None -> fun ~delay fn -> Sim.schedule sim ~delay fn
    | Some g -> fun ~delay fn -> Sim.schedule_group sim ~group:g ~delay fn
  in
  {
    Clock.now = (fun () -> Sim.now sim);
    defer = (fun ~delay fn -> ignore (sched ~delay fn : Sim.handle));
    schedule_impl =
      (fun ~delay fn ->
        let h = sched ~delay fn in
        Clock.make_timer ~cancel:(fun () -> Sim.cancel sim h));
    every_impl =
      (fun ~period fn ->
        let h = Sim.every sim ~period fn in
        Clock.make_timer ~cancel:(fun () -> Sim.cancel sim h));
  }

let transport net =
  let module D = Datagram in
  {
    Transport.n = D.size net;
    send = (fun ~src ~dst ~size_bytes payload -> D.send net ~src ~dst ~size_bytes payload);
    set_handler = (fun ~node f -> D.set_handler net ~node f);
    counters =
      (fun () ->
        let c = D.counters net in
        {
          Transport.sent = c.D.sent;
          delivered = c.D.delivered;
          dropped = c.D.lost + c.D.filtered + c.D.blocked;
          bytes = c.D.bytes;
        });
    batches = (fun () -> Transport.zero_batches);
  }

let runtime ?group ?rng sim net =
  let rng = match rng with Some r -> r | None -> Sim.rng sim in
  Runtime.create ~clock:(clock ?group sim) ~transport:(transport net) ~rng
