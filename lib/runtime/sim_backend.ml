module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram

let clock sim =
  {
    Clock.now = (fun () -> Sim.now sim);
    defer = (fun ~delay fn -> ignore (Sim.schedule sim ~delay fn : Sim.handle));
    schedule_impl =
      (fun ~delay fn ->
        let h = Sim.schedule sim ~delay fn in
        Clock.make_timer ~cancel:(fun () -> Sim.cancel h));
    every_impl =
      (fun ~period fn ->
        let h = Sim.every sim ~period fn in
        Clock.make_timer ~cancel:(fun () -> Sim.cancel h));
  }

let transport net =
  let module D = Datagram in
  {
    Transport.n = D.size net;
    send = (fun ~src ~dst ~size_bytes payload -> D.send net ~src ~dst ~size_bytes payload);
    set_handler = (fun ~node f -> D.set_handler net ~node f);
    counters =
      (fun () ->
        let c = D.counters net in
        {
          Transport.sent = c.D.sent;
          delivered = c.D.delivered;
          dropped = c.D.lost + c.D.filtered + c.D.blocked;
          bytes = c.D.bytes;
        });
    batches = (fun () -> Transport.zero_batches);
  }

let runtime sim net =
  Runtime.create ~clock:(clock sim) ~transport:(transport net) ~rng:(Sim.rng sim)
