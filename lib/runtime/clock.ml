type timer = { mutable cancelled : bool; mutable on_cancel : unit -> unit }

type t = {
  now : unit -> float;
  defer : delay:float -> (unit -> unit) -> unit;
  schedule_impl : delay:float -> (unit -> unit) -> timer;
  every_impl : period:float -> (unit -> unit) -> timer;
}

let make_timer ~cancel = { cancelled = false; on_cancel = cancel }

let now t = t.now ()

let defer t ~delay fn = t.defer ~delay fn

let schedule t ~delay fn = t.schedule_impl ~delay fn

let every t ~period fn =
  assert (period > 0.0);
  t.every_impl ~period fn

let cancel tm =
  if not tm.cancelled then begin
    tm.cancelled <- true;
    let hook = tm.on_cancel in
    tm.on_cancel <- ignore;
    hook ()
  end

let is_cancelled tm = tm.cancelled
