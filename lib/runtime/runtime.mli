(** A runtime bundles the three ambient capabilities protocol stacks
    need — a {!Clock}, a {!Transport} and a seeded PRNG — behind
    backend-neutral records. [Dpu_kernel.System] consumes one of
    these; {!Sim_backend} builds the deterministic simulator instance
    and [Dpu_live.*] builds the wall-clock / UDP instance. *)

type 'a t = {
  clock : Clock.t;
  transport : 'a Transport.t;
  rng : Dpu_engine.Rng.t;
      (** the root PRNG; subsystems should [Rng.split] it *)
}

val create :
  clock:Clock.t -> transport:'a Transport.t -> rng:Dpu_engine.Rng.t -> 'a t

val clock : 'a t -> Clock.t

val transport : 'a t -> 'a Transport.t

val rng : 'a t -> Dpu_engine.Rng.t
