type bounds = { nodes : int; instances : int; changes : int; max_states : int }

let default_bounds = { nodes = 2; instances = 2; changes = 1; max_states = 4_000_000 }

type variant =
  | Sound
  | No_prefix_defer
  | No_stale_discard
  | No_reissue

let variant_name = function
  | Sound -> "sound (as shipped)"
  | No_prefix_defer -> "switch applied without waiting for the decided prefix"
  | No_stale_discard -> "stale-generation decisions accepted"
  | No_reissue -> "no re-issue of undecided proposals after a switch"

type node = {
  gen : int;
  accepted : (int * int) list;  (* instance -> accepted value, sorted by k *)
  prefix : int;  (* first instance without an accepted decision *)
  own : (int * int) list;  (* own proposals: instance -> gen last proposed under *)
  pending_switch : int option;
  has_request : bool;
  learned : (int * int) list;  (* (k, gen) decisions already processed *)
}

type state = {
  proposals : (int * int * int * bool) list;  (* k, gen, proposer, tagged *)
  decisions : (int * int * int * bool) list;  (* k, gen, value, tagged *)
  nodes : node list;
  changes_left : int;
}

type result =
  | Verified of { states : int; quiescent : int }
  | Violation of { property : string; trace : string list; states : int }
  | Bound_exceeded of { states : int }

let pp_result ppf = function
  | Verified { states; quiescent } ->
    Format.fprintf ppf "verified: %d states explored (%d quiescent), all properties hold"
      states quiescent
  | Violation { property; trace; states } ->
    Format.fprintf ppf "VIOLATION of %s after %d states:@\n" property states;
    List.iteri (fun i a -> Format.fprintf ppf "  %2d. %s@\n" (i + 1) a) trace
  | Bound_exceeded { states } ->
    Format.fprintf ppf "exploration bound exceeded at %d states" states

let rec set_nth l i v =
  match (l, i) with
  | _ :: rest, 0 -> v :: rest
  | x :: rest, i -> x :: set_nth rest (i - 1) v
  | [], _ -> invalid_arg "set_nth"

(* dpu-lint: allow poly-compare — model states are finite int tuples; the polymorphic order is total and stable on them *)
let sorted l = List.sort_uniq compare l

(* Advance the accepted prefix and, if a pending switch is now covered,
   apply it: bump the generation, clear the request, re-issue own
   undecided proposals beyond the switch point under the new
   generation. Returns the updated node plus new proposals. *)
let rec settle variant node extra_proposals me =
  let rec prefix_of p accepted =
    if List.mem_assoc p accepted then prefix_of (p + 1) accepted else p
  in
  let node = { node with prefix = prefix_of node.prefix node.accepted } in
  match node.pending_switch with
  | Some ks
    when node.prefix > ks
         || variant = No_prefix_defer (* apply immediately, prefix or not *) ->
    let gen' = node.gen + 1 in
    let reissues =
      if variant = No_reissue then []
      else
        List.filter_map
          (fun (k, _g) ->
            if k > ks && not (List.mem_assoc k node.accepted) then
              Some (k, gen', me, false)
            else None)
          node.own
    in
    let own' =
      List.map
        (fun (k, g) ->
          if k > ks && not (List.mem_assoc k node.accepted) then (k, gen') else (k, g))
        node.own
    in
    settle variant
      { node with gen = gen'; pending_switch = None; has_request = false; own = own' }
      (reissues @ extra_proposals) me
  | Some _ | None -> (node, extra_proposals)

let successors variant bounds st =
  let acc = ref [] in
  let add label st' = acc := (label, st') :: !acc in
  (* Client proposes its next undecided instance (sequential contract:
     only after accepting everything before it, and not if someone
     else's proposal already settled it). *)
  List.iteri
    (fun i node ->
      if node.prefix < bounds.instances && not (List.mem_assoc node.prefix node.own)
      then begin
        let k = node.prefix in
        let tagged = node.has_request in
        let node' = { node with own = sorted ((k, node.gen) :: node.own) } in
        add
          (Printf.sprintf "node %d proposes instance %d under gen %d%s" i k node.gen
             (if tagged then " [change tag]" else ""))
          {
            st with
            nodes = set_nth st.nodes i node';
            proposals = sorted ((k, node.gen, i, tagged) :: st.proposals);
          }
      end)
    st.nodes;
  (* A change request (gossip collapsed: all layers learn it at once —
     the interesting interleavings are in decisions and learning). *)
  if st.changes_left > 0 then
    add "change requested (gossiped to every stack)"
      {
        st with
        changes_left = st.changes_left - 1;
        nodes = List.map (fun node -> { node with has_request = true }) st.nodes;
      };
  (* An implementation decides an instance: one decision per (k, gen),
     choosing any proposal made under that generation. *)
  List.iter
    (fun (k, g, proposer, tagged) ->
      if not (List.exists (fun (k', g', _, _) -> k' = k && g' = g) st.decisions) then
        add
          (Printf.sprintf "gen-%d implementation decides instance %d := node %d's proposal%s"
             g k proposer
             (if tagged then " [change tag]" else ""))
          { st with decisions = sorted ((k, g, proposer, tagged) :: st.decisions) })
    st.proposals;
  (* A node learns a decision (needs the generation's module: g <= gen). *)
  List.iteri
    (fun i node ->
      List.iter
        (fun (k, g, v, tagged) ->
          if g <= node.gen && not (List.mem (k, g) node.learned) then begin
            let node = { node with learned = sorted ((k, g) :: node.learned) } in
            let accept =
              (match variant with
              | No_stale_discard -> g <= node.gen
              | Sound | No_prefix_defer | No_reissue -> g = node.gen)
              && not (List.mem_assoc k node.accepted)
            in
            let node =
              if accept then
                {
                  node with
                  accepted = sorted ((k, v) :: node.accepted);
                  pending_switch =
                    (match node.pending_switch with
                    | Some _ as s -> s
                    | None -> if tagged then Some k else None);
                }
              else node
            in
            let node', reissues = settle variant node [] i in
            add
              (Printf.sprintf "node %d learns gen-%d decision of instance %d%s" i g k
                 (if accept then "" else " (discarded)"))
              {
                st with
                nodes = set_nth st.nodes i node';
                proposals = sorted (reissues @ st.proposals);
              }
          end)
        st.decisions)
    st.nodes;
  !acc

let safety st =
  (* Decision agreement: no two nodes accept different values for the
     same instance. *)
  let disagreement =
    List.exists
      (fun (node_a : node) ->
        List.exists
          (fun (node_b : node) ->
            List.exists
              (fun (k, v) ->
                match List.assoc_opt k node_b.accepted with
                | Some v' -> v <> v'
                | None -> false)
              node_a.accepted)
          st.nodes)
      st.nodes
  in
  if disagreement then Some "decision agreement (two stacks accepted different values)"
  else None

let liveness bounds st =
  let complete = List.for_all (fun node -> node.prefix = bounds.instances) st.nodes in
  if not complete then Some "completeness (a stack is stuck before the end of the stream)"
  else begin
    let gens = List.map (fun node -> node.gen) st.nodes in
    match gens with
    | g :: rest when List.for_all (fun g' -> g' = g) rest -> None
    | _ -> Some "switch agreement (stacks ended in different generations)"
  end

exception Found of string * string list

let check ?(variant = Sound) ?(bounds = default_bounds) () =
  let initial =
    {
      proposals = [];
      decisions = [];
      nodes =
        List.init bounds.nodes (fun _ ->
            {
              gen = 0;
              accepted = [];
              prefix = 0;
              own = [];
              pending_switch = None;
              has_request = false;
              learned = [];
            });
      changes_left = bounds.changes;
    }
  in
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 65_536 in
  let states = ref 0 in
  let quiescent_count = ref 0 in
  let exceeded = ref false in
  let rec dfs st path =
    if !exceeded || Hashtbl.mem visited st then ()
    else begin
      Hashtbl.replace visited st ();
      incr states;
      if !states > bounds.max_states then exceeded := true
      else begin
        (match safety st with
        | Some prop -> raise (Found (prop, List.rev path))
        | None -> ());
        let succs = successors variant bounds st in
        if succs = [] then begin
          incr quiescent_count;
          match liveness bounds st with
          | Some prop -> raise (Found (prop, List.rev path))
          | None -> ()
        end;
        List.iter (fun (label, st') -> dfs st' (label :: path)) succs
      end
    end
  in
  try
    dfs initial [];
    if !exceeded then Bound_exceeded { states = !states }
    else Verified { states = !states; quiescent = !quiescent_count }
  with Found (property, trace) -> Violation { property; trace; states = !states }
