type mutation =
  | Faithful
  | Fixed_line10
  | No_sn_check
  | No_reissue
  | No_undelivered_removal

let mutation_name = function
  | Faithful -> "faithful (as printed in the paper)"
  | Fixed_line10 -> "fixed: line 10 checks sn = seqNumber"
  | No_sn_check -> "line 18 deleted (no generation check)"
  | No_reissue -> "lines 15-16 deleted (no re-issue)"
  | No_undelivered_removal -> "lines 19-20 deleted (no undelivered removal)"

type bounds = {
  nodes : int;
  sends : int;
  changes : int;
  crashes : int;
  max_states : int;
}

let default_bounds = { nodes = 2; sends = 2; changes = 1; crashes = 0; max_states = 2_000_000 }

(* An entry of a generation's agreed sequence: ABcast(nil, sn, m) or
   ABcast(newABcast, sn, prot). The [prot] argument is irrelevant to
   the ordering argument (self-replacement), so it is omitted. *)
type entry =
  | Data of int * int  (* sn at send, message id *)
  | New of int  (* sn at send *)

type node_state = {
  sn : int;
  undelivered : int list;  (* sorted message ids *)
  cursors : int list;  (* per generation: how much of its sequence we consumed *)
  out : int list;  (* rAdelivered ids, in delivery order *)
  crashed : bool;
}

type state = {
  streams : entry list list;  (* per generation: agreed order (forward) *)
  pending : entry list list;  (* per generation: broadcast, not yet ordered *)
  nodes : node_state list;
  senders : (int * int) list;  (* msg id -> sending node *)
  sends_left : int;
  changes_left : int;
  crashes_left : int;
  next_id : int;
}

type action =
  | Send of { node : int; msg : int }
  | Change of { node : int }
  | Order of { generation : int; what : string }
  | Deliver of { node : int; generation : int; what : string }
  | Crash of { node : int }

let entry_to_string = function
  | Data (sn, m) -> Printf.sprintf "(nil, sn=%d, m%d)" sn m
  | New sn -> Printf.sprintf "(newABcast, sn=%d)" sn

let pp_action ppf = function
  | Send { node; msg } -> Format.fprintf ppf "node %d rABcasts m%d" node msg
  | Change { node } -> Format.fprintf ppf "node %d calls changeABcast" node
  | Order { generation; what } ->
    Format.fprintf ppf "generation-%d protocol orders %s" generation what
  | Deliver { node; generation; what } ->
    Format.fprintf ppf "node %d Adelivers %s from generation %d" node what generation
  | Crash { node } -> Format.fprintf ppf "node %d crashes" node

type result =
  | Verified of { states : int; quiescent : int }
  | Violation of { property : string; trace : action list; states : int }
  | Bound_exceeded of { states : int }

let pp_result ppf = function
  | Verified { states; quiescent } ->
    Format.fprintf ppf "verified: %d states explored (%d quiescent), all properties hold"
      states quiescent
  | Violation { property; trace; states } ->
    Format.fprintf ppf "VIOLATION of %s after %d states:@\n" property states;
    List.iteri (fun i a -> Format.fprintf ppf "  %2d. %a@\n" (i + 1) pp_action a) trace
  | Bound_exceeded { states } ->
    Format.fprintf ppf "exploration bound exceeded at %d states" states

(* ------------------------------------------------------------------ *)
(* Transition function                                                *)
(* ------------------------------------------------------------------ *)

let rec set_nth l i v =
  match (l, i) with
  | _ :: rest, 0 -> v :: rest
  | x :: rest, i -> x :: set_nth rest (i - 1) v
  | [], _ -> invalid_arg "set_nth"

let nth = List.nth

(* dpu-lint: allow poly-compare — model states are finite int/string tuples; the polymorphic order is total and stable on them *)
let insert_sorted x l = List.sort_uniq compare (x :: l)

(* Apply one entry at one node per Algorithm 1 lines 10-21. *)
let deliver_entry mutation node entry n_gens =
  match entry with
  | Data (sn, m) ->
    let matches = sn = node.sn in
    let deliver = if mutation = No_sn_check then true else matches in
    if deliver then begin
      let undelivered =
        if mutation = No_undelivered_removal then node.undelivered
        else List.filter (fun x -> x <> m) node.undelivered
      in
      ({ node with undelivered; out = node.out @ [ m ] }, [])
    end
    else (node, [])
  | New sn ->
    (* The paper's line 10 applies every (newABcast, sn, prot)
       delivery unconditionally. With two overlapping change requests
       the second one is ordered in the OLD generation's stream, and
       the resulting switch point is not synchronised with the stream
       it switches away from — the [Fixed_line10] variant instead
       discards a change whose generation tag is stale, exactly like
       line 18 does for data. *)
    if mutation = Fixed_line10 && sn <> node.sn then (node, [])
    else begin
      let sn' = node.sn + 1 in
      let reissue =
        if mutation = No_reissue || sn' >= n_gens then []
        else List.map (fun m -> Data (sn', m)) node.undelivered
      in
      ({ node with sn = sn' }, reissue)
    end

let successors mutation bounds st =
  let n_gens = bounds.changes + 1 in
  let acc = ref [] in
  let add action st' = acc := (action, st') :: !acc in
  (* Client sends. *)
  if st.sends_left > 0 then
    List.iteri
      (fun i node ->
        if not node.crashed then begin
          let m = st.next_id in
          let gen = node.sn in
          let node' = { node with undelivered = insert_sorted m node.undelivered } in
          add
            (Send { node = i; msg = m })
            {
              st with
              nodes = set_nth st.nodes i node';
              pending = set_nth st.pending gen (Data (gen, m) :: nth st.pending gen);
              senders = (m, i) :: st.senders;
              sends_left = st.sends_left - 1;
              next_id = st.next_id + 1;
            }
        end)
      st.nodes;
  (* Change requests: ABcast(newABcast, sn) through the current protocol. *)
  if st.changes_left > 0 then
    List.iteri
      (fun i node ->
        if not node.crashed then
          let gen = node.sn in
          if gen < n_gens then
            add
              (Change { node = i })
              {
                st with
                pending = set_nth st.pending gen (New gen :: nth st.pending gen);
                changes_left = st.changes_left - 1;
              })
      st.nodes;
  (* The generation's ABcast orders one pending entry (any of them). *)
  List.iteri
    (fun g pend ->
      List.iter
        (fun entry ->
          let pend' = List.filter (fun e -> e <> entry) pend in
          add
            (Order { generation = g; what = entry_to_string entry })
            {
              st with
              pending = set_nth st.pending g pend';
              streams = set_nth st.streams g (nth st.streams g @ [ entry ]);
            })
        (* dpu-lint: allow poly-compare — pending entries are int/string tuples; the polymorphic order is total and stable on them *)
        (List.sort_uniq compare pend))
    st.pending;
  (* Deliveries: each node consumes each generation's sequence in
     order. A node can only deliver from generation [g] once its
     replacement module has created that generation's module, i.e. when
     [sn >= g] (line 13); older generations keep delivering (unbinding
     does not remove the module, §2). *)
  List.iteri
    (fun i node ->
      if not node.crashed then
        List.iteri
          (fun g cursor ->
            let stream = nth st.streams g in
            if g <= node.sn && cursor < List.length stream then begin
              let entry = nth stream cursor in
              let node', reissue = deliver_entry mutation node entry n_gens in
              let node' = { node' with cursors = set_nth node'.cursors g (cursor + 1) } in
              let pending =
                match reissue with
                | [] -> st.pending
                | entries ->
                  let gen = node'.sn in
                  set_nth st.pending gen (entries @ nth st.pending gen)
              in
              add
                (Deliver { node = i; generation = g; what = entry_to_string entry })
                { st with nodes = set_nth st.nodes i node'; pending }
            end)
          node.cursors)
    st.nodes;
  (* Crashes. *)
  if st.crashes_left > 0 then begin
    let live = List.length (List.filter (fun node -> not node.crashed) st.nodes) in
    if live > 1 then
      List.iteri
        (fun i node ->
          if not node.crashed then
            add
              (Crash { node = i })
              {
                st with
                nodes = set_nth st.nodes i { node with crashed = true };
                crashes_left = st.crashes_left - 1;
              })
        st.nodes
  end;
  !acc

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

(* Pairwise order consistency over common messages. *)
let order_consistent out_a out_b =
  let common_a = List.filter (fun m -> List.mem m out_b) out_a in
  let common_b = List.filter (fun m -> List.mem m out_a) out_b in
  common_a = common_b

(* Checked in every reachable state. *)
let safety st =
  let outs = List.map (fun node -> node.out) st.nodes in
  if List.exists has_dup outs then Some "uniform integrity (duplicate delivery)"
  else begin
    let rec pairwise = function
      | a :: rest ->
        if List.for_all (order_consistent a) rest then pairwise rest
        else Some "uniform total order (two stacks disagree)"
      | [] -> None
    in
    pairwise outs
  end

let quiescent st =
  st.sends_left = 0 && st.changes_left = 0
  && List.for_all (fun p -> p = []) st.pending
  && List.for_all
       (fun node ->
         node.crashed
         || List.for_all2
              (fun cursor stream -> cursor = List.length stream)
              node.cursors st.streams)
       st.nodes

(* Checked in quiescent states only ("eventually" has run out of
   events). *)
let liveness st =
  let live = List.filter (fun node -> not node.crashed) st.nodes in
  (* Validity: a message sent by a live node is delivered by it. *)
  let validity_violation =
    List.exists
      (fun (m, sender) ->
        match List.nth_opt st.nodes sender with
        | Some node -> (not node.crashed) && not (List.mem m node.out)
        | None -> false)
      st.senders
  in
  if validity_violation then Some "validity (live sender never delivered its message)"
  else begin
    (* Uniform agreement: anything delivered anywhere is delivered at
       every live node. *)
    let all_delivered =
      (* dpu-lint: allow poly-compare — deliveries are int/string tuples; the polymorphic order is total and stable on them *)
      List.concat_map (fun node -> node.out) st.nodes |> List.sort_uniq compare
    in
    let agreement_violation =
      List.exists
        (fun m -> List.exists (fun node -> not (List.mem m node.out)) live)
        all_delivered
    in
    if agreement_violation then Some "uniform agreement (live stack missing a delivery)"
    else None
  end

(* ------------------------------------------------------------------ *)
(* Exploration (DFS with memoisation)                                 *)
(* ------------------------------------------------------------------ *)

exception Found of string * action list

let check ?(mutation = Faithful) ?(bounds = default_bounds) () =
  let n_gens = bounds.changes + 1 in
  let initial =
    {
      streams = List.init n_gens (fun _ -> []);
      pending = List.init n_gens (fun _ -> []);
      nodes =
        List.init bounds.nodes (fun _ ->
            {
              sn = 0;
              undelivered = [];
              cursors = List.init n_gens (fun _ -> 0);
              out = [];
              crashed = false;
            });
      senders = [];
      sends_left = bounds.sends;
      changes_left = bounds.changes;
      crashes_left = bounds.crashes;
      next_id = 0;
    }
  in
  let visited : (state, unit) Hashtbl.t = Hashtbl.create 65_536 in
  let states = ref 0 in
  let quiescent_count = ref 0 in
  let exceeded = ref false in
  let rec dfs st path =
    if !exceeded then ()
    else if Hashtbl.mem visited st then ()
    else begin
      Hashtbl.replace visited st ();
      incr states;
      if !states > bounds.max_states then exceeded := true
      else begin
        (match safety st with
        | Some prop -> raise (Found (prop, List.rev path))
        | None -> ());
        if quiescent st then begin
          incr quiescent_count;
          match liveness st with
          | Some prop -> raise (Found (prop, List.rev path))
          | None -> ()
        end;
        List.iter
          (fun (action, st') -> dfs st' (action :: path))
          (successors mutation bounds st)
      end
    end
  in
  try
    dfs initial [];
    if !exceeded then Bound_exceeded { states = !states }
    else Verified { states = !states; quiescent = !quiescent_count }
  with Found (property, trace) -> Violation { property; trace; states = !states }
