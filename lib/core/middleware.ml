open Dpu_kernel
module Abcast_iface = Dpu_protocols.Abcast_iface
module Repl_iface = Dpu_protocols.Repl_iface

type config = {
  seed : int;
  loss : float;
  dup : float;
  link : Dpu_net.Latency.link;
  hop_cost : float;
  profile : Stack_builder.profile;
  trace_enabled : bool;
  metrics_enabled : bool;
  msg_size : int;
}

let default_config =
  {
    seed = 1;
    loss = 0.0;
    dup = 0.0;
    link = Dpu_net.Latency.lan;
    hop_cost = 0.05;
    profile = Stack_builder.default_profile;
    trace_enabled = true;
    metrics_enabled = false;
    msg_size = 4096;
  }

type t = {
  config : config;
  system : System.t;
  collector : Collector.t;
  metrics : Dpu_obs.Metrics.t;
  m_sends : Dpu_obs.Metrics.counter;
  next_seq : int array;  (* per-node app message counter *)
}

let of_system ?(config = default_config) ?register_extra system =
  let metrics = System.metrics system in
  let collector = Collector.create () in
  Stack_builder.build ~collector ?register_extra ~profile:config.profile system;
  (* On a fabric's shared registry the group label keeps each group's
     app counter its own series. *)
  let labels =
    match System.group_id system with
    | Some g -> [ ("group", string_of_int g) ]
    | None -> []
  in
  {
    config;
    system;
    collector;
    metrics;
    m_sends = Dpu_obs.Metrics.counter metrics ~labels "app_sends_total";
    next_seq = Array.make (System.n system) 0;
  }

let create ?(config = default_config) ?register_extra ~n () =
  let metrics =
    if config.metrics_enabled then Dpu_obs.Metrics.create () else Dpu_obs.Metrics.noop
  in
  let system =
    System.create ~seed:config.seed ~loss:config.loss ~dup:config.dup ~link:config.link
      ~hop_cost:config.hop_cost ~trace_enabled:config.trace_enabled ~metrics ~n ()
  in
  of_system ~config ?register_extra system

let config t = t.config

let n t = System.n t.system

let group_id t = System.group_id t.system

let system t = t.system

let collector t = t.collector

let metrics t = t.metrics

let now t = System.now t.system

let has_layer t = Option.is_some t.config.profile.Stack_builder.layer

let app_service t = if has_layer t then Service.r_abcast else Service.abcast

let broadcast t ~node ?size body =
  let size = match size with Some s -> s | None -> t.config.msg_size in
  let m = Msg.make ~origin:node ~seq:t.next_seq.(node) ~size body in
  t.next_seq.(node) <- t.next_seq.(node) + 1;
  let stack = System.stack t.system node in
  if Stack.is_crashed stack then m
  else begin
  Dpu_obs.Metrics.incr t.m_sends;
  Collector.record_send t.collector ~node ~id:m.id ~time:(now t);
  Stack.app_event stack ~tag:"abcast" ~data:(Msg.id_to_string m.id);
  (if has_layer t then
     Stack.call stack Service.r_abcast
       (Repl_iface.R_broadcast { size; payload = App_msg.App m })
   else
     Stack.call stack Service.abcast
       (Abcast_iface.Broadcast { size; payload = App_msg.App m }));
  m
  end

(* Application callbacks are tiny passive modules: they require the
   observed service and forward matching indications. *)
let add_listener t ~node ~name ~service f =
  let stack = System.stack t.system node in
  ignore
    (Stack.add_module stack ~name ~provides:[] ~requires:[ service ]
       (fun _stack _self ->
         { Stack.default_handlers with handle_indication = f })
      : Stack.module_)

let subscribe t ~node callback =
  let service = app_service t in
  let layered = has_layer t in
  add_listener t ~node ~name:"app.subscriber" ~service (fun svc p ->
      if Service.equal svc service then
        match p with
        | Repl_iface.R_deliver { origin = _; payload = App_msg.App m } when layered ->
          callback m
        | Abcast_iface.Deliver { origin = _; payload = App_msg.App m } when not layered ->
          callback m
        | _ -> ())

let change_protocol t ~node protocol =
  if not (has_layer t) then
    invalid_arg "Middleware.change_protocol: profile has no replacement layer";
  let stack = System.stack t.system node in
  Stack.app_event stack ~tag:"change-abcast" ~data:protocol;
  Stack.call stack Service.r_abcast (Repl_iface.Change_abcast protocol)

let on_protocol_change t ~node callback =
  add_listener t ~node ~name:"app.switch-listener" ~service:Service.r_abcast
    (fun svc p ->
      if Service.equal svc Service.r_abcast then
        match p with
        | Repl_iface.Protocol_changed { generation; protocol } ->
          callback ~generation ~protocol
        | _ -> ())

let change_consensus t ~node protocol =
  if Option.is_none t.config.profile.Stack_builder.consensus_layer then
    invalid_arg "Middleware.change_consensus: profile has no consensus layer";
  let stack = System.stack t.system node in
  Stack.call stack Service.consensus (Repl_consensus.Change_consensus protocol)

let join t ~node target =
  Stack.call (System.stack t.system node) Service.gm (Dpu_protocols.Gm.Join target)

let leave t ~node target =
  Stack.call (System.stack t.system node) Service.gm (Dpu_protocols.Gm.Leave target)

let on_view t ~node callback =
  add_listener t ~node ~name:"app.view-listener" ~service:Service.gm (fun svc p ->
      if Service.equal svc Service.gm then
        match p with
        | Dpu_protocols.Gm.View v -> callback v
        | _ -> ())

let crash t node = System.crash_node t.system node

let run_for t d = System.run_for t.system d

let run_until_quiescent ?limit t = System.run_until_quiescent ?limit t.system

let latency_series t = Collector.latency_series t.collector

let switch_window t ~generation = Collector.switch_window t.collector ~generation
