module P = Dpu_protocols

let ct = P.Abcast_ct.protocol_name

let sequencer = P.Abcast_seq.protocol_name

let token = P.Abcast_token.protocol_name

let all = [ ct; sequencer; token ]

let register_all ?batch_size ?batching system =
  P.Udp.register system;
  P.Rp2p.register system;
  P.Fd.register system;
  P.Rbcast.register system;
  P.Consensus_ct.register system;
  P.Abcast_ct.register ?batch_size ?batching system;
  P.Abcast_seq.register ?batching system;
  P.Abcast_token.register system
