open Dpu_kernel
module Abcast_iface = Dpu_protocols.Abcast_iface
module Repl_iface = Dpu_protocols.Repl_iface

type mode =
  | Layered
  | Direct

let module_name = "monitor"

let observed_service = function
  | Layered -> Service.r_abcast
  | Direct -> Service.abcast

let requires mode = [ observed_service mode ]

let install ~collector ~mode stack =
  let node = Stack.node stack in
  let service = observed_service mode in
  Stack.add_module stack ~name:module_name ~provides:[] ~requires:[ service ]
    (fun stack _self ->
      let now () = Stack.now stack in
      let m_delivers =
        Dpu_obs.Metrics.counter (Stack.metrics stack)
          ~labels:[ ("node", string_of_int node) ]
          "app_delivers_total"
      in
      let deliver (m : Msg.t) =
        Dpu_obs.Metrics.incr m_delivers;
        Stack.app_event stack ~tag:"adeliver" ~data:(Msg.id_to_string m.id);
        Collector.record_deliver collector ~node ~id:m.id ~time:(now ())
      in
      {
        Stack.default_handlers with
        handle_indication =
          (fun svc p ->
            if Service.equal svc service then
              match (mode, p) with
              | Layered, Repl_iface.R_deliver { origin = _; payload = App_msg.App m } ->
                deliver m
              | Layered, Repl_iface.Protocol_changed { generation; protocol = _ } ->
                Collector.record_switch collector ~node ~generation ~time:(now ())
              | Direct, Abcast_iface.Deliver { origin = _; payload = App_msg.App m } ->
                deliver m
              | (Layered | Direct), _ -> ());
      })
