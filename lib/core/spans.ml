open Dpu_kernel
module TE = Dpu_obs.Trace_event
module Json = Dpu_obs.Json

(* Lane (tid) assignment within a node's process. *)
let tid_messages = 0

let tid_kernel = 1

let timeline_pid ~n = n

let message_events collector =
  List.concat_map
    (fun (id, origin, t0) ->
      let name = Msg.id_to_string id in
      match Collector.deliver_times collector id with
      | [] ->
        [
          TE.instant ~name:("undelivered " ^ name) ~cat:"abcast" ~pid:origin
            ~tid:tid_messages ~ts_ms:t0 ();
        ]
      | deliveries ->
        List.map
          (fun (node, t1) ->
            TE.complete ~name ~cat:"abcast" ~pid:node ~tid:tid_messages ~ts_ms:t0
              ~dur_ms:(t1 -. t0)
              ~args:[ ("origin", Json.Int origin); ("send_ms", Json.Float t0) ]
              ())
          deliveries)
    (Collector.sends collector)

let switch_events collector ~n =
  let switches = Collector.switches collector in
  let instants =
    List.map
      (fun (node, generation, time) ->
        TE.instant
          ~name:(Printf.sprintf "install gen=%d" generation)
          ~cat:"dpu" ~pid:node ~tid:tid_kernel ~ts_ms:time
          ~args:[ ("generation", Json.Int generation) ]
          ())
      switches
  in
  let generations =
    List.sort_uniq Int.compare (List.map (fun (_, g, _) -> g) switches)
  in
  let windows =
    List.filter_map
      (fun generation ->
        match Collector.switch_window collector ~generation with
        | Some (lo, hi) ->
          Some
            (TE.complete
               ~name:(Printf.sprintf "replacement gen=%d" generation)
               ~cat:"dpu" ~pid:(timeline_pid ~n) ~tid:0 ~ts_ms:lo ~dur_ms:(hi -. lo)
               ~args:[ ("generation", Json.Int generation) ]
               ())
        | None -> None)
      generations
  in
  instants @ windows

(* Blocked-call spans: pair each [Call_blocked] with the matching
   [Call_unblocked] per (node, service). The kernel releases blocked
   calls of one service in FIFO order, so a queue per key suffices.
   Entries orphaned by ring-buffer eviction are dropped. *)
let blocked_events trace =
  let open Trace in
  let pending : (int * string, float Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Call_blocked (svc, _) ->
        let q =
          match Hashtbl.find_opt pending (e.node, svc) with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace pending (e.node, svc) q;
            q
        in
        Queue.add e.time q
      | Call_unblocked svc -> (
        match Hashtbl.find_opt pending (e.node, svc) with
        | Some q when not (Queue.is_empty q) ->
          let t0 = Queue.pop q in
          out :=
            TE.complete ~name:("blocked " ^ svc) ~cat:"kernel" ~pid:e.node
              ~tid:tid_kernel ~ts_ms:t0 ~dur_ms:(e.time -. t0) ()
            :: !out
        | Some _ | None -> ())
      | _ -> ())
    (entries trace);
  List.rev !out

let trigger_events trace =
  let open Trace in
  List.filter_map
    (fun e ->
      match e.kind with
      | App (("change-abcast" | "change-consensus") as tag, data) ->
        Some
          (TE.instant
             ~name:(Printf.sprintf "trigger %s -> %s" tag data)
             ~cat:"dpu" ~pid:e.node ~tid:tid_kernel ~ts_ms:e.time ())
      | _ -> None)
    (entries trace)

let metadata ~n =
  let per_node node =
    [
      TE.process_name ~pid:node (Printf.sprintf "node %d" node);
      TE.thread_name ~pid:node ~tid:tid_messages "abcast messages";
      TE.thread_name ~pid:node ~tid:tid_kernel "kernel / dpu";
    ]
  in
  List.concat_map per_node (List.init n (fun i -> i))
  @ [
      TE.process_name ~pid:(timeline_pid ~n) "replacement timeline";
      TE.thread_name ~pid:(timeline_pid ~n) ~tid:0 "windows";
    ]

(* The replacement windows two ways: straight from the collector, and
   parsed back out of a trace-event list — the round-trip tests pin
   that a merged live trace carries exactly the windows the parent
   measured. *)
let replacement_timeline collector =
  let generations =
    List.sort_uniq Int.compare
      (List.map (fun (_, g, _) -> g) (Collector.switches collector))
  in
  List.filter_map
    (fun generation ->
      Option.map
        (fun window -> (generation, window))
        (Collector.switch_window collector ~generation))
    generations

let windows_of_trace_events = Dpu_obs.Report_html.windows_of_events

let of_run ?trace ~n collector =
  let from_trace =
    match trace with
    | Some tr when Trace.enabled tr -> blocked_events tr @ trigger_events tr
    | Some _ | None -> []
  in
  metadata ~n @ message_events collector @ switch_events collector ~n @ from_trace

let to_json events = TE.to_json events
