(** Adaptive group-communication middleware — the public face of the
    library.

    A [t] is a simulated cluster running the Fig. 4 stack on every
    node. Applications broadcast messages, receive totally ordered
    deliveries, observe membership views, and — the point of the paper
    — replace the atomic broadcast protocol on the fly with
    {!change_protocol} while everything keeps running.

    {[
      let mw = Middleware.create ~n:3 () in
      Middleware.subscribe mw ~node:0 (fun m -> Format.printf "%a@." Msg.pp m);
      ignore (Middleware.broadcast mw ~node:1 "hello");
      Middleware.change_protocol mw ~node:2 Variants.sequencer;
      Middleware.run_for mw 1_000.0
    ]} *)

open Dpu_kernel

type config = {
  seed : int;
  loss : float;  (** network loss probability *)
  dup : float;  (** network duplication probability *)
  link : Dpu_net.Latency.link;
  hop_cost : float;  (** per-module dispatch cost, ms *)
  profile : Stack_builder.profile;
  trace_enabled : bool;  (** record the kernel trace (needed by checkers) *)
  metrics_enabled : bool;
      (** allocate a live metrics registry; off by default, in which
          case all instrumentation across the stack is no-op *)
  msg_size : int;  (** default broadcast payload size, bytes *)
}

val default_config : config
(** Seed 1, lossless LAN, 0.05 ms hops, CT ABcast with replacement
    layer, 4 KB messages, tracing on, metrics off. *)

type t

val create : ?config:config -> ?register_extra:(System.t -> unit) -> n:int -> unit -> t
(** [register_extra] can register additional protocol factories (e.g.
    the executable baselines' replacement layers) before the stacks are
    built. *)

val of_system : ?config:config -> ?register_extra:(System.t -> unit) -> System.t -> t
(** Like {!create}, but on a system the caller already built — e.g. a
    live deployment assembled with {!Dpu_kernel.System.of_runtime}.
    The simulation-only fields of [config] (seed, loss, dup, link,
    hop_cost, trace/metrics switches) are ignored: those live in the
    system itself. Only the local stacks of [system] are built. *)

val config : t -> config

val n : t -> int

val group_id : t -> int option
(** The fabric group this cluster is (when it is one group of a
    {!Fabric}); [None] for a standalone cluster. *)

val system : t -> System.t

val collector : t -> Collector.t

val metrics : t -> Dpu_obs.Metrics.t
(** The cluster's metrics registry ({!Dpu_obs.Metrics.noop} unless
    [config.metrics_enabled]). *)

val now : t -> float

(** {1 Application operations} *)

val broadcast : t -> node:int -> ?size:int -> string -> Msg.t
(** Atomically broadcast an application message from [node]; returns
    the message (with its unique id) and records the send in the
    collector. *)

val subscribe : t -> node:int -> (Msg.t -> unit) -> unit
(** Invoke the callback on every application message delivered at
    [node], in total order. *)

val change_protocol : t -> node:int -> string -> unit
(** [changeABcast(prot)], triggered from [node]. Requires the
    replacement layer. Raises [Invalid_argument] without it. *)

val on_protocol_change : t -> node:int -> (generation:int -> protocol:string -> unit) -> unit
(** Invoke the callback when [node] completes a switch. *)

val change_consensus : t -> node:int -> string -> unit
(** Replace the consensus implementation on the fly (requires a profile
    with [consensus_layer]); the change is threaded through the next
    decided instance. Raises [Invalid_argument] without the layer. *)

(** {1 Group membership (when the profile enables GM)} *)

val join : t -> node:int -> int -> unit

val leave : t -> node:int -> int -> unit

val on_view : t -> node:int -> (Dpu_protocols.Gm.view -> unit) -> unit

(** {1 Fault injection} *)

val crash : t -> int -> unit

(** {1 Running} *)

val run_for : t -> float -> unit

val run_until_quiescent : ?limit:float -> t -> unit

(** {1 Results} *)

val latency_series : t -> Dpu_engine.Series.t
(** Per-message average latency keyed by send time (paper §6). *)

val switch_window : t -> generation:int -> (float * float) option
