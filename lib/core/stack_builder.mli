(** Assembly of the Fig. 4 group-communication stack on every node.

    With the replacement layer, each stack is (bottom-up):
    UDP → RP2P / FD → CT consensus + RBcast → ABcast (initial variant)
    → replacement layer → (optionally GM), plus a monitor. Without a
    layer the application observes [abcast] directly — the paper's
    “normal, without replacement layer” baseline of Fig. 6.

    The layer is pluggable by protocol name so the executable baselines
    ([Dpu_baselines.Maestro], [Dpu_baselines.Graceful]) can be swapped
    in for the paper's [Repl] under an identical harness; all three
    provide [Service.r_abcast] with the {!Dpu_protocols.Repl_iface}
    payloads.

    The build itself uses [Registry.instantiate]: the registry's
    recursive dependency resolution (Algorithm 1 lines 22–28)
    constructs the whole stack, which doubles as a permanent test of
    that machinery. *)

open Dpu_kernel

type profile = {
  initial_abcast : string;  (** e.g. [Variants.ct] *)
  layer : string option;
      (** protocol name of the [r-abcast] provider; [None] = no
          replacement layer *)
  with_gm : bool;  (** install group membership (needs a layer) *)
  batch_size : int;  (** consensus-based ABcast batching (1 = paper) *)
  batching : Dpu_protocols.Batcher.config option;
      (** throughput-mode batch aggregation for the ABcast variants
          ({!Dpu_protocols.Batcher}); [None] (the default) keeps the
          exact unbatched code paths *)
  consensus_layer : string option;
      (** install the consensus replacement layer ([Repl_consensus]),
          starting on the named implementation; [None] = plain
          consensus bound directly (the paper's Fig. 4) *)
  epoch_buffer : bool;
      (** install {!Dpu_protocols.Epoch_buffer} alongside a replacement
          layer (the default). [false] reopens the receive-side hole in
          the generation filter — a deliberately unsafe configuration
          that the behavioural safe-update checker rejects *)
}

val default_profile : profile
(** CT ABcast, [Repl] layer, no GM, batch 1, no batching, epoch buffer
    on. *)

val register_protocols :
  ?register_extra:(System.t -> unit) -> profile:profile -> System.t -> unit
(** Populate the system registry with every protocol the profile can
    name (plus whatever [register_extra] adds) without building any
    stack — what the static analyser and [dpu_run check] need to reason
    about a configuration before (or instead of) running it. *)

val build :
  ?collector:Collector.t ->
  ?register_extra:(System.t -> unit) ->
  profile:profile ->
  System.t ->
  unit
(** [register_protocols], then build the profile's stack on every node.
    With a collector, a monitor module is installed on each stack. *)
