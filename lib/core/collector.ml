open Dpu_kernel
module Series = Dpu_engine.Series

type t = {
  mutable rev_sends : (Msg.id * int * float) list;
  send_times : (Msg.id, float) Hashtbl.t;
  delivers : (int, (Msg.id * float) list ref) Hashtbl.t; (* reversed order *)
  deliveries_by_id : (Msg.id, (int * float) list) Hashtbl.t;
  mutable rev_switches : (int * int * float) list;
}

let create () =
  {
    rev_sends = [];
    send_times = Hashtbl.create 1024;
    delivers = Hashtbl.create 16;
    deliveries_by_id = Hashtbl.create 1024;
    rev_switches = [];
  }

let record_send t ~node ~id ~time =
  t.rev_sends <- (id, node, time) :: t.rev_sends;
  if not (Hashtbl.mem t.send_times id) then Hashtbl.replace t.send_times id time

let record_deliver t ~node ~id ~time =
  let l =
    match Hashtbl.find_opt t.delivers node with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.delivers node l;
      l
  in
  l := (id, time) :: !l;
  let existing =
    match Hashtbl.find_opt t.deliveries_by_id id with Some l -> l | None -> []
  in
  Hashtbl.replace t.deliveries_by_id id ((node, time) :: existing)

let record_switch t ~node ~generation ~time =
  t.rev_switches <- (node, generation, time) :: t.rev_switches

let sends t = List.rev t.rev_sends

let send_count t = List.length t.rev_sends

let send_time t id = Hashtbl.find_opt t.send_times id

let delivers_of t ~node =
  match Hashtbl.find_opt t.delivers node with Some l -> List.rev !l | None -> []

let delivered_nodes t =
  (* dpu-lint: allow hashtbl-iter — folded nodes are sorted before use *)
  Hashtbl.fold (fun node _ acc -> node :: acc) t.delivers [] |> List.sort Int.compare

let deliver_times t id =
  match Hashtbl.find_opt t.deliveries_by_id id with Some l -> List.rev l | None -> []

let latency_of t id =
  match (send_time t id, deliver_times t id) with
  | Some t0, (_ :: _ as ds) ->
    let sum = List.fold_left (fun acc (_, time) -> acc +. (time -. t0)) 0.0 ds in
    Some (sum /. float_of_int (List.length ds))
  | _, _ -> None

let latency_series t =
  let s = Series.create () in
  List.iter
    (fun (id, _node, t0) ->
      match latency_of t id with
      | Some l -> Series.add s ~time:t0 ~value:l
      | None -> ())
    (sends t);
  s

let undelivered_ids t ~expected_copies =
  List.filter_map
    (fun (id, _, _) ->
      let copies = List.length (deliver_times t id) in
      if copies < expected_copies then Some id else None)
    (sends t)

let switches t = List.rev t.rev_switches

let switch_window t ~generation =
  let times =
    List.filter_map
      (fun (_, g, time) -> if g = generation then Some time else None)
      (switches t)
  in
  match times with
  | [] -> None
  | first :: rest ->
    let lo = List.fold_left min first rest in
    let hi = List.fold_left max first rest in
    Some (lo, hi)
