(** Per-stack monitor module feeding the {!Collector}.

    A passive module that requires the broadcast service under
    observation and records every {!App_msg.App} delivery (and every
    protocol switch) into the system-wide collector. It never calls
    anything, so it perturbs the stack only by the one dispatch hop its
    indications already cost every other subscriber. *)

open Dpu_kernel

type mode =
  | Layered  (** observe [r-abcast] (replacement layer present) *)
  | Direct  (** observe [abcast] (no replacement layer) *)

val module_name : string
(** ["monitor"]. *)

val observed_service : mode -> Service.t

val requires : mode -> Service.t list
(** The monitor's declared requirements (introspection for the static
    analyser; it only listens, never calls). *)

val install : collector:Collector.t -> mode:mode -> Stack.t -> Stack.module_
