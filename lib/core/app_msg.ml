open Dpu_kernel

type Payload.t += App of Msg.t

let () =
  Payload.register_printer (function
    | App m -> Some (Printf.sprintf "app %s" (Msg.id_to_string m.Msg.id))
    | _ -> None)

let () =
  Payload.register_codec ~tag:"app"
    ~encode:(function
      | App m -> Some (fun w -> Msg.write w m)
      | _ -> None)
    ~decode:(fun r -> App (Msg.read r))
