(** Per-message spans and the replacement timeline, reconstructed from
    the {!Collector} and the kernel {!Dpu_kernel.Trace}, as Chrome
    trace events (load the exported JSON in Perfetto or
    chrome://tracing).

    Layout: each simulated node is one process (pid = node) with two
    lanes — tid 0 carries one span per (message, delivering node) from
    ABcast to delivery there, tid 1 carries kernel/DPU events (blocked
    service calls as spans, generation installs and switch triggers as
    instants). One synthetic process (pid = n) holds the replacement
    windows: a span per generation from the first install to the last,
    the paper's replacement window. *)

open Dpu_kernel

val message_events : Collector.t -> Dpu_obs.Trace_event.t list
(** One complete span per (sent message, delivering node); messages
    never delivered anywhere render as instants on the sender. *)

val switch_events : Collector.t -> n:int -> Dpu_obs.Trace_event.t list
(** Per-node generation-install instants plus one window span per
    generation on the timeline process. *)

val blocked_events : Trace.t -> Dpu_obs.Trace_event.t list
(** One span per blocked service call (from [Call_blocked] to its FIFO
    matching [Call_unblocked]); requires the trace to have been
    enabled during the run. *)

val replacement_timeline : Collector.t -> (int * (float * float)) list
(** Per generation, the [(first_install, last_install)] window — the
    data behind the timeline-process spans, sorted by generation. *)

val windows_of_trace_events :
  Dpu_obs.Trace_event.t list -> (int * (float * float)) list
(** Recover the replacement windows from trace events (the
    ["replacement gen=N"] spans, wherever they were merged from), in
    milliseconds. On a trace produced by {!of_run} this agrees with
    {!replacement_timeline} on the same collector. *)

val of_run : ?trace:Trace.t -> n:int -> Collector.t -> Dpu_obs.Trace_event.t list
(** Everything above plus process/thread naming metadata. [trace]
    contributes blocked-call spans and switch-trigger instants when
    given and enabled. *)

val to_json : Dpu_obs.Trace_event.t list -> Dpu_obs.Json.t
(** The loadable trace-event envelope. *)
