(** Dynamic replacement of the *consensus* protocol — the paper's §7
    future work, following the idea of the companion report [16]
    ("Dynamic update of distributed agreement protocols"): thread the
    protocol change through the very sequence of agreements the
    protocol produces.

    The module provides [Service.consensus] (so clients such as the
    consensus-based ABcast are unaware of it, exactly like [Repl] for
    ABcast) and routes each proposal to the current implementation —
    Chandra–Toueg or Paxos.

    {2 Algorithm}

    Instances of one [epoch] form a {e stream}. The layer requires the
    client to use each stream sequentially: propose instance [k+1] only
    after instance [k]'s decision was indicated (the consensus-based
    ABcast does exactly this). Then:

    - every proposal is wrapped and tagged with the stream's current
      {e generation}; while a change is requested, outgoing proposals
      additionally carry the target protocol name;
    - implementations run instances under an encoded epoch
      ([stream * 1024 + generation]), so wire traffic of different
      generations can never interfere;
    - when a decision tagged with a change request is delivered for
      instance [(e, k_s)], every stack schedules the switch for stream
      [e] {e at the same point of the stream}: it takes effect once the
      stack has seen decisions for every [k <= k_s] (they keep coming
      from the old implementation, which remains in the stack), and all
      later instances run on the new implementation;
    - decisions arriving for a superseded generation are ignored, and
      this stack's undecided proposals are re-issued under the new
      generation — the analogue of Algorithm 1's lines 15–18.

    Sequential use per stream makes the switch point unambiguous, which
    is what rules out two implementations deciding the same instance
    differently at different stacks.

    {2 Implementation slots}

    A draining old generation must still accept wire traffic while the
    new one serves proposals, and a stack can only bind one module per
    service. Generations therefore cycle through a small ring of
    implementation services ([consensus-impl.0] … [consensus-impl.7]);
    at most 8 generations can be draining at once (far more than any
    realistic switch rate).

    {2 Scope}

    Generations are tracked per stream; a stream created later (e.g. by
    an ABcast replacement) starts on the initial implementation.
    Replacing ABcast and consensus *simultaneously* is out of scope
    here, as in the paper. *)

open Dpu_kernel

type Payload.t +=
  | Change_consensus of string
      (** call: replace the consensus protocol with the registered
          implementation named [prot] (e.g.
          [Dpu_protocols.Consensus_paxos.protocol_name]) *)
  | Consensus_changed of { generation : int; protocol : string }
      (** indication (on [Service.consensus]): stream 0's switch
          completed on this stack *)

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | Wrapped of { value : Payload.t; switch : string option }
      (** the value wrapper threaded through the underlying consensus *)
  | Wire_request of { protocol : string }
      (** change-request gossip, so every stack tags its proposals *)

val protocol_name : string
(** ["repl.consensus"] *)

val slots : int
(** Size of the implementation-service ring (8). *)

val impl_name : string -> slot:int -> string
(** Registry name of implementation [prot] at a ring slot. *)

val impl_service : int -> Service.t
(** The implementation service of a ring slot ([consensus-impl.k]). *)

val spec : Spec.t
(** Behavioural spec of the layer: generation-scoped agreement rounds,
    superseded decisions filtered, undecided proposals re-issued. *)

val register_impls : System.t -> unit
(** Register both implementations (CT and Paxos) at every ring slot in
    the system registry, so generation switches can instantiate them. *)

val install : registry:Registry.t -> initial:string -> n:int -> Stack.t -> Stack.module_
(** Add the layer to a stack and bring up generation 0 on the [initial]
    implementation (default choice:
    [Dpu_protocols.Consensus_ct.protocol_name]). The caller binds the
    returned module to [Service.consensus]. Installed directly rather
    than through the registry: its dependency list covers the whole
    slot ring, which only the layer itself should populate. *)

val generation : Stack.t -> int
(** Current generation of stream 0 (diagnostics). *)
