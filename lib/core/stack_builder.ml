open Dpu_kernel
module P = Dpu_protocols

type profile = {
  initial_abcast : string;
  layer : string option;
  with_gm : bool;
  batch_size : int;
  batching : P.Batcher.config option;
  consensus_layer : string option;
  epoch_buffer : bool;
}

let default_profile =
  {
    initial_abcast = Variants.ct;
    layer = Some Repl.protocol_name;
    with_gm = false;
    batch_size = 1;
    batching = None;
    consensus_layer = None;
    epoch_buffer = true;
  }

let register_protocols ?register_extra ~profile system =
  Variants.register_all ~batch_size:profile.batch_size ?batching:profile.batching
    system;
  Repl.register system;
  P.Gm.register system;
  (match register_extra with Some f -> f system | None -> ());
  if Option.is_some profile.consensus_layer then Repl_consensus.register_impls system

let build ?collector ?register_extra ~profile system =
  register_protocols ?register_extra ~profile system;
  let registry = System.registry system in
  System.iter_stacks system (fun stack ->
      (* With the consensus replacement layer, the layer must hold the
         [consensus] binding before anything resolves that service. *)
      (match profile.consensus_layer with
      | Some initial ->
        let m = Repl_consensus.install ~registry ~initial ~n:(System.n system) stack in
        Stack.bind stack Service.consensus m
      | None -> ());
      (* The initial ABcast variant must come up first so that the
         layer's [abcast] requirement resolves to it (the registry
         would otherwise pick its own most-recent provider). *)
      ignore (Registry.instantiate registry stack ~name:profile.initial_abcast
               : Stack.module_);
      (match profile.layer with
      | Some name ->
        ignore (Registry.instantiate registry stack ~name : Stack.module_);
        (* A stack that can switch generations needs the receive-side
           hole in the epoch filter closed (see [Epoch_buffer]). The
           knob exists so the hole can be reopened on purpose — the
           safe-update checker must reject such a plan, and the fault
           tests demonstrate the divergence it causes. *)
        if profile.epoch_buffer then
          ignore (P.Epoch_buffer.install stack : Stack.module_)
      | None -> ());
      if profile.with_gm then begin
        assert (Option.is_some profile.layer);
        Registry.ensure_bound registry stack Service.gm
      end;
      match collector with
      | Some collector ->
        let mode =
          if Option.is_some profile.layer then Monitor.Layered else Monitor.Direct
        in
        ignore (Monitor.install ~collector ~mode stack : Stack.module_)
      | None -> ())
