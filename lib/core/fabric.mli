(** A multi-group ABcast fabric: N independent protocol groups sharing
    ONE discrete-event simulator.

    Each group (shard) is a full {!Middleware} cluster — its own
    simulated network, registry, kernel trace, collector and
    generations — so a {!change_protocol} on one shard runs Algorithm 1
    entirely inside that shard: replacements on different shards
    proceed concurrently and never serialise against each other. The
    shared simulator gives one global virtual clock and one event heap;
    each group's zero-delay work drains through its own ready queue
    ([Sim.new_group]).

    Randomness is keyed, not sequential: group [g] draws from
    [Rng.split_key root ~key:g], so a shard's stream — network jitter,
    workload gaps — is identical whether the fabric has 4 shards or
    400.

    {[
      let fabric = Fabric.create ~shards:16 ~n:63 () in
      (* rolling replacement, all shards in flight together *)
      Fabric.iter_groups fabric (fun g _ ->
          Fabric.change_protocol fabric ~shard:g Variants.sequencer);
      Fabric.run_until_quiescent fabric
    ]} *)

type t

val create :
  ?config:Middleware.config ->
  ?register_extra:(Dpu_kernel.System.t -> unit) ->
  shards:int ->
  n:int ->
  unit ->
  t
(** [create ~shards ~n ()] partitions [n] total nodes round-robin into
    [shards] groups (sizes differ by at most one; [n >= shards]
    required). [config] applies to every group; [config.seed] seeds the
    one shared simulator. With [config.metrics_enabled] all groups
    share one registry — per-group series carry a [group=g] label. *)

val shards : t -> int

val total_nodes : t -> int

val config : t -> Middleware.config

val sim : t -> Dpu_engine.Sim.t

val metrics : t -> Dpu_obs.Metrics.t

val group : t -> int -> Middleware.t
(** The shard's cluster. Nodes are group-local ([0 .. group_size-1]). *)

val group_size : t -> int -> int

val first_node : t -> int -> int
(** Global id of the shard's node 0 (shards number their nodes
    locally; this maps them onto one fabric-wide node space). *)

val iter_groups : t -> (int -> Middleware.t -> unit) -> unit

val generation : t -> shard:int -> int
(** Last protocol generation the shard completed (observed at its
    node 0). *)

(** {1 Running} *)

val now : t -> float

val run_for : t -> float -> unit

val run_until_quiescent : ?limit:float -> t -> unit

(** {1 Protocol replacement} *)

val change_protocol : t -> shard:int -> ?node:int -> string -> unit
(** Trigger Algorithm 1 on one shard (from its group-local [node],
    default 0). Other shards are untouched. *)

val switch_window : t -> shard:int -> generation:int -> (float * float) option

val max_concurrent_switches : t -> generation:int -> int
(** Max number of shards whose [generation] switch windows overlap at
    one instant — the headline "how many Algorithm 1 runs were in
    flight together". *)
