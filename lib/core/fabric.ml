module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng
module Datagram = Dpu_net.Datagram
module System = Dpu_kernel.System

type t = {
  sim : Sim.t;
  config : Middleware.config;
  metrics : Dpu_obs.Metrics.t;
  groups : Middleware.t array;
  first_node : int array; (* global id of each group's node 0 *)
  gens : int array; (* last completed generation per group *)
}

let shard_sizes ~shards ~n =
  let base = n / shards and extra = n mod shards in
  Array.init shards (fun g -> base + if g < extra then 1 else 0)

let create ?(config = Middleware.default_config) ?register_extra ~shards ~n () =
  if shards < 1 then invalid_arg "Fabric.create: shards must be >= 1";
  if n < shards then invalid_arg "Fabric.create: need at least one node per shard";
  let sim = Sim.create ~seed:config.Middleware.seed () in
  let metrics =
    if config.Middleware.metrics_enabled then Dpu_obs.Metrics.create ()
    else Dpu_obs.Metrics.noop
  in
  Sim.register_metrics sim metrics;
  let sizes = shard_sizes ~shards ~n in
  let first_node = Array.make shards 0 in
  let acc = ref 0 in
  Array.iteri
    (fun g ng ->
      first_node.(g) <- !acc;
      acc := !acc + ng)
    sizes;
  let groups =
    Array.init shards (fun g ->
        let ng = sizes.(g) in
        (* Every random draw of group g comes from the keyed substream
           for g: the parent is not advanced, so a shard keeps its
           exact randomness no matter how many shards exist. *)
        let g_rng = Rng.split_key (Sim.rng sim) ~key:g in
        let net =
          Datagram.create sim ~n:ng ~rng:(Rng.split g_rng)
            ~loss:config.Middleware.loss ~dup:config.Middleware.dup
            ~link:config.Middleware.link ()
        in
        let group = Sim.new_group sim in
        let runtime = Dpu_runtime.Sim_backend.runtime ~group ~rng:g_rng sim net in
        let system =
          System.of_sim ~group_id:g ~hop_cost:config.Middleware.hop_cost
            ~trace_enabled:config.Middleware.trace_enabled ~metrics ~runtime ~sim
            ~net ~n:ng ()
        in
        Middleware.of_system ~config ?register_extra system)
  in
  let gens = Array.make shards 0 in
  Array.iteri
    (fun g mw ->
      (* Generations are per group: track each group's completed
         switches from its node 0. *)
      Middleware.on_protocol_change mw ~node:0 (fun ~generation ~protocol:_ ->
          if generation > gens.(g) then gens.(g) <- generation))
    groups;
  { sim; config; metrics; groups; first_node; gens }

let shards t = Array.length t.groups

let total_nodes t = Array.fold_left (fun acc mw -> acc + Middleware.n mw) 0 t.groups

let config t = t.config

let sim t = t.sim

let metrics t = t.metrics

let group t g =
  if g < 0 || g >= Array.length t.groups then
    invalid_arg (Printf.sprintf "Fabric.group: shard %d out of range" g);
  t.groups.(g)

let group_size t g = Middleware.n (group t g)

let first_node t g =
  ignore (group t g : Middleware.t);
  t.first_node.(g)

let iter_groups t f = Array.iteri f t.groups

let generation t ~shard =
  ignore (group t shard : Middleware.t);
  t.gens.(shard)

let now t = Sim.now t.sim

let run_for t d = Sim.run_for t.sim d

let run_until_quiescent ?limit t =
  match limit with None -> Sim.run t.sim | Some l -> Sim.run ~until:l t.sim

let change_protocol t ~shard ?(node = 0) protocol =
  Middleware.change_protocol (group t shard) ~node protocol

let switch_window t ~shard ~generation =
  Middleware.switch_window (group t shard) ~generation

(* Max number of half-open intervals covering one instant: classic
   sweep over sorted endpoints, ends before starts at ties. *)
let max_overlap windows =
  let events =
    List.concat_map (fun (lo, hi) -> [ (lo, 1); (hi, -1) ]) windows
    |> List.sort (fun (a, da) (b, db) ->
           match Float.compare a b with 0 -> Int.compare da db | c -> c)
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, d) ->
        let cur = cur + d in
        (cur, max best cur))
      (0, 0) events
  in
  best

let max_concurrent_switches t ~generation =
  let windows = ref [] in
  Array.iteri
    (fun g _ ->
      match switch_window t ~shard:g ~generation with
      | Some w -> windows := w :: !windows
      | None -> ())
    t.groups;
  max_overlap !windows
