(** The catalogue of replaceable ABcast protocol implementations.

    These names are what [changeABcast] ships inside the protocol
    change message (Algorithm 1's [prot] argument). *)

val ct : string
(** ["abcast.ct"] — consensus-based (Chandra–Toueg reduction). *)

val sequencer : string
(** ["abcast.seq"] — fixed sequencer. *)

val token : string
(** ["abcast.token"] — token ring. *)

val all : string list

val register_all :
  ?batch_size:int ->
  ?batching:Dpu_protocols.Batcher.config ->
  Dpu_kernel.System.t ->
  unit
(** Register every variant (and their substrate protocols: udp, rp2p,
    fd, rbcast, consensus) in the system registry, so that
    [Registry.instantiate] can build any of them on demand during a
    replacement. [batch_size] configures the consensus-based variant;
    [batching] turns on throughput-mode aggregation for the consensus
    and sequencer variants (the token ring stays unbatched). *)
