open Dpu_kernel
module P = Dpu_protocols
module CI = Dpu_protocols.Consensus_iface

type Payload.t +=
  | Change_consensus of string
  | Consensus_changed of { generation : int; protocol : string }

(* The value wrapper: carries the client's value plus, optionally, a
   protocol change request threaded through the decision. *)
type Payload.t += Wrapped of { value : Payload.t; switch : string option }

(* A change request is gossiped to every stack's layer so that *every*
   subsequent proposal carries the tag: consensus decides one proposal,
   and the switch must be threaded through whichever one wins. *)
type Payload.t += Wire_request of { protocol : string }

let () =
  Payload.register_printer (function
    | Change_consensus p -> Some (Printf.sprintf "change-consensus %s" p)
    | Consensus_changed { generation; protocol } ->
      Some (Printf.sprintf "consensus-changed gen=%d %s" generation protocol)
    | Wrapped { value; switch } ->
      Some
        (Printf.sprintf "wrapped%s %s"
           (match switch with Some p -> "+switch:" ^ p | None -> "")
           (Payload.to_string value))
    | Wire_request { protocol } -> Some (Printf.sprintf "repl-consensus.request %s" protocol)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"repl-consensus"
    ~encode:(function
      | Change_consensus protocol ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.str w protocol)
      | Consensus_changed { generation; protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w generation;
            Wire.W.str w protocol)
      | Wrapped { value; switch } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.opt w Wire.W.str switch)
      | Wire_request { protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.str w protocol)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 -> Change_consensus (Wire.R.str r)
      | 1 ->
        let generation = Wire.R.int r in
        let protocol = Wire.R.str r in
        Consensus_changed { generation; protocol }
      | 2 ->
        let value = Payload.decode (Wire.R.str r) in
        let switch = Wire.R.opt r Wire.R.str in
        Wrapped { value; switch }
      | 3 -> Wire_request { protocol = Wire.R.str r }
      | c -> raise (Wire.Error (Printf.sprintf "repl-consensus: bad case %d" c)))

let protocol_name = "repl.consensus"

let slots = 8

let gen_stride = 1024

let impl_service slot = Service.make (Printf.sprintf "consensus-impl.%d" slot)

let impl_name prot ~slot = Printf.sprintf "%s@%d" prot slot

let spec =
  Spec.make ~service:(Service.name Service.consensus) ~roles:[ "member" ]
    ~kinds:[ Spec.kind ~role:"member" "repl-consensus.request" ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "repl-consensus.request") "changing";
        Spec.t "changing" (Spec.Recv "repl-consensus.request") "idle";
      ]
    ~obligations:[ Spec.Validity; Spec.Exactly_once ]
      (* undecided proposals are re-issued under the new generation, and
         decisions of a superseded generation are ignored (the analogue
         of Algorithm 1's lines 15-18 for the agreement stream) *)
    ~capabilities:
      [
        Spec.Slot_scoped_rounds;
        Spec.Reissue_undelivered;
        Spec.Generation_filter;
      ]
    ()

let header_size = 32

let k_generation = "repl-consensus.generation"

let generation stack = Stack.get_env stack k_generation ~default:0

(* Per-stream bookkeeping. *)
type stream = {
  epoch : int;
  mutable gen : int;
  mutable protocol : string;  (* implementation of the current gen *)
  mutable decided_ks : (int, unit) Hashtbl.t;  (* accepted decisions *)
  mutable prefix : int;  (* first k not yet decided *)
  mutable switch_at : (int * string) option;  (* k_s, target protocol *)
  pending : (int, Payload.t * int) Hashtbl.t;  (* k -> value, weight (our proposals) *)
  forwarded : (int, Payload.t) Hashtbl.t;  (* decided client values already indicated *)
}

let install ~registry ~initial ~n stack =
  let me = Stack.node stack in
  let all_impl_services = List.init slots impl_service in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.consensus ]
    ~requires:(Service.rp2p :: all_impl_services)
    (fun stack _self ->
      let module M = Dpu_obs.Metrics in
      let labels = [ ("node", string_of_int me) ] in
      let metrics = Stack.metrics stack in
      let m_proposals = M.counter metrics ~labels "repl_consensus_proposals_total" in
      let m_decisions = M.counter metrics ~labels "repl_consensus_decisions_total" in
      let m_stale = M.counter metrics ~labels "repl_consensus_stale_decisions_total" in
      let m_switches = M.counter metrics ~labels "repl_consensus_switches_total" in
      let m_reissued = M.counter metrics ~labels "repl_consensus_reissued_total" in
      let streams : (int, stream) Hashtbl.t = Hashtbl.create 4 in
      let request = ref None in
      let get_stream epoch =
        match Hashtbl.find_opt streams epoch with
        | Some s -> s
        | None ->
          let s =
            {
              epoch;
              gen = 0;
              protocol = initial;
              decided_ks = Hashtbl.create 64;
              prefix = 0;
              switch_at = None;
              pending = Hashtbl.create 16;
              forwarded = Hashtbl.create 64;
            }
          in
          Hashtbl.replace streams epoch s;
          s
      in
      let ensure_impl ~protocol ~gen =
        let slot = gen mod slots in
        let svc = impl_service slot in
        (* The slot may hold the module of generation [gen - slots] (long
           drained) or a different implementation: rebind. *)
        Stack.unbind stack svc;
        ignore
          (Registry.instantiate registry stack ~name:(impl_name protocol ~slot)
            : Stack.module_)
      in
      let propose_impl s ~k ~value ~weight =
        let tag = !request in
        let iid = { CI.epoch = (s.epoch * gen_stride) + s.gen; k } in
        Stack.call stack
          (impl_service (s.gen mod slots))
          (CI.Propose
             { iid; value = Wrapped { value; switch = tag }; weight = weight + header_size })
      in
      let apply_switch s k_s protocol =
        s.gen <- s.gen + 1;
        s.protocol <- protocol;
        s.switch_at <- None;
        if !request <> None then request := None;
        if s.epoch = 0 then Stack.set_env stack k_generation s.gen;
        ensure_impl ~protocol ~gen:s.gen;
        M.incr m_switches;
        Stack.app_event stack ~tag:"repl-consensus.switch"
          ~data:(Printf.sprintf "stream=%d gen=%d prot=%s" s.epoch s.gen protocol);
        Stack.indicate stack Service.consensus
          (Consensus_changed { generation = s.gen; protocol });
        (* Re-issue our undecided proposals beyond the switch point
           under the new generation (sequential clients will not have
           any, but a racing proposal is repaired here). *)
        (* dpu-lint: allow hashtbl-iter — folded pairs are sorted by k before use *)
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.pending []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.iter (fun (k, (value, weight)) ->
               if k > k_s then begin
                 M.incr m_reissued;
                 propose_impl s ~k ~value ~weight
               end)
      in
      let advance_prefix s =
        while Hashtbl.mem s.decided_ks s.prefix do
          s.prefix <- s.prefix + 1
        done;
        match s.switch_at with
        | Some (k_s, protocol) when s.prefix > k_s -> apply_switch s k_s protocol
        | Some _ | None -> ()
      in
      let on_decide iid value =
        let stream_epoch = iid.CI.epoch / gen_stride in
        let gen = iid.CI.epoch mod gen_stride in
        let k = iid.CI.k in
        let s = get_stream stream_epoch in
        (* Line-18 analogue: decisions of superseded generations are
           discarded; the instances they decided were (or will be)
           re-decided under the current generation. *)
        if gen <> s.gen then M.incr m_stale
        else if not (Hashtbl.mem s.forwarded k) then begin
          M.incr m_decisions;
          let client_value, switch =
            match value with
            | Wrapped { value; switch } -> (value, switch)
            | CI.No_value -> (CI.No_value, None)
            | other -> (other, None)
          in
          Hashtbl.replace s.forwarded k client_value;
          Hashtbl.replace s.decided_ks k ();
          Hashtbl.remove s.pending k;
          Stack.indicate stack Service.consensus
            (CI.Decide { iid = { CI.epoch = stream_epoch; k }; value = client_value });
          (match (switch, s.switch_at) with
          | Some protocol, None -> s.switch_at <- Some (k, protocol)
          | Some _, Some _ | None, _ -> ());
          advance_prefix s
        end
      in
      let on_propose iid value weight =
        M.incr m_proposals;
        let s = get_stream iid.CI.epoch in
        let k = iid.CI.k in
        match Hashtbl.find_opt s.forwarded k with
        | Some v ->
          (* Already decided: repeat the indication for the caller. *)
          Stack.indicate stack Service.consensus
            (CI.Decide { iid = { CI.epoch = s.epoch; k }; value = v })
        | None -> begin
          Hashtbl.replace s.pending k (value, weight);
          propose_impl s ~k ~value ~weight
        end
      in
      {
        Stack.default_handlers with
        on_start = (fun () -> ensure_impl ~protocol:initial ~gen:0);
        handle_call =
          (fun _svc p ->
            match p with
            | CI.Propose { iid; value; weight } -> on_propose iid value weight
            | Change_consensus protocol ->
              Stack.app_event stack ~tag:"change-consensus" ~data:protocol;
              request := Some protocol;
              for dst = 0 to n - 1 do
                if dst <> me then
                  Stack.call stack Service.rp2p
                    (P.Rp2p.Send
                       { dst; size = header_size; payload = Wire_request { protocol } })
              done
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.rp2p then
              match p with
              | P.Rp2p.Recv { src = _; payload = Wire_request { protocol } } ->
                if !request = None then request := Some protocol
              | _ -> ()
            else begin
              let is_impl_svc =
                List.exists (fun s -> Service.equal s svc) all_impl_services
              in
              if is_impl_svc then
                match p with
                | CI.Decide { iid; value } -> on_decide iid value
                | _ -> ()
            end);
      })

let register_impls system =
  (* Both implementations at every ring slot. *)
  for slot = 0 to slots - 1 do
    P.Consensus_ct.register ~service:(impl_service slot)
      ~name:(impl_name P.Consensus_ct.protocol_name ~slot)
      system;
    P.Consensus_paxos.register ~service:(impl_service slot)
      ~name:(impl_name P.Consensus_paxos.protocol_name ~slot)
      system
  done
