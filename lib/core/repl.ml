open Dpu_kernel
module Abcast_iface = Dpu_protocols.Abcast_iface
module Repl_iface = Dpu_protocols.Repl_iface

type Payload.t +=
  | A_data of { sn : int; id : Msg.id; size : int; payload : Payload.t }
  | A_new of { sn : int; protocol : string }

let () =
  Payload.register_printer (function
    | A_data { sn; id; _ } ->
      Some (Printf.sprintf "repl.data sn=%d %s" sn (Msg.id_to_string id))
    | A_new { sn; protocol } -> Some (Printf.sprintf "repl.new sn=%d %s" sn protocol)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"repl"
    ~encode:(function
      | A_data { sn; id; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w sn;
            Msg.write_id w id;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | A_new { sn; protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w sn;
            Wire.W.str w protocol)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let sn = Wire.R.int r in
        let id = Msg.read_id r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        A_data { sn; id; size; payload }
      | 1 ->
        let sn = Wire.R.int r in
        let protocol = Wire.R.str r in
        A_new { sn; protocol }
      | c -> raise (Wire.Error (Printf.sprintf "repl: bad case %d" c)))

let protocol_name = "repl.abcast"

let header_size = 48

let k_generation = "repl.generation"
let k_undelivered = "repl.undelivered"

let generation stack = Stack.get_env stack k_generation ~default:0

let undelivered_count stack = Stack.get_env stack k_undelivered ~default:0

let install ~registry stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast ]
    (fun stack _self ->
      let module M = Dpu_obs.Metrics in
      let labels = [ ("node", string_of_int me) ] in
      let metrics = Stack.metrics stack in
      let m_intercepted = M.counter metrics ~labels "repl_intercepted_calls_total" in
      let m_reissued = M.counter metrics ~labels "repl_reissued_total" in
      let m_switches = M.counter metrics ~labels "repl_switches_total" in
      let m_stale = M.counter metrics ~labels "repl_stale_changes_total" in
      (* Algorithm 1, lines 1-4. *)
      let undelivered : (Msg.id, int * Payload.t) Hashtbl.t = Hashtbl.create 64 in
      M.register_int metrics ~labels "repl_undelivered" (fun () ->
          Hashtbl.length undelivered);
      let seq_number = ref 0 in
      let next_local = ref 0 in
      let sync_env () =
        Stack.set_env stack k_generation !seq_number;
        Stack.set_env stack k_undelivered (Hashtbl.length undelivered)
      in
      let abcast ~size payload =
        Stack.call stack Service.abcast (Abcast_iface.Broadcast { size; payload })
      in
      (* Lines 7-9: rABcast(m). *)
      let r_broadcast ~size payload =
        let id = { Msg.origin = me; seq = !next_local } in
        incr next_local;
        Hashtbl.replace undelivered id (size, payload);
        sync_env ();
        abcast ~size:(size + header_size)
          (A_data { sn = !seq_number; id; size; payload })
      in
      (* Lines 5-6: changeABcast(prot). *)
      let change_abcast protocol =
        abcast ~size:header_size (A_new { sn = !seq_number; protocol })
      in
      (* Lines 10-16: Adeliver(newABcast, sn, prot).

         One deliberate strengthening of the printed algorithm: the
         change is applied only if its generation tag matches the
         current [seqNumber] — the same filter line 18 applies to data
         messages. Algorithm 1 as printed applies every change
         unconditionally, and the bounded model checker
         ([Dpu_model.Algo1]) finds a uniform-agreement violation with
         two *overlapping* changeABcast requests: the second change
         message, issued before its requester had switched, is ordered
         in the old generation's stream and yields a switch point that
         is not synchronised with the stream being switched away from.
         The paper's §5.2.2 agreement proof silently assumes a change
         of protocol sn travels through protocol sn; this check makes
         that assumption hold (a racing change request is dropped; the
         requester can simply re-issue it). *)
      let on_new sn protocol =
        if sn <> !seq_number then begin
          M.incr m_stale;
          Stack.app_event stack ~tag:"repl.stale-change"
            ~data:(Printf.sprintf "sn=%d current=%d prot=%s" sn !seq_number protocol)
        end
        else begin
        incr seq_number;
        Stack.unbind stack Service.abcast;
        (* Pass the new generation to the factory (epochs keep the old
           and new protocol's wire traffic disjoint), then create and
           bind the new module — lines 13-14 and 22-28. *)
        Stack.set_env stack Abcast_iface.epoch_key !seq_number;
        ignore (Registry.instantiate registry stack ~name:protocol : Stack.module_);
        sync_env ();
        M.incr m_switches;
        Stack.app_event stack ~tag:"repl.switch"
          ~data:(Printf.sprintf "gen=%d prot=%s" !seq_number protocol);
        Stack.indicate stack Service.r_abcast
          (Repl_iface.Protocol_changed { generation = !seq_number; protocol });
        (* Lines 15-16: reissue undelivered messages through the new
           protocol. *)
        (* dpu-lint: allow hashtbl-iter — folded messages are sorted by id below *)
        let pending = Hashtbl.fold (fun id v acc -> (id, v) :: acc) undelivered [] in
        let pending = List.sort (fun (a, _) (b, _) -> Msg.id_compare a b) pending in
        List.iter
          (fun (id, (size, payload)) ->
            M.incr m_reissued;
            abcast ~size:(size + header_size)
              (A_data { sn = !seq_number; id; size; payload }))
          pending
        end
      in
      (* Lines 17-21: Adeliver(nil, sn, m). *)
      let on_data sn id payload =
        if sn = !seq_number then begin
          if Hashtbl.mem undelivered id then begin
            Hashtbl.remove undelivered id;
            sync_env ()
          end;
          Stack.indicate stack Service.r_abcast
            (Repl_iface.R_deliver { origin = id.Msg.origin; payload })
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Repl_iface.R_broadcast { size; payload } ->
              M.incr m_intercepted;
              r_broadcast ~size payload
            | Repl_iface.Change_abcast protocol ->
              M.incr m_intercepted;
              change_abcast protocol
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.abcast then
              match p with
              | Abcast_iface.Deliver { origin = _; payload = A_data { sn; id; size = _; payload } } ->
                on_data sn id payload
              | Abcast_iface.Deliver { origin = _; payload = A_new { sn; protocol } } ->
                on_new sn protocol
              | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.r_abcast) ~roles:[ "member" ]
    ~kinds:[ Spec.kind ~role:"member" "repl.change" ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "repl.change") "changing";
        Spec.t "changing" (Spec.Recv "repl.change") "idle";
      ]
    ~obligations:[ Spec.Total_order; Spec.Exactly_once; Spec.Validity ]
      (* Algorithm 1, lines 15-18: undelivered payloads are re-issued on
         the successor, and deliveries are filtered by generation *)
    ~capabilities:[ Spec.Reissue_undelivered; Spec.Generation_filter ] ()

let register system =
  let registry = System.registry system in
  Registry.register registry ~name:protocol_name ~provides:[ Service.r_abcast ]
    ~requires:[ Service.abcast ] ~spec
    (fun stack -> install ~registry stack)
