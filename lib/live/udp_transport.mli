(** The live TRANSPORT backend: one UDP socket per OS process,
    payloads crossing the wire through {!Dpu_kernel.Payload.encode}
    inside a versioned {!Dpu_kernel.Payload.Envelope}.

    Unlike the simulator transport — one value carrying all [n]
    endpoints — a live transport belongs to exactly one node: [send]
    only accepts [~src:me] and [set_handler] only [~node:me]. Frames
    whose envelope fails to decode, or whose service name / deployment
    generation differ from this transport's (stray traffic from an
    older run), count as [dropped].

    {b Zero-copy path.} All encode-side buffers (per-destination batch
    accumulators, the envelope writer, the syscall scratch) are
    allocated once at {!create}, at worst-case size; steady-state
    send/drain reuses them, so the wire path performs no allocation per
    message or per batch beyond the decoded payload values. {!drain}
    decodes datagrams in place over the receive scratch buffer
    ({!Dpu_kernel.Payload.Envelope.open_slice}).

    {b Egress batching} ([batching = Some k]): sends queue per
    destination and go out as one version-2 batch frame when [k]
    messages are pending for that peer, the frame would exceed the UDP
    limit, or {!flush} is called (the node event loop flushes every
    pass, bounding the added latency to one loop iteration). Counters
    stay message-grained — a batch of [m] accepted by the syscall adds
    [m] to [sent] — except [bytes], which charges actual wire bytes
    (batching makes it {e smaller} for the same traffic). A batch
    frame shares one envelope, so a stale-generation batch is dropped
    atomically by the receiver; it is never split. *)

open Dpu_kernel

type t

val create :
  ?service:string ->
  ?generation:int ->
  ?batching:int ->
  ?on_batch:(int -> unit) ->
  me:int ->
  fd:Unix.file_descr ->
  peers:Unix.sockaddr array ->
  unit ->
  t
(** [fd] must already be bound; it is switched to non-blocking mode.
    [peers.(i)] is the address of node [i] (including our own — self
    sends loop through the kernel's UDP stack like any other).
    [batching] is the egress batch cap (messages per frame); absent =
    one legacy version-1 frame per message. [on_batch] observes each
    accepted batch's size (for the msgs-per-batch histogram). *)

val transport : t -> Payload.t Dpu_runtime.Transport.t

val flush : t -> unit
(** Ship every non-empty per-destination queue now. No-op without
    batching. Call from the event loop each pass and once after it —
    messages must never be stranded in a queue at shutdown or across
    the replacement switch window. *)

val pending : t -> int
(** Messages currently queued for egress across all destinations. *)

val drain : t -> int
(** Receive until the socket would block, handing each decoded payload
    to the installed handler; returns the number of datagrams pulled
    this pass (the event-loop batch size, fed to the drain-batch
    profile histogram). Unexpected receive errors (e.g. [ENOMEM],
    [EBADF] in a shutdown race) end the pass and are counted — as
    [dropped] and in {!rx_errors} — instead of escaping into the node
    loop. *)

val rx_errors : t -> int
(** Receive syscalls that failed with something other than
    would-block/interrupt/connection-refused. Each is also counted as
    one [dropped] datagram. *)

val encode_allocs : t -> int
(** Encode-path buffers allocated since creation. Constant after
    {!create} by construction — the counter exists so a test can
    assert that sending thousands of messages across hundreds of
    batches allocates nothing further. *)

val fd : t -> Unix.file_descr

val counters : t -> Dpu_runtime.Transport.counters

val batches : t -> Dpu_runtime.Transport.batch_counters
