(** The live TRANSPORT backend: one UDP socket per OS process,
    payloads crossing the wire through {!Dpu_kernel.Payload.encode}
    inside a versioned {!Dpu_kernel.Payload.Envelope}.

    Unlike the simulator transport — one value carrying all [n]
    endpoints — a live transport belongs to exactly one node: [send]
    only accepts [~src:me] and [set_handler] only [~node:me]. Frames
    whose envelope fails to decode, or whose service name / deployment
    generation differ from this transport's (stray traffic from an
    older run), count as [dropped]. *)

open Dpu_kernel

type t

val create :
  ?service:string -> ?generation:int -> me:int -> fd:Unix.file_descr ->
  peers:Unix.sockaddr array -> unit -> t
(** [fd] must already be bound; it is switched to non-blocking mode.
    [peers.(i)] is the address of node [i] (including our own — self
    sends loop through the kernel's UDP stack like any other). *)

val transport : t -> Payload.t Dpu_runtime.Transport.t

val drain : t -> int
(** Receive until the socket would block, handing each decoded payload
    to the installed handler; returns the number of frames pulled this
    pass (the event-loop batch size, fed to the drain-batch profile
    histogram). Unexpected receive errors (e.g. [ENOMEM], [EBADF] in a
    shutdown race) end the pass and are counted — as [dropped] and in
    {!rx_errors} — instead of escaping into the node loop. *)

val rx_errors : t -> int
(** Receive syscalls that failed with something other than
    would-block/interrupt/connection-refused. Each is also counted as
    one [dropped] datagram. *)

val fd : t -> Unix.file_descr

val counters : t -> Dpu_runtime.Transport.counters
