module Clock = Dpu_runtime.Clock

type entry = {
  e_deadline : float;
  e_tick : int;  (* 0 for ready-queue entries; the filing tick otherwise *)
  e_seq : int;
  e_timer : Clock.timer option;
  e_fn : unit -> unit;
  mutable e_counted : bool;
      (* still counted in [pending]; cleared the first time the entry is
         fired or observed cancelled, wherever that happens first *)
}

type t = {
  granularity : float;
  slots : entry list ref array;
  mutable tick : int;  (* next tick to process; entries never file below it *)
  mutable floor : int;
      (* lowest tick a new entry may file at: one past the target of the
         pass in progress, so a callback re-arming its own timer never
         fires again within the pass however far [now] jumped *)
  mutable seq : int;
  mutable pending : int;
  ready : entry Queue.t;  (* zero-delay entries, fired FIFO next advance *)
  (* Event-loop profile: lifetime totals, sampled by observability
     callbacks at snapshot time. *)
  mutable fired : int;
  mutable cascades : int;
}

let create ?(granularity_ms = 1.0) ?(slots = 512) () =
  if granularity_ms <= 0.0 then invalid_arg "Timer_wheel.create: granularity";
  if slots < 1 then invalid_arg "Timer_wheel.create: slots";
  {
    granularity = granularity_ms;
    slots = Array.init slots (fun _ -> ref []);
    tick = 0;
    floor = 0;
    seq = 0;
    pending = 0;
    ready = Queue.create ();
    fired = 0;
    cascades = 0;
  }

let pending t = t.pending

let fired t = t.fired

let cascades t = t.cascades

let add t ~now ~delay ?timer fn =
  let delay = Float.max delay 0.0 in
  let deadline = now +. delay in
  let e =
    {
      e_deadline = deadline;
      e_tick = 0;
      e_seq = t.seq;
      e_timer = timer;
      e_fn = fn;
      e_counted = true;
    }
  in
  t.seq <- t.seq + 1;
  t.pending <- t.pending + 1;
  if delay = 0.0 then Queue.push e t.ready
  else begin
    (* Clamp to [t.floor]/[t.tick]: an entry due in a tick the current
       pass covers fires on the next advance, never in a slot the
       cursor already passed or is about to pass. *)
    let tick =
      max (max t.tick t.floor)
        (int_of_float (Float.ceil (deadline /. t.granularity)))
    in
    let e = { e with e_tick = tick } in
    let bucket = t.slots.(tick mod Array.length t.slots) in
    bucket := e :: !bucket
  end

let live e =
  match e.e_timer with Some tm -> not (Clock.is_cancelled tm) | None -> true

(* Take the entry out of the pending count, exactly once. Called when
   the entry fires, and from any scan that observes it cancelled — so
   [pending] never reports phantom work from cancelled entries waiting
   in far slots for their sweep. *)
let discount t e =
  if e.e_counted then begin
    e.e_counted <- false;
    t.pending <- t.pending - 1
  end

(* When the entry will actually fire: ready-queue entries run on the
   next advance, slotted entries when the cursor reaches [e_tick] —
   which, after floor/tick clamping, can be later than the nominal
   [e_deadline]. *)
let effective_deadline t e =
  if e.e_tick = 0 then e.e_deadline
  else Float.max e.e_deadline (float_of_int e.e_tick *. t.granularity)

let next_deadline t =
  if t.pending = 0 then None
  else
    let consider acc e =
      if not (live e) then begin
        discount t e;
        acc
      end
      else
        let d = effective_deadline t e in
        match acc with None -> Some d | Some d' -> Some (Float.min d d')
    in
    let acc = Queue.fold consider None t.ready in
    Array.fold_left
      (fun acc bucket -> List.fold_left consider acc !bucket)
      acc t.slots

let cmp_due a b =
  match Float.compare a.e_deadline b.e_deadline with
  | 0 -> Int.compare a.e_seq b.e_seq
  | c -> c

let fire t e =
  discount t e;
  if live e then begin
    t.fired <- t.fired + 1;
    e.e_fn ()
  end

let advance t ~now =
  let target = int_of_float (now /. t.granularity) in
  t.floor <- max t.floor (target + 1);
  if Array.exists (fun b -> !b <> []) t.slots then
    while t.tick <= target do
      let tk = t.tick in
      let bucket = t.slots.(tk mod Array.length t.slots) in
      let due, future = List.partition (fun e -> e.e_tick <= tk) !bucket in
      bucket := future;
      (* Bump the cursor before firing: callbacks may re-arm timers and
         their entries must file at [tk + 1] or later (see [add]). *)
      t.tick <- tk + 1;
      List.iter (fire t) (List.sort cmp_due due)
    done
  else if target >= t.tick then t.tick <- target + 1;
  (* Zero-delay entries run to quiescence within the pass: deferred
     work enqueued by a firing entry (one stack hop scheduling the
     next) happens now, exactly like same-instant events in the
     simulator. *)
  while not (Queue.is_empty t.ready) do
    let e = Queue.pop t.ready in
    if live e then t.cascades <- t.cascades + 1;
    fire t e
  done
