(* Assembly of the run-wide Chrome trace for a live deployment: the
   merged collector's message/switch spans, each process's shipped
   trace buffer, and the nemesis schedule rendered as fault windows on
   a synthetic process — all on the one time axis the shared epoch
   gives us. *)

module TE = Dpu_obs.Trace_event
module Schedule = Dpu_faults.Schedule

(* Spans.timeline_pid is [n]; the nemesis gets the next synthetic
   process so fault windows sit in their own swimlane. *)
let nemesis_pid ~n = n + 1

let group_string groups =
  String.concat "|"
    (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups)

let schedule_events ~n ~horizon_ms schedule =
  match schedule with
  | [] -> []
  | _ ->
    let pid = nemesis_pid ~n in
    let out = ref [] in
    let mark ~name ~ts_ms =
      out := TE.instant ~name ~cat:"nemesis" ~pid ~tid:0 ~ts_ms () :: !out
    in
    let span ~name ~t0 ~t1 =
      out :=
        TE.complete ~name ~cat:"nemesis" ~pid ~tid:0 ~ts_ms:t0
          ~dur_ms:(Float.min t1 horizon_ms -. t0)
          ()
        :: !out
    in
    (* Crash and partition windows are implicit (crash .. recover,
       partition .. heal/next partition); ones never closed by the
       schedule are clamped at the horizon — the fault outlives the
       run. *)
    let crash_open : (int, float) Hashtbl.t = Hashtbl.create 4 in
    let partition_open = ref None in
    let close_partition ~at =
      match !partition_open with
      | None -> ()
      | Some (t0, desc) ->
        partition_open := None;
        span ~name:("partition " ^ desc) ~t0 ~t1:at
    in
    List.iter
      (fun (e : Schedule.event) ->
        match e.Schedule.action with
        | Schedule.Crash node ->
          mark ~name:(Printf.sprintf "crash node %d" node) ~ts_ms:e.at;
          Hashtbl.replace crash_open node e.at
        | Schedule.Recover node -> (
          mark ~name:(Printf.sprintf "recover node %d" node) ~ts_ms:e.at;
          match Hashtbl.find_opt crash_open node with
          | Some t0 ->
            Hashtbl.remove crash_open node;
            span ~name:(Printf.sprintf "crash node %d" node) ~t0 ~t1:e.at
          | None -> ())
        | Schedule.Partition groups ->
          close_partition ~at:e.at;
          let desc = group_string groups in
          mark ~name:("partition " ^ desc) ~ts_ms:e.at;
          partition_open := Some (e.at, desc)
        | Schedule.Heal ->
          mark ~name:"heal" ~ts_ms:e.at;
          close_partition ~at:e.at
        | Schedule.Loss_window { p; from_; until } ->
          span ~name:(Printf.sprintf "loss p=%g" p) ~t0:from_ ~t1:until
        | Schedule.Dup_burst { p; from_; until } ->
          span ~name:(Printf.sprintf "dup p=%g" p) ~t0:from_ ~t1:until
        | Schedule.Degrade_link { src; dst; window; _ } ->
          span
            ~name:(Printf.sprintf "slow %d>%d" src dst)
            ~t0:window.Schedule.from_ ~t1:window.Schedule.until)
      (Schedule.sorted schedule);
    (* dpu-lint: allow hashtbl-iter — folded nodes are sorted before use *)
    Hashtbl.fold (fun node t0 acc -> (node, t0) :: acc) crash_open []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.iter (fun (node, t0) ->
           span ~name:(Printf.sprintf "crash node %d" node) ~t0 ~t1:horizon_ms);
    close_partition ~at:horizon_ms;
    TE.process_name ~pid "nemesis"
    :: TE.thread_name ~pid ~tid:0 "fault windows"
    :: List.rev !out

let merged ~n ~horizon_ms ~nemesis ~collector ~node_traces =
  Dpu_core.Spans.of_run ~n collector
  @ List.concat node_traces
  @ schedule_events ~n ~horizon_ms nemesis
