module Clock = Dpu_runtime.Clock

type t = { epoch : float; wheel : Timer_wheel.t }

let create ~epoch wheel = { epoch; wheel }

let now t = (Unix.gettimeofday () -. t.epoch) *. 1000.0

let wheel t = t.wheel

let clock t =
  let add ?timer ~delay fn = Timer_wheel.add t.wheel ~now:(now t) ~delay ?timer fn in
  {
    Clock.now = (fun () -> now t);
    defer = (fun ~delay fn -> add ~delay fn);
    schedule_impl =
      (fun ~delay fn ->
        let tm = Clock.make_timer ~cancel:ignore in
        add ~timer:tm ~delay fn;
        tm);
    every_impl =
      (fun ~period fn ->
        let tm = Clock.make_timer ~cancel:ignore in
        let rec arm () =
          add ~timer:tm ~delay:period (fun () ->
              fn ();
              if not (Clock.is_cancelled tm) then arm ())
        in
        arm ();
        tm);
  }

let advance t = Timer_wheel.advance t.wheel ~now:(now t)

let next_deadline t = Timer_wheel.next_deadline t.wheel
