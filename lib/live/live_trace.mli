(** Run-wide Chrome trace assembly for live deployments.

    Every process stamps its events in milliseconds since the epoch the
    parent handed out before forking, so the merged event list needs no
    clock reconciliation: collector-derived spans, per-node shipped
    buffers and nemesis windows all share one time axis. *)

val nemesis_pid : n:int -> int
(** The synthetic trace process carrying fault windows — one past
    {!Dpu_core.Spans}' replacement-timeline pid. *)

val schedule_events :
  n:int -> horizon_ms:float -> Dpu_faults.Schedule.t -> Dpu_obs.Trace_event.t list
(** Render a nemesis schedule as trace events on the synthetic pid:
    instants at every boundary (crash/recover, partition/heal) and
    duration spans for each window — crash .. recover, partition ..
    heal, loss/dup/degrade windows. Windows the schedule never closes
    are clamped at [horizon_ms]. Empty schedule, no events. *)

val merged :
  n:int ->
  horizon_ms:float ->
  nemesis:Dpu_faults.Schedule.t ->
  collector:Dpu_core.Collector.t ->
  node_traces:Dpu_obs.Trace_event.t list list ->
  Dpu_obs.Trace_event.t list
(** The full merged trace: {!Dpu_core.Spans.of_run} over the merged
    collector (per-message spans, install instants, replacement
    windows), each node's own events, and {!schedule_events}. *)
