open Dpu_kernel
module Clock = Dpu_runtime.Clock
module Middleware = Dpu_core.Middleware
module Collector = Dpu_core.Collector
module J = Dpu_obs.Json

type config = {
  me : int;
  n : int;
  epoch : float;
  service : string;
  generation : int;
  initial : string;
  switch_to : string option;
  switch_at_ms : float;
  load : float;
  msg_size : int;
  duration_ms : float;
  drain_ms : float;
  seed : int;
}

type report = {
  node : int;
  sends : (Msg.id * float) list;
  delivers : (Msg.id * float) list;
  switches : (int * float) list;
  counters : Dpu_runtime.Transport.counters;
  metrics : J.t;
}

let run ~config ~fd ~peers () =
  let wheel = Timer_wheel.create ~granularity_ms:0.5 () in
  let lclock = Live_clock.create ~epoch:config.epoch wheel in
  let tr =
    Udp_transport.create ~service:config.service ~generation:config.generation
      ~me:config.me ~fd ~peers ()
  in
  let metrics = Dpu_obs.Metrics.create () in
  (* Per-node seeds: protocol-internal randomisation must not be in
     lockstep across processes. *)
  let rng = Dpu_engine.Rng.create ~seed:(config.seed + (7919 * (config.me + 1))) in
  let runtime =
    Dpu_runtime.Runtime.create ~clock:(Live_clock.clock lclock)
      ~transport:(Udp_transport.transport tr) ~rng
  in
  let system =
    System.of_runtime ~hop_cost:0.0 ~trace_enabled:false ~metrics
      ~local:[ config.me ] ~runtime ~n:config.n ()
  in
  let mw_config =
    {
      Middleware.default_config with
      profile =
        {
          Dpu_core.Stack_builder.default_profile with
          initial_abcast = config.initial;
        };
      msg_size = config.msg_size;
    }
  in
  let mw = Middleware.of_system ~config:mw_config system in
  let clock = System.clock system in
  (* Open-loop load, staggered so the n processes do not send in
     phase: this node sends every [n / load] seconds. *)
  let interval = 1000.0 *. float_of_int config.n /. config.load in
  Clock.defer clock
    ~delay:(interval *. float_of_int config.me /. float_of_int config.n)
    (fun () ->
      ignore
        (Clock.every clock ~period:interval (fun () ->
             if Live_clock.now lclock < config.duration_ms then
               ignore (Middleware.broadcast mw ~node:config.me "live" : Msg.t))
          : Clock.timer));
  (match config.switch_to with
  | Some protocol when config.me = 0 ->
    Clock.defer clock ~delay:config.switch_at_ms (fun () ->
        Middleware.change_protocol mw ~node:0 protocol)
  | Some _ | None -> ());
  let stop_at = config.duration_ms +. config.drain_ms in
  let fd = Udp_transport.fd tr in
  let rec loop () =
    Live_clock.advance lclock;
    Udp_transport.drain tr;
    let nowms = Live_clock.now lclock in
    if nowms < stop_at then begin
      let next =
        match Live_clock.next_deadline lclock with
        | None -> stop_at
        | Some d -> Float.min d stop_at
      in
      (* Cap the sleep so the stop deadline and stray wakeups are
         handled promptly even with an empty wheel. *)
      let timeout = Float.max 0.0 (Float.min ((next -. nowms) /. 1000.0) 0.05) in
      (match Unix.select [ fd ] [] [] timeout with
      | [], _, _ -> ()
      | _ :: _, _, _ -> Udp_transport.drain tr
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  let collector = Middleware.collector mw in
  {
    node = config.me;
    sends =
      List.filter_map
        (fun (id, node, time) -> if node = config.me then Some (id, time) else None)
        (Collector.sends collector);
    delivers = Collector.delivers_of collector ~node:config.me;
    switches =
      List.filter_map
        (fun (node, g, time) -> if node = config.me then Some (g, time) else None)
        (Collector.switches collector);
    counters = Udp_transport.counters tr;
    metrics = Dpu_obs.Metrics.to_json metrics;
  }

(* ------------------------------------------------------------------ *)
(* Report (de)serialisation — children hand results to the parent as  *)
(* JSON files.                                                        *)
(* ------------------------------------------------------------------ *)

let stamped (id, time) =
  J.Obj [ ("id", J.Str (Msg.id_to_string id)); ("t", J.Float time) ]

let report_to_json r =
  let c = r.counters in
  J.Obj
    [
      ("node", J.Int r.node);
      ("sends", J.List (List.map stamped r.sends));
      ("delivers", J.List (List.map stamped r.delivers));
      ( "switches",
        J.List
          (List.map
             (fun (g, time) ->
               J.Obj [ ("generation", J.Int g); ("t", J.Float time) ])
             r.switches) );
      ( "transport",
        J.Obj
          [
            ("sent", J.Int c.Dpu_runtime.Transport.sent);
            ("delivered", J.Int c.Dpu_runtime.Transport.delivered);
            ("dropped", J.Int c.Dpu_runtime.Transport.dropped);
            ("bytes", J.Int c.Dpu_runtime.Transport.bytes);
          ] );
      ("metrics", r.metrics);
    ]

let parse_fail fmt = Printf.ksprintf (fun msg -> failwith msg) fmt

let get j name =
  match J.member j name with
  | Some v -> v
  | None -> parse_fail "live report: missing field %S" name

let get_int j name =
  match J.to_int_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not an int" name

let get_float j name =
  match J.to_float_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not a number" name

let get_list j name =
  match J.to_list_opt (get j name) with
  | Some l -> l
  | None -> parse_fail "live report: field %S is not a list" name

let parse_stamped j =
  let id =
    match J.to_string_opt (get j "id") with
    | Some s -> Dpu_props.Abcast_props.id_of_string_exn s
    | None -> parse_fail "live report: message id is not a string"
  in
  (id, get_float j "t")

let report_of_json j =
  match
    let transport = get j "transport" in
    {
      node = get_int j "node";
      sends = List.map parse_stamped (get_list j "sends");
      delivers = List.map parse_stamped (get_list j "delivers");
      switches =
        List.map
          (fun s -> (get_int s "generation", get_float s "t"))
          (get_list j "switches");
      counters =
        {
          Dpu_runtime.Transport.sent = get_int transport "sent";
          delivered = get_int transport "delivered";
          dropped = get_int transport "dropped";
          bytes = get_int transport "bytes";
        };
      metrics = get j "metrics";
    }
  with
  | r -> Ok r
  | exception Failure msg -> Error msg
