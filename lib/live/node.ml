open Dpu_kernel
module Clock = Dpu_runtime.Clock
module Middleware = Dpu_core.Middleware
module Collector = Dpu_core.Collector
module J = Dpu_obs.Json

type config = {
  me : int;
  n : int;
  epoch : float;
  service : string;
  generation : int;
  initial : string;
  switches : (float * int * string) list;
  nemesis : Dpu_faults.Schedule.t;
  load : float;
  msg_size : int;
  duration_ms : float;
  drain_ms : float;
  seed : int;
}

type report = {
  node : int;
  sends : (Msg.id * float) list;
  delivers : (Msg.id * float) list;
  switches : (int * float) list;
  counters : Dpu_runtime.Transport.counters;
  rx_errors : int;
  faults : Dpu_faults.Fault_transport.stats option;
  metrics : J.t;
}

let run ~config ~fd ~peers () =
  let wheel = Timer_wheel.create ~granularity_ms:0.5 () in
  let lclock = Live_clock.create ~epoch:config.epoch wheel in
  let tr =
    Udp_transport.create ~service:config.service ~generation:config.generation
      ~me:config.me ~fd ~peers ()
  in
  let metrics = Dpu_obs.Metrics.create () in
  (* Per-node seeds: protocol-internal randomisation must not be in
     lockstep across processes. *)
  let rng = Dpu_engine.Rng.create ~seed:(config.seed + (7919 * (config.me + 1))) in
  (* The nemesis interposes behind the Transport seam, on this node's
     clock: the same schedule value every other process (and the
     simulated driver) interprets. Distinct per-node RNG seeds keep the
     probabilistic faults independent across processes. *)
  let shim =
    match config.nemesis with
    | [] -> None
    | schedule ->
      Some
        (Dpu_faults.Fault_transport.create
           ~seed:(config.seed + (31 * (config.me + 1)))
           ~schedule ~clock:(Live_clock.clock lclock)
           (Udp_transport.transport tr))
  in
  let transport =
    match shim with
    | None -> Udp_transport.transport tr
    | Some s -> Dpu_faults.Fault_transport.transport s
  in
  let runtime =
    Dpu_runtime.Runtime.create ~clock:(Live_clock.clock lclock) ~transport ~rng
  in
  let system =
    System.of_runtime ~hop_cost:0.0 ~trace_enabled:false ~metrics
      ~local:[ config.me ] ~runtime ~n:config.n ()
  in
  let mw_config =
    {
      Middleware.default_config with
      profile =
        {
          Dpu_core.Stack_builder.default_profile with
          initial_abcast = config.initial;
        };
      msg_size = config.msg_size;
    }
  in
  let mw = Middleware.of_system ~config:mw_config system in
  let clock = System.clock system in
  (* Open-loop load, staggered so the n processes do not send in
     phase: this node sends every [n / load] seconds. *)
  let interval = 1000.0 *. float_of_int config.n /. config.load in
  Clock.defer clock
    ~delay:(interval *. float_of_int config.me /. float_of_int config.n)
    (fun () ->
      ignore
        (Clock.every clock ~period:interval (fun () ->
             if Live_clock.now lclock < config.duration_ms then
               ignore (Middleware.broadcast mw ~node:config.me "live" : Msg.t))
          : Clock.timer));
  List.iter
    (fun (at, node, protocol) ->
      if node = config.me then
        Clock.defer clock ~delay:at (fun () ->
            Middleware.change_protocol mw ~node protocol))
    config.switches;
  let stop_at = config.duration_ms +. config.drain_ms in
  let fd = Udp_transport.fd tr in
  let rec loop () =
    Live_clock.advance lclock;
    Udp_transport.drain tr;
    let nowms = Live_clock.now lclock in
    if nowms < stop_at then begin
      let next =
        match Live_clock.next_deadline lclock with
        | None -> stop_at
        | Some d -> Float.min d stop_at
      in
      (* Cap the sleep so the stop deadline and stray wakeups are
         handled promptly even with an empty wheel. *)
      let timeout = Float.max 0.0 (Float.min ((next -. nowms) /. 1000.0) 0.05) in
      (match Unix.select [ fd ] [] [] timeout with
      | [], _, _ -> ()
      | _ :: _, _, _ -> Udp_transport.drain tr
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  let collector = Middleware.collector mw in
  {
    node = config.me;
    sends =
      List.filter_map
        (fun (id, node, time) -> if node = config.me then Some (id, time) else None)
        (Collector.sends collector);
    delivers = Collector.delivers_of collector ~node:config.me;
    switches =
      List.filter_map
        (fun (node, g, time) -> if node = config.me then Some (g, time) else None)
        (Collector.switches collector);
    counters =
      (match shim with
      | None -> Udp_transport.counters tr
      | Some s -> Dpu_faults.Fault_transport.counters s);
    rx_errors = Udp_transport.rx_errors tr;
    faults = Option.map Dpu_faults.Fault_transport.stats shim;
    metrics = Dpu_obs.Metrics.to_json metrics;
  }

(* ------------------------------------------------------------------ *)
(* Report (de)serialisation — children hand results to the parent as  *)
(* JSON files.                                                        *)
(* ------------------------------------------------------------------ *)

let stamped (id, time) =
  J.Obj [ ("id", J.Str (Msg.id_to_string id)); ("t", J.Float time) ]

let report_to_json r =
  let c = r.counters in
  (* "faults" is only present on nemesis runs, and readers must accept
     its absence: clean-run reports keep the pre-nemesis shape (modulo
     the additive "rx_errors" counter). *)
  let faults_fields =
    match r.faults with
    | None -> []
    | Some f ->
      [
        ( "faults",
          J.Obj
            [
              ("blocked_crash", J.Int f.Dpu_faults.Fault_transport.blocked_crash);
              ("blocked_partition", J.Int f.blocked_partition);
              ("injected_loss", J.Int f.injected_loss);
              ("injected_dup", J.Int f.injected_dup);
              ("delayed", J.Int f.delayed);
              ("rx_blocked", J.Int f.rx_blocked);
            ] );
      ]
  in
  J.Obj
    ([
       ("node", J.Int r.node);
       ("sends", J.List (List.map stamped r.sends));
       ("delivers", J.List (List.map stamped r.delivers));
       ( "switches",
         J.List
           (List.map
              (fun (g, time) ->
                J.Obj [ ("generation", J.Int g); ("t", J.Float time) ])
              r.switches) );
       ( "transport",
         J.Obj
           [
             ("sent", J.Int c.Dpu_runtime.Transport.sent);
             ("delivered", J.Int c.Dpu_runtime.Transport.delivered);
             ("dropped", J.Int c.Dpu_runtime.Transport.dropped);
             ("bytes", J.Int c.Dpu_runtime.Transport.bytes);
             ("rx_errors", J.Int r.rx_errors);
           ] );
     ]
    @ faults_fields
    @ [ ("metrics", r.metrics) ])

let parse_fail fmt = Printf.ksprintf (fun msg -> failwith msg) fmt

let get j name =
  match J.member j name with
  | Some v -> v
  | None -> parse_fail "live report: missing field %S" name

let get_int j name =
  match J.to_int_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not an int" name

let get_float j name =
  match J.to_float_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not a number" name

let get_list j name =
  match J.to_list_opt (get j name) with
  | Some l -> l
  | None -> parse_fail "live report: field %S is not a list" name

let parse_stamped j =
  let id =
    match J.to_string_opt (get j "id") with
    | Some s -> Dpu_props.Abcast_props.id_of_string_exn s
    | None -> parse_fail "live report: message id is not a string"
  in
  (id, get_float j "t")

let report_of_json j =
  match
    let transport = get j "transport" in
    (* Optional fields default: reports written by pre-nemesis builds
       (and clean runs) stay parseable. *)
    let rx_errors =
      match J.member transport "rx_errors" with
      | None -> 0
      | Some v -> (
        match J.to_int_opt v with
        | Some v -> v
        | None -> parse_fail "live report: field \"rx_errors\" is not an int")
    in
    let faults =
      match J.member j "faults" with
      | None -> None
      | Some f ->
        Some
          {
            Dpu_faults.Fault_transport.blocked_crash = get_int f "blocked_crash";
            blocked_partition = get_int f "blocked_partition";
            injected_loss = get_int f "injected_loss";
            injected_dup = get_int f "injected_dup";
            delayed = get_int f "delayed";
            rx_blocked = get_int f "rx_blocked";
          }
    in
    {
      node = get_int j "node";
      sends = List.map parse_stamped (get_list j "sends");
      delivers = List.map parse_stamped (get_list j "delivers");
      switches =
        List.map
          (fun s -> (get_int s "generation", get_float s "t"))
          (get_list j "switches");
      counters =
        {
          Dpu_runtime.Transport.sent = get_int transport "sent";
          delivered = get_int transport "delivered";
          dropped = get_int transport "dropped";
          bytes = get_int transport "bytes";
        };
      rx_errors;
      faults;
      metrics = get j "metrics";
    }
  with
  | r -> Ok r
  | exception Failure msg -> Error msg
