open Dpu_kernel
module Clock = Dpu_runtime.Clock
module Middleware = Dpu_core.Middleware
module Collector = Dpu_core.Collector
module J = Dpu_obs.Json
module TE = Dpu_obs.Trace_event
module Metrics = Dpu_obs.Metrics
module Log = Dpu_obs.Log

type config = {
  me : int;
  n : int;
  epoch : float;
  service : string;
  generation : int;
  initial : string;
  switches : (float * int * string) list;
  nemesis : Dpu_faults.Schedule.t;
  load : float;
  msg_size : int;
  batching : int option;
  duration_ms : float;
  drain_ms : float;
  seed : int;
  trace_enabled : bool;
  log_path : string option;
}

type report = {
  node : int;
  sends : (Msg.id * float) list;
  delivers : (Msg.id * float) list;
  switches : (int * float) list;
  counters : Dpu_runtime.Transport.counters;
  batches : Dpu_runtime.Transport.batch_counters option;
  rx_errors : int;
  faults : Dpu_faults.Fault_transport.stats option;
  metrics : J.t;
  trace : TE.t list;
}

(* Safety valve for the per-node trace buffer: a nemesis injecting per
   frame can emit thousands of instants; past this point the buffer
   stops growing rather than bloating the report file. *)
let max_trace_events = 20_000

(* The kernel/dpu lane of this node's process in the trace viewer,
   matching [Dpu_core.Spans.tid_kernel]. *)
let tid_kernel = 1

let run ~config ~fd ~peers () =
  let wheel = Timer_wheel.create ~granularity_ms:0.5 () in
  let lclock = Live_clock.create ~epoch:config.epoch wheel in
  let metrics = Dpu_obs.Metrics.create () in
  let mlabels = [ ("node", string_of_int config.me) ] in
  let on_batch =
    Option.map
      (fun (_ : int) ->
        let h =
          Metrics.histogram metrics ~labels:mlabels
            ~bounds:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 |]
            "live_msgs_per_batch"
        in
        fun count -> Metrics.observe h (float_of_int count))
      config.batching
  in
  let tr =
    Udp_transport.create ~service:config.service ~generation:config.generation
      ?batching:config.batching ?on_batch ~me:config.me ~fd ~peers ()
  in
  (* Per-node trace buffer: events against the shared epoch, shipped in
     the report for the parent to merge onto one time axis. *)
  let trace = ref [] in
  let trace_len = ref 0 in
  let record ev =
    if config.trace_enabled && !trace_len < max_trace_events then begin
      trace := ev :: !trace;
      incr trace_len
    end
  in
  let instant ~name ~cat =
    record
      (TE.instant ~name ~cat ~pid:config.me ~tid:tid_kernel
         ~ts_ms:(Live_clock.now lclock) ())
  in
  let log, close_log =
    match config.log_path with
    | None -> (Log.noop, fun () -> ())
    | Some path -> Log.to_file ~clock:(fun () -> Live_clock.now lclock) path
  in
  (* Per-node seeds: protocol-internal randomisation must not be in
     lockstep across processes. *)
  let rng = Dpu_engine.Rng.create ~seed:(config.seed + (7919 * (config.me + 1))) in
  (* The nemesis interposes behind the Transport seam, on this node's
     clock: the same schedule value every other process (and the
     simulated driver) interprets. Distinct per-node RNG seeds keep the
     probabilistic faults independent across processes. *)
  let on_fault ~kind ~detail = instant ~name:(kind ^ " " ^ detail) ~cat:"fault" in
  let shim =
    match config.nemesis with
    | [] -> None
    | schedule ->
      Some
        (Dpu_faults.Fault_transport.create
           ~seed:(config.seed + (31 * (config.me + 1)))
           ?on_event:(if config.trace_enabled then Some on_fault else None)
           ~schedule ~clock:(Live_clock.clock lclock)
           (Udp_transport.transport tr))
  in
  let transport =
    match shim with
    | None -> Udp_transport.transport tr
    | Some s -> Dpu_faults.Fault_transport.transport s
  in
  let runtime =
    Dpu_runtime.Runtime.create ~clock:(Live_clock.clock lclock) ~transport ~rng
  in
  let system =
    System.of_runtime ~hop_cost:0.0 ~trace_enabled:false ~metrics
      ~local:[ config.me ] ~runtime ~n:config.n ()
  in
  let mw_config =
    {
      Middleware.default_config with
      profile =
        {
          Dpu_core.Stack_builder.default_profile with
          initial_abcast = config.initial;
          (* Throughput mode couples protocol-level batching to egress
             batching under one knob: the same cap, a short delay. *)
          batching =
            Option.map
              (fun k -> { Dpu_protocols.Batcher.max_batch = k; max_delay_ms = 2.0 })
              config.batching;
        };
      msg_size = config.msg_size;
    }
  in
  let mw = Middleware.of_system ~config:mw_config system in
  let clock = System.clock system in
  (* Open-loop load, staggered so the n processes do not send in
     phase: this node sends every [n / load] seconds. *)
  let interval = 1000.0 *. float_of_int config.n /. config.load in
  Clock.defer clock
    ~delay:(interval *. float_of_int config.me /. float_of_int config.n)
    (fun () ->
      ignore
        (Clock.every clock ~period:interval (fun () ->
             if Live_clock.now lclock < config.duration_ms then
               ignore (Middleware.broadcast mw ~node:config.me "live" : Msg.t))
          : Clock.timer));
  List.iter
    (fun (at, node, protocol) ->
      if node = config.me then
        Clock.defer clock ~delay:at (fun () ->
            instant ~name:("trigger change-abcast -> " ^ protocol) ~cat:"dpu";
            Log.info log
              ~fields:[ ("node", J.Int node); ("target", J.Str protocol) ]
              "switch trigger";
            Middleware.change_protocol mw ~node protocol))
    config.switches;
  (* Event-loop profile. The histograms/gauges live in the node's
     registry under a per-node label, so the parent's merged snapshot
     keeps the series apart; wheel totals are sampled only when the
     snapshot is taken. *)
  let select_wait = Metrics.histogram metrics ~labels:mlabels "live_select_wait_ms" in
  let drain_batch =
    Metrics.histogram metrics ~labels:mlabels
      ~bounds:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]
      "live_drain_batch"
  in
  let busy_ms = ref 0.0 and idle_ms = ref 0.0 in
  Metrics.register_int metrics ~labels:mlabels "live_wheel_fired" (fun () ->
      Timer_wheel.fired wheel);
  Metrics.register_int metrics ~labels:mlabels "live_wheel_cascades" (fun () ->
      Timer_wheel.cascades wheel);
  Metrics.register_float metrics ~labels:mlabels "live_wheel_pending" (fun () ->
      float_of_int (Timer_wheel.pending wheel));
  Metrics.register_float metrics ~labels:mlabels "live_busy_ms" (fun () -> !busy_ms);
  Metrics.register_float metrics ~labels:mlabels "live_idle_ms" (fun () -> !idle_ms);
  instant ~name:"node start" ~cat:"node";
  Log.info log
    ~fields:
      [ ("n", J.Int config.n); ("initial", J.Str config.initial);
        ("load", J.Float config.load) ]
    "node start";
  let stop_at = config.duration_ms +. config.drain_ms in
  let fd = Udp_transport.fd tr in
  let rec loop ~busy_from =
    Live_clock.advance lclock;
    Metrics.observe drain_batch (float_of_int (Udp_transport.drain tr));
    (* Ship partial egress batches before sleeping: batching must never
       hold a frame across a select wait, so the added latency is
       bounded by one loop pass. *)
    Udp_transport.flush tr;
    let nowms = Live_clock.now lclock in
    if nowms < stop_at then begin
      let next =
        match Live_clock.next_deadline lclock with
        | None -> stop_at
        | Some d -> Float.min d stop_at
      in
      (* Cap the sleep so the stop deadline and stray wakeups are
         handled promptly even with an empty wheel. *)
      let timeout = Float.max 0.0 (Float.min ((next -. nowms) /. 1000.0) 0.05) in
      let before = Unix.gettimeofday () in
      busy_ms := !busy_ms +. ((before -. busy_from) *. 1000.0);
      let ready =
        match Unix.select [ fd ] [] [] timeout with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      let after = Unix.gettimeofday () in
      idle_ms := !idle_ms +. ((after -. before) *. 1000.0);
      Metrics.observe select_wait ((after -. before) *. 1000.0);
      (match ready with
      | [] -> ()
      | _ :: _ ->
        Metrics.observe drain_batch (float_of_int (Udp_transport.drain tr));
        Udp_transport.flush tr);
      loop ~busy_from:after
    end
  in
  loop ~busy_from:(Unix.gettimeofday ());
  (* Nothing may be stranded in an egress queue at shutdown. *)
  Udp_transport.flush tr;
  instant ~name:"node stop" ~cat:"node";
  let counters =
    match shim with
    | None -> Udp_transport.counters tr
    | Some s -> Dpu_faults.Fault_transport.counters s
  in
  Log.info log
    ~fields:
      [ ("sent", J.Int counters.Dpu_runtime.Transport.sent);
        ("delivered", J.Int counters.Dpu_runtime.Transport.delivered);
        ("dropped", J.Int counters.Dpu_runtime.Transport.dropped) ]
    "node stop";
  close_log ();
  let collector = Middleware.collector mw in
  {
    node = config.me;
    sends =
      List.filter_map
        (fun (id, node, time) -> if node = config.me then Some (id, time) else None)
        (Collector.sends collector);
    delivers = Collector.delivers_of collector ~node:config.me;
    switches =
      List.filter_map
        (fun (node, g, time) -> if node = config.me then Some (g, time) else None)
        (Collector.switches collector);
    counters;
    batches =
      Option.map (fun (_ : int) -> Udp_transport.batches tr) config.batching;
    rx_errors = Udp_transport.rx_errors tr;
    faults = Option.map Dpu_faults.Fault_transport.stats shim;
    metrics = Dpu_obs.Metrics.to_json metrics;
    trace = List.rev !trace;
  }

(* ------------------------------------------------------------------ *)
(* Report (de)serialisation — children hand results to the parent as  *)
(* JSON files.                                                        *)
(* ------------------------------------------------------------------ *)

let stamped (id, time) =
  J.Obj [ ("id", J.Str (Msg.id_to_string id)); ("t", J.Float time) ]

let report_to_json r =
  let c = r.counters in
  (* "faults" is only present on nemesis runs, and readers must accept
     its absence: clean-run reports keep the pre-nemesis shape (modulo
     the additive "rx_errors" counter). *)
  let faults_fields =
    match r.faults with
    | None -> []
    | Some f ->
      [
        ( "faults",
          J.Obj
            [
              ("blocked_crash", J.Int f.Dpu_faults.Fault_transport.blocked_crash);
              ("blocked_partition", J.Int f.blocked_partition);
              ("injected_loss", J.Int f.injected_loss);
              ("injected_dup", J.Int f.injected_dup);
              ("delayed", J.Int f.delayed);
              ("rx_blocked", J.Int f.rx_blocked);
            ] );
      ]
  in
  J.Obj
    ([
       ("node", J.Int r.node);
       ("sends", J.List (List.map stamped r.sends));
       ("delivers", J.List (List.map stamped r.delivers));
       ( "switches",
         J.List
           (List.map
              (fun (g, time) ->
                J.Obj [ ("generation", J.Int g); ("t", J.Float time) ])
              r.switches) );
       ( "transport",
         J.Obj
           ([
              ("sent", J.Int c.Dpu_runtime.Transport.sent);
              ("delivered", J.Int c.Dpu_runtime.Transport.delivered);
              ("dropped", J.Int c.Dpu_runtime.Transport.dropped);
              ("bytes", J.Int c.Dpu_runtime.Transport.bytes);
              ("rx_errors", J.Int r.rx_errors);
            ]
           (* Additive, throughput-mode only: absent on unbatched runs
              so pre-batching readers see the old shape. *)
           @
           match r.batches with
           | None -> []
           | Some b ->
             [
               ("batches_sent", J.Int b.Dpu_runtime.Transport.batches_sent);
               ("batched_msgs", J.Int b.Dpu_runtime.Transport.batched_msgs);
             ]) );
     ]
    @ faults_fields
    (* "trace" is additive too: absent on trace-off runs (and in every
       pre-observability report), so readers must default it empty. *)
    @ (match r.trace with
      | [] -> []
      | events -> [ ("trace", J.List (List.map TE.event_json events)) ])
    @ [ ("metrics", r.metrics) ])

let parse_fail fmt = Printf.ksprintf (fun msg -> failwith msg) fmt

let get j name =
  match J.member j name with
  | Some v -> v
  | None -> parse_fail "live report: missing field %S" name

let get_int j name =
  match J.to_int_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not an int" name

let get_float j name =
  match J.to_float_opt (get j name) with
  | Some v -> v
  | None -> parse_fail "live report: field %S is not a number" name

let get_list j name =
  match J.to_list_opt (get j name) with
  | Some l -> l
  | None -> parse_fail "live report: field %S is not a list" name

let parse_stamped j =
  let id =
    match J.to_string_opt (get j "id") with
    | Some s -> Dpu_props.Abcast_props.id_of_string_exn s
    | None -> parse_fail "live report: message id is not a string"
  in
  (id, get_float j "t")

let report_of_json j =
  match
    let transport = get j "transport" in
    (* Optional fields default: reports written by pre-nemesis builds
       (and clean runs) stay parseable. *)
    let rx_errors =
      match J.member transport "rx_errors" with
      | None -> 0
      | Some v -> (
        match J.to_int_opt v with
        | Some v -> v
        | None -> parse_fail "live report: field \"rx_errors\" is not an int")
    in
    let faults =
      match J.member j "faults" with
      | None -> None
      | Some f ->
        Some
          {
            Dpu_faults.Fault_transport.blocked_crash = get_int f "blocked_crash";
            blocked_partition = get_int f "blocked_partition";
            injected_loss = get_int f "injected_loss";
            injected_dup = get_int f "injected_dup";
            delayed = get_int f "delayed";
            rx_blocked = get_int f "rx_blocked";
          }
    in
    {
      node = get_int j "node";
      sends = List.map parse_stamped (get_list j "sends");
      delivers = List.map parse_stamped (get_list j "delivers");
      switches =
        List.map
          (fun s -> (get_int s "generation", get_float s "t"))
          (get_list j "switches");
      counters =
        {
          Dpu_runtime.Transport.sent = get_int transport "sent";
          delivered = get_int transport "delivered";
          dropped = get_int transport "dropped";
          bytes = get_int transport "bytes";
        };
      batches =
        (match J.member transport "batches_sent" with
        | None -> None
        | Some _ ->
          Some
            {
              Dpu_runtime.Transport.batches_sent = get_int transport "batches_sent";
              batched_msgs = get_int transport "batched_msgs";
            });
      rx_errors;
      faults;
      metrics = get j "metrics";
      trace =
        (match J.member j "trace" with
        | None -> []
        | Some t -> (
          match TE.events_of_json t with
          | Ok events -> events
          | Error e -> parse_fail "live report: %s" e));
    }
  with
  | r -> Ok r
  | exception Failure msg -> Error msg
