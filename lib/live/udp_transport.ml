open Dpu_kernel
module Transport = Dpu_runtime.Transport

type t = {
  me : int;
  n : int;
  fd : Unix.file_descr;
  peers : Unix.sockaddr array;
  service : string;
  generation : int;
  buf : Bytes.t;
  mutable handler : (src:int -> Payload.t -> unit) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable rx_errors : int;
}

let max_frame = 65_507 (* UDP payload limit over IPv4 *)

let create ?(service = "dpu") ?(generation = 0) ~me ~fd ~peers () =
  let n = Array.length peers in
  if me < 0 || me >= n then invalid_arg "Udp_transport.create: me out of range";
  Unix.set_nonblock fd;
  {
    me;
    n;
    fd;
    peers;
    service;
    generation;
    buf = Bytes.create max_frame;
    handler = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    rx_errors = 0;
  }

let fd t = t.fd

let send t ~src ~dst ~size_bytes:_ payload =
  if src <> t.me then
    invalid_arg (Printf.sprintf "Udp_transport.send: src %d is not this node" src);
  if dst < 0 || dst >= t.n then invalid_arg "Udp_transport.send: dst out of range";
  match Payload.encode payload with
  | None ->
    (* No codec registered: the payload cannot cross a process
       boundary. Count it as dropped rather than crashing the stack —
       the sim backend would have delivered it, so leaving codecs
       unregistered shows up as loss, loudly, in the counters. *)
    t.dropped <- t.dropped + 1
  | Some body ->
    let frame =
      Payload.Envelope.seal_encoded ~src ~service:t.service
        ~generation:t.generation body
    in
    let len = String.length frame in
    (* A frame counts as sent (and its bytes are charged) only once the
       syscall accepted it: oversized frames and sendto failures are
       dropped, never double-counted, so [sent - delivered-at-peers]
       still equals in-flight loss. *)
    if len > max_frame then t.dropped <- t.dropped + 1
    else (
      match Unix.sendto_substring t.fd frame 0 len [] t.peers.(dst) with
      | exception Unix.Unix_error _ ->
        (* Datagram semantics: sends may be lost. *)
        t.dropped <- t.dropped + 1
      | (_ : int) ->
        t.sent <- t.sent + 1;
        t.bytes <- t.bytes + len)

let set_handler t ~node f =
  if node <> t.me then
    invalid_arg
      (Printf.sprintf "Udp_transport.set_handler: node %d is not this node" node);
  t.handler <- Some f

let receive_one t frame =
  match Payload.Envelope.open_ frame with
  | exception Payload.Decode_error _ -> t.dropped <- t.dropped + 1
  | info, payload ->
    if
      (not (String.equal info.Payload.Envelope.service t.service))
      || info.Payload.Envelope.generation <> t.generation
      || info.Payload.Envelope.src < 0
      || info.Payload.Envelope.src >= t.n
    then t.dropped <- t.dropped + 1
    else (
      match t.handler with
      | None -> t.dropped <- t.dropped + 1
      | Some f ->
        t.delivered <- t.delivered + 1;
        f ~src:info.Payload.Envelope.src payload)

let drain t =
  let rec go frames =
    match Unix.recvfrom t.fd t.buf 0 (Bytes.length t.buf) [] with
    | exception Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      frames
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* A peer's socket vanished; ignore like any datagram loss. *)
      go frames
    | exception Unix.Unix_error (_, _, _) ->
      (* Anything else (ENOMEM, EBADF during a shutdown race, ...) must
         not kill the node loop mid-scenario: count it as dropped input
         and stop this drain pass — recursing could spin forever on a
         persistent error. *)
      t.rx_errors <- t.rx_errors + 1;
      t.dropped <- t.dropped + 1;
      frames
    | len, _addr ->
      receive_one t (Bytes.sub_string t.buf 0 len);
      go (frames + 1)
  in
  go 0

let rx_errors t = t.rx_errors

let counters t =
  {
    Transport.sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    bytes = t.bytes;
  }

let transport t =
  {
    Transport.n = t.n;
    send = (fun ~src ~dst ~size_bytes payload -> send t ~src ~dst ~size_bytes payload);
    set_handler = (fun ~node f -> set_handler t ~node f);
    counters = (fun () -> counters t);
  }
