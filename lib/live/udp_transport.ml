open Dpu_kernel
module Transport = Dpu_runtime.Transport

type queue = { elems : Wire.W.t; mutable count : int }
(* Per-destination egress accumulator: [elems] holds [count]
   length-prefixed payload frames ([Wire.W.str_writer]), encoded at
   enqueue time so send order is preserved byte-for-byte. *)

type t = {
  me : int;
  n : int;
  fd : Unix.file_descr;
  peers : Unix.sockaddr array;
  service : string;
  generation : int;
  buf : Bytes.t; (* rx scratch: one recvfrom target, decoded in place *)
  out : Bytes.t; (* tx scratch: one blit target for sendto *)
  frame_w : Wire.W.t; (* tx envelope writer, reused per frame *)
  elem_w : Wire.W.t; (* one payload frame, reused per message *)
  batching : int option; (* max messages per egress batch frame *)
  queues : queue array; (* per destination; empty unless batching *)
  on_batch : (int -> unit) option;
  mutable handler : (src:int -> Payload.t -> unit) option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable rx_errors : int;
  mutable batches_sent : int;
  mutable batched_msgs : int;
  mutable encode_allocs : int;
}

let max_frame = 65_507 (* UDP payload limit over IPv4 *)

let create ?(service = "dpu") ?(generation = 0) ?batching ?on_batch ~me ~fd
    ~peers () =
  let n = Array.length peers in
  if me < 0 || me >= n then invalid_arg "Udp_transport.create: me out of range";
  (match batching with
  | Some k when k < 1 -> invalid_arg "Udp_transport.create: batching < 1"
  | _ -> ());
  Unix.set_nonblock fd;
  (* Every buffer the encode path will ever touch is allocated here, at
     its worst-case size (a frame is capped at [max_frame], so the
     writers never grow): steady-state send/drain performs zero
     allocations beyond the decoded payload values themselves. The
     counter backs the no-allocation-per-batch test. *)
  let allocs = ref 0 in
  let mk_w size =
    incr allocs;
    Wire.W.create ~initial_size:size ()
  in
  let mk_b size =
    incr allocs;
    Bytes.create size
  in
  let queues =
    match batching with
    | None -> [||]
    | Some _ -> Array.init n (fun _ -> { elems = mk_w (max_frame + 64); count = 0 })
  in
  {
    me;
    n;
    fd;
    peers;
    service;
    generation;
    buf = mk_b max_frame;
    out = mk_b max_frame;
    frame_w = mk_w (max_frame + 64);
    elem_w = mk_w (max_frame + 64);
    batching;
    queues;
    on_batch;
    handler = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    rx_errors = 0;
    batches_sent = 0;
    batched_msgs = 0;
    encode_allocs = !allocs;
  }

let fd t = t.fd

(* Ship whatever [frame_w] holds to [dst], charging [count] messages.
   A frame counts as sent (and its bytes are charged) only once the
   syscall accepted it: oversized frames and sendto failures are
   dropped, never double-counted, so [sent - delivered-at-peers] still
   equals in-flight loss. Returns whether the syscall accepted. *)
let emit t ~dst ~count =
  let len = Wire.W.length t.frame_w in
  if len > max_frame then begin
    t.dropped <- t.dropped + count;
    false
  end
  else begin
    let blen = Wire.W.blit_to_bytes t.frame_w t.out in
    match Unix.sendto t.fd t.out 0 blen [] t.peers.(dst) with
    | exception Unix.Unix_error _ ->
      (* Datagram semantics: sends may be lost. *)
      t.dropped <- t.dropped + count;
      false
    | (_ : int) ->
      t.sent <- t.sent + count;
      t.bytes <- t.bytes + len;
      true
  end

(* Fixed bytes of a batch frame before its elements: envelope header
   plus the u64 count. Each element adds its u32 length prefix. *)
let batch_overhead t = Payload.Envelope.header_overhead ~service:t.service + 8

let flush_dst t dst =
  let q = t.queues.(dst) in
  if q.count > 0 then begin
    let count = q.count in
    Wire.W.reset t.frame_w;
    Payload.Envelope.seal_batch_into t.frame_w ~src:t.me ~service:t.service
      ~generation:t.generation ~count q.elems;
    Wire.W.reset q.elems;
    q.count <- 0;
    if emit t ~dst ~count then begin
      t.batches_sent <- t.batches_sent + 1;
      t.batched_msgs <- t.batched_msgs + count;
      match t.on_batch with Some f -> f count | None -> ()
    end
  end

let flush t =
  match t.batching with
  | None -> ()
  | Some _ ->
    for dst = 0 to t.n - 1 do
      flush_dst t dst
    done

let send t ~src ~dst ~size_bytes:_ payload =
  if src <> t.me then
    invalid_arg (Printf.sprintf "Udp_transport.send: src %d is not this node" src);
  if dst < 0 || dst >= t.n then invalid_arg "Udp_transport.send: dst out of range";
  Wire.W.reset t.elem_w;
  if not (Payload.encode_into t.elem_w payload) then
    (* No codec registered: the payload cannot cross a process
       boundary. Count it as dropped rather than crashing the stack —
       the sim backend would have delivered it, so leaving codecs
       unregistered shows up as loss, loudly, in the counters. *)
    t.dropped <- t.dropped + 1
  else
    match t.batching with
    | None ->
      Wire.W.reset t.frame_w;
      Payload.Envelope.seal_into t.frame_w ~src ~service:t.service
        ~generation:t.generation t.elem_w;
      ignore (emit t ~dst ~count:1 : bool)
    | Some max_batch ->
      let elen = Wire.W.length t.elem_w in
      if batch_overhead t + 4 + elen > max_frame then
        (* Too big even as a batch of one. *)
        t.dropped <- t.dropped + 1
      else begin
        let q = t.queues.(dst) in
        (* Flush first if adding this message would burst the datagram
           limit — never split or reorder, the queue drains as one
           frame and this message starts the next. *)
        if
          q.count > 0
          && batch_overhead t + Wire.W.length q.elems + 4 + elen > max_frame
        then flush_dst t dst;
        Wire.W.str_writer q.elems t.elem_w;
        q.count <- q.count + 1;
        if q.count >= max_batch then flush_dst t dst
      end

let set_handler t ~node f =
  if node <> t.me then
    invalid_arg
      (Printf.sprintf "Udp_transport.set_handler: node %d is not this node" node);
  t.handler <- Some f

let receive_one t ~len =
  (* Decoded in place over the receive scratch buffer: payload values
     copy out the bytes they keep, so they survive the next recvfrom. *)
  match Payload.Envelope.open_slice t.buf ~len with
  | exception Payload.Decode_error _ -> t.dropped <- t.dropped + 1
  | info, payloads ->
    (* The whole datagram shares one envelope: a stale-generation or
       foreign-service batch drops atomically, never partially. *)
    let count = List.length payloads in
    if
      (not (String.equal info.Payload.Envelope.service t.service))
      || info.Payload.Envelope.generation <> t.generation
      || info.Payload.Envelope.src < 0
      || info.Payload.Envelope.src >= t.n
    then t.dropped <- t.dropped + count
    else (
      match t.handler with
      | None -> t.dropped <- t.dropped + count
      | Some f ->
        List.iter
          (fun payload ->
            t.delivered <- t.delivered + 1;
            f ~src:info.Payload.Envelope.src payload)
          payloads)

let drain t =
  let rec go frames =
    match Unix.recvfrom t.fd t.buf 0 (Bytes.length t.buf) [] with
    | exception Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      frames
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* A peer's socket vanished; ignore like any datagram loss. *)
      go frames
    | exception Unix.Unix_error (_, _, _) ->
      (* Anything else (ENOMEM, EBADF during a shutdown race, ...) must
         not kill the node loop mid-scenario: count it as dropped input
         and stop this drain pass — recursing could spin forever on a
         persistent error. *)
      t.rx_errors <- t.rx_errors + 1;
      t.dropped <- t.dropped + 1;
      frames
    | len, _addr ->
      receive_one t ~len;
      go (frames + 1)
  in
  go 0

let rx_errors t = t.rx_errors

let encode_allocs t = t.encode_allocs

let pending t = Array.fold_left (fun acc q -> acc + q.count) 0 t.queues

let counters t =
  {
    Transport.sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    bytes = t.bytes;
  }

let batches t =
  { Transport.batches_sent = t.batches_sent; batched_msgs = t.batched_msgs }

let transport t =
  {
    Transport.n = t.n;
    send = (fun ~src ~dst ~size_bytes payload -> send t ~src ~dst ~size_bytes payload);
    set_handler = (fun ~node f -> set_handler t ~node f);
    counters = (fun () -> counters t);
    batches = (fun () -> batches t);
  }
