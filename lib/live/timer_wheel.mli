(** Hashed timer wheel backing the live clock.

    Deadlines are absolute times in milliseconds on whatever clock the
    caller feeds to {!add} and {!advance}; the wheel itself never reads
    a clock, which keeps it unit-testable with synthetic time. Entries
    hash into [slots] buckets of [granularity_ms] ticks; {!advance}
    walks the cursor up to [now] and fires every due entry in
    (deadline, insertion) order. An entry whose {!Dpu_runtime.Clock}
    timer was cancelled is dropped when its tick is reached. *)

type t

val create : ?granularity_ms:float -> ?slots:int -> unit -> t
(** Default granularity 1 ms, 512 slots. *)

val add :
  t -> now:float -> delay:float -> ?timer:Dpu_runtime.Clock.timer ->
  (unit -> unit) -> unit
(** Arm a callback [delay] ms after [now] (clamped to be non-negative).
    When [timer] is given, cancelling it prevents the callback from
    firing. Positive-delay entries armed from inside a firing callback
    never fire in the same {!advance} pass. *)

val advance : t -> now:float -> unit
(** Fire everything due at or before [now]. Zero-delay entries run to
    quiescence within the pass (in FIFO order, including ones enqueued
    by firing entries) — the live counterpart of the simulator's
    same-instant event cascades. *)

val next_deadline : t -> float option
(** Earliest {e effective} fire time among live entries — the instant
    {!advance} would actually run one, accounting for floor/tick
    clamping — for sizing a poll timeout. Cancelled entries are
    invisible and are discounted from {!pending} as the scan observes
    them. O(slots + pending entries). *)

val pending : t -> int
(** Entries still expected to fire. Cancelled entries leave the count
    as soon as any scan observes them ({!next_deadline}, {!advance}),
    so idle detection never sees phantom work. *)

(** {1 Event-loop profile} — lifetime totals, for observability
    callbacks sampled at metrics-snapshot time. Reading them costs
    nothing on the hot path; they are maintained unconditionally (two
    integer bumps per callback run). *)

val fired : t -> int
(** Callbacks actually run (cancelled entries excluded). *)

val cascades : t -> int
(** The subset of {!fired} that ran from the zero-delay ready queue —
    same-instant cascade work, the live counterpart of the simulator's
    same-time event chains. *)
