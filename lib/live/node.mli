(** One OS process of a live deployment: a full DPU stack on the live
    clock and UDP transport, driven by a [select] event loop.

    The process hosts exactly one node of the group. It generates its
    share of the open-loop load, participates in every protocol
    (consensus, ABcast, the replacement layer), triggers whichever
    mid-stream protocol swaps are assigned to it, and on completion
    returns a {!report} of everything its local {!Dpu_core.Collector}
    observed — the parent merges these into the run-wide record.

    When [nemesis] is non-empty the UDP transport is wrapped in
    {!Dpu_faults.Fault_transport} on this node's live clock: every
    process interprets the same schedule value against its own traffic,
    so the whole deployment experiences the scripted adversity. *)

open Dpu_kernel

type config = {
  me : int;  (** which node this process hosts *)
  n : int;
  epoch : float;  (** shared wall-clock origin, from the parent *)
  service : string;  (** envelope service name; foreign frames drop *)
  generation : int;  (** envelope deployment generation *)
  initial : string;  (** initial ABcast variant *)
  switches : (float * int * string) list;
      (** (at_ms, node, target): this process arms only its own *)
  nemesis : Dpu_faults.Schedule.t;  (** [[]] = clean network *)
  load : float;  (** aggregate messages per second across the group *)
  msg_size : int;
  batching : int option;
      (** throughput mode: egress batch cap for the UDP transport and
          protocol-level batch aggregation (same cap, 2 ms delay) for
          the stack; [None] = the exact unbatched code paths *)
  duration_ms : float;  (** load generation horizon *)
  drain_ms : float;  (** extra time to let in-flight traffic settle *)
  seed : int;
  trace_enabled : bool;
      (** record trace events (switch triggers, fault injections,
          start/stop marks) against the shared epoch, shipped in the
          report; [false] keeps the hot path allocation-free *)
  log_path : string option;
      (** write structured JSONL logs here; [None] (the default
          everywhere) is the frozen noop logger *)
}

type report = {
  node : int;
  sends : (Msg.id * float) list;
  delivers : (Msg.id * float) list;
  switches : (int * float) list;  (** (generation, time) *)
  counters : Dpu_runtime.Transport.counters;
      (** the shim's view when a nemesis is active, else the raw wire *)
  batches : Dpu_runtime.Transport.batch_counters option;
      (** egress batching statistics; [Some] iff the run batched *)
  rx_errors : int;  (** receive-path syscall errors survived by drain *)
  faults : Dpu_faults.Fault_transport.stats option;
      (** [Some] iff the run had a nemesis *)
  metrics : Dpu_obs.Json.t;
  trace : Dpu_obs.Trace_event.t list;
      (** this process's trace events, pid = node, timestamps in ms
          since the shared epoch; [[]] when tracing was off (and in
          reports written by pre-observability builds) *)
}

val run :
  config:config -> fd:Unix.file_descr -> peers:Unix.sockaddr array -> unit ->
  report
(** Run the node to completion ([duration_ms + drain_ms] of wall
    time). [fd] must already be bound to [peers.(config.me)]. *)

val report_to_json : report -> Dpu_obs.Json.t

val report_of_json : Dpu_obs.Json.t -> (report, string) result
