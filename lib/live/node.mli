(** One OS process of a live deployment: a full DPU stack on the live
    clock and UDP transport, driven by a [select] event loop.

    The process hosts exactly one node of the group. It generates its
    share of the open-loop load, participates in every protocol
    (consensus, ABcast, the replacement layer), optionally triggers
    the mid-stream protocol swap (node 0), and on completion returns a
    {!report} of everything its local {!Dpu_core.Collector} observed —
    the parent merges these into the run-wide record. *)

open Dpu_kernel

type config = {
  me : int;  (** which node this process hosts *)
  n : int;
  epoch : float;  (** shared wall-clock origin, from the parent *)
  service : string;  (** envelope service name; foreign frames drop *)
  generation : int;  (** envelope deployment generation *)
  initial : string;  (** initial ABcast variant *)
  switch_to : string option;  (** replacement target; [None] = no swap *)
  switch_at_ms : float;
  load : float;  (** aggregate messages per second across the group *)
  msg_size : int;
  duration_ms : float;  (** load generation horizon *)
  drain_ms : float;  (** extra time to let in-flight traffic settle *)
  seed : int;
}

type report = {
  node : int;
  sends : (Msg.id * float) list;
  delivers : (Msg.id * float) list;
  switches : (int * float) list;  (** (generation, time) *)
  counters : Dpu_runtime.Transport.counters;
  metrics : Dpu_obs.Json.t;
}

val run :
  config:config -> fd:Unix.file_descr -> peers:Unix.sockaddr array -> unit ->
  report
(** Run the node to completion ([duration_ms + drain_ms] of wall
    time). [fd] must already be bound to [peers.(config.me)]. *)

val report_to_json : report -> Dpu_obs.Json.t

val report_of_json : Dpu_obs.Json.t -> (report, string) result
