(** Multi-process live deployment on localhost.

    [run] binds [n] UDP sockets on 127.0.0.1 (ephemeral ports), forks
    one OS process per node — each inheriting its socket and the full
    peer address table — and lets them run the complete DPU stack
    under open-loop load for [duration_ms], with node 0 triggering an
    ABcast replacement (Algorithm 1 of the paper) at [switch_at_ms].
    Children report what their local collectors saw; the parent merges
    everything onto the shared time axis and checks the four atomic
    broadcast properties of §5.1 across the replacement — the live
    counterpart of the simulator's {!Dpu_workload.Experiment.check}.

    A non-empty [nemesis] schedule is inherited by every child through
    the fork and interpreted by a per-process
    {!Dpu_faults.Fault_transport} shim, so the whole deployment lives
    through the same scripted adversity; nodes the schedule
    crash-silences for good are excluded from the [~correct] set the
    property checkers get. [switches] arms additional replacements
    beyond the [switch_to]/[switch_at_ms] pair (each triple is
    [(at_ms, node, target)]).

    [metrics_out]/[spans_out] mirror the sim path's exports: a JSON
    metrics snapshot (here per-node, plus transport counters) and
    Chrome trace-event spans of the merged run.

    [trace_out] goes further: it turns per-node trace recording on
    (each child records switch triggers, fault injections and
    start/stop marks against the shared epoch, shipped in its report)
    and writes ONE merged Chrome trace — collector spans, every node's
    events and the nemesis schedule as fault windows — loadable in
    Perfetto. [logs_dir] gives each child a structured JSONL log file
    ([node-<i>.jsonl], created on demand); with neither given, children
    run with tracing off and the noop logger, exactly as before. *)

type params = {
  n : int;
  load : float;  (** aggregate messages per second *)
  duration_ms : float;
  drain_ms : float;  (** settle time after the load stops *)
  switch_at_ms : float;
  initial : string;
  switch_to : string option;
  switches : (float * int * string) list;
      (** extra replacements: [(at_ms, node, target)] *)
  nemesis : Dpu_faults.Schedule.t;  (** [[]] = clean network *)
  msg_size : int;
  seed : int;
  batching : int option;
      (** throughput mode: egress batch cap per UDP frame, and the same
          cap (with a 2 ms delay trigger) for protocol-level batch
          aggregation in every child's ABcast; [None] = the exact
          unbatched paths *)
}

val default : params
(** 3 nodes, 30 msg/s for 3 s, CT ABcast swapped to the sequencer
    variant at 1.5 s, clean network, no batching. *)

type outcome = {
  node_reports : Node.report list;  (** in node order *)
  collector : Dpu_core.Collector.t;  (** all processes merged, one time axis *)
  checks : Dpu_props.Report.t list;
}

val run :
  ?metrics_out:string ->
  ?spans_out:string ->
  ?trace_out:string ->
  ?logs_dir:string ->
  params ->
  (outcome, string) result
(** [Error] on child crash or unreadable report; property violations
    are not an error — inspect [checks]. Raises [Invalid_argument] if
    the nemesis schedule or a switch targets a node out of range. *)
