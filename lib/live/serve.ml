module Collector = Dpu_core.Collector
module J = Dpu_obs.Json

type params = {
  n : int;
  load : float;
  duration_ms : float;
  drain_ms : float;
  switch_at_ms : float;
  initial : string;
  switch_to : string option;
  switches : (float * int * string) list;
  nemesis : Dpu_faults.Schedule.t;
  msg_size : int;
  seed : int;
  batching : int option;
}

let default =
  {
    n = 3;
    load = 30.0;
    duration_ms = 3_000.0;
    drain_ms = 1_500.0;
    switch_at_ms = 1_500.0;
    initial = Dpu_core.Variants.ct;
    switch_to = Some Dpu_core.Variants.sequencer;
    switches = [];
    nemesis = [];
    msg_size = 1_024;
    seed = 1;
    batching = None;
  }

type outcome = {
  node_reports : Node.report list;  (** in node order *)
  collector : Collector.t;  (** all processes merged, one time axis *)
  checks : Dpu_props.Report.t list;
}

let merge_reports reports =
  let collector = Collector.create () in
  let sends =
    List.concat_map
      (fun (r : Node.report) ->
        List.map (fun (id, time) -> (id, r.Node.node, time)) r.Node.sends)
      reports
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
  in
  List.iter
    (fun (id, node, time) -> Collector.record_send collector ~node ~id ~time)
    sends;
  List.iter
    (fun (r : Node.report) ->
      List.iter
        (fun (id, time) ->
          Collector.record_deliver collector ~node:r.Node.node ~id ~time)
        r.Node.delivers;
      List.iter
        (fun (generation, time) ->
          Collector.record_switch collector ~node:r.Node.node ~generation ~time)
        r.Node.switches)
    reports;
  collector

let counters_json (c : Dpu_runtime.Transport.counters) =
  J.Obj
    [
      ("sent", J.Int c.Dpu_runtime.Transport.sent);
      ("delivered", J.Int c.Dpu_runtime.Transport.delivered);
      ("dropped", J.Int c.Dpu_runtime.Transport.dropped);
      ("bytes", J.Int c.Dpu_runtime.Transport.bytes);
    ]

let run ?metrics_out ?spans_out ?trace_out ?logs_dir params =
  if params.n < 1 then invalid_arg "Serve.run: need at least one node";
  if params.load <= 0.0 then invalid_arg "Serve.run: load must be positive";
  (match Dpu_faults.Schedule.validate ~n:params.n params.nemesis with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Serve.run: nemesis: %s" msg));
  let switches =
    (match params.switch_to with
    | Some p -> [ (params.switch_at_ms, 0, p) ]
    | None -> [])
    @ params.switches
  in
  List.iter
    (fun (_, node, _) ->
      if node < 0 || node >= params.n then
        invalid_arg (Printf.sprintf "Serve.run: switch node %d out of range" node))
    switches;
  let fds =
    Array.init params.n (fun _ -> Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0)
  in
  Array.iter
    (fun fd -> Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)))
    fds;
  let peers = Array.map Unix.getsockname fds in
  let report_paths =
    Array.init params.n (fun i ->
        Filename.temp_file (Printf.sprintf "dpu-live-node%d-" i) ".json")
  in
  let epoch = Unix.gettimeofday () in
  (* Stamped into every envelope: frames from an earlier deployment
     that bound the same ports are shed at the transport. *)
  let generation = Unix.getpid () land 0xffff in
  (match logs_dir with
  | None -> ()
  | Some dir -> (
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  let log_path_of me =
    Option.map
      (fun dir -> Filename.concat dir (Printf.sprintf "node-%d.jsonl" me))
      logs_dir
  in
  flush stdout;
  flush stderr;
  let pids =
    Array.init params.n (fun me ->
        match Unix.fork () with
        | 0 ->
          let status =
            try
              Array.iteri (fun i fd -> if i <> me then Unix.close fd) fds;
              let config =
                {
                  Node.me;
                  n = params.n;
                  epoch;
                  service = "dpu";
                  generation;
                  initial = params.initial;
                  switches;
                  nemesis = params.nemesis;
                  load = params.load;
                  msg_size = params.msg_size;
                  batching = params.batching;
                  duration_ms = params.duration_ms;
                  drain_ms = params.drain_ms;
                  seed = params.seed;
                  trace_enabled = trace_out <> None;
                  log_path = log_path_of me;
                }
              in
              let report = Node.run ~config ~fd:fds.(me) ~peers () in
              J.to_file report_paths.(me) (Node.report_to_json report);
              0
            with e ->
              Printf.eprintf "dpu live node %d: %s\n%!" me (Printexc.to_string e);
              3
          in
          (* Never return into the caller: no [at_exit], no replaying
             of buffers inherited from the parent (cf. Sweep). *)
          Unix._exit status
        | pid -> pid)
  in
  Array.iter Unix.close fds;
  let failed = ref [] in
  Array.iteri
    (fun me pid ->
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> failed := Printf.sprintf "node %d exited %d" me c :: !failed
      | Unix.WSIGNALED s -> failed := Printf.sprintf "node %d killed by signal %d" me s :: !failed
      | Unix.WSTOPPED s -> failed := Printf.sprintf "node %d stopped by signal %d" me s :: !failed)
    pids;
  let cleanup () =
    Array.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) report_paths
  in
  if !failed <> [] then begin
    cleanup ();
    Error (String.concat "; " (List.rev !failed))
  end
  else begin
    let parsed =
      List.init params.n (fun me ->
          let path = report_paths.(me) in
          let content = In_channel.with_open_text path In_channel.input_all in
          match J.of_string content with
          | Error e -> Error (Printf.sprintf "node %d report: %s" me e)
          | Ok j -> (
            match Node.report_of_json j with
            | Error e -> Error (Printf.sprintf "node %d report: %s" me e)
            | Ok r -> Ok r))
    in
    cleanup ();
    match
      List.partition_map
        (function Ok r -> Either.Left r | Error e -> Either.Right e)
        parsed
    with
    | _, (_ :: _ as errors) -> Error (String.concat "; " errors)
    | node_reports, [] ->
      let collector = merge_reports node_reports in
      (* Nodes the nemesis silences for good make no promises — the
         properties quantify over the nodes that stay correct. *)
      let silenced =
        Dpu_faults.Schedule.crashed_before params.nemesis ~time:infinity
      in
      let correct =
        List.filter
          (fun node -> not (List.mem node silenced))
          (List.init params.n Fun.id)
      in
      let checks = Dpu_props.Abcast_props.check_all collector ~correct in
      (match metrics_out with
      | Some path ->
        J.to_file path
          (J.Obj
             [
               ( "nodes",
                 J.List
                   (List.map
                      (fun (r : Node.report) ->
                        J.Obj
                          [
                            ("node", J.Int r.Node.node);
                            ("transport", counters_json r.Node.counters);
                            ("metrics", r.Node.metrics);
                          ])
                      node_reports) );
             ])
      | None -> ());
      (match spans_out with
      | Some path ->
        let events = Dpu_core.Spans.of_run ~n:params.n collector in
        J.to_file path (Dpu_core.Spans.to_json events)
      | None -> ());
      (match trace_out with
      | Some path ->
        let events =
          Live_trace.merged ~n:params.n
            ~horizon_ms:(params.duration_ms +. params.drain_ms)
            ~nemesis:params.nemesis ~collector
            ~node_traces:(List.map (fun (r : Node.report) -> r.Node.trace) node_reports)
        in
        J.to_file path (Dpu_obs.Trace_event.to_json events)
      | None -> ());
      Ok { node_reports; collector; checks }
  end
