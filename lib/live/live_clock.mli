(** The live CLOCK backend: wall-clock milliseconds since a shared
    epoch, timers on a {!Timer_wheel}.

    Every process of a deployment is created with the same [epoch]
    (chosen once by the parent), so timestamps recorded on different
    processes of one machine are directly comparable — the merged
    trace has one time axis, like the simulator's. *)

type t

val create : epoch:float -> Timer_wheel.t -> t
(** [epoch] is an absolute [Unix.gettimeofday] instant; [now] is
    milliseconds elapsed since it. *)

val now : t -> float

val clock : t -> Dpu_runtime.Clock.t
(** The {!Dpu_runtime.Clock} view: [defer]/[schedule]/[every] arm
    wheel entries; cancellation is checked at fire time. *)

val advance : t -> unit
(** Fire all timers due at the current wall-clock instant. *)

val next_deadline : t -> float option

val wheel : t -> Timer_wheel.t
