module Fabric = Dpu_core.Fabric
module MW = Dpu_core.Middleware
module Collector = Dpu_core.Collector
module Series = Dpu_engine.Series
module Metrics = Dpu_obs.Metrics
module Json = Dpu_obs.Json
module Clock = Dpu_runtime.Clock
module System = Dpu_kernel.System

type rolling = {
  to_protocol : string;
  start_ms : float;
  stagger_ms : float;
}

let default_rolling =
  { to_protocol = Dpu_core.Variants.sequencer; start_ms = 200.0; stagger_ms = 0.25 }

type params = {
  n : int;
  shards : int;
  seed : int;
  msg_size : int;
  load_per_s : float;
  warmup_ms : float;
  duration_ms : float;
  drain_ms : float;
  closed_loop : int option;
  rolling : rolling option;
  loss : float;
}

let default =
  {
    n = 15;
    shards = 4;
    seed = 1;
    msg_size = 512;
    load_per_s = 200.0;
    warmup_ms = 200.0;
    duration_ms = 2_000.0;
    drain_ms = 3_000.0;
    closed_loop = None;
    rolling = None;
    loss = 0.0;
  }

type shard_result = {
  shard : int;
  nodes : int;
  sent : int;
  delivered : int;
  measured : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_ms : float;
  generation : int;
  window : (float * float) option;
  blocked_ms : float;
  undelivered : int;
  props_ok : bool;
  violations : string list;
}

type result = {
  params : params;
  per_shard : shard_result list;
  max_concurrent_switches : int;
  drained_at_ms : float;
  all_ok : bool;
}

let make_fabric p =
  let config =
    { MW.default_config with seed = p.seed; msg_size = p.msg_size; loss = p.loss }
  in
  Fabric.create ~config ~shards:p.shards ~n:p.n ()

(* One closed-loop client slot on [node]: re-broadcast (after a tiny
   think time, never from inside the delivery indication) each time our
   own previous message comes back. Same shape as
   {!Throughput.saturate}, per group. *)
let start_closed_loop p mw ~clients_per_node =
  let n = MW.n mw in
  let clock = System.clock (MW.system mw) in
  let think_ms = 0.05 in
  for node = 0 to n - 1 do
    let send () =
      if Clock.now clock < p.duration_ms then
        ignore (MW.broadcast mw ~node ~size:p.msg_size "closed-loop" : Dpu_kernel.Msg.t)
    in
    MW.subscribe mw ~node (fun m ->
        if m.Dpu_kernel.Msg.id.Dpu_kernel.Msg.origin = node then
          Clock.defer clock ~delay:think_ms send);
    for c = 0 to clients_per_node - 1 do
      Clock.defer clock
        ~delay:(think_ms *. float_of_int ((node * clients_per_node) + c + 1))
        send
    done
  done

(* Offered load splits by shard size, so every node system-wide carries
   the same per-node rate regardless of how the ring rounded the
   partition. *)
let start_load p fabric =
  Fabric.iter_groups fabric (fun g mw ->
      match p.closed_loop with
      | Some k -> start_closed_loop p mw ~clients_per_node:k
      | None ->
        let rate =
          p.load_per_s *. float_of_int (Fabric.group_size fabric g) /. float_of_int p.n
        in
        Load_gen.start mw ~rate_per_s:rate ~pattern:Load_gen.Constant
          ~size:p.msg_size ~until:p.duration_ms ())

(* Each shard's trigger is deferred on its own group clock, so the
   rolling wave is part of the same deterministic schedule as the
   load. *)
let start_rolling fabric (r : rolling) =
  Fabric.iter_groups fabric (fun g mw ->
      let clock = System.clock (MW.system mw) in
      let at = r.start_ms +. (r.stagger_ms *. float_of_int g) in
      Clock.defer clock ~delay:at (fun () ->
          MW.change_protocol mw ~node:0 r.to_protocol))

let quantile_estimates values =
  match values with
  | [] -> (0.0, 0.0, 0.0, 0.0)
  | _ ->
    let bounds = Metrics.default_bounds in
    let counts = Array.make (Array.length bounds + 1) 0 in
    let lo = ref infinity and hi = ref neg_infinity and sum = ref 0.0 in
    List.iter
      (fun v ->
        if v < !lo then lo := v;
        if v > !hi then hi := v;
        sum := !sum +. v;
        let i = ref 0 in
        while !i < Array.length bounds && v > bounds.(!i) do
          incr i
        done;
        counts.(!i) <- counts.(!i) + 1)
      values;
    let q p =
      match Metrics.quantile_of_buckets ~bounds ~counts ~lo:!lo ~hi:!hi p with
      | Some v -> v
      | None -> 0.0
    in
    (q 0.5, q 0.99, q 0.999, !sum /. float_of_int (List.length values))

let shard_result_of p fabric g =
  let mw = Fabric.group fabric g in
  let nodes = Fabric.group_size fabric g in
  let collector = MW.collector mw in
  let values =
    List.map (fun (pt : Series.point) -> pt.value)
      (Series.between (MW.latency_series mw) ~lo:p.warmup_ms ~hi:infinity)
  in
  let p50_ms, p99_ms, p999_ms, mean_ms = quantile_estimates values in
  let generation = Fabric.generation fabric ~shard:g in
  let window =
    if generation = 0 then None
    else Fabric.switch_window fabric ~shard:g ~generation
  in
  let blocked_ms =
    Array.fold_left
      (fun acc stack -> Float.max acc (Dpu_baselines.Maestro.blocked_ms stack))
      0.0
      (System.stacks (MW.system mw))
  in
  let undelivered =
    List.length (Collector.undelivered_ids collector ~expected_copies:nodes)
  in
  let reports =
    Dpu_props.Abcast_props.check_all collector ~correct:(List.init nodes Fun.id)
  in
  let violations =
    List.concat_map (fun (r : Dpu_props.Report.t) -> r.violations) reports
  in
  {
    shard = g;
    nodes;
    sent = Collector.send_count collector;
    delivered = List.length (Collector.delivers_of collector ~node:0);
    measured = List.length values;
    p50_ms;
    p99_ms;
    p999_ms;
    mean_ms;
    generation;
    window;
    blocked_ms;
    undelivered;
    props_ok = Dpu_props.Report.all_ok reports;
    violations;
  }

let run ?(params = default) () =
  let p = params in
  let fabric = make_fabric p in
  start_load p fabric;
  Option.iter (start_rolling fabric) p.rolling;
  (* The stacks' periodic timers (failure-detector beats every 20 ms on
     every node) never stop, so "quiescent" is really the drain horizon:
     long enough for every in-flight message to come out, short enough
     that 63 nodes' worth of idle heartbeats stays cheap. *)
  Fabric.run_until_quiescent ~limit:(p.duration_ms +. p.drain_ms) fabric;
  let drained_at_ms = Fabric.now fabric in
  let per_shard = List.init p.shards (shard_result_of p fabric) in
  let max_concurrent_switches =
    match p.rolling with
    | None -> 0
    | Some _ -> Fabric.max_concurrent_switches fabric ~generation:1
  in
  let shard_ok s =
    s.props_ok && s.undelivered = 0
    && s.blocked_ms = 0.0
    && (p.rolling = None || s.generation >= 1)
  in
  {
    params = p;
    per_shard;
    max_concurrent_switches;
    drained_at_ms;
    all_ok = List.for_all shard_ok per_shard;
  }

let csv_header =
  [
    "shard"; "nodes"; "sent"; "delivered"; "measured"; "p50_ms"; "p99_ms";
    "p999_ms"; "mean_ms"; "generation"; "window_start_ms"; "window_end_ms";
    "blocked_ms"; "undelivered"; "props_ok";
  ]

let csv_rows result =
  List.map
    (fun s ->
      let w_lo, w_hi = match s.window with Some (a, b) -> (a, b) | None -> (nan, nan) in
      [
        string_of_int s.shard;
        string_of_int s.nodes;
        string_of_int s.sent;
        string_of_int s.delivered;
        string_of_int s.measured;
        Printf.sprintf "%.3f" s.p50_ms;
        Printf.sprintf "%.3f" s.p99_ms;
        Printf.sprintf "%.3f" s.p999_ms;
        Printf.sprintf "%.3f" s.mean_ms;
        string_of_int s.generation;
        Printf.sprintf "%.3f" w_lo;
        Printf.sprintf "%.3f" w_hi;
        Printf.sprintf "%.3f" s.blocked_ms;
        string_of_int s.undelivered;
        string_of_bool s.props_ok;
      ])
    result.per_shard

let write_csv path result = Dpu_obs.Csv.to_file path ~header:csv_header (csv_rows result)

let json_of_shard s =
  Json.Obj
    ([
       ("shard", Json.Int s.shard);
       ("nodes", Json.Int s.nodes);
       ("sent", Json.Int s.sent);
       ("delivered", Json.Int s.delivered);
       ("measured", Json.Int s.measured);
       ("p50_ms", Json.Float s.p50_ms);
       ("p99_ms", Json.Float s.p99_ms);
       ("p999_ms", Json.Float s.p999_ms);
       ("mean_ms", Json.Float s.mean_ms);
       ("generation", Json.Int s.generation);
       ("blocked_ms", Json.Float s.blocked_ms);
       ("undelivered", Json.Int s.undelivered);
       ("props_ok", Json.Bool s.props_ok);
     ]
    @ (match s.window with
      | None -> []
      | Some (lo, hi) ->
        [ ("window_start_ms", Json.Float lo); ("window_end_ms", Json.Float hi) ])
    @
    match s.violations with
    | [] -> []
    | v -> [ ("violations", Json.List (List.map (fun x -> Json.Str x) v)) ])

let to_json result =
  let p = result.params in
  Json.Obj
    [
      ( "params",
        Json.Obj
          ([
             ("n", Json.Int p.n);
             ("shards", Json.Int p.shards);
             ("seed", Json.Int p.seed);
             ("msg_size", Json.Int p.msg_size);
             ("load_per_s", Json.Float p.load_per_s);
             ("warmup_ms", Json.Float p.warmup_ms);
             ("duration_ms", Json.Float p.duration_ms);
             ("loss", Json.Float p.loss);
           ]
          @ (match p.closed_loop with
            | None -> []
            | Some k -> [ ("closed_loop_clients", Json.Int k) ])
          @
          match p.rolling with
          | None -> []
          | Some r ->
            [
              ( "rolling",
                Json.Obj
                  [
                    ("to_protocol", Json.Str r.to_protocol);
                    ("start_ms", Json.Float r.start_ms);
                    ("stagger_ms", Json.Float r.stagger_ms);
                  ] );
            ]) );
      ("shards", Json.List (List.map json_of_shard result.per_shard));
      ("max_concurrent_switches", Json.Int result.max_concurrent_switches);
      ("drained_at_ms", Json.Float result.drained_at_ms);
      ("all_ok", Json.Bool result.all_ok);
    ]
