module Series = Dpu_engine.Series
module Stats = Dpu_engine.Stats

let figure5 ?(n = 7) ?(load = 40.0) ?(seed = 1) () =
  Experiment.run { Experiment.default with n; load; seed }

let render_figure5 (r : Experiment.result) =
  let buf = Buffer.create 4096 in
  let windowed = Series.window_average r.latency ~width:250.0 in
  let points = List.map (fun (p : Series.point) -> (p.time, p.value)) windowed in
  let ymax = List.fold_left (fun acc (_, y) -> Float.max acc y) 1.0 points in
  let window_markers =
    match r.switch_window with
    | Some (lo, hi) ->
      (* A vertical band of markers over the replacement window. *)
      let column x = List.init 8 (fun i -> (x, ymax *. float_of_int (i + 1) /. 8.0)) in
      [ ("replacement window", column lo @ column hi) ]
    | None -> []
  in
  Buffer.add_string buf
    (Ascii.chart
       ~title:
         (Printf.sprintf
            "Figure 5: ABcast latency vs send time (n=%d, %.0f msg/s, switch at %.0f ms)"
            r.params.n r.params.load r.params.switch_at_ms)
       ~x_unit:"ms (send time)" ~y_unit:"ms"
       (("avg latency (250 ms windows)", points) :: window_markers));
  (match r.switch_window with
  | Some (lo, hi) ->
    Buffer.add_string buf
      (Printf.sprintf "replacement window: %.1f .. %.1f ms (%.1f ms)\n" lo hi (hi -. lo))
  | None -> Buffer.add_string buf "no replacement completed\n");
  Buffer.add_string buf
    (Printf.sprintf "normal: %.2f ms (n=%d)   during replacement: %.2f ms (n=%d)\n"
       (Stats.mean r.normal) (Stats.count r.normal) (Stats.mean r.during)
       (Stats.count r.during));
  Buffer.contents buf

type fig6_point = {
  n : int;
  load : float;
  no_layer_ms : float;
  with_layer_ms : float;
  during_ms : float;
}

(* Run one experiment for a sweep cell: when the sweep carries a
   metrics registry, enable collection and fold this run's snapshot
   into the worker's registry so the merged parent registry accounts
   for every cell. *)
let run_counted reg params =
  let with_metrics = reg != Dpu_obs.Metrics.noop in
  let r = Experiment.run { params with Experiment.metrics_enabled = with_metrics } in
  if with_metrics then
    Dpu_obs.Metrics.merge reg (Dpu_obs.Metrics.snapshot r.Experiment.metrics);
  r

let figure6_sweep ?(ns = [ 3; 7 ]) ?(loads = [ 10.0; 20.0; 40.0; 60.0; 80.0 ])
    ?(seed = 1) ?jobs ?metrics () =
  let grid =
    Array.of_list (List.concat_map (fun n -> List.map (fun load -> (n, load)) loads) ns)
  in
  let point reg idx =
    let n, load = grid.(idx) in
    let base =
      { Experiment.default with n; load; seed; duration_ms = 8_000.0; switch_at_ms = 4_000.0 }
    in
    let no_layer =
      run_counted reg { base with approach = Experiment.No_layer; switch_to = None }
    in
    let with_layer = run_counted reg { base with switch_to = None } in
    let switching = run_counted reg base in
    {
      n;
      load;
      no_layer_ms = Stats.mean no_layer.normal;
      with_layer_ms = Stats.mean with_layer.normal;
      during_ms = Stats.mean switching.during;
    }
  in
  Sweep.run ?jobs ?metrics ~cells:(Array.length grid) point

let figure6 ?ns ?loads ?seed ?jobs ?metrics () =
  Array.to_list (figure6_sweep ?ns ?loads ?seed ?jobs ?metrics ()).Sweep.results

let render_figure6 points =
  let buf = Buffer.create 4096 in
  let ns = List.sort_uniq Int.compare (List.map (fun p -> p.n) points) in
  List.iter
    (fun n ->
      let mine = List.filter (fun p -> p.n = n) points in
      let series name f = (name, List.map (fun p -> (p.load, f p)) mine) in
      Buffer.add_string buf
        (Ascii.chart
           ~title:(Printf.sprintf "Figure 6: latency vs load (n=%d)" n)
           ~x_unit:"msg/s" ~y_unit:"ms"
           [
             series "normal, without replacement layer" (fun p -> p.no_layer_ms);
             series "normal, with replacement layer" (fun p -> p.with_layer_ms);
             series "during replacement" (fun p -> p.during_ms);
           ]))
    ns;
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.n;
          Printf.sprintf "%.0f" p.load;
          Printf.sprintf "%.2f" p.no_layer_ms;
          Printf.sprintf "%.2f" p.with_layer_ms;
          Printf.sprintf "%+.1f%%"
            ((p.with_layer_ms -. p.no_layer_ms) /. p.no_layer_ms *. 100.0);
          Printf.sprintf "%.2f" p.during_ms;
        ])
      points
  in
  Buffer.add_string buf
    (Ascii.table
       ~header:[ "n"; "load"; "no-layer"; "with-layer"; "overhead"; "during-switch" ]
       rows);
  Buffer.contents buf

type headline = {
  layer_overhead_pct : float;
  spike_pct : float;
  spike_duration_ms : float;
  app_blocked_ms : float;
}

(* Marshal-safe per-seed slice of the headline aggregation: raw sample
   arrays, not [Stats.t] (which the parent re-folds in seed order so
   the float arithmetic matches the sequential run exactly). *)
type headline_cell = {
  hc_no_layer : float array;
  hc_with_layer : float array;
  hc_normal : float array;
  hc_during : float array;
  hc_duration_ms : float;
  hc_blocked_ms : float;
}

let headline_sweep ?(n = 7) ?(load = 40.0) ?(seeds = [ 1; 2; 3; 4; 5 ]) ?jobs
    ?metrics () =
  (* One switch yields only a handful of during-window messages (the
     window is about one ABcast latency), so the headline aggregates
     several seeds for statistical weight. Each seed is one sweep cell. *)
  let seeds = Array.of_list seeds in
  let cell reg idx =
    let base = { Experiment.default with n; load; seed = seeds.(idx) } in
    let no_layer =
      run_counted reg { base with approach = Experiment.No_layer; switch_to = None }
    in
    let with_layer = run_counted reg { base with switch_to = None } in
    let switching = run_counted reg base in
    {
      hc_no_layer = Stats.samples no_layer.normal;
      hc_with_layer = Stats.samples with_layer.normal;
      hc_normal = Stats.samples switching.normal;
      hc_during = Stats.samples switching.during;
      hc_duration_ms = switching.switch_duration_ms;
      hc_blocked_ms = switching.blocked_ms;
    }
  in
  let outcome = Sweep.run ?jobs ?metrics ~cells:(Array.length seeds) cell in
  let no_layer_all = Stats.create () in
  let with_layer_all = Stats.create () in
  let normal_all = Stats.create () in
  let during_all = Stats.create () in
  let durations = Stats.create () in
  let blocked = ref 0.0 in
  Array.iter
    (fun c ->
      Array.iter (Stats.add no_layer_all) c.hc_no_layer;
      Array.iter (Stats.add with_layer_all) c.hc_with_layer;
      Array.iter (Stats.add normal_all) c.hc_normal;
      Array.iter (Stats.add during_all) c.hc_during;
      Stats.add durations c.hc_duration_ms;
      blocked := Float.max !blocked c.hc_blocked_ms)
    outcome.Sweep.results;
  let overhead =
    (Stats.mean with_layer_all -. Stats.mean no_layer_all)
    /. Stats.mean no_layer_all *. 100.0
  in
  let spike =
    (Stats.mean during_all -. Stats.mean normal_all) /. Stats.mean normal_all *. 100.0
  in
  ( {
      layer_overhead_pct = overhead;
      spike_pct = spike;
      spike_duration_ms = Stats.mean durations;
      app_blocked_ms = !blocked;
    },
    outcome.Sweep.stats )

let headline ?n ?load ?seeds ?jobs ?metrics () =
  fst (headline_sweep ?n ?load ?seeds ?jobs ?metrics ())

let render_headline h =
  Ascii.table
    ~header:[ "metric"; "paper"; "measured" ]
    [
      [ "replacement-layer overhead"; "~5%"; Printf.sprintf "%.1f%%" h.layer_overhead_pct ];
      [ "latency spike during switch"; "~50%"; Printf.sprintf "%.1f%%" h.spike_pct ];
      [
        "replacement duration"; "~1 s (short period)";
        Printf.sprintf "%.0f ms" h.spike_duration_ms;
      ];
      [ "application blocked"; "never"; Printf.sprintf "%.1f ms" h.app_blocked_ms ];
    ]

type comparison_row = {
  approach : Experiment.approach;
  normal_ms : float;
  during_switch_ms : float;
  switch_duration : float;
  blocked : float;
  all_delivered : bool;
}

let compare_approaches_sweep ?(n = 5) ?(load = 40.0) ?(seed = 1) ?jobs ?metrics () =
  let approaches = [| Experiment.Repl; Experiment.Graceful; Experiment.Maestro |] in
  let cell reg idx =
    let approach = approaches.(idx) in
    let r = run_counted reg { Experiment.default with n; load; seed; approach } in
    {
      approach;
      normal_ms = Stats.mean r.normal;
      during_switch_ms = Stats.mean r.during;
      switch_duration = r.switch_duration_ms;
      blocked = r.blocked_ms;
      all_delivered = r.delivered_everywhere = r.sent;
    }
  in
  let outcome = Sweep.run ?jobs ?metrics ~cells:(Array.length approaches) cell in
  (Array.to_list outcome.Sweep.results, outcome.Sweep.stats)

let compare_approaches ?n ?load ?seed ?jobs ?metrics () =
  fst (compare_approaches_sweep ?n ?load ?seed ?jobs ?metrics ())

let render_comparison rows =
  Ascii.table
    ~header:
      [ "approach"; "normal [ms]"; "during switch [ms]"; "switch [ms]"; "blocked [ms]"; "all delivered" ]
    (List.map
       (fun r ->
         [
           Experiment.approach_name r.approach;
           Printf.sprintf "%.2f" r.normal_ms;
           Printf.sprintf "%.2f" r.during_switch_ms;
           Printf.sprintf "%.1f" r.switch_duration;
           Printf.sprintf "%.1f" r.blocked;
           string_of_bool r.all_delivered;
         ])
       rows)
