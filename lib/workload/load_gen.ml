module MW = Dpu_core.Middleware
module Clock = Dpu_runtime.Clock
module Rng = Dpu_engine.Rng

type pattern =
  | Constant
  | Poisson
  | Burst of { period_ms : float; duty : float }

let start mw ~rate_per_s ?(pattern = Constant) ?size ?(body = "payload") ~until () =
  let n = MW.n mw in
  let system = MW.system mw in
  let clock = Dpu_kernel.System.clock system in
  let rng = Rng.split (Dpu_kernel.System.rng system) in
  let per_node_gap = 1000.0 /. (rate_per_s /. float_of_int n) in
  let next_gap node =
    match pattern with
    | Constant -> per_node_gap
    | Poisson -> Rng.exponential rng ~mean:per_node_gap
    | Burst { period_ms; duty } ->
      (* Send at rate/duty while inside the duty window, else wait for
         the next window. *)
      let t = Clock.now clock in
      let phase = Float.rem t period_ms in
      if phase < period_ms *. duty then per_node_gap *. duty
      else period_ms -. phase +. (Rng.float rng *. 0.1 *. float_of_int node)
  in
  let rec loop node () =
    if Clock.now clock < until then begin
      ignore (MW.broadcast mw ~node ?size body : Dpu_kernel.Msg.t);
      Clock.defer clock ~delay:(next_gap node) (loop node)
    end
  in
  (* Only the nodes local to this process generate load (all of them in
     a simulated deployment). *)
  List.iter
    (fun node ->
      (* Stagger start phases so the aggregate load is smooth. *)
      let phase = per_node_gap *. float_of_int node /. float_of_int n in
      Clock.defer clock ~delay:phase (loop node))
    (Dpu_kernel.System.local_nodes system)

let send_n mw ~count ?(gap_ms = 10.0) ?size ?(warmup = 0) () =
  let n = MW.n mw in
  let clock = Dpu_kernel.System.clock (MW.system mw) in
  let t0 = Clock.now clock in
  (* Warmup messages ride the same round-robin schedule, ahead of the
     counted ones: they populate caches, arm failure detectors and (in
     a batched stack) fill the first batch, so the measured messages
     see steady state. They are real broadcasts — the collector records
     them and the ABcast properties cover them — callers exclude them
     from latency stats by cutting the series at the returned time. *)
  for i = 0 to warmup + count - 1 do
    let node = i mod n in
    Clock.defer clock ~delay:(gap_ms *. float_of_int i) (fun () ->
        ignore (MW.broadcast mw ~node ?size "msg" : Dpu_kernel.Msg.t))
  done;
  t0 +. (gap_ms *. float_of_int warmup)
