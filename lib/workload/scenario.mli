(** Simulated driver for the adversarial scenario corpus
    ({!Dpu_faults.Corpus}).

    Unlike {!Experiment} — which injects faults straight into the
    simulated datagram network — this driver assembles the system over
    {!Dpu_kernel.System.of_runtime} with the {e same}
    {!Dpu_faults.Fault_transport} shim the live backend uses, wrapped
    around the simulator transport. One schedule value, one shim, two
    backends. Runs are a pure function of the seed: {!signature} gives
    a canonical byte dump for replay-determinism checks. *)

type result = {
  scenario : Dpu_faults.Corpus.t;
  collector : Dpu_core.Collector.t;
  correct : int list;
  reports : Dpu_props.Report.t list;  (** full Abcast battery *)
  switch_windows : (int * (float * float) option) list;
      (** per requested switch: (generation, completion window) —
          [None] when no stack installed that generation (e.g. the
          stale loser of a race) *)
  sent : int;
  faults : Dpu_faults.Fault_transport.stats;
  counters : Dpu_runtime.Transport.counters;  (** the shim's view *)
}

val run_sim : ?seed:int -> Dpu_faults.Corpus.t -> result
(** Raises [Invalid_argument] if {!Dpu_faults.Corpus.validate}
    rejects the scenario. *)

val signature : result -> string
(** Canonical dump of sends/delivers/switches/fault+wire counters; two
    runs replayed identically iff their signatures are byte-equal. *)

val ok : result -> bool
