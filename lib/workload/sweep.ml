module Metrics = Dpu_obs.Metrics

exception Worker_failed of { worker : int; reason : string }

type stats = {
  jobs : int;
  cells : int;
  wall_s : float;
  cells_wall_s : float;
  speedup : float;
}

type 'r outcome = {
  results : 'r array;
  snapshots : Metrics.snapshot list;
  stats : stats;
}

(* Worker -> parent messages. One [Cell] per finished cell (with its
   wall-clock), then one [Done] carrying the worker's metrics snapshot.
   A worker that catches an exception reports [Failed] instead of
   [Done]. All three are closure-free, so plain [Marshal] works. *)
type 'r msg =
  | Cell of int * float * 'r
  | Done of Metrics.snapshot
  | Failed of string

let default_jobs () =
  match Sys.getenv_opt "DPU_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with Failure _ -> 1)
  | None -> 1

let finish ~jobs ~cells ~t0 ~cells_wall results snapshots =
  (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    results;
    snapshots;
    stats =
      {
        jobs;
        cells;
        wall_s;
        cells_wall_s = cells_wall;
        speedup = (if wall_s > 0.0 then cells_wall /. wall_s else 1.0);
      };
  }

let run_sequential ~reg ~cells f =
  (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
  let t0 = Unix.gettimeofday () in
  let cells_wall = ref 0.0 in
  let cell i =
    (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
    let c0 = Unix.gettimeofday () in
    let r = f reg i in
    (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
    cells_wall := !cells_wall +. (Unix.gettimeofday () -. c0);
    r
  in
  let results =
    if cells = 0 then [||]
    else begin
      (* Explicit loop: cell order is part of the determinism contract
         and [Array.init]'s evaluation order is unspecified. *)
      let arr = Array.make cells (cell 0) in
      for i = 1 to cells - 1 do
        arr.(i) <- cell i
      done;
      arr
    end
  in
  finish ~jobs:1 ~cells ~t0 ~cells_wall:!cells_wall results []

(* ------------------------------------------------------------------ *)
(* Forked workers                                                     *)
(* ------------------------------------------------------------------ *)

let worker_body ~want_metrics ~jobs ~cells ~index wfd f =
  (* In the child. Never return into the caller: always [Unix._exit]
     (no [at_exit], no double-flushing of inherited buffers). *)
  let oc = Unix.out_channel_of_descr wfd in
  let reg = if want_metrics then Metrics.create () else Metrics.noop in
  (try
     let i = ref index in
     while !i < cells do
       (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
       let c0 = Unix.gettimeofday () in
       let r = f reg !i in
       (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
       let wall = Unix.gettimeofday () -. c0 in
       Marshal.to_channel oc (Cell (!i, wall, r)) [];
       flush oc;
       i := !i + jobs
     done;
     Marshal.to_channel oc (Done (Metrics.snapshot reg)) [];
     flush oc
   with e -> (
     try
       Marshal.to_channel oc (Failed (Printexc.to_string e)) [];
       flush oc
     with _ -> ()));
  (try close_out oc with _ -> ());
  Unix._exit 0

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited with code %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let run_forked ~jobs ~metrics ~cells f =
  (* dpu-lint: allow wall-clock — host-side telemetry only; never feeds simulation state *)
  let t0 = Unix.gettimeofday () in
  let want_metrics = metrics != Metrics.noop in
  (* Anything buffered before the fork would be replayed by every
     worker that happens to flush; start the children clean. *)
  flush stdout;
  flush stderr;
  let workers =
    Array.init jobs (fun w ->
        let rfd, wfd = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          Unix.close rfd;
          worker_body ~want_metrics ~jobs ~cells ~index:w wfd f
        | pid ->
          (* Closing our copy of the write end right away means a dead
             worker yields EOF instead of a hang, and later forks do
             not inherit it. *)
          Unix.close wfd;
          (pid, rfd))
  in
  let reaped = Array.make jobs false in
  let reap w =
    if not reaped.(w) then begin
      reaped.(w) <- true;
      let pid, _ = workers.(w) in
      try snd (Unix.waitpid [] pid) with Unix.Unix_error _ -> Unix.WEXITED 0
    end
    else Unix.WEXITED 0
  in
  let kill_all () =
    Array.iteri
      (fun w (pid, _) ->
        if not reaped.(w) then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (reap w : Unix.process_status)
        end)
      workers
  in
  let results : 'r option array = Array.make cells None in
  let cells_wall = ref 0.0 in
  let snapshots = ref [] in
  (try
     (* Drain workers in index order. Each worker computes
        independently, so a full pipe only ever waits on this loop —
        which always reaches it — never on another worker: sequential
        draining cannot deadlock. *)
     Array.iteri
       (fun w (_pid, rfd) ->
         let ic = Unix.in_channel_of_descr rfd in
         let fail reason =
           raise (Worker_failed { worker = w; reason })
         in
         let rec drain () =
           match (Marshal.from_channel ic : 'r msg) with
           | Cell (i, wall, r) ->
             results.(i) <- Some r;
             cells_wall := !cells_wall +. wall;
             drain ()
           | Done snap -> snapshots := snap :: !snapshots
           | Failed msg -> fail ("worker raised: " ^ msg)
           | exception End_of_file ->
             fail ("result stream cut short (" ^ describe_status (reap w) ^ ")")
           | exception Failure msg -> fail ("corrupt result stream: " ^ msg)
         in
         drain ();
         close_in_noerr ic;
         match reap w with
         | Unix.WEXITED 0 -> ()
         | status -> fail (describe_status status))
       workers
   with e ->
     kill_all ();
     raise e);
  let snapshots = List.rev !snapshots in
  (* Merge per-worker accounting in worker order (counter and histogram
     merges commute; the order only pins gauge ties deterministically). *)
  List.iter (fun snap -> Metrics.merge metrics snap) snapshots;
  let results =
    Array.mapi
      (fun i r ->
        match r with
        | Some r -> r
        | None ->
          raise
            (Worker_failed
               {
                 worker = i mod jobs;
                 reason = Printf.sprintf "cell %d missing from result stream" i;
               }))
      results
  in
  finish ~jobs ~cells ~t0 ~cells_wall:!cells_wall results snapshots

let run ?jobs ?(metrics = Metrics.noop) ~cells f =
  if cells < 0 then invalid_arg "Sweep.run: negative cell count";
  let jobs =
    match jobs with Some j -> max 1 (min j (max cells 1)) | None -> default_jobs ()
  in
  let jobs = max 1 (min jobs (max cells 1)) in
  if jobs <= 1 || cells <= 1 then run_sequential ~reg:metrics ~cells f
  else run_forked ~jobs ~metrics ~cells f

let map ?jobs ~cells f = (run ?jobs ~cells (fun _ i -> f i)).results
