(** Deterministic multi-process sweep runner.

    The paper's evaluation is a grid of independent simulation cells —
    (n, load, seed, protocol pair) — each of which builds its own
    {!Dpu_engine.Sim.t} from a fixed seed. [Sweep] fans such cells out
    to [jobs] worker processes ([Unix.fork] + pipes, results shipped
    back with [Marshal]) and merges them in canonical cell order, so
    the merged output is bit-identical to a sequential run regardless
    of worker count or completion order.

    Worker [w] runs cells [w, w + jobs, w + 2 jobs, ...]; assignment is
    static, so no coordination traffic exists beyond the result pipe.
    Each worker also carries a private {!Dpu_obs.Metrics} registry;
    its snapshot is shipped with the results and merged (counters sum,
    gauges max, histograms add bucket-wise) into the registry the
    caller provided, so cluster-wide accounting survives the fan-out.

    A worker that dies (crash, kill, uncaught exception) surfaces as
    {!Worker_failed} in the parent — never a hang: the parent drains
    each worker's pipe to EOF in worker order and checks its exit
    status. *)

exception Worker_failed of { worker : int; reason : string }
(** A worker exited abnormally or its result stream was cut short.
    [worker] is the worker index (0-based); [reason] describes the exit
    status or the exception the worker raised. *)

type stats = {
  jobs : int;  (** worker count actually used (clamped to cells) *)
  cells : int;
  wall_s : float;  (** parent wall-clock for the whole sweep *)
  cells_wall_s : float;  (** sum of per-cell wall-clock, measured in workers *)
  speedup : float;  (** [cells_wall_s /. wall_s] — the realised parallelism *)
}

type 'r outcome = {
  results : 'r array;  (** indexed by cell, canonical order *)
  snapshots : Dpu_obs.Metrics.snapshot list;
      (** one per worker, in worker order; empty for in-process runs *)
  stats : stats;
}

val default_jobs : unit -> int
(** [$DPU_JOBS] when set to a positive integer, else 1. *)

val run :
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  cells:int ->
  (Dpu_obs.Metrics.t -> int -> 'r) ->
  'r outcome
(** [run ~jobs ~metrics ~cells f] evaluates [f reg i] for every cell
    [i] in [0 .. cells-1] and returns the results in cell order.

    [f] must be a pure function of the cell index up to its metrics
    side effects: each invocation should build its own simulator from a
    seed derived from [i] alone, and its result must contain no
    closures or custom blocks (it crosses a [Marshal] boundary when
    [jobs > 1]).

    [reg] is the worker's private registry — the [metrics] registry
    itself when running in-process, a fresh one in a forked worker
    (merged back into [metrics] afterwards), and {!Dpu_obs.Metrics.noop}
    when [metrics] is omitted.

    [jobs] defaults to {!default_jobs}; it is clamped to [cells], and
    values [<= 1] run everything in-process with no fork.

    @raise Worker_failed when a worker dies or raises. *)

val map : ?jobs:int -> cells:int -> (int -> 'r) -> 'r array
(** [map ~jobs ~cells f] is [(run ~jobs ~cells (fun _ i -> f i)).results]. *)
